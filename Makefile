GO ?= go

.PHONY: all build vet fmt-check docs-check test race verify bench bench-smoke bench-json bench-mvm bench-serve bench-fault bench-obs bench-fleet bench-hybrid bench-chaos bench-capacity cover fuzz experiments examples clean

all: build vet test

# Tier-1 verify path: format + docs cross-reference check + build + vet +
# tests, then the same tests again under the race detector (the parallel
# simulation engine must stay race-clean).
verify: fmt-check docs-check build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail if any tracked Go file is not gofmt-clean; prints the offenders.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Docs cross-reference check: every docs/*.md referenced from README.md or
# DESIGN.md must exist, and every file in docs/ must be referenced from one
# of them — no dangling links, no orphaned documents. Implemented as a Go
# test (docs_test.go) so `go test ./...` enforces it too.
docs-check:
	$(GO) test -run TestDocs -count=1 .

test:
	$(GO) test ./...

# Race-detector pass over the whole tree; parallelism is on by default
# (pool width = GOMAXPROCS), so this exercises the concurrent hot paths.
# The second invocation pins the noisy parallel-equivalence suites — the
# tests that prove counter-based noise is bit-identical at any pool width —
# so a -run filter or cached result can never silently skip them. The
# third pins the serving-pipeline and memo single-flight concurrency
# suites (micro-batcher, backpressure, shadow swaps at pool widths 1/4/16,
# deduplicated concurrent memo Calls, lock-free histogram observes). The
# fourth pins the device-fault subsystem: injection determinism,
# program-and-verify + spare remapping, engine health scans and repairs,
# and the serving-layer circuit breaker (docs/FAULTS.md). The fifth pins
# the observability layer (docs/OBSERVABILITY.md): concurrent span
# recording, traced-vs-untraced bit-identity at pool widths 1/4/16,
# context-canceled request shedding, and the cimserve telemetry
# endpoint lifecycle. The sixth pins the serving fleet (docs/CLUSTER.md):
# router edge cases, join/leave under in-flight traffic, rolling
# reprogram with zero downtime, and the keyed-noise determinism suites
# that make fleet outputs bit-identical at any engine count. The seventh
# pins the GEMM batching path (docs/PERF.md): batch-vs-looped bit-identity
# across functional, bit-serial, noisy keyed/unkeyed, and fault-remapped
# kernels, mixed-shape scratch-pool reuse, and concurrent batched MVMs.
# The eighth pins the hybrid dispatch layer (docs/HYBRID.md): Von Neumann
# twin bit-identity at pool widths 1/4/16, calibrator decision-sequence
# determinism, route invariance through the dispatcher and the serving
# pipeline, and reprogram suspension of the twin. The ninth pins the
# resilience layer (docs/RESILIENCE.md): hedged-request bit-identity and
# budget accounting, the AIMD limiter and brownout state machines, chaos
# crash-window failover, and fleet membership churn (Leave/Join) racing
# a rolling reprogram while hedged requests are in flight. The tenth pins
# the workload-generation layer (docs/CAPACITY.md): arrival-schedule
# bit-identity at pool widths 1/4/16, the chaos Poisson deprecation path,
# trace record/replay, the open-loop drive (never-retry, no-self-throttle,
# lateness accounting), the capacity sweep, and its benchjson gate.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=1 \
		-run 'Noisy|ParallelEquivalence|OrderIndependence' \
		./internal/crossbar/ ./internal/dpe/ ./internal/experiments/
	$(GO) test -race -count=1 \
		-run 'Serve|Shadow|Backpressure|SingleFlight|HistogramConcurrent' \
		./internal/serve/ ./internal/memo/ ./internal/metrics/
	$(GO) test -race -count=1 \
		-run 'Fault|Health|Repair|Breaker' \
		./internal/faultinject/ ./internal/crossbar/ ./internal/dpe/ \
		./internal/serve/ ./internal/experiments/
	$(GO) test -race -count=1 \
		-run 'Trace|Concurrent|Canceled|Telemetry|Prom|Quantile' \
		./internal/obs/ ./internal/crossbar/ ./internal/dpe/ \
		./internal/serve/ ./internal/metrics/ ./internal/experiments/ \
		./cmd/cimserve/
	$(GO) test -race -count=1 \
		-run 'Fleet|Router|Rolling|RoundRobin|Weighted|WearAware|JoinLeave|Keyed' \
		./internal/fleet/ ./internal/serve/ ./internal/dpe/ \
		./internal/experiments/ ./cmd/cimserve/
	$(GO) test -race -count=1 \
		-run 'MVMBatch|InferBatch|ScratchReuse' \
		./internal/crossbar/ ./internal/dpe/
	$(GO) test -race -count=1 \
		-run 'Hybrid|Dispatch|Calibrator|Twin' \
		./internal/hybrid/ ./internal/vonneumann/ ./internal/experiments/
	$(GO) test -race -count=1 \
		-run 'Hedge|Hedger|AIMD|Brownout|Limiter|Chaos|Straggler|Crash|Spikes|Arrivals|Wrap|Scenario|Reprogram|LeaveJoinRacing|Deadline|Resilience' \
		./internal/fleet/ ./internal/chaos/ ./internal/serve/ ./cmd/cimserve/
	$(GO) test -race -count=1 \
		-run 'Arrivals|Poisson|MMPP|Diurnal|Trace|Mix|Drive|OpenLoop|Capacity' \
		./internal/workloadgen/ ./internal/chaos/ ./internal/experiments/ \
		./cmd/cimserve/ ./cmd/benchjson/

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable record of the MVM kernel benchmarks: the single-vector
# BenchmarkCrossbarMVM sweep plus the batched BenchmarkCrossbarMVMBatch
# GEMM sweep (batch 1/8/32/128 x 64..512, with each result's interleaved
# looped-baseline speedup metric), converted to BENCH_mvm.json. Also runs
# the serving-pipeline benchmark so BENCH_serve.json stays in step, and
# the hybrid dispatch, chaos, and capacity sweeps so BENCH_hybrid.json,
# BENCH_chaos.json, and BENCH_capacity.json do too.
bench-json: bench-serve bench-mvm bench-hybrid bench-chaos bench-capacity

# The MVM sweeps alone, with the GEMM regression gate: fails unless every
# deterministic batch >= 8 result on an ISAAC-scale panel (>= 256) beats
# the looped per-vector baseline by at least 1.5x (the speedup metric is
# measured interleaved inside one benchmark, so host clock drift between
# runs cannot fake or mask a regression; noisy mode and cache-resident
# sub-256 panels are exempt — see docs/PERF.md).
bench-mvm:
	$(GO) test -run '^$$' -bench '^BenchmarkCrossbarMVM(Batch)?$$' \
		-benchtime 5x -benchmem . \
		| $(GO) run ./cmd/benchjson -gate-batch-speedup 1.5 -out BENCH_mvm.json
	@echo wrote BENCH_mvm.json

# Serving-pipeline benchmark: 64 closed-loop clients over the 8-bit MLP
# workload, serial per-request baseline vs the micro-batched pipeline
# (with two shadow-engine weight swaps mid-run), emitted through
# cmd/benchjson as BENCH_serve.json (throughput, p50/p95/p99, energy).
bench-serve:
	$(GO) run ./cmd/cimserve -clients 64 -requests 2048 -batch 64 -reprogram 2 \
		| $(GO) run ./cmd/benchjson -out BENCH_serve.json
	@echo wrote BENCH_serve.json

# Device-fault sweep artifact: the (stuck rate x spare budget) grid from
# internal/experiments, emitted as benchmark lines and archived through
# cmd/benchjson as BENCH_fault.json (accuracy, remap/lost counts, retry
# pulses, programming energy in each result's extra map).
bench-fault:
	$(GO) run ./cmd/cimbench -exp fault -format bench \
		| $(GO) run ./cmd/benchjson -out BENCH_fault.json
	@echo wrote BENCH_fault.json

# Tracer-overhead artifact (docs/OBSERVABILITY.md budget: disabled <5%
# over untraced, 0 allocs): wall-clock ns/op for the MVM hot path and
# the serve request path — untraced vs disabled-tracer vs enabled —
# archived through cmd/benchjson as BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/cimbench -exp obs -format bench \
		| $(GO) run ./cmd/benchjson -out BENCH_obs.json
	@echo wrote BENCH_obs.json

# Serving-fleet artifact (docs/CLUSTER.md): every routing policy at
# engine counts 1/2/4/8 under closed-loop load with a rolling reprogram
# mid-run. Simulated throughput, speedup vs 1 engine, wall p50/p99, and
# the zero-downtime evidence (failed must be 0, rolled_engines = engines)
# land in BENCH_fleet.json via cmd/benchjson.
bench-fleet:
	$(GO) run ./cmd/cimbench -exp fleet -format bench \
		| $(GO) run ./cmd/benchjson -out BENCH_fleet.json
	@echo wrote BENCH_fleet.json

# Hybrid dispatch artifact (docs/HYBRID.md): the CIM-vs-CPU crossover
# grid (layer size x batch, per-item simulated latency on the crossbar vs
# the executing Von Neumann twin) plus the mixed-workload comparison of
# forced-cim / forced-vn / auto dispatch. The -gate-hybrid check fails
# unless the sweep measures a real crossover (cells on both sides of
# speedup 1) and auto throughput at least matches the best single
# backend. Everything is simulated cost, so the gate is deterministic.
bench-hybrid:
	$(GO) run ./cmd/cimbench -exp hybrid -format bench \
		| $(GO) run ./cmd/benchjson -gate-hybrid -out BENCH_hybrid.json
	@echo wrote BENCH_hybrid.json

# Chaos-harness artifact (docs/RESILIENCE.md): the scenario x hedging grid
# (fault-free baseline, straggler, crash-during-rolling-reprogram, open-
# loop overload burst) scored against the fault-free single-engine keyed
# oracle. The -gate-chaos check fails on any lost keyed request, any
# non-bit-identical output, or overload p99 beyond 10x the fault-free
# baseline — the SLOs the resilience layer exists to keep. The headline
# straggler rows should show hedging recovering most of the p99
# regression (hedge_wins > 0, hedged p99 well under the unhedged row).
bench-chaos:
	$(GO) run ./cmd/cimbench -exp chaos -format bench \
		| $(GO) run ./cmd/benchjson -gate-chaos -out BENCH_chaos.json
	@echo wrote BENCH_chaos.json

# SLO capacity-planning artifact (docs/CAPACITY.md): the engines x
# offered-rate grid driven open loop (deterministic Poisson schedule,
# mixed batch-1/batch-8/analytics request classes), each cell scored
# against the 25ms p99 SLO with zero sheds and zero lost requests, plus
# the rated capacity per engine count (top of the passing prefix) and the
# closed-vs-open comparison rows that demonstrate coordinated omission.
# The -gate-capacity check fails unless every pass bit is backed by its
# own cell's numbers, the passing cells form a monotone prefix of the
# rate ladder, and every engine count rates at some rung.
bench-capacity:
	$(GO) run ./cmd/cimbench -exp capacity -format bench \
		| $(GO) run ./cmd/benchjson -gate-capacity -out BENCH_capacity.json
	@echo wrote BENCH_capacity.json

# Quick benchmark smoke: one iteration of the Section VI latency sweep,
# enough to catch a broken hot path without a full benchmark run.
bench-smoke:
	$(GO) test -bench=SecVILatency -benchtime=1x .

cover:
	$(GO) test -cover ./...

# Short fuzzing pass over the wire-format parsers, the checksum layer,
# and the histogram quantile estimator (the hedge delay and every latency
# SLO read through it: quantiles must stay monotone in q, inside
# [Min, Max], and self-consistent on arbitrary observation sets).
fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=15s ./internal/packet/
	$(GO) test -fuzz=FuzzDecode -fuzztime=15s ./internal/isa/
	$(GO) test -fuzz=FuzzAssemble -fuzztime=15s ./internal/isa/
	$(GO) test -fuzz=FuzzSealOpen -fuzztime=15s ./internal/fault/
	$(GO) test -fuzz=FuzzFlipBit -fuzztime=15s ./internal/fault/
	$(GO) test -fuzz=FuzzHistogramQuantile -fuzztime=15s ./internal/metrics/

# Regenerate every paper table and figure.
experiments:
	$(GO) run ./cmd/cimbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/edge
	$(GO) run ./examples/graphanalytics
	$(GO) run ./examples/faulttolerance
	$(GO) run ./examples/selfprogramming
	$(GO) run ./examples/training
	$(GO) run ./examples/analytics

clean:
	$(GO) clean -testcache
