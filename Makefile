GO ?= go

.PHONY: all build vet test race verify bench bench-smoke cover fuzz experiments examples clean

all: build vet test

# Tier-1 verify path: build + vet + tests, then the same tests again under
# the race detector (the parallel simulation engine must stay race-clean).
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole tree; parallelism is on by default
# (pool width = GOMAXPROCS), so this exercises the concurrent hot paths.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Quick benchmark smoke: one iteration of the Section VI latency sweep,
# enough to catch a broken hot path without a full benchmark run.
bench-smoke:
	$(GO) test -bench=SecVILatency -benchtime=1x .

cover:
	$(GO) test -cover ./...

# Short fuzzing pass over the wire-format parsers.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=15s ./internal/packet/
	$(GO) test -fuzz=FuzzDecode -fuzztime=15s ./internal/isa/
	$(GO) test -fuzz=FuzzAssemble -fuzztime=15s ./internal/isa/

# Regenerate every paper table and figure.
experiments:
	$(GO) run ./cmd/cimbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/edge
	$(GO) run ./examples/graphanalytics
	$(GO) run ./examples/faulttolerance
	$(GO) run ./examples/selfprogramming
	$(GO) run ./examples/training
	$(GO) run ./examples/analytics

clean:
	$(GO) clean -testcache
