GO ?= go

.PHONY: all build vet test bench cover fuzz experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Short fuzzing pass over the wire-format parsers.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=15s ./internal/packet/
	$(GO) test -fuzz=FuzzDecode -fuzztime=15s ./internal/isa/
	$(GO) test -fuzz=FuzzAssemble -fuzztime=15s ./internal/isa/

# Regenerate every paper table and figure.
experiments:
	$(GO) run ./cmd/cimbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/edge
	$(GO) run ./examples/graphanalytics
	$(GO) run ./examples/faulttolerance
	$(GO) run ./examples/selfprogramming
	$(GO) run ./examples/training
	$(GO) run ./examples/analytics

clean:
	$(GO) clean -testcache
