package cimrev

// Facade integration tests: exercise the public API end to end the way a
// downstream user would.

import (
	"math"
	"math/rand"
	"testing"

	"cimrev/internal/cim"
	"cimrev/internal/isa"
)

func TestFacadeTrainDeployInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs, labels, err := MakeBlobs(180, 3, 8, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewMLP("facade", []int{8, 16, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(net, inputs, labels, 15, 0.05, rng); err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(net, inputs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("training accuracy %.2f", acc)
	}

	engine, err := NewDPE(DefaultDPEConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Load(net); err != nil {
		t.Fatal(err)
	}
	out, cost, err := engine.Infer(inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || cost.LatencyPS <= 0 {
		t.Errorf("inference out=%v cost=%v", out, cost)
	}
}

func TestFacadeFabricPipeline(t *testing.T) {
	ledger := NewLedger()
	fabric, err := NewFabric(DefaultFabricConfig(), ledger, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	net, err := NewMLP("pipe", []int{8, 8, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompilePlan(net, fabric.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyPlan(plan, fabric); err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 8)
	for i := range in {
		in[i] = math.Cos(float64(i))
	}
	if err := fabric.Stream(plan.InputAddr, in); err != nil {
		t.Fatal(err)
	}
	out, err := fabric.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[plan.OutputAddr]) != 1 {
		t.Fatalf("pipeline produced %d results", len(out[plan.OutputAddr]))
	}
	if ledger.Total().EnergyPJ <= 0 {
		t.Error("no energy accounted")
	}
}

func TestFacadeExperiments(t *testing.T) {
	pts := Fig2Series()
	if len(pts) < 10 {
		t.Errorf("Fig2Series = %d points", len(pts))
	}
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Errorf("Table2 = %d rows", len(rows))
	}
	if CPU().Name != "cpu" || GPU().Name != "gpu" {
		t.Error("baseline machines misnamed")
	}
}

func TestFacadeAssociative(t *testing.T) {
	led := NewLedger()
	tc, err := NewTCAM(8, 16, led)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Store(0, 0xAB, 0xFF); err != nil {
		t.Fatal(err)
	}
	hits, _ := tc.Match(0xAB, 0xFF)
	if len(hits) != 1 {
		t.Errorf("hits = %v", hits)
	}
	ap, err := NewAssociativeProcessor(4, 8, led)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Write(0, 7); err != nil {
		t.Fatal(err)
	}
	ap.AddConstant(3)
	v, err := ap.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Errorf("AP add = %d, want 10", v)
	}
}

func TestFacadeSelfHealing(t *testing.T) {
	fabric, err := NewFabric(DefaultFabricConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	primary := Address{Tile: 0}
	spare := Address{Tile: 0, Unit: 1}
	for _, a := range []Address{primary, spare} {
		if _, err := fabric.AddUnit(a, cim.KindCrossbar, 1); err != nil {
			t.Fatal(err)
		}
		if err := fabric.Configure(a, isa.FuncMVM, [][]float64{{1}}); err != nil {
			t.Fatal(err)
		}
	}
	guard, err := NewGuard(fabric, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.AddSpare(primary, spare); err != nil {
		t.Fatal(err)
	}
	mon, err := NewWearMonitor(fabric, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	healer, err := NewHealer(mon, guard, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh units: nothing retires (default endurance is 1e9 writes).
	retired, err := healer.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) != 0 {
		t.Errorf("fresh fabric retired %v", retired)
	}
}

func TestFacadeCluster(t *testing.T) {
	cluster, err := NewDPECluster(DefaultDPEConfig(), 2, 1.0, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	if cluster.Boards() != 2 {
		t.Errorf("Boards = %d", cluster.Boards())
	}
}

func TestFacadeCrossbar(t *testing.T) {
	xb, err := NewCrossbar(DefaultCrossbarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xb.Program([][]float64{{0.5}}); err != nil {
		t.Fatal(err)
	}
	out, _, err := xb.MVM([]float64{1}, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.5) > 0.05 {
		t.Errorf("MVM = %v, want ~0.5", out)
	}
}
