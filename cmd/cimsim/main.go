// Command cimsim runs a CIM fabric simulation: it builds a board, loads an
// ISA program (from a file or a built-in demo pipeline), streams inputs,
// and reports outputs plus the energy/latency ledger and fabric metrics.
//
// Usage:
//
//	cimsim                          # run the built-in demo pipeline
//	cimsim -prog pipeline.casm      # assemble and run a program
//	cimsim -mesh 8x8 -units 4       # size the board
//	cimsim -fail 0/1/0              # inject a unit failure before running
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"cimrev/internal/cim"
	"cimrev/internal/energy"
	"cimrev/internal/isa"
	"cimrev/internal/metrics"
	"cimrev/internal/packet"
)

func main() {
	progPath := flag.String("prog", "", "path to a .casm assembly program (empty runs the demo)")
	mesh := flag.String("mesh", "4x4", "board mesh dimensions WxH")
	units := flag.Int("units", 2, "units per tile to pre-create")
	failAddr := flag.String("fail", "", "unit address board/tile/unit to fail before running")
	flag.Parse()

	if err := run(*progPath, *mesh, *units, *failAddr); err != nil {
		fmt.Fprintln(os.Stderr, "cimsim:", err)
		os.Exit(1)
	}
}

func run(progPath, mesh string, unitsPerTile int, failAddr string) error {
	w, h, err := parseMesh(mesh)
	if err != nil {
		return err
	}
	cfg := cim.DefaultConfig()
	cfg.MeshW, cfg.MeshH = w, h
	cfg.Crossbar.Functional = true

	ledger := energy.NewLedger()
	reg := metrics.NewRegistry()
	fabric, err := cim.NewFabric(cfg, ledger, reg)
	if err != nil {
		return err
	}
	// Pre-create a heterogeneous population: unit 0 of each tile is a
	// crossbar unit, the rest digital compute.
	for tile := 0; tile < w*h; tile++ {
		for u := 0; u < unitsPerTile; u++ {
			kind := cim.KindCompute
			if u == 0 {
				kind = cim.KindCrossbar
			}
			addr := packet.Address{Tile: uint16(tile), Unit: uint16(u)}
			if _, err := fabric.AddUnit(addr, kind, 4); err != nil {
				return err
			}
		}
	}
	fmt.Printf("fabric: %dx%d mesh, %d units\n", w, h, w*h*unitsPerTile)

	var prog isa.Program
	if progPath != "" {
		src, err := os.ReadFile(progPath)
		if err != nil {
			return err
		}
		prog, err = isa.Assemble(string(src))
		if err != nil {
			return err
		}
	} else {
		prog = demoProgram()
		fmt.Println("running built-in demo pipeline:")
		fmt.Print(prog.Disassemble())
	}

	if failAddr != "" {
		addr, err := parseAddr(failAddr)
		if err != nil {
			return err
		}
		if err := fabric.DisableUnit(addr); err != nil {
			return err
		}
		fmt.Printf("failed unit %v before execution\n", addr)
	}

	if err := fabric.LoadProgram(prog); err != nil {
		return err
	}
	out, err := fabric.Run()
	if err != nil {
		return err
	}

	fmt.Println("\noutputs:")
	addrs := make([]packet.Address, 0, len(out))
	for a := range out {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].Tile != addrs[j].Tile {
			return addrs[i].Tile < addrs[j].Tile
		}
		return addrs[i].Unit < addrs[j].Unit
	})
	for _, a := range addrs {
		for _, vec := range out[a] {
			fmt.Printf("  %v: %v\n", a, round(vec))
		}
	}

	fmt.Println("\ncost ledger:")
	fmt.Print(ledger.Report())
	fmt.Println("metrics:")
	fmt.Print(reg.Snapshot())
	return nil
}

// demoProgram builds MVM -> relu across two tiles and streams two inputs.
func demoProgram() isa.Program {
	u0 := packet.Address{Tile: 0, Unit: 0}
	u1 := packet.Address{Tile: 1, Unit: 1}
	return isa.Program{
		{Op: isa.OpLoadWeights, Unit: u0, Rows: 3, Cols: 2,
			Data: []float64{1, -1, 0.5, 0.5, -0.25, 1}},
		{Op: isa.OpConfigure, Unit: u0, Fn: isa.FuncMVM},
		{Op: isa.OpConfigure, Unit: u1, Fn: isa.FuncReLU},
		{Op: isa.OpConnect, Unit: u0, Unit2: u1},
		{Op: isa.OpStream, Unit: u0, Data: []float64{1, 0.5, -0.5}},
		{Op: isa.OpStream, Unit: u0, Data: []float64{-1, 1, 0.25}},
		{Op: isa.OpHalt},
	}
}

func parseMesh(s string) (int, int, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("mesh %q must be WxH", s)
	}
	w, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("mesh width: %w", err)
	}
	h, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("mesh height: %w", err)
	}
	return w, h, nil
}

func parseAddr(s string) (packet.Address, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return packet.Address{}, fmt.Errorf("address %q must be board/tile/unit", s)
	}
	var vals [3]uint16
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 16)
		if err != nil {
			return packet.Address{}, err
		}
		vals[i] = uint16(v)
	}
	return packet.Address{Board: vals[0], Tile: vals[1], Unit: vals[2]}, nil
}

func round(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
