package main

import (
	"os"
	"path/filepath"
	"testing"

	"cimrev/internal/packet"
)

func TestParseMesh(t *testing.T) {
	w, h, err := parseMesh("8x4")
	if err != nil || w != 8 || h != 4 {
		t.Errorf("parseMesh = %d,%d,%v", w, h, err)
	}
	for _, bad := range []string{"8", "x4", "8x", "axb", "1x2x3"} {
		if _, _, err := parseMesh(bad); err == nil {
			t.Errorf("parseMesh(%q) accepted", bad)
		}
	}
}

func TestParseAddr(t *testing.T) {
	a, err := parseAddr("1/2/3")
	if err != nil {
		t.Fatal(err)
	}
	want := packet.Address{Board: 1, Tile: 2, Unit: 3}
	if a != want {
		t.Errorf("parseAddr = %v, want %v", a, want)
	}
	for _, bad := range []string{"1/2", "a/b/c", "1/2/99999"} {
		if _, err := parseAddr(bad); err == nil {
			t.Errorf("parseAddr(%q) accepted", bad)
		}
	}
}

func TestRound(t *testing.T) {
	got := round([]float64{1.23456, -0.5})
	if got[0] != 1.235 {
		t.Errorf("round = %v", got)
	}
}

func TestRunDemoAndProgram(t *testing.T) {
	if err := run("", "4x4", 2, ""); err != nil {
		t.Errorf("demo run: %v", err)
	}
	// From a program file.
	dir := t.TempDir()
	path := filepath.Join(dir, "p.casm")
	src := "configure 0/0/1 relu\nstream 0/0/1 1,-2\nhalt\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "2x2", 2, ""); err != nil {
		t.Errorf("program run: %v", err)
	}
	// With a failure injection on a unit the demo pipeline does not use.
	if err := run("", "4x4", 2, "0/3/1"); err != nil {
		t.Errorf("failure run: %v", err)
	}
	// Failing a unit the program needs is an error the operator sees.
	if err := run("", "4x4", 2, "0/1/1"); err == nil {
		t.Error("configuring a failed unit should error")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "0x0", 1, ""); err == nil {
		t.Error("bad mesh accepted")
	}
	if err := run("/nonexistent/prog.casm", "2x2", 1, ""); err == nil {
		t.Error("missing program accepted")
	}
	if err := run("", "2x2", 1, "bad-addr"); err == nil {
		t.Error("bad fail address accepted")
	}
	if err := run("", "2x2", 1, "0/9/9"); err == nil {
		t.Error("failing a missing unit accepted")
	}
}
