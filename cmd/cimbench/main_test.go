package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad int accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nonsense", "64", "1", "1", "text"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("fig2", "bad", "1", "1", "text"); err == nil {
		t.Error("bad sizes accepted")
	}
	if err := run("fig2", "64", "bad", "1", "text"); err == nil {
		t.Error("bad boards accepted")
	}
	if err := run("fleet", "64", "1", "bad", "text"); err == nil {
		t.Error("bad engines accepted")
	}
	if err := run("fig2", "64", "1", "1", "xml"); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("fig2", "64", "1", "1", "bench"); err == nil {
		t.Error("-format bench accepted outside -exp fault")
	}
}

func TestRunSingleExperiments(t *testing.T) {
	// The cheap experiments run end to end (output goes to stdout).
	for _, exp := range []string{"fig2", "table1", "table2"} {
		if err := run(exp, "64", "1", "1", "text"); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunSecVISmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run("secvi", "64,128", "1", "1", "text"); err != nil {
		t.Errorf("run(secvi): %v", err)
	}
	if err := run("scale", "64", "1,2", "1", "text"); err != nil {
		t.Errorf("run(scale): %v", err)
	}
	if err := run("fault", "64", "1", "1", "bench"); err != nil {
		t.Errorf("run(fault, bench): %v", err)
	}
}
