package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad int accepted")
	}
}

func TestParseParams(t *testing.T) {
	p, err := parseParams("64", "1,2", "1,4", "1000, 2000.5", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.rates) != 2 || p.rates[1] != 2000.5 || p.slo != 10*time.Millisecond {
		t.Errorf("parseParams = %+v", p)
	}
	if _, err := parseParams("bad", "1", "1", "", 0); err == nil {
		t.Error("bad sizes accepted")
	}
	if _, err := parseParams("64", "bad", "1", "", 0); err == nil {
		t.Error("bad boards accepted")
	}
	if _, err := parseParams("64", "1", "bad", "", 0); err == nil {
		t.Error("bad engines accepted")
	}
	if _, err := parseParams("64", "1", "1", "bad", 0); err == nil {
		t.Error("bad rates accepted")
	}
}

// TestRegistryShape: the registry is the single source of truth — every
// row has a unique name and a runner, and the derived vocabularies cover
// it.
func TestRegistryShape(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range registry {
		if e.name == "" || e.run == nil {
			t.Fatalf("registry row missing name or runner: %+v", e)
		}
		if seen[e.name] {
			t.Fatalf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
		if e.solo && !e.bench {
			t.Errorf("%s: solo wall-clock experiments exist for bench artifacts and must support -format bench", e.name)
		}
	}
	for _, want := range []string{"fig2", "fault", "hybrid", "obs", "fleet", "chaos", "capacity"} {
		if !seen[want] {
			t.Errorf("registry lost experiment %q", want)
		}
	}
	names := strings.Join(expNames(), ",")
	if !strings.HasPrefix(names, "all,") || !strings.Contains(names, "capacity") {
		t.Errorf("expNames() = %s", names)
	}
	for _, bn := range benchNames() {
		if !seen[bn] {
			t.Errorf("benchNames lists unknown experiment %q", bn)
		}
	}
}

// TestRunSelectionErrors: unknown experiments and unsupported formats
// fail with error text derived from the table.
func TestRunSelectionErrors(t *testing.T) {
	p := params{sizes: []int{16}, boards: []int{1}, engines: []int{1}}
	err := run("bogus", "text", p)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, want := range []string{"all", "fig2", "capacity"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-experiment error does not name %q: %v", want, err)
		}
	}
	if err := run("fig2", "csv", p); err == nil || !strings.Contains(err.Error(), "text or bench") {
		t.Errorf("bad format error = %v", err)
	}
	// fig2 has no bench rendering; the error lists the experiments that do.
	err = run("fig2", "bench", p)
	if err == nil {
		t.Fatal("-format bench accepted for a text-only experiment")
	}
	for _, want := range []string{"fault", "capacity", "chaos"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("bench-support error does not name %q: %v", want, err)
		}
	}
	// -exp all excludes the solo wall-clock sweeps but still includes
	// text-only experiments, so bench format under all is an error too.
	if err := run("all", "bench", p); err == nil {
		t.Error("-format bench accepted with -exp all")
	}
}

func TestRunSingleExperiments(t *testing.T) {
	// The cheap experiments run end to end (output goes to stdout).
	p := params{sizes: []int{64}, boards: []int{1}, engines: []int{1}}
	for _, exp := range []string{"fig2", "table1", "table2"} {
		if err := run(exp, "text", p); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunSecVISmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run("secvi", "text", params{sizes: []int{64, 128}, boards: []int{1}, engines: []int{1}}); err != nil {
		t.Errorf("run(secvi): %v", err)
	}
	if err := run("scale", "text", params{sizes: []int{64}, boards: []int{1, 2}, engines: []int{1}}); err != nil {
		t.Errorf("run(scale): %v", err)
	}
	if err := run("fault", "bench", params{sizes: []int{64}, boards: []int{1}, engines: []int{1}}); err != nil {
		t.Errorf("run(fault, bench): %v", err)
	}
}
