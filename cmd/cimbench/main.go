// Command cimbench regenerates every evaluation artifact of "Computing
// In-Memory, Revisited": Fig 2, Table 1, Table 2, and the Section VI Dot
// Product Engine results.
//
// Usage:
//
//	cimbench                  # run everything
//	cimbench -exp fig2        # one experiment: fig2, table1, table2,
//	                          # secvi, scale, adc, noise, parallelism, fault
//	cimbench -sizes 512,4096  # layer sizes for the Section VI sweep
//	cimbench -parallel 8      # simulation worker-pool width (wall-clock
//	                          # only; 1 = serial, 0 = GOMAXPROCS default)
//	cimbench -exp fault -format bench
//	                          # emit the fault sweep as benchmark result
//	                          # lines for cmd/benchjson (make bench-fault)
//	cimbench -exp obs -format bench
//	                          # tracer overhead measurements (make bench-obs)
//	cimbench -exp fleet -format bench -engines 1,2,4,8
//	                          # cluster-scale serving sweep: routing policy x
//	                          # fleet size, rolling reprogram mid-run
//	                          # (make bench-fleet)
//	cimbench -exp hybrid -format bench
//	                          # CIM-vs-CPU crossover sweep + mixed-workload
//	                          # dispatch comparison (make bench-hybrid)
//	cimbench -exp chaos -format bench
//	                          # SLO-retention chaos sweep: scenario x hedging
//	                          # grid against the fault-free oracle
//	                          # (make bench-chaos, gated by -gate-chaos)
//	cimbench -trace out.json  # run the traced reference workload and write
//	                          # a Chrome trace_event file (chrome://tracing,
//	                          # ui.perfetto.dev)
//	cimbench -attr            # same workload, print the per-span simulated
//	                          # cost-attribution table
//
// Simulated results are bit-identical at every -parallel width: the flag
// only controls how many OS threads chew through the independent tiles,
// batch items, and sweep points (see docs/PARALLELISM.md). That includes
// the noisy experiments (adc, noise): analog read noise is counter-based —
// every draw is a pure function of (seed, inference, stage, block,
// position) — so noisy sweeps fan out like noise-free ones instead of
// forcing themselves serial. Selected experiments also run concurrently
// with each other, with output printed in the canonical order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cimrev/internal/energy"
	"cimrev/internal/experiments"
	"cimrev/internal/fleet"
	"cimrev/internal/obs"
	"cimrev/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig2, table1, table2, secvi, scale, adc, noise, parallelism, fault, hybrid, obs, fleet, chaos")
	sizes := flag.String("sizes", "512,1024,2048,4096", "comma-separated layer sizes for the Section VI sweep")
	boards := flag.String("boards", "1,2,4,8,16", "comma-separated board counts for the scale experiment")
	engines := flag.String("engines", "1,2,4,8", "comma-separated fleet sizes for the fleet serving sweep")
	workers := flag.Int("parallel", 0, "simulation worker-pool width: N goroutines, 1 = serial, 0 = GOMAXPROCS (results are identical at any width)")
	format := flag.String("format", "text", "output format: text (human tables) or bench (benchmark result lines, fault/obs/fleet only)")
	trace := flag.String("trace", "", "run the traced reference workload and write Chrome trace_event JSON to this file")
	attr := flag.Bool("attr", false, "run the traced reference workload and print the cost-attribution table")
	flag.Parse()

	parallel.SetWidth(*workers)
	if *trace != "" || *attr {
		if err := runTrace(*trace, *attr); err != nil {
			fmt.Fprintln(os.Stderr, "cimbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *sizes, *boards, *engines, *format); err != nil {
		fmt.Fprintln(os.Stderr, "cimbench:", err)
		os.Exit(1)
	}
}

// runTrace executes the traced reference workload (experiments.TraceRun)
// and emits the requested artifacts: a Chrome trace file, the attribution
// table, or both. The bit-identity summary always prints — it is the
// trace's correctness witness (SumRoots == untraced total).
func runTrace(traceFile string, attr bool) error {
	res, err := experiments.TraceRun()
	if err != nil {
		return err
	}
	if !res.BitIdentical() {
		return fmt.Errorf("trace cost fold %+v != untraced total %+v", res.Traced, res.Untraced)
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, res.Spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cimbench: wrote %d spans to %s\n", len(res.Spans), traceFile)
	}
	if attr {
		fmt.Print(res.Format())
	} else {
		fmt.Printf("trace: %d spans, SumRoots bit-identical to untraced total (%s, %s)\n",
			len(res.Spans),
			energy.FormatLatency(res.Traced.LatencyPS), energy.FormatEnergy(res.Traced.EnergyPJ))
	}
	return nil
}

// formatter is the common shape of every experiment result.
type formatter interface{ Format() string }

// benchFault adapts a FaultResult so the generic job machinery prints its
// benchmark-line rendering instead of the human table.
type benchFault struct{ res *experiments.FaultResult }

func (b benchFault) Format() string { return b.res.BenchFormat() }

// benchObs does the same for the tracer-overhead measurements.
type benchObs struct{ res *experiments.ObsResult }

func (b benchObs) Format() string { return b.res.BenchFormat() }

// benchFleet does the same for the fleet serving sweep.
type benchFleet struct{ res *experiments.FleetResult }

func (b benchFleet) Format() string { return b.res.BenchFormat() }

// benchHybrid does the same for the hybrid dispatch crossover sweep.
type benchHybrid struct{ res *experiments.HybridResult }

func (b benchHybrid) Format() string { return b.res.BenchFormat() }

// benchChaos does the same for the SLO-retention chaos sweep.
type benchChaos struct{ res *experiments.ChaosResult }

func (b benchChaos) Format() string { return b.res.BenchFormat() }

func run(exp, sizeList, boardList, engineList, format string) error {
	sizes, err := parseInts(sizeList)
	if err != nil {
		return fmt.Errorf("parse -sizes: %w", err)
	}
	boards, err := parseInts(boardList)
	if err != nil {
		return fmt.Errorf("parse -boards: %w", err)
	}
	engines, err := parseInts(engineList)
	if err != nil {
		return fmt.Errorf("parse -engines: %w", err)
	}
	if format != "text" && format != "bench" {
		return fmt.Errorf("unknown format %q (want text or bench)", format)
	}
	if format == "bench" && exp != "fault" && exp != "obs" && exp != "fleet" && exp != "hybrid" && exp != "chaos" {
		return fmt.Errorf("-format bench is only supported with -exp fault, -exp obs, -exp fleet, -exp hybrid, or -exp chaos")
	}

	// The canonical experiment order. Each job is independent, so selected
	// jobs fan out across the worker pool; outputs are collected by index
	// and printed in this order regardless of completion order.
	jobs := []struct {
		name string
		fn   func() (formatter, error)
	}{
		{"fig2", func() (formatter, error) { return experiments.Fig2() }},
		{"table1", func() (formatter, error) { return experiments.Table1() }},
		{"table2", func() (formatter, error) { return experiments.Table2() }},
		{"secvi", func() (formatter, error) { return experiments.SecVI(sizes) }},
		{"scale", func() (formatter, error) { return experiments.Scale(boards, 512, 64) }},
		{"adc", func() (formatter, error) { return experiments.ADCAblation([]int{2, 4, 6, 8, 10}) }},
		{"noise", func() (formatter, error) { return experiments.NoiseAblation([]float64{0, 0.01, 0.02, 0.05, 0.1, 0.3}) }},
		{"parallelism", func() (formatter, error) {
			return experiments.ParallelismSweep([]float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.99})
		}},
		{"fault", func() (formatter, error) {
			res, err := experiments.FaultSweep(
				[]float64{0, 0.002, 0.005, 0.01, 0.02},
				[]int{0, 4, 8, 16},
			)
			if err != nil {
				return nil, err
			}
			if format == "bench" {
				return benchFault{res}, nil
			}
			return res, nil
		}},
		{"obs", func() (formatter, error) {
			res, err := experiments.ObsOverhead()
			if err != nil {
				return nil, err
			}
			if format == "bench" {
				return benchObs{res}, nil
			}
			return res, nil
		}},
		{"hybrid", func() (formatter, error) {
			res, err := experiments.HybridSweep(
				[]int{16, 32, 64, 128, 256, 512},
				[]int{1, 8, 64},
				24,
			)
			if err != nil {
				return nil, err
			}
			if format == "bench" {
				return benchHybrid{res}, nil
			}
			return res, nil
		}},
		{"fleet", func() (formatter, error) {
			res, err := experiments.FleetSweep(engines, fleet.PolicyNames(), 32, 2000)
			if err != nil {
				return nil, err
			}
			if format == "bench" {
				return benchFleet{res}, nil
			}
			return res, nil
		}},
		{"chaos", func() (formatter, error) {
			res, err := experiments.ChaosSweep(nil, 512)
			if err != nil {
				return nil, err
			}
			if format == "bench" {
				return benchChaos{res}, nil
			}
			return res, nil
		}},
	}

	selected := jobs[:0:0]
	for _, j := range jobs {
		// The obs overhead measurement is wall-clock timing, and the fleet
		// and chaos sweeps run client goroutines with wall-clock latency
		// quantiles (chaos also sleeps injected delays); all three only run
		// when asked for explicitly, never as part of -exp all (they would
		// contend with the other experiments and measure noise).
		if (j.name == "obs" && exp != "obs") || (j.name == "fleet" && exp != "fleet") || (j.name == "chaos" && exp != "chaos") {
			continue
		}
		if exp == "all" || exp == j.name {
			selected = append(selected, j)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q (want all, fig2, table1, table2, secvi, scale, adc, noise, parallelism, fault, hybrid, obs, fleet, chaos)", exp)
	}

	outputs, err := parallel.MapErr(len(selected), func(i int) (string, error) {
		res, err := selected[i].fn()
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	})
	if err != nil {
		return err
	}
	for _, out := range outputs {
		fmt.Println(out)
	}
	return nil
}

func parseInts(list string) ([]int, error) {
	parts := strings.Split(list, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
