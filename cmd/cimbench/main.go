// Command cimbench regenerates every evaluation artifact of "Computing
// In-Memory, Revisited": Fig 2, Table 1, Table 2, and the Section VI Dot
// Product Engine results.
//
// Usage:
//
//	cimbench                  # run everything
//	cimbench -exp fig2        # one experiment: fig2, table1, table2,
//	                          # secvi, scale, adc, noise, parallelism, fault
//	cimbench -sizes 512,4096  # layer sizes for the Section VI sweep
//	cimbench -parallel 8      # simulation worker-pool width (wall-clock
//	                          # only; 1 = serial, 0 = GOMAXPROCS default)
//	cimbench -exp fault -format bench
//	                          # emit the fault sweep as benchmark result
//	                          # lines for cmd/benchjson (make bench-fault)
//	cimbench -exp obs -format bench
//	                          # tracer overhead measurements (make bench-obs)
//	cimbench -exp fleet -format bench -engines 1,2,4,8
//	                          # cluster-scale serving sweep: routing policy x
//	                          # fleet size, rolling reprogram mid-run
//	                          # (make bench-fleet)
//	cimbench -exp hybrid -format bench
//	                          # CIM-vs-CPU crossover sweep + mixed-workload
//	                          # dispatch comparison (make bench-hybrid)
//	cimbench -exp chaos -format bench
//	                          # SLO-retention chaos sweep: scenario x hedging
//	                          # grid against the fault-free oracle
//	                          # (make bench-chaos, gated by -gate-chaos)
//	cimbench -exp capacity -format bench -slo 25ms
//	                          # open-loop SLO capacity sweep: fleet size x
//	                          # offered rate grid, rated capacity per size,
//	                          # closed-vs-open comparison (make
//	                          # bench-capacity, gated by -gate-capacity)
//	cimbench -trace out.json  # run the traced reference workload and write
//	                          # a Chrome trace_event file (chrome://tracing,
//	                          # ui.perfetto.dev)
//	cimbench -attr            # same workload, print the per-span simulated
//	                          # cost-attribution table
//
// Experiments are rows of a single registry table (the experiment type
// below): name, -exp all membership, bench-format support, and runner
// live in one place, and the -exp usage string, format validation, and
// error text all derive from it.
//
// Simulated results are bit-identical at every -parallel width: the flag
// only controls how many OS threads chew through the independent tiles,
// batch items, and sweep points (see docs/PARALLELISM.md). That includes
// the noisy experiments (adc, noise): analog read noise is counter-based —
// every draw is a pure function of (seed, inference, stage, block,
// position) — so noisy sweeps fan out like noise-free ones instead of
// forcing themselves serial. Selected experiments also run concurrently
// with each other, with output printed in the canonical order. The
// wall-clock experiments (obs, fleet, chaos, capacity) are marked solo in
// the registry: they run only when selected explicitly, never under
// -exp all, where contention with the other experiments would measure
// noise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cimrev/internal/energy"
	"cimrev/internal/experiments"
	"cimrev/internal/fleet"
	"cimrev/internal/obs"
	"cimrev/internal/parallel"
)

// formatter is the common shape of every experiment result.
type formatter interface{ Format() string }

// benchable is the additional shape of results that can render as
// benchmark result lines for cmd/benchjson.
type benchable interface{ BenchFormat() string }

// params carries the parsed flag values into experiment runners.
type params struct {
	sizes, boards, engines []int
	// enginesSet records whether -engines was given explicitly; the
	// capacity sweep keeps its own default fleet sizes otherwise.
	enginesSet bool
	rates      []float64
	slo        time.Duration
}

// experiment is one registry row: the single place an experiment's name,
// -exp all membership, bench support, and runner are declared.
type experiment struct {
	name string
	// solo experiments measure wall-clock behavior (client goroutines,
	// timed sleeps, latency quantiles); they run only when selected
	// explicitly, never as part of -exp all.
	solo bool
	// bench reports whether the result supports -format bench.
	bench bool
	run   func(p params) (formatter, error)
}

// registry is the experiment table, in canonical output order.
var registry = []experiment{
	{name: "fig2", run: func(params) (formatter, error) { return experiments.Fig2() }},
	{name: "table1", run: func(params) (formatter, error) { return experiments.Table1() }},
	{name: "table2", run: func(params) (formatter, error) { return experiments.Table2() }},
	{name: "secvi", run: func(p params) (formatter, error) { return experiments.SecVI(p.sizes) }},
	{name: "scale", run: func(p params) (formatter, error) { return experiments.Scale(p.boards, 512, 64) }},
	{name: "adc", run: func(params) (formatter, error) {
		return experiments.ADCAblation([]int{2, 4, 6, 8, 10})
	}},
	{name: "noise", run: func(params) (formatter, error) {
		return experiments.NoiseAblation([]float64{0, 0.01, 0.02, 0.05, 0.1, 0.3})
	}},
	{name: "parallelism", run: func(params) (formatter, error) {
		return experiments.ParallelismSweep([]float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.99})
	}},
	{name: "fault", bench: true, run: func(params) (formatter, error) {
		return experiments.FaultSweep(
			[]float64{0, 0.002, 0.005, 0.01, 0.02},
			[]int{0, 4, 8, 16},
		)
	}},
	{name: "obs", solo: true, bench: true, run: func(params) (formatter, error) {
		return experiments.ObsOverhead()
	}},
	{name: "hybrid", bench: true, run: func(params) (formatter, error) {
		return experiments.HybridSweep(
			[]int{16, 32, 64, 128, 256, 512},
			[]int{1, 8, 64},
			24,
		)
	}},
	{name: "fleet", solo: true, bench: true, run: func(p params) (formatter, error) {
		return experiments.FleetSweep(p.engines, fleet.PolicyNames(), 32, 2000)
	}},
	{name: "chaos", solo: true, bench: true, run: func(params) (formatter, error) {
		return experiments.ChaosSweep(nil, 512)
	}},
	{name: "capacity", solo: true, bench: true, run: func(p params) (formatter, error) {
		cfg := experiments.CapacityConfig{RatesRPS: p.rates, SLO: p.slo}
		if p.enginesSet {
			cfg.Engines = p.engines
		}
		return experiments.CapacitySweep(cfg)
	}},
}

// expNames is the -exp vocabulary, derived from the registry.
func expNames() []string {
	names := make([]string, 0, len(registry)+1)
	names = append(names, "all")
	for _, e := range registry {
		names = append(names, e.name)
	}
	return names
}

// benchNames lists the experiments that support -format bench.
func benchNames() []string {
	var names []string
	for _, e := range registry {
		if e.bench {
			names = append(names, e.name)
		}
	}
	return names
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(expNames(), ", "))
	sizes := flag.String("sizes", "512,1024,2048,4096", "comma-separated layer sizes for the Section VI sweep")
	boards := flag.String("boards", "1,2,4,8,16", "comma-separated board counts for the scale experiment")
	engines := flag.String("engines", "1,2,4,8", "comma-separated fleet sizes for the fleet serving and capacity sweeps")
	rates := flag.String("rates", "", "comma-separated offered rates (req/s) for the capacity sweep (empty = built-in ladder)")
	slo := flag.Duration("slo", 25*time.Millisecond, "p99 service-latency SLO for the capacity sweep")
	workers := flag.Int("parallel", 0, "simulation worker-pool width: N goroutines, 1 = serial, 0 = GOMAXPROCS (results are identical at any width)")
	format := flag.String("format", "text", "output format: text (human tables) or bench (benchmark result lines, "+strings.Join(benchNames(), "/")+" only)")
	trace := flag.String("trace", "", "run the traced reference workload and write Chrome trace_event JSON to this file")
	attr := flag.Bool("attr", false, "run the traced reference workload and print the cost-attribution table")
	flag.Parse()

	parallel.SetWidth(*workers)
	if *trace != "" || *attr {
		if err := runTrace(*trace, *attr); err != nil {
			fmt.Fprintln(os.Stderr, "cimbench:", err)
			os.Exit(1)
		}
		return
	}
	p, err := parseParams(*sizes, *boards, *engines, *rates, *slo)
	if err == nil {
		p.enginesSet = flagWasSet("engines")
		err = run(*exp, *format, p)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cimbench:", err)
		os.Exit(1)
	}
}

// flagWasSet reports whether the named flag appeared on the command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// parseParams converts the list-valued flags.
func parseParams(sizeList, boardList, engineList, rateList string, slo time.Duration) (params, error) {
	var p params
	var err error
	if p.sizes, err = parseInts(sizeList); err != nil {
		return p, fmt.Errorf("parse -sizes: %w", err)
	}
	if p.boards, err = parseInts(boardList); err != nil {
		return p, fmt.Errorf("parse -boards: %w", err)
	}
	if p.engines, err = parseInts(engineList); err != nil {
		return p, fmt.Errorf("parse -engines: %w", err)
	}
	if rateList != "" {
		if p.rates, err = parseFloats(rateList); err != nil {
			return p, fmt.Errorf("parse -rates: %w", err)
		}
	}
	p.slo = slo
	return p, nil
}

// runTrace executes the traced reference workload (experiments.TraceRun)
// and emits the requested artifacts: a Chrome trace file, the attribution
// table, or both. The bit-identity summary always prints — it is the
// trace's correctness witness (SumRoots == untraced total).
func runTrace(traceFile string, attr bool) error {
	res, err := experiments.TraceRun()
	if err != nil {
		return err
	}
	if !res.BitIdentical() {
		return fmt.Errorf("trace cost fold %+v != untraced total %+v", res.Traced, res.Untraced)
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, res.Spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cimbench: wrote %d spans to %s\n", len(res.Spans), traceFile)
	}
	if attr {
		fmt.Print(res.Format())
	} else {
		fmt.Printf("trace: %d spans, SumRoots bit-identical to untraced total (%s, %s)\n",
			len(res.Spans),
			energy.FormatLatency(res.Traced.LatencyPS), energy.FormatEnergy(res.Traced.EnergyPJ))
	}
	return nil
}

// run selects registry rows for exp and executes them across the worker
// pool, printing outputs in canonical order. All selection and format
// rules — which experiments -exp all covers, which support -format bench,
// and the error vocabulary — derive from the registry table.
func run(exp, format string, p params) error {
	if format != "text" && format != "bench" {
		return fmt.Errorf("unknown format %q (want text or bench)", format)
	}
	selected := registry[:0:0]
	for _, e := range registry {
		if exp == e.name || (exp == "all" && !e.solo) {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q (want %s)", exp, strings.Join(expNames(), ", "))
	}
	if format == "bench" {
		for _, e := range selected {
			if !e.bench {
				return fmt.Errorf("-format bench is not supported by %q (supported: %s)",
					e.name, strings.Join(benchNames(), ", "))
			}
		}
	}

	outputs, err := parallel.MapErr(len(selected), func(i int) (string, error) {
		res, err := selected[i].run(p)
		if err != nil {
			return "", err
		}
		if format == "bench" {
			b, ok := res.(benchable)
			if !ok {
				return "", fmt.Errorf("experiment %q is marked bench but its result has no BenchFormat", selected[i].name)
			}
			return b.BenchFormat(), nil
		}
		return res.Format(), nil
	})
	if err != nil {
		return err
	}
	for _, out := range outputs {
		fmt.Println(out)
	}
	return nil
}

func parseInts(list string) ([]int, error) {
	parts := strings.Split(list, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(list string) ([]float64, error) {
	parts := strings.Split(list, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
