// Command cimbench regenerates every evaluation artifact of "Computing
// In-Memory, Revisited": Fig 2, Table 1, Table 2, and the Section VI Dot
// Product Engine results.
//
// Usage:
//
//	cimbench                  # run everything
//	cimbench -exp fig2        # one experiment: fig2, table1, table2,
//	                          # secvi, scale
//	cimbench -sizes 512,4096  # layer sizes for the Section VI sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cimrev/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig2, table1, table2, secvi, scale, adc, noise, parallelism")
	sizes := flag.String("sizes", "512,1024,2048,4096", "comma-separated layer sizes for the Section VI sweep")
	boards := flag.String("boards", "1,2,4,8,16", "comma-separated board counts for the scale experiment")
	flag.Parse()

	if err := run(*exp, *sizes, *boards); err != nil {
		fmt.Fprintln(os.Stderr, "cimbench:", err)
		os.Exit(1)
	}
}

func run(exp, sizeList, boardList string) error {
	sizes, err := parseInts(sizeList)
	if err != nil {
		return fmt.Errorf("parse -sizes: %w", err)
	}
	boards, err := parseInts(boardList)
	if err != nil {
		return fmt.Errorf("parse -boards: %w", err)
	}

	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("fig2") {
		res, err := experiments.Fig2()
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		ran = true
	}
	if want("table1") {
		res, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		ran = true
	}
	if want("table2") {
		res, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		ran = true
	}
	if want("secvi") {
		res, err := experiments.SecVI(sizes)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		ran = true
	}
	if want("scale") {
		res, err := experiments.Scale(boards, 512, 64)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		ran = true
	}
	if want("adc") {
		res, err := experiments.ADCAblation([]int{2, 4, 6, 8, 10})
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		ran = true
	}
	if want("noise") {
		res, err := experiments.NoiseAblation([]float64{0, 0.01, 0.02, 0.05, 0.1, 0.3})
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		ran = true
	}
	if want("parallelism") {
		res, err := experiments.ParallelismSweep([]float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.99})
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want all, fig2, table1, table2, secvi, scale, adc, noise, parallelism)", exp)
	}
	return nil
}

func parseInts(list string) ([]int, error) {
	parts := strings.Split(list, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
