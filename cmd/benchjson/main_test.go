package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cimrev
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkCrossbarMVM/256x256_8b-8         	     646	   1865410 ns/op	    6144 B/op	       3 allocs/op
BenchmarkCrossbarMVM/256x256_8b_func-8    	    1621	    740025 ns/op	       0 B/op	       0 allocs/op
BenchmarkSecVILatency-8                   	      12	  98765432 ns/op
PASS
ok  	cimrev	12.345s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Metadata["cpu"]; got != "Intel(R) Xeon(R) CPU @ 2.10GHz" {
		t.Errorf("cpu metadata = %q", got)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(doc.Results))
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkCrossbarMVM/256x256_8b" || r.Procs != 8 {
		t.Errorf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 646 || r.NsPerOp != 1865410 || r.BytesPerOp != 6144 || r.AllocsPerOp != 3 {
		t.Errorf("first result fields wrong: %+v", r)
	}
	// Line without -benchmem columns: B/op and allocs/op report absent.
	r = doc.Results[2]
	if r.BytesPerOp != -1 || r.AllocsPerOp != -1 {
		t.Errorf("missing benchmem columns should be -1, got %+v", r)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	doc, err := Parse(strings.NewReader("BenchmarkBroken\nsome log line\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("expected 0 results, got %d", len(doc.Results))
	}
}

// TestParseExtraMetrics: custom (value, unit) pairs — the
// testing.B.ReportMetric convention cmd/cimserve uses for throughput and
// latency quantiles — land in the Extra map instead of being dropped.
func TestParseExtraMetrics(t *testing.T) {
	in := strings.NewReader(
		"BenchmarkServe/batch_c64-1 2048 812345 ns/op 7890.5 req_per_s 5.12 sim_speedup 1048576 p99_ns\n")
	doc, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(doc.Results))
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkServe/batch_c64" || r.NsPerOp != 812345 {
		t.Errorf("core fields mangled: %+v", r)
	}
	want := map[string]float64{"req_per_s": 7890.5, "sim_speedup": 5.12, "p99_ns": 1048576}
	for k, v := range want {
		if r.Extra[k] != v {
			t.Errorf("Extra[%q] = %g, want %g", k, r.Extra[k], v)
		}
	}
	if r.BytesPerOp != -1 || r.AllocsPerOp != -1 {
		t.Errorf("absent benchmem fields should stay -1: %+v", r)
	}
}

// gateDoc builds a Document from (name, speedup) pairs; a negative
// speedup means "no speedup metric reported".
func gateDoc(entries map[string]float64) *Document {
	doc := &Document{}
	for name, sp := range entries {
		res := Result{Name: name, NsPerOp: 1}
		if sp >= 0 {
			res.Extra = map[string]float64{"speedup": sp}
		}
		doc.Results = append(doc.Results, res)
	}
	return doc
}

// TestGateBatchSpeedup pins the `make bench-mvm` regression gate: batch
// >= 8 deterministic results on panels >= 256 must meet the floor; noisy
// results, small batches, and cache-resident sub-256 panels are exempt,
// and a sweep with nothing to check fails loudly.
func TestGateBatchSpeedup(t *testing.T) {
	ok := gateDoc(map[string]float64{
		"BenchmarkCrossbarMVMBatch/256x256_8b_b1":        0.9, // batch 1: exempt
		"BenchmarkCrossbarMVMBatch/256x256_8b_b8":        1.7,
		"BenchmarkCrossbarMVMBatch/256x256_8b_b32":       2.1,
		"BenchmarkCrossbarMVMBatch/256x256_8b_func_b32":  1.9,
		"BenchmarkCrossbarMVMBatch/256x256_8b_noisy_b32": 1.1, // noisy: exempt
		"BenchmarkCrossbarMVMBatch/64x64_8b_func_b8":     1.1, // sub-256 panel: exempt
		"BenchmarkCrossbarMVMBatch/128x128_8b_func_b8":   1.4, // sub-256 panel: exempt
		"BenchmarkCrossbarMVM/256x256_8b":                -1,  // single sweep: ignored
	})
	if err := GateBatchSpeedup(ok, 1.5); err != nil {
		t.Errorf("passing sweep gated: %v", err)
	}

	slow := gateDoc(map[string]float64{
		"BenchmarkCrossbarMVMBatch/256x256_8b_b32": 1.2,
	})
	if err := GateBatchSpeedup(slow, 1.5); err == nil {
		t.Error("speedup 1.2 passed a 1.5 gate")
	}

	missing := gateDoc(map[string]float64{
		"BenchmarkCrossbarMVMBatch/256x256_8b_b32": -1,
	})
	if err := GateBatchSpeedup(missing, 1.5); err == nil {
		t.Error("result without a speedup metric passed the gate")
	}

	empty := gateDoc(map[string]float64{
		"BenchmarkCrossbarMVMBatch/256x256_8b_noisy_b32": 1.0,
		"BenchmarkCrossbarMVMBatch/128x128_8b_b32":       1.0,
	})
	if err := GateBatchSpeedup(empty, 1.5); err == nil {
		t.Error("gate passed vacuously with no eligible batch results")
	}
}

// hybridDoc builds a Document of hybrid sweep/mixed rows: sweep maps cell
// name -> speedup_cim, mixed maps dispatch mode -> sim_req_per_s. A
// negative value omits the metric to exercise the vacuous-pass errors.
func hybridDoc(sweep map[string]float64, mixed map[string]float64) *Document {
	doc := &Document{}
	for name, sp := range sweep {
		res := Result{Name: name, Iterations: 1}
		if sp >= 0 {
			res.Extra = map[string]float64{"speedup_cim": sp}
		}
		doc.Results = append(doc.Results, res)
	}
	for mode, rps := range mixed {
		res := Result{Name: "BenchmarkHybridMixed/dispatch=" + mode, Iterations: 1}
		if rps >= 0 {
			res.Extra = map[string]float64{"sim_req_per_s": rps}
		}
		doc.Results = append(doc.Results, res)
	}
	return doc
}

// TestGateHybrid pins the `make bench-hybrid` acceptance gate: the sweep
// must show cells on both sides of the crossover, all three mixed rows
// must be present with throughput metrics, and auto must at least match
// the best single backend. Missing rows or metrics fail rather than pass
// vacuously.
func TestGateHybrid(t *testing.T) {
	sweep := map[string]float64{
		"BenchmarkHybridSweep/size=16/batch=1":   0.01,
		"BenchmarkHybridSweep/size=512/batch=64": 2.5,
	}
	ok := hybridDoc(sweep, map[string]float64{"cim": 1000, "vn": 5000, "auto": 6000})
	if err := GateHybrid(ok); err != nil {
		t.Errorf("passing sweep gated: %v", err)
	}
	tie := hybridDoc(sweep, map[string]float64{"cim": 1000, "vn": 5000, "auto": 5000})
	if err := GateHybrid(tie); err != nil {
		t.Errorf("auto == best single backend gated: %v", err)
	}
	lost := hybridDoc(sweep, map[string]float64{"cim": 1000, "vn": 5000, "auto": 4999})
	if err := GateHybrid(lost); err == nil {
		t.Error("auto losing to the best single backend passed")
	}
	oneSided := hybridDoc(map[string]float64{
		"BenchmarkHybridSweep/size=256/batch=8":  3.0,
		"BenchmarkHybridSweep/size=512/batch=64": 2.5,
	}, map[string]float64{"cim": 1000, "vn": 500, "auto": 1000})
	if err := GateHybrid(oneSided); err == nil {
		t.Error("one-sided sweep (no crossover) passed")
	}
	missingMode := hybridDoc(sweep, map[string]float64{"cim": 1000, "auto": 5000})
	if err := GateHybrid(missingMode); err == nil {
		t.Error("missing vn row passed")
	}
	missingMetric := hybridDoc(sweep, map[string]float64{"cim": 1000, "vn": -1, "auto": 5000})
	if err := GateHybrid(missingMetric); err == nil {
		t.Error("mixed row without sim_req_per_s passed")
	}
	noMetricCell := hybridDoc(map[string]float64{
		"BenchmarkHybridSweep/size=16/batch=1": -1,
	}, map[string]float64{"cim": 1000, "vn": 5000, "auto": 5000})
	if err := GateHybrid(noMetricCell); err == nil {
		t.Error("sweep cell without speedup_cim passed")
	}
}

// chaosCell is one BenchmarkChaos row for chaosDoc. A negative field omits
// that metric to exercise the vacuous-pass errors.
type chaosCell struct {
	lost, bit, p99 float64
}

func chaosDoc(cells map[string]chaosCell) *Document {
	doc := &Document{}
	for name, c := range cells {
		res := Result{Name: name, Iterations: 1, Extra: map[string]float64{}}
		if c.lost >= 0 {
			res.Extra["lost"] = c.lost
		}
		if c.bit >= 0 {
			res.Extra["bit_identical"] = c.bit
		}
		if c.p99 >= 0 {
			res.Extra["wall_p99_ns"] = c.p99
		}
		doc.Results = append(doc.Results, res)
	}
	return doc
}

// TestGateChaos pins the `make bench-chaos` acceptance gate: zero lost
// keyed requests and bit identity in every cell, overload p99 within 10x
// the fault-free baseline per hedging flag, and no vacuous passes when
// cells or metrics are missing.
func TestGateChaos(t *testing.T) {
	good := func() map[string]chaosCell {
		return map[string]chaosCell{
			"BenchmarkChaos/scenario=none/hedged=off":      {0, 1, 1e6},
			"BenchmarkChaos/scenario=none/hedged=on":       {0, 1, 1.2e6},
			"BenchmarkChaos/scenario=straggler/hedged=off": {0, 1, 30e6},
			"BenchmarkChaos/scenario=straggler/hedged=on":  {0, 1, 5e6},
			"BenchmarkChaos/scenario=crash/hedged=off":     {0, 1, 3e6},
			"BenchmarkChaos/scenario=crash/hedged=on":      {0, 1, 3e6},
			"BenchmarkChaos/scenario=overload/hedged=off":  {0, 1, 8e6},
			"BenchmarkChaos/scenario=overload/hedged=on":   {0, 1, 9e6},
		}
	}
	if err := GateChaos(chaosDoc(good())); err != nil {
		t.Errorf("passing sweep gated: %v", err)
	}

	lost := good()
	lost["BenchmarkChaos/scenario=crash/hedged=off"] = chaosCell{2, 1, 3e6}
	if err := GateChaos(chaosDoc(lost)); err == nil {
		t.Error("sweep with lost keyed requests passed")
	}

	bits := good()
	bits["BenchmarkChaos/scenario=straggler/hedged=on"] = chaosCell{0, 0, 5e6}
	if err := GateChaos(chaosDoc(bits)); err == nil {
		t.Error("sweep with non-bit-identical outputs passed")
	}

	slow := good()
	slow["BenchmarkChaos/scenario=overload/hedged=off"] = chaosCell{0, 1, 11e6}
	if err := GateChaos(chaosDoc(slow)); err == nil {
		t.Error("overload p99 above 10x baseline passed")
	}

	noLost := good()
	noLost["BenchmarkChaos/scenario=crash/hedged=off"] = chaosCell{-1, 1, 3e6}
	if err := GateChaos(chaosDoc(noLost)); err == nil {
		t.Error("cell without a lost metric passed")
	}

	noBit := good()
	noBit["BenchmarkChaos/scenario=crash/hedged=off"] = chaosCell{0, -1, 3e6}
	if err := GateChaos(chaosDoc(noBit)); err == nil {
		t.Error("cell without a bit_identical metric passed")
	}

	noP99 := good()
	noP99["BenchmarkChaos/scenario=overload/hedged=off"] = chaosCell{0, 1, -1}
	if err := GateChaos(chaosDoc(noP99)); err == nil {
		t.Error("cell without a wall_p99_ns metric passed")
	}

	if err := GateChaos(chaosDoc(map[string]chaosCell{
		"BenchmarkHybridSweep/size=16/batch=1": {0, 1, 1e6},
	})); err == nil {
		t.Error("gate passed vacuously with no chaos cells")
	}

	if err := GateChaos(chaosDoc(map[string]chaosCell{
		"BenchmarkChaos/scenario=straggler/hedged=off": {0, 1, 30e6},
		"BenchmarkChaos/scenario=straggler/hedged=on":  {0, 1, 5e6},
	})); err == nil {
		t.Error("gate passed without a (none, overload) p99 pair")
	}
}

// capCell is one capacity-grid cell for gate tests: p99 ns/op plus the
// pass/shed/lost bits. A metric set to -1 is omitted from the Extra map.
type capCell struct {
	p99, pass, shed, lost, slo float64
}

// capDoc builds a parsed document from capacity cells and rated rows.
func capDoc(cells map[string]capCell, rated map[string]float64) *Document {
	doc := &Document{}
	for name, c := range cells {
		res := Result{Name: name, NsPerOp: c.p99, Extra: map[string]float64{}}
		for metric, v := range map[string]float64{
			"pass": c.pass, "shed": c.shed, "lost": c.lost, "slo_ns": c.slo,
		} {
			if v != -1 {
				res.Extra[metric] = v
			}
		}
		doc.Results = append(doc.Results, res)
	}
	for name, rps := range rated {
		doc.Results = append(doc.Results, Result{
			Name:  name,
			Extra: map[string]float64{"rated_rps": rps},
		})
	}
	return doc
}

// TestGateCapacity pins the `make bench-capacity` acceptance gate: honest
// pass bits, a monotone passing prefix per engine count, rated = top of
// the prefix, and no vacuous passes when cells, metrics, or rated rows
// are missing.
func TestGateCapacity(t *testing.T) {
	const slo = 25e6
	good := func() map[string]capCell {
		return map[string]capCell{
			"BenchmarkCapacity/engines=1/rate=1000":  {2e6, 1, 0, 0, slo},
			"BenchmarkCapacity/engines=1/rate=4000":  {4e6, 1, 0, 0, slo},
			"BenchmarkCapacity/engines=1/rate=64000": {40e6, 0, 120, 0, slo},
			"BenchmarkCapacity/engines=2/rate=1000":  {2e6, 1, 0, 0, slo},
			"BenchmarkCapacity/engines=2/rate=4000":  {3e6, 1, 0, 0, slo},
			"BenchmarkCapacity/engines=2/rate=64000": {38e6, 0, 80, 0, slo},
		}
	}
	goodRated := func() map[string]float64 {
		return map[string]float64{
			"BenchmarkCapacityRated/engines=1": 4000,
			"BenchmarkCapacityRated/engines=2": 4000,
		}
	}
	if err := GateCapacity(capDoc(good(), goodRated())); err != nil {
		t.Errorf("passing sweep gated: %v", err)
	}

	dishonest := good()
	dishonest["BenchmarkCapacity/engines=1/rate=4000"] = capCell{4e6, 1, 3, 0, slo}
	if err := GateCapacity(capDoc(dishonest, goodRated())); err == nil {
		t.Error("cell claiming pass while shedding passed the gate")
	}

	lossy := good()
	lossy["BenchmarkCapacity/engines=1/rate=4000"] = capCell{4e6, 1, 0, 2, slo}
	if err := GateCapacity(capDoc(lossy, goodRated())); err == nil {
		t.Error("cell claiming pass with lost requests passed the gate")
	}

	lateButPass := good()
	lateButPass["BenchmarkCapacity/engines=2/rate=4000"] = capCell{30e6, 1, 0, 0, slo}
	if err := GateCapacity(capDoc(lateButPass, goodRated())); err == nil {
		t.Error("cell claiming pass above the SLO passed the gate")
	}

	hole := good()
	hole["BenchmarkCapacity/engines=1/rate=1000"] = capCell{30e6, 0, 10, 0, slo}
	if err := GateCapacity(capDoc(hole, goodRated())); err == nil {
		t.Error("non-monotone grid (fail below a pass) passed the gate")
	}

	wrongRated := goodRated()
	wrongRated["BenchmarkCapacityRated/engines=2"] = 1000
	if err := GateCapacity(capDoc(good(), wrongRated)); err == nil {
		t.Error("rated row below the passing prefix top passed the gate")
	}

	noRated := goodRated()
	delete(noRated, "BenchmarkCapacityRated/engines=2")
	if err := GateCapacity(capDoc(good(), noRated)); err == nil {
		t.Error("engine count without a rated row passed the gate")
	}

	noPass := good()
	noPass["BenchmarkCapacity/engines=1/rate=1000"] = capCell{30e6, 0, 10, 0, slo}
	noPass["BenchmarkCapacity/engines=1/rate=4000"] = capCell{30e6, 0, 10, 0, slo}
	if err := GateCapacity(capDoc(noPass, goodRated())); err == nil {
		t.Error("engine count with no passing rate passed the gate")
	}

	noMetric := good()
	noMetric["BenchmarkCapacity/engines=1/rate=4000"] = capCell{4e6, 1, -1, 0, slo}
	if err := GateCapacity(capDoc(noMetric, goodRated())); err == nil {
		t.Error("cell without a shed metric passed the gate")
	}

	orphanRated := goodRated()
	orphanRated["BenchmarkCapacityRated/engines=8"] = 4000
	if err := GateCapacity(capDoc(good(), orphanRated)); err == nil {
		t.Error("rated row without grid cells passed the gate")
	}

	if err := GateCapacity(capDoc(map[string]capCell{}, map[string]float64{})); err == nil {
		t.Error("gate passed vacuously with no capacity cells")
	}
}
