// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark results can be archived and diffed by machines
// instead of eyeballed in terminal scrollback.
//
// Usage:
//
//	go test -bench 'BenchmarkCrossbarMVM' -benchmem . | go run ./cmd/benchjson > BENCH_mvm.json
//	go run ./cmd/benchjson -in bench.txt -out BENCH_mvm.json
//
// The parser understands the standard benchmark result line
//
//	BenchmarkCrossbarMVM/256x256_8b-8   646   1865410 ns/op   6144 B/op   3 allocs/op
//
// plus the `goos:`/`goarch:`/`pkg:`/`cpu:` header lines, which are carried
// into the JSON as metadata. Non-benchmark lines (PASS, ok, test logs) are
// ignored, so the raw `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name with the -P GOMAXPROCS suffix
	// stripped, e.g. "BenchmarkCrossbarMVM/256x256_8b".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (the "-8" in "...-8"), 1 if absent.
	Procs int `json:"procs"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only with -benchmem;
	// they are -1 when the input line lacked them.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Extra carries custom (value, unit) pairs beyond the standard three
	// — testing.B.ReportMetric emits these, and cmd/cimserve uses them
	// for req_per_s, sim_speedup, and the p50/p95/p99 latency quantiles.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Document is the emitted JSON shape.
type Document struct {
	GeneratedAt string            `json:"generated_at"`
	Metadata    map[string]string `json:"metadata,omitempty"`
	Results     []Result          `json:"results"`
}

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	out := flag.String("out", "", "output file (default stdout)")
	gateBatch := flag.Float64("gate-batch-speedup", 0,
		"fail unless every deterministic BenchmarkCrossbarMVMBatch result at batch >= 8 reports a speedup metric at least this large (0 disables)")
	gateHybrid := flag.Bool("gate-hybrid", false,
		"fail unless the hybrid sweep shows a measured crossover and auto dispatch at least matches the best single backend")
	gateChaos := flag.Bool("gate-chaos", false,
		"fail unless the chaos sweep lost zero keyed requests, stayed bit-identical, and kept overload p99 within 10x the fault-free baseline")
	gateCapacity := flag.Bool("gate-capacity", false,
		"fail unless the capacity sweep's pass/fail grid is a monotone prefix per engine count and every rated capacity passes its SLO with zero lost requests")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	doc, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(doc.Results) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	// Gate after writing: a failing sweep still leaves the JSON artifact
	// on disk, so the offending numbers can be inspected.
	if *gateBatch > 0 {
		if err := GateBatchSpeedup(doc, *gateBatch); err != nil {
			fatal(err)
		}
	}
	if *gateHybrid {
		if err := GateHybrid(doc); err != nil {
			fatal(err)
		}
	}
	if *gateChaos {
		if err := GateChaos(doc); err != nil {
			fatal(err)
		}
	}
	if *gateCapacity {
		if err := GateCapacity(doc); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// GateBatchSpeedup enforces the GEMM-batching performance floor: every
// BenchmarkCrossbarMVMBatch result with batch >= 8 in a deterministic mode
// on an ISAAC-scale panel (size >= 256, the shapes the DPE actually maps
// layers onto) must carry a "speedup" metric (the benchmark's interleaved
// looped-MVMInto vs MVMBatchInto ratio, immune to host clock drift) of at
// least minRatio. Noisy-mode results are exempt: position-keyed noise
// draws dominate their runtime and cannot be amortized by batching, so
// their speedup ceiling is structural, not a regression signal. Sub-256
// panels are exempt for the symmetric reason: their packed panels are
// cache-resident even for the looped baseline, so there is little
// streamed-panel traffic to amortize and the (real but small) speedups
// sit too close to the floor to gate without flaking (docs/PERF.md). A
// matching result without the metric is an error — the gate must not
// pass vacuously.
func GateBatchSpeedup(doc *Document, minRatio float64) error {
	checked := 0
	for _, res := range doc.Results {
		rest, ok := strings.CutPrefix(res.Name, "BenchmarkCrossbarMVMBatch/")
		if !ok || strings.Contains(rest, "_noisy") {
			continue
		}
		if size, _, ok := strings.Cut(rest, "x"); ok {
			if n, err := strconv.Atoi(size); err == nil && n < 256 {
				continue
			}
		}
		i := strings.LastIndex(rest, "_b")
		if i < 0 {
			continue
		}
		batch, err := strconv.Atoi(rest[i+2:])
		if err != nil || batch < 8 {
			continue
		}
		checked++
		sp, ok := res.Extra["speedup"]
		if !ok {
			return fmt.Errorf("gate-batch-speedup: %s has no speedup metric", res.Name)
		}
		if sp < minRatio {
			return fmt.Errorf("gate-batch-speedup: %s speedup %.3f < %.3f", res.Name, sp, minRatio)
		}
	}
	if checked == 0 {
		return fmt.Errorf("gate-batch-speedup: no deterministic batch >= 8 results to check")
	}
	return nil
}

// GateHybrid enforces the hybrid-dispatch acceptance criteria on a
// cimbench -exp hybrid sweep (make bench-hybrid). Two things must hold:
//
//   - The crossover is measured, not asserted: among the
//     BenchmarkHybridSweep cells there is at least one with speedup_cim
//     below 1 (the Von Neumann twin wins) and at least one above 1 (the
//     crossbar wins). A grid that lands entirely on one side means the
//     dispatch decision is degenerate and the sweep proves nothing.
//   - Auto dispatch pays for itself: the BenchmarkHybridMixed rows for
//     all three modes are present with sim_req_per_s, and auto's
//     throughput is at least the best single backend's.
//
// Missing rows or metrics are errors — the gate must not pass vacuously.
func GateHybrid(doc *Document) error {
	var below, above int
	for _, res := range doc.Results {
		if !strings.HasPrefix(res.Name, "BenchmarkHybridSweep/") {
			continue
		}
		sp, ok := res.Extra["speedup_cim"]
		if !ok {
			return fmt.Errorf("gate-hybrid: %s has no speedup_cim metric", res.Name)
		}
		if sp < 1 {
			below++
		}
		if sp > 1 {
			above++
		}
	}
	if below == 0 || above == 0 {
		return fmt.Errorf("gate-hybrid: no measured crossover (%d cells favor VN, %d favor CIM; need both)", below, above)
	}
	mixed := map[string]float64{}
	for _, res := range doc.Results {
		mode, ok := strings.CutPrefix(res.Name, "BenchmarkHybridMixed/dispatch=")
		if !ok {
			continue
		}
		rps, ok := res.Extra["sim_req_per_s"]
		if !ok {
			return fmt.Errorf("gate-hybrid: %s has no sim_req_per_s metric", res.Name)
		}
		mixed[mode] = rps
	}
	for _, mode := range []string{"cim", "vn", "auto"} {
		if _, ok := mixed[mode]; !ok {
			return fmt.Errorf("gate-hybrid: missing BenchmarkHybridMixed/dispatch=%s result", mode)
		}
	}
	best := mixed["cim"]
	if mixed["vn"] > best {
		best = mixed["vn"]
	}
	if mixed["auto"] < best {
		return fmt.Errorf("gate-hybrid: auto dispatch %.0f req/s lost to best single backend %.0f req/s", mixed["auto"], best)
	}
	return nil
}

// GateChaos enforces the chaos-harness SLOs on a cimbench -exp chaos sweep
// (make bench-chaos). Three things must hold:
//
//   - Zero lost keyed requests: every BenchmarkChaos cell carries a "lost"
//     metric and it is 0. Chaos may cost latency, or shed under overload,
//     but a keyed request must never fail outright — hedging and typed
//     failover exist precisely so that a crashed or stalled engine's
//     requests land somewhere else.
//   - Bit identity: every cell's "bit_identical" metric is 1 — injected
//     faults perturb timing and availability, never answers.
//   - Bounded overload tail: for each hedging flag, the overload cell's
//     wall p99 is at most 10x the fault-free baseline cell's ("none",
//     same flag). Adaptive shedding is supposed to buy exactly this:
//     excess load is refused, admitted requests keep their latency.
//
// Missing cells or metrics are errors — the gate must not pass vacuously.
func GateChaos(doc *Document) error {
	checked := 0
	p99 := map[string]float64{} // "scenario/hedged" -> wall p99
	for _, res := range doc.Results {
		rest, ok := strings.CutPrefix(res.Name, "BenchmarkChaos/scenario=")
		if !ok {
			continue
		}
		checked++
		lost, ok := res.Extra["lost"]
		if !ok {
			return fmt.Errorf("gate-chaos: %s has no lost metric", res.Name)
		}
		if lost != 0 {
			return fmt.Errorf("gate-chaos: %s lost %.0f keyed requests, want 0", res.Name, lost)
		}
		bit, ok := res.Extra["bit_identical"]
		if !ok {
			return fmt.Errorf("gate-chaos: %s has no bit_identical metric", res.Name)
		}
		if bit != 1 {
			return fmt.Errorf("gate-chaos: %s is not bit-identical to the fault-free oracle", res.Name)
		}
		scenario, hedged, ok := strings.Cut(rest, "/hedged=")
		if !ok {
			return fmt.Errorf("gate-chaos: %s does not name a hedged flag", res.Name)
		}
		wp99, ok := res.Extra["wall_p99_ns"]
		if !ok {
			return fmt.Errorf("gate-chaos: %s has no wall_p99_ns metric", res.Name)
		}
		p99[scenario+"/"+hedged] = wp99
	}
	if checked == 0 {
		return fmt.Errorf("gate-chaos: no BenchmarkChaos results to check")
	}
	pairs := 0
	for _, hedged := range []string{"off", "on"} {
		base, okBase := p99["none/"+hedged]
		over, okOver := p99["overload/"+hedged]
		if !okBase || !okOver {
			continue
		}
		pairs++
		if base <= 0 {
			return fmt.Errorf("gate-chaos: baseline (hedged=%s) p99 is %.0f ns", hedged, base)
		}
		if over > 10*base {
			return fmt.Errorf("gate-chaos: overload p99 %.0f ns > 10x fault-free baseline %.0f ns (hedged=%s)",
				over, base, hedged)
		}
	}
	if pairs == 0 {
		return fmt.Errorf("gate-chaos: no (none, overload) cell pair to compare p99 against")
	}
	return nil
}

// GateCapacity enforces the capacity-planning acceptance criteria on a
// cimbench -exp capacity sweep (make bench-capacity). Three things must
// hold, per engine count (docs/CAPACITY.md):
//
//   - Honest cells: a BenchmarkCapacity cell may claim pass only when it
//     shed nothing, lost nothing, and its p99 (ns/op) beat the SLO. A
//     grid whose pass bits disagree with its own numbers is reporting a
//     rated capacity it did not measure.
//   - Monotone knee: the passing cells form a prefix of the ascending
//     rate ladder — every rate below a passing rate also passes. A hole
//     in the prefix means the knee is noise, not capacity, and the rated
//     number above it is not reproducible.
//   - Rated = top of the prefix: the BenchmarkCapacityRated row for each
//     engine count names exactly the highest passing rate, and at least
//     one rate passed — a fleet that cannot serve the bottom rung of the
//     ladder has no rated capacity to report.
//
// Missing cells, metrics, or rated rows are errors — the gate must not
// pass vacuously.
func GateCapacity(doc *Document) error {
	type cell struct {
		rate float64
		pass bool
	}
	cells := map[int][]cell{} // engines -> ladder in input order (ascending)
	rated := map[int]float64{}
	for _, res := range doc.Results {
		if rest, ok := strings.CutPrefix(res.Name, "BenchmarkCapacity/engines="); ok {
			eng, rateStr, ok := strings.Cut(rest, "/rate=")
			if !ok {
				return fmt.Errorf("gate-capacity: %s names no rate", res.Name)
			}
			k, err := strconv.Atoi(eng)
			if err != nil {
				return fmt.Errorf("gate-capacity: %s: bad engine count: %v", res.Name, err)
			}
			rate, err := strconv.ParseFloat(rateStr, 64)
			if err != nil {
				return fmt.Errorf("gate-capacity: %s: bad rate: %v", res.Name, err)
			}
			need := map[string]float64{}
			for _, metric := range []string{"pass", "shed", "lost", "slo_ns"} {
				v, ok := res.Extra[metric]
				if !ok {
					return fmt.Errorf("gate-capacity: %s has no %s metric", res.Name, metric)
				}
				need[metric] = v
			}
			honest := need["shed"] == 0 && need["lost"] == 0 && res.NsPerOp < need["slo_ns"]
			if need["pass"] == 1 && !honest {
				return fmt.Errorf("gate-capacity: %s claims pass with shed=%.0f lost=%.0f p99=%.0f ns (SLO %.0f ns)",
					res.Name, need["shed"], need["lost"], res.NsPerOp, need["slo_ns"])
			}
			cells[k] = append(cells[k], cell{rate: rate, pass: need["pass"] == 1})
			continue
		}
		if rest, ok := strings.CutPrefix(res.Name, "BenchmarkCapacityRated/engines="); ok {
			k, err := strconv.Atoi(rest)
			if err != nil {
				return fmt.Errorf("gate-capacity: %s: bad engine count: %v", res.Name, err)
			}
			v, ok := res.Extra["rated_rps"]
			if !ok {
				return fmt.Errorf("gate-capacity: %s has no rated_rps metric", res.Name)
			}
			rated[k] = v
		}
	}
	if len(cells) == 0 {
		return fmt.Errorf("gate-capacity: no BenchmarkCapacity results to check")
	}
	for k, ladder := range cells {
		sort.Slice(ladder, func(i, j int) bool { return ladder[i].rate < ladder[j].rate })
		top, failed := 0.0, false
		for _, c := range ladder {
			switch {
			case c.pass && failed:
				return fmt.Errorf("gate-capacity: engines=%d passes at %g rps after failing at a lower rate — the knee is not monotone", k, c.rate)
			case c.pass:
				top = c.rate
			default:
				failed = true
			}
		}
		if top == 0 {
			return fmt.Errorf("gate-capacity: engines=%d passes at no rate on the ladder", k)
		}
		r, ok := rated[k]
		if !ok {
			return fmt.Errorf("gate-capacity: engines=%d has no BenchmarkCapacityRated row", k)
		}
		if r != top {
			return fmt.Errorf("gate-capacity: engines=%d rated %g rps, but the passing prefix tops out at %g rps", k, r, top)
		}
	}
	for k := range rated {
		if _, ok := cells[k]; !ok {
			return fmt.Errorf("gate-capacity: engines=%d has a rated row but no grid cells", k)
		}
	}
	return nil
}

// Parse reads `go test -bench` text output and returns the structured
// document. It never fails on unrecognized lines — only on I/O errors or
// malformed numbers inside a line that is definitely a benchmark result.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Metadata:    map[string]string{},
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			doc.Metadata[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
			if ok {
				doc.Results = append(doc.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseLine parses one benchmark result line. ok is false for lines that
// start with "Benchmark" but are not result lines (e.g. a bare benchmark
// name echoed by -v).
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	// Minimum: name, iterations, value, "ns/op".
	if len(fields) < 4 {
		return Result{}, false, nil
	}
	res := Result{Name: fields[0], Procs: 1, BytesPerOp: -1, AllocsPerOp: -1}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Procs = p
			res.Name = res.Name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil // "BenchmarkFoo" + prose, not a result line
	}
	res.Iterations = n

	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, false, err
			}
			res.NsPerOp = v
		case "B/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Result{}, false, err
			}
			res.BytesPerOp = v
		case "allocs/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Result{}, false, err
			}
			res.AllocsPerOp = v
		default:
			// Custom metric (testing.B.ReportMetric style): keep it if the
			// value parses; otherwise skip the pair rather than failing
			// the line.
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				continue
			}
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[unit] = v
		}
	}
	if res.NsPerOp == 0 && !strings.Contains(line, "ns/op") {
		return Result{}, false, nil
	}
	return res, true, nil
}
