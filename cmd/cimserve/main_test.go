package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseLayers(t *testing.T) {
	got, err := parseLayers("256, 128,10")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{256, 128, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseLayers = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "256", "256,0,10", "256,x,10", "256,-1"} {
		if _, err := parseLayers(bad); err == nil {
			t.Errorf("parseLayers(%q) accepted", bad)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	good := options{clients: 4, requests: 8, batch: 2, deadline: time.Millisecond,
		queue: 16, mode: "both", layers: []int{16, 8}}
	if err := good.validate(); err != nil {
		t.Fatalf("good options rejected: %v", err)
	}
	mut := []func(*options){
		func(o *options) { o.clients = 0 },
		func(o *options) { o.requests = 0 },
		func(o *options) { o.batch = 0 },
		func(o *options) { o.deadline = 0 },
		func(o *options) { o.queue = 0 },
		func(o *options) { o.queue = o.clients - 1 },
		func(o *options) { o.mode = "turbo" },
		func(o *options) { o.reprogram = -1 },
	}
	for i, m := range mut {
		o := good
		m(&o)
		if err := o.validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, o)
		}
	}
}

// TestRunEndToEnd drives a miniature closed loop through both modes (with
// one shadow swap) and checks the bench-format output that feeds
// cmd/benchjson.
func TestRunEndToEnd(t *testing.T) {
	var sb strings.Builder
	o := options{
		clients:   4,
		requests:  32,
		batch:     4,
		deadline:  time.Millisecond,
		queue:     64,
		mode:      "both",
		layers:    []int{32, 24, 10},
		seed:      7,
		reprogram: 1,
	}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"goos:", "pkg: cimrev/cmd/cimserve",
		"BenchmarkServe/serial_c4-", "BenchmarkServe/batch_c4_b4-",
		"ns/op", "req_per_s", "sim_req_per_s",
		"p50_ns", "p95_ns", "p99_ns", "pj_per_req",
		"avg_batch", "swaps", "sim_speedup", "wall_speedup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Both result lines must carry the request count as iterations.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "BenchmarkServe/") && !strings.Contains(line, " 32 ") {
			t.Errorf("result line missing iteration count 32: %q", line)
		}
	}
}
