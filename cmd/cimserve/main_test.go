package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseLayers(t *testing.T) {
	got, err := parseLayers("256, 128,10")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{256, 128, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseLayers = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "256", "256,0,10", "256,x,10", "256,-1"} {
		if _, err := parseLayers(bad); err == nil {
			t.Errorf("parseLayers(%q) accepted", bad)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	good := options{clients: 4, requests: 8, batch: 2, maxdelay: time.Millisecond,
		queue: 16, mode: "both", layers: []int{16, 8}, engines: 1, policy: "round-robin", dispatch: "cim"}
	if err := good.validate(); err != nil {
		t.Fatalf("good options rejected: %v", err)
	}
	mut := []func(*options){
		func(o *options) { o.clients = 0 },
		func(o *options) { o.requests = 0 },
		func(o *options) { o.batch = 0 },
		func(o *options) { o.maxdelay = 0 },
		func(o *options) { o.deadline = -time.Millisecond },
		func(o *options) { o.queue = 0 },
		func(o *options) { o.queue = o.clients - 1 },
		func(o *options) { o.mode = "turbo" },
		func(o *options) { o.reprogram = -1 },
		func(o *options) { o.stuck = -0.1 },
		func(o *options) { o.stuck = 1 },
		func(o *options) { o.spares = -1 },
		func(o *options) { o.engines = 0 },
		func(o *options) { o.policy = "random" },
		func(o *options) { o.dispatch = "gpu" },
		// The resilience flags are fleet-mode controls: hedging, overload
		// control, and chaos scenarios all need -engines >= 2, and a chaos
		// scenario outside the catalog is rejected up front.
		func(o *options) { o.hedge = true },
		func(o *options) { o.overload = true },
		func(o *options) { o.chaos = "straggler" },
		func(o *options) { o.engines = 2; o.chaos = "meteor" },
	}
	for i, m := range mut {
		o := good
		m(&o)
		if err := o.validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, o)
		}
	}
}

// TestRunEndToEnd drives a miniature closed loop through both modes (with
// one shadow swap) and checks the bench-format output that feeds
// cmd/benchjson.
func TestRunEndToEnd(t *testing.T) {
	var sb strings.Builder
	o := options{
		clients:   4,
		requests:  32,
		batch:     4,
		maxdelay:  time.Millisecond,
		queue:     64,
		mode:      "both",
		layers:    []int{32, 24, 10},
		seed:      7,
		dispatch:  "cim",
		reprogram: 1,
	}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"goos:", "pkg: cimrev/cmd/cimserve",
		"BenchmarkServe/serial_c4-", "BenchmarkServe/batch_c4_b4-",
		"ns/op", "req_per_s", "sim_req_per_s",
		"p50_ns", "p95_ns", "p99_ns", "pj_per_req",
		"avg_batch", "swaps", "sim_speedup", "wall_speedup",
		"shed", "unhealthy", "reprogram_failed", "reprogram_retries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Both result lines must carry the request count as iterations.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "BenchmarkServe/") && !strings.Contains(line, " 32 ") {
			t.Errorf("result line missing iteration count 32: %q", line)
		}
	}
	// Fault-free runs report a clean error breakdown.
	for _, zero := range []string{"0 shed", "0 unhealthy", "0 reprogram_failed", "0 reprogram_retries"} {
		if !strings.Contains(out, zero) {
			t.Errorf("fault-free run missing %q:\n%s", zero, out)
		}
	}
}

// TestRunUnhealthySheds injects stuck cells past the (empty) spare budget
// and requests a swap: the standby cannot be repaired, the breaker trips,
// and the error breakdown shows unhealthy sheds and the failed reprogram —
// but the run itself completes.
func TestRunUnhealthySheds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sb strings.Builder
	o := options{
		clients:   4,
		requests:  4096, // long enough that the loop outlasts the swap retries
		batch:     4,
		maxdelay:  time.Millisecond,
		queue:     64,
		mode:      "batch",
		layers:    []int{32, 24, 10},
		seed:      7,
		dispatch:  "cim",
		reprogram: 1,
		stuck:     0.05,
		spares:    0,
	}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1 reprogram_failed") {
		t.Errorf("failed swap not counted:\n%s", out)
	}
	if strings.Contains(out, " 0 unhealthy") {
		t.Errorf("tripped breaker shed no requests:\n%s", out)
	}
	if !strings.Contains(out, "0 swaps") {
		t.Errorf("unhealthy standby must not be swapped in:\n%s", out)
	}
}

// TestRunFleetEndToEnd drives the fleet mode (-engines 4) with one rolling
// reprogram mid-run and checks the bench line carries the fleet name and
// the engines metric, with a clean error breakdown (zero downtime).
func TestRunFleetEndToEnd(t *testing.T) {
	var sb strings.Builder
	o := options{
		clients:   8,
		requests:  256,
		batch:     8,
		maxdelay:  time.Millisecond,
		queue:     64,
		mode:      "batch",
		layers:    []int{32, 24, 10},
		seed:      7,
		dispatch:  "cim",
		reprogram: 1,
		engines:   4,
		policy:    "least-loaded",
	}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"BenchmarkServe/fleet_c8_b8_e4_least_loaded-",
		"4 engines",
		"0 shed", "0 unhealthy", "0 reprogram_failed",
		"4 swaps", // one rolling reprogram swaps every engine once
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet output missing %q:\n%s", want, out)
		}
	}
}

// TestRunFleetResilience drives fleet mode with every resilience flag on:
// a straggler chaos plan on engine 0, hedging against it, overload
// control armed, and a generous per-request deadline. The run must
// complete with no lost requests and the bench line must carry the new
// resilience metrics. (Whether hedges actually fire here depends on the
// host's timer floor vs the 2ms stall — the deterministic hedge-fires
// coverage lives in internal/fleet/resilience_test.go.)
func TestRunFleetResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sb strings.Builder
	o := options{
		clients:  8,
		requests: 192,
		batch:    8,
		maxdelay: time.Millisecond,
		// Far above the straggler's 2ms stall: the deadline path is
		// exercised (every request carries a budget) without flaky sheds.
		deadline: 5 * time.Second,
		queue:    64,
		mode:     "batch",
		layers:   []int{32, 24, 10},
		seed:     7,
		dispatch: "cim",
		engines:  3,
		policy:   "least-loaded",
		hedge:    true,
		overload: true,
		chaos:    "straggler",
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"BenchmarkServe/fleet_c8_b8_e3_least_loaded-",
		"deadline_exceeded", "hedged", "hedge_won",
		"limiter_refused", "brownout_shed",
		"0 deadline_exceeded", // 5s budget: nothing expires
		"0 unhealthy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("resilience output missing %q:\n%s", want, out)
		}
	}
}

// TestOptionsValidateLoadgen: the workloadgen flags are cross-checked —
// generators need a rate, traces need a file, open loops need -mode
// batch, and recording needs a generator.
func TestOptionsValidateLoadgen(t *testing.T) {
	good := options{clients: 4, requests: 8, batch: 2, maxdelay: time.Millisecond,
		queue: 16, mode: "batch", layers: []int{16, 8}, engines: 1,
		policy: "round-robin", dispatch: "cim",
		arrivals: "poisson", rate: 1000, mix: "default"}
	if err := good.validate(); err != nil {
		t.Fatalf("good open-loop options rejected: %v", err)
	}
	mut := []func(*options){
		func(o *options) { o.arrivals = "lognormal" },
		func(o *options) { o.rate = 0 },
		func(o *options) { o.rate = -5 },
		func(o *options) { o.mode = "both" },   // open loop is batch-only
		func(o *options) { o.mode = "serial" }, // ditto
		func(o *options) { o.mix = "heavy" },
		func(o *options) { o.arrivals = "trace" },                     // no -tracefile
		func(o *options) { o.arrivals = "closed"; o.tracefile = "x" }, // file without trace mode
		func(o *options) { o.arrivals = "closed"; o.record = "x" },    // nothing to record
		func(o *options) { o.arrivals = "trace"; o.record = "x" },     // a trace is already recorded
	}
	for i, m := range mut {
		o := good
		m(&o)
		if err := o.validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, o)
		}
	}
	// A trace replay carries its own rate, so -rate stays zero.
	o := good
	o.arrivals, o.rate, o.tracefile = "trace", 0, "some.json"
	if err := o.validate(); err != nil {
		t.Errorf("trace options rejected: %v", err)
	}
}

// TestRunOpenLoopEndToEnd drives the batch pipeline from a Poisson
// schedule with the default class mix: the bench line is named for the
// arrival process (clients don't exist in an open loop) and carries the
// open-loop metrics.
func TestRunOpenLoopEndToEnd(t *testing.T) {
	var sb strings.Builder
	o := options{
		clients:  4, // ignored by the open loop but still validated
		requests: 96,
		batch:    4,
		maxdelay: time.Millisecond,
		queue:    64,
		mode:     "batch",
		layers:   []int{32, 24, 10},
		seed:     7,
		engines:  1,
		policy:   "round-robin",
		dispatch: "cim",
		arrivals: "poisson",
		rate:     20_000,
		mix:      "default",
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"BenchmarkServe/batch_poisson_b4-",
		"offered_rps", "achieved_rps", "late_p50_ns", "late_p99_ns", "peak_inflight",
		"2e+04 offered_rps", // the schedule's nominal rate, not the measured one
	} {
		if !strings.Contains(out, want) {
			t.Errorf("open-loop output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "_c4_") {
		t.Errorf("open-loop bench name still carries a client count:\n%s", out)
	}
}

// TestRunTraceRecordReplay round-trips a schedule through the CLI path:
// one run records a Poisson schedule plus classes to a JSON trace, a
// second replays it with -arrivals trace and reports under the trace
// name.
func TestRunTraceRecordReplay(t *testing.T) {
	tracefile := filepath.Join(t.TempDir(), "arrivals.json")
	o := options{
		clients:  4,
		requests: 64,
		batch:    4,
		maxdelay: time.Millisecond,
		queue:    64,
		mode:     "batch",
		layers:   []int{32, 24, 10},
		seed:     7,
		engines:  1,
		policy:   "round-robin",
		dispatch: "cim",
		arrivals: "poisson",
		rate:     20_000,
		mix:      "default",
		record:   tracefile,
	}
	var sb strings.Builder
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	tr, err := os.ReadFile(tracefile)
	if err != nil {
		t.Fatalf("recorded trace missing: %v", err)
	}
	for _, want := range []string{`"source": "poisson"`, `"classes"`} {
		if !strings.Contains(string(tr), want) {
			t.Errorf("trace file missing %q:\n%s", want, tr)
		}
	}

	o.arrivals, o.rate, o.record, o.tracefile = "trace", 0, "", tracefile
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "BenchmarkServe/batch_trace_b4-") {
		t.Errorf("replay output not named for the trace:\n%s", sb.String())
	}
}
