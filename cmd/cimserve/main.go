// Command cimserve is the load generator for the inference serving
// pipeline (internal/serve). It stands up the paper's Section VI DPE
// behind the micro-batching frontend, drives it with a workloadgen load
// (closed-loop clients by default, open-loop arrival processes on
// request), and reports throughput and latency quantiles in `go test
// -bench` text format so the output pipes straight through cmd/benchjson
// into BENCH_serve.json:
//
//	go run ./cmd/cimserve | go run ./cmd/benchjson -out BENCH_serve.json
//
// Two serving modes are measured:
//
//   - serial: every request pays serial per-request Infer latency — the
//     pre-pipeline baseline where concurrent callers queue on one engine.
//   - batch: requests flow through the adaptive micro-batcher into
//     InferBatch, which overlaps batch items across the engine's stage
//     pipeline (simulated time) and across the worker pool (wall time).
//
// Load generation is the internal/workloadgen driver (docs/CAPACITY.md):
// -arrivals selects the arrival process — closed (the default: -clients
// workers, each issuing its next request when the previous returns),
// poisson, mmpp (bursty), diurnal, or trace (replay a recorded
// schedule from -tracefile). The open-loop processes fire requests on
// their deterministic schedule whether or not the backend keeps up —
// -rate sets the offered req/s — and the bench line gains offered_rps,
// achieved_rps, late_p50_ns/late_p99_ns (generator schedule slip), and
// peak_inflight (the queue-growth witness). -mix default draws each
// request's class (batch-1 vs batch-8 neural inference, analytics
// probes) from the seed-keyed default mix; -record writes the generated
// schedule and classes to a JSON trace replayable with -arrivals trace.
// Open-loop runs require -mode batch: the serial baseline is a
// closed-loop artifact, and an open-loop schedule against a fully
// serialized engine just measures unbounded pile-up.
//
// With -engines N (N > 1) the batch mode becomes a fleet run: N
// independent engines — each its own shadow pair, breaker, queue, and
// metrics namespace — behind the -policy request router (round-robin,
// least-loaded, weighted, wear-aware; internal/fleet, docs/CLUSTER.md).
// Requests carry their noise key (the fleet sequence number), so per-
// request outputs are bit-identical to a single-engine run under every
// policy. -reprogram in fleet mode performs *rolling* reprograms: one
// standby programs at a time, health-gated promotion, zero fleet downtime.
// The -listen endpoint exposes every engine's registry on one /metrics
// page with {engine="<id>"} labels and aggregates fleet health on
// /healthz.
//
// Each mode reports wall-clock ns/op plus custom metrics: req_per_s (wall
// throughput), sim_req_per_s (simulated throughput from the energy
// algebra's virtual clock), p50_ns/p95_ns/p99_ns (wall latency quantiles
// from the lock-free serving histogram), and pj_per_req (energy). The
// batch line adds sim_speedup and wall_speedup versus the serial baseline,
// and -reprogram > 0 exercises shadow-engine weight swaps mid-run to show
// they cost the serving path nothing.
//
// -dispatch selects the serving backend policy (internal/hybrid,
// docs/HYBRID.md): cim (default) serves every flush from the crossbar
// path, vn serves from the executing Von Neumann twin (bit-identical on
// deterministic configs), and auto routes each flush by the calibrated
// cost model, pinning keyed/noisy traffic to CIM. Non-default modes add
// dispatch_cim / dispatch_vn / dispatch_pinned_noisy to the bench line,
// and the dispatch.* counters appear on /metrics.
//
// Errors in batch mode are broken out by cause so the benchjson archive
// distinguishes capacity problems from health problems (docs/FAULTS.md):
// shed counts backpressure rejections (ErrOverloaded; closed-loop clients
// retry them, open-loop drives count them and keep the schedule), unhealthy
// counts requests refused by the tripped circuit breaker (ErrUnhealthy),
// and reprogram_failed counts weight swaps that failed after the breaker's
// retry budget. -stuck and -spares inject device faults to exercise these
// paths; at the defaults (no faults) all three stay zero.
//
// The resilience layer (docs/RESILIENCE.md) is driven by four flags:
// -deadline sets a per-request budget — requests that expire anywhere in
// the pipeline (ingress queue included) shed with the typed
// ErrDeadlineExceeded and are counted as deadline_exceeded, never
// retried. -hedge (fleet mode) re-issues requests that outlive the
// tracked p95 on a second engine — keyed noise makes the two attempts
// bit-identical, so first-response-wins is safe; hedged / hedge_won land
// on the bench line. -overload (fleet mode) enables the per-engine AIMD
// concurrency limiter and the priority brownout. -chaos <scenario>
// injects a deterministic fault plan (none, straggler, crash, overload —
// internal/chaos) into every engine; /healthz reports the active
// scenario and each engine's current concurrency limit. Note the
// micro-batcher's *flush* deadline — how long a partial batch may wait
// for company — is the separate -maxdelay flag.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cimrev/internal/chaos"
	"cimrev/internal/dpe"
	"cimrev/internal/faultinject"
	"cimrev/internal/fleet"
	"cimrev/internal/hybrid"
	"cimrev/internal/metrics"
	"cimrev/internal/nn"
	"cimrev/internal/serve"
	"cimrev/internal/vonneumann"
	"cimrev/internal/workloadgen"
)

// options is the validated CLI configuration.
type options struct {
	clients   int
	requests  int
	batch     int
	maxdelay  time.Duration // micro-batcher flush deadline
	deadline  time.Duration // per-request deadline (0 = none)
	queue     int
	mode      string
	layers    []int
	seed      int64
	reprogram int
	stuck     float64
	spares    int
	listen    string
	engines   int
	policy    string
	dispatch  string
	hedge     bool
	overload  bool
	chaos     string

	// Load generation (internal/workloadgen): the arrival process, its
	// offered rate, the request-class mix, and trace record/replay.
	arrivals  string
	rate      float64
	mix       string
	record    string
	tracefile string
}

// openLoop reports whether the options select an open-loop drive. The
// zero value means closed, so option structs built in code (tests,
// embedders) keep their historical behavior without naming the flag.
func (o options) openLoop() bool { return o.arrivals != "" && o.arrivals != "closed" }

// generated reports whether the arrival process is a schedule generator
// (recordable to a trace, parameterized by -rate).
func (o options) generated() bool {
	switch o.arrivals {
	case "poisson", "mmpp", "diurnal":
		return true
	}
	return false
}

// parseLayers parses a comma-separated MLP shape like "256,128,10".
func parseLayers(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 {
		return nil, fmt.Errorf("cimserve: -layers needs at least 2 comma-separated sizes, got %q", s)
	}
	sizes := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("cimserve: -layers entry %d (%q) must be a positive integer", i, p)
		}
		sizes[i] = v
	}
	return sizes, nil
}

// validate fails fast on degenerate parameters, mirroring the
// serve.Config / crossbar ADCBits=0 convention.
func (o options) validate() error {
	switch {
	case o.clients < 1:
		return fmt.Errorf("cimserve: -clients must be >= 1, got %d", o.clients)
	case o.requests < 1:
		return fmt.Errorf("cimserve: -requests must be >= 1, got %d", o.requests)
	case o.batch < 1:
		return fmt.Errorf("cimserve: -batch must be >= 1, got %d", o.batch)
	case o.maxdelay <= 0:
		return fmt.Errorf("cimserve: -maxdelay must be positive, got %v", o.maxdelay)
	case o.deadline < 0:
		return fmt.Errorf("cimserve: -deadline must be >= 0 (0 disables), got %v", o.deadline)
	case o.queue < 1:
		return fmt.Errorf("cimserve: -queue must be >= 1, got %d", o.queue)
	case !o.openLoop() && o.queue < o.clients:
		return fmt.Errorf("cimserve: -queue (%d) must be >= -clients (%d): a closed loop never has more than one outstanding request per client, so a smaller queue just sheds load spuriously", o.queue, o.clients)
	case o.mode != "both" && o.mode != "serial" && o.mode != "batch":
		return fmt.Errorf("cimserve: -mode must be one of both|serial|batch, got %q", o.mode)
	case o.reprogram < 0:
		return fmt.Errorf("cimserve: -reprogram must be >= 0, got %d", o.reprogram)
	case o.stuck < 0 || o.stuck >= 1:
		return fmt.Errorf("cimserve: -stuck must be in [0, 1), got %g", o.stuck)
	case o.spares < 0:
		return fmt.Errorf("cimserve: -spares must be >= 0, got %d", o.spares)
	case o.engines < 1:
		return fmt.Errorf("cimserve: -engines must be >= 1, got %d", o.engines)
	case o.hedge && o.engines < 2:
		return fmt.Errorf("cimserve: -hedge needs a fleet to hedge across, use -engines >= 2")
	case o.overload && o.engines < 2:
		return fmt.Errorf("cimserve: -overload is a fleet-mode control, use -engines >= 2")
	}
	switch o.arrivals {
	case "", "closed", "poisson", "mmpp", "diurnal", "trace":
	default:
		return fmt.Errorf("cimserve: -arrivals must be one of closed|poisson|mmpp|diurnal|trace, got %q", o.arrivals)
	}
	switch {
	case o.generated() && o.rate <= 0:
		return fmt.Errorf("cimserve: -arrivals %s needs a positive -rate (offered req/s), got %g", o.arrivals, o.rate)
	case o.arrivals == "trace" && o.tracefile == "":
		return fmt.Errorf("cimserve: -arrivals trace needs -tracefile")
	case o.tracefile != "" && o.arrivals != "trace":
		return fmt.Errorf("cimserve: -tracefile only applies to -arrivals trace")
	case o.record != "" && !o.generated():
		return fmt.Errorf("cimserve: -record needs a schedule generator (-arrivals poisson|mmpp|diurnal), got %q", o.arrivals)
	case o.openLoop() && o.mode != "batch":
		return fmt.Errorf("cimserve: -arrivals %s is open-loop and requires -mode batch (the serial baseline is a closed-loop artifact)", o.arrivals)
	case o.mix != "" && o.mix != "none" && o.mix != "default":
		return fmt.Errorf("cimserve: -mix must be none or default, got %q", o.mix)
	}
	if _, err := fleet.ParsePolicy(o.policy); err != nil {
		return fmt.Errorf("cimserve: -policy: %w", err)
	}
	if _, err := hybrid.ParseMode(o.dispatch); err != nil {
		return fmt.Errorf("cimserve: -dispatch: %w", err)
	}
	if plan, err := chaos.ScenarioPlan(o.chaos, o.seed, 1); err != nil {
		return fmt.Errorf("cimserve: -chaos: %w", err)
	} else if plan.Enabled() && o.engines < 2 {
		return fmt.Errorf("cimserve: -chaos %s targets a fleet, use -engines >= 2", o.chaos)
	}
	return nil
}

// loadgen is the built workload: the arrival process (nil = closed loop)
// and the class picker (nil = single class).
type loadgen struct {
	arrivals workloadgen.Arrivals
	mix      workloadgen.Picker
}

// buildLoad constructs the arrival process and class picker the options
// select. Trace replays resolve their recorded class names against the
// -mix classes; with -mix none a classed trace replays its schedule only.
func buildLoad(o options) (loadgen, error) {
	var g loadgen
	if o.mix == "default" {
		g.mix = workloadgen.DefaultMix(o.seed)
	}
	var err error
	switch o.arrivals {
	case "closed":
	case "poisson":
		g.arrivals, err = workloadgen.NewPoisson(o.seed, o.rate)
	case "mmpp":
		g.arrivals, err = workloadgen.NewMMPP(workloadgen.MMPPConfig{Seed: o.seed, Rate: o.rate})
	case "diurnal":
		g.arrivals, err = workloadgen.NewDiurnal(workloadgen.DiurnalConfig{Seed: o.seed, Rate: o.rate})
	case "trace":
		f, ferr := os.Open(o.tracefile)
		if ferr != nil {
			return g, fmt.Errorf("cimserve: -tracefile: %w", ferr)
		}
		tr, terr := workloadgen.ReadTrace(f)
		f.Close()
		if terr != nil {
			return g, fmt.Errorf("cimserve: -tracefile %s: %w", o.tracefile, terr)
		}
		rep, rerr := tr.Replay()
		if rerr != nil {
			return g, rerr
		}
		g.arrivals = rep
		if rep.ClassNames() && o.mix == "default" {
			g.mix, err = rep.Picker(workloadgen.DefaultMix(o.seed))
		}
	}
	return g, err
}

// runStats is what one serving mode measured.
type runStats struct {
	requests int
	wall     time.Duration
	simPS    int64
	energyPJ float64
	lat      metrics.HistogramSnapshot
	swaps    int64
	avgBatch float64

	// Error breakdown by cause (batch mode): backpressure sheds, breaker
	// sheds, and weight swaps that exhausted the breaker's retry budget.
	shed            int64
	unhealthy       int64
	reprogramFailed int64
	retries         int64

	// Hybrid dispatch breakdown: requests routed to the crossbar, to the
	// Von Neumann twin, and pinned to the crossbar for noise reasons.
	dispCIM    int64
	dispVN     int64
	dispPinned int64

	// Resilience breakdown (docs/RESILIENCE.md): requests shed by their
	// per-request deadline, hedges issued/won, limiter refusals folded
	// into failovers, and brownout sheds of low-priority traffic.
	deadlineExceeded int64
	hedged           int64
	hedgeWon         int64
	limiterRefused   int64
	brownoutShed     int64

	// Open-loop drive measurements (zero in closed-loop runs): the
	// schedule's nominal rate, served throughput, generator schedule
	// slip, and the in-flight high-water mark.
	offeredRPS   float64
	achievedRPS  float64
	lateP50NS    float64
	lateP99NS    float64
	peakInFlight int64
}

func (s runStats) wallReqPerSec() float64 {
	if s.wall <= 0 {
		return 0
	}
	return float64(s.requests) / s.wall.Seconds()
}

func (s runStats) simReqPerSec() float64 {
	if s.simPS <= 0 {
		return 0
	}
	return float64(s.requests) / (float64(s.simPS) * 1e-12)
}

// fromReport folds the drive's report into the stats.
func (s *runStats) fromReport(rep workloadgen.Report) {
	s.requests = rep.Requests
	s.wall = rep.Wall
	s.shed = rep.Sheds
	s.offeredRPS = rep.OfferedRPS
	s.achievedRPS = rep.AchievedRPS
	s.lateP50NS = rep.Lateness.Quantile(0.5)
	s.lateP99NS = rep.Lateness.Quantile(0.99)
	s.peakInFlight = rep.PeakInFlight
}

func main() {
	var o options
	var layersFlag string
	flag.IntVar(&o.clients, "clients", 64, "concurrent closed-loop clients (ignored by open-loop -arrivals)")
	flag.IntVar(&o.requests, "requests", 2048, "total requests per mode")
	flag.IntVar(&o.batch, "batch", 64, "micro-batcher max batch size")
	flag.DurationVar(&o.maxdelay, "maxdelay", 2*time.Millisecond, "micro-batcher flush deadline: max delay a partial batch waits for company")
	flag.DurationVar(&o.deadline, "deadline", 0, "per-request deadline; expired requests shed with ErrDeadlineExceeded (0 disables)")
	flag.IntVar(&o.queue, "queue", 4096, "ingress queue bound (backpressure high-water mark)")
	flag.StringVar(&o.mode, "mode", "both", "serving modes to run: both|serial|batch")
	flag.StringVar(&layersFlag, "layers", "256,256,256,256,256,128,10", "8-bit MLP layer sizes")
	flag.Int64Var(&o.seed, "seed", 1, "workload and engine seed")
	flag.IntVar(&o.reprogram, "reprogram", 0, "shadow-engine weight swaps to perform mid-run (batch mode)")
	flag.Float64Var(&o.stuck, "stuck", 0, "stuck-cell rate injected into every crossbar (split evenly GMin/GMax)")
	flag.IntVar(&o.spares, "spares", 0, "spare columns per crossbar for fault remapping")
	flag.StringVar(&o.listen, "listen", "", "address for the live telemetry endpoint (/metrics, /healthz, /debug/pprof); empty disables")
	flag.IntVar(&o.engines, "engines", 1, "fleet size: engines behind the request router (1 = single-engine batch mode)")
	flag.StringVar(&o.policy, "policy", "round-robin", "fleet routing policy: round-robin, least-loaded, weighted, wear-aware")
	flag.StringVar(&o.dispatch, "dispatch", "cim", "backend dispatch policy: cim (crossbar only), vn (Von Neumann twin only), auto (cost-model routing)")
	flag.BoolVar(&o.hedge, "hedge", false, "fleet mode: hedge requests that outlive the tracked p95 onto a second engine (first response wins, bit-identical)")
	flag.BoolVar(&o.overload, "overload", false, "fleet mode: enable the per-engine AIMD concurrency limiter and priority brownout")
	flag.StringVar(&o.chaos, "chaos", "none", "fleet mode: deterministic chaos scenario to inject: none, straggler, crash, overload")
	flag.StringVar(&o.arrivals, "arrivals", "closed", "arrival process: closed (clients loop), poisson, mmpp, diurnal, trace (open-loop, -mode batch)")
	flag.Float64Var(&o.rate, "rate", 0, "offered req/s for -arrivals poisson|mmpp|diurnal")
	flag.StringVar(&o.mix, "mix", "none", "request-class mix: none (single class) or default (seed-keyed batch-1/batch-8/analytics)")
	flag.StringVar(&o.record, "record", "", "write the generated arrival schedule and classes to this JSON trace file")
	flag.StringVar(&o.tracefile, "tracefile", "", "trace file to replay with -arrivals trace")
	flag.Parse()

	layers, err := parseLayers(layersFlag)
	if err != nil {
		fatal(err)
	}
	o.layers = layers
	if err := o.validate(); err != nil {
		fatal(err)
	}
	if err := run(os.Stdout, o); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cimserve:", err)
	os.Exit(1)
}

// run executes the selected modes and writes bench-format lines to w.
func run(w io.Writer, o options) error {
	gen, err := buildLoad(o)
	if err != nil {
		return err
	}
	if o.record != "" {
		tr, err := workloadgen.Record(gen.arrivals, gen.mix, o.requests)
		if err != nil {
			return err
		}
		f, err := os.Create(o.record)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cimserve: recorded %d arrivals (%s, %.0f req/s) to %s\n",
			o.requests, o.arrivals, o.rate, o.record)
	}

	// The 8-bit MLP workload: default crossbar config is 8-bit weights,
	// 8-bit inputs, 8-bit ADCs; functional mode keeps the cost model
	// intact while skipping per-cycle ADC emulation.
	cfg := dpe.DefaultConfig()
	cfg.Seed = o.seed
	if o.stuck > 0 {
		cfg.Faults = faultinject.Model{
			StuckLowRate:  o.stuck / 2,
			StuckHighRate: o.stuck / 2,
			Seed:          o.seed,
		}
		cfg.Crossbar.SpareCols = o.spares
	}

	rng := rand.New(rand.NewSource(o.seed))
	net, err := nn.NewMLP("serve-mlp8", o.layers, rng)
	if err != nil {
		return err
	}
	netB, err := nn.NewMLP("serve-mlp8-v2", o.layers, rng)
	if err != nil {
		return err
	}
	inputs := make([][]float64, 256)
	for i := range inputs {
		in := make([]float64, o.layers[0])
		for j := range in {
			in[j] = rng.Float64()*2 - 1
		}
		inputs[i] = in
	}

	fmt.Fprintf(w, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(w, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(w, "pkg: cimrev/cmd/cimserve\n")

	// The telemetry endpoint (when -listen is set) outlives both modes;
	// runBatch installs the live registry/pair/breaker into it.
	tel := &telemetry{}
	if o.listen != "" {
		addr, stop, err := startTelemetry(o.listen, tel)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "cimserve: telemetry on http://%s (/metrics /healthz /debug/pprof)\n", addr)
	}

	var serial, batch runStats
	if o.mode == "both" || o.mode == "serial" {
		serial, err = runSerial(cfg, net, inputs, o)
		if err != nil {
			return err
		}
		emit(w, fmt.Sprintf("BenchmarkServe/serial_c%d", o.clients), serial, nil, nil)
	}
	if o.mode == "both" || o.mode == "batch" {
		if o.engines > 1 {
			batch, err = runFleet(cfg, net, netB, inputs, o, gen, tel)
		} else {
			batch, err = runBatch(cfg, net, netB, inputs, o, gen, tel)
		}
		if err != nil {
			return err
		}
		extra := map[string]float64{
			"avg_batch":         batch.avgBatch,
			"swaps":             float64(batch.swaps),
			"shed":              float64(batch.shed),
			"unhealthy":         float64(batch.unhealthy),
			"reprogram_failed":  float64(batch.reprogramFailed),
			"reprogram_retries": float64(batch.retries),
		}
		order := []string{"avg_batch", "swaps", "shed", "unhealthy", "reprogram_failed", "reprogram_retries"}
		if o.openLoop() {
			extra["offered_rps"] = batch.offeredRPS
			extra["achieved_rps"] = batch.achievedRPS
			extra["late_p50_ns"] = batch.lateP50NS
			extra["late_p99_ns"] = batch.lateP99NS
			extra["peak_inflight"] = float64(batch.peakInFlight)
			order = append(order, "offered_rps", "achieved_rps", "late_p50_ns", "late_p99_ns", "peak_inflight")
		}
		if o.deadline > 0 {
			extra["deadline_exceeded"] = float64(batch.deadlineExceeded)
			order = append(order, "deadline_exceeded")
		}
		if o.hedge {
			extra["hedged"] = float64(batch.hedged)
			extra["hedge_won"] = float64(batch.hedgeWon)
			order = append(order, "hedged", "hedge_won")
		}
		if o.overload {
			extra["limiter_refused"] = float64(batch.limiterRefused)
			extra["brownout_shed"] = float64(batch.brownoutShed)
			order = append(order, "limiter_refused", "brownout_shed")
		}
		if o.dispatch != "cim" {
			extra["dispatch_cim"] = float64(batch.dispCIM)
			extra["dispatch_vn"] = float64(batch.dispVN)
			extra["dispatch_pinned_noisy"] = float64(batch.dispPinned)
			order = append(order, "dispatch_cim", "dispatch_vn", "dispatch_pinned_noisy")
		}
		if o.mode == "both" {
			if batch.simPS > 0 {
				extra["sim_speedup"] = float64(serial.simPS) / float64(batch.simPS)
				order = append(order, "sim_speedup")
			}
			if batch.wall > 0 {
				extra["wall_speedup"] = serial.wall.Seconds() / batch.wall.Seconds()
				order = append(order, "wall_speedup")
			}
		}
		// Closed-loop names keep their historical shape; open-loop names
		// carry the arrival process instead of the (ignored) client count.
		name := fmt.Sprintf("BenchmarkServe/batch_c%d_b%d", o.clients, o.batch)
		if o.openLoop() {
			name = fmt.Sprintf("BenchmarkServe/batch_%s_b%d", o.arrivals, o.batch)
		}
		if o.engines > 1 {
			extra["engines"] = float64(o.engines)
			order = append(order, "engines")
			policy := strings.ReplaceAll(o.policy, "-", "_")
			if o.openLoop() {
				name = fmt.Sprintf("BenchmarkServe/fleet_%s_b%d_e%d_%s", o.arrivals, o.batch, o.engines, policy)
			} else {
				name = fmt.Sprintf("BenchmarkServe/fleet_c%d_b%d_e%d_%s", o.clients, o.batch, o.engines, policy)
			}
		}
		emit(w, name, batch, extra, order)
	}
	summary(os.Stderr, o, serial, batch)
	return nil
}

// driveConfig is the workloadgen configuration the options select.
func driveConfig(o options, gen loadgen) workloadgen.DriveConfig {
	return workloadgen.DriveConfig{
		Arrivals: gen.arrivals,
		Mix:      gen.mix,
		Requests: o.requests,
		Clients:  o.clients,
	}
}

// serveMaxBatch bounds Class.Batch so fleet batch elements get distinct
// noise keys (seq*serveMaxBatch + element).
const serveMaxBatch = 8

// runSerial measures the baseline: o.clients closed-loop clients contend
// for one engine whose Infer calls are fully serialized — every request
// pays serial per-request latency, in wall-clock and in simulated time.
func runSerial(cfg dpe.Config, net *nn.Network, inputs [][]float64, o options) (runStats, error) {
	eng, err := dpe.New(cfg)
	if err != nil {
		return runStats{}, err
	}
	if _, err := eng.Load(net); err != nil {
		return runStats{}, err
	}

	var mu sync.Mutex // serializes Infer: the no-pipeline baseline
	var simPS atomic.Int64
	var energyBits atomic.Uint64
	rep, err := workloadgen.Drive(driveConfig(o, loadgen{}), func(req workloadgen.Request) (workloadgen.Outcome, error) {
		mu.Lock()
		_, cost, err := eng.Infer(inputs[req.Seq%uint64(len(inputs))])
		mu.Unlock()
		if err != nil {
			return workloadgen.Fatal, err
		}
		simPS.Add(cost.LatencyPS)
		addEnergy(&energyBits, cost.EnergyPJ)
		return workloadgen.OK, nil
	})
	if err != nil {
		return runStats{}, err
	}
	st := runStats{
		simPS:    simPS.Load(),
		energyPJ: loadEnergy(&energyBits),
		lat:      rep.Latency,
	}
	st.fromReport(rep)
	return st, nil
}

// classify maps a serving error onto a drive outcome, folding the
// cause-specific counters as it goes. Backpressure is Shed (closed-loop
// drives retry it, open-loop drives count it and keep the schedule);
// deadline and breaker refusals are Drops (never retried); anything else
// is fatal.
func classify(err error, deadlined, unhealthy *atomic.Int64) (workloadgen.Outcome, error) {
	switch {
	case err == nil:
		return workloadgen.OK, nil
	case errors.Is(err, serve.ErrDeadlineExceeded):
		deadlined.Add(1)
		return workloadgen.Drop, nil
	case errors.Is(err, serve.ErrOverloaded):
		return workloadgen.Shed, nil
	case errors.Is(err, serve.ErrUnhealthy):
		unhealthy.Add(1)
		return workloadgen.Drop, nil
	default:
		return workloadgen.Fatal, err
	}
}

// fanout submits a request's class batch through one: a Class.Batch of k
// issues k concurrent submissions and the worst element outcome wins
// (Fatal > Drop > Shed > OK).
func fanout(req workloadgen.Request, one func(element int) (workloadgen.Outcome, error)) (workloadgen.Outcome, error) {
	batch := req.Class.Batch
	if batch <= 1 {
		return one(0)
	}
	outcomes := make([]workloadgen.Outcome, batch)
	errs := make([]error, batch)
	var wg sync.WaitGroup
	for j := 0; j < batch; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			outcomes[j], errs[j] = one(j)
		}(j)
	}
	wg.Wait()
	worst, werr := workloadgen.OK, error(nil)
	for j, out := range outcomes {
		if out > worst {
			worst, werr = out, errs[j]
		}
	}
	return worst, werr
}

// runBatch measures the pipeline: the workloadgen drive submits to the
// micro-batching server over a health-gated shadow pair, with optional
// mid-run weight swaps. Request failures are classified by cause rather
// than collapsed into one count: backpressure (ErrOverloaded) retries in
// closed-loop mode, breaker sheds (ErrUnhealthy) abandon the request,
// anything else aborts the run.
func runBatch(cfg dpe.Config, net, netB *nn.Network, inputs [][]float64, o options, gen loadgen, tel *telemetry) (runStats, error) {
	pair, _, err := serve.NewShadowPair(cfg, net)
	if err != nil {
		return runStats{}, err
	}
	// One registry spans the whole pipeline — the redesigned serve.Config
	// threads it into both the breaker and the micro-batcher, so the
	// telemetry endpoint scrapes a single coherent namespace.
	reg := metrics.NewRegistry()
	// The breaker sits between the micro-batcher and the shadow pair. With
	// no faults injected it is transparent; with -stuck past the spare
	// budget, failed swaps trip it and subsequent requests shed with
	// ErrUnhealthy instead of silently serving degraded weights.
	brk, err := serve.NewBreaker(pair,
		serve.WithRetry(3, time.Millisecond, 50*time.Millisecond),
		serve.WithSeed(o.seed),
		serve.WithRegistry(reg),
	)
	if err != nil {
		return runStats{}, err
	}
	// The hybrid dispatcher sits between the micro-batcher and the breaker:
	// it routes each flush to the crossbar path or to the executing Von
	// Neumann twin (bit-identical on deterministic configs) per -dispatch.
	// Faulty deployments have no twin; auto mode then pins everything to
	// CIM, and vn mode is rejected by hybrid.New.
	dmode, err := hybrid.ParseMode(o.dispatch)
	if err != nil {
		return runStats{}, err
	}
	var twin *vonneumann.Backend
	if !cfg.Faults.Enabled() && cfg.Crossbar.ReadNoise == 0 {
		twin, err = vonneumann.NewBackend(vonneumann.CPU(), vonneumann.DefaultHierarchy(), cfg.Crossbar, net)
		if err != nil {
			return runStats{}, err
		}
	}
	disp, err := hybrid.New(brk, twin, hybrid.WithMode(dmode), hybrid.WithRegistry(reg))
	if err != nil {
		return runStats{}, err
	}
	srv, err := serve.New(disp,
		serve.WithBatch(o.batch, o.maxdelay),
		serve.WithQueueBound(o.queue),
		serve.WithRegistry(reg),
	)
	if err != nil {
		return runStats{}, err
	}
	if tel != nil {
		tel.set(reg, pair, brk)
	}

	var deadlined, unhealthy, reprogramFailed atomic.Int64
	var energyBits atomic.Uint64

	// Shadow swaps spread across the run: reprogramming must cost the
	// serving path nothing but the buffer swap. A swap that fails after the
	// breaker's retry budget is counted, not fatal — the breakdown in the
	// bench output is the measurement.
	var swapsDone sync.WaitGroup
	if o.reprogram > 0 {
		swapsDone.Add(1)
		go func() {
			defer swapsDone.Done()
			interval := time.Duration(int64(o.requests)) * time.Microsecond / time.Duration(o.reprogram+1)
			if interval < 2*time.Millisecond {
				interval = 2 * time.Millisecond
			}
			for k := 0; k < o.reprogram; k++ {
				time.Sleep(interval)
				target := netB
				if k%2 == 1 {
					target = net
				}
				// Reprogram through the dispatcher so the twin requantizes in
				// the same swap and never serves stale weights.
				if _, _, err := disp.Reprogram(target); err != nil {
					reprogramFailed.Add(1)
				}
			}
		}()
	}

	rep, derr := workloadgen.Drive(driveConfig(o, gen), func(req workloadgen.Request) (workloadgen.Outcome, error) {
		return fanout(req, func(int) (workloadgen.Outcome, error) {
			// SubmitDeadline with d <= 0 is plain Submit, so the fast path
			// is unchanged when -deadline is off.
			_, cost, err := srv.SubmitDeadline(context.Background(), o.deadline, inputs[req.Seq%uint64(len(inputs))])
			out, ferr := classify(err, &deadlined, &unhealthy)
			if out == workloadgen.OK {
				addEnergy(&energyBits, cost.EnergyPJ)
			}
			return out, ferr
		})
	})
	swapsDone.Wait()
	srv.Close()
	if derr != nil {
		return runStats{}, derr
	}

	snap := srv.Registry().Snapshot()
	st := runStats{
		simPS:            srv.SimTimePS(),
		energyPJ:         loadEnergy(&energyBits),
		lat:              snap.Histograms["serve.latency_ns"],
		swaps:            pair.Swaps(),
		unhealthy:        unhealthy.Load(),
		reprogramFailed:  reprogramFailed.Load(),
		deadlineExceeded: deadlined.Load(),
		retries:          snap.Counters["serve.reprogram_retries"],
		dispCIM:          snap.Counters["dispatch.cim"],
		dispVN:           snap.Counters["dispatch.vn"],
		dispPinned:       snap.Counters["dispatch.pinned_noisy"],
	}
	st.fromReport(rep)
	st.avgBatch = snap.Histograms["serve.batch_size"].Mean()
	return st, nil
}

// runFleet measures cluster-scale serving: the workloadgen drive feeds
// o.engines independent serving pipelines behind the o.policy router.
// Every request is stamped with its fleet sequence number as its noise
// key, so outputs are bit-identical to a 1-engine run regardless of
// placement. -reprogram fires rolling reprograms — each one updates every
// engine, one standby at a time, with the fleet serving throughout.
func runFleet(cfg dpe.Config, net, netB *nn.Network, inputs [][]float64, o options, gen loadgen, tel *telemetry) (runStats, error) {
	policy, err := fleet.ParsePolicy(o.policy)
	if err != nil {
		return runStats{}, err
	}
	dmode, err := hybrid.ParseMode(o.dispatch)
	if err != nil {
		return runStats{}, err
	}
	fopts := []fleet.Option{
		fleet.WithEngines(o.engines),
		fleet.WithPolicy(policy),
		fleet.WithServeOptions(
			serve.WithBatch(o.batch, o.maxdelay),
			serve.WithQueueBound(o.queue),
			serve.WithRetry(3, time.Millisecond, 50*time.Millisecond),
		),
	}
	// Resilience controls (docs/RESILIENCE.md), all defaulted: hedging at
	// the tracked p95 with the 5% budget, AIMD + brownout at the documented
	// limits, and the named deterministic chaos plan at scale 1.
	if o.hedge {
		fopts = append(fopts, fleet.WithHedge(fleet.HedgeConfig{}))
	}
	if o.overload {
		fopts = append(fopts, fleet.WithOverloadControl(fleet.OverloadConfig{}))
	}
	plan, err := chaos.ScenarioPlan(o.chaos, o.seed, 1)
	if err != nil {
		return runStats{}, err
	}
	if plan.Enabled() {
		fopts = append(fopts, fleet.WithChaos(chaos.New(plan)))
	}
	// Non-default dispatch wraps every engine's breaker in its own hybrid
	// dispatcher with a per-engine twin, so the dispatch.* counters land in
	// each engine's registry. Fleet traffic is all keyed, which auto mode
	// pins to CIM — the counters make that observable per engine.
	var wrapErr error
	if dmode != hybrid.ModeCIM {
		fopts = append(fopts, fleet.WithWrapBackend(func(id int, b serve.Backend, reg *metrics.Registry) serve.Backend {
			cb, ok := b.(hybrid.CIMBackend)
			if !ok {
				return b
			}
			var twin *vonneumann.Backend
			if !cfg.Faults.Enabled() && cfg.Crossbar.ReadNoise == 0 {
				tw, err := vonneumann.NewBackend(vonneumann.CPU(), vonneumann.DefaultHierarchy(), cfg.Crossbar, net)
				if err != nil {
					wrapErr = fmt.Errorf("engine %d twin: %w", id, err)
					return b
				}
				twin = tw
			}
			d, err := hybrid.New(cb, twin, hybrid.WithMode(dmode), hybrid.WithRegistry(reg))
			if err != nil {
				wrapErr = fmt.Errorf("engine %d dispatcher: %w", id, err)
				return b
			}
			return d
		}))
	}
	f, _, err := fleet.New(cfg, net, fopts...)
	if err != nil {
		return runStats{}, err
	}
	if wrapErr != nil {
		f.Close()
		return runStats{}, wrapErr
	}
	defer f.Close()
	if tel != nil {
		tel.setFleet(f)
	}

	var deadlined, unhealthy, reprogramFailed atomic.Int64
	var energyBits atomic.Uint64

	// Rolling reprograms spread across the run: every engine swaps, one
	// standby at a time, and no request ever fails for it.
	var swapsDone sync.WaitGroup
	if o.reprogram > 0 {
		swapsDone.Add(1)
		go func() {
			defer swapsDone.Done()
			interval := time.Duration(int64(o.requests)) * time.Microsecond / time.Duration(o.reprogram+1)
			if interval < 2*time.Millisecond {
				interval = 2 * time.Millisecond
			}
			for k := 0; k < o.reprogram; k++ {
				time.Sleep(interval)
				target := netB
				if k%2 == 1 {
					target = net
				}
				rep := f.RollingReprogram(target)
				reprogramFailed.Add(int64(rep.Failed))
			}
		}()
	}

	rep, derr := workloadgen.Drive(driveConfig(o, gen), func(req workloadgen.Request) (workloadgen.Outcome, error) {
		return fanout(req, func(element int) (workloadgen.Outcome, error) {
			// Each attempt gets its own deadline: the budget covers one
			// trip through the router + engine, not the drive's retry loop.
			ctx, cancel := context.Background(), func() {}
			if o.deadline > 0 {
				ctx, cancel = context.WithTimeout(ctx, o.deadline)
			}
			// Batch-1 requests keep the drive sequence as their noise key —
			// bit-identical to the historical closed loop; batch-k elements
			// derive distinct keys under the same request.
			seq := req.Seq
			if req.Class.Batch > 1 {
				seq = req.Seq*serveMaxBatch + uint64(element)
			}
			_, cost, err := f.SubmitSeq(ctx, seq, inputs[seq%uint64(len(inputs))])
			cancel()
			out, ferr := classify(err, &deadlined, &unhealthy)
			if out == workloadgen.OK {
				addEnergy(&energyBits, cost.EnergyPJ)
			}
			return out, ferr
		})
	})
	swapsDone.Wait()
	if derr != nil {
		return runStats{}, derr
	}

	fsnap := f.Registry().Snapshot()
	st := runStats{
		simPS:            f.SimTimePS(),
		energyPJ:         loadEnergy(&energyBits),
		lat:              fsnap.Histograms["fleet.latency_ns"],
		unhealthy:        unhealthy.Load(),
		reprogramFailed:  reprogramFailed.Load(),
		deadlineExceeded: deadlined.Load(),
		hedged:           fsnap.Counters["fleet.hedged"],
		hedgeWon:         fsnap.Counters["fleet.hedge_won"],
		limiterRefused:   fsnap.Counters["fleet.limiter_refused"],
		brownoutShed:     fsnap.Counters["fleet.brownout_shed"],
	}
	st.fromReport(rep)
	var batchCount, batchSum float64
	for _, e := range f.Engines() {
		st.swaps += e.Pair().Swaps()
		snap := e.Registry().Snapshot()
		st.retries += snap.Counters["serve.reprogram_retries"]
		st.dispCIM += snap.Counters["dispatch.cim"]
		st.dispVN += snap.Counters["dispatch.vn"]
		st.dispPinned += snap.Counters["dispatch.pinned_noisy"]
		if h, ok := snap.Histograms["serve.batch_size"]; ok {
			batchCount += float64(h.Count)
			batchSum += h.Sum
		}
	}
	if batchCount > 0 {
		st.avgBatch = batchSum / batchCount
	}
	return st, nil
}

// emit writes one `go test -bench`-style result line: name, iterations,
// ns/op, then custom (value, unit) pairs that cmd/benchjson collects into
// its Extra map. The -1 suffix mirrors go test's GOMAXPROCS suffix.
func emit(w io.Writer, name string, s runStats, extra map[string]float64, order []string) {
	nsPerOp := float64(s.wall.Nanoseconds()) / float64(s.requests)
	fmt.Fprintf(w, "%s-%d %d %.0f ns/op", name, runtime.GOMAXPROCS(0), s.requests, nsPerOp)
	fmt.Fprintf(w, " %.1f req_per_s", s.wallReqPerSec())
	fmt.Fprintf(w, " %.4g sim_req_per_s", s.simReqPerSec())
	fmt.Fprintf(w, " %.0f p50_ns %.0f p95_ns %.0f p99_ns",
		s.lat.Quantile(0.50), s.lat.Quantile(0.95), s.lat.Quantile(0.99))
	fmt.Fprintf(w, " %.4g pj_per_req", s.energyPJ/float64(s.requests))
	for _, k := range order {
		fmt.Fprintf(w, " %.4g %s", extra[k], k)
	}
	fmt.Fprintln(w)
}

// summary prints the human-readable comparison to stderr so stdout stays
// machine-clean for the benchjson pipe.
func summary(w io.Writer, o options, serial, batch runStats) {
	fmt.Fprintf(w, "cimserve: %d requests, %s, MLP %v (8-bit)\n", o.requests, loadDesc(o), o.layers)
	if serial.requests > 0 {
		fmt.Fprintf(w, "  serial: %8.1f req/s wall   %10.4g req/s simulated   p99 %s\n",
			serial.wallReqPerSec(), serial.simReqPerSec(), time.Duration(serial.lat.Quantile(0.99)))
	}
	if batch.requests > 0 {
		fmt.Fprintf(w, "  batch:  %8.1f req/s wall   %10.4g req/s simulated   p99 %s   avg batch %.1f   swaps %d\n",
			batch.wallReqPerSec(), batch.simReqPerSec(), time.Duration(batch.lat.Quantile(0.99)),
			batch.avgBatch, batch.swaps)
		fmt.Fprintf(w, "  errors: shed %d   unhealthy %d   reprogram failed %d (retries %d)\n",
			batch.shed, batch.unhealthy, batch.reprogramFailed, batch.retries)
		if o.openLoop() {
			fmt.Fprintf(w, "  open loop: offered %.0f req/s   achieved %.0f req/s   late p99 %s   peak in-flight %d\n",
				batch.offeredRPS, batch.achievedRPS, time.Duration(batch.lateP99NS), batch.peakInFlight)
		}
		if o.deadline > 0 || o.hedge || o.overload || (o.chaos != "" && o.chaos != "none") {
			fmt.Fprintf(w, "  resilience: chaos %q   deadline exceeded %d   hedged %d (won %d)   limiter refused %d   brownout shed %d\n",
				o.chaos, batch.deadlineExceeded, batch.hedged, batch.hedgeWon,
				batch.limiterRefused, batch.brownoutShed)
		}
		if o.dispatch != "cim" {
			fmt.Fprintf(w, "  dispatch (%s): cim %d   vn %d   pinned %d\n",
				o.dispatch, batch.dispCIM, batch.dispVN, batch.dispPinned)
		}
	}
	if serial.requests > 0 && batch.simPS > 0 {
		fmt.Fprintf(w, "  simulated speedup: %.2fx   wall speedup: %.2fx\n",
			float64(serial.simPS)/float64(batch.simPS),
			serial.wall.Seconds()/batch.wall.Seconds())
	}
}

// loadDesc names the drive for the summary header.
func loadDesc(o options) string {
	if o.openLoop() {
		if o.generated() {
			return fmt.Sprintf("open loop (%s, %.0f req/s)", o.arrivals, o.rate)
		}
		return fmt.Sprintf("open loop (trace %s)", o.tracefile)
	}
	return fmt.Sprintf("%d clients", o.clients)
}

// addEnergy CAS-adds pJ into a float64-bits cell.
func addEnergy(cell *atomic.Uint64, pj float64) {
	for {
		old := cell.Load()
		next := math.Float64bits(math.Float64frombits(old) + pj)
		if cell.CompareAndSwap(old, next) {
			return
		}
	}
}

func loadEnergy(cell *atomic.Uint64) float64 { return math.Float64frombits(cell.Load()) }
