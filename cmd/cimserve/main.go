// Command cimserve is the closed-loop load generator for the inference
// serving pipeline (internal/serve). It stands up the paper's Section VI
// DPE behind the micro-batching frontend, drives it with N concurrent
// closed-loop clients (each client issues its next request the moment the
// previous one returns), and reports throughput and latency quantiles in
// `go test -bench` text format so the output pipes straight through
// cmd/benchjson into BENCH_serve.json:
//
//	go run ./cmd/cimserve | go run ./cmd/benchjson -out BENCH_serve.json
//
// Two serving modes are measured:
//
//   - serial: every request pays serial per-request Infer latency — the
//     pre-pipeline baseline where concurrent callers queue on one engine.
//   - batch: requests flow through the adaptive micro-batcher into
//     InferBatch, which overlaps batch items across the engine's stage
//     pipeline (simulated time) and across the worker pool (wall time).
//
// With -engines N (N > 1) the batch mode becomes a fleet run: N
// independent engines — each its own shadow pair, breaker, queue, and
// metrics namespace — behind the -policy request router (round-robin,
// least-loaded, weighted, wear-aware; internal/fleet, docs/CLUSTER.md).
// Requests carry their noise key (the fleet sequence number), so per-
// request outputs are bit-identical to a single-engine run under every
// policy. -reprogram in fleet mode performs *rolling* reprograms: one
// standby programs at a time, health-gated promotion, zero fleet downtime.
// The -listen endpoint exposes every engine's registry on one /metrics
// page with {engine="<id>"} labels and aggregates fleet health on
// /healthz.
//
// Each mode reports wall-clock ns/op plus custom metrics: req_per_s (wall
// throughput), sim_req_per_s (simulated throughput from the energy
// algebra's virtual clock), p50_ns/p95_ns/p99_ns (wall latency quantiles
// from the lock-free serving histogram), and pj_per_req (energy). The
// batch line adds sim_speedup and wall_speedup versus the serial baseline,
// and -reprogram > 0 exercises shadow-engine weight swaps mid-run to show
// they cost the serving path nothing.
//
// -dispatch selects the serving backend policy (internal/hybrid,
// docs/HYBRID.md): cim (default) serves every flush from the crossbar
// path, vn serves from the executing Von Neumann twin (bit-identical on
// deterministic configs), and auto routes each flush by the calibrated
// cost model, pinning keyed/noisy traffic to CIM. Non-default modes add
// dispatch_cim / dispatch_vn / dispatch_pinned_noisy to the bench line,
// and the dispatch.* counters appear on /metrics.
//
// Errors in batch mode are broken out by cause so the benchjson archive
// distinguishes capacity problems from health problems (docs/FAULTS.md):
// shed counts backpressure rejections (ErrOverloaded), unhealthy counts
// requests refused by the tripped circuit breaker (ErrUnhealthy), and
// reprogram_failed counts weight swaps that failed after the breaker's
// retry budget. -stuck and -spares inject device faults to exercise these
// paths; at the defaults (no faults) all three stay zero.
//
// The resilience layer (docs/RESILIENCE.md) is driven by four flags:
// -deadline sets a per-request budget — requests that expire anywhere in
// the pipeline (ingress queue included) shed with the typed
// ErrDeadlineExceeded and are counted as deadline_exceeded, never
// retried. -hedge (fleet mode) re-issues requests that outlive the
// tracked p95 on a second engine — keyed noise makes the two attempts
// bit-identical, so first-response-wins is safe; hedged / hedge_won land
// on the bench line. -overload (fleet mode) enables the per-engine AIMD
// concurrency limiter and the priority brownout. -chaos <scenario>
// injects a deterministic fault plan (none, straggler, crash, overload —
// internal/chaos) into every engine; /healthz reports the active
// scenario and each engine's current concurrency limit. Note the
// micro-batcher's *flush* deadline — how long a partial batch may wait
// for company — is the separate -maxdelay flag.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cimrev/internal/chaos"
	"cimrev/internal/dpe"
	"cimrev/internal/faultinject"
	"cimrev/internal/fleet"
	"cimrev/internal/hybrid"
	"cimrev/internal/metrics"
	"cimrev/internal/nn"
	"cimrev/internal/serve"
	"cimrev/internal/vonneumann"
)

// options is the validated CLI configuration.
type options struct {
	clients   int
	requests  int
	batch     int
	maxdelay  time.Duration // micro-batcher flush deadline
	deadline  time.Duration // per-request deadline (0 = none)
	queue     int
	mode      string
	layers    []int
	seed      int64
	reprogram int
	stuck     float64
	spares    int
	listen    string
	engines   int
	policy    string
	dispatch  string
	hedge     bool
	overload  bool
	chaos     string
}

// parseLayers parses a comma-separated MLP shape like "256,128,10".
func parseLayers(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 {
		return nil, fmt.Errorf("cimserve: -layers needs at least 2 comma-separated sizes, got %q", s)
	}
	sizes := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("cimserve: -layers entry %d (%q) must be a positive integer", i, p)
		}
		sizes[i] = v
	}
	return sizes, nil
}

// validate fails fast on degenerate parameters, mirroring the
// serve.Config / crossbar ADCBits=0 convention.
func (o options) validate() error {
	switch {
	case o.clients < 1:
		return fmt.Errorf("cimserve: -clients must be >= 1, got %d", o.clients)
	case o.requests < 1:
		return fmt.Errorf("cimserve: -requests must be >= 1, got %d", o.requests)
	case o.batch < 1:
		return fmt.Errorf("cimserve: -batch must be >= 1, got %d", o.batch)
	case o.maxdelay <= 0:
		return fmt.Errorf("cimserve: -maxdelay must be positive, got %v", o.maxdelay)
	case o.deadline < 0:
		return fmt.Errorf("cimserve: -deadline must be >= 0 (0 disables), got %v", o.deadline)
	case o.queue < 1:
		return fmt.Errorf("cimserve: -queue must be >= 1, got %d", o.queue)
	case o.queue < o.clients:
		return fmt.Errorf("cimserve: -queue (%d) must be >= -clients (%d): a closed loop never has more than one outstanding request per client, so a smaller queue just sheds load spuriously", o.queue, o.clients)
	case o.mode != "both" && o.mode != "serial" && o.mode != "batch":
		return fmt.Errorf("cimserve: -mode must be one of both|serial|batch, got %q", o.mode)
	case o.reprogram < 0:
		return fmt.Errorf("cimserve: -reprogram must be >= 0, got %d", o.reprogram)
	case o.stuck < 0 || o.stuck >= 1:
		return fmt.Errorf("cimserve: -stuck must be in [0, 1), got %g", o.stuck)
	case o.spares < 0:
		return fmt.Errorf("cimserve: -spares must be >= 0, got %d", o.spares)
	case o.engines < 1:
		return fmt.Errorf("cimserve: -engines must be >= 1, got %d", o.engines)
	case o.hedge && o.engines < 2:
		return fmt.Errorf("cimserve: -hedge needs a fleet to hedge across, use -engines >= 2")
	case o.overload && o.engines < 2:
		return fmt.Errorf("cimserve: -overload is a fleet-mode control, use -engines >= 2")
	}
	if _, err := fleet.ParsePolicy(o.policy); err != nil {
		return fmt.Errorf("cimserve: -policy: %w", err)
	}
	if _, err := hybrid.ParseMode(o.dispatch); err != nil {
		return fmt.Errorf("cimserve: -dispatch: %w", err)
	}
	if plan, err := chaos.ScenarioPlan(o.chaos, o.seed, 1); err != nil {
		return fmt.Errorf("cimserve: -chaos: %w", err)
	} else if plan.Enabled() && o.engines < 2 {
		return fmt.Errorf("cimserve: -chaos %s targets a fleet, use -engines >= 2", o.chaos)
	}
	return nil
}

// runStats is what one serving mode measured.
type runStats struct {
	requests int
	wall     time.Duration
	simPS    int64
	energyPJ float64
	lat      metrics.HistogramSnapshot
	swaps    int64
	avgBatch float64

	// Error breakdown by cause (batch mode): backpressure sheds, breaker
	// sheds, and weight swaps that exhausted the breaker's retry budget.
	shed            int64
	unhealthy       int64
	reprogramFailed int64
	retries         int64

	// Hybrid dispatch breakdown: requests routed to the crossbar, to the
	// Von Neumann twin, and pinned to the crossbar for noise reasons.
	dispCIM    int64
	dispVN     int64
	dispPinned int64

	// Resilience breakdown (docs/RESILIENCE.md): requests shed by their
	// per-request deadline, hedges issued/won, limiter refusals folded
	// into failovers, and brownout sheds of low-priority traffic.
	deadlineExceeded int64
	hedged           int64
	hedgeWon         int64
	limiterRefused   int64
	brownoutShed     int64
}

func (s runStats) wallReqPerSec() float64 {
	if s.wall <= 0 {
		return 0
	}
	return float64(s.requests) / s.wall.Seconds()
}

func (s runStats) simReqPerSec() float64 {
	if s.simPS <= 0 {
		return 0
	}
	return float64(s.requests) / (float64(s.simPS) * 1e-12)
}

func main() {
	var o options
	var layersFlag string
	flag.IntVar(&o.clients, "clients", 64, "concurrent closed-loop clients")
	flag.IntVar(&o.requests, "requests", 2048, "total requests per mode")
	flag.IntVar(&o.batch, "batch", 64, "micro-batcher max batch size")
	flag.DurationVar(&o.maxdelay, "maxdelay", 2*time.Millisecond, "micro-batcher flush deadline: max delay a partial batch waits for company")
	flag.DurationVar(&o.deadline, "deadline", 0, "per-request deadline; expired requests shed with ErrDeadlineExceeded (0 disables)")
	flag.IntVar(&o.queue, "queue", 4096, "ingress queue bound (backpressure high-water mark)")
	flag.StringVar(&o.mode, "mode", "both", "serving modes to run: both|serial|batch")
	flag.StringVar(&layersFlag, "layers", "256,256,256,256,256,128,10", "8-bit MLP layer sizes")
	flag.Int64Var(&o.seed, "seed", 1, "workload and engine seed")
	flag.IntVar(&o.reprogram, "reprogram", 0, "shadow-engine weight swaps to perform mid-run (batch mode)")
	flag.Float64Var(&o.stuck, "stuck", 0, "stuck-cell rate injected into every crossbar (split evenly GMin/GMax)")
	flag.IntVar(&o.spares, "spares", 0, "spare columns per crossbar for fault remapping")
	flag.StringVar(&o.listen, "listen", "", "address for the live telemetry endpoint (/metrics, /healthz, /debug/pprof); empty disables")
	flag.IntVar(&o.engines, "engines", 1, "fleet size: engines behind the request router (1 = single-engine batch mode)")
	flag.StringVar(&o.policy, "policy", "round-robin", "fleet routing policy: round-robin, least-loaded, weighted, wear-aware")
	flag.StringVar(&o.dispatch, "dispatch", "cim", "backend dispatch policy: cim (crossbar only), vn (Von Neumann twin only), auto (cost-model routing)")
	flag.BoolVar(&o.hedge, "hedge", false, "fleet mode: hedge requests that outlive the tracked p95 onto a second engine (first response wins, bit-identical)")
	flag.BoolVar(&o.overload, "overload", false, "fleet mode: enable the per-engine AIMD concurrency limiter and priority brownout")
	flag.StringVar(&o.chaos, "chaos", "none", "fleet mode: deterministic chaos scenario to inject: none, straggler, crash, overload")
	flag.Parse()

	layers, err := parseLayers(layersFlag)
	if err != nil {
		fatal(err)
	}
	o.layers = layers
	if err := o.validate(); err != nil {
		fatal(err)
	}
	if err := run(os.Stdout, o); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cimserve:", err)
	os.Exit(1)
}

// run executes the selected modes and writes bench-format lines to w.
func run(w io.Writer, o options) error {
	// The 8-bit MLP workload: default crossbar config is 8-bit weights,
	// 8-bit inputs, 8-bit ADCs; functional mode keeps the cost model
	// intact while skipping per-cycle ADC emulation.
	cfg := dpe.DefaultConfig()
	cfg.Seed = o.seed
	if o.stuck > 0 {
		cfg.Faults = faultinject.Model{
			StuckLowRate:  o.stuck / 2,
			StuckHighRate: o.stuck / 2,
			Seed:          o.seed,
		}
		cfg.Crossbar.SpareCols = o.spares
	}

	rng := rand.New(rand.NewSource(o.seed))
	net, err := nn.NewMLP("serve-mlp8", o.layers, rng)
	if err != nil {
		return err
	}
	netB, err := nn.NewMLP("serve-mlp8-v2", o.layers, rng)
	if err != nil {
		return err
	}
	inputs := make([][]float64, 256)
	for i := range inputs {
		in := make([]float64, o.layers[0])
		for j := range in {
			in[j] = rng.Float64()*2 - 1
		}
		inputs[i] = in
	}

	fmt.Fprintf(w, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(w, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(w, "pkg: cimrev/cmd/cimserve\n")

	// The telemetry endpoint (when -listen is set) outlives both modes;
	// runBatch installs the live registry/pair/breaker into it.
	tel := &telemetry{}
	if o.listen != "" {
		addr, stop, err := startTelemetry(o.listen, tel)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "cimserve: telemetry on http://%s (/metrics /healthz /debug/pprof)\n", addr)
	}

	var serial, batch runStats
	if o.mode == "both" || o.mode == "serial" {
		serial, err = runSerial(cfg, net, inputs, o)
		if err != nil {
			return err
		}
		emit(w, fmt.Sprintf("BenchmarkServe/serial_c%d", o.clients), serial, nil, nil)
	}
	if o.mode == "both" || o.mode == "batch" {
		if o.engines > 1 {
			batch, err = runFleet(cfg, net, netB, inputs, o, tel)
		} else {
			batch, err = runBatch(cfg, net, netB, inputs, o, tel)
		}
		if err != nil {
			return err
		}
		extra := map[string]float64{
			"avg_batch":         batch.avgBatch,
			"swaps":             float64(batch.swaps),
			"shed":              float64(batch.shed),
			"unhealthy":         float64(batch.unhealthy),
			"reprogram_failed":  float64(batch.reprogramFailed),
			"reprogram_retries": float64(batch.retries),
		}
		order := []string{"avg_batch", "swaps", "shed", "unhealthy", "reprogram_failed", "reprogram_retries"}
		if o.deadline > 0 {
			extra["deadline_exceeded"] = float64(batch.deadlineExceeded)
			order = append(order, "deadline_exceeded")
		}
		if o.hedge {
			extra["hedged"] = float64(batch.hedged)
			extra["hedge_won"] = float64(batch.hedgeWon)
			order = append(order, "hedged", "hedge_won")
		}
		if o.overload {
			extra["limiter_refused"] = float64(batch.limiterRefused)
			extra["brownout_shed"] = float64(batch.brownoutShed)
			order = append(order, "limiter_refused", "brownout_shed")
		}
		if o.dispatch != "cim" {
			extra["dispatch_cim"] = float64(batch.dispCIM)
			extra["dispatch_vn"] = float64(batch.dispVN)
			extra["dispatch_pinned_noisy"] = float64(batch.dispPinned)
			order = append(order, "dispatch_cim", "dispatch_vn", "dispatch_pinned_noisy")
		}
		if o.mode == "both" {
			if batch.simPS > 0 {
				extra["sim_speedup"] = float64(serial.simPS) / float64(batch.simPS)
				order = append(order, "sim_speedup")
			}
			if batch.wall > 0 {
				extra["wall_speedup"] = serial.wall.Seconds() / batch.wall.Seconds()
				order = append(order, "wall_speedup")
			}
		}
		name := fmt.Sprintf("BenchmarkServe/batch_c%d_b%d", o.clients, o.batch)
		if o.engines > 1 {
			extra["engines"] = float64(o.engines)
			order = append(order, "engines")
			name = fmt.Sprintf("BenchmarkServe/fleet_c%d_b%d_e%d_%s",
				o.clients, o.batch, o.engines, strings.ReplaceAll(o.policy, "-", "_"))
		}
		emit(w, name, batch, extra, order)
	}
	summary(os.Stderr, o, serial, batch)
	return nil
}

// runSerial measures the baseline: o.clients closed-loop clients contend
// for one engine whose Infer calls are fully serialized — every request
// pays serial per-request latency, in wall-clock and in simulated time.
func runSerial(cfg dpe.Config, net *nn.Network, inputs [][]float64, o options) (runStats, error) {
	eng, err := dpe.New(cfg)
	if err != nil {
		return runStats{}, err
	}
	if _, err := eng.Load(net); err != nil {
		return runStats{}, err
	}

	lat := metrics.NewHistogram()
	var mu sync.Mutex // serializes Infer: the no-pipeline baseline
	var issued atomic.Int64
	var simPS atomic.Int64
	var energyBits atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup

	start := time.Now()
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := issued.Add(1) - 1
				if i >= int64(o.requests) {
					return
				}
				t0 := time.Now()
				mu.Lock()
				_, cost, err := eng.Infer(inputs[int(i)%len(inputs)])
				mu.Unlock()
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				lat.Observe(float64(time.Since(t0).Nanoseconds()))
				simPS.Add(cost.LatencyPS)
				addEnergy(&energyBits, cost.EnergyPJ)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return runStats{}, err
	}
	return runStats{
		requests: o.requests,
		wall:     wall,
		simPS:    simPS.Load(),
		energyPJ: loadEnergy(&energyBits),
		lat:      lat.Snapshot(),
	}, nil
}

// runBatch measures the pipeline: the same closed-loop clients submit to
// the micro-batching server over a health-gated shadow pair, with optional
// mid-run weight swaps. Request failures are classified by cause rather
// than collapsed into one count: backpressure (ErrOverloaded) retries,
// breaker sheds (ErrUnhealthy) abandon the request, anything else aborts
// the run.
func runBatch(cfg dpe.Config, net, netB *nn.Network, inputs [][]float64, o options, tel *telemetry) (runStats, error) {
	pair, _, err := serve.NewShadowPair(cfg, net)
	if err != nil {
		return runStats{}, err
	}
	// One registry spans the whole pipeline — the redesigned serve.Config
	// threads it into both the breaker and the micro-batcher, so the
	// telemetry endpoint scrapes a single coherent namespace.
	reg := metrics.NewRegistry()
	// The breaker sits between the micro-batcher and the shadow pair. With
	// no faults injected it is transparent; with -stuck past the spare
	// budget, failed swaps trip it and subsequent requests shed with
	// ErrUnhealthy instead of silently serving degraded weights.
	brk, err := serve.NewBreaker(pair,
		serve.WithRetry(3, time.Millisecond, 50*time.Millisecond),
		serve.WithSeed(o.seed),
		serve.WithRegistry(reg),
	)
	if err != nil {
		return runStats{}, err
	}
	// The hybrid dispatcher sits between the micro-batcher and the breaker:
	// it routes each flush to the crossbar path or to the executing Von
	// Neumann twin (bit-identical on deterministic configs) per -dispatch.
	// Faulty deployments have no twin; auto mode then pins everything to
	// CIM, and vn mode is rejected by hybrid.New.
	dmode, err := hybrid.ParseMode(o.dispatch)
	if err != nil {
		return runStats{}, err
	}
	var twin *vonneumann.Backend
	if !cfg.Faults.Enabled() && cfg.Crossbar.ReadNoise == 0 {
		twin, err = vonneumann.NewBackend(vonneumann.CPU(), vonneumann.DefaultHierarchy(), cfg.Crossbar, net)
		if err != nil {
			return runStats{}, err
		}
	}
	disp, err := hybrid.New(brk, twin, hybrid.WithMode(dmode), hybrid.WithRegistry(reg))
	if err != nil {
		return runStats{}, err
	}
	srv, err := serve.New(disp,
		serve.WithBatch(o.batch, o.maxdelay),
		serve.WithQueueBound(o.queue),
		serve.WithRegistry(reg),
	)
	if err != nil {
		return runStats{}, err
	}
	if tel != nil {
		tel.set(reg, pair, brk)
	}

	var issued, shed, unhealthy, reprogramFailed, deadlined atomic.Int64
	var energyBits atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup

	start := time.Now()
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := issued.Add(1) - 1
				if i >= int64(o.requests) {
					return
				}
				for {
					// SubmitDeadline with d <= 0 is plain Submit, so the
					// fast path is unchanged when -deadline is off.
					_, cost, err := srv.SubmitDeadline(context.Background(), o.deadline, inputs[int(i)%len(inputs)])
					if errors.Is(err, serve.ErrDeadlineExceeded) {
						// The request's budget expired (queued or mid-batch):
						// it was shed, not lost — count it and move on, never
						// retry past the deadline.
						deadlined.Add(1)
						break
					}
					if errors.Is(err, serve.ErrOverloaded) {
						// Closed-loop clients with queue >= clients should
						// never see this; count and retry so the bench
						// still completes if tuned otherwise.
						shed.Add(1)
						time.Sleep(50 * time.Microsecond)
						continue
					}
					if errors.Is(err, serve.ErrUnhealthy) {
						// Breaker open: the request is refused, not queued.
						// Count it and move on — the closed loop keeps
						// running so the shed rate is measured, not fatal.
						unhealthy.Add(1)
						break
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					addEnergy(&energyBits, cost.EnergyPJ)
					break
				}
			}
		}(c)
	}

	// Shadow swaps spread across the run: reprogramming must cost the
	// serving path nothing but the buffer swap. A swap that fails after the
	// breaker's retry budget is counted, not fatal — the breakdown in the
	// bench output is the measurement.
	if o.reprogram > 0 {
		interval := time.Duration(int64(o.requests)) * time.Microsecond / time.Duration(o.reprogram+1)
		if interval < 2*time.Millisecond {
			interval = 2 * time.Millisecond
		}
		for k := 0; k < o.reprogram; k++ {
			time.Sleep(interval)
			target := netB
			if k%2 == 1 {
				target = net
			}
			// Reprogram through the dispatcher so the twin requantizes in
			// the same swap and never serves stale weights.
			if _, _, err := disp.Reprogram(target); err != nil {
				reprogramFailed.Add(1)
			}
		}
	}

	wg.Wait()
	wall := time.Since(start)
	srv.Close()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return runStats{}, err
	}

	snap := srv.Registry().Snapshot()
	st := runStats{
		requests:         o.requests,
		wall:             wall,
		simPS:            srv.SimTimePS(),
		energyPJ:         loadEnergy(&energyBits),
		lat:              snap.Histograms["serve.latency_ns"],
		swaps:            pair.Swaps(),
		shed:             shed.Load(),
		unhealthy:        unhealthy.Load(),
		reprogramFailed:  reprogramFailed.Load(),
		deadlineExceeded: deadlined.Load(),
		retries:          snap.Counters["serve.reprogram_retries"],
		dispCIM:          snap.Counters["dispatch.cim"],
		dispVN:           snap.Counters["dispatch.vn"],
		dispPinned:       snap.Counters["dispatch.pinned_noisy"],
	}
	st.avgBatch = snap.Histograms["serve.batch_size"].Mean()
	return st, nil
}

// runFleet measures cluster-scale serving: the closed-loop clients drive
// o.engines independent serving pipelines behind the o.policy router.
// Every request is stamped with its fleet sequence number as its noise
// key, so outputs are bit-identical to a 1-engine run regardless of
// placement. -reprogram fires rolling reprograms — each one updates every
// engine, one standby at a time, with the fleet serving throughout.
func runFleet(cfg dpe.Config, net, netB *nn.Network, inputs [][]float64, o options, tel *telemetry) (runStats, error) {
	policy, err := fleet.ParsePolicy(o.policy)
	if err != nil {
		return runStats{}, err
	}
	dmode, err := hybrid.ParseMode(o.dispatch)
	if err != nil {
		return runStats{}, err
	}
	fopts := []fleet.Option{
		fleet.WithEngines(o.engines),
		fleet.WithPolicy(policy),
		fleet.WithServeOptions(
			serve.WithBatch(o.batch, o.maxdelay),
			serve.WithQueueBound(o.queue),
			serve.WithRetry(3, time.Millisecond, 50*time.Millisecond),
		),
	}
	// Resilience controls (docs/RESILIENCE.md), all defaulted: hedging at
	// the tracked p95 with the 5% budget, AIMD + brownout at the documented
	// limits, and the named deterministic chaos plan at scale 1.
	if o.hedge {
		fopts = append(fopts, fleet.WithHedge(fleet.HedgeConfig{}))
	}
	if o.overload {
		fopts = append(fopts, fleet.WithOverloadControl(fleet.OverloadConfig{}))
	}
	plan, err := chaos.ScenarioPlan(o.chaos, o.seed, 1)
	if err != nil {
		return runStats{}, err
	}
	if plan.Enabled() {
		fopts = append(fopts, fleet.WithChaos(chaos.New(plan)))
	}
	// Non-default dispatch wraps every engine's breaker in its own hybrid
	// dispatcher with a per-engine twin, so the dispatch.* counters land in
	// each engine's registry. Fleet traffic is all keyed, which auto mode
	// pins to CIM — the counters make that observable per engine.
	var wrapErr error
	if dmode != hybrid.ModeCIM {
		fopts = append(fopts, fleet.WithWrapBackend(func(id int, b serve.Backend, reg *metrics.Registry) serve.Backend {
			cb, ok := b.(hybrid.CIMBackend)
			if !ok {
				return b
			}
			var twin *vonneumann.Backend
			if !cfg.Faults.Enabled() && cfg.Crossbar.ReadNoise == 0 {
				tw, err := vonneumann.NewBackend(vonneumann.CPU(), vonneumann.DefaultHierarchy(), cfg.Crossbar, net)
				if err != nil {
					wrapErr = fmt.Errorf("engine %d twin: %w", id, err)
					return b
				}
				twin = tw
			}
			d, err := hybrid.New(cb, twin, hybrid.WithMode(dmode), hybrid.WithRegistry(reg))
			if err != nil {
				wrapErr = fmt.Errorf("engine %d dispatcher: %w", id, err)
				return b
			}
			return d
		}))
	}
	f, _, err := fleet.New(cfg, net, fopts...)
	if err != nil {
		return runStats{}, err
	}
	if wrapErr != nil {
		f.Close()
		return runStats{}, wrapErr
	}
	defer f.Close()
	if tel != nil {
		tel.setFleet(f)
	}

	var issued, shed, unhealthy, reprogramFailed, deadlined atomic.Int64
	var energyBits atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup

	start := time.Now()
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := issued.Add(1) - 1
				if i >= int64(o.requests) {
					return
				}
				for {
					// Each attempt gets its own deadline: the budget covers
					// one trip through the router + engine, not the client's
					// whole retry loop.
					ctx, cancel := context.Background(), func() {}
					if o.deadline > 0 {
						ctx, cancel = context.WithTimeout(ctx, o.deadline)
					}
					_, cost, err := f.SubmitSeq(ctx, uint64(i), inputs[int(i)%len(inputs)])
					cancel()
					if errors.Is(err, serve.ErrDeadlineExceeded) {
						// Shed by the per-request deadline somewhere in the
						// pipeline — counted, never retried past its budget.
						deadlined.Add(1)
						break
					}
					if errors.Is(err, serve.ErrOverloaded) {
						shed.Add(1)
						time.Sleep(50 * time.Microsecond)
						continue
					}
					if errors.Is(err, serve.ErrUnhealthy) {
						unhealthy.Add(1)
						break
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					addEnergy(&energyBits, cost.EnergyPJ)
					break
				}
			}
		}(c)
	}

	// Rolling reprograms spread across the run: every engine swaps, one
	// standby at a time, and no request ever fails for it.
	if o.reprogram > 0 {
		interval := time.Duration(int64(o.requests)) * time.Microsecond / time.Duration(o.reprogram+1)
		if interval < 2*time.Millisecond {
			interval = 2 * time.Millisecond
		}
		for k := 0; k < o.reprogram; k++ {
			time.Sleep(interval)
			target := netB
			if k%2 == 1 {
				target = net
			}
			rep := f.RollingReprogram(target)
			reprogramFailed.Add(int64(rep.Failed))
		}
	}

	wg.Wait()
	wall := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return runStats{}, err
	}

	fsnap := f.Registry().Snapshot()
	st := runStats{
		requests:         o.requests,
		wall:             wall,
		simPS:            f.SimTimePS(),
		energyPJ:         loadEnergy(&energyBits),
		lat:              fsnap.Histograms["fleet.latency_ns"],
		shed:             shed.Load(),
		unhealthy:        unhealthy.Load(),
		reprogramFailed:  reprogramFailed.Load(),
		deadlineExceeded: deadlined.Load(),
		hedged:           fsnap.Counters["fleet.hedged"],
		hedgeWon:         fsnap.Counters["fleet.hedge_won"],
		limiterRefused:   fsnap.Counters["fleet.limiter_refused"],
		brownoutShed:     fsnap.Counters["fleet.brownout_shed"],
	}
	var batchCount, batchSum float64
	for _, e := range f.Engines() {
		st.swaps += e.Pair().Swaps()
		snap := e.Registry().Snapshot()
		st.retries += snap.Counters["serve.reprogram_retries"]
		st.dispCIM += snap.Counters["dispatch.cim"]
		st.dispVN += snap.Counters["dispatch.vn"]
		st.dispPinned += snap.Counters["dispatch.pinned_noisy"]
		if h, ok := snap.Histograms["serve.batch_size"]; ok {
			batchCount += float64(h.Count)
			batchSum += h.Sum
		}
	}
	if batchCount > 0 {
		st.avgBatch = batchSum / batchCount
	}
	return st, nil
}

// emit writes one `go test -bench`-style result line: name, iterations,
// ns/op, then custom (value, unit) pairs that cmd/benchjson collects into
// its Extra map. The -1 suffix mirrors go test's GOMAXPROCS suffix.
func emit(w io.Writer, name string, s runStats, extra map[string]float64, order []string) {
	nsPerOp := float64(s.wall.Nanoseconds()) / float64(s.requests)
	fmt.Fprintf(w, "%s-%d %d %.0f ns/op", name, runtime.GOMAXPROCS(0), s.requests, nsPerOp)
	fmt.Fprintf(w, " %.1f req_per_s", s.wallReqPerSec())
	fmt.Fprintf(w, " %.4g sim_req_per_s", s.simReqPerSec())
	fmt.Fprintf(w, " %.0f p50_ns %.0f p95_ns %.0f p99_ns",
		s.lat.Quantile(0.50), s.lat.Quantile(0.95), s.lat.Quantile(0.99))
	fmt.Fprintf(w, " %.4g pj_per_req", s.energyPJ/float64(s.requests))
	for _, k := range order {
		fmt.Fprintf(w, " %.4g %s", extra[k], k)
	}
	fmt.Fprintln(w)
}

// summary prints the human-readable comparison to stderr so stdout stays
// machine-clean for the benchjson pipe.
func summary(w io.Writer, o options, serial, batch runStats) {
	fmt.Fprintf(w, "cimserve: %d requests, %d clients, MLP %v (8-bit)\n", o.requests, o.clients, o.layers)
	if serial.requests > 0 {
		fmt.Fprintf(w, "  serial: %8.1f req/s wall   %10.4g req/s simulated   p99 %s\n",
			serial.wallReqPerSec(), serial.simReqPerSec(), time.Duration(serial.lat.Quantile(0.99)))
	}
	if batch.requests > 0 {
		fmt.Fprintf(w, "  batch:  %8.1f req/s wall   %10.4g req/s simulated   p99 %s   avg batch %.1f   swaps %d\n",
			batch.wallReqPerSec(), batch.simReqPerSec(), time.Duration(batch.lat.Quantile(0.99)),
			batch.avgBatch, batch.swaps)
		fmt.Fprintf(w, "  errors: shed %d   unhealthy %d   reprogram failed %d (retries %d)\n",
			batch.shed, batch.unhealthy, batch.reprogramFailed, batch.retries)
		if o.deadline > 0 || o.hedge || o.overload || (o.chaos != "" && o.chaos != "none") {
			fmt.Fprintf(w, "  resilience: chaos %q   deadline exceeded %d   hedged %d (won %d)   limiter refused %d   brownout shed %d\n",
				o.chaos, batch.deadlineExceeded, batch.hedged, batch.hedgeWon,
				batch.limiterRefused, batch.brownoutShed)
		}
		if o.dispatch != "cim" {
			fmt.Fprintf(w, "  dispatch (%s): cim %d   vn %d   pinned %d\n",
				o.dispatch, batch.dispCIM, batch.dispVN, batch.dispPinned)
		}
	}
	if serial.requests > 0 && batch.simPS > 0 {
		fmt.Fprintf(w, "  simulated speedup: %.2fx   wall speedup: %.2fx\n",
			float64(serial.simPS)/float64(batch.simPS),
			serial.wall.Seconds()/batch.wall.Seconds())
	}
}

// addEnergy CAS-adds pJ into a float64-bits cell.
func addEnergy(cell *atomic.Uint64, pj float64) {
	for {
		old := cell.Load()
		next := math.Float64bits(math.Float64frombits(old) + pj)
		if cell.CompareAndSwap(old, next) {
			return
		}
	}
}

func loadEnergy(cell *atomic.Uint64) float64 { return math.Float64frombits(cell.Load()) }
