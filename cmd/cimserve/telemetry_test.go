package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cimrev/internal/chaos"
	"cimrev/internal/dpe"
	"cimrev/internal/fleet"
	"cimrev/internal/metrics"
	"cimrev/internal/nn"
	"cimrev/internal/serve"
	"math/rand"
)

// getBody fetches url and returns status code and body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestTelemetryEndpoints stands up the -listen HTTP server on a loopback
// port and walks it through its lifecycle: initializing (503s before the
// batch run installs its objects), serving (/metrics in Prometheus text,
// /healthz 200 with the fault-scan JSON, pprof wired), and unhealthy
// (tripped breaker -> 503).
func TestTelemetryEndpoints(t *testing.T) {
	tel := &telemetry{}
	addr, stop, err := startTelemetry("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	// Before initialization both data endpoints must 503, not 404 or 200.
	if code, _ := getBody(t, base+"/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("/metrics before init = %d, want 503", code)
	}
	code, body := getBody(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/healthz before init = %d, want 503", code)
	}
	var hb healthzBody
	if err := json.Unmarshal([]byte(body), &hb); err != nil {
		t.Fatalf("/healthz body not JSON: %v (%q)", err, body)
	}
	if hb.Status != "initializing" {
		t.Errorf("pre-init status %q, want initializing", hb.Status)
	}

	// Install a live serving pipeline.
	cfg := dpe.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 64, 64
	net, err := nn.NewMLP("telemetry-test", []int{32, 24, 10}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	pair, _, err := serve.NewShadowPair(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	brk, err := serve.NewBreaker(pair, serve.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(brk,
		serve.WithBatch(4, time.Millisecond), serve.WithQueueBound(64),
		serve.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tel.set(reg, pair, brk)

	// Serve a little traffic so the registry has content to scrape.
	in := make([]float64, 32)
	for i := 0; i < 8; i++ {
		if _, _, err := srv.Infer(in); err != nil {
			t.Fatal(err)
		}
	}

	code, body = getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200:\n%s", code, body)
	}
	for _, want := range []string{
		"# TYPE serve_requests counter",
		"serve_requests 8",
		"# TYPE serve_latency_ns summary",
		`serve_latency_ns{quantile="0.99"}`,
		"serve_latency_ns_count 8",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = getBody(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200: %s", code, body)
	}
	hb = healthzBody{}
	if err := json.Unmarshal([]byte(body), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != "ok" || hb.Tripped || hb.LostCols != 0 {
		t.Errorf("healthy pipeline reported %+v", hb)
	}
	if hb.Stages == 0 {
		t.Error("health scan covered no stages")
	}

	// pprof is wired onto the private mux.
	if code, _ := getBody(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d, want 200", code)
	}

	// A tripped breaker flips /healthz to 503 without touching /metrics.
	probe := [][]float64{in}
	badLabels := []int{-1}
	brk2, err := serve.NewBreaker(pair, serve.WithProbe(0.9, probe, badLabels), serve.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := brk2.Reprogram(net); err == nil {
		t.Fatal("impossible probe labels passed")
	}
	tel.set(reg, pair, brk2)
	code, body = getBody(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with tripped breaker = %d, want 503: %s", code, body)
	}
	hb = healthzBody{}
	if err := json.Unmarshal([]byte(body), &hb); err != nil {
		t.Fatal(err)
	}
	if !hb.Tripped || hb.Status != "unhealthy" {
		t.Errorf("tripped breaker reported %+v", hb)
	}
	if code, _ := getBody(t, base+"/metrics"); code != http.StatusOK {
		t.Error("/metrics must keep serving while unhealthy")
	}
}

// TestRunWithListen drives the full closed loop with -listen enabled and
// scrapes the endpoint mid-run: the batch mode installs its registry and
// the scrape shows real traffic counters.
func TestRunWithListen(t *testing.T) {
	tel := &telemetry{}
	addr, stop, err := startTelemetry("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	o := options{
		clients:  4,
		requests: 64,
		batch:    4,
		maxdelay: time.Millisecond,
		queue:    64,
		mode:     "batch",
		layers:   []int{32, 24, 10},
		seed:     7,
		dispatch: "cim",
	}
	// run() would start its own listener from o.listen; drive runBatch
	// directly against the already-started one to keep the port in hand.
	cfg := dpe.DefaultConfig()
	cfg.Seed = o.seed
	rng := rand.New(rand.NewSource(o.seed))
	net, err := nn.NewMLP("listen-test", o.layers, rng)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]float64, 16)
	for i := range inputs {
		inputs[i] = make([]float64, o.layers[0])
	}
	st, err := runBatch(cfg, net, net, inputs, o, loadgen{}, tel)
	if err != nil {
		t.Fatal(err)
	}
	if st.requests != o.requests {
		t.Fatalf("served %d, want %d", st.requests, o.requests)
	}
	code, body := getBody(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics after run = %d", code)
	}
	if !strings.Contains(body, fmt.Sprintf("serve_requests %d", o.requests)) {
		t.Errorf("/metrics does not show the run's %d requests:\n%s", o.requests, body)
	}
}

// TestTelemetryFleet: in fleet mode /metrics carries the fleet registry
// plus every engine's registry under an {engine="<id>"} label, and
// /healthz aggregates per-engine health with the rolling status.
func TestTelemetryFleet(t *testing.T) {
	tel := &telemetry{}
	addr, stop, err := startTelemetry("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr

	net, err := nn.NewMLP("tel-fleet", []int{16, 8}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dpe.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 64, 64
	// Hedging, overload control, and a chaos plan are all armed so the
	// /healthz body's resilience fields carry live state, not zero values.
	plan, err := chaos.ScenarioPlan("straggler", 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := fleet.New(cfg, net, fleet.WithEngines(2),
		fleet.WithHedge(fleet.HedgeConfig{}),
		fleet.WithOverloadControl(fleet.OverloadConfig{}),
		fleet.WithChaos(chaos.New(plan)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tel.setFleet(f)

	in := make([]float64, 16)
	if _, _, err := f.Infer(in); err != nil {
		t.Fatal(err)
	}

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics fleet = %d, want 200", code)
	}
	for _, want := range []string{
		"fleet_requests 1",
		`serve_requests{engine="0"}`,
		`serve_requests{engine="1"}`,
		`serve_latency_ns{engine="0",quantile="0.5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet /metrics missing %q:\n%s", want, body)
		}
	}

	code, body = getBody(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz fleet = %d, want 200", code)
	}
	var fb fleetHealthzBody
	if err := json.Unmarshal([]byte(body), &fb); err != nil {
		t.Fatalf("fleet /healthz body not JSON: %v (%q)", err, body)
	}
	if fb.Status != "ok" || len(fb.Engines) != 2 || fb.Rolling.Active {
		t.Errorf("fleet /healthz body = %+v", fb)
	}
	// Resilience state: the active chaos scenario by name, hedging on,
	// brownout off (no overload yet), and every engine's live AIMD limit.
	if fb.Chaos != "straggler" || !fb.Hedging || fb.Brownout {
		t.Errorf("fleet /healthz resilience state = chaos %q hedging %v brownout %v",
			fb.Chaos, fb.Hedging, fb.Brownout)
	}
	for _, eh := range fb.Engines {
		if eh.Limit <= 0 {
			t.Errorf("engine %d /healthz limit = %d, want > 0 with overload control on", eh.ID, eh.Limit)
		}
	}

	// Drain every engine: the fleet has no routable members and /healthz
	// must flip to 503.
	for _, e := range f.Engines() {
		if err := f.Leave(e.ID()); err != nil {
			t.Fatal(err)
		}
	}
	if code, _ := getBody(t, base+"/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz with no routable engines = %d, want 503", code)
	}
}
