// Live telemetry endpoint for cimserve: -listen starts an HTTP server
// exposing the serving pipeline's state while the load runs.
//
//   - /metrics    — the serving registry in Prometheus text format
//     (metrics.Snapshot.WriteProm): request/batch counters, latency and
//     batch-size summaries, breaker state.
//   - /healthz    — JSON liveness: the live engine's fault scan (via
//     ShadowPair.Health, which holds the engine's read gate so the scan
//     cannot race a reprogram) plus breaker and swap state. 200 when
//     serving and healthy, 503 when the breaker is open or columns are
//     lost.
//   - /debug/pprof — the standard Go profiler endpoints, wired manually
//     onto the private mux (the default mux is never used, so cimserve
//     cannot leak handlers into importers).
//
// The handlers read only snapshots and atomics; a scrape can never stall
// the dispatcher or the closed-loop clients. See docs/OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"cimrev/internal/metrics"
	"cimrev/internal/serve"
)

// telemetry is the shared state the HTTP handlers read. The batch run
// installs its registry/pair/breaker once they exist; until then the
// endpoints report "initializing".
type telemetry struct {
	mu   sync.Mutex
	reg  *metrics.Registry
	pair *serve.ShadowPair
	brk  *serve.Breaker
}

// set installs the live serving objects (called once by runBatch).
func (t *telemetry) set(reg *metrics.Registry, pair *serve.ShadowPair, brk *serve.Breaker) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg, t.pair, t.brk = reg, pair, brk
}

// get returns the current serving objects (any may be nil early on).
func (t *telemetry) get() (*metrics.Registry, *serve.ShadowPair, *serve.Breaker) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reg, t.pair, t.brk
}

// handleMetrics renders the serving registry as Prometheus text.
func (t *telemetry) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	reg, _, _ := t.get()
	if reg == nil {
		http.Error(w, "# registry not initialized yet\n", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.Snapshot().WriteProm(w)
}

// healthzBody is the /healthz JSON shape.
type healthzBody struct {
	Status    string `json:"status"` // "ok", "unhealthy", or "initializing"
	Tripped   bool   `json:"breaker_tripped"`
	Swaps     int64  `json:"swaps"`
	Stages    int    `json:"stages_scanned"`
	LostCols  int    `json:"lost_cols"`
	StuckBad  int    `json:"stuck_cells"`
	Remapped  int    `json:"remapped_cols"`
	CheckedAt string `json:"checked_at"`
}

// handleHealthz scans the live engine through the shadow pair's read gate
// and reports 200 (serving, healthy) or 503 (tripped breaker or lost
// columns).
func (t *telemetry) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	_, pair, brk := t.get()
	body := healthzBody{Status: "initializing", CheckedAt: time.Now().UTC().Format(time.RFC3339Nano)}
	code := http.StatusServiceUnavailable
	if pair != nil {
		h := pair.Health()
		body.Status = "ok"
		body.Swaps = pair.Swaps()
		body.Stages = len(h.Stages)
		body.LostCols = h.Total.LostCols
		body.StuckBad = h.Total.StuckCells
		body.Remapped = h.Total.RemappedCols
		code = http.StatusOK
		if !h.Healthy() {
			body.Status = "unhealthy"
			code = http.StatusServiceUnavailable
		}
		if brk != nil && brk.Tripped() {
			body.Tripped = true
			body.Status = "unhealthy"
			code = http.StatusServiceUnavailable
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// newTelemetryMux wires the three endpoint families onto a private mux.
func newTelemetryMux(t *telemetry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.handleMetrics)
	mux.HandleFunc("/healthz", t.handleHealthz)
	// Manual pprof wiring: we never touch http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startTelemetry binds addr and serves the telemetry mux in the
// background, returning the bound address (useful with ":0") and a
// shutdown func.
func startTelemetry(addr string, t *telemetry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("cimserve: -listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: newTelemetryMux(t)}
	go func() { _ = srv.Serve(ln) }()
	stop := func() { _ = srv.Close() }
	return ln.Addr().String(), stop, nil
}
