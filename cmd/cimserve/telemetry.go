// Live telemetry endpoint for cimserve: -listen starts an HTTP server
// exposing the serving pipeline's state while the load runs.
//
//   - /metrics    — the serving registry in Prometheus text format
//     (metrics.Snapshot.WriteProm): request/batch counters, latency and
//     batch-size summaries, breaker state. In fleet mode (-engines > 1)
//     one page carries the fleet.* registry unlabeled plus every engine's
//     private serve.* registry rendered with an {engine="<id>"} label
//     (metrics.Snapshot.WritePromLabeled), so per-engine series share
//     names without colliding.
//   - /healthz    — JSON liveness: the live engine's fault scan (via
//     ShadowPair.Health, which holds the engine's read gate so the scan
//     cannot race a reprogram) plus breaker and swap state. 200 when
//     serving and healthy, 503 when the breaker is open or columns are
//     lost. In fleet mode the body aggregates every engine (per-engine
//     entries plus the rolling-reprogram status); the fleet is "ok" while
//     at least one engine is routable — degraded members are listed, not
//     fatal, because the router fails over around them.
//   - /debug/pprof — the standard Go profiler endpoints, wired manually
//     onto the private mux (the default mux is never used, so cimserve
//     cannot leak handlers into importers).
//
// The handlers read only snapshots and atomics; a scrape can never stall
// the dispatcher or the closed-loop clients. See docs/OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"cimrev/internal/fleet"
	"cimrev/internal/metrics"
	"cimrev/internal/serve"
)

// telemetry is the shared state the HTTP handlers read. The batch run
// installs its registry/pair/breaker once they exist; until then the
// endpoints report "initializing".
type telemetry struct {
	mu   sync.Mutex
	reg  *metrics.Registry
	pair *serve.ShadowPair
	brk  *serve.Breaker
	fl   *fleet.Fleet
}

// set installs the live serving objects (called once by runBatch).
func (t *telemetry) set(reg *metrics.Registry, pair *serve.ShadowPair, brk *serve.Breaker) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg, t.pair, t.brk = reg, pair, brk
}

// setFleet installs the live fleet (called once by runFleet).
func (t *telemetry) setFleet(f *fleet.Fleet) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fl = f
}

// get returns the current serving objects (any may be nil early on).
func (t *telemetry) get() (*metrics.Registry, *serve.ShadowPair, *serve.Breaker) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reg, t.pair, t.brk
}

// getFleet returns the live fleet, nil outside fleet mode.
func (t *telemetry) getFleet() *fleet.Fleet {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fl
}

// handleMetrics renders the serving registry as Prometheus text. In fleet
// mode it renders the fleet registry followed by each engine's registry
// under an {engine="<id>"} label.
func (t *telemetry) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if f := t.getFleet(); f != nil {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = f.Registry().Snapshot().WriteProm(w)
		for _, e := range f.Engines() {
			labels := map[string]string{"engine": strconv.Itoa(e.ID())}
			_ = e.Registry().Snapshot().WritePromLabeled(w, labels)
		}
		return
	}
	reg, _, _ := t.get()
	if reg == nil {
		http.Error(w, "# registry not initialized yet\n", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.Snapshot().WriteProm(w)
}

// healthzBody is the /healthz JSON shape.
type healthzBody struct {
	Status    string `json:"status"` // "ok", "unhealthy", or "initializing"
	Tripped   bool   `json:"breaker_tripped"`
	Swaps     int64  `json:"swaps"`
	Stages    int    `json:"stages_scanned"`
	LostCols  int    `json:"lost_cols"`
	StuckBad  int    `json:"stuck_cells"`
	Remapped  int    `json:"remapped_cols"`
	CheckedAt string `json:"checked_at"`
}

// engineHealth is one fleet member's entry in the fleet /healthz body.
type engineHealth struct {
	ID       int   `json:"id"`
	Tripped  bool  `json:"breaker_tripped"`
	Draining bool  `json:"draining"`
	Swaps    int64 `json:"swaps"`
	LostCols int   `json:"lost_cols"`
	Wear     int64 `json:"wear_writes"`
	Routed   int64 `json:"routed"`
	// Limit is the engine's current AIMD concurrency limit and InFlight
	// its admitted load (docs/RESILIENCE.md); Limit is 0 when overload
	// control is disabled.
	Limit    int64 `json:"limit"`
	InFlight int64 `json:"in_flight"`
}

// fleetHealthzBody is the /healthz JSON shape in fleet mode.
type fleetHealthzBody struct {
	Status  string              `json:"status"` // "ok" or "unhealthy"
	Engines []engineHealth      `json:"engines"`
	Rolling fleet.RollingStatus `json:"rolling"`
	// Resilience state (docs/RESILIENCE.md): the active chaos scenario
	// ("none" when nothing is injected), whether hedging is enabled, and
	// whether the brownout is currently shedding low-priority traffic.
	Chaos     string `json:"chaos_scenario"`
	Hedging   bool   `json:"hedging"`
	Brownout  bool   `json:"brownout_active"`
	CheckedAt string `json:"checked_at"`
}

// handleHealthz scans the live engine through the shadow pair's read gate
// and reports 200 (serving, healthy) or 503 (tripped breaker or lost
// columns). In fleet mode the scan covers every member: the fleet is ok
// while at least one engine is routable.
func (t *telemetry) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if f := t.getFleet(); f != nil {
		body := fleetHealthzBody{
			Rolling:   f.RollingStatus(),
			Chaos:     f.Chaos().Plan().Name,
			Hedging:   f.Hedging(),
			Brownout:  f.BrownoutActive(),
			CheckedAt: time.Now().UTC().Format(time.RFC3339Nano),
		}
		routable := 0
		for _, e := range f.Engines() {
			h := e.Health()
			eh := engineHealth{
				ID: e.ID(), Tripped: e.Tripped(), Draining: e.Draining(),
				Swaps: e.Pair().Swaps(), LostCols: h.Total.LostCols,
				Wear: e.Wear(), Routed: e.Routed(),
				Limit: e.Limit(), InFlight: e.InFlight(),
			}
			if !eh.Tripped && !eh.Draining {
				routable++
			}
			body.Engines = append(body.Engines, eh)
		}
		body.Status = "ok"
		code := http.StatusOK
		if routable == 0 {
			body.Status = "unhealthy"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(body)
		return
	}
	_, pair, brk := t.get()
	body := healthzBody{Status: "initializing", CheckedAt: time.Now().UTC().Format(time.RFC3339Nano)}
	code := http.StatusServiceUnavailable
	if pair != nil {
		h := pair.Health()
		body.Status = "ok"
		body.Swaps = pair.Swaps()
		body.Stages = len(h.Stages)
		body.LostCols = h.Total.LostCols
		body.StuckBad = h.Total.StuckCells
		body.Remapped = h.Total.RemappedCols
		code = http.StatusOK
		if !h.Healthy() {
			body.Status = "unhealthy"
			code = http.StatusServiceUnavailable
		}
		if brk != nil && brk.Tripped() {
			body.Tripped = true
			body.Status = "unhealthy"
			code = http.StatusServiceUnavailable
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// newTelemetryMux wires the three endpoint families onto a private mux.
func newTelemetryMux(t *telemetry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.handleMetrics)
	mux.HandleFunc("/healthz", t.handleHealthz)
	// Manual pprof wiring: we never touch http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startTelemetry binds addr and serves the telemetry mux in the
// background, returning the bound address (useful with ":0") and a
// shutdown func.
func startTelemetry(addr string, t *telemetry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("cimserve: -listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: newTelemetryMux(t)}
	go func() { _ = srv.Serve(ln) }()
	stop := func() { _ = srv.Close() }
	return ln.Addr().String(), stop, nil
}
