// Command cimasm assembles and disassembles CIM ISA programs: the binary
// form is what program-carrying packets transport through the fabric
// (self-programmable dataflow, Section III.B).
//
// Usage:
//
//	cimasm -asm program.casm -o program.bin     # assemble
//	cimasm -dis program.bin                     # disassemble to stdout
//	cimasm -check program.casm                  # validate only
package main

import (
	"flag"
	"fmt"
	"os"

	"cimrev/internal/isa"
)

func main() {
	asmPath := flag.String("asm", "", "assembly source to assemble")
	disPath := flag.String("dis", "", "binary program to disassemble")
	checkPath := flag.String("check", "", "assembly source to validate")
	out := flag.String("o", "", "output path for -asm (default: stdout as hex)")
	flag.Parse()

	if err := run(*asmPath, *disPath, *checkPath, *out); err != nil {
		fmt.Fprintln(os.Stderr, "cimasm:", err)
		os.Exit(1)
	}
}

func run(asmPath, disPath, checkPath, out string) error {
	switch {
	case asmPath != "":
		src, err := os.ReadFile(asmPath)
		if err != nil {
			return err
		}
		prog, err := isa.Assemble(string(src))
		if err != nil {
			return err
		}
		bin, err := prog.Encode()
		if err != nil {
			return err
		}
		if out == "" {
			fmt.Printf("%x\n", bin)
			return nil
		}
		if err := os.WriteFile(out, bin, 0o644); err != nil {
			return err
		}
		fmt.Printf("assembled %d instructions to %s (%d bytes)\n", len(prog), out, len(bin))
		return nil

	case disPath != "":
		bin, err := os.ReadFile(disPath)
		if err != nil {
			return err
		}
		prog, err := isa.Decode(bin)
		if err != nil {
			return err
		}
		fmt.Print(prog.Disassemble())
		return nil

	case checkPath != "":
		src, err := os.ReadFile(checkPath)
		if err != nil {
			return err
		}
		prog, err := isa.Assemble(string(src))
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d instructions, valid\n", checkPath, len(prog))
		return nil

	default:
		return fmt.Errorf("one of -asm, -dis, or -check is required")
	}
}
