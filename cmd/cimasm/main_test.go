package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleSrc = "configure 0/0/0 mvm\nloadweights 0/0/0 1 2 0.5,-0.5\nbarrier\nhalt\n"

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.casm")
	if err := os.WriteFile(path, []byte(sampleSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAssembleDisassembleFiles(t *testing.T) {
	src := writeSample(t)
	bin := filepath.Join(t.TempDir(), "p.bin")
	if err := run(src, "", "", bin); err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if _, err := os.Stat(bin); err != nil {
		t.Fatalf("binary missing: %v", err)
	}
	if err := run("", bin, "", ""); err != nil {
		t.Fatalf("disassemble: %v", err)
	}
}

func TestAssembleToStdout(t *testing.T) {
	src := writeSample(t)
	if err := run(src, "", "", ""); err != nil {
		t.Fatalf("assemble to stdout: %v", err)
	}
}

func TestCheck(t *testing.T) {
	src := writeSample(t)
	if err := run("", "", src, ""); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run("", "", "", ""); err == nil {
		t.Error("no mode accepted")
	}
	if err := run("/nonexistent.casm", "", "", ""); err == nil {
		t.Error("missing source accepted")
	}
	if err := run("", "/nonexistent.bin", "", ""); err == nil {
		t.Error("missing binary accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.casm")
	if err := os.WriteFile(bad, []byte("bogus instruction\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "", "", ""); err == nil {
		t.Error("bad source assembled")
	}
	notBin := filepath.Join(t.TempDir(), "not.bin")
	if err := os.WriteFile(notBin, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", notBin, "", ""); err == nil {
		t.Error("garbage binary disassembled")
	}
}
