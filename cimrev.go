// Package cimrev is a Go reproduction of "Computing In-Memory, Revisited"
// (Milojicic et al., ICDCS 2018): a simulation stack for the
// Computing-In-Memory architecture the paper sketches, from memristor
// device physics up through crossbar arrays, the Dot Product Engine,
// dataflow programming models, packet interconnects, and the Von Neumann
// baselines everything is compared against.
//
// This package is the public facade: it re-exports the main entry points
// so downstream users interact with one import. The implementation lives
// in internal/ packages, one per subsystem (see DESIGN.md for the full
// inventory).
//
// Quick start:
//
//	engine, err := cimrev.NewDPE(cimrev.DefaultDPEConfig())
//	net, err := cimrev.NewMLP("demo", []int{64, 128, 10}, rng)
//	programCost, err := engine.Load(net)
//	out, inferCost, err := engine.Infer(input)
package cimrev

import (
	"math/rand"

	"cimrev/internal/associative"
	"cimrev/internal/cim"
	"cimrev/internal/compiler"
	"cimrev/internal/crossbar"
	"cimrev/internal/dpe"
	"cimrev/internal/energy"
	"cimrev/internal/fault"
	"cimrev/internal/machines"
	"cimrev/internal/memristor"
	"cimrev/internal/metrics"
	"cimrev/internal/nn"
	"cimrev/internal/noise"
	"cimrev/internal/packet"
	"cimrev/internal/parallel"
	"cimrev/internal/service"
	"cimrev/internal/suitability"
	"cimrev/internal/vonneumann"
	"cimrev/internal/workloads"
)

// Core accounting types.
type (
	// Cost is a (latency, energy) pair; see internal/energy.
	Cost = energy.Cost
	// Ledger accumulates costs by category.
	Ledger = energy.Ledger
)

// NewLedger returns an empty cost ledger.
func NewLedger() *Ledger { return energy.NewLedger() }

// SetSimWorkers sets the simulator's worker-pool width: how many
// goroutines chew through independent crossbar tiles, batch items, boards,
// and sweep points. 1 selects sequential mode; n <= 0 resets to the
// GOMAXPROCS default. Simulated results are bit-identical at any width —
// only wall-clock time changes (see docs/PARALLELISM.md).
func SetSimWorkers(n int) { parallel.SetWidth(n) }

// SimWorkers returns the current simulation worker-pool width.
func SimWorkers() int { return parallel.Width() }

// Crossbar layer.
type (
	// CrossbarConfig sizes a memristive crossbar.
	CrossbarConfig = crossbar.Config
	// Crossbar is one analog MVM array stack.
	Crossbar = crossbar.Crossbar
	// CrossbarTile block-decomposes large matrices over many crossbars.
	CrossbarTile = crossbar.Tile
	// NoiseSource is a counter-based analog-noise stream: draws are pure
	// functions of (source, index), so noisy simulations reproduce
	// bit-identically at any worker-pool width (see internal/noise).
	NoiseSource = noise.Source
)

// NoNoise is the zero noise source for noise-free crossbar MVMs.
var NoNoise = crossbar.NoNoise

// NewNoiseSource returns the root noise source for a seed. Derive children
// per unit of work; the same seed always reproduces the same tree.
func NewNoiseSource(seed int64) NoiseSource { return noise.NewSource(seed) }

// DefaultCrossbarConfig returns the ISAAC-scale array configuration.
func DefaultCrossbarConfig() CrossbarConfig { return crossbar.DefaultConfig() }

// NewCrossbar builds one crossbar.
func NewCrossbar(cfg CrossbarConfig) (*Crossbar, error) { return crossbar.New(cfg) }

// NewCrossbarTile builds a tile of crossbars.
func NewCrossbarTile(cfg CrossbarConfig) (*CrossbarTile, error) { return crossbar.NewTile(cfg) }

// Dot Product Engine — the paper's Section VI system.
type (
	// DPEConfig configures a Dot Product Engine.
	DPEConfig = dpe.Config
	// DPE is a programmed Dot Product Engine.
	DPE = dpe.Engine
	// DPECluster is a multi-board DPE deployment.
	DPECluster = dpe.Cluster
)

// DefaultDPEConfig returns the standard engine configuration.
func DefaultDPEConfig() DPEConfig { return dpe.DefaultConfig() }

// NewDPE builds an empty engine.
func NewDPE(cfg DPEConfig) (*DPE, error) { return dpe.New(cfg) }

// NewDPECluster builds a multi-board deployment.
func NewDPECluster(cfg DPEConfig, boards int, linkLenM, linkBW float64) (*DPECluster, error) {
	return dpe.NewCluster(cfg, boards, linkLenM, linkBW)
}

// Neural networks.
type (
	// Network is a feed-forward network.
	Network = nn.Network
	// Layer is one network stage.
	Layer = nn.Layer
)

// NewMLP builds a dense network with ReLU hidden layers and softmax output.
func NewMLP(name string, sizes []int, rng *rand.Rand) (*Network, error) {
	return nn.NewMLP(name, sizes, rng)
}

// NewLeNetStyle builds a small CNN for sq x sq x 1 inputs.
func NewLeNetStyle(name string, sq, hidden, classes int, rng *rand.Rand) (*Network, error) {
	return nn.NewLeNetStyle(name, sq, hidden, classes, rng)
}

// CIM fabric — the architectural simulator.
type (
	// FabricConfig sizes a CIM board.
	FabricConfig = cim.Config
	// Fabric is one CIM board of mesh-connected units.
	Fabric = cim.Fabric
	// Address locates a unit (board/tile/unit).
	Address = packet.Address
	// Packet is one message in the fabric.
	Packet = packet.Packet
)

// DefaultFabricConfig returns a 4x4-tile board.
func DefaultFabricConfig() FabricConfig { return cim.DefaultConfig() }

// NewFabric builds an empty fabric.
func NewFabric(cfg FabricConfig, ledger *Ledger, reg *metrics.Registry) (*Fabric, error) {
	return cim.NewFabric(cfg, ledger, reg)
}

// CompilePlan maps a network onto a fabric configuration.
func CompilePlan(net *Network, cfg FabricConfig) (*compiler.Plan, error) {
	return compiler.Compile(net, cfg)
}

// ApplyPlan instantiates a compiled plan on a fabric.
func ApplyPlan(plan *compiler.Plan, fabric *Fabric) error {
	return compiler.Apply(plan, fabric)
}

// Baselines and experiments.
type (
	// Machine is a roofline Von Neumann model.
	Machine = vonneumann.Machine
	// WorkloadClass is one of the 14 Table 2 application classes.
	WorkloadClass = workloads.Class
	// SuitabilityResult is one scored Table 2 row.
	SuitabilityResult = suitability.Result
)

// CPU returns the modeled server CPU.
func CPU() Machine { return vonneumann.CPU() }

// GPU returns the modeled accelerator.
func GPU() Machine { return vonneumann.GPU() }

// Table2 scores every application class (reproduces the paper's Table 2).
func Table2() ([]SuitabilityResult, error) { return suitability.Table2() }

// Fig2Series returns the historical bytes/FLOP series (reproduces Fig 2).
func Fig2Series() []machines.Point { return machines.Series() }

// NewGuard wraps a fabric with fault detection/recovery (Section V.A).
func NewGuard(fabric *Fabric, reg *metrics.Registry) (*fault.Guard, error) {
	return fault.NewGuard(fabric, reg)
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *metrics.Registry { return metrics.NewRegistry() }

// Training (Section III.B: CIM "enables more opportunities for training").

// Train runs SGD over the dataset, returning the final-epoch mean loss.
func Train(net *Network, inputs [][]float64, labels []int, epochs int, lr float64, rng *rand.Rand) (float64, error) {
	return nn.Train(net, inputs, labels, epochs, lr, rng)
}

// Accuracy returns the network's classification accuracy on the dataset.
func Accuracy(net *Network, inputs [][]float64, labels []int) (float64, error) {
	return nn.Accuracy(net, inputs, labels)
}

// MakeBlobs generates a synthetic Gaussian-blob classification dataset.
func MakeBlobs(n, classes, dim int, spread float64, rng *rand.Rand) ([][]float64, []int, error) {
	return nn.MakeBlobs(n, classes, dim, spread, rng)
}

// Associative computing (Section III.A: TCAM and associative processors).
type (
	// TCAM is a ternary content-addressable memory.
	TCAM = associative.TCAM
	// AssociativeProcessor computes via parallel compare/write sweeps.
	AssociativeProcessor = associative.Processor
)

// NewTCAM builds a ternary CAM of rows x width bits.
func NewTCAM(rows, width int, led *Ledger) (*TCAM, error) {
	return associative.NewTCAM(rows, width, led)
}

// NewAssociativeProcessor builds an associative processor.
func NewAssociativeProcessor(rows, width int, led *Ledger) (*AssociativeProcessor, error) {
	return associative.NewProcessor(rows, width, led)
}

// Serviceability (Section V.D: graceful aging and self-healing).

// NewWearMonitor watches unit aging against the device endurance model.
func NewWearMonitor(fabric *Fabric, threshold float64, reg *metrics.Registry) (*service.Monitor, error) {
	return service.NewMonitor(fabric, memristor.DefaultParams(), threshold, reg)
}

// NewHealer closes the self-healing loop: worn units retire to spares.
func NewHealer(monitor *service.Monitor, guard *fault.Guard, reg *metrics.Registry) (*service.Healer, error) {
	return service.NewHealer(monitor, guard, reg)
}
