// Package noise is the simulator's counter-based analog-noise generator.
//
// The crossbar model perturbs every analog column sum with Gaussian read
// noise. The original implementation drew from a shared *rand.Rand, which
// made every noisy draw depend on the global draw *order* — so any code
// path touching noise had to force itself sequential to stay reproducible,
// and the worker pool sat idle exactly on the sweeps (noise ablations,
// Section VI accuracy studies) it was built to accelerate.
//
// This package replaces the stream with a splitmix64-style counter
// generator: a Source is an immutable 8-byte key, and the i-th draw is a
// pure function of (key, i). Determinism becomes *positional* instead of
// temporal — the noise applied to (input bit b, weight slice s, column c)
// of a given MVM is the same no matter which goroutine computes it, or in
// what order. That single property deletes every "noisy ⇒ sequential"
// fallback in crossbar, dpe, and experiments (see docs/PARALLELISM.md).
//
// # Key derivation
//
// Sources form a tree. A root comes from a seed (NewSource); each level of
// the simulation derives a child per unit of work:
//
//	engine   = NewSource(cfg.Seed)
//	perMVM   = engine.Derive(mvmSequence)  // one per inference/batch item
//	perStage = perMVM.Derive(stageIndex)   // one per network layer
//	perBlock = perStage.Derive(blockIndex) // one per crossbar in a tile
//	draw     = perBlock.Norm((b*slices+s)*cols + c)
//
// Every edge is a splitmix64 finalizer, so sibling streams are
// statistically independent, and the whole tree is reproducible from the
// one seed.
//
// The zero Source is "no source": Valid reports false, and noisy consumers
// reject it the way they used to reject a nil *rand.Rand. NewSource and
// Derive never return the zero Source.
package noise

import "math"

// golden is the splitmix64 increment (2^64 / phi).
const golden = 0x9e3779b97f4a7c15

// Source is an immutable counter-based noise stream. The zero value is the
// "no noise" source (Valid() == false). Source is a tiny value type: copy
// it freely, share it across goroutines, derive children without
// allocating.
type Source struct {
	key uint64
}

// mix is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nonzero remaps the (single) zero key so valid sources never collide with
// the zero Source sentinel.
func nonzero(k uint64) uint64 {
	if k == 0 {
		return golden
	}
	return k
}

// NewSource returns the root source for a seed. Distinct seeds give
// statistically independent streams; the same seed always gives the same
// stream.
func NewSource(seed int64) Source {
	return Source{key: nonzero(mix(uint64(seed) + golden))}
}

// Valid reports whether s is a real source (false for the zero Source).
func (s Source) Valid() bool { return s.key != 0 }

// Derive returns the i-th child source. Children with different indices,
// and children of different parents, are statistically independent.
func (s Source) Derive(i uint64) Source {
	return Source{key: nonzero(mix(s.key ^ mix(i*golden+golden)))}
}

// Uint64 returns the i-th raw draw of the stream: a pure function of
// (source, i), so draws may be evaluated in any order by any goroutine.
func (s Source) Uint64(i uint64) uint64 {
	return mix(s.key + (i+1)*golden)
}

// Float64 returns the i-th uniform draw in the open interval (0, 1).
func (s Source) Float64(i uint64) float64 {
	// 53 high bits, centered on the lattice: never exactly 0 or 1.
	return (float64(s.Uint64(i)>>11) + 0.5) * (1.0 / (1 << 53))
}

// Norm returns the i-th standard normal draw (mean 0, std 1), via
// Box-Muller over two uniform draws. Unlike rand.NormFloat64's ziggurat,
// the value is a branch-free pure function of (source, i) — the property
// the parallel noisy simulation depends on.
func (s Source) Norm(i uint64) float64 {
	u1 := s.Float64(2 * i)
	u2 := s.Float64(2*i + 1)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
