package noise

import (
	"math"
	"sync"
	"testing"
)

func TestZeroSourceInvalid(t *testing.T) {
	var s Source
	if s.Valid() {
		t.Error("zero Source must be invalid")
	}
	if !NewSource(0).Valid() {
		t.Error("NewSource(0) must be valid")
	}
	if !NewSource(0).Derive(0).Valid() {
		t.Error("derived source must be valid")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := uint64(0); i < 100; i++ {
		if a.Norm(i) != b.Norm(i) {
			t.Fatalf("draw %d differs for identical sources", i)
		}
		if a.Derive(i) != b.Derive(i) {
			t.Fatalf("child %d differs for identical sources", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := NewSource(1), NewSource(2)
	if a == b {
		t.Fatal("different seeds produced identical sources")
	}
	same := 0
	for i := uint64(0); i < 64; i++ {
		if a.Uint64(i) == b.Uint64(i) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/64 draws collide across seeds", same)
	}
}

func TestDeriveDecorrelates(t *testing.T) {
	root := NewSource(7)
	c0, c1 := root.Derive(0), root.Derive(1)
	if c0 == c1 || c0 == root || c1 == root {
		t.Fatal("Derive must produce distinct sources")
	}
	// Sibling streams must not be shifted copies of each other.
	for i := uint64(0); i < 64; i++ {
		if c0.Uint64(i) == c1.Uint64(i) {
			t.Fatalf("draw %d identical across siblings", i)
		}
	}
}

func TestOrderIndependence(t *testing.T) {
	// The defining property: draw i is the same whether evaluated first,
	// last, or concurrently.
	s := NewSource(99)
	forward := make([]float64, 256)
	for i := range forward {
		forward[i] = s.Norm(uint64(i))
	}
	backward := make([]float64, 256)
	for i := len(backward) - 1; i >= 0; i-- {
		backward[i] = s.Norm(uint64(i))
	}
	for i := range forward {
		if forward[i] != backward[i] {
			t.Fatalf("draw %d depends on evaluation order", i)
		}
	}
	// And concurrently, under -race.
	concurrent := make([]float64, 256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 256; i += 8 {
				concurrent[i] = s.Norm(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	for i := range forward {
		if forward[i] != concurrent[i] {
			t.Fatalf("draw %d differs under concurrent evaluation", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(3)
	for i := uint64(0); i < 10000; i++ {
		v := s.Float64(i)
		if v <= 0 || v >= 1 {
			t.Fatalf("Float64(%d) = %v outside (0,1)", i, v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := NewSource(12345)
	const n = 200000
	var sum, sumSq float64
	for i := uint64(0); i < n; i++ {
		v := s.Norm(i)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %g, want ~1", variance)
	}
}

func TestNormFinite(t *testing.T) {
	s := NewSource(-1)
	for i := uint64(0); i < 100000; i++ {
		v := s.Norm(i)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Norm(%d) = %v", i, v)
		}
	}
}
