package memristor

import (
	"testing"
	"testing/quick"

	"cimrev/internal/energy"
)

func newEngine(t *testing.T, rows, words int) *BitwiseEngine {
	t.Helper()
	e, err := NewBitwiseEngine(rows, words, energy.NewLedger())
	if err != nil {
		t.Fatalf("NewBitwiseEngine: %v", err)
	}
	return e
}

func TestBitwiseEngineDims(t *testing.T) {
	e := newEngine(t, 4, 2)
	if e.Rows() != 4 || e.Words() != 2 {
		t.Errorf("dims = %dx%d, want 4x2", e.Rows(), e.Words())
	}
	if _, err := NewBitwiseEngine(0, 1, nil); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := NewBitwiseEngine(1, 0, nil); err == nil {
		t.Error("zero words should fail")
	}
}

func TestBitwiseStoreLoad(t *testing.T) {
	e := newEngine(t, 2, 2)
	in := []uint64{0xDEADBEEF, 0xCAFE}
	if err := e.Store(0, in); err != nil {
		t.Fatal(err)
	}
	got, err := e.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != in[0] || got[1] != in[1] {
		t.Errorf("Load = %x, want %x", got, in)
	}
	// Short stores zero-fill.
	if err := e.Store(0, []uint64{0x1}); err != nil {
		t.Fatal(err)
	}
	got, _ = e.Load(0)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("short Store = %x, want [1 0]", got)
	}
}

func TestBitwiseLoadIsCopy(t *testing.T) {
	e := newEngine(t, 1, 1)
	if err := e.Store(0, []uint64{7}); err != nil {
		t.Fatal(err)
	}
	got, _ := e.Load(0)
	got[0] = 99
	again, _ := e.Load(0)
	if again[0] != 7 {
		t.Error("Load must return a copy, not internal state")
	}
}

func TestBitwiseOps(t *testing.T) {
	e := newEngine(t, 4, 1)
	a, b := uint64(0b1100), uint64(0b1010)
	if err := e.Store(0, []uint64{a}); err != nil {
		t.Fatal(err)
	}
	if err := e.Store(1, []uint64{b}); err != nil {
		t.Fatal(err)
	}

	if err := e.And(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Load(2); got[0] != a&b {
		t.Errorf("And = %b, want %b", got[0], a&b)
	}

	if err := e.Or(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Load(2); got[0] != a|b {
		t.Errorf("Or = %b, want %b", got[0], a|b)
	}

	if err := e.Xor(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Load(2); got[0] != a^b {
		t.Errorf("Xor = %b, want %b", got[0], a^b)
	}
}

func TestBitwiseOpsMatchIntegers(t *testing.T) {
	f := func(a, b uint64) bool {
		e, err := NewBitwiseEngine(3, 1, nil)
		if err != nil {
			return false
		}
		if err := e.Store(0, []uint64{a}); err != nil {
			return false
		}
		if err := e.Store(1, []uint64{b}); err != nil {
			return false
		}
		if err := e.And(0, 1, 2); err != nil {
			return false
		}
		rAnd, _ := e.Load(2)
		if err := e.Or(0, 1, 2); err != nil {
			return false
		}
		rOr, _ := e.Load(2)
		if err := e.Xor(0, 1, 2); err != nil {
			return false
		}
		rXor, _ := e.Load(2)
		return rAnd[0] == a&b && rOr[0] == a|b && rXor[0] == a^b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitwiseInPlaceTarget(t *testing.T) {
	// dst == a is physically fine: the array senses before it writes back.
	e := newEngine(t, 2, 1)
	if err := e.Store(0, []uint64{0b1100}); err != nil {
		t.Fatal(err)
	}
	if err := e.Store(1, []uint64{0b1010}); err != nil {
		t.Fatal(err)
	}
	if err := e.Xor(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Load(0); got[0] != 0b0110 {
		t.Errorf("in-place Xor = %b, want 0110", got[0])
	}
}

func TestBitwisePopCount(t *testing.T) {
	e := newEngine(t, 1, 2)
	if err := e.Store(0, []uint64{0xFF, 0x3}); err != nil {
		t.Fatal(err)
	}
	n, err := e.PopCount(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("PopCount = %d, want 10", n)
	}
}

func TestBitwiseBounds(t *testing.T) {
	e := newEngine(t, 2, 1)
	if err := e.And(0, 1, 5); err == nil {
		t.Error("out-of-range dst should fail")
	}
	if err := e.Store(-1, nil); err == nil {
		t.Error("negative row should fail")
	}
	if _, err := e.Load(2); err == nil {
		t.Error("out-of-range Load should fail")
	}
	if _, err := e.PopCount(9); err == nil {
		t.Error("out-of-range PopCount should fail")
	}
}

func TestBitwiseChargesLedger(t *testing.T) {
	led := energy.NewLedger()
	e, err := NewBitwiseEngine(2, 4, led)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Store(0, []uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := e.And(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if led.Category("bitwise-compute").EnergyPJ == 0 {
		t.Error("compute charged no energy")
	}
	if led.Category("bitwise-store").LatencyPS == 0 {
		t.Error("store charged no latency")
	}
}

func TestPopcount64(t *testing.T) {
	tests := []struct {
		x    uint64
		want int
	}{
		{0, 0}, {1, 1}, {0xFF, 8}, {^uint64(0), 64}, {1 << 63, 1},
	}
	for _, tt := range tests {
		if got := popcount64(tt.x); got != tt.want {
			t.Errorf("popcount64(%x) = %d, want %d", tt.x, got, tt.want)
		}
	}
}
