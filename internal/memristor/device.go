// Package memristor models the novel memory devices at the heart of the
// paper's CIM vision (Section II.A, III.A): elements that "blur the boundary
// between memory and compute, effectively providing both in the same
// element".
//
// It provides three layers:
//
//   - Device: a single memristive cell with quantized conductance states,
//     read noise, asymmetric (slow, energetic) writes, and endurance-driven
//     aging (Section V.D serviceability).
//   - Stateful logic: the NOT/IMP (material implication) operations of
//     Borghetti et al. [20], from which all Boolean logic is built.
//   - Bitwise engine: the AND/OR/XOR in-array operations of Chen et al.
//     [18], used for bulk bitwise workloads.
//
// All randomness is injected via a caller-supplied *rand.Rand so simulations
// are reproducible.
package memristor

import (
	"fmt"
	"math"
	"math/rand"

	"cimrev/internal/energy"
)

// Logic pulse costs: stateful-logic pulses are much faster and cheaper than
// full analog programming writes because they only need to flip a binary
// state, not settle an analog level with verify cycles.
const (
	// LogicPulseLatencyPS is one conditional switching pulse.
	LogicPulseLatencyPS = 10_000 // 10 ns
	// LogicPulseEnergyPJ is the energy of one switching pulse.
	LogicPulseEnergyPJ = 0.1
)

// LogicPulseCost is the cost of a single stateful-logic pulse.
var LogicPulseCost = energy.Cost{LatencyPS: LogicPulseLatencyPS, EnergyPJ: LogicPulseEnergyPJ}

// DeviceParams describes a memristive cell technology.
type DeviceParams struct {
	// GMin and GMax bound the programmable conductance range in siemens.
	GMin, GMax float64
	// Levels is the number of distinct programmable conductance levels
	// (2^bits-per-cell). Must be >= 2.
	Levels int
	// ReadNoise is the relative standard deviation of conductance observed
	// on a read (device-to-device and cycle-to-cycle variation folded
	// together).
	ReadNoise float64
	// Endurance is the write count after which the device begins to age.
	Endurance int64
	// DriftPerWrite is the fractional GMax degradation per write beyond
	// Endurance.
	DriftPerWrite float64
}

// DefaultParams returns TaOx-class device parameters: 2-bit cells with a
// 1000x on/off ratio and ~1e9 write endurance.
func DefaultParams() DeviceParams {
	return DeviceParams{
		GMin:          1e-6, // 1 uS  (1 Mohm off state)
		GMax:          1e-3, // 1 mS  (1 kohm on state)
		Levels:        4,
		ReadNoise:     0.02,
		Endurance:     1_000_000_000,
		DriftPerWrite: 1e-12,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p DeviceParams) Validate() error {
	switch {
	case p.GMin <= 0 || p.GMax <= 0:
		return fmt.Errorf("memristor: conductances must be positive (GMin=%g GMax=%g)", p.GMin, p.GMax)
	case p.GMax <= p.GMin:
		return fmt.Errorf("memristor: GMax (%g) must exceed GMin (%g)", p.GMax, p.GMin)
	case p.Levels < 2:
		return fmt.Errorf("memristor: need at least 2 levels, got %d", p.Levels)
	case p.ReadNoise < 0:
		return fmt.Errorf("memristor: ReadNoise must be non-negative, got %g", p.ReadNoise)
	}
	return nil
}

// Device is one memristive cell. Device is not safe for concurrent use; the
// crossbar layers serialize access.
type Device struct {
	params DeviceParams
	level  int   // current programmed level in [0, Levels)
	writes int64 // lifetime write count
}

// NewDevice returns a device initialized to its lowest conductance state.
func NewDevice(p DeviceParams) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Device{params: p}, nil
}

// Params returns the device technology parameters.
func (d *Device) Params() DeviceParams { return d.params }

// Writes returns the lifetime write count, the raw input to aging models.
func (d *Device) Writes() int64 { return d.writes }

// Level returns the currently programmed level.
func (d *Device) Level() int { return d.level }

// effectiveGMax returns the aged maximum conductance: past the endurance
// limit the high-conductance state drifts downward, shrinking the dynamic
// range — the graceful-aging phenomenon Section V.D wants detected.
func (d *Device) effectiveGMax() float64 {
	over := d.writes - d.params.Endurance
	if over <= 0 {
		return d.params.GMax
	}
	g := d.params.GMax * math.Pow(1-d.params.DriftPerWrite, float64(over))
	if g < d.params.GMin {
		return d.params.GMin
	}
	return g
}

// Health returns the remaining fraction of the device's dynamic range in
// (0, 1]; 1 means unaged.
func (d *Device) Health() float64 {
	full := d.params.GMax - d.params.GMin
	cur := d.effectiveGMax() - d.params.GMin
	if full <= 0 {
		return 0
	}
	return cur / full
}

// Program sets the device to the given level and returns the write cost.
// Programming is the slow, energetic direction of the paper's "asymmetric
// latency for writing memristor based devices" (Section VI).
func (d *Device) Program(level int) (energy.Cost, error) {
	if level < 0 || level >= d.params.Levels {
		return energy.Zero, fmt.Errorf("memristor: level %d outside [0,%d)", level, d.params.Levels)
	}
	d.level = level
	d.writes++
	return energy.Cost{
		LatencyPS: energy.CrossbarWriteLatencyPS,
		EnergyPJ:  energy.CrossbarWriteEnergyPJ,
	}, nil
}

// ProgramWeight programs the nearest level for a weight in [0, 1], returning
// the quantized weight actually stored and the write cost.
func (d *Device) ProgramWeight(w float64) (float64, energy.Cost, error) {
	if w < 0 || w > 1 || math.IsNaN(w) {
		return 0, energy.Zero, fmt.Errorf("memristor: weight %g outside [0,1]", w)
	}
	level := int(math.Round(w * float64(d.params.Levels-1)))
	cost, err := d.Program(level)
	if err != nil {
		return 0, energy.Zero, err
	}
	return d.StoredWeight(), cost, nil
}

// StoredWeight returns the ideal (noise-free) weight represented by the
// current level, accounting for aging compression of the top level.
func (d *Device) StoredWeight() float64 {
	ideal := float64(d.level) / float64(d.params.Levels-1)
	// Aging compresses the achievable range proportionally.
	return ideal * d.Health()
}

// Conductance returns the ideal conductance for the current level.
func (d *Device) Conductance() float64 {
	span := d.effectiveGMax() - d.params.GMin
	return d.params.GMin + span*float64(d.level)/float64(d.params.Levels-1)
}

// Read returns the observed conductance with multiplicative Gaussian read
// noise drawn from rng, plus the (tiny) read cost of sensing one cell.
func (d *Device) Read(rng *rand.Rand) (float64, energy.Cost) {
	g := d.Conductance()
	if d.params.ReadNoise > 0 && rng != nil {
		g *= 1 + rng.NormFloat64()*d.params.ReadNoise
		if g < 0 {
			g = 0
		}
	}
	return g, energy.Cost{LatencyPS: energy.CrossbarReadLatencyPS, EnergyPJ: energy.CrossbarCellReadEnergyPJ}
}
