package memristor

import (
	"fmt"

	"cimrev/internal/energy"
)

// BitwiseEngine models the dual-mode ReRAM macro of Chen et al. [18]: a
// memory array that can either serve ordinary reads/writes or compute bulk
// bitwise AND, OR, and XOR across whole rows inside the array ("sub-14ns
// computing-in-memory"), without moving the operands to a processor.
//
// Rows are fixed-width bit vectors packed into uint64 words. In-array
// operations read two rows and write the result row with every bitline
// working in parallel, so an operation costs one array cycle regardless of
// row width, with energy proportional to the bits involved.
type BitwiseEngine struct {
	rows   [][]uint64
	words  int
	ledger *energy.Ledger
}

// Per-operation costs for the in-array compute mode. All bitlines operate
// in parallel, so one operation over a full row costs a single 14 ns array
// cycle (the macro's headline latency) regardless of width; energy scales
// with the bits involved.
const (
	bitwiseCycleLatencyPS  = 14_000 // 14 ns per whole-row operation
	bitwiseEnergyPJPerWord = 0.5
)

// NewBitwiseEngine returns an engine with rows×(64·words) bits, zeroed.
func NewBitwiseEngine(rows, words int, ledger *energy.Ledger) (*BitwiseEngine, error) {
	if rows <= 0 || words <= 0 {
		return nil, fmt.Errorf("memristor: bitwise engine needs positive dims, got %dx%d", rows, words)
	}
	r := make([][]uint64, rows)
	backing := make([]uint64, rows*words)
	for i := range r {
		r[i], backing = backing[:words:words], backing[words:]
	}
	return &BitwiseEngine{rows: r, words: words, ledger: ledger}, nil
}

// Rows returns the number of rows.
func (e *BitwiseEngine) Rows() int { return len(e.rows) }

// Words returns the row width in 64-bit words.
func (e *BitwiseEngine) Words() int { return e.words }

func (e *BitwiseEngine) checkRow(idx ...int) error {
	for _, i := range idx {
		if i < 0 || i >= len(e.rows) {
			return fmt.Errorf("memristor: row %d outside [0,%d)", i, len(e.rows))
		}
	}
	return nil
}

func (e *BitwiseEngine) charge(category string, wordsTouched int64) {
	if e.ledger != nil {
		e.ledger.Charge(category, energy.Cost{
			LatencyPS: bitwiseCycleLatencyPS,
			EnergyPJ:  bitwiseEnergyPJPerWord * float64(wordsTouched),
		})
	}
}

// Store writes data into row i (memory mode). Extra words are ignored;
// missing words zero-fill.
func (e *BitwiseEngine) Store(i int, data []uint64) error {
	if err := e.checkRow(i); err != nil {
		return err
	}
	row := e.rows[i]
	for w := range row {
		if w < len(data) {
			row[w] = data[w]
		} else {
			row[w] = 0
		}
	}
	e.charge("bitwise-store", int64(e.words))
	return nil
}

// Load reads row i (memory mode) into a fresh slice.
func (e *BitwiseEngine) Load(i int) ([]uint64, error) {
	if err := e.checkRow(i); err != nil {
		return nil, err
	}
	out := make([]uint64, e.words)
	copy(out, e.rows[i])
	e.charge("bitwise-load", int64(e.words))
	return out, nil
}

// And computes dst ← a ∧ b in a single in-array pass.
func (e *BitwiseEngine) And(a, b, dst int) error {
	return e.compute(a, b, dst, func(x, y uint64) uint64 { return x & y })
}

// Or computes dst ← a ∨ b in a single in-array pass.
func (e *BitwiseEngine) Or(a, b, dst int) error {
	return e.compute(a, b, dst, func(x, y uint64) uint64 { return x | y })
}

// Xor computes dst ← a ⊕ b in a single in-array pass.
func (e *BitwiseEngine) Xor(a, b, dst int) error {
	return e.compute(a, b, dst, func(x, y uint64) uint64 { return x ^ y })
}

func (e *BitwiseEngine) compute(a, b, dst int, op func(x, y uint64) uint64) error {
	if err := e.checkRow(a, b, dst); err != nil {
		return err
	}
	ra, rb, rd := e.rows[a], e.rows[b], e.rows[dst]
	for w := range rd {
		rd[w] = op(ra[w], rb[w])
	}
	e.charge("bitwise-compute", int64(e.words))
	return nil
}

// PopCount returns the number of set bits in row i, modeling an in-array
// population count (used by search/associative workloads).
func (e *BitwiseEngine) PopCount(i int) (int, error) {
	if err := e.checkRow(i); err != nil {
		return 0, err
	}
	var n int
	for _, w := range e.rows[i] {
		n += popcount64(w)
	}
	e.charge("bitwise-popcount", int64(e.words))
	return n, nil
}

func popcount64(x uint64) int {
	var n int
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
