package memristor

import (
	"fmt"

	"cimrev/internal/energy"
)

// Stateful logic after Borghetti et al. [20]: "'Memristive' switches enable
// 'stateful' logic operations via material implication". A binary memristive
// switch is closed (logic 1, low resistance) or open (logic 0). Two
// operations are physically native:
//
//	FALSE q        — unconditionally open the switch (q ← 0)
//	p IMP q        — material implication: q ← (¬p) ∨ q
//
// {IMP, FALSE} is functionally complete; LogicFabric builds NOT, NAND, AND,
// OR, XOR, and ripple-carry addition from it, charging one pulse per
// primitive so that higher-level gates carry honest costs.

// Bit is a stateful binary memristive switch.
type Bit struct {
	closed bool
	pulses int64
}

// Value reports the switch state as a bool.
func (b *Bit) Value() bool { return b.closed }

// Pulses returns how many switching pulses the bit has received (wear).
func (b *Bit) Pulses() int64 { return b.pulses }

// LogicFabric is a pool of stateful bits with a cost ledger. It represents
// one row of a stateful-logic crossbar: all bits share driver circuitry, so
// primitive operations are serialized.
type LogicFabric struct {
	bits   []Bit
	ledger *energy.Ledger
}

// NewLogicFabric returns a fabric with n bits, all initialized open (0),
// charging costs to ledger (which may be nil to disable accounting).
func NewLogicFabric(n int, ledger *energy.Ledger) (*LogicFabric, error) {
	if n <= 0 {
		return nil, fmt.Errorf("memristor: fabric size must be positive, got %d", n)
	}
	return &LogicFabric{bits: make([]Bit, n), ledger: ledger}, nil
}

// Size returns the number of bits in the fabric.
func (f *LogicFabric) Size() int { return len(f.bits) }

func (f *LogicFabric) charge() {
	if f.ledger != nil {
		f.ledger.Charge("stateful-logic", LogicPulseCost)
	}
}

func (f *LogicFabric) check(idx ...int) error {
	for _, i := range idx {
		if i < 0 || i >= len(f.bits) {
			return fmt.Errorf("memristor: bit index %d outside [0,%d)", i, len(f.bits))
		}
	}
	return nil
}

// Set forces bit i to v. Physically this is FALSE (and a SET pulse for 1);
// either way one pulse.
func (f *LogicFabric) Set(i int, v bool) error {
	if err := f.check(i); err != nil {
		return err
	}
	f.bits[i].closed = v
	f.bits[i].pulses++
	f.charge()
	return nil
}

// Get reads bit i.
func (f *LogicFabric) Get(i int) (bool, error) {
	if err := f.check(i); err != nil {
		return false, err
	}
	return f.bits[i].closed, nil
}

// False opens bit q (q ← 0): one of the two native primitives.
func (f *LogicFabric) False(q int) error {
	if err := f.check(q); err != nil {
		return err
	}
	f.bits[q].closed = false
	f.bits[q].pulses++
	f.charge()
	return nil
}

// Imp performs material implication q ← (¬p) ∨ q, the second native
// primitive. p is unchanged.
func (f *LogicFabric) Imp(p, q int) error {
	if err := f.check(p, q); err != nil {
		return err
	}
	f.bits[q].closed = !f.bits[p].closed || f.bits[q].closed
	f.bits[q].pulses++
	f.charge()
	return nil
}

// Not computes out ← ¬p using {FALSE, IMP}: FALSE out; p IMP out.
func (f *LogicFabric) Not(p, out int) error {
	if err := f.False(out); err != nil {
		return err
	}
	return f.Imp(p, out)
}

// Nand computes out ← ¬(p ∧ q) via the canonical three-pulse sequence:
// FALSE out; p IMP out (out=¬p); q IMP out (out=¬q ∨ ¬p).
func (f *LogicFabric) Nand(p, q, out int) error {
	if err := f.False(out); err != nil {
		return err
	}
	if err := f.Imp(p, out); err != nil {
		return err
	}
	return f.Imp(q, out)
}

// And computes out ← p ∧ q using a scratch bit: NAND into scratch, then NOT.
func (f *LogicFabric) And(p, q, scratch, out int) error {
	if err := f.Nand(p, q, scratch); err != nil {
		return err
	}
	return f.Not(scratch, out)
}

// Copy copies bit src into bit dst: physically a read followed by a single
// conditional write pulse.
func (f *LogicFabric) Copy(src, dst int) error {
	if err := f.check(src, dst); err != nil {
		return err
	}
	f.bits[dst].closed = f.bits[src].closed
	f.bits[dst].pulses++
	f.charge()
	return nil
}

// Or computes out ← p ∨ q using the identity p ∨ q = (¬p) IMP q: scratch
// holds ¬p, out holds a copy of q, then IMP(scratch, out) yields
// ¬(¬p) ∨ q = p ∨ q.
func (f *LogicFabric) Or(p, q, scratch, out int) error {
	if err := f.Not(p, scratch); err != nil {
		return err
	}
	if err := f.Copy(q, out); err != nil {
		return err
	}
	return f.Imp(scratch, out)
}

// Xor computes out ← p ⊕ q from four NANDs:
// xor = (p NAND (p NAND q)) NAND (q NAND (p NAND q)).
// The final NAND lands in s1 (its operand cells must stay intact) and is
// copied to out.
func (f *LogicFabric) Xor(p, q, s1, s2, out int) error {
	if err := f.Nand(p, q, s1); err != nil { // s1 = ¬(pq)
		return err
	}
	if err := f.Nand(p, s1, s2); err != nil { // s2 = ¬(p·s1)
		return err
	}
	if err := f.Nand(q, s1, out); err != nil { // out = ¬(q·s1)
		return err
	}
	if err := f.Nand(s2, out, s1); err != nil { // s1 = s2 NAND out = p⊕q
		return err
	}
	return f.Copy(s1, out)
}

// FullAdder computes sum and carry-out of bits a, b, cin using the scratch
// bits s1..s4. It returns the values for convenience.
func (f *LogicFabric) FullAdder(a, b, cin, s1, s2, s3, s4, sum, cout int) (bool, bool, error) {
	// sum = a ⊕ b ⊕ cin
	if err := f.Xor(a, b, s1, s2, s3); err != nil { // s3 = a⊕b
		return false, false, err
	}
	if err := f.Xor(s3, cin, s1, s2, sum); err != nil {
		return false, false, err
	}
	// cout = (a ∧ b) ∨ (cin ∧ (a ⊕ b))
	if err := f.And(a, b, s1, s2); err != nil { // s2 = ab
		return false, false, err
	}
	if err := f.And(cin, s3, s1, s4); err != nil { // s4 = cin·(a⊕b)
		return false, false, err
	}
	if err := f.Or(s2, s4, s1, cout); err != nil {
		return false, false, err
	}
	sv, _ := f.Get(sum)
	cv, _ := f.Get(cout)
	return sv, cv, nil
}

// AddWords ripple-carry adds two n-bit words (LSB first) held in fabric
// positions a[i], b[i], writing the n-bit sum into out[i] and returning the
// final carry. The fabric must have 9 scratch bits available at positions
// scratchBase..scratchBase+8.
func (f *LogicFabric) AddWords(a, b, out []int, scratchBase int) (bool, error) {
	if len(a) != len(b) || len(a) != len(out) {
		return false, fmt.Errorf("memristor: AddWords length mismatch a=%d b=%d out=%d", len(a), len(b), len(out))
	}
	s := scratchBase
	if err := f.check(s, s+8); err != nil {
		return false, err
	}
	cin := s + 8 // carry lives in a scratch bit
	if err := f.Set(cin, false); err != nil {
		return false, err
	}
	carry := false
	for i := range a {
		var err error
		_, carry, err = f.FullAdder(a[i], b[i], cin, s, s+1, s+2, s+3, out[i], s+4)
		if err != nil {
			return false, err
		}
		// Move carry-out into cin for the next bit.
		if err := f.Copy(s+4, cin); err != nil {
			return false, err
		}
	}
	return carry, nil
}
