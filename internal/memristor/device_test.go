package memristor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cimrev/internal/energy"
)

func mustDevice(t *testing.T, p DeviceParams) *Device {
	t.Helper()
	d, err := NewDevice(p)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func TestDeviceParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*DeviceParams)
		wantErr bool
	}{
		{"default ok", func(p *DeviceParams) {}, false},
		{"negative gmin", func(p *DeviceParams) { p.GMin = -1 }, true},
		{"zero gmax", func(p *DeviceParams) { p.GMax = 0 }, true},
		{"gmax below gmin", func(p *DeviceParams) { p.GMax = p.GMin / 2 }, true},
		{"one level", func(p *DeviceParams) { p.Levels = 1 }, true},
		{"negative noise", func(p *DeviceParams) { p.ReadNoise = -0.1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			err := p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDeviceProgramAndConductance(t *testing.T) {
	p := DefaultParams()
	d := mustDevice(t, p)

	if _, err := d.Program(0); err != nil {
		t.Fatalf("Program(0): %v", err)
	}
	if got := d.Conductance(); math.Abs(got-p.GMin) > 1e-12 {
		t.Errorf("level 0 conductance = %g, want GMin %g", got, p.GMin)
	}

	if _, err := d.Program(p.Levels - 1); err != nil {
		t.Fatalf("Program(max): %v", err)
	}
	if got := d.Conductance(); math.Abs(got-p.GMax) > 1e-12 {
		t.Errorf("top level conductance = %g, want GMax %g", got, p.GMax)
	}
}

func TestDeviceProgramOutOfRange(t *testing.T) {
	d := mustDevice(t, DefaultParams())
	if _, err := d.Program(-1); err == nil {
		t.Error("Program(-1) should fail")
	}
	if _, err := d.Program(d.Params().Levels); err == nil {
		t.Error("Program(Levels) should fail")
	}
}

func TestDeviceWriteCostAsymmetry(t *testing.T) {
	d := mustDevice(t, DefaultParams())
	wcost, err := d.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	_, rcost := d.Read(nil)
	if wcost.LatencyPS <= 100*rcost.LatencyPS {
		t.Errorf("write latency %d should dwarf read latency %d (Section VI write asymmetry)",
			wcost.LatencyPS, rcost.LatencyPS)
	}
}

func TestDeviceProgramWeightQuantization(t *testing.T) {
	p := DefaultParams()
	p.Levels = 4 // weights quantize to {0, 1/3, 2/3, 1}
	d := mustDevice(t, p)

	stored, _, err := d.ProgramWeight(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stored-1.0/3.0) > 1e-9 {
		t.Errorf("0.4 quantized to %g, want 1/3", stored)
	}

	stored, _, err = d.ProgramWeight(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stored-1.0) > 1e-9 {
		t.Errorf("0.9 quantized to %g, want 1.0", stored)
	}
}

func TestDeviceProgramWeightRejectsInvalid(t *testing.T) {
	d := mustDevice(t, DefaultParams())
	for _, w := range []float64{-0.1, 1.1, math.NaN()} {
		if _, _, err := d.ProgramWeight(w); err == nil {
			t.Errorf("ProgramWeight(%g) should fail", w)
		}
	}
}

func TestDeviceReadNoiseDeterministic(t *testing.T) {
	p := DefaultParams()
	p.ReadNoise = 0.05
	d := mustDevice(t, p)
	if _, err := d.Program(p.Levels - 1); err != nil {
		t.Fatal(err)
	}
	g1, _ := d.Read(rand.New(rand.NewSource(42)))
	g2, _ := d.Read(rand.New(rand.NewSource(42)))
	if g1 != g2 {
		t.Errorf("same seed gave different reads: %g vs %g", g1, g2)
	}
	g3, _ := d.Read(rand.New(rand.NewSource(43)))
	if g1 == g3 {
		t.Error("different seeds gave identical noisy reads (suspicious)")
	}
}

func TestDeviceReadNoiseZeroMatchesIdeal(t *testing.T) {
	p := DefaultParams()
	p.ReadNoise = 0
	d := mustDevice(t, p)
	if _, err := d.Program(2); err != nil {
		t.Fatal(err)
	}
	g, _ := d.Read(rand.New(rand.NewSource(1)))
	if g != d.Conductance() {
		t.Errorf("noise-free read %g != ideal %g", g, d.Conductance())
	}
}

func TestDeviceAging(t *testing.T) {
	p := DefaultParams()
	p.Endurance = 10
	p.DriftPerWrite = 0.01
	d := mustDevice(t, p)

	for i := 0; i < 10; i++ {
		if _, err := d.Program(p.Levels - 1); err != nil {
			t.Fatal(err)
		}
	}
	if h := d.Health(); h != 1.0 {
		t.Errorf("health before endurance limit = %g, want 1.0", h)
	}
	for i := 0; i < 100; i++ {
		if _, err := d.Program(p.Levels - 1); err != nil {
			t.Fatal(err)
		}
	}
	h := d.Health()
	if h >= 1.0 || h <= 0 {
		t.Errorf("health after heavy wear = %g, want in (0,1)", h)
	}
	// Aged top-level conductance must have fallen below fresh GMax.
	if g := d.Conductance(); g >= p.GMax {
		t.Errorf("aged conductance %g should be below GMax %g", g, p.GMax)
	}
}

// TestDeviceEnduranceGMaxDecayFormula pins the aging model exactly: once
// writes exceed Endurance, the top-level conductance follows
// GMax*(1-DriftPerWrite)^over, so Health and StoredWeight compress by the
// same analytic factor. A silent change to the decay law would skew every
// fault-sweep accuracy number downstream.
func TestDeviceEnduranceGMaxDecayFormula(t *testing.T) {
	p := DefaultParams()
	p.Endurance = 5
	p.DriftPerWrite = 0.02
	d := mustDevice(t, p)

	const total = 25 // 20 writes past the endurance limit
	for i := 0; i < total; i++ {
		if _, err := d.Program(p.Levels - 1); err != nil {
			t.Fatal(err)
		}
	}
	over := float64(total) - float64(p.Endurance)
	wantGMax := p.GMax * math.Pow(1-p.DriftPerWrite, over)
	if g := d.Conductance(); math.Abs(g-wantGMax) > 1e-12*p.GMax {
		t.Errorf("aged top-level conductance = %g, want %g", g, wantGMax)
	}
	wantHealth := (wantGMax - p.GMin) / (p.GMax - p.GMin)
	if h := d.Health(); math.Abs(h-wantHealth) > 1e-12 {
		t.Errorf("Health = %g, want %g", h, wantHealth)
	}
	// StoredWeight of the top level compresses by exactly Health.
	if sw := d.StoredWeight(); math.Abs(sw-wantHealth) > 1e-12 {
		t.Errorf("StoredWeight = %g, want %g", sw, wantHealth)
	}
}

// TestDeviceExtremeWearFloorsAtGMin drives a device far past its endurance
// limit: the aged GMax floors at GMin (conductance can shrink, never go
// negative or invert), so Health bottoms out at 0 and every stored weight
// collapses to 0 — graceful degradation, not wraparound.
func TestDeviceExtremeWearFloorsAtGMin(t *testing.T) {
	p := DefaultParams()
	p.Endurance = 1
	p.DriftPerWrite = 0.5 // range halves every write past the limit
	d := mustDevice(t, p)

	for i := 0; i < 200; i++ {
		if _, err := d.Program(p.Levels - 1); err != nil {
			t.Fatal(err)
		}
	}
	if g := d.Conductance(); g != p.GMin {
		t.Errorf("worn-out top-level conductance = %g, want GMin %g", g, p.GMin)
	}
	if h := d.Health(); h != 0 {
		t.Errorf("worn-out Health = %g, want 0", h)
	}
	if sw := d.StoredWeight(); sw != 0 {
		t.Errorf("worn-out StoredWeight = %g, want 0", sw)
	}
	// Reads on a dead device stay at the floor too: no negative conductance.
	g, _ := d.Read(nil)
	if g < 0 || g != p.GMin {
		t.Errorf("worn-out noise-free read = %g, want GMin %g", g, p.GMin)
	}
}

// TestDeviceAgingBelowEnduranceIsFree pins the other side of the limit:
// any number of writes at or under Endurance leaves the full dynamic range
// intact, bit for bit.
func TestDeviceAgingBelowEnduranceIsFree(t *testing.T) {
	p := DefaultParams()
	p.Endurance = 50
	p.DriftPerWrite = 0.1
	d := mustDevice(t, p)
	for i := 0; i < 50; i++ {
		if _, err := d.Program(p.Levels - 1); err != nil {
			t.Fatal(err)
		}
	}
	if g := d.Conductance(); g != p.GMax {
		t.Errorf("conductance at the endurance boundary = %g, want GMax %g", g, p.GMax)
	}
	if h := d.Health(); h != 1 {
		t.Errorf("Health at the endurance boundary = %g, want 1", h)
	}
}

func TestDeviceHealthMonotoneInWrites(t *testing.T) {
	p := DefaultParams()
	p.Endurance = 0
	p.DriftPerWrite = 0.001
	d := mustDevice(t, p)
	prev := d.Health()
	for i := 0; i < 50; i++ {
		if _, err := d.Program(1); err != nil {
			t.Fatal(err)
		}
		h := d.Health()
		if h > prev {
			t.Fatalf("health increased after a write: %g -> %g", prev, h)
		}
		prev = h
	}
}

// Property: stored weight is always within [0,1] and quantization error is
// at most half a level for a fresh device.
func TestStoredWeightProperty(t *testing.T) {
	p := DefaultParams()
	f := func(w float64) bool {
		w = math.Abs(math.Mod(w, 1.0)) // fold into [0,1)
		d, err := NewDevice(p)
		if err != nil {
			return false
		}
		stored, _, err := d.ProgramWeight(w)
		if err != nil {
			return false
		}
		if stored < 0 || stored > 1 {
			return false
		}
		halfLevel := 0.5 / float64(p.Levels-1)
		return math.Abs(stored-w) <= halfLevel+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogicFabricPrimitives(t *testing.T) {
	led := energy.NewLedger()
	f, err := NewLogicFabric(8, led)
	if err != nil {
		t.Fatal(err)
	}

	// IMP truth table: q' = ¬p ∨ q.
	cases := []struct{ p, q, want bool }{
		{false, false, true},
		{false, true, true},
		{true, false, false},
		{true, true, true},
	}
	for _, c := range cases {
		if err := f.Set(0, c.p); err != nil {
			t.Fatal(err)
		}
		if err := f.Set(1, c.q); err != nil {
			t.Fatal(err)
		}
		if err := f.Imp(0, 1); err != nil {
			t.Fatal(err)
		}
		got, _ := f.Get(1)
		if got != c.want {
			t.Errorf("IMP(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}

	if err := f.Set(2, true); err != nil {
		t.Fatal(err)
	}
	if err := f.False(2); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.Get(2); got {
		t.Error("FALSE left bit set")
	}

	if led.Total().EnergyPJ == 0 {
		t.Error("logic pulses charged no energy")
	}
}

func TestLogicFabricGates(t *testing.T) {
	f, err := NewLogicFabric(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	bools := []bool{false, true}
	for _, p := range bools {
		for _, q := range bools {
			set := func(i int, v bool) {
				if err := f.Set(i, v); err != nil {
					t.Fatal(err)
				}
			}
			set(0, p)
			set(1, q)

			if err := f.Nand(0, 1, 2); err != nil {
				t.Fatal(err)
			}
			if got, _ := f.Get(2); got != !(p && q) {
				t.Errorf("NAND(%v,%v) = %v", p, q, got)
			}

			if err := f.And(0, 1, 3, 4); err != nil {
				t.Fatal(err)
			}
			if got, _ := f.Get(4); got != (p && q) {
				t.Errorf("AND(%v,%v) = %v", p, q, got)
			}

			if err := f.Or(0, 1, 5, 6); err != nil {
				t.Fatal(err)
			}
			if got, _ := f.Get(6); got != (p || q) {
				t.Errorf("OR(%v,%v) = %v", p, q, got)
			}

			if err := f.Xor(0, 1, 7, 8, 9); err != nil {
				t.Fatal(err)
			}
			if got, _ := f.Get(9); got != (p != q) {
				t.Errorf("XOR(%v,%v) = %v", p, q, got)
			}

			if err := f.Not(0, 10); err != nil {
				t.Fatal(err)
			}
			if got, _ := f.Get(10); got != !p {
				t.Errorf("NOT(%v) = %v", p, got)
			}
		}
	}
}

func TestLogicFabricFullAdder(t *testing.T) {
	f, err := NewLogicFabric(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	bools := []bool{false, true}
	for _, a := range bools {
		for _, b := range bools {
			for _, cin := range bools {
				if err := f.Set(0, a); err != nil {
					t.Fatal(err)
				}
				if err := f.Set(1, b); err != nil {
					t.Fatal(err)
				}
				if err := f.Set(2, cin); err != nil {
					t.Fatal(err)
				}
				sum, cout, err := f.FullAdder(0, 1, 2, 3, 4, 5, 6, 7, 8)
				if err != nil {
					t.Fatal(err)
				}
				n := b2i(a) + b2i(b) + b2i(cin)
				if sum != (n%2 == 1) {
					t.Errorf("FullAdder(%v,%v,%v) sum = %v, want %v", a, b, cin, sum, n%2 == 1)
				}
				if cout != (n >= 2) {
					t.Errorf("FullAdder(%v,%v,%v) cout = %v, want %v", a, b, cin, cout, n >= 2)
				}
			}
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Property: in-fabric ripple-carry addition matches integer addition for
// 8-bit words.
func TestLogicFabricAddWordsProperty(t *testing.T) {
	add := func(x, y uint8) bool {
		f, err := NewLogicFabric(64, nil)
		if err != nil {
			return false
		}
		a := make([]int, 8)
		b := make([]int, 8)
		out := make([]int, 8)
		for i := 0; i < 8; i++ {
			a[i], b[i], out[i] = i, 8+i, 16+i
			if err := f.Set(a[i], x&(1<<i) != 0); err != nil {
				return false
			}
			if err := f.Set(b[i], y&(1<<i) != 0); err != nil {
				return false
			}
		}
		carry, err := f.AddWords(a, b, out, 24)
		if err != nil {
			return false
		}
		var got uint16
		for i := 0; i < 8; i++ {
			if v, _ := f.Get(out[i]); v {
				got |= 1 << i
			}
		}
		if carry {
			got |= 1 << 8
		}
		return got == uint16(x)+uint16(y)
	}
	if err := quick.Check(add, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLogicFabricBoundsChecks(t *testing.T) {
	f, err := NewLogicFabric(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Imp(0, 9); err == nil {
		t.Error("Imp out of range should fail")
	}
	if err := f.Set(-1, true); err == nil {
		t.Error("Set(-1) should fail")
	}
	if _, err := f.Get(4); err == nil {
		t.Error("Get(4) should fail")
	}
	if _, err := NewLogicFabric(0, nil); err == nil {
		t.Error("NewLogicFabric(0) should fail")
	}
}

func TestLogicFabricWearTracking(t *testing.T) {
	f, err := NewLogicFabric(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := f.Set(1, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.bits[1].Pulses(); got != 5 {
		t.Errorf("bit 1 pulses = %d, want 5", got)
	}
	if got := f.bits[0].Pulses(); got != 0 {
		t.Errorf("untouched bit pulses = %d, want 0", got)
	}
}
