// Open-loop arrival generation, now owned by internal/workloadgen. The
// Poisson process that used to live here (the first open-loop generator
// in the tree) was promoted to workloadgen.Poisson alongside the bursty
// MMPP, diurnal, and trace-replay processes; this file keeps the chaos
// names alive as thin aliases so existing callers and experiment seeds
// keep producing bit-identical arrival trains. New code should use
// workloadgen directly (docs/CAPACITY.md).
package chaos

import "cimrev/internal/workloadgen"

// Arrivals is a deterministic open-loop Poisson arrival process.
//
// Deprecated: Arrivals is workloadgen.Poisson; use that type (and the
// other workloadgen processes) in new code.
type Arrivals = workloadgen.Poisson

// NewArrivals returns a Poisson arrival process averaging rps arrivals
// per second, keyed by seed. rps must be > 0. The gap sequence is
// bit-identical to the historical chaos implementation for the same
// (seed, rps) — the deprecation-path test pins it.
//
// Deprecated: use workloadgen.NewPoisson, which also validates the rate.
func NewArrivals(seed int64, rps float64) Arrivals {
	p, err := workloadgen.NewPoisson(seed, rps)
	if err != nil {
		// The historical constructor had no error path; its documented
		// contract (rps > 0) makes a bad rate a programming error.
		panic("chaos: " + err.Error())
	}
	return p
}
