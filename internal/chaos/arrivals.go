// Open-loop arrival generation. A closed-loop load generator (cimserve's
// client goroutines, experiments.FleetSweep) cannot overload anything: a
// slow server slows its own clients down, so the offered rate sags exactly
// when the system is in trouble — coordinated omission by construction.
// Real traffic does not wait. Arrivals models it as a Poisson process with
// deterministic draws: gap i is a pure function of (seed, i), so an
// overload experiment replays the same arrival train every run.
package chaos

import (
	"math"
	"time"

	"cimrev/internal/noise"
)

// Arrivals is a deterministic open-loop Poisson arrival process. The zero
// value is invalid; construct with NewArrivals.
type Arrivals struct {
	src    noise.Source
	meanNS float64
}

// NewArrivals returns a Poisson arrival process averaging rps arrivals per
// second, keyed by seed. rps must be > 0.
func NewArrivals(seed int64, rps float64) Arrivals {
	return Arrivals{src: noise.NewSource(seed), meanNS: 1e9 / rps}
}

// Gap returns the inter-arrival gap preceding arrival i: an exponential
// draw with the process's mean, from the counter stream for i. Gaps are
// independent across i and identical across runs.
func (a Arrivals) Gap(i uint64) time.Duration {
	// Float64 is uniform in (0,1), never 0, so the log is finite.
	u := a.src.Float64(i)
	return time.Duration(-a.meanNS * math.Log(u))
}
