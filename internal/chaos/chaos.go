// Package chaos is the deterministic fault-injection layer for the serving
// fleet: it perturbs engines with the failure modes that dominate tail
// latency in production — stragglers, latency spikes, stalls, crashes, and
// reprogram hangs — without giving up the repo's reproducibility contract.
// Every injected event is a pure function of (plan seed, engine id, batch
// step), drawn from the same counter-based splitmix64 stream as the analog
// read noise (internal/noise), so a chaos run replays bit-identically:
// the same batches slow down, the same steps crash, every time.
//
// The injector attaches to a fleet engine as a backend wrapper
// (fleet.WithChaos → Injector.Wrap), outermost in the stack:
//
//	serve.Server → [chaos] → [hybrid] → serve.Breaker → serve.ShadowPair
//
// Disabled chaos is free: Wrap returns the wrapped backend itself — no
// extra interface hop, no per-call branch, zero allocations — so the
// serving hot path is untouched unless a scenario is active
// (TestWrapDisabledIsIdentity pins this).
//
// A crashed engine fails its batches with an error wrapping
// serve.ErrUnhealthy: the micro-batcher sheds the whole batch typed, the
// fleet fails the requests over to healthy engines, and — because every
// fleet request is keyed — the retried outputs are bit-identical to what
// the crashed engine would have produced. That is the mechanism behind the
// harness's zero-lost-keyed-requests SLO (docs/RESILIENCE.md).
//
// Arrivals (arrivals.go) is the matching open-loop load side: a
// deterministic Poisson arrival process, so overload is reachable (a
// closed-loop generator self-throttles and can never push the fleet past
// saturation).
package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cimrev/internal/energy"
	"cimrev/internal/noise"
	"cimrev/internal/obs"
	"cimrev/internal/serve"
)

// Plan is one chaos scenario: which engines misbehave, how, and when.
// Engine indices refer to fleet engine IDs; -1 disables that fault. Steps
// are engine-local batch counters (the wrapper counts every batch the
// engine's dispatcher flushes through it), so a plan is independent of
// wall-clock speed and request interleaving.
type Plan struct {
	// Name labels the scenario ("straggler", "crash", ...) for /healthz
	// and bench output.
	Name string
	// Seed keys the spike draws; derive per-run plans by varying it.
	Seed int64
	// SlowEngine is delayed by SlowDelay on every batch (-1: none) — the
	// classic straggler.
	SlowEngine int
	SlowDelay  time.Duration
	// SpikeProb injects a SpikeDelay stall on any engine's batch with this
	// probability, drawn deterministically from (Seed, engine, step).
	SpikeProb  float64
	SpikeDelay time.Duration
	// CrashEngine fails every batch with serve.ErrUnhealthy while its
	// step counter is in [CrashStart, CrashEnd) (-1: none), then serves
	// normally again — crash-and-rejoin without losing a keyed request.
	CrashEngine          int
	CrashStart, CrashEnd uint64
	// ReprogramHang stalls each engine's standby reprogram inside a
	// rolling update (fleet.RollingReprogram polls Injector.ReprogramDelay).
	ReprogramHang time.Duration
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return (p.SlowEngine >= 0 && p.SlowDelay > 0) ||
		(p.SpikeProb > 0 && p.SpikeDelay > 0) ||
		p.CrashEngine >= 0 ||
		p.ReprogramHang > 0
}

// ScenarioNames lists the canonical scenario catalog (cimserve -chaos,
// cimbench -exp chaos sweep these).
func ScenarioNames() []string { return []string{"none", "straggler", "crash", "overload"} }

// ScenarioPlan maps a scenario name to its canonical plan:
//
//   - "none": nothing injected (Wrap is an identity; the fault-free
//     baseline every other scenario is judged against).
//   - "straggler": engine 0 serves every batch SlowDelay late — the
//     hedging target. Delays scale with `scale` (1 = 2ms per batch).
//   - "crash": engine 0 goes dark for a window of its batch steps and
//     rejoins, and every reprogram hangs — the crash-during-rolling-
//     reprogram scenario.
//   - "overload": deterministic latency spikes on all engines; the
//     overload itself comes from the open-loop arrival burst (Arrivals).
func ScenarioPlan(name string, seed int64, scale float64) (Plan, error) {
	if scale <= 0 {
		scale = 1
	}
	d := func(base time.Duration) time.Duration { return time.Duration(float64(base) * scale) }
	p := Plan{Name: name, Seed: seed, SlowEngine: -1, CrashEngine: -1}
	switch name {
	case "none", "":
		p.Name = "none"
	case "straggler":
		p.SlowEngine = 0
		p.SlowDelay = d(2 * time.Millisecond)
	case "crash":
		p.CrashEngine = 0
		p.CrashStart = 20
		p.CrashEnd = 150
		p.ReprogramHang = d(time.Millisecond)
	case "overload":
		p.SpikeProb = 0.05
		p.SpikeDelay = d(time.Millisecond)
	default:
		return Plan{}, fmt.Errorf("chaos: unknown scenario %q (want none, straggler, crash, overload)", name)
	}
	return p, nil
}

// Injector executes a Plan against a set of wrapped engine backends. One
// injector serves a whole fleet: Wrap each engine with its fleet ID. The
// zero value and the nil injector are both fully disabled.
type Injector struct {
	plan Plan
	src  noise.Source

	// steps holds one engine-local batch counter per wrapped engine id
	// (engines can join at any id, hence a map, interned once per engine
	// at Wrap time — the hot path only touches the engine's own counter).
	mu    sync.Mutex
	steps map[int]*atomic.Uint64
}

// New builds an injector for plan. A plan that injects nothing returns a
// perfectly inert injector (Wrap is the identity).
func New(plan Plan) *Injector {
	return &Injector{
		plan:  plan,
		src:   noise.NewSource(plan.Seed),
		steps: make(map[int]*atomic.Uint64),
	}
}

// Plan returns the injector's scenario plan.
func (inj *Injector) Plan() Plan {
	if inj == nil {
		return Plan{Name: "none", SlowEngine: -1, CrashEngine: -1}
	}
	return inj.plan
}

// Active reports whether the injector actually injects faults.
func (inj *Injector) Active() bool { return inj != nil && inj.plan.Enabled() }

// ReprogramDelay returns how long engine id's standby reprogram should
// hang under this plan (0 when disabled).
func (inj *Injector) ReprogramDelay(id int) time.Duration {
	if !inj.Active() {
		return 0
	}
	return inj.plan.ReprogramHang
}

// ctxBackend / keyedBackend mirror internal/serve's optional backend
// interfaces: the wrapper must expose whichever the wrapped backend has,
// or serve.New would silently downgrade keyed requests to the unkeyed
// path and break the fleet's bit-identity contract.
type ctxBackend interface {
	InferBatchCtx(pc obs.Ctx, inputs [][]float64) ([][]float64, energy.Cost, error)
}

type keyedBackend interface {
	InferBatchKeyedCtx(pc obs.Ctx, seqs []uint64, inputs [][]float64) ([][]float64, energy.Cost, error)
}

// Wrap returns b perturbed by the injector's plan for engine id. When the
// injector is nil or its plan injects nothing, Wrap returns b itself —
// the disabled hook costs nothing, not even an interface indirection.
// Wrapped backends pass keyed and traced calls straight through, so
// chaos never perturbs *outputs*, only timing and availability.
func (inj *Injector) Wrap(id int, b serve.Backend) serve.Backend {
	if !inj.Active() {
		return b
	}
	inj.mu.Lock()
	step, ok := inj.steps[id]
	if !ok {
		step = &atomic.Uint64{}
		inj.steps[id] = step
	}
	inj.mu.Unlock()
	w := &wrapped{inj: inj, id: id, step: step, b: b, eng: inj.src.Derive(uint64(id))}
	w.cbe, _ = b.(ctxBackend)
	w.kbe, _ = b.(keyedBackend)
	return w
}

// wrapped is one engine's chaos-perturbed backend.
type wrapped struct {
	inj  *Injector
	id   int
	step *atomic.Uint64
	eng  noise.Source // per-engine spike stream
	b    serve.Backend
	cbe  ctxBackend
	kbe  keyedBackend
}

// gate runs the plan for one batch: it advances the engine's step counter,
// sleeps any injected delay, and returns the crash error when the step
// falls inside the engine's dark window. Crashes fail fast (a dead board
// does not also stall) and wrap serve.ErrUnhealthy so the micro-batcher
// sheds the batch typed and the fleet fails over.
func (w *wrapped) gate() error {
	p := &w.inj.plan
	step := w.step.Add(1) - 1
	if w.id == p.CrashEngine && step >= p.CrashStart && step < p.CrashEnd {
		return fmt.Errorf("chaos: engine %d dark at step %d [%d,%d): %w",
			w.id, step, p.CrashStart, p.CrashEnd, serve.ErrUnhealthy)
	}
	var delay time.Duration
	if w.id == p.SlowEngine {
		delay += p.SlowDelay
	}
	if p.SpikeProb > 0 && w.eng.Float64(step) < p.SpikeProb {
		delay += p.SpikeDelay
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

// InferBatch implements serve.Backend.
func (w *wrapped) InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error) {
	if err := w.gate(); err != nil {
		return nil, energy.Zero, err
	}
	return w.b.InferBatch(inputs)
}

// InferBatchCtx implements the traced backend variant.
func (w *wrapped) InferBatchCtx(pc obs.Ctx, inputs [][]float64) ([][]float64, energy.Cost, error) {
	if err := w.gate(); err != nil {
		return nil, energy.Zero, err
	}
	if w.cbe != nil {
		return w.cbe.InferBatchCtx(pc, inputs)
	}
	return w.b.InferBatch(inputs)
}

// InferBatchKeyedCtx implements the keyed backend variant.
func (w *wrapped) InferBatchKeyedCtx(pc obs.Ctx, seqs []uint64, inputs [][]float64) ([][]float64, energy.Cost, error) {
	if err := w.gate(); err != nil {
		return nil, energy.Zero, err
	}
	if w.kbe != nil {
		return w.kbe.InferBatchKeyedCtx(pc, seqs, inputs)
	}
	if w.cbe != nil {
		return w.cbe.InferBatchCtx(pc, inputs)
	}
	return w.b.InferBatch(inputs)
}
