package chaos

import (
	"math"
	"testing"
	"time"

	"cimrev/internal/noise"
	"cimrev/internal/workloadgen"
)

// TestArrivalsDeprecationPath pins the promotion of chaos.Arrivals to
// workloadgen.Poisson: the new implementation must produce the same gap
// sequence, bit for bit, as the historical chaos formula
//
//	gap(i) = -1e9/rps * ln(noise.NewSource(seed).Float64(i))
//
// for the same (seed, rps). Every archived chaos sweep and golden value
// that keyed off the old generator replays unchanged through the alias.
func TestArrivalsDeprecationPath(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		rps  float64
	}{
		{1, 200_000}, // the overload-scenario train in experiments.ChaosSweep
		{3, 10_000},
		{-7, 123.5},
	} {
		oldSrc := noise.NewSource(tc.seed)
		meanNS := 1e9 / tc.rps
		viaAlias := NewArrivals(tc.seed, tc.rps)
		viaNew, err := workloadgen.NewPoisson(tc.seed, tc.rps)
		if err != nil {
			t.Fatalf("NewPoisson(%d, %g): %v", tc.seed, tc.rps, err)
		}
		for i := uint64(0); i < 4096; i++ {
			historical := time.Duration(-meanNS * math.Log(oldSrc.Float64(i)))
			if g := viaAlias.Gap(i); g != historical {
				t.Fatalf("seed %d rps %g: alias gap %d = %v, historical %v", tc.seed, tc.rps, i, g, historical)
			}
			if g := viaNew.Gap(i); g != historical {
				t.Fatalf("seed %d rps %g: workloadgen gap %d = %v, historical %v", tc.seed, tc.rps, i, g, historical)
			}
		}
	}
}

// TestArrivalsAliasIdentity: the deprecated type is the workloadgen type,
// not a second Poisson — a value constructed by either constructor is
// interchangeable with the other.
func TestArrivalsAliasIdentity(t *testing.T) {
	var a Arrivals
	p, err := workloadgen.NewPoisson(9, 500)
	if err != nil {
		t.Fatal(err)
	}
	a = p // compiles only if the types are identical
	if a.Gap(0) != NewArrivals(9, 500).Gap(0) {
		t.Error("alias and constructor disagree")
	}
	if got := a.Name(); got != "poisson" {
		t.Errorf("Name() = %q, want poisson", got)
	}
}

// TestNewArrivalsPanicsOnBadRate: the historical contract (rps must be
// > 0) is now enforced.
func TestNewArrivalsPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewArrivals(1, 0) did not panic")
		}
	}()
	NewArrivals(1, 0)
}
