package chaos

import (
	"errors"
	"math"
	"testing"
	"time"

	"cimrev/internal/energy"
	"cimrev/internal/serve"
)

// fakeBackend counts batches and returns a recognizable echo.
type fakeBackend struct{ calls int }

func (f *fakeBackend) InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error) {
	f.calls++
	return inputs, energy.Zero, nil
}

// TestWrapDisabledIsIdentity pins the zero-overhead contract: an inert
// injector's Wrap returns the backend itself — same pointer, no wrapper
// allocation — so disabled chaos cannot perturb the serving hot path.
func TestWrapDisabledIsIdentity(t *testing.T) {
	be := &fakeBackend{}
	for _, inj := range []*Injector{
		nil,
		New(Plan{SlowEngine: -1, CrashEngine: -1}),
	} {
		if got := inj.Wrap(0, be); got != serve.Backend(be) {
			t.Errorf("inert Wrap returned %T, want the backend itself", got)
		}
	}
	inj := New(Plan{SlowEngine: -1, CrashEngine: -1})
	if allocs := testing.AllocsPerRun(100, func() { inj.Wrap(0, be) }); allocs != 0 {
		t.Errorf("inert Wrap allocates %.0f objects per call, want 0", allocs)
	}
}

// TestCrashWindow: the crash engine fails batches with serve.ErrUnhealthy
// exactly while its step counter is inside [CrashStart, CrashEnd), and
// serves normally before and after — crash-and-rejoin.
func TestCrashWindow(t *testing.T) {
	be := &fakeBackend{}
	inj := New(Plan{Seed: 1, SlowEngine: -1, CrashEngine: 0, CrashStart: 2, CrashEnd: 4})
	w := inj.Wrap(0, be)
	in := [][]float64{{1}}
	for step := 0; step < 6; step++ {
		_, _, err := w.InferBatch(in)
		dark := step >= 2 && step < 4
		if dark && !errors.Is(err, serve.ErrUnhealthy) {
			t.Errorf("step %d: err = %v, want ErrUnhealthy inside the dark window", step, err)
		}
		if !dark && err != nil {
			t.Errorf("step %d: err = %v, want nil outside the dark window", step, err)
		}
	}
	if be.calls != 4 {
		t.Errorf("backend saw %d batches, want 4 (crashed batches must not reach it)", be.calls)
	}

	// A different engine wrapped by the same injector never crashes.
	other := inj.Wrap(1, &fakeBackend{})
	for step := 0; step < 6; step++ {
		if _, _, err := other.InferBatch(in); err != nil {
			t.Fatalf("engine 1 step %d: %v, want nil (crash targets engine 0)", step, err)
		}
	}
}

// TestStragglerSleeps: the slow engine's batches take at least SlowDelay;
// other engines are untouched.
func TestStragglerSleeps(t *testing.T) {
	const delay = 3 * time.Millisecond
	inj := New(Plan{Seed: 1, SlowEngine: 0, SlowDelay: delay, CrashEngine: -1})
	slow := inj.Wrap(0, &fakeBackend{})
	in := [][]float64{{1}}
	start := time.Now()
	if _, _, err := slow.InferBatch(in); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < delay {
		t.Errorf("straggler batch took %v, want >= %v", took, delay)
	}
}

// TestSpikesAreDeterministic: with SpikeProb strictly between 0 and 1, the
// set of spiked steps is a pure function of (seed, engine, step) — two
// injectors with the same plan spike the same steps, and a different seed
// spikes different ones.
func TestSpikesAreDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, SlowEngine: -1, CrashEngine: -1, SpikeProb: 0.3, SpikeDelay: time.Nanosecond}
	spikes := func(p Plan) []bool {
		inj := New(p)
		w := inj.Wrap(0, &fakeBackend{}).(*wrapped)
		out := make([]bool, 64)
		for step := uint64(0); step < 64; step++ {
			out[step] = w.eng.Float64(step) < p.SpikeProb
		}
		return out
	}
	a, b := spikes(plan), spikes(plan)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: spike decision differs between identical plans", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Errorf("spike draw degenerate: %d/%d steps spiked at p=0.3", hits, len(a))
	}
	plan2 := plan
	plan2.Seed = 8
	c := spikes(plan2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("changing the seed did not change the spike pattern")
	}
}

// TestScenarioPlan covers the catalog: every named scenario parses, the
// fault-free one is inert, unknown names error, and scale stretches delays.
func TestScenarioPlan(t *testing.T) {
	for _, name := range ScenarioNames() {
		p, err := ScenarioPlan(name, 1, 1)
		if err != nil {
			t.Fatalf("ScenarioPlan(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ScenarioPlan(%q).Name = %q", name, p.Name)
		}
		if name == "none" && p.Enabled() {
			t.Error(`scenario "none" is not inert`)
		}
		if name != "none" && !p.Enabled() {
			t.Errorf("scenario %q injects nothing", name)
		}
	}
	if p, err := ScenarioPlan("", 1, 1); err != nil || p.Enabled() || p.Name != "none" {
		t.Errorf(`ScenarioPlan("") = %+v, %v; want inert "none"`, p, err)
	}
	if _, err := ScenarioPlan("meteor", 1, 1); err == nil {
		t.Error("unknown scenario did not error")
	}
	p1, _ := ScenarioPlan("straggler", 1, 1)
	p2, _ := ScenarioPlan("straggler", 1, 2.5)
	if p2.SlowDelay != time.Duration(2.5*float64(p1.SlowDelay)) {
		t.Errorf("scale 2.5: SlowDelay %v vs base %v", p2.SlowDelay, p1.SlowDelay)
	}
}

// TestReprogramDelay: only an active plan with ReprogramHang set stalls
// reprograms; nil and inert injectors return 0.
func TestReprogramDelay(t *testing.T) {
	var nilInj *Injector
	if d := nilInj.ReprogramDelay(0); d != 0 {
		t.Errorf("nil injector ReprogramDelay = %v", d)
	}
	p, _ := ScenarioPlan("crash", 1, 1)
	if d := New(p).ReprogramDelay(0); d != time.Millisecond {
		t.Errorf("crash scenario ReprogramDelay = %v, want 1ms", d)
	}
	if d := New(Plan{SlowEngine: -1, CrashEngine: -1}).ReprogramDelay(0); d != 0 {
		t.Errorf("inert injector ReprogramDelay = %v", d)
	}
}

// TestArrivals: the Poisson gap sequence is deterministic in the seed,
// strictly positive, and has roughly the configured mean (1/rps).
func TestArrivals(t *testing.T) {
	const rps = 10000.0
	a1, a2 := NewArrivals(3, rps), NewArrivals(3, rps)
	var sum time.Duration
	const n = 20000
	for i := uint64(0); i < n; i++ {
		g := a1.Gap(i)
		if g != a2.Gap(i) {
			t.Fatalf("gap %d differs across identical generators", i)
		}
		if g <= 0 {
			t.Fatalf("gap %d = %v, want > 0", i, g)
		}
		sum += g
	}
	mean := float64(sum) / n
	want := float64(time.Second) / rps
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean gap %v, want within 5%% of %v", time.Duration(mean), time.Duration(want))
	}
	if NewArrivals(4, rps).Gap(0) == a1.Gap(0) {
		t.Error("different seeds produced the same first gap")
	}
}
