package crossbar

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"cimrev/internal/noise"
)

// naiveMVM is the pre-optimization reference kernel, kept as the oracle for
// the cache-aware rewrite: row-major cell walk, per-cell input-bit test,
// math.Pow shift-add scales, float64 column sums — exactly the arithmetic
// the original implementation performed, with the counter-based noise
// source substituted in (position-keyed draws make loop order irrelevant,
// so the oracle and the kernel consume identical noise). Any divergence
// between this and MVM is a kernel bug, not a tolerance issue: outputs
// must match bit for bit.
func naiveMVM(cfg Config, w [][]float64, input []float64, ns noise.Source) []float64 {
	usedRows, usedCols := len(w), len(w[0])
	slices := cfg.WeightBits / cfg.CellBits

	// Quantize weights (shift encoding), as Program does.
	wScale := 0.0
	for _, row := range w {
		for _, v := range row {
			if a := math.Abs(v); a > wScale {
				wScale = a
			}
		}
	}
	if wScale == 0 {
		wScale = 1
	}
	wMax := float64(int(1)<<cfg.WeightBits - 1)
	cellMask := 1<<cfg.CellBits - 1
	level := make([][][]int, slices) // level[s][r][c]
	for s := range level {
		level[s] = make([][]int, usedRows)
		for r := range level[s] {
			level[s][r] = make([]int, usedCols)
		}
	}
	colSum := make([]float64, usedCols)
	for r := 0; r < usedRows; r++ {
		for c := 0; c < usedCols; c++ {
			w01 := (w[r][c]/wScale + 1) / 2
			wInt := int(math.Round(w01 * wMax))
			colSum[c] += float64(wInt)
			for s := 0; s < slices; s++ {
				level[s][r][c] = (wInt >> uint(s*cfg.CellBits)) & cellMask
			}
		}
	}

	// Quantize input.
	xScale := 0.0
	for _, v := range input {
		if a := math.Abs(v); a > xScale {
			xScale = a
		}
	}
	if xScale == 0 {
		xScale = 1
	}
	xMax := float64(int(1)<<cfg.InputBits - 1)
	xInt := make([]int, usedRows)
	xSum := 0.0
	for i, v := range input {
		x01 := (v/xScale + 1) / 2
		xInt[i] = int(math.Round(x01 * xMax))
		xSum += float64(xInt[i])
	}

	cellMax := float64(cellMask)
	adcMaxSum := float64(usedRows) * cellMax
	adcStep := adcMaxSum / float64(int(1)<<cfg.ADCBits-1)

	acc := make([]float64, usedCols)
	if cfg.Functional {
		for c := 0; c < usedCols; c++ {
			var sum int64
			for r := 0; r < usedRows; r++ {
				for s := 0; s < slices; s++ {
					sum += int64(level[s][r][c]) * int64(xInt[r]) << uint(s*cfg.CellBits)
				}
			}
			acc[c] = float64(sum)
		}
	} else {
		for b := 0; b < cfg.InputBits; b++ {
			bitMask := 1 << uint(b)
			for s := 0; s < slices; s++ {
				scale := math.Pow(2, float64(b+s*cfg.CellBits))
				for c := 0; c < usedCols; c++ {
					sum := 0.0
					for r := 0; r < usedRows; r++ {
						if xInt[r]&bitMask != 0 {
							sum += float64(level[s][r][c])
						}
					}
					if cfg.ReadNoise > 0 {
						idx := (uint64(b)*uint64(slices) + uint64(s)) * uint64(usedCols)
						sum *= 1 + ns.Norm(idx+uint64(c))*cfg.ReadNoise
						if sum < 0 {
							sum = 0
						}
					}
					if sum > adcMaxSum {
						sum = adcMaxSum
					}
					digit := math.Round(sum/adcStep) * adcStep
					acc[c] += digit * scale
				}
			}
		}
	}

	out := make([]float64, usedCols)
	n := float64(usedRows)
	for c := 0; c < usedCols; c++ {
		t := 4*acc[c]/(wMax*xMax) - 2*colSum[c]/wMax - 2*xSum/xMax + n
		out[c] = wScale * xScale * t
	}
	return out
}

// TestKernelMatchesNaiveOracle asserts the optimized kernel (transposed
// layout, active-row lists, scale table, integer sums, pooled scratch) is
// bit-identical to the naive reference across functional/bit-serial modes,
// cell widths, noise on/off, and odd tile-remainder shapes.
func TestKernelMatchesNaiveOracle(t *testing.T) {
	shapes := []struct{ m, n int }{
		{16, 16}, // full array
		{13, 7},  // odd remainders
		{1, 16},  // single row
		{16, 1},  // single column
		{5, 11},
	}
	for _, functional := range []bool{false, true} {
		for _, cellBits := range []int{1, 2, 4} {
			for _, sigma := range []float64{0, 0.03} {
				if functional && sigma > 0 {
					continue // functional mode has no noise path
				}
				for _, sh := range shapes {
					cfg := DefaultConfig()
					cfg.Rows, cfg.Cols = 16, 16
					cfg.CellBits = cellBits
					cfg.Functional = functional
					cfg.ReadNoise = sigma

					rng := rand.New(rand.NewSource(int64(sh.m*100 + sh.n + cellBits)))
					w := randomMatrix(rng, sh.m, sh.n)
					in := randomVector(rng, sh.m)

					xb, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := xb.Program(w); err != nil {
						t.Fatal(err)
					}
					ns := NoNoise
					if sigma > 0 {
						ns = noise.NewSource(99)
					}
					got, _, err := xb.MVM(in, ns)
					if err != nil {
						t.Fatal(err)
					}
					want := naiveMVM(cfg, w, in, ns)
					for c := range want {
						if got[c] != want[c] {
							t.Fatalf("functional=%v cell=%d sigma=%g shape=%dx%d col %d: kernel %v != oracle %v",
								functional, cellBits, sigma, sh.m, sh.n, c, got[c], want[c])
						}
					}
					// Repeat on the same crossbar: pooled scratch must not
					// leak state between calls.
					again, _, err := xb.MVM(in, ns)
					if err != nil {
						t.Fatal(err)
					}
					for c := range want {
						if again[c] != want[c] {
							t.Fatalf("second call diverged at col %d: %v != %v", c, again[c], want[c])
						}
					}
				}
			}
		}
	}
}

// TestNoisyMVMOrderIndependence: the draw for (bit, slice, column) is a
// pure function of position, so repeated noisy MVMs with the same source
// are identical — there is no hidden stream state to advance.
func TestNoisyMVMOrderIndependence(t *testing.T) {
	cfg := smallConfig()
	cfg.ReadNoise = 0.05
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	if _, err := xb.Program(randomMatrix(rng, 16, 16)); err != nil {
		t.Fatal(err)
	}
	in := randomVector(rng, 16)
	ns := noise.NewSource(13)
	first, _, err := xb.MVM(in, ns)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		out, _, err := xb.MVM(in, ns)
		if err != nil {
			t.Fatal(err)
		}
		for c := range out {
			if out[c] != first[c] {
				t.Fatalf("repeat %d col %d: %v != %v (noise source leaked state)", k, c, out[c], first[c])
			}
		}
	}
	// A different source must actually change the output.
	other, _, err := xb.MVM(in, noise.NewSource(14))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for c := range other {
		if other[c] != first[c] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different noise sources produced identical noisy outputs")
	}
}

// TestMVMIntoZeroAlloc is the steady-state allocation contract: after the
// first call warms the scratch pool, MVMInto must not allocate.
func TestMVMIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("-race makes sync.Pool drop items, so alloc counts are unreliable")
	}
	for _, functional := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Rows, cfg.Cols = 64, 64
		cfg.Functional = functional
		xb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		if _, err := xb.Program(randomMatrix(rng, 64, 64)); err != nil {
			t.Fatal(err)
		}
		in := randomVector(rng, 64)
		dst := make([]float64, 64)
		if _, err := xb.MVMInto(dst, in, NoNoise); err != nil {
			t.Fatal(err) // warm the pool
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := xb.MVMInto(dst, in, NoNoise); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("functional=%v: MVMInto allocates %g objects/op, want 0", functional, allocs)
		}
	}
}

// TestMVMIntoDstValidation: MVMInto must fail fast on a mis-sized dst
// before doing any quantization work.
func TestMVMIntoDstValidation(t *testing.T) {
	xb, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xb.Program([][]float64{{1, 0}, {0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := xb.MVMInto(make([]float64, 3), []float64{1, 1}, NoNoise); err == nil {
		t.Error("wrong dst length should fail")
	}
	if _, err := xb.MVMInto(nil, []float64{1, 1}, NoNoise); err == nil {
		t.Error("nil dst should fail")
	}
}

// TestNewRejectsZeroADCBits is the regression test for the adcStep == 0
// fallback: ADCBits = 0 used to slip past construction and silently
// degrade quantization in the kernel; now New rejects it outright.
func TestNewRejectsZeroADCBits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ADCBits = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("New must reject ADCBits = 0")
	} else if !strings.Contains(err.Error(), "ADCBits") {
		t.Errorf("error %q should name ADCBits", err)
	}
	if _, err := NewTile(cfg); err == nil {
		t.Fatal("NewTile must reject ADCBits = 0")
	}
}
