package crossbar

// Batched tile dispatch: Tile.MVMBatch runs a whole micro-batch through
// the block grid per tile pass. Work fans out over (block × item-chunk)
// tasks — blocks alone would under-fill the worker pool for small tiles,
// items alone would re-pay every block's weight-panel traffic per item —
// and each task calls the crossbar GEMM kernel (MVMBatchInto) on its item
// panel. Chunking affects only wall-clock locality and parallelism:
// item i's noise comes from its own derived stream (nss[i].Derive(block)),
// and block stripes merge in fixed (block, item) order, so outputs are
// bit-identical to looping Tile.MVM at any pool width and any chunking.

import (
	"fmt"

	"cimrev/internal/energy"
	"cimrev/internal/noise"
	"cimrev/internal/obs"
	"cimrev/internal/parallel"
)

// tileBatchScratch is the pooled per-call workspace for a batched tile
// MVM: the per-(block, item) output slab, per-task costs, and the view /
// derived-source arenas handed to the crossbar batch kernel. Sized
// against the current block grid and batch on every use (the same
// monotonic-capacity audit contract as the crossbar scratch pools).
type tileBatchScratch struct {
	outs  []float64
	costs []energy.Cost
	dsts  [][]float64
	ins   [][]float64
	nss   []noise.Source
}

// MVMBatch computes y_i = W · input_i for every batch item across the
// block grid. nss supplies one noise source per item (nil when the
// configuration is noise-free); block b of item i draws from
// nss[i].Derive(b), exactly as a lone MVM(input_i, nss[i]) would. The
// returned cost is the uniform per-item tile MVM cost, matching MVM's
// accounting; batch-level cost models belong to the caller.
func (t *Tile) MVMBatch(inputs [][]float64, nss []noise.Source) ([][]float64, energy.Cost, error) {
	return t.MVMBatchCtx(obs.Ctx{}, inputs, nss)
}

// MVMBatchCtx is MVMBatch under a trace span: one "tile.mvm_batch" child
// of pc, annotated with the batch size and recording the serial-equivalent
// cost (per-item cost × batch), with one "xbar.mvm_batch" grandchild per
// (block, item-chunk) task. With a zero Ctx the serving hot path stays
// allocation-free below the (returned) output panel.
func (t *Tile) MVMBatchCtx(pc obs.Ctx, inputs [][]float64, nss []noise.Source) ([][]float64, energy.Cost, error) {
	sp := pc.Child("tile.mvm_batch")
	outs, cost, err := t.mvmBatch(sp, inputs, nss)
	if sp.Active() {
		sp.Annotate("batch", float64(len(inputs)))
	}
	sp.End(energy.Cost{
		LatencyPS: cost.LatencyPS * int64(len(inputs)),
		EnergyPJ:  cost.EnergyPJ * float64(len(inputs)),
	})
	return outs, cost, err
}

func (t *Tile) mvmBatch(sp obs.Ctx, inputs [][]float64, nss []noise.Source) ([][]float64, energy.Cost, error) {
	if !t.programmed {
		return nil, energy.Zero, fmt.Errorf("crossbar: tile MVM before Program")
	}
	n := len(inputs)
	if nss != nil && len(nss) != n {
		return nil, energy.Zero, fmt.Errorf("crossbar: %d noise sources for %d inputs", len(nss), n)
	}
	for i, in := range inputs {
		if len(in) != t.rows {
			return nil, energy.Zero, fmt.Errorf("crossbar: input %d length %d != rows %d", i, len(in), t.rows)
		}
	}
	if n == 0 {
		return [][]float64{}, energy.Zero, nil
	}

	brows, bcols := t.BlockGrid()
	nb := brows * bcols

	// Split the batch into chunks so (blocks × chunks) covers the worker
	// pool; at width 1 the whole batch stays in one chunk per block for
	// maximum weight-panel reuse.
	chunks := (parallel.Width() + nb - 1) / nb
	if chunks > n {
		chunks = n
	}
	chunkSz := (n + chunks - 1) / chunks
	chunks = (n + chunkSz - 1) / chunkSz
	tasks := nb * chunks

	s := t.getBatchScratch(nb, n, tasks)
	defer t.batchScratch.Put(s)

	stride := t.cfg.Cols
	err := parallel.ForErr(tasks, func(tk int) error {
		b, k := tk/chunks, tk%chunks
		i0 := k * chunkSz
		i1 := min(i0+chunkSz, n)
		if i0 >= i1 {
			return nil
		}
		br, bc := b/bcols, b%bcols
		r0 := br * t.cfg.Rows
		r1 := min(r0+t.cfg.Rows, t.rows)
		c0 := bc * t.cfg.Cols
		c1 := min(c0+t.cfg.Cols, t.cols)
		for i := i0; i < i1; i++ {
			idx := b*n + i
			s.ins[idx] = inputs[i][r0:r1]
			s.dsts[idx] = s.outs[idx*stride : idx*stride+(c1-c0)]
			if nss != nil {
				s.nss[idx] = NoNoise
				if nss[i].Valid() {
					s.nss[idx] = nss[i].Derive(uint64(b))
				}
			}
		}
		var bnss []noise.Source
		if nss != nil {
			bnss = s.nss[b*n+i0 : b*n+i1]
		}
		c, err := t.blocks[br][bc].MVMBatchIntoCtx(sp, s.dsts[b*n+i0:b*n+i1], s.ins[b*n+i0:b*n+i1], bnss)
		if err != nil {
			return fmt.Errorf("crossbar: block (%d,%d) MVM: %w", br, bc, err)
		}
		s.costs[tk] = c
		return nil
	})
	if err != nil {
		return nil, energy.Zero, err
	}

	// Per-item cost: fold block costs in fixed order, exactly as mvm does
	// (chunk 0 of every block is never empty and all chunks report the
	// same shape-determined cost).
	cost := energy.Zero
	for b := 0; b < nb; b++ {
		cost = cost.Par(s.costs[b*chunks])
	}

	// Deterministic reduction: digital adds in (block, item) order — per
	// output element the block stripes accumulate in the same ascending
	// block order as the single-vector merge.
	slab := make([]float64, n*t.cols)
	out := make([][]float64, n)
	for i := range out {
		out[i] = slab[i*t.cols : (i+1)*t.cols]
	}
	for b := 0; b < nb; b++ {
		c0 := (b % bcols) * t.cfg.Cols
		c1 := min(c0+t.cfg.Cols, t.cols)
		for i := 0; i < n; i++ {
			stripe := s.outs[(b*n+i)*stride : (b*n+i)*stride+(c1-c0)]
			dst := out[i][c0:]
			for j, v := range stripe {
				dst[j] += v
			}
		}
	}
	if brows > 1 {
		merges := int64(brows-1) * int64(t.cols)
		cost = cost.Seq(energy.Cost{
			LatencyPS: energy.EDRAMAccessLatencyPS,
			EnergyPJ:  float64(merges) * energy.ShiftAddEnergyPJ,
		})
	}
	return out, cost, nil
}

// getBatchScratch pops (or grows) a pooled batch workspace for nb blocks,
// n items, and the given task count.
func (t *Tile) getBatchScratch(nb, n, tasks int) *tileBatchScratch {
	s, _ := t.batchScratch.Get().(*tileBatchScratch)
	if s == nil {
		s = &tileBatchScratch{}
	}
	if need := nb * n * t.cfg.Cols; cap(s.outs) < need {
		s.outs = make([]float64, need)
	} else {
		s.outs = s.outs[:need]
	}
	if cap(s.costs) < tasks {
		s.costs = make([]energy.Cost, tasks)
	} else {
		s.costs = s.costs[:tasks]
	}
	if need := nb * n; cap(s.dsts) < need {
		s.dsts = make([][]float64, need)
		s.ins = make([][]float64, need)
		s.nss = make([]noise.Source, need)
	} else {
		s.dsts = s.dsts[:need]
		s.ins = s.ins[:need]
		s.nss = s.nss[:need]
	}
	return s
}
