package crossbar

import (
	"math/rand"
	"reflect"
	"testing"

	"cimrev/internal/faultinject"
	"cimrev/internal/noise"
	"cimrev/internal/parallel"
)

// faultTestConfig is a small array in functional mode: outputs are exact
// integer arithmetic over the stored levels, so any fault-induced change
// is visible bit-for-bit.
func faultTestConfig(spares int) Config {
	return Config{
		Rows: 16, Cols: 8,
		CellBits: 2, WeightBits: 4,
		InputBits: 4, ADCBits: 8,
		Functional: true,
		SpareCols:  spares,
	}
}

func randMatrix(rows, cols int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([][]float64, rows)
	for r := range w {
		w[r] = make([]float64, cols)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	return w
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

// TestFaultZeroModelGolden pins the acceptance criterion "with fault rate 0
// all existing goldens are bit-identical": installing a zero model (or no
// model) leaves outputs, program cost, and wear exactly as before.
func TestFaultZeroModelGolden(t *testing.T) {
	w := randMatrix(16, 8, 1)
	in := randVec(16, 2)

	ref, err := New(faultTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	refCost, err := ref.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	refOut, _, err := ref.MVM(in, NoNoise)
	if err != nil {
		t.Fatal(err)
	}

	// Zero model installed explicitly, plus a nonzero spare budget (spares
	// must be inert without faults).
	xb, err := New(faultTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.SetFaults(faultinject.Model{Seed: 99}, NoNoise); err != nil {
		t.Fatal(err)
	}
	cost, err := xb.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := xb.MVM(in, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	if cost != refCost {
		t.Fatalf("zero-fault program cost %v != reference %v", cost, refCost)
	}
	if !reflect.DeepEqual(out, refOut) {
		t.Fatal("zero-fault MVM output differs from reference")
	}
	if xb.Writes() != ref.Writes() {
		t.Fatalf("zero-fault wear %d != reference %d", xb.Writes(), ref.Writes())
	}
	if rep := xb.FaultReport(); rep != (faultinject.Report{}) {
		t.Fatalf("zero-fault report not empty: %+v", rep)
	}
}

// TestFaultSetFaultsValidation checks SetFaults rejects bad models and
// enabled models without a source.
func TestFaultSetFaultsValidation(t *testing.T) {
	xb, err := New(faultTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.SetFaults(faultinject.Model{StuckLowRate: -1}, noise.NewSource(1)); err == nil {
		t.Fatal("invalid model accepted")
	}
	if err := xb.SetFaults(faultinject.Model{StuckLowRate: 0.1}, NoNoise); err == nil {
		t.Fatal("enabled model without source accepted")
	}
	tile, err := NewTile(faultTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := tile.SetFaults(faultinject.Model{StuckLowRate: 0.1}, NoNoise); err == nil {
		t.Fatal("tile: enabled model without source accepted")
	}
	if Config := (Config{Rows: 4, Cols: 4, CellBits: 2, WeightBits: 4, InputBits: 4, ADCBits: 8, SpareCols: -1}); Config.Validate() == nil {
		t.Fatal("negative SpareCols accepted")
	}
}

// TestFaultRepairWithinSpares pins the headline repair guarantee: at a
// nonzero stuck-cell rate with sufficient spare budget, the self-test
// remaps every bad column and the repaired array's MVM outputs are
// bit-identical to a fault-free array programmed with the same weights.
func TestFaultRepairWithinSpares(t *testing.T) {
	w := randMatrix(16, 8, 3)
	in := randVec(16, 4)

	ref, err := New(faultTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Program(w); err != nil {
		t.Fatal(err)
	}
	refOut, _, err := ref.MVM(in, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	refCost, _ := ref.Program(w) // second pass for a clean cost reference

	m := faultinject.Model{StuckLowRate: 0.015, StuckHighRate: 0.015, Seed: 5}
	xb, err := New(faultTestConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.SetFaults(m, m.Root()); err != nil {
		t.Fatal(err)
	}
	cost, err := xb.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	rep := xb.FaultReport()
	if rep.StuckCells == 0 {
		t.Fatalf("seed produced no stuck cells; report %+v", rep)
	}
	if rep.RemappedCols == 0 {
		t.Fatalf("expected at least one remapped column; report %+v", rep)
	}
	if rep.LostCols != 0 {
		t.Fatalf("spare budget 16 exhausted: %+v", rep)
	}
	if !rep.Healthy() {
		t.Fatalf("report unhealthy within budget: %+v", rep)
	}
	out, _, err := xb.MVM(in, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, refOut) {
		t.Fatal("repaired array output differs from fault-free reference")
	}
	// No free repairs: remapping and stuck-cell retry trains must cost
	// strictly more than the clean program pass.
	if cost.EnergyPJ <= refCost.EnergyPJ || cost.LatencyPS <= refCost.LatencyPS {
		t.Fatalf("repair cost %v not above clean cost %v", cost, refCost)
	}
}

// TestFaultSpareExhaustion pins non-silent degradation: with no spares and
// a high stuck rate, columns are lost, the report says so, and outputs
// deviate from the fault-free reference.
func TestFaultSpareExhaustion(t *testing.T) {
	w := randMatrix(16, 8, 3)
	in := randVec(16, 4)

	ref, err := New(faultTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Program(w); err != nil {
		t.Fatal(err)
	}
	refOut, _, err := ref.MVM(in, NoNoise)
	if err != nil {
		t.Fatal(err)
	}

	m := faultinject.Model{StuckLowRate: 0.05, StuckHighRate: 0.05, Seed: 6}
	xb, err := New(faultTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.SetFaults(m, m.Root()); err != nil {
		t.Fatal(err)
	}
	if _, err := xb.Program(w); err != nil {
		t.Fatal(err)
	}
	rep := xb.FaultReport()
	if rep.LostCols == 0 {
		t.Fatalf("expected lost columns at 10%% stuck rate with no spares; report %+v", rep)
	}
	if rep.Healthy() {
		t.Fatal("report claims healthy despite lost columns")
	}
	out, _, err := xb.MVM(in, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(out, refOut) {
		t.Fatal("lost columns produced bit-identical outputs — degradation is silent")
	}
}

// TestFaultTransientRetries pins program-and-verify: transient write
// failures are absorbed by escalating retry trains, every retry pulse is
// charged into the cost ledger and wear counter, and the settled array is
// bit-identical to fault-free.
func TestFaultTransientRetries(t *testing.T) {
	w := randMatrix(16, 8, 7)
	in := randVec(16, 8)

	ref, err := New(faultTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	refCost, err := ref.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	refOut, _, err := ref.MVM(in, NoNoise)
	if err != nil {
		t.Fatal(err)
	}

	m := faultinject.Model{WriteFailRate: 0.3, Seed: 9}
	xb, err := New(faultTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.SetFaults(m, m.Root()); err != nil {
		t.Fatal(err)
	}
	cost, err := xb.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	rep := xb.FaultReport()
	if rep.RetryPulses == 0 {
		t.Fatalf("30%% pulse-failure rate produced no retries: %+v", rep)
	}
	if rep.LostCols != 0 || rep.RemappedCols != 0 {
		t.Fatalf("transient failures must settle without remap: %+v", rep)
	}
	out, _, err := xb.MVM(in, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, refOut) {
		t.Fatal("settled array output differs from fault-free reference")
	}
	// The ledger charges every retry: energy strictly above the clean
	// pass, and wear reflects real pulses, not logical cells.
	if cost.EnergyPJ <= refCost.EnergyPJ {
		t.Fatalf("retry energy %g not above clean %g", cost.EnergyPJ, refCost.EnergyPJ)
	}
	if cost.LatencyPS <= refCost.LatencyPS {
		t.Fatalf("retry latency %d not above clean %d", cost.LatencyPS, refCost.LatencyPS)
	}
	cells := int64(16 * 8 * 2) // rows*cols*slices
	if xb.Writes() != cells+rep.RetryPulses {
		t.Fatalf("wear %d != cells %d + retries %d", xb.Writes(), cells, rep.RetryPulses)
	}
}

// TestFaultDriftDegradesAcrossEpochs pins the endurance-drift model: a
// drifting array verifies clean (no remap) but its outputs pull away from
// the reference as program epochs accumulate.
func TestFaultDriftDegradesAcrossEpochs(t *testing.T) {
	w := randMatrix(16, 8, 11)
	in := randVec(16, 12)

	ref, err := New(faultTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Program(w); err != nil {
		t.Fatal(err)
	}
	refOut, _, err := ref.MVM(in, NoNoise)
	if err != nil {
		t.Fatal(err)
	}

	m := faultinject.Model{DriftRate: 1, DriftMax: 0.2, Seed: 13}
	xb, err := New(faultTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.SetFaults(m, m.Root()); err != nil {
		t.Fatal(err)
	}

	dev := func(out []float64) float64 {
		var d float64
		for i := range out {
			if e := out[i] - refOut[i]; e >= 0 {
				d += e
			} else {
				d -= e
			}
		}
		return d
	}

	var firstDev, lastDev float64
	for epoch := 0; epoch < 6; epoch++ {
		if _, err := xb.Program(w); err != nil {
			t.Fatal(err)
		}
		rep := xb.FaultReport()
		if rep.DriftCells == 0 {
			t.Fatalf("DriftRate 1 found no drifters: %+v", rep)
		}
		if rep.RemappedCols != 0 || rep.LostCols != 0 {
			t.Fatalf("drift must not trigger remap (verify passes before relaxation): %+v", rep)
		}
		out, _, err := xb.MVM(in, NoNoise)
		if err != nil {
			t.Fatal(err)
		}
		if epoch == 0 {
			firstDev = dev(out)
		}
		lastDev = dev(out)
	}
	if xb.FaultEpoch() != 6 {
		t.Fatalf("fault epoch %d, want 6", xb.FaultEpoch())
	}
	if !(lastDev > firstDev && lastDev > 0) {
		t.Fatalf("drift must compound: epoch-1 deviation %g, epoch-6 %g", firstDev, lastDev)
	}
}

// TestFaultDeterministicReplay pins reproducibility: two arrays with the
// same model and seed produce identical reports, costs, wear, and outputs.
func TestFaultDeterministicReplay(t *testing.T) {
	w := randMatrix(16, 8, 15)
	in := randVec(16, 16)
	m := faultinject.Model{
		StuckLowRate: 0.02, StuckHighRate: 0.01,
		DriftRate: 0.05, DriftMax: 0.1,
		WriteFailRate: 0.2, Seed: 17,
	}
	run := func() ([]float64, faultinject.Report, int64, int64, float64) {
		xb, err := New(faultTestConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := xb.SetFaults(m, m.Root()); err != nil {
			t.Fatal(err)
		}
		cost, err := xb.Program(w)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := xb.MVM(in, NoNoise)
		if err != nil {
			t.Fatal(err)
		}
		return out, xb.FaultReport(), xb.Writes(), cost.LatencyPS, cost.EnergyPJ
	}
	o1, r1, w1, l1, e1 := run()
	o2, r2, w2, l2, e2 := run()
	if !reflect.DeepEqual(o1, o2) || r1 != r2 || w1 != w2 || l1 != l2 || e1 != e2 {
		t.Fatalf("fault replay diverged: reports %+v vs %+v", r1, r2)
	}
}

// TestFaultTileParallelEquivalence pins the sweep-determinism acceptance
// criterion at the tile layer: a faulty multi-block tile programs to
// identical reports, costs, and outputs at pool widths 1, 4, and 16.
func TestFaultTileParallelEquivalence(t *testing.T) {
	defer parallel.SetWidth(parallel.Width())
	w := randMatrix(40, 20, 19) // 3x3 block grid at 16x8 arrays
	in := randVec(40, 20)
	m := faultinject.Model{
		StuckLowRate: 0.02, StuckHighRate: 0.02,
		WriteFailRate: 0.1, Seed: 23,
	}

	type snap struct {
		out  []float64
		rep  faultinject.Report
		cost [2]float64
	}
	runAt := func(width int) snap {
		parallel.SetWidth(width)
		tile, err := NewTile(faultTestConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := tile.SetFaults(m, m.Root()); err != nil {
			t.Fatal(err)
		}
		cost, err := tile.Program(w)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := tile.MVM(in, NoNoise)
		if err != nil {
			t.Fatal(err)
		}
		return snap{out, tile.FaultReport(), [2]float64{float64(cost.LatencyPS), cost.EnergyPJ}}
	}

	ref := runAt(1)
	if ref.rep.StuckCells == 0 {
		t.Fatalf("tile seed produced no faults: %+v", ref.rep)
	}
	for _, width := range []int{4, 16} {
		got := runAt(width)
		if !reflect.DeepEqual(got.out, ref.out) {
			t.Fatalf("width %d: outputs diverge from serial", width)
		}
		if got.rep != ref.rep {
			t.Fatalf("width %d: report %+v != serial %+v", width, got.rep, ref.rep)
		}
		if got.cost != ref.cost {
			t.Fatalf("width %d: cost %v != serial %v", width, got.cost, ref.cost)
		}
	}
}
