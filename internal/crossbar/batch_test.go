package crossbar

// Batch-kernel equivalence suite: MVMBatch / MVMBatchInto / Tile.MVMBatch
// must be bit-identical to looping the single-vector kernel over the
// items — functional, bit-serial packed and generic, noisy keyed and
// unkeyed, fault-remapped tiles, ragged final item blocks, and the
// batch = 0/1 edges — plus the zero-allocation and mixed-shape scratch
// contracts. `make race` pins this suite by name ('Batch').

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"cimrev/internal/faultinject"
	"cimrev/internal/noise"
	"cimrev/internal/parallel"
)

// batchInputs builds n deterministic random input vectors of length dim.
func batchInputs(rng *rand.Rand, n, dim int) [][]float64 {
	ins := make([][]float64, n)
	for i := range ins {
		ins[i] = randomVector(rng, dim)
	}
	return ins
}

// perItemSources derives one noise source per item from a root, the way
// the DPE keys item i to stream seqs[i].
func perItemSources(root noise.Source, n int) []noise.Source {
	nss := make([]noise.Source, n)
	for i := range nss {
		nss[i] = root.Derive(uint64(i))
	}
	return nss
}

// TestMVMBatchMatchesLoopedMVMInto is the core equivalence contract:
// across functional, packed bit-serial (CellBits 2 → 4 slices), generic
// bit-serial (CellBits 1 → 8 slices, no lane packing), noise on/off, odd
// shapes, and batch sizes around the kernel's item-block boundaries, the
// batched kernel must equal a loop of single-vector MVMInto calls with ==.
func TestMVMBatchMatchesLoopedMVMInto(t *testing.T) {
	shapes := []struct{ m, n int }{
		{16, 16},
		{13, 7}, // odd remainders
		{1, 9},  // single row
	}
	batches := []int{0, 1, 2, 3, 5, 17} // 17 > one item block at 16 rows? exercises ragged blocks
	for _, functional := range []bool{false, true} {
		for _, cellBits := range []int{1, 2} {
			for _, sigma := range []float64{0, 0.03} {
				if functional && sigma > 0 {
					continue // functional mode has no noise path
				}
				for _, sh := range shapes {
					for _, bsz := range batches {
						cfg := DefaultConfig()
						cfg.Rows, cfg.Cols = 16, 16
						cfg.CellBits = cellBits
						cfg.Functional = functional
						cfg.ReadNoise = sigma

						rng := rand.New(rand.NewSource(int64(sh.m*1000 + sh.n*10 + cellBits + bsz)))
						w := randomMatrix(rng, sh.m, sh.n)
						ins := batchInputs(rng, bsz, sh.m)

						xb, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						if _, err := xb.Program(w); err != nil {
							t.Fatal(err)
						}
						var nss []noise.Source
						if sigma > 0 {
							nss = perItemSources(noise.NewSource(99), bsz)
						}

						// Serial oracle: loop MVMInto with item i's source.
						want := make([][]float64, bsz)
						var wantCost, gotCost [2]int64
						for i := 0; i < bsz; i++ {
							ns := NoNoise
							if nss != nil {
								ns = nss[i]
							}
							want[i] = make([]float64, sh.n)
							c, err := xb.MVMInto(want[i], ins[i], ns)
							if err != nil {
								t.Fatal(err)
							}
							wantCost = [2]int64{c.LatencyPS, int64(c.EnergyPJ)}
						}

						got, cost, err := xb.MVMBatch(ins, nss)
						if err != nil {
							t.Fatal(err)
						}
						gotCost = [2]int64{cost.LatencyPS, int64(cost.EnergyPJ)}
						if bsz > 0 && gotCost != wantCost {
							t.Fatalf("per-item batch cost %v != single MVM cost %v", gotCost, wantCost)
						}
						if len(got) != bsz {
							t.Fatalf("batch output count %d != %d", len(got), bsz)
						}
						for i := range want {
							for c := range want[i] {
								if got[i][c] != want[i][c] {
									t.Fatalf("functional=%v cell=%d sigma=%g shape=%dx%d batch=%d item %d col %d: batch %v != looped %v",
										functional, cellBits, sigma, sh.m, sh.n, bsz, i, c, got[i][c], want[i][c])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestMVMBatchMatchesNaiveOracle closes the loop to the original naive
// reference: batched outputs equal naiveMVM per item, noisy keyed
// included, so the GEMM path inherits the single-kernel oracle pin.
func TestMVMBatchMatchesNaiveOracle(t *testing.T) {
	for _, sigma := range []float64{0, 0.02} {
		cfg := DefaultConfig()
		cfg.Rows, cfg.Cols = 16, 16
		cfg.ReadNoise = sigma
		rng := rand.New(rand.NewSource(5))
		w := randomMatrix(rng, 16, 16)
		const bsz = 6
		ins := batchInputs(rng, bsz, 16)

		xb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := xb.Program(w); err != nil {
			t.Fatal(err)
		}
		var nss []noise.Source
		if sigma > 0 {
			nss = perItemSources(noise.NewSource(42), bsz)
		}
		got, _, err := xb.MVMBatch(ins, nss)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < bsz; i++ {
			ns := NoNoise
			if nss != nil {
				ns = nss[i]
			}
			want := naiveMVM(cfg, w, ins[i], ns)
			for c := range want {
				if got[i][c] != want[c] {
					t.Fatalf("sigma=%g item %d col %d: batch %v != naive oracle %v", sigma, i, c, got[i][c], want[c])
				}
			}
		}
	}
}

// TestTileMVMBatchMatchesLoopedMVM: the batched tile dispatch (block ×
// item-chunk fan-out, derived per-block noise, fixed-order merge) equals
// looping Tile.MVM per item — including multi-block shapes with ragged
// remainder blocks — at pool widths 1, 4, and 16.
func TestTileMVMBatchMatchesLoopedMVM(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	shapes := []struct{ m, n int }{
		{16, 16}, // single block
		{40, 23}, // 3x2 grid with ragged remainders
	}
	for _, sigma := range []float64{0, 0.02} {
		for _, sh := range shapes {
			for _, width := range []int{1, 4, 16} {
				parallel.SetWidth(width)
				cfg := DefaultConfig()
				cfg.Rows, cfg.Cols = 16, 16
				cfg.ReadNoise = sigma
				tile, err := NewTile(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(sh.m + sh.n)))
				if _, err := tile.Program(randomMatrix(rng, sh.m, sh.n)); err != nil {
					t.Fatal(err)
				}
				const bsz = 9
				ins := batchInputs(rng, bsz, sh.m)
				var nss []noise.Source
				if sigma > 0 {
					nss = perItemSources(noise.NewSource(7), bsz)
				}

				want := make([][]float64, bsz)
				var wantCost [2]float64
				for i := range ins {
					ns := NoNoise
					if nss != nil {
						ns = nss[i]
					}
					out, c, err := tile.MVM(ins[i], ns)
					if err != nil {
						t.Fatal(err)
					}
					want[i] = out
					wantCost = [2]float64{float64(c.LatencyPS), c.EnergyPJ}
				}
				got, cost, err := tile.MVMBatch(ins, nss)
				if err != nil {
					t.Fatal(err)
				}
				if g := [2]float64{float64(cost.LatencyPS), cost.EnergyPJ}; g != wantCost {
					t.Fatalf("width=%d: per-item tile batch cost %v != single cost %v", width, g, wantCost)
				}
				for i := range want {
					for c := range want[i] {
						if got[i][c] != want[i][c] {
							t.Fatalf("sigma=%g shape=%dx%d width=%d item %d col %d: %v != %v",
								sigma, sh.m, sh.n, width, i, c, got[i][c], want[i][c])
						}
					}
				}
			}
		}
	}
}

// TestMVMBatchFaultRemappedTile: the batched path runs unmodified over
// fault-remapped arrays (remaps resolve at Program time into the stored
// levels), so batch ≡ loop must hold on a tile that has consumed spares.
func TestMVMBatchFaultRemappedTile(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 16, 16
	cfg.SpareCols = 4
	tile, err := NewTile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := faultinject.Model{StuckLowRate: 0.02, StuckHighRate: 0.01}
	if err := tile.SetFaults(model, noise.NewSource(3)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	if _, err := tile.Program(randomMatrix(rng, 30, 20)); err != nil {
		t.Fatal(err)
	}
	if rep := tile.FaultReport(); rep.StuckCells == 0 {
		t.Fatal("fault model injected no stuck cells; test is vacuous")
	}
	const bsz = 7
	ins := batchInputs(rng, bsz, 30)
	want := make([][]float64, bsz)
	for i := range ins {
		out, _, err := tile.MVM(ins[i], NoNoise)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	got, _, err := tile.MVMBatch(ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for c := range want[i] {
			if got[i][c] != want[i][c] {
				t.Fatalf("fault-remapped item %d col %d: batch %v != looped %v", i, c, got[i][c], want[i][c])
			}
		}
	}
}

// TestMVMBatchIntoZeroAlloc is the steady-state allocation contract for
// the batched kernel: after the first call warms the batch pool,
// MVMBatchInto must not allocate at any batch size.
func TestMVMBatchIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("-race makes sync.Pool drop items, so alloc counts are unreliable")
	}
	for _, functional := range []bool{false, true} {
		for _, bsz := range []int{1, 8, 32} {
			cfg := DefaultConfig()
			cfg.Rows, cfg.Cols = 64, 64
			cfg.Functional = functional
			xb, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			if _, err := xb.Program(randomMatrix(rng, 64, 64)); err != nil {
				t.Fatal(err)
			}
			ins := batchInputs(rng, bsz, 64)
			slab := make([]float64, bsz*64)
			dsts := make([][]float64, bsz)
			for i := range dsts {
				dsts[i] = slab[i*64 : (i+1)*64]
			}
			if _, err := xb.MVMBatchInto(dsts, ins, nil); err != nil {
				t.Fatal(err) // warm the pool
			}
			allocs := testing.AllocsPerRun(100, func() {
				if _, err := xb.MVMBatchInto(dsts, ins, nil); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("functional=%v batch=%d: MVMBatchInto allocates %g objects/op, want 0", functional, bsz, allocs)
			}
		}
	}
}

// TestMVMBatchValidation: every batch-shape and noise precondition fails
// fast, before scratch acquisition or quantization.
func TestMVMBatchValidation(t *testing.T) {
	cfg := smallConfig()
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := xb.MVMBatch([][]float64{{1, 1}}, nil); err == nil {
		t.Error("MVMBatch before Program should fail")
	}
	if _, err := xb.Program([][]float64{{1, 0}, {0, 1}}); err != nil {
		t.Fatal(err)
	}
	ok := [][]float64{{1, 1}, {0.5, -0.5}}
	if _, err := xb.MVMBatchInto([][]float64{make([]float64, 2)}, ok, nil); err == nil {
		t.Error("dst/input count mismatch should fail")
	}
	if _, err := xb.MVMBatchInto([][]float64{make([]float64, 3), make([]float64, 2)}, ok, nil); err == nil {
		t.Error("wrong dst length should fail")
	}
	if _, _, err := xb.MVMBatch([][]float64{{1, 1, 1}}, nil); err == nil {
		t.Error("wrong input length should fail")
	}
	if _, _, err := xb.MVMBatch(ok, make([]noise.Source, 1)); err == nil {
		t.Error("noise source count mismatch should fail")
	}
	if _, _, err := xb.MVMBatch([][]float64{{math.NaN(), 1}}, nil); err == nil {
		t.Error("non-finite input should fail")
	}

	noisy := smallConfig()
	noisy.ReadNoise = 0.05
	xn, err := New(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xn.Program([][]float64{{1, 0}, {0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := xn.MVMBatch(ok, nil); err == nil {
		t.Error("noisy batch without sources should fail")
	}
	if _, _, err := xn.MVMBatch(ok, make([]noise.Source, 2)); err == nil {
		t.Error("noisy batch with invalid (zero) sources should fail")
	}
	// Empty batch: a successful no-op even on a noisy config.
	if _, err := xn.MVMBatchInto(nil, nil, nil); err != nil {
		t.Errorf("empty batch should succeed, got %v", err)
	}
}

// TestScratchReuseAcrossReshapes is the mixed-shape scratch-pool audit
// regression: one crossbar reprogrammed across different shapes (and one
// tile reshaped across block grids) must keep handing back correctly
// sized scratch from its pools — results stay oracle-exact on every
// interleaving, single-vector and batched, and no stale capacity or
// length from a larger earlier shape can leak into a smaller one (or
// vice versa).
func TestScratchReuseAcrossReshapes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 32, 32
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct{ m, n int }{{32, 32}, {5, 7}, {32, 32}, {11, 3}}
	rng := rand.New(rand.NewSource(21))
	for round, sh := range shapes {
		w := randomMatrix(rng, sh.m, sh.n)
		if _, err := xb.Program(w); err != nil {
			t.Fatal(err)
		}
		ins := batchInputs(rng, 4, sh.m)
		got, _, err := xb.MVMBatch(ins, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ins {
			single, _, err := xb.MVM(ins[i], NoNoise)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveMVM(cfg, w, ins[i], NoNoise)
			for c := range want {
				if got[i][c] != want[c] || single[c] != want[c] {
					t.Fatalf("round %d shape %dx%d item %d col %d: batch %v single %v oracle %v",
						round, sh.m, sh.n, i, c, got[i][c], single[c], want[c])
				}
			}
		}
	}

	// Tile reshape: alternate a 1-block and a 2x2-block logical shape so
	// pooled tile scratch (outs slab, views, costs) crosses grid sizes.
	tile, err := NewTile(smallTileConfig())
	if err != nil {
		t.Fatal(err)
	}
	for round, sh := range []struct{ m, n int }{{8, 8}, {30, 30}, {8, 8}} {
		w := randomMatrix(rng, sh.m, sh.n)
		if _, err := tile.Program(w); err != nil {
			t.Fatal(err)
		}
		ins := batchInputs(rng, 3, sh.m)
		got, _, err := tile.MVMBatch(ins, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ins {
			want, _, err := tile.MVM(ins[i], NoNoise)
			if err != nil {
				t.Fatal(err)
			}
			for c := range want {
				if got[i][c] != want[c] {
					t.Fatalf("tile round %d shape %dx%d item %d col %d: %v != %v",
						round, sh.m, sh.n, i, c, got[i][c], want[c])
				}
			}
		}
	}
}

// smallTileConfig returns a 16x16-array tile config for reshape tests.
func smallTileConfig() Config {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 16, 16
	return cfg
}

// TestMVMBatchConcurrent: a programmed crossbar may serve concurrent
// batched MVMs — the batch pool must hand each goroutine its own arena.
func TestMVMBatchConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 24, 24
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	w := randomMatrix(rng, 24, 24)
	if _, err := xb.Program(w); err != nil {
		t.Fatal(err)
	}
	ins := batchInputs(rng, 6, 24)
	want, _, err := xb.MVMBatch(ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for k := 0; k < 20; k++ {
				got, _, err := xb.MVMBatch(ins, nil)
				if err != nil {
					errc <- err
					return
				}
				for i := range want {
					for c := range want[i] {
						if got[i][c] != want[i][c] {
							errc <- fmt.Errorf("concurrent batch diverged at item %d col %d", i, c)
							return
						}
					}
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
