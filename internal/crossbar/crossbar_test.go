package crossbar

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cimrev/internal/energy"
	"cimrev/internal/noise"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero rows", func(c *Config) { c.Rows = 0 }, false},
		{"negative cols", func(c *Config) { c.Cols = -1 }, false},
		{"cellbits zero", func(c *Config) { c.CellBits = 0 }, false},
		{"cellbits nine", func(c *Config) { c.CellBits = 9 }, false},
		{"weightbits not multiple", func(c *Config) { c.WeightBits = 7 }, false},
		{"weightbits too large", func(c *Config) { c.WeightBits = 18; c.CellBits = 2 }, false},
		{"inputbits zero", func(c *Config) { c.InputBits = 0 }, false},
		{"adcbits zero", func(c *Config) { c.ADCBits = 0 }, false},
		{"negative noise", func(c *Config) { c.ReadNoise = -1 }, false},
		{"1-bit cells", func(c *Config) { c.CellBits = 1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestConfigSlices(t *testing.T) {
	cfg := DefaultConfig() // 8-bit weights, 2-bit cells
	if got := cfg.slices(); got != 4 {
		t.Errorf("slices = %d, want 4", got)
	}
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 16, 16
	return cfg
}

func TestCrossbarMVMMatchesIdeal(t *testing.T) {
	cfg := smallConfig()
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	w := [][]float64{
		{0.5, -0.25, 0.1},
		{-0.3, 0.8, -0.6},
		{0.2, 0.4, 0.9},
		{-1.0, 0.0, 0.35},
	}
	input := []float64{0.7, -0.2, 0.5, 0.1}

	if _, err := xb.Program(w); err != nil {
		t.Fatal(err)
	}
	got, _, err := xb.MVM(input, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	want, err := xb.IdealMVM(w, input)
	if err != nil {
		t.Fatal(err)
	}
	// Error budget: weight/input quantization at 8 bits plus ADC
	// quantization on a 4-row array is small; allow 3% of the value scale.
	scale := xb.WeightScale() * 0.7 * 4 // |w|max * |x|max * rows
	for c := range want {
		if math.Abs(got[c]-want[c]) > 0.03*scale {
			t.Errorf("col %d: analog %g vs ideal %g (budget %g)", c, got[c], want[c], 0.03*scale)
		}
	}
}

func TestCrossbarMVMBeforeProgram(t *testing.T) {
	xb, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := xb.MVM([]float64{1}, NoNoise); err == nil {
		t.Error("MVM before Program should fail")
	}
}

func TestCrossbarProgramErrors(t *testing.T) {
	xb, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xb.Program(nil); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := xb.Program(make([][]float64, 17)); err == nil {
		t.Error("too many rows should fail")
	}
	if _, err := xb.Program([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, err := xb.Program([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN weight should fail")
	}
	if _, err := xb.Program([][]float64{make([]float64, 17)}); err == nil {
		t.Error("too many cols should fail")
	}
}

func TestCrossbarInputErrors(t *testing.T) {
	xb, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xb.Program([][]float64{{1, 0}, {0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := xb.MVM([]float64{1}, NoNoise); err == nil {
		t.Error("wrong input length should fail")
	}
	if _, _, err := xb.MVM([]float64{1, math.Inf(1)}, NoNoise); err == nil {
		t.Error("Inf input should fail")
	}
	if _, _, err := xb.MVM([]float64{math.NaN(), 1}, NoNoise); err == nil {
		t.Error("NaN input should fail")
	}
}

func TestCrossbarNoiseRequiresSource(t *testing.T) {
	cfg := smallConfig()
	cfg.ReadNoise = 0.01
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xb.Program([][]float64{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := xb.MVM([]float64{1}, NoNoise); err == nil {
		t.Error("noisy MVM without a noise source should fail")
	}
	if _, _, err := xb.MVM([]float64{1}, noise.NewSource(1)); err != nil {
		t.Errorf("noisy MVM with a source failed: %v", err)
	}
}

func TestCrossbarZeroMatrix(t *testing.T) {
	xb, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xb.Program([][]float64{{0, 0}, {0, 0}}); err != nil {
		t.Fatal(err)
	}
	got, _, err := xb.MVM([]float64{1, 1}, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range got {
		if math.Abs(v) > 0.05 {
			t.Errorf("zero matrix output[%d] = %g, want ~0", c, v)
		}
	}
}

func TestCrossbarWriteAsymmetry(t *testing.T) {
	xb, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := [][]float64{{1, 0}, {0, 1}}
	wcost, err := xb.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	_, rcost, err := xb.MVM([]float64{1, 1}, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	if wcost.LatencyPS < 100*rcost.LatencyPS {
		t.Errorf("program latency %d not >> MVM latency %d", wcost.LatencyPS, rcost.LatencyPS)
	}
}

func TestCrossbarWearAccumulates(t *testing.T) {
	xb, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := [][]float64{{1, 0}, {0, 1}}
	if _, err := xb.Program(w); err != nil {
		t.Fatal(err)
	}
	first := xb.Writes()
	if first != int64(2*2*xb.Config().slices()) {
		t.Errorf("writes after 1 program = %d, want %d", first, 2*2*xb.Config().slices())
	}
	if _, err := xb.Program(w); err != nil {
		t.Fatal(err)
	}
	if got := xb.Writes(); got != 2*first {
		t.Errorf("writes after 2 programs = %d, want %d", got, 2*first)
	}
}

func TestCrossbarADCBitsAblation(t *testing.T) {
	// Lower ADC resolution must not reduce error on average; at very low
	// bits the error must grow noticeably.
	mvmErr := func(adcBits int) float64 {
		cfg := DefaultConfig()
		cfg.Rows, cfg.Cols = 64, 16
		cfg.ADCBits = adcBits
		xb, err := New(cfg)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(7))
		w := make([][]float64, 64)
		for r := range w {
			w[r] = make([]float64, 16)
			for c := range w[r] {
				w[r][c] = rng.Float64()*2 - 1
			}
		}
		input := make([]float64, 64)
		for i := range input {
			input[i] = rng.Float64()*2 - 1
		}
		if _, err := xb.Program(w); err != nil {
			panic(err)
		}
		got, _, err := xb.MVM(input, NoNoise)
		if err != nil {
			panic(err)
		}
		want, err := xb.IdealMVM(w, input)
		if err != nil {
			panic(err)
		}
		var sum float64
		for c := range want {
			sum += math.Abs(got[c] - want[c])
		}
		return sum / float64(len(want))
	}
	e10, e4 := mvmErr(10), mvmErr(4)
	if e4 <= e10 {
		t.Errorf("4-bit ADC error %g should exceed 10-bit error %g", e4, e10)
	}
}

func TestCrossbarEnergyScalesWithADCBits(t *testing.T) {
	cost := func(adcBits int) energy.Cost {
		cfg := smallConfig()
		cfg.ADCBits = adcBits
		xb, err := New(cfg)
		if err != nil {
			panic(err)
		}
		if _, err := xb.Program([][]float64{{1, 0}, {0, 1}}); err != nil {
			panic(err)
		}
		_, c, err := xb.MVM([]float64{1, 1}, NoNoise)
		if err != nil {
			panic(err)
		}
		return c
	}
	if cost(10).EnergyPJ <= cost(6).EnergyPJ {
		t.Error("higher ADC resolution should cost more energy")
	}
}

// Property: analog MVM tracks the ideal product within a quantization-driven
// bound for random small matrices.
func TestCrossbarAccuracyProperty(t *testing.T) {
	type testCase struct {
		w     [][]float64
		input []float64
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			rows := 2 + r.Intn(7)
			cols := 1 + r.Intn(8)
			w := make([][]float64, rows)
			for i := range w {
				w[i] = make([]float64, cols)
				for j := range w[i] {
					w[i][j] = r.Float64()*2 - 1
				}
			}
			input := make([]float64, rows)
			for i := range input {
				input[i] = r.Float64()*2 - 1
			}
			vals[0] = reflect.ValueOf(testCase{w: w, input: input})
		},
	}
	f := func(tc testCase) bool {
		xb, err := New(smallConfig())
		if err != nil {
			return false
		}
		if _, err := xb.Program(tc.w); err != nil {
			return false
		}
		got, _, err := xb.MVM(tc.input, NoNoise)
		if err != nil {
			return false
		}
		want, err := xb.IdealMVM(tc.w, tc.input)
		if err != nil {
			return false
		}
		// Budget: shift-encoding recovery error grows with row count and
		// value scales; 5% of (rows * wScale * xScale) is generous but
		// still catches structural mistakes.
		var xScale float64
		for _, v := range tc.input {
			if a := math.Abs(v); a > xScale {
				xScale = a
			}
		}
		budget := 0.05 * float64(len(tc.w)) * xb.WeightScale() * xScale
		if budget < 0.02 {
			budget = 0.02
		}
		for c := range want {
			if math.Abs(got[c]-want[c]) > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFunctionalModeMatchesIdealClosely(t *testing.T) {
	cfg := smallConfig()
	cfg.Functional = true
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	w := make([][]float64, 16)
	for r := range w {
		w[r] = make([]float64, 16)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	input := make([]float64, 16)
	for i := range input {
		input[i] = rng.Float64()*2 - 1
	}
	if _, err := xb.Program(w); err != nil {
		t.Fatal(err)
	}
	got, fcost, err := xb.MVM(input, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	want, err := xb.IdealMVM(w, input)
	if err != nil {
		t.Fatal(err)
	}
	// Only weight/input quantization remains: ~1% of scale.
	for c := range want {
		if math.Abs(got[c]-want[c]) > 0.16 {
			t.Errorf("col %d: functional %g vs ideal %g", c, got[c], want[c])
		}
	}

	// Cost model must be identical to bit-serial mode.
	cfg.Functional = false
	xb2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xb2.Program(w); err != nil {
		t.Fatal(err)
	}
	_, bcost, err := xb2.MVM(input, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	if fcost != bcost {
		t.Errorf("functional cost %v != bit-serial cost %v", fcost, bcost)
	}
}

func TestFunctionalModeAtLeastAsAccurate(t *testing.T) {
	// Functional mode skips ADC quantization, so its error must not exceed
	// the bit-serial error on the same data.
	rng := rand.New(rand.NewSource(21))
	w := make([][]float64, 64)
	for r := range w {
		w[r] = make([]float64, 8)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	input := make([]float64, 64)
	for i := range input {
		input[i] = rng.Float64()*2 - 1
	}
	meanErr := func(functional bool) float64 {
		cfg := DefaultConfig()
		cfg.Rows, cfg.Cols = 64, 8
		cfg.ADCBits = 6
		cfg.Functional = functional
		xb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := xb.Program(w); err != nil {
			t.Fatal(err)
		}
		got, _, err := xb.MVM(input, NoNoise)
		if err != nil {
			t.Fatal(err)
		}
		want, err := xb.IdealMVM(w, input)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for c := range want {
			sum += math.Abs(got[c] - want[c])
		}
		return sum / float64(len(want))
	}
	if ef, eb := meanErr(true), meanErr(false); ef > eb {
		t.Errorf("functional error %g exceeds bit-serial error %g", ef, eb)
	}
}
