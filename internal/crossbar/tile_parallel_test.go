package crossbar

import (
	"math/rand"
	"testing"

	"cimrev/internal/noise"
	"cimrev/internal/parallel"
)

// equivalenceWidths are the pool widths every serial-vs-parallel test
// sweeps; width 1 is the sequential reference.
var equivalenceWidths = []int{1, 4, 16}

// tileAt programs a fresh multi-block tile and runs one MVM at the given
// pool width, returning everything the caller needs to compare runs.
func tileAt(t *testing.T, width int, sigma float64, seed int64) ([]float64, [2]int64, [2]float64) {
	t.Helper()
	parallel.SetWidth(width)

	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 32, 32 // small arrays force a multi-block grid
	cfg.Functional = sigma == 0
	cfg.ReadNoise = sigma

	rng := rand.New(rand.NewSource(seed))
	const m, n = 100, 70 // 4x3 block grid
	w := make([][]float64, m)
	for r := range w {
		w[r] = make([]float64, n)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	in := make([]float64, m)
	for i := range in {
		in[i] = rng.Float64()*2 - 1
	}

	tile, err := NewTile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	progCost, err := tile.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	ns := NoNoise
	if sigma > 0 {
		ns = noise.NewSource(seed + 1)
	}
	out, mvmCost, err := tile.MVM(in, ns)
	if err != nil {
		t.Fatal(err)
	}
	return out,
		[2]int64{progCost.LatencyPS, mvmCost.LatencyPS},
		[2]float64{progCost.EnergyPJ, mvmCost.EnergyPJ}
}

// TestTileParallelEquivalence is the crossbar half of the PR's determinism
// contract: tiled Program and MVM must produce bit-identical outputs and
// bit-identical energy/latency totals at pool widths 1, 4, and 16.
func TestTileParallelEquivalence(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })

	refOut, refLat, refEn := tileAt(t, 1, 0, 42)
	if len(refOut) != 70 {
		t.Fatalf("output length %d, want 70", len(refOut))
	}
	for _, w := range equivalenceWidths[1:] {
		out, lat, en := tileAt(t, w, 0, 42)
		if len(out) != len(refOut) {
			t.Fatalf("width %d: output length %d != %d", w, len(out), len(refOut))
		}
		for i := range out {
			if out[i] != refOut[i] {
				t.Fatalf("width %d: out[%d] = %v != serial %v", w, i, out[i], refOut[i])
			}
		}
		if lat != refLat {
			t.Fatalf("width %d: latencies %v != serial %v", w, lat, refLat)
		}
		if en != refEn {
			t.Fatalf("width %d: energies %v != serial %v", w, en, refEn)
		}
	}
}

// TestTileNoisyParallelEquivalence is the noisy half of the determinism
// contract: with counter-based noise each block draws from its own derived
// stream, so noisy MVMs fan out across the pool and still produce
// bit-identical outputs and costs at widths 1, 4, and 16. (Before the
// counter-based generator, noise forced a sequential fallback; this test
// replaced the fallback test when the fallback was deleted.)
func TestTileNoisyParallelEquivalence(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })

	refOut, refLat, refEn := tileAt(t, 1, 0.02, 7)
	for _, w := range equivalenceWidths[1:] {
		out, lat, en := tileAt(t, w, 0.02, 7)
		for i := range out {
			if out[i] != refOut[i] {
				t.Fatalf("width %d: noisy out[%d] = %v != serial %v", w, i, out[i], refOut[i])
			}
		}
		if lat != refLat || en != refEn {
			t.Fatalf("width %d: noisy costs (%v,%v) != serial (%v,%v)", w, lat, en, refLat, refEn)
		}
	}
}

// TestTileParallelWritesAccounting checks wear accounting survives the
// parallel programming path: every programmed cell is counted exactly once.
func TestTileParallelWritesAccounting(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	parallel.SetWidth(8)

	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 16, 16
	cfg.Functional = true
	tile, err := NewTile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const m, n = 40, 40 // 3x3 blocks
	w := make([][]float64, m)
	for r := range w {
		w[r] = make([]float64, n)
		for c := range w[r] {
			w[r][c] = float64(r-c) / float64(m)
		}
	}
	if _, err := tile.Program(w); err != nil {
		t.Fatal(err)
	}
	want := int64(m) * int64(n) * int64(cfg.WeightBits/cfg.CellBits)
	if got := tile.Writes(); got != want {
		t.Fatalf("Writes() = %d, want %d", got, want)
	}
}
