package crossbar

// Batched multi-vector MVM: the matrix-matrix (GEMM) hot path.
//
// The single-vector kernel in crossbar.go streams the whole weight panel
// (sliceT or packedT) out of L2/L3 once per vector. At fleet scale the
// traffic that matters is micro-batched — serve.Batcher flushes batches
// into dpe.Engine.InferBatch — and running a batch as N independent
// MVMInto calls re-pays that panel traffic, the shift-scale table walks,
// and the per-call bookkeeping N times.
//
// MVMBatchInto restructures the loop nest from matrix-vector to
// matrix-matrix:
//
//   - Input quantization and per-bit active-row decode happen once per
//     batch into a single pooled 2-D scratch arena (mvmBatchScratch), not
//     once per call.
//   - The kernel iterates columns outermost and batch items inside an
//     item block, so one column's weight panel is loaded once and reused
//     across every input bit of every item in the block — the weight
//     matrix is streamed once per batch instead of once per vector.
//   - Item blocks are sized so the per-item working set (active-row runs
//     for the bit-serial kernels, quantized inputs for the functional
//     kernel) stays L1-resident while the panel streams through.
//
// Bit-identity with looped MVMInto is exact, not approximate: for every
// (item, column) accumulator the (input bit, slice) accumulation order is
// unchanged — reordering the column/item loops around it cannot perturb a
// float64 in the result — and noise draws stay position-keyed per item
// ((b*slices+s)*usedCols + c against that item's own source), so the
// batched and serial paths consume identical draws. The equivalence suite
// in batch_test.go pins this with == across functional, bit-serial
// (packed and generic), noisy keyed/unkeyed, and fault-remapped tiles.

import (
	"fmt"
	"math"

	"cimrev/internal/energy"
	"cimrev/internal/noise"
	"cimrev/internal/obs"
)

// mvmBatchScratch is the 2-D batch working set. One instance serves a
// whole MVMBatchInto call and cycles through the crossbar's batch pool,
// so steady-state batched MVMs allocate nothing.
type mvmBatchScratch struct {
	// xInt is the quantized, shift-encoded input panel, item-major:
	// item i occupies xInt[i*usedRows : i*usedRows+usedRows].
	xInt []int32
	// xScale and xSumInt are the per-item input scale and quantized sum.
	xScale  []float64
	xSumInt []int64
	// acc is the shift-add accumulator panel, item-major
	// (acc[i*usedCols+c]). The functional kernel assigns each element's
	// final reduction; the bit-serial kernels zero their item block up
	// front and accumulate ADC terms across input bits, mirroring the
	// serial kernels' acc[c] += order exactly.
	acc []float64
	// active holds concatenated active-row runs for every (item, input
	// bit); activeStart[i*(InputBits+1)+b] is the offset of item i's bit-b
	// run. Built once per batch, reused by every column of the generic
	// bit-serial kernel. The packed kernel needs neither: it classifies
	// rows by nibble value on the fly from xInt.
	active      []int32
	activeStart []int32
	// runs is the per-item-block run-view arena hoisted out of the generic
	// kernel's column loop: one slice header per item per bit instead of
	// one per (column, item, bit).
	runs [][]int32
}

// blockItems returns the batch-block size for the kernel's item loop: the
// largest item count whose per-item working set (perItemBytes) fits a
// 32 KiB L1 budget alongside one column panel, clamped to [2, 64]. The
// block size affects only locality, never results — every (item, column)
// accumulation is independent and order-preserved.
func blockItems(perItemBytes int) int {
	if perItemBytes <= 0 {
		return 64
	}
	k := 32 << 10 / perItemBytes
	if k < 2 {
		return 2
	}
	if k > 64 {
		return 64
	}
	return k
}

// MVMBatch computes y_i = W · input_i for every batch item through the
// full analog pipeline, allocating the result panel. inputs[i] must have
// usedRows elements; results have usedCols. nss supplies one counter-based
// noise source per item (item i's draws are keyed exactly as a lone
// MVM(input_i, nss[i]) would be); it may be nil when ReadNoise is zero.
// The returned cost is the uniform per-item MVM cost — the same value
// MVMInto reports for each vector; batch-level cost models (pipelining,
// energy totals) belong to the caller, exactly as with looped MVMInto.
func (x *Crossbar) MVMBatch(inputs [][]float64, nss []noise.Source) ([][]float64, energy.Cost, error) {
	if !x.programmed {
		return nil, energy.Zero, fmt.Errorf("crossbar: MVM before Program")
	}
	slab := make([]float64, len(inputs)*x.usedCols)
	dsts := make([][]float64, len(inputs))
	for i := range dsts {
		dsts[i] = slab[i*x.usedCols : (i+1)*x.usedCols]
	}
	cost, err := x.MVMBatchInto(dsts, inputs, nss)
	if err != nil {
		return nil, energy.Zero, err
	}
	return dsts, cost, nil
}

// MVMBatchIntoCtx is MVMBatchInto under a trace span: the batched analog
// read is recorded as one "xbar.mvm_batch" child of pc carrying the
// serial-equivalent cost (per-item cost × batch) and a batch annotation.
// With a zero Ctx it is the raw batch kernel plus one branch — zero
// allocations, preserving the hot-path contract.
func (x *Crossbar) MVMBatchIntoCtx(pc obs.Ctx, dsts, inputs [][]float64, nss []noise.Source) (energy.Cost, error) {
	if !pc.Active() {
		return x.MVMBatchInto(dsts, inputs, nss)
	}
	sp := pc.Child("xbar.mvm_batch")
	cost, err := x.MVMBatchInto(dsts, inputs, nss)
	sp.Annotate("batch", float64(len(inputs)))
	sp.End(energy.Cost{
		LatencyPS: cost.LatencyPS * int64(len(inputs)),
		EnergyPJ:  cost.EnergyPJ * float64(len(inputs)),
	})
	return cost, err
}

// MVMBatchInto is MVMBatch writing results into dsts (dsts[i] of length
// usedCols). It is the zero-allocation batched kernel: the whole 2-D
// working set comes from the crossbar's batch scratch pool, so
// steady-state calls do not allocate at any batch size. Safe for
// concurrent use on a programmed crossbar. A zero-length batch is a
// successful no-op. Outputs are bit-identical to looping MVMInto over the
// items with the matching per-item noise source.
func (x *Crossbar) MVMBatchInto(dsts, inputs [][]float64, nss []noise.Source) (energy.Cost, error) {
	// Fail fast: every shape and value check completes before quantization
	// or scratch acquisition, mirroring MVMInto.
	if !x.programmed {
		return energy.Zero, fmt.Errorf("crossbar: MVM before Program")
	}
	n := len(inputs)
	if len(dsts) != n {
		return energy.Zero, fmt.Errorf("crossbar: %d dsts for %d inputs", len(dsts), n)
	}
	if nss != nil && len(nss) != n {
		return energy.Zero, fmt.Errorf("crossbar: %d noise sources for %d inputs", len(nss), n)
	}
	if n == 0 {
		// A zero-length batch is exactly a zero-iteration MVMInto loop: a
		// successful no-op, even on a noisy configuration.
		return energy.Zero, nil
	}
	if x.cfg.ReadNoise > 0 {
		if nss == nil {
			return energy.Zero, fmt.Errorf("crossbar: ReadNoise %g requires per-item noise sources", x.cfg.ReadNoise)
		}
		for i, ns := range nss {
			if !ns.Valid() {
				return energy.Zero, fmt.Errorf("crossbar: ReadNoise %g requires a noise source (item %d)", x.cfg.ReadNoise, i)
			}
		}
	}
	for i, in := range inputs {
		if len(in) != x.usedRows {
			return energy.Zero, fmt.Errorf("crossbar: input %d length %d != programmed rows %d", i, len(in), x.usedRows)
		}
		if len(dsts[i]) != x.usedCols {
			return energy.Zero, fmt.Errorf("crossbar: dst %d length %d != programmed cols %d", i, len(dsts[i]), x.usedCols)
		}
		for j, v := range in {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return energy.Zero, fmt.Errorf("crossbar: non-finite input at item %d index %d", i, j)
			}
		}
	}

	s := x.getBatchScratch(n)
	defer x.batchScratch.Put(s)

	// Quantize and shift-encode every item once, up front.
	xMax := int32(1)<<x.cfg.InputBits - 1
	for i, in := range inputs {
		xScale := 0.0
		for _, v := range in {
			if a := math.Abs(v); a > xScale {
				xScale = a
			}
		}
		if xScale == 0 {
			xScale = 1
		}
		xi := s.xInt[i*x.usedRows : (i+1)*x.usedRows]
		var sum int64
		for r, v := range in {
			x01 := (v/xScale + 1) / 2
			q := int32(math.Round(x01 * float64(xMax)))
			xi[r] = q
			sum += int64(q)
		}
		s.xScale[i] = xScale
		s.xSumInt[i] = sum
	}

	if x.cfg.Functional {
		if x.packedT != nil {
			x.functionalBatchPacked(s, n)
		} else {
			x.functionalBatchKernel(s, n)
		}
	} else if x.packedT != nil {
		// The packed kernel classifies rows by nibble value on the fly —
		// one histogram pass over the column per item replaces up to
		// InputBits per-bit gathers of the same rows.
		x.bitSerialBatchPacked(s, n, nss)
	} else {
		// Decode per-bit active-row runs for every item once; the column
		// loop below reuses them InputBits × usedCols times.
		bits := x.cfg.InputBits
		for i := 0; i < n; i++ {
			base := i * (bits + 1)
			xi := s.xInt[i*x.usedRows : (i+1)*x.usedRows]
			for b := 0; b < bits; b++ {
				s.activeStart[base+b] = int32(len(s.active))
				mask := int32(1) << uint(b)
				for r, q := range xi {
					if q&mask != 0 {
						s.active = append(s.active, int32(r))
					}
				}
			}
			s.activeStart[base+bits] = int32(len(s.active))
		}
		x.bitSerialBatchKernel(s, n, nss)
	}

	// Remove the shift-encoding offsets and restore each item's scale —
	// the same per-column epilogue as MVMInto, once per item.
	wMax := float64(int(1)<<x.cfg.WeightBits - 1)
	fxMax := float64(xMax)
	rows := float64(x.usedRows)
	for i := 0; i < n; i++ {
		dst := dsts[i]
		acc := s.acc[i*x.usedCols : (i+1)*x.usedCols]
		xSum := float64(s.xSumInt[i])
		scale := x.wScale * s.xScale[i]
		for c := range dst {
			t := 4*acc[c]/(wMax*fxMax) -
				2*float64(x.colSumInt[c])/wMax -
				2*xSum/fxMax + rows
			dst[c] = scale * t
		}
	}
	return x.mvmCost(), nil
}

// getBatchScratch returns a batch scratch sized for n items of the
// programmed shape. Buffers grow monotonically (capacity checks against
// the *current* shape and batch, never a cached size), so one pool serves
// any interleaving of reprogrammed shapes and batch sizes without ever
// handing back an undersized arena — the same audit contract as
// getScratch; TestScratchReuseAcrossReshapes pins it.
func (x *Crossbar) getBatchScratch(n int) *mvmBatchScratch {
	s, _ := x.batchScratch.Get().(*mvmBatchScratch)
	if s == nil {
		s = &mvmBatchScratch{}
	}
	if need := n * x.usedRows; cap(s.xInt) < need {
		s.xInt = make([]int32, need)
	} else {
		s.xInt = s.xInt[:need]
	}
	if cap(s.xScale) < n {
		s.xScale = make([]float64, n)
		s.xSumInt = make([]int64, n)
	} else {
		s.xScale = s.xScale[:n]
		s.xSumInt = s.xSumInt[:n]
	}
	if need := n * x.usedCols; cap(s.acc) < need {
		s.acc = make([]float64, need)
	} else {
		s.acc = s.acc[:need]
	}
	if need := n * (x.cfg.InputBits + 1); cap(s.activeStart) < need {
		s.activeStart = make([]int32, need)
	} else {
		s.activeStart = s.activeStart[:need]
	}
	if need := n * x.cfg.InputBits * x.usedRows; cap(s.active) < need {
		s.active = make([]int32, 0, need)
	} else {
		s.active = s.active[:0]
	}
	// The item-block loop never exceeds the blockItems clamp of 64 views.
	if cap(s.runs) < 64 {
		s.runs = make([][]int32, 64)
	} else {
		s.runs = s.runs[:64]
	}
	return s
}

// functionalBatchKernel is the exact-integer batch kernel: for each item
// block, every column's slice panels are loaded once and dotted against
// each item's quantized input while hot. The per-(item, column) reduction
// (slice-descending shift-accumulate over a contiguous row scan) is the
// one functionalKernel performs, so results are bit-identical.
func (x *Crossbar) functionalBatchKernel(s *mvmBatchScratch, n int) {
	rows := x.cfg.Rows
	usedRows := x.usedRows
	cols := x.usedCols
	nslices := x.numSlices
	shift := uint(x.cfg.CellBits)
	blk := blockItems(usedRows * 4) // per-item xInt bytes
	for i0 := 0; i0 < n; i0 += blk {
		i1 := min(i0+blk, n)
		for c := 0; c < cols; c++ {
			base := c * rows
			for i := i0; i < i1; i++ {
				xi := s.xInt[i*usedRows : (i+1)*usedRows]
				var sum int64
				for si := nslices - 1; si >= 0; si-- {
					col := x.sliceT[si][base : base+usedRows]
					// Four independent integer partials: the slice dot
					// product is exact arithmetic, so re-association
					// cannot perturb the final float64 conversion.
					var p0, p1, p2, p3 int64
					r, nr := 0, len(col)
					for ; r <= nr-4; r += 4 {
						p0 += int64(col[r]) * int64(xi[r])
						p1 += int64(col[r+1]) * int64(xi[r+1])
						p2 += int64(col[r+2]) * int64(xi[r+2])
						p3 += int64(col[r+3]) * int64(xi[r+3])
					}
					for ; r < nr; r++ {
						p0 += int64(col[r]) * int64(xi[r])
					}
					sum = sum<<shift + p0 + p1 + p2 + p3
				}
				s.acc[i*cols+c] = float64(sum)
			}
		}
	}
}

// functionalBatchPacked is the lane-packed functional batch kernel. The
// exact integer reduction functionalKernel computes per (item, column) —
// Σ_si dot(slice_si, xi) · 2^(si·CellBits) — equals Σ_b 2^b · Σ_si
// colSum(si, b) · 2^(si·CellBits), where colSum(si, b) sums slice si over
// the rows whose input bit b is set. The kernel reads those per-bit sums
// out of one nibble histogram of the packed column (one pass per item
// instead of one multiply-add pass per slice), recombines classes into
// per-bit lane sums, and unpacks lanes with shifts. Every step is exact
// integer arithmetic producing the same int64, so the float64 conversion
// is bit-identical to the serial kernel's.
func (x *Crossbar) functionalBatchPacked(s *mvmBatchScratch, n int) {
	rows := x.cfg.Rows
	usedRows := x.usedRows
	cols := x.usedCols
	bits := x.cfg.InputBits
	nslices := x.numSlices
	cellBits := uint(x.cfg.CellBits)
	packedT := x.packedT
	groups := x.nibGroups()
	// Per-item working set: the quantized input row. Doubled so the block
	// leaves L1 headroom for the column panel it races.
	blk := blockItems(usedRows * 8)
	for i0 := 0; i0 < n; i0 += blk {
		i1 := min(i0+blk, n)
		for c := 0; c < cols; c++ {
			col := packedT[c*rows : c*rows+usedRows]
			for i := i0; i < i1; i++ {
				xi := s.xInt[i*usedRows : i*usedRows+usedRows]
				var T [4][16]uint64
				nibbleHistogram(&T, col, xi, groups)
				var sum uint64
				for g := 0; g < groups; g++ {
					gw := min(4, bits-4*g)
					nc := 1 << uint(gw)
					Tg := &T[g]
					var packs [4]uint64
					if gw == 4 {
						packs[0] = Tg[1] + Tg[3] + Tg[5] + Tg[7] + Tg[9] + Tg[11] + Tg[13] + Tg[15]
						packs[1] = Tg[2] + Tg[3] + Tg[6] + Tg[7] + Tg[10] + Tg[11] + Tg[14] + Tg[15]
						packs[2] = Tg[4] + Tg[5] + Tg[6] + Tg[7] + Tg[12] + Tg[13] + Tg[14] + Tg[15]
						packs[3] = Tg[8] + Tg[9] + Tg[10] + Tg[11] + Tg[12] + Tg[13] + Tg[14] + Tg[15]
					} else {
						for bb := 0; bb < gw; bb++ {
							bit := 1 << uint(bb)
							var p uint64
							for m := bit; m < nc; m++ {
								if m&bit != 0 {
									p += Tg[m]
								}
							}
							packs[bb] = p
						}
					}
					for bb := 0; bb < gw; bb++ {
						p := packs[bb]
						var u uint64
						for si := 0; si < nslices; si++ {
							u += (p >> uint(16*si) & 0xFFFF) << (uint(si) * cellBits)
						}
						sum += u << uint(4*g+bb)
					}
				}
				s.acc[i*cols+c] = float64(sum)
			}
		}
	}
}

// nibGroups returns the number of nibble groups the input bits split
// into for the packed kernel's histogram classification.
func (x *Crossbar) nibGroups() int {
	return (x.cfg.InputBits + 3) / 4
}

// nibbleHistogram streams one packed column against one item's quantized
// input row, accumulating T[g][m] = Σ col[r] over the rows whose group-g
// nibble of xi[r] equals m. Each row costs two sequential loads and one
// lane add per group — no index lists, no branches — and bit b of the
// input is set for row r exactly when r's group-⌊b/4⌋ nibble has bit b%4
// set, so every per-bit column sum is a disjoint union of classes and
// can be reassembled from T with a few integer adds. All sums are uint64
// lane sums over disjoint row subsets of one column, bounded by the
// packing invariant (cellMax·usedRows ≤ 0xFFFF): no lane ever carries.
// InputBits ≤ 16 bounds groups by 4, and nibble indices are masked to 4
// bits, so every histogram access is in range.
func nibbleHistogram(T *[4][16]uint64, col []uint64, xi []int32, groups int) {
	xi = xi[:len(col)]
	if groups == 2 {
		// The dominant shape (5–8 input bits): both nibbles of one q load
		// classify the same col load, 2-way unrolled into disjoint
		// even/odd accumulators to break the read-modify-write dependency
		// on repeated classes.
		var evLo, evHi, odLo, odHi [16]uint64
		r := 0
		for ; r+2 <= len(col); r += 2 {
			v0, v1 := col[r], col[r+1]
			q0, q1 := uint32(xi[r]), uint32(xi[r+1])
			evLo[q0&15] += v0
			evHi[(q0>>4)&15] += v0
			odLo[q1&15] += v1
			odHi[(q1>>4)&15] += v1
		}
		if r < len(col) {
			v := col[r]
			q := uint32(xi[r])
			evLo[q&15] += v
			evHi[(q>>4)&15] += v
		}
		for m := 1; m < 16; m++ {
			T[0][m] = evLo[m] + odLo[m]
			T[1][m] = evHi[m] + odHi[m]
		}
		return
	}
	for r, v := range col {
		q := uint32(xi[r])
		for g := 0; g < groups; g++ {
			T[g][(q>>uint(4*g))&15] += v
		}
	}
}

// bitSerialBatchPacked is the lane-packed batched bit-serial kernel. The
// nest is (item block, column, item): one column's packed panel is loaded
// once per block and reused by every item while L1-hot. Per (item,
// column) the kernel streams the column against the item's quantized row
// exactly once, histogramming the packed lanes by nibble value —
// T[g][m] accumulates col[r] over rows whose group-g nibble equals m —
// and then reassembles each input bit's column sum as the sum of the
// classes with that bit set. Everything is uint64 lane arithmetic over
// disjoint row subsets of one column, each bounded by the full-column
// packing invariant (cellMax·usedRows ≤ 0xFFFF), so no lane ever carries
// and the reassembled per-bit sums equal the serial kernel's gathers
// exactly. Compared with per-bit gathers (InputBits·usedRows/2 indexed
// loads expected), the histogram touches each row once with two
// sequential loads, no index lists, and no branches. Per (item, column)
// the float ADC accumulator extends in (bit, slice) order, and each
// item's noise draw stays position-keyed against its own source, so
// outputs match looped MVMInto bit for bit.
func (x *Crossbar) bitSerialBatchPacked(s *mvmBatchScratch, n int, nss []noise.Source) {
	rows := x.cfg.Rows
	usedRows := x.usedRows
	cols := x.usedCols
	bits := x.cfg.InputBits
	nslices := x.numSlices
	cellBits := x.cfg.CellBits
	sigma := x.cfg.ReadNoise
	adcStep, adcMaxSum := x.adcStep, x.adcMaxSum
	packedT := x.packedT
	scaleTab := x.scaleTab
	adcLUT := x.adcLUT
	acc := s.acc
	groups := x.nibGroups()
	// Per-item working set: the quantized input row. Doubled so the block
	// leaves L1 headroom for the column panel and the ADC LUT it races.
	blk := blockItems(usedRows * 8)
	for i0 := 0; i0 < n; i0 += blk {
		i1 := min(i0+blk, n)
		accBlk := acc[i0*cols : i1*cols]
		for j := range accBlk {
			accBlk[j] = 0
		}
		for c := 0; c < cols; c++ {
			col := packedT[c*rows : c*rows+usedRows]
			for i := i0; i < i1; i++ {
				xi := s.xInt[i*usedRows : i*usedRows+usedRows]
				var T [4][16]uint64
				nibbleHistogram(&T, col, xi, groups)
				idx := i*cols + c
				a := acc[idx]
				for g := 0; g < groups; g++ {
					b0 := 4 * g
					gw := min(4, bits-b0)
					nc := 1 << uint(gw)
					Tg := &T[g]
					var packs [4]uint64
					if gw == 4 {
						packs[0] = Tg[1] + Tg[3] + Tg[5] + Tg[7] + Tg[9] + Tg[11] + Tg[13] + Tg[15]
						packs[1] = Tg[2] + Tg[3] + Tg[6] + Tg[7] + Tg[10] + Tg[11] + Tg[14] + Tg[15]
						packs[2] = Tg[4] + Tg[5] + Tg[6] + Tg[7] + Tg[12] + Tg[13] + Tg[14] + Tg[15]
						packs[3] = Tg[8] + Tg[9] + Tg[10] + Tg[11] + Tg[12] + Tg[13] + Tg[14] + Tg[15]
					} else {
						for bb := 0; bb < gw; bb++ {
							bit := 1 << uint(bb)
							var p uint64
							for m := bit; m < nc; m++ {
								if m&bit != 0 {
									p += Tg[m]
								}
							}
							packs[bb] = p
						}
					}
					if sigma == 0 {
						// Noise-free lane sums are integers ≤ adcMaxSum, so
						// the tabulated ADC transfer replaces the clip,
						// divide, and round — bit-exactly.
						for bb := 0; bb < gw; bb++ {
							b := b0 + bb
							packed := packs[bb]
							for si := 0; si < nslices; si++ {
								a += adcLUT[(packed>>uint(16*si))&0xFFFF] * scaleTab[b+si*cellBits]
							}
						}
					} else {
						for bb := 0; bb < gw; bb++ {
							b := b0 + bb
							packed := packs[bb]
							nsBit := uint64(b) * uint64(nslices) * uint64(cols)
							for si := 0; si < nslices; si++ {
								colSum := float64((packed >> uint(16*si)) & 0xFFFF)
								// Same position-keyed draw as the serial
								// path: index (b*slices+si)*usedCols + c,
								// item i's own source.
								colSum *= 1 + nss[i].Norm(nsBit+uint64(si)*uint64(cols)+uint64(c))*sigma
								if colSum < 0 {
									colSum = 0
								}
								// ADC: clip then quantize.
								if colSum > adcMaxSum {
									colSum = adcMaxSum
								}
								a += math.Round(colSum/adcStep) * adcStep * scaleTab[b+si*cellBits]
							}
						}
					}
				}
				acc[idx] = a
			}
		}
	}
}

// bitSerialBatchKernel is the generic (slice-at-a-time) batched bit-serial
// kernel, taken when Program could not build packedT. Same (item block,
// input bit, column, item) nest and unrolled integer gather as the packed
// kernel, with one gather per weight slice; per (item, column) the float
// accumulator extends in (bit, slice) order, matching bitSerialKernel
// exactly.
func (x *Crossbar) bitSerialBatchKernel(s *mvmBatchScratch, n int, nss []noise.Source) {
	rows := x.cfg.Rows
	usedRows := x.usedRows
	cols := x.usedCols
	bits := x.cfg.InputBits
	nslices := x.numSlices
	cellBits := x.cfg.CellBits
	sigma := x.cfg.ReadNoise
	adcStep, adcMaxSum := x.adcStep, x.adcMaxSum
	scaleTab := x.scaleTab
	acc := s.acc
	blk := blockItems(bits * usedRows * 2)
	for i0 := 0; i0 < n; i0 += blk {
		i1 := min(i0+blk, n)
		accBlk := acc[i0*cols : i1*cols]
		for j := range accBlk {
			accBlk[j] = 0
		}
		for b := 0; b < bits; b++ {
			runs := s.runs[:i1-i0]
			for k := range runs {
				base := (i0+k)*(bits+1) + b
				runs[k] = s.active[s.activeStart[base]:s.activeStart[base+1]]
			}
			for c := 0; c < cols; c++ {
				base := c * rows
				for k, rowsB := range runs {
					i := i0 + k
					idx := i*cols + c
					a := acc[idx]
					for si := 0; si < nslices; si++ {
						col := x.sliceT[si][base : base+usedRows]
						var s0, s1, s2, s3 int64
						r, nr := 0, len(rowsB)
						for ; r <= nr-4; r += 4 {
							s0 += int64(col[rowsB[r]])
							s1 += int64(col[rowsB[r+1]])
							s2 += int64(col[rowsB[r+2]])
							s3 += int64(col[rowsB[r+3]])
						}
						for ; r < nr; r++ {
							s0 += int64(col[rowsB[r]])
						}
						if sigma == 0 {
							// Integer sums ≤ adcMaxSum: tabulated ADC
							// transfer, bit-exact with the divide path.
							a += x.adcLUT[s0+s1+s2+s3] * scaleTab[b+si*cellBits]
							continue
						}
						colSum := float64(s0 + s1 + s2 + s3)
						nsBase := (uint64(b)*uint64(nslices) + uint64(si)) * uint64(cols)
						colSum *= 1 + nss[i].Norm(nsBase+uint64(c))*sigma
						if colSum < 0 {
							colSum = 0
						}
						// ADC: clip then quantize.
						if colSum > adcMaxSum {
							colSum = adcMaxSum
						}
						a += math.Round(colSum/adcStep) * adcStep * scaleTab[b+si*cellBits]
					}
					acc[idx] = a
				}
			}
		}
	}
}
