package crossbar

import (
	"math/rand"
	"reflect"
	"testing"

	"cimrev/internal/noise"
	"cimrev/internal/obs"
)

// benchCrossbar builds a programmed n x n crossbar plus a matching input
// and destination buffer.
func benchCrossbar(tb testing.TB, n int) (*Crossbar, []float64, []float64) {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = n, n
	xb, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = rng.Float64()*2 - 1
		}
	}
	if _, err := xb.Program(w); err != nil {
		tb.Fatal(err)
	}
	in := make([]float64, n)
	for i := range in {
		in[i] = rng.Float64()*2 - 1
	}
	return xb, in, make([]float64, n)
}

// TestMVMTracingOffZeroAllocs pins the overhead contract from
// docs/OBSERVABILITY.md: the Ctx-threaded MVM path with tracing disabled
// (zero obs.Ctx, from a nil tracer) must allocate nothing — the hot loop
// pays only a couple of nil-check branches.
func TestMVMTracingOffZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; run without -race")
	}
	xb, in, dst := benchCrossbar(t, 128)
	ns := noise.NewSource(1)
	var tr *obs.Tracer // disabled
	// Warm the scratch pool first: the first MVM allocates its scratch.
	if _, err := xb.MVMIntoCtx(tr.Root("warm"), dst, in, ns); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := xb.MVMIntoCtx(tr.Root("xbar.mvm"), dst, in, ns); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MVM with tracing off allocates %.1f per op, want 0", allocs)
	}
}

// TestMVMTracedBitIdentical: tracing must not perturb the kernel — the
// traced MVM's outputs and cost equal the untraced ones exactly, and the
// recorded span carries that exact cost.
func TestMVMTracedBitIdentical(t *testing.T) {
	for _, mode := range []string{"bitserial", "noisy"} {
		t.Run(mode, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Rows, cfg.Cols = 64, 64
			if mode == "noisy" {
				cfg.ReadNoise = 0.02
			}
			mk := func() *Crossbar {
				xb, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(11))
				w := make([][]float64, 64)
				for i := range w {
					w[i] = make([]float64, 64)
					for j := range w[i] {
						w[i][j] = rng.Float64()*2 - 1
					}
				}
				if _, err := xb.Program(w); err != nil {
					t.Fatal(err)
				}
				return xb
			}
			in := make([]float64, 64)
			for i := range in {
				in[i] = float64(i%13)/6.5 - 1
			}

			ref := mk()
			want, wantCost, err := ref.MVM(in, noise.NewSource(3))
			if err != nil {
				t.Fatal(err)
			}

			tr := obs.New()
			xb := mk()
			got := make([]float64, 64)
			root := tr.Root("run.mvm")
			gotCost, err := xb.MVMIntoCtx(root, got, in, noise.NewSource(3))
			root.End(gotCost)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("traced MVM output differs from untraced")
			}
			if gotCost != wantCost {
				t.Fatalf("traced cost %+v != untraced %+v", gotCost, wantCost)
			}
			spans := tr.Snapshot()
			found := false
			for _, s := range spans {
				if s.Name == "xbar.mvm" && s.Cost == wantCost {
					found = true
				}
			}
			if !found {
				t.Fatalf("no xbar.mvm span carrying the exact kernel cost (spans: %d)", len(spans))
			}
		})
	}
}

// BenchmarkCrossbarMVMTracingOff measures the Ctx-threaded MVM hot path
// with tracing disabled against the plain path — the disabled-tracer
// overhead budget (<5%, 0 allocs) that docs/OBSERVABILITY.md promises.
// `make bench-obs` records the wall-clock side of the same budget.
func BenchmarkCrossbarMVMTracingOff(b *testing.B) {
	for _, n := range []int{64, 256} {
		xb, in, dst := benchCrossbar(b, n)
		ns := noise.NewSource(1)
		b.Run(sizeName("plain", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := xb.MVMInto(dst, in, ns); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("ctx_off", n), func(b *testing.B) {
			var tr *obs.Tracer
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := xb.MVMIntoCtx(tr.Root("xbar.mvm"), dst, in, ns); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCrossbarMVMTracingOn is the enabled-tracer counterpart: every
// MVM records a root span (with per-block children), showing the full
// recording cost next to the disabled path.
func BenchmarkCrossbarMVMTracingOn(b *testing.B) {
	xb, in, dst := benchCrossbar(b, 256)
	ns := noise.NewSource(1)
	tr := obs.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Root("bench.mvm")
		cost, err := xb.MVMIntoCtx(sp, dst, in, ns)
		sp.End(cost)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() > 1<<20 {
			b.StopTimer()
			tr.Reset()
			b.StartTimer()
		}
	}
}

func sizeName(kind string, n int) string {
	return kind + "_" + itoa(n) + "x" + itoa(n)
}

// itoa avoids pulling strconv into the benchmark's hot file for two call
// sites.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
