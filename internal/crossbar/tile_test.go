package crossbar

import (
	"math"
	"math/rand"
	"testing"

	"cimrev/internal/faultinject"
	"cimrev/internal/noise"
)

func randomMatrix(rng *rand.Rand, m, n int) [][]float64 {
	w := make([][]float64, m)
	for r := range w {
		w[r] = make([]float64, n)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	return w
}

func randomVector(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

func TestTileSingleBlockMatchesCrossbar(t *testing.T) {
	cfg := smallConfig()
	tile, err := NewTile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	w := randomMatrix(rng, 8, 8)
	input := randomVector(rng, 8)

	if _, err := tile.Program(w); err != nil {
		t.Fatal(err)
	}
	if br, bc := tile.BlockGrid(); br != 1 || bc != 1 {
		t.Fatalf("block grid = %dx%d, want 1x1", br, bc)
	}

	got, _, err := tile.MVM(input, NoNoise)
	if err != nil {
		t.Fatal(err)
	}

	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xb.Program(w); err != nil {
		t.Fatal(err)
	}
	want, _, err := xb.MVM(input, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("col %d: tile %g != crossbar %g", i, got[i], want[i])
		}
	}
}

func TestTileMultiBlockAccuracy(t *testing.T) {
	cfg := smallConfig() // 16x16 arrays
	tile, err := NewTile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const m, n = 40, 33 // forces a 3x3 ragged block grid
	w := randomMatrix(rng, m, n)
	input := randomVector(rng, m)

	if _, err := tile.Program(w); err != nil {
		t.Fatal(err)
	}
	if br, bc := tile.BlockGrid(); br != 3 || bc != 3 {
		t.Fatalf("block grid = %dx%d, want 3x3", br, bc)
	}
	if tile.CrossbarCount() != 9 {
		t.Fatalf("CrossbarCount = %d, want 9", tile.CrossbarCount())
	}

	got, _, err := tile.MVM(input, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := (&Crossbar{}).IdealMVM(w, input)
	if err != nil {
		t.Fatal(err)
	}
	// Per-block scaling keeps the quantization error proportional to block
	// magnitudes; allow 5% of the accumulated scale.
	budget := 0.05 * float64(m)
	for c := range ref {
		if math.Abs(got[c]-ref[c]) > budget {
			t.Errorf("col %d: tile %g vs ideal %g (budget %g)", c, got[c], ref[c], budget)
		}
	}
}

func TestTileShape(t *testing.T) {
	tile, err := NewTile(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := tile.Program(randomMatrix(rng, 20, 5)); err != nil {
		t.Fatal(err)
	}
	r, c := tile.Shape()
	if r != 20 || c != 5 {
		t.Errorf("Shape = %dx%d, want 20x5", r, c)
	}
}

func TestTileErrors(t *testing.T) {
	tile, err := NewTile(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tile.Program(nil); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := tile.Program([][]float64{{}}); err == nil {
		t.Error("empty rows should fail")
	}
	if _, err := tile.Program([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, _, err := tile.MVM([]float64{1}, NoNoise); err == nil {
		t.Error("MVM before Program should fail")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := tile.Program(randomMatrix(rng, 4, 4)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tile.MVM([]float64{1, 2}, NoNoise); err == nil {
		t.Error("wrong input length should fail")
	}
}

func TestTileParallelBlockLatency(t *testing.T) {
	// A 2x-taller matrix uses 2x the crossbars but (blocks being parallel)
	// must NOT take 2x the MVM latency.
	cfg := smallConfig()
	rng := rand.New(rand.NewSource(5))

	lat := func(rows int) int64 {
		tile, err := NewTile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tile.Program(randomMatrix(rng, rows, 16)); err != nil {
			t.Fatal(err)
		}
		_, c, err := tile.MVM(randomVector(rng, rows), NoNoise)
		if err != nil {
			t.Fatal(err)
		}
		return c.LatencyPS
	}

	l16, l64 := lat(16), lat(64)
	if l64 > 2*l16 {
		t.Errorf("64-row MVM latency %d should be < 2x 16-row latency %d (parallel blocks)", l64, l16)
	}
}

func TestTileEnergyScalesWithBlocks(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewSource(5))

	eng := func(rows int) float64 {
		tile, err := NewTile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tile.Program(randomMatrix(rng, rows, 16)); err != nil {
			t.Fatal(err)
		}
		_, c, err := tile.MVM(randomVector(rng, rows), NoNoise)
		if err != nil {
			t.Fatal(err)
		}
		return c.EnergyPJ
	}

	if e64, e16 := eng(64), eng(16); e64 < 2*e16 {
		t.Errorf("64-row MVM energy %g should be >= 2x 16-row energy %g", e64, e16)
	}
}

func TestTileWrites(t *testing.T) {
	tile, err := NewTile(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if _, err := tile.Program(randomMatrix(rng, 32, 16)); err != nil {
		t.Fatal(err)
	}
	want := int64(32*16) * int64(tile.Config().slices())
	if got := tile.Writes(); got != want {
		t.Errorf("Writes = %d, want %d", got, want)
	}
}

func TestTileWearAccumulatesAcrossReprograms(t *testing.T) {
	tile, err := NewTile(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	w := randomMatrix(rng, 8, 8)
	if _, err := tile.Program(w); err != nil {
		t.Fatal(err)
	}
	once := tile.Writes()
	for i := 0; i < 4; i++ {
		if _, err := tile.Program(w); err != nil {
			t.Fatal(err)
		}
	}
	if got := tile.Writes(); got != 5*once {
		t.Errorf("writes after 5 programs = %d, want %d", got, 5*once)
	}
}

func TestTileWearSurvivesReshape(t *testing.T) {
	tile, err := NewTile(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if _, err := tile.Program(randomMatrix(rng, 8, 8)); err != nil {
		t.Fatal(err)
	}
	before := tile.Writes()
	// Reshape retires the old arrays but keeps their wear on the books.
	if _, err := tile.Program(randomMatrix(rng, 4, 4)); err != nil {
		t.Fatal(err)
	}
	after := tile.Writes()
	if after <= before {
		t.Errorf("reshape lost wear history: %d -> %d", before, after)
	}
}

// TestTileWearExactAcrossReshape pins the wear bookkeeping to the cell: a
// reshape retires the old arrays into pastWrites and the new shape adds
// exactly cells*slices fresh writes — no wear is double-counted and none
// evaporates, in either direction (shrink then regrow).
func TestTileWearExactAcrossReshape(t *testing.T) {
	tile, err := NewTile(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	slices := int64(tile.Config().slices())
	rng := rand.New(rand.NewSource(6))

	if _, err := tile.Program(randomMatrix(rng, 8, 8)); err != nil {
		t.Fatal(err)
	}
	w1 := tile.Writes()
	if want := int64(8*8) * slices; w1 != want {
		t.Fatalf("writes after first program = %d, want %d", w1, want)
	}

	// Shrink: old 8x8 arrays retire, fresh 4x4 arrays are written.
	if _, err := tile.Program(randomMatrix(rng, 4, 4)); err != nil {
		t.Fatal(err)
	}
	w2 := tile.Writes()
	if want := w1 + int64(4*4)*slices; w2 != want {
		t.Fatalf("writes after shrink = %d, want %d", w2, want)
	}

	// Regrow: wear from both retired generations stays on the books.
	if _, err := tile.Program(randomMatrix(rng, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if got, want := tile.Writes(), w2+int64(8*8)*slices; got != want {
		t.Fatalf("writes after regrow = %d, want %d", got, want)
	}
}

// TestTileWearSurvivesReshapeWithFaults runs the same retire-and-regrow
// cycle with fault injection active: retry pulses from program-and-verify
// are real wear, so lifetime Writes must stay strictly monotone across a
// reshape and exceed the fault-free count for the same shapes.
func TestTileWearSurvivesReshapeWithFaults(t *testing.T) {
	cfg := smallConfig()
	tile, err := NewTile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tile.SetFaults(faultinject.Model{WriteFailRate: 0.3, Seed: 9}, noise.NewSource(9)); err != nil {
		t.Fatal(err)
	}
	clean, err := NewTile(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(6))
	w := randomMatrix(rng, 8, 8)
	if _, err := tile.Program(w); err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Program(w); err != nil {
		t.Fatal(err)
	}
	faulty := tile.Writes()
	if faulty <= clean.Writes() {
		t.Fatalf("faulty writes %d not above clean %d: retry pulses uncounted", faulty, clean.Writes())
	}

	// Reshape under faults: retired wear (including retries) is preserved.
	if _, err := tile.Program(randomMatrix(rng, 4, 4)); err != nil {
		t.Fatal(err)
	}
	after := tile.Writes()
	if after <= faulty {
		t.Fatalf("reshape lost retry wear: %d -> %d", faulty, after)
	}
	if min := faulty + int64(4*4)*int64(cfg.slices()); after < min {
		t.Fatalf("writes after faulty reshape = %d, want >= %d", after, min)
	}
}

func TestTileReprogramKeepsResults(t *testing.T) {
	// Reused arrays must compute with the new weights, not stale ones.
	tile, err := NewTile(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w1 := [][]float64{{1, 0}, {0, 1}}
	w2 := [][]float64{{0, 1}, {1, 0}}
	if _, err := tile.Program(w1); err != nil {
		t.Fatal(err)
	}
	if _, err := tile.Program(w2); err != nil {
		t.Fatal(err)
	}
	out, _, err := tile.MVM([]float64{1, 0}, NoNoise)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]) > 0.1 || math.Abs(out[1]-1) > 0.1 {
		t.Errorf("reprogrammed MVM = %v, want ~[0 1]", out)
	}
}
