//go:build !race

package crossbar

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
