package crossbar

import (
	"fmt"
	"sync"

	"cimrev/internal/energy"
	"cimrev/internal/faultinject"
	"cimrev/internal/noise"
	"cimrev/internal/obs"
	"cimrev/internal/parallel"
)

// Tile aggregates a grid of crossbars to hold matrices larger than one
// array, mirroring the paper's Fig 5 hierarchy (micro-units composed into
// units and tiles). An M x N matrix is split into ceil(M/Rows) x
// ceil(N/Cols) blocks; block results merge with digital adds. All blocks
// compute in parallel (each owns its arrays and converters), so MVM latency
// is one block MVM plus the merge, while energy sums across blocks.
//
// The simulator mirrors the hardware's spatial parallelism: independent
// blocks of Program and MVM fan out across the internal/parallel worker
// pool, with per-block results merged in fixed (row, column) order so cost
// totals and outputs are bit-identical to serial execution at any pool
// width. Analog read noise no longer forces sequential evaluation: each
// block derives its own counter-based noise stream (ns.Derive(blockIndex)),
// so the draw applied to any (block, bit, slice, column) is a pure function
// of position, not of goroutine schedule (see internal/noise and
// docs/PARALLELISM.md). A Tile's mutating methods are not safe for
// concurrent use from multiple goroutines, while MVM on a programmed tile —
// noisy or not — is read-only and may be called concurrently.
type Tile struct {
	cfg        Config
	blocks     [][]*Crossbar // blocks[br][bc]
	rows, cols int           // programmed logical dims
	programmed bool
	// pastWrites preserves wear from arrays discarded by a reshaping
	// reprogram, so lifetime write counts survive reconfiguration.
	pastWrites int64
	// faults / faultSrc configure device-fault injection for every block:
	// block b derives the child source faultSrc.Derive(b), so fault
	// positions are a pure function of (tile source, block, cell) and
	// parallel block programming is bit-identical to serial.
	faults   faultinject.Model
	faultSrc noise.Source
	// scratch pools per-MVM block outputs and costs so steady-state tile
	// MVMs stop allocating a slab per call. Pooled (not a plain field)
	// because a programmed tile may serve concurrent MVMs. batchScratch
	// is the same for the batched dispatch path (tile_batch.go).
	scratch      sync.Pool
	batchScratch sync.Pool
}

// tileScratch is the reusable per-MVM workspace for a tile: one output
// slab (stride cfg.Cols per block) and one cost slot per block.
type tileScratch struct {
	outs  []float64
	costs []energy.Cost
}

// NewTile returns an empty tile that will allocate crossbars on Program.
func NewTile(cfg Config) (*Tile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tile{cfg: cfg}, nil
}

// Config returns the tile's per-crossbar configuration.
func (t *Tile) Config() Config { return t.cfg }

// Shape returns the programmed logical matrix dimensions.
func (t *Tile) Shape() (rows, cols int) { return t.rows, t.cols }

// BlockGrid returns the crossbar grid dimensions.
func (t *Tile) BlockGrid() (brows, bcols int) {
	if len(t.blocks) == 0 {
		return 0, 0
	}
	return len(t.blocks), len(t.blocks[0])
}

// CrossbarCount returns the number of physical crossbars in use.
func (t *Tile) CrossbarCount() int {
	br, bc := t.BlockGrid()
	return br * bc
}

// SetFaults installs a device-fault model for every block of the tile,
// effective from the next Program. Each block derives its own child fault
// source by block index, so which cells are stuck never depends on pool
// width or programming order. A zero model disables injection.
func (t *Tile) SetFaults(m faultinject.Model, src noise.Source) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.Enabled() && !src.Valid() {
		return fmt.Errorf("crossbar: enabled fault model requires a fault source")
	}
	t.faults = m
	t.faultSrc = src
	return nil
}

// FaultsEnabled reports whether device-fault injection is active.
func (t *Tile) FaultsEnabled() bool { return t.faults.Enabled() }

// FaultReport aggregates the per-block fault reports of the most recent
// Program pass in fixed (block-row, block-col) order.
func (t *Tile) FaultReport() faultinject.Report {
	var rep faultinject.Report
	for _, row := range t.blocks {
		for _, b := range row {
			rep.Add(b.FaultReport())
		}
	}
	return rep
}

// Writes returns total lifetime cell-programming operations, including
// wear on arrays retired by reshaping reprograms.
func (t *Tile) Writes() int64 {
	n := t.pastWrites
	for _, row := range t.blocks {
		for _, b := range row {
			n += b.Writes()
		}
	}
	return n
}

// Program loads an arbitrary M x N matrix, allocating the block grid. It
// returns the programming cost: blocks program in parallel (latency = max
// block latency), energy sums.
func (t *Tile) Program(w [][]float64) (energy.Cost, error) {
	return t.ProgramCtx(obs.Ctx{}, w)
}

// ProgramCtx is Program under a trace span: the whole tile write is a
// "tile.program" child of pc, with one "xbar.program" grandchild per block
// (blocks program from pool workers; span recording is concurrency-safe).
// A zero Ctx traces nothing.
func (t *Tile) ProgramCtx(pc obs.Ctx, w [][]float64) (energy.Cost, error) {
	m := len(w)
	if m == 0 {
		return energy.Zero, fmt.Errorf("crossbar: empty weight matrix")
	}
	n := len(w[0])
	if n == 0 {
		return energy.Zero, fmt.Errorf("crossbar: empty weight rows")
	}
	for r, row := range w {
		if len(row) != n {
			return energy.Zero, fmt.Errorf("crossbar: ragged matrix at row %d", r)
		}
	}

	sp := pc.Child("tile.program")

	brows := (m + t.cfg.Rows - 1) / t.cfg.Rows
	bcols := (n + t.cfg.Cols - 1) / t.cfg.Cols

	// Same logical shape: reprogram the existing arrays in place so wear
	// accumulates on the physical cells. A reshape retires the old arrays
	// (their wear is preserved in pastWrites) and allocates fresh ones.
	reuse := t.programmed && t.rows == m && t.cols == n
	if !reuse {
		for _, row := range t.blocks {
			for _, b := range row {
				t.pastWrites += b.Writes()
			}
		}
		t.blocks = make([][]*Crossbar, brows)
		for br := range t.blocks {
			t.blocks[br] = make([]*Crossbar, bcols)
		}
	}

	// Blocks are independent (each owns its arrays), so programming fans
	// out across the worker pool; per-block costs are folded afterwards in
	// fixed (br, bc) order so the accumulated energy is bit-identical to a
	// serial run at any pool width.
	blockCosts := make([]energy.Cost, brows*bcols)
	err := parallel.ForErr(brows*bcols, func(b int) error {
		br, bc := b/bcols, b%bcols
		r0 := br * t.cfg.Rows
		r1 := min(r0+t.cfg.Rows, m)
		c0 := bc * t.cfg.Cols
		c1 := min(c0+t.cfg.Cols, n)
		sub := make([][]float64, r1-r0)
		for r := r0; r < r1; r++ {
			sub[r-r0] = w[r][c0:c1]
		}
		xb := t.blocks[br][bc]
		if xb == nil {
			var err error
			xb, err = New(t.cfg)
			if err != nil {
				return err
			}
			t.blocks[br][bc] = xb
		}
		// (Re)install the fault model before programming: block b keys
		// its faults off the derived child source, so stuck positions are
		// stable across reprograms and pool widths. Idempotent when the
		// model is unchanged; a zero model is a disable.
		bsrc := NoNoise
		if t.faultSrc.Valid() {
			bsrc = t.faultSrc.Derive(uint64(b))
		}
		if err := xb.SetFaults(t.faults, bsrc); err != nil {
			return fmt.Errorf("crossbar: block (%d,%d) faults: %w", br, bc, err)
		}
		c, err := xb.ProgramCtx(sp, sub)
		if err != nil {
			return fmt.Errorf("crossbar: program block (%d,%d): %w", br, bc, err)
		}
		blockCosts[b] = c
		return nil
	})
	if err != nil {
		sp.End(energy.Zero)
		return energy.Zero, err
	}
	cost := energy.Zero
	for _, c := range blockCosts {
		cost = cost.Par(c)
	}
	t.rows, t.cols = m, n
	t.programmed = true
	if sp.Active() {
		sp.Annotate("blocks", float64(brows*bcols))
	}
	sp.End(cost)
	return cost, nil
}

// MVM computes y = W · input across the block grid. Blocks run in parallel
// regardless of noise: block b draws from the derived stream ns.Derive(b),
// so noisy outputs are bit-identical at any worker-pool width. Partial
// results for each column-block are merged with digital adds in fixed
// (br, bc) order.
func (t *Tile) MVM(input []float64, ns noise.Source) ([]float64, energy.Cost, error) {
	return t.MVMCtx(obs.Ctx{}, input, ns)
}

// MVMCtx is MVM under a trace span: the tile-level MVM is a "tile.mvm"
// child of pc with one "xbar.mvm" grandchild per block. With a zero Ctx it
// is the plain kernel plus per-block nil-check branches — the serving hot
// path stays allocation-free when tracing is off.
func (t *Tile) MVMCtx(pc obs.Ctx, input []float64, ns noise.Source) ([]float64, energy.Cost, error) {
	sp := pc.Child("tile.mvm")
	out, cost, err := t.mvm(sp, input, ns)
	sp.End(cost)
	return out, cost, err
}

func (t *Tile) mvm(sp obs.Ctx, input []float64, ns noise.Source) ([]float64, energy.Cost, error) {
	if !t.programmed {
		return nil, energy.Zero, fmt.Errorf("crossbar: tile MVM before Program")
	}
	if len(input) != t.rows {
		return nil, energy.Zero, fmt.Errorf("crossbar: input length %d != rows %d", len(input), t.rows)
	}

	brows, bcols := t.BlockGrid()
	nb := brows * bcols
	s := t.getScratch(nb)
	defer t.scratch.Put(s)

	// Evaluate the independent blocks, fanning out across the worker pool.
	// Each block writes its partial result into a private stripe of the
	// pooled slab via MVMInto (no per-block allocation), and noisy blocks
	// consume their own derived stream, so no state is shared between
	// goroutines. The merge below runs in fixed order, so outputs and cost
	// totals are bit-identical to serial execution at any pool width.
	stride := t.cfg.Cols
	err := parallel.ForErr(nb, func(b int) error {
		br, bc := b/bcols, b%bcols
		r0 := br * t.cfg.Rows
		r1 := min(r0+t.cfg.Rows, t.rows)
		c0 := bc * t.cfg.Cols
		c1 := min(c0+t.cfg.Cols, t.cols)
		bns := NoNoise
		if ns.Valid() {
			bns = ns.Derive(uint64(b))
		}
		dst := s.outs[b*stride : b*stride+(c1-c0)]
		c, err := t.blocks[br][bc].MVMIntoCtx(sp, dst, input[r0:r1], bns)
		if err != nil {
			return fmt.Errorf("crossbar: block (%d,%d) MVM: %w", br, bc, err)
		}
		s.costs[b] = c
		return nil
	})
	if err != nil {
		return nil, energy.Zero, err
	}

	// Deterministic reduction: digital adds in (br, bc) order.
	out := make([]float64, t.cols)
	cost := energy.Zero
	for b := 0; b < nb; b++ {
		cost = cost.Par(s.costs[b])
		c0 := (b % bcols) * t.cfg.Cols
		c1 := min(c0+t.cfg.Cols, t.cols)
		stripe := s.outs[b*stride : b*stride+(c1-c0)]
		for i, v := range stripe {
			out[c0+i] += v
		}
	}
	// Digital merge: one add per partial element beyond the first block row.
	if brows > 1 {
		merges := int64(brows-1) * int64(t.cols)
		cost = cost.Seq(energy.Cost{
			LatencyPS: energy.EDRAMAccessLatencyPS,
			EnergyPJ:  float64(merges) * energy.ShiftAddEnergyPJ,
		})
	}
	return out, cost, nil
}

// getScratch pops (or grows) a pooled workspace sized for nb blocks.
func (t *Tile) getScratch(nb int) *tileScratch {
	s, _ := t.scratch.Get().(*tileScratch)
	if s == nil {
		s = &tileScratch{}
	}
	if need := nb * t.cfg.Cols; cap(s.outs) < need {
		s.outs = make([]float64, need)
	} else {
		s.outs = s.outs[:need]
	}
	if cap(s.costs) < nb {
		s.costs = make([]energy.Cost, nb)
	} else {
		s.costs = s.costs[:nb]
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
