//go:build race

package crossbar

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately drops cached items to shake out lifecycle bugs,
// so allocation-count assertions are not meaningful there.
const raceEnabled = true
