// Package crossbar models memristive crossbar arrays computing analog
// matrix-vector multiplication (MVM) in place — the computational primitive
// behind the paper's Dot Product Engine (Section VI) and its ISAAC ancestor
// [49].
//
// The model is honest about the analog pipeline:
//
//   - Weights are quantized to WeightBits and bit-sliced across multiple
//     physical arrays holding CellBits each (ISAAC stores 2 bits/cell).
//   - Inputs are quantized to InputBits and streamed one bit per array
//     cycle through 1-bit DACs.
//   - Each cycle, every active column's analog current sum is digitized by
//     an ADC with ADCBits resolution, which clips and quantizes.
//   - Gaussian read noise perturbs each analog column sum.
//   - Partial sums merge digitally with shift-and-add.
//
// Signed values use shift encoding: w01 = (w+1)/2 on the array, with the
// digital backend removing the offset using stored column sums. This is the
// standard trick for unipolar conductances and lets one array serve signed
// arithmetic.
//
// # Kernel layout
//
// The simulator's MVM kernel is organized for locality and zero
// steady-state allocation (see docs/PERF.md for measurements):
//
//   - Slice levels are stored column-major (sliceT[s][c*Rows+r]), so the
//     row reduction for a column is a contiguous scan.
//   - When the shape allows (≤4 slices, no 16-bit lane overflow), slices
//     are additionally packed into 16-bit lanes of one word per cell
//     (packedT), so the bit-serial gather reads every slice of a cell at
//     once and the per-slice column sums fall out of lane extraction.
//   - Active-row index lists are built once per MVM per input bit, so the
//     bit-serial loop only touches rows whose input bit is set instead of
//     testing every (row, column) cell.
//   - Shift-and-add scales come from a precomputed power-of-two table.
//   - Working buffers live in a per-crossbar sync.Pool; noise-free MVMs on
//     a programmed crossbar are read-only and safe to run concurrently.
//
// Analog read noise comes from a counter-based internal/noise Source: the
// perturbation applied to (input bit b, slice s, column c) is a pure
// function of the caller-provided source and that position, so noisy MVMs
// are bit-identical at any worker-pool width and need no draw-order
// serialization.
//
// Costs follow the constants in internal/energy. Programming (weight
// updates) is three orders of magnitude slower than reading — the write
// asymmetry Section VI names as the main scaling challenge.
package crossbar

import (
	"fmt"
	"math"
	"sync"

	"cimrev/internal/energy"
	"cimrev/internal/faultinject"
	"cimrev/internal/noise"
	"cimrev/internal/obs"
)

// NoNoise is the zero noise source, for MVMs on noise-free configurations.
// Passing it with ReadNoise > 0 is an error, exactly as a nil *rand.Rand
// was before the counter-based generator.
var NoNoise noise.Source

// Config describes one logical crossbar: a stack of bit-slice arrays plus
// converter resolutions.
type Config struct {
	// Rows and Cols are the physical array dimensions.
	Rows, Cols int
	// CellBits is the number of weight bits stored per cell.
	CellBits int
	// WeightBits is the total weight resolution; must be a multiple of
	// CellBits. WeightBits/CellBits physical arrays form one logical
	// crossbar.
	WeightBits int
	// InputBits is the DAC input resolution; inputs stream one bit per
	// cycle.
	InputBits int
	// ADCBits is the column ADC resolution. It must be at least 1:
	// Validate rejects 0 at New time rather than letting a zero step
	// silently degrade quantization in the kernel.
	ADCBits int
	// ReadNoise is the relative std-dev of analog column-sum noise.
	ReadNoise float64
	// Functional selects the fast functional-simulation mode: the MVM
	// result is computed from exact integer arithmetic (no per-cycle ADC
	// quantization or noise) while the cost model stays identical. Large
	// benchmark sweeps use it; accuracy studies keep the default
	// bit-serial mode.
	Functional bool
	// SpareCols is the number of spare physical columns held in reserve
	// beyond Cols for fault repair: when device-fault injection is active
	// (SetFaults), the post-program self-test remaps logical columns with
	// unrepairable cells onto spares. With no fault model the spares are
	// inert. Zero disables remapping.
	SpareCols int
}

// DefaultConfig returns the ISAAC-scale configuration: 128x128 arrays,
// 2-bit cells, 8-bit weights (4 slices), 8-bit inputs, 8-bit ADCs.
func DefaultConfig() Config {
	return Config{
		Rows:       128,
		Cols:       128,
		CellBits:   2,
		WeightBits: 8,
		InputBits:  8,
		ADCBits:    8,
		ReadNoise:  0.0,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("crossbar: dimensions must be positive, got %dx%d", c.Rows, c.Cols)
	case c.CellBits < 1 || c.CellBits > 8:
		return fmt.Errorf("crossbar: CellBits must be in [1,8], got %d", c.CellBits)
	case c.WeightBits < c.CellBits || c.WeightBits%c.CellBits != 0:
		return fmt.Errorf("crossbar: WeightBits (%d) must be a positive multiple of CellBits (%d)", c.WeightBits, c.CellBits)
	case c.WeightBits > 16:
		return fmt.Errorf("crossbar: WeightBits must be <= 16, got %d", c.WeightBits)
	case c.InputBits < 1 || c.InputBits > 16:
		return fmt.Errorf("crossbar: InputBits must be in [1,16], got %d", c.InputBits)
	case c.ADCBits < 1 || c.ADCBits > 16:
		return fmt.Errorf("crossbar: ADCBits must be in [1,16], got %d (an ADC needs at least one bit; 0 would collapse the quantization step)", c.ADCBits)
	case c.ReadNoise < 0:
		return fmt.Errorf("crossbar: ReadNoise must be non-negative, got %g", c.ReadNoise)
	case c.SpareCols < 0:
		return fmt.Errorf("crossbar: SpareCols must be non-negative, got %d", c.SpareCols)
	}
	return nil
}

// slices returns the number of physical bit-slice arrays.
func (c Config) slices() int { return c.WeightBits / c.CellBits }

// mvmScratch holds the per-MVM working set. Instances cycle through the
// crossbar's pool so steady-state MVMs allocate nothing.
type mvmScratch struct {
	// xInt is the quantized, shift-encoded input.
	xInt []int32
	// acc accumulates shift-added partial sums per column.
	acc []float64
	// active holds the concatenated active-row lists, one run per input
	// bit; activeStart[b] is the offset of bit b's run (activeStart has
	// InputBits+1 entries).
	active      []int32
	activeStart []int32
}

// Crossbar is one logical crossbar: slices() physical arrays of Rows x Cols
// cells. Programming mutates the crossbar and must not race with reads, but
// MVM on a programmed crossbar is read-only (working state lives in pooled
// scratch), so concurrent MVMs — the tiled/batched hot path — are safe.
type Crossbar struct {
	cfg       Config
	numSlices int

	// sliceT[s][c*Rows+r] holds the CellBits-wide slice s of the shifted,
	// quantized weight at (r, c) — column-major, so the per-column row
	// reduction in the MVM kernel is a contiguous scan.
	sliceT [][]uint8

	// packedT[c*Rows+r], when non-nil, packs every slice level of cell
	// (r, c) into 16-bit lanes of one word (slice s at bit 16*s). The
	// bit-serial kernel then loads all slices of a cell with a single
	// gather and reads the per-slice column sums out of the lanes — exact
	// integer arithmetic, bit-identical to the slice-at-a-time path.
	// Program leaves it nil when the lanes don't fit: more than 4 slices,
	// or cellMax*usedRows overflowing 16 bits.
	packedT []uint64

	// colSumInt[c] is the column sum of integer weights, stored at program
	// time for digital offset removal.
	colSumInt []int64

	// usedRows and usedCols are the programmed submatrix dimensions.
	usedRows, usedCols int

	// wScale restores programmed weights to their original range.
	wScale float64

	// adcStep and adcMaxSum are the ADC transfer function for the
	// programmed shape: the ADC clips column sums to adcMaxSum and
	// quantizes in steps of adcStep. Both are fixed at Program time.
	adcStep, adcMaxSum float64

	// adcLUT[v] = Round(v/adcStep)*adcStep for every integer column sum
	// v ∈ [0, adcMaxSum]. Noise-free column sums are integers bounded by
	// adcMaxSum = usedRows·cellMax, so the batch kernels replace the
	// divide-and-round ADC transfer with one table load — exact, because
	// each entry is computed with the serial kernels' own expression.
	adcLUT []float64

	// scaleTab[k] = 2^k, the shift-and-add merge factors, indexed by
	// inputBit + slice*CellBits.
	scaleTab []float64

	// writes counts cell programming operations (wear). With fault
	// injection active it counts real program pulses, including every
	// program-and-verify retry — repairs are never free.
	writes int64

	programmed bool

	// faults / faultSrc configure device-fault injection (SetFaults).
	// faultEpoch counts Program passes so transient write-failure draws
	// re-roll per pass while permanent faults stay pinned to positions.
	// faultReport is the blast-radius record of the latest Program.
	faults      faultinject.Model
	faultSrc    noise.Source
	faultEpoch  uint64
	faultReport faultinject.Report

	// scratch pools *mvmScratch so concurrent MVMs on one crossbar don't
	// contend on a shared buffer and steady-state MVMs don't allocate.
	// batchScratch does the same for the 2-D arenas of the batched kernels
	// (batch.go). Both pools size buffers against the *current* programmed
	// shape on every Get — capacity grows monotonically and lengths are
	// re-sliced per call — so a crossbar reprogrammed across different
	// shapes can never hand back an undersized scratch from an earlier,
	// smaller configuration (TestScratchReuseAcrossReshapes pins this).
	scratch      sync.Pool
	batchScratch sync.Pool
}

// New returns an unprogrammed crossbar.
func New(cfg Config) (*Crossbar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Rows * cfg.Cols
	sl := make([][]uint8, cfg.slices())
	for i := range sl {
		sl[i] = make([]uint8, n)
	}
	// Largest shift-add exponent: (InputBits-1) + (slices-1)*CellBits.
	scaleTab := make([]float64, cfg.InputBits+cfg.WeightBits)
	for i := range scaleTab {
		scaleTab[i] = float64(int64(1) << uint(i))
	}
	return &Crossbar{
		cfg:       cfg,
		numSlices: cfg.slices(),
		sliceT:    sl,
		colSumInt: make([]int64, cfg.Cols),
		scaleTab:  scaleTab,
	}, nil
}

// Config returns the crossbar configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// Programmed reports whether weights have been loaded.
func (x *Crossbar) Programmed() bool { return x.programmed }

// UsedShape returns the programmed submatrix dimensions (rows, cols).
func (x *Crossbar) UsedShape() (int, int) { return x.usedRows, x.usedCols }

// Writes returns the total cell-programming count (wear indicator).
func (x *Crossbar) Writes() int64 { return x.writes }

// WeightScale returns the scale factor that maps stored normalized weights
// back to the caller's range.
func (x *Crossbar) WeightScale() float64 { return x.wScale }

// SetFaults installs a device-fault model, effective from the next Program
// pass. src keys every fault decision positionally (see internal/faultinject);
// tiles derive one child per block so sweeps stay bit-identical at any
// worker-pool width. Passing a zero Model disables injection. Installing an
// enabled model requires a valid source.
func (x *Crossbar) SetFaults(m faultinject.Model, src noise.Source) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.Enabled() && !src.Valid() {
		return fmt.Errorf("crossbar: enabled fault model requires a fault source")
	}
	x.faults = m
	x.faultSrc = src
	return nil
}

// FaultsEnabled reports whether device-fault injection is active.
func (x *Crossbar) FaultsEnabled() bool { return x.faults.Enabled() }

// FaultReport returns the fault-handling record of the most recent Program
// pass: stuck/drifting cells encountered, retry pulses charged, columns
// remapped to spares, and columns lost past spare exhaustion. Zero when
// fault injection is disabled or before Program.
func (x *Crossbar) FaultReport() faultinject.Report { return x.faultReport }

// FaultEpoch returns how many Program passes have run with fault injection
// active (the endurance clock the drift model compounds against).
func (x *Crossbar) FaultEpoch() uint64 { return x.faultEpoch }

// Program loads the weight matrix w (w[r][c], at most Rows x Cols). Weights
// may be any finite values; the crossbar normalizes by max |w|. Shape and
// finiteness are validated before any crossbar state changes. It returns
// the programming cost: rows are written in parallel across columns but
// serially row by row and slice stacks in parallel, so latency is
// usedRows x write-latency, and energy covers every programmed cell.
func (x *Crossbar) Program(w [][]float64) (energy.Cost, error) {
	return x.program(w)
}

// ProgramCtx is Program under a trace span: the write (including the full
// program-and-verify pulse train on the fault path) is recorded as an
// "xbar.program" child of pc, annotated with the pulse/verify/remap blast
// radius. A zero Ctx reduces to Program plus two branches.
func (x *Crossbar) ProgramCtx(pc obs.Ctx, w [][]float64) (energy.Cost, error) {
	sp := pc.Child("xbar.program")
	cost, err := x.program(w)
	if sp.Active() {
		sp.Annotate("rows", float64(x.usedRows))
		sp.Annotate("cols", float64(x.usedCols))
		if x.faults.Enabled() {
			rep := x.faultReport
			sp.Annotate("retry_pulses", float64(rep.RetryPulses))
			sp.Annotate("remapped_cols", float64(rep.RemappedCols))
			sp.Annotate("lost_cols", float64(rep.LostCols))
		}
	}
	sp.End(cost)
	return cost, err
}

func (x *Crossbar) program(w [][]float64) (energy.Cost, error) {
	if len(w) == 0 || len(w) > x.cfg.Rows {
		return energy.Zero, fmt.Errorf("crossbar: weight rows %d outside [1,%d]", len(w), x.cfg.Rows)
	}
	cols := len(w[0])
	if cols == 0 || cols > x.cfg.Cols {
		return energy.Zero, fmt.Errorf("crossbar: weight cols %d outside [1,%d]", cols, x.cfg.Cols)
	}
	// Fail fast: ragged/NaN/Inf checks complete before quantization starts
	// or any stored state is touched.
	wScale := 0.0
	for r, row := range w {
		if len(row) != cols {
			return energy.Zero, fmt.Errorf("crossbar: ragged weight matrix at row %d (%d != %d)", r, len(row), cols)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return energy.Zero, fmt.Errorf("crossbar: non-finite weight at row %d", r)
			}
			if a := math.Abs(v); a > wScale {
				wScale = a
			}
		}
	}
	if wScale == 0 {
		wScale = 1 // all-zero matrix programs cleanly
	}

	wMax := float64(int(1)<<x.cfg.WeightBits - 1)
	cellMask := uint8(1<<x.cfg.CellBits - 1)
	for i := range x.colSumInt {
		x.colSumInt[i] = 0
	}
	for _, sl := range x.sliceT {
		for i := range sl {
			sl[i] = 0
		}
	}
	faulty := x.faults.Enabled()
	// wIntT holds the desired quantized integer weight per cell,
	// column-major — the reference pattern program-and-verify checks the
	// stored levels against. Only materialized on the fault path; the
	// fault-free path writes slice levels directly, exactly as before.
	var wIntT []int32
	if faulty {
		wIntT = make([]int32, cols*len(w))
	}
	for r := 0; r < len(w); r++ {
		for c := 0; c < cols; c++ {
			w01 := (w[r][c]/wScale + 1) / 2 // shift encode into [0,1]
			wInt := int(math.Round(w01 * wMax))
			x.colSumInt[c] += int64(wInt)
			if faulty {
				wIntT[c*len(w)+r] = int32(wInt)
				continue
			}
			for s := 0; s < x.numSlices; s++ {
				shift := uint(s * x.cfg.CellBits)
				x.sliceT[s][c*x.cfg.Rows+r] = uint8(wInt>>shift) & cellMask
			}
		}
	}
	x.usedRows, x.usedCols = len(w), cols
	x.wScale = wScale

	// Device-fault path: per-cell program-and-verify with escalating
	// retry pulses, then the built-in self-test scan and spare-column
	// remapping. Fills sliceT with the *stored* (possibly faulty) levels;
	// colSumInt keeps the intended sums — the digital backend removes the
	// offset it programmed, and any analog deviation from stuck or
	// drifting cells shows up as output error, exactly like hardware.
	var pulses, verifies int64
	if faulty {
		pulses, verifies = x.programAndVerify(wIntT, cellMask)
	}

	// Pack slice levels into 16-bit lanes when they fit (≤4 slices and no
	// possible lane overflow): the bit-serial kernel then gathers each
	// active cell once instead of once per slice.
	cellMaxInt := int(1)<<x.cfg.CellBits - 1
	if x.numSlices <= 4 && cellMaxInt*x.usedRows <= 0xFFFF {
		n := x.cfg.Rows * x.cfg.Cols
		if cap(x.packedT) < n {
			x.packedT = make([]uint64, n)
		}
		x.packedT = x.packedT[:n]
		for i := range x.packedT {
			x.packedT[i] = 0
		}
		for s := 0; s < x.numSlices; s++ {
			shift := uint(16 * s)
			for i, lv := range x.sliceT[s] {
				x.packedT[i] |= uint64(lv) << shift
			}
		}
	} else {
		x.packedT = nil
	}

	// ADC transfer function for one cycle+slice: the largest possible
	// column sum is usedRows * cellMax; the ADC quantizes [0, adcMaxSum]
	// into 2^ADCBits levels. Validate guarantees ADCBits >= 1 and Rows >=
	// 1, so the step is always positive — there is deliberately no runtime
	// fallback here (a zero step would mean a broken config, which New
	// rejects).
	cellMax := float64(int(1)<<x.cfg.CellBits - 1)
	x.adcMaxSum = float64(x.usedRows) * cellMax
	x.adcStep = x.adcMaxSum / float64(int(1)<<x.cfg.ADCBits-1)

	// Tabulate the ADC transfer for every integer column sum. adcMaxSum is
	// an exact integer (usedRows · cellMax), so the table covers all
	// noise-free sums; entries reuse the serial kernels' exact expression.
	if need := int(x.adcMaxSum) + 1; cap(x.adcLUT) < need {
		x.adcLUT = make([]float64, need)
	} else {
		x.adcLUT = x.adcLUT[:need]
	}
	for v := range x.adcLUT {
		x.adcLUT[v] = math.Round(float64(v)/x.adcStep) * x.adcStep
	}

	x.programmed = true

	cells := int64(len(w)) * int64(cols) * int64(x.numSlices)
	if faulty {
		// Program-and-verify cost: every pulse is a real memristor write
		// and every verify a real read-back — retries and spare-column
		// reprogramming are charged, never free. Latency: rows write in
		// parallel across columns but serially row by row, each row wave
		// now followed by its verify read; every retry pulse and every
		// spare-column pulse beyond the base grid serializes on top.
		x.faultEpoch++
		x.writes += pulses
		extraPulses := pulses - cells
		extraVerifies := verifies - cells
		return energy.Cost{
			LatencyPS: int64(len(w))*(energy.CrossbarWriteLatencyPS+energy.CrossbarReadLatencyPS) +
				extraPulses*energy.CrossbarWriteLatencyPS +
				extraVerifies*energy.CrossbarReadLatencyPS,
			EnergyPJ: float64(pulses)*energy.CrossbarWriteEnergyPJ +
				float64(verifies)*energy.CrossbarCellReadEnergyPJ,
		}, nil
	}
	x.faultReport = faultinject.Report{}
	x.writes += cells
	return energy.Cost{
		LatencyPS: int64(len(w)) * energy.CrossbarWriteLatencyPS,
		EnergyPJ:  float64(cells) * energy.CrossbarWriteEnergyPJ,
	}, nil
}

// maxPulseTrains bounds the program-and-verify loop: one initial pulse,
// then escalating retry trains of 2, 4, 8, 16, and 32 pulses (63 pulses
// total) before the controller gives up on a cell. Escalation mirrors real
// RRAM program-and-verify controllers, which raise pulse count/amplitude
// on each failed verify.
const maxPulseTrains = 6

// programAndVerify simulates the honest write loop for every cell of the
// desired pattern wIntT (column-major, usedRows stride), then runs the
// built-in self-test and spare-column remapping:
//
//   - Each physical cell is erased and programmed with an escalating
//     pulse train; after each train a verify read compares the stored
//     level against the known desired level. Transient pulse failures
//     (faultinject.PulseFails) retry; stuck cells never verify.
//   - The BIST scan is exactly that per-cell verify against the known
//     written pattern (equivalent to marching test vectors over the
//     column): a column with any unverified cell is bad.
//   - Bad logical columns remap to spare physical columns (Config.
//     SpareCols), which are themselves programmed-and-verified — a bad
//     spare is consumed and skipped. When spares run out the column is
//     lost: its corrupted stored levels stay visible to MVM and the
//     report says so (degradation is never silent).
//
// Stored levels land in sliceT at the *logical* column slot (the remap is
// resolved at program time, so the MVM kernels run unmodified), and
// endurance drift attenuates verified levels after the fact — drift is a
// retention effect the write verify cannot see. Returns total pulses and
// verify reads for the cost ledger; the blast-radius record lands in
// x.faultReport.
// cellPos packs a physical cell coordinate (bit-slice, physical column,
// row) into the fault-stream index. The packing is bit-field, not
// stride-based, so a cell's fault draws depend only on its coordinate —
// never on the array's column count or spare budget. That makes sweeps
// over Config.SpareCols apples-to-apples: growing the budget adds spare
// columns with their own faults but cannot move the faults already pinned
// to the primary grid. 20-bit fields bound rows and physical columns at
// 2^20, far beyond any simulated array.
func cellPos(s, phys, r int) uint64 {
	return uint64(s)<<40 | uint64(phys)<<20 | uint64(r)
}

func (x *Crossbar) programAndVerify(wIntT []int32, cellMask uint8) (pulses, verifies int64) {
	rows := x.usedRows
	physCols := x.cfg.Cols + x.cfg.SpareCols
	rep := faultinject.Report{}
	// stored holds one candidate physical column's levels, slice-major
	// (s*rows + r), before being committed to the logical slot.
	stored := make([]uint8, x.numSlices*rows)

	// programColumn simulates programming the desired logical pattern
	// into physical column phys, returning whether every cell verified.
	programColumn := func(c, phys int) bool {
		ok := true
		for s := 0; s < x.numSlices; s++ {
			shift := uint(s * x.cfg.CellBits)
			for r := 0; r < rows; r++ {
				want := uint8(wIntT[c*rows+r]>>shift) & cellMask
				pos := cellPos(s, phys, r)
				fault := x.faults.Cell(x.faultSrc, pos)
				var level uint8
				cellOK := false
				switch fault {
				case faultinject.StuckLow:
					rep.StuckCells++
					level = 0
					cellOK = want == 0
				case faultinject.StuckHigh:
					rep.StuckCells++
					level = cellMask
					cellOK = want == cellMask
				default:
					if fault == faultinject.Drifter {
						rep.DriftCells++
					}
					// The cell starts from its erased (level-0) state; a
					// train settles it iff any pulse in the train lands.
					level = 0
					cellOK = want == 0
				}
				var pulse uint64
				train := 1
				for t := 0; t < maxPulseTrains; t++ {
					for p := 0; p < train; p++ {
						if fault == faultinject.None || fault == faultinject.Drifter {
							if !x.faults.PulseFails(x.faultSrc, pos, x.faultEpoch, pulse) {
								level = want
							}
						}
						pulse++
					}
					verifies++
					if level == want {
						cellOK = true
					}
					if cellOK {
						break
					}
					train *= 2
				}
				pulses += int64(pulse)
				rep.RetryPulses += int64(pulse) - 1
				if !cellOK {
					ok = false
				}
				// Endurance drift: verified analog levels relax after the
				// write settles, compounding per program epoch. The verify
				// loop cannot see it — only a later health scan can.
				if fault == faultinject.Drifter && cellOK && level > 0 {
					f := x.faults.DriftFactor(x.faultSrc, pos, x.faultEpoch+1)
					level = uint8(math.Round(float64(level) * f))
				}
				stored[s*rows+r] = level
			}
		}
		return ok
	}

	commit := func(c int) {
		for s := 0; s < x.numSlices; s++ {
			copy(x.sliceT[s][c*x.cfg.Rows:c*x.cfg.Rows+rows], stored[s*rows:(s+1)*rows])
		}
	}

	spareNext := x.cfg.Cols // next unconsumed spare physical column
	for c := 0; c < x.usedCols; c++ {
		phys := c
		for {
			ok := programColumn(c, phys)
			if ok {
				if phys != c {
					rep.RemappedCols++
				}
				commit(c)
				break
			}
			if spareNext >= physCols {
				// Spare budget exhausted: the column is lost. Commit the
				// corrupted levels — the degradation is visible in every
				// MVM — and report it.
				if phys != c {
					rep.BadSpares++
				}
				rep.LostCols++
				commit(c)
				break
			}
			if phys != c {
				rep.BadSpares++
			}
			phys = spareNext
			spareNext++
			rep.SparesUsed++
		}
	}
	x.faultReport = rep
	return pulses, verifies
}

// MVM computes y = W · input over the programmed submatrix through the full
// analog pipeline, allocating the result vector. input must have usedRows
// elements; the result has usedCols. ns supplies counter-based analog read
// noise and may be NoNoise when ReadNoise is zero; the draw applied to
// (input bit b, slice s, column c) is ns.Norm((b*slices+s)*usedCols + c),
// so results are independent of evaluation order.
func (x *Crossbar) MVM(input []float64, ns noise.Source) ([]float64, energy.Cost, error) {
	if !x.programmed {
		return nil, energy.Zero, fmt.Errorf("crossbar: MVM before Program")
	}
	out := make([]float64, x.usedCols)
	cost, err := x.MVMInto(out, input, ns)
	if err != nil {
		return nil, energy.Zero, err
	}
	return out, cost, nil
}

// MVMIntoCtx is MVMInto under a trace span: the analog read is recorded
// as an "xbar.mvm" child of pc carrying the MVM's simulated cost. With a
// zero Ctx (tracing off) it is the raw kernel plus one branch — zero
// allocations, preserving the hot-path contract (see docs/OBSERVABILITY.md
// and BenchmarkCrossbarMVMTracingOff).
func (x *Crossbar) MVMIntoCtx(pc obs.Ctx, dst, input []float64, ns noise.Source) (energy.Cost, error) {
	if !pc.Active() {
		return x.MVMInto(dst, input, ns)
	}
	sp := pc.Child("xbar.mvm")
	cost, err := x.MVMInto(dst, input, ns)
	sp.End(cost)
	return cost, err
}

// MVMInto is MVM writing the result into dst (len usedCols). It is the
// zero-allocation kernel: all working state comes from the crossbar's
// scratch pool, so steady-state calls do not allocate. Safe for concurrent
// use on a programmed crossbar.
func (x *Crossbar) MVMInto(dst, input []float64, ns noise.Source) (energy.Cost, error) {
	// Fail fast: every shape and value check completes before quantization
	// or scratch acquisition.
	if !x.programmed {
		return energy.Zero, fmt.Errorf("crossbar: MVM before Program")
	}
	if len(input) != x.usedRows {
		return energy.Zero, fmt.Errorf("crossbar: input length %d != programmed rows %d", len(input), x.usedRows)
	}
	if len(dst) != x.usedCols {
		return energy.Zero, fmt.Errorf("crossbar: dst length %d != programmed cols %d", len(dst), x.usedCols)
	}
	if x.cfg.ReadNoise > 0 && !ns.Valid() {
		return energy.Zero, fmt.Errorf("crossbar: ReadNoise %g requires a noise source", x.cfg.ReadNoise)
	}
	xScale := 0.0
	for i, v := range input {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return energy.Zero, fmt.Errorf("crossbar: non-finite input at index %d", i)
		}
		if a := math.Abs(v); a > xScale {
			xScale = a
		}
	}
	if xScale == 0 {
		xScale = 1
	}

	s := x.getScratch()
	defer x.scratch.Put(s)

	// Quantize and shift-encode the input.
	xMax := int32(1)<<x.cfg.InputBits - 1
	var xSumInt int64
	for i, v := range input {
		x01 := (v/xScale + 1) / 2
		xi := int32(math.Round(x01 * float64(xMax)))
		s.xInt[i] = xi
		xSumInt += int64(xi)
	}

	if x.cfg.Functional {
		x.functionalKernel(s)
	} else {
		x.bitSerialKernel(s, ns)
	}

	// Remove the shift-encoding offsets and restore the real-valued scale:
	// y = wScale*xScale * (4*acc/(Wmax*Xmax) - 2*colSum/Wmax - 2*xSum/Xmax + n).
	wMax := float64(int(1)<<x.cfg.WeightBits - 1)
	fxMax := float64(xMax)
	n := float64(x.usedRows)
	for c := range dst {
		t := 4*s.acc[c]/(wMax*fxMax) -
			2*float64(x.colSumInt[c])/wMax -
			2*float64(xSumInt)/fxMax + n
		dst[c] = x.wScale * xScale * t
	}
	return x.mvmCost(), nil
}

// getScratch returns a scratch sized for the programmed shape, with acc
// zeroed. Buffers grow once and are reused via the pool thereafter.
func (x *Crossbar) getScratch() *mvmScratch {
	s, _ := x.scratch.Get().(*mvmScratch)
	if s == nil {
		s = &mvmScratch{}
	}
	if cap(s.xInt) < x.usedRows {
		s.xInt = make([]int32, x.usedRows)
	}
	s.xInt = s.xInt[:x.usedRows]
	if cap(s.acc) < x.usedCols {
		s.acc = make([]float64, x.usedCols)
	}
	s.acc = s.acc[:x.usedCols]
	for i := range s.acc {
		s.acc[i] = 0
	}
	if cap(s.activeStart) < x.cfg.InputBits+1 {
		s.activeStart = make([]int32, x.cfg.InputBits+1)
	}
	s.activeStart = s.activeStart[:x.cfg.InputBits+1]
	if cap(s.active) < x.cfg.InputBits*x.usedRows {
		s.active = make([]int32, 0, x.cfg.InputBits*x.usedRows)
	}
	s.active = s.active[:0]
	return s
}

// functionalKernel computes exact integer accumulation: equivalent to the
// bit-serial loop with ideal converters. The column-major layout makes
// every slice's row reduction a contiguous scan.
func (x *Crossbar) functionalKernel(s *mvmScratch) {
	rows := x.cfg.Rows
	for c := 0; c < x.usedCols; c++ {
		base := c * rows
		var sum int64
		for si := x.numSlices - 1; si >= 0; si-- {
			col := x.sliceT[si][base : base+x.usedRows]
			var part int64
			for r, lv := range col {
				part += int64(lv) * int64(s.xInt[r])
			}
			sum = sum<<uint(x.cfg.CellBits) + part
		}
		s.acc[c] = float64(sum)
	}
}

// bitSerialKernel walks the honest analog pipeline: one array cycle per
// input bit, one ADC conversion per (cycle, slice, column). Per-bit
// active-row lists skip rows whose input bit is clear, and the column-major
// layout keeps each reduction contiguous.
func (x *Crossbar) bitSerialKernel(s *mvmScratch, ns noise.Source) {
	// Active-row index lists, built once per MVM.
	for b := 0; b < x.cfg.InputBits; b++ {
		s.activeStart[b] = int32(len(s.active))
		mask := int32(1) << uint(b)
		for r := 0; r < x.usedRows; r++ {
			if s.xInt[r]&mask != 0 {
				s.active = append(s.active, int32(r))
			}
		}
	}
	s.activeStart[x.cfg.InputBits] = int32(len(s.active))

	if x.packedT != nil {
		x.bitSerialPacked(s, ns)
		return
	}

	rows := x.cfg.Rows
	sigma := x.cfg.ReadNoise
	for b := 0; b < x.cfg.InputBits; b++ {
		rowsB := s.active[s.activeStart[b]:s.activeStart[b+1]]
		for si := 0; si < x.numSlices; si++ {
			sl := x.sliceT[si]
			scale := x.scaleTab[b+si*x.cfg.CellBits]
			// Noise draws are position-keyed: (b, si, c) -> one counter.
			nsBase := (uint64(b)*uint64(x.numSlices) + uint64(si)) * uint64(x.usedCols)
			for c := 0; c < x.usedCols; c++ {
				col := sl[c*rows : c*rows+x.usedRows]
				var sum int64
				for _, r := range rowsB {
					sum += int64(col[r])
				}
				colSum := float64(sum)
				if sigma > 0 {
					// Multiplicative cycle-to-cycle read noise on the
					// analog partial, matching the device model: each
					// read deviates by a relative Gaussian factor.
					colSum *= 1 + ns.Norm(nsBase+uint64(c))*sigma
					if colSum < 0 {
						colSum = 0
					}
				}
				// ADC: clip then quantize.
				if colSum > x.adcMaxSum {
					colSum = x.adcMaxSum
				}
				s.acc[c] += math.Round(colSum/x.adcStep) * x.adcStep * scale
			}
		}
	}
}

// bitSerialPacked is the lane-packed variant of the bit-serial kernel,
// taken whenever Program could build packedT. One gather per active cell
// accumulates all slice sums at once in 16-bit lanes (exact — Program
// guarantees no lane can overflow); the ADC transfer, noise draw indexing,
// and per-column (bit, slice) accumulation order are identical to the
// slice-at-a-time path, so the two kernels are bit-identical.
func (x *Crossbar) bitSerialPacked(s *mvmScratch, ns noise.Source) {
	rows := x.cfg.Rows
	sigma := x.cfg.ReadNoise
	for b := 0; b < x.cfg.InputBits; b++ {
		rowsB := s.active[s.activeStart[b]:s.activeStart[b+1]]
		nsBit := uint64(b) * uint64(x.numSlices) * uint64(x.usedCols)
		for c := 0; c < x.usedCols; c++ {
			col := x.packedT[c*rows : c*rows+x.usedRows]
			var packed uint64
			for _, r := range rowsB {
				packed += col[r]
			}
			for si := 0; si < x.numSlices; si++ {
				colSum := float64((packed >> uint(16*si)) & 0xFFFF)
				if sigma > 0 {
					// Same position-keyed draw as the generic path:
					// index (b*slices+si)*usedCols + c.
					colSum *= 1 + ns.Norm(nsBit+uint64(si)*uint64(x.usedCols)+uint64(c))*sigma
					if colSum < 0 {
						colSum = 0
					}
				}
				// ADC: clip then quantize.
				if colSum > x.adcMaxSum {
					colSum = x.adcMaxSum
				}
				s.acc[c] += math.Round(colSum/x.adcStep) * x.adcStep * x.scaleTab[b+si*x.cfg.CellBits]
			}
		}
	}
}

// mvmCost returns the cost of one full MVM: InputBits array cycles (slices
// fire in parallel, each with its own ADC), plus digital merge and buffer
// traffic.
func (x *Crossbar) mvmCost() energy.Cost {
	cycles := int64(x.cfg.InputBits)
	slices := float64(x.numSlices)
	rows := float64(x.usedRows)
	cols := float64(x.usedCols)

	// ADC energy scales exponentially with resolution relative to the 8-bit
	// reference point.
	adcEnergy := energy.ADCConversionEnergyPJ * math.Pow(2, float64(x.cfg.ADCBits-8))

	perCycle := rows*cols*slices*energy.CrossbarCellReadEnergyPJ +
		rows*slices*energy.DACDriveEnergyPJ +
		cols*slices*(adcEnergy+energy.SAHoldEnergyPJ) +
		cols*slices*energy.ShiftAddEnergyPJ

	// Input and output transit the tile eDRAM buffer once per MVM.
	bufBytes := rows + 2*cols // 1B/input element, 2B/output element
	bufEnergy := bufBytes * energy.EDRAMAccessEnergyPJPerByte

	return energy.Cost{
		LatencyPS: cycles*energy.CrossbarReadLatencyPS + 2*energy.EDRAMAccessLatencyPS,
		EnergyPJ:  float64(cycles)*perCycle + bufEnergy,
	}
}

// IdealMVM computes the product with no analog effects — the reference the
// tests compare the analog pipeline against.
func (x *Crossbar) IdealMVM(w [][]float64, input []float64) ([]float64, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("crossbar: empty weights")
	}
	if len(input) != len(w) {
		return nil, fmt.Errorf("crossbar: input length %d != rows %d", len(input), len(w))
	}
	cols := len(w[0])
	out := make([]float64, cols)
	for r, row := range w {
		if len(row) != cols {
			return nil, fmt.Errorf("crossbar: ragged matrix at row %d", r)
		}
		for c, v := range row {
			out[c] += v * input[r]
		}
	}
	return out, nil
}
