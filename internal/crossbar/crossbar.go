// Package crossbar models memristive crossbar arrays computing analog
// matrix-vector multiplication (MVM) in place — the computational primitive
// behind the paper's Dot Product Engine (Section VI) and its ISAAC ancestor
// [49].
//
// The model is honest about the analog pipeline:
//
//   - Weights are quantized to WeightBits and bit-sliced across multiple
//     physical arrays holding CellBits each (ISAAC stores 2 bits/cell).
//   - Inputs are quantized to InputBits and streamed one bit per array
//     cycle through 1-bit DACs.
//   - Each cycle, every active column's analog current sum is digitized by
//     an ADC with ADCBits resolution, which clips and quantizes.
//   - Gaussian read noise perturbs each analog column sum.
//   - Partial sums merge digitally with shift-and-add.
//
// Signed values use shift encoding: w01 = (w+1)/2 on the array, with the
// digital backend removing the offset using stored column sums. This is the
// standard trick for unipolar conductances and lets one array serve signed
// arithmetic.
//
// Costs follow the constants in internal/energy. Programming (weight
// updates) is three orders of magnitude slower than reading — the write
// asymmetry Section VI names as the main scaling challenge.
package crossbar

import (
	"fmt"
	"math"
	"math/rand"

	"cimrev/internal/energy"
)

// Config describes one logical crossbar: a stack of bit-slice arrays plus
// converter resolutions.
type Config struct {
	// Rows and Cols are the physical array dimensions.
	Rows, Cols int
	// CellBits is the number of weight bits stored per cell.
	CellBits int
	// WeightBits is the total weight resolution; must be a multiple of
	// CellBits. WeightBits/CellBits physical arrays form one logical
	// crossbar.
	WeightBits int
	// InputBits is the DAC input resolution; inputs stream one bit per
	// cycle.
	InputBits int
	// ADCBits is the column ADC resolution.
	ADCBits int
	// ReadNoise is the relative std-dev of analog column-sum noise.
	ReadNoise float64
	// Functional selects the fast functional-simulation mode: the MVM
	// result is computed from exact integer arithmetic (no per-cycle ADC
	// quantization or noise) while the cost model stays identical. Large
	// benchmark sweeps use it; accuracy studies keep the default
	// bit-serial mode.
	Functional bool
}

// DefaultConfig returns the ISAAC-scale configuration: 128x128 arrays,
// 2-bit cells, 8-bit weights (4 slices), 8-bit inputs, 8-bit ADCs.
func DefaultConfig() Config {
	return Config{
		Rows:       128,
		Cols:       128,
		CellBits:   2,
		WeightBits: 8,
		InputBits:  8,
		ADCBits:    8,
		ReadNoise:  0.0,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("crossbar: dimensions must be positive, got %dx%d", c.Rows, c.Cols)
	case c.CellBits < 1 || c.CellBits > 8:
		return fmt.Errorf("crossbar: CellBits must be in [1,8], got %d", c.CellBits)
	case c.WeightBits < c.CellBits || c.WeightBits%c.CellBits != 0:
		return fmt.Errorf("crossbar: WeightBits (%d) must be a positive multiple of CellBits (%d)", c.WeightBits, c.CellBits)
	case c.WeightBits > 16:
		return fmt.Errorf("crossbar: WeightBits must be <= 16, got %d", c.WeightBits)
	case c.InputBits < 1 || c.InputBits > 16:
		return fmt.Errorf("crossbar: InputBits must be in [1,16], got %d", c.InputBits)
	case c.ADCBits < 1 || c.ADCBits > 16:
		return fmt.Errorf("crossbar: ADCBits must be in [1,16], got %d", c.ADCBits)
	case c.ReadNoise < 0:
		return fmt.Errorf("crossbar: ReadNoise must be non-negative, got %g", c.ReadNoise)
	}
	return nil
}

// slices returns the number of physical bit-slice arrays.
func (c Config) slices() int { return c.WeightBits / c.CellBits }

// Crossbar is one logical crossbar: slices() physical arrays of Rows x Cols
// cells. Not safe for concurrent use.
type Crossbar struct {
	cfg Config

	// sliceLevels[s][r*Cols+c] holds the CellBits-wide slice s of the
	// shifted, quantized weight at (r, c).
	sliceLevels [][]uint8

	// colSumInt[c] is the column sum of integer weights, stored at program
	// time for digital offset removal.
	colSumInt []int64

	// usedRows and usedCols are the programmed submatrix dimensions.
	usedRows, usedCols int

	// wScale restores programmed weights to their original range.
	wScale float64

	// writes counts cell programming operations (wear).
	writes int64

	programmed bool
}

// New returns an unprogrammed crossbar.
func New(cfg Config) (*Crossbar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Rows * cfg.Cols
	sl := make([][]uint8, cfg.slices())
	for i := range sl {
		sl[i] = make([]uint8, n)
	}
	return &Crossbar{
		cfg:         cfg,
		sliceLevels: sl,
		colSumInt:   make([]int64, cfg.Cols),
	}, nil
}

// Config returns the crossbar configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// Programmed reports whether weights have been loaded.
func (x *Crossbar) Programmed() bool { return x.programmed }

// UsedShape returns the programmed submatrix dimensions (rows, cols).
func (x *Crossbar) UsedShape() (int, int) { return x.usedRows, x.usedCols }

// Writes returns the total cell-programming count (wear indicator).
func (x *Crossbar) Writes() int64 { return x.writes }

// WeightScale returns the scale factor that maps stored normalized weights
// back to the caller's range.
func (x *Crossbar) WeightScale() float64 { return x.wScale }

// Program loads the weight matrix w (w[r][c], at most Rows x Cols). Weights
// may be any finite values; the crossbar normalizes by max |w|. It returns
// the programming cost: rows are written in parallel across columns but
// serially row by row and slice stacks in parallel, so latency is
// usedRows x write-latency, and energy covers every programmed cell.
func (x *Crossbar) Program(w [][]float64) (energy.Cost, error) {
	if len(w) == 0 || len(w) > x.cfg.Rows {
		return energy.Zero, fmt.Errorf("crossbar: weight rows %d outside [1,%d]", len(w), x.cfg.Rows)
	}
	cols := len(w[0])
	if cols == 0 || cols > x.cfg.Cols {
		return energy.Zero, fmt.Errorf("crossbar: weight cols %d outside [1,%d]", cols, x.cfg.Cols)
	}
	wScale := 0.0
	for r, row := range w {
		if len(row) != cols {
			return energy.Zero, fmt.Errorf("crossbar: ragged weight matrix at row %d (%d != %d)", r, len(row), cols)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return energy.Zero, fmt.Errorf("crossbar: non-finite weight at row %d", r)
			}
			if a := math.Abs(v); a > wScale {
				wScale = a
			}
		}
	}
	if wScale == 0 {
		wScale = 1 // all-zero matrix programs cleanly
	}

	wMax := float64(int(1)<<x.cfg.WeightBits - 1)
	cellMask := uint8(1<<x.cfg.CellBits - 1)
	for i := range x.colSumInt {
		x.colSumInt[i] = 0
	}
	for _, sl := range x.sliceLevels {
		for i := range sl {
			sl[i] = 0
		}
	}
	for r := 0; r < len(w); r++ {
		for c := 0; c < cols; c++ {
			w01 := (w[r][c]/wScale + 1) / 2 // shift encode into [0,1]
			wInt := int(math.Round(w01 * wMax))
			x.colSumInt[c] += int64(wInt)
			for s := 0; s < x.cfg.slices(); s++ {
				shift := uint(s * x.cfg.CellBits)
				x.sliceLevels[s][r*x.cfg.Cols+c] = uint8(wInt>>shift) & cellMask
			}
		}
	}
	x.usedRows, x.usedCols = len(w), cols
	x.wScale = wScale
	x.programmed = true

	cells := int64(len(w)) * int64(cols) * int64(x.cfg.slices())
	x.writes += cells
	return energy.Cost{
		LatencyPS: int64(len(w)) * energy.CrossbarWriteLatencyPS,
		EnergyPJ:  float64(cells) * energy.CrossbarWriteEnergyPJ,
	}, nil
}

// MVM computes y = W · input over the programmed submatrix through the full
// analog pipeline. input must have usedRows elements; the result has
// usedCols. rng supplies analog read noise and may be nil when ReadNoise is
// zero.
func (x *Crossbar) MVM(input []float64, rng *rand.Rand) ([]float64, energy.Cost, error) {
	if !x.programmed {
		return nil, energy.Zero, fmt.Errorf("crossbar: MVM before Program")
	}
	if len(input) != x.usedRows {
		return nil, energy.Zero, fmt.Errorf("crossbar: input length %d != programmed rows %d", len(input), x.usedRows)
	}
	if x.cfg.ReadNoise > 0 && rng == nil {
		return nil, energy.Zero, fmt.Errorf("crossbar: ReadNoise %g requires an rng", x.cfg.ReadNoise)
	}

	// Quantize and shift-encode the input.
	xScale := 0.0
	for _, v := range input {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, energy.Zero, fmt.Errorf("crossbar: non-finite input")
		}
		if a := math.Abs(v); a > xScale {
			xScale = a
		}
	}
	if xScale == 0 {
		xScale = 1
	}
	xMax := int(1)<<x.cfg.InputBits - 1
	xInt := make([]int, x.usedRows)
	for i, v := range input {
		x01 := (v/xScale + 1) / 2
		xInt[i] = int(math.Round(x01 * float64(xMax)))
	}

	// ADC transfer function for one cycle+slice: the largest possible
	// column sum is usedRows * cellMax; the ADC quantizes [0, maxSum] into
	// 2^ADCBits levels.
	cellMax := float64(int(1)<<x.cfg.CellBits - 1)
	maxSum := float64(x.usedRows) * cellMax
	adcLevels := float64(int(1)<<x.cfg.ADCBits - 1)
	adcStep := maxSum / adcLevels
	if adcStep == 0 {
		adcStep = 1
	}

	// acc[c] accumulates shift-added partial sums across input bits and
	// weight slices, in integer weight x integer input units.
	acc := make([]float64, x.usedCols)
	if x.cfg.Functional {
		// Exact integer accumulation: equivalent to the bit-serial loop
		// with ideal converters.
		for c := 0; c < x.usedCols; c++ {
			var sum int64
			for r := 0; r < x.usedRows; r++ {
				var wInt int64
				for s := x.cfg.slices() - 1; s >= 0; s-- {
					wInt = wInt<<x.cfg.CellBits | int64(x.sliceLevels[s][r*x.cfg.Cols+c])
				}
				sum += wInt * int64(xInt[r])
			}
			acc[c] = float64(sum)
		}
		return x.finishMVM(acc, xInt, xMax, xScale)
	}
	for b := 0; b < x.cfg.InputBits; b++ {
		bitMask := 1 << b
		for s := 0; s < x.cfg.slices(); s++ {
			sl := x.sliceLevels[s]
			scale := math.Pow(2, float64(b+s*x.cfg.CellBits))
			for c := 0; c < x.usedCols; c++ {
				var colSum float64
				for r := 0; r < x.usedRows; r++ {
					if xInt[r]&bitMask != 0 {
						colSum += float64(sl[r*x.cfg.Cols+c])
					}
				}
				if x.cfg.ReadNoise > 0 {
					// Multiplicative cycle-to-cycle read noise on the
					// analog partial, matching the device model: each
					// read deviates by a relative Gaussian factor.
					colSum *= 1 + rng.NormFloat64()*x.cfg.ReadNoise
					if colSum < 0 {
						colSum = 0
					}
				}
				// ADC: clip then quantize.
				if colSum > maxSum {
					colSum = maxSum
				}
				digitized := math.Round(colSum/adcStep) * adcStep
				acc[c] += digitized * scale
			}
		}
	}

	return x.finishMVM(acc, xInt, xMax, xScale)
}

// finishMVM removes the shift-encoding offsets and restores the real-valued
// scale: y = wScale*xScale * (4*acc/(Wmax*Xmax) - 2*colSum/Wmax -
// 2*xSum/Xmax + n).
func (x *Crossbar) finishMVM(acc []float64, xInt []int, xMax int, xScale float64) ([]float64, energy.Cost, error) {
	var xSumInt int64
	for _, v := range xInt {
		xSumInt += int64(v)
	}
	wMax := float64(int(1)<<x.cfg.WeightBits - 1)
	out := make([]float64, x.usedCols)
	n := float64(x.usedRows)
	for c := range out {
		t := 4*acc[c]/(wMax*float64(xMax)) -
			2*float64(x.colSumInt[c])/wMax -
			2*float64(xSumInt)/float64(xMax) + n
		out[c] = x.wScale * xScale * t
	}
	return out, x.mvmCost(), nil
}

// mvmCost returns the cost of one full MVM: InputBits array cycles (slices
// fire in parallel, each with its own ADC), plus digital merge and buffer
// traffic.
func (x *Crossbar) mvmCost() energy.Cost {
	cycles := int64(x.cfg.InputBits)
	slices := float64(x.cfg.slices())
	rows := float64(x.usedRows)
	cols := float64(x.usedCols)

	// ADC energy scales exponentially with resolution relative to the 8-bit
	// reference point.
	adcEnergy := energy.ADCConversionEnergyPJ * math.Pow(2, float64(x.cfg.ADCBits-8))

	perCycle := rows*cols*slices*energy.CrossbarCellReadEnergyPJ +
		rows*slices*energy.DACDriveEnergyPJ +
		cols*slices*(adcEnergy+energy.SAHoldEnergyPJ) +
		cols*slices*energy.ShiftAddEnergyPJ

	// Input and output transit the tile eDRAM buffer once per MVM.
	bufBytes := rows + 2*cols // 1B/input element, 2B/output element
	bufEnergy := bufBytes * energy.EDRAMAccessEnergyPJPerByte

	return energy.Cost{
		LatencyPS: cycles*energy.CrossbarReadLatencyPS + 2*energy.EDRAMAccessLatencyPS,
		EnergyPJ:  float64(cycles)*perCycle + bufEnergy,
	}
}

// IdealMVM computes the product with no analog effects — the reference the
// tests compare the analog pipeline against.
func (x *Crossbar) IdealMVM(w [][]float64, input []float64) ([]float64, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("crossbar: empty weights")
	}
	if len(input) != len(w) {
		return nil, fmt.Errorf("crossbar: input length %d != rows %d", len(input), len(w))
	}
	cols := len(w[0])
	out := make([]float64, cols)
	for r, row := range w {
		if len(row) != cols {
			return nil, fmt.Errorf("crossbar: ragged matrix at row %d", r)
		}
		for c, v := range row {
			out[c] += v * input[r]
		}
	}
	return out, nil
}
