package memo

import (
	"fmt"
	"testing"

	"cimrev/internal/energy"
	"cimrev/internal/kvs"
	"cimrev/internal/metrics"
)

// expensive is a test function with a visible call counter and a large
// modeled cost.
func expensive(calls *int) Func {
	return func(in []float64) ([]float64, energy.Cost, error) {
		*calls++
		out := make([]float64, len(in))
		for i, v := range in {
			out[i] = v * v
		}
		return out, energy.Cost{LatencyPS: 1_000_000_000, EnergyPJ: 1e6}, nil
	}
}

func TestNewTableValidation(t *testing.T) {
	store := kvs.NewStore()
	fn := expensive(new(int))
	if _, err := NewTable("", fn, store, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewTable("t", nil, store, nil); err == nil {
		t.Error("nil fn accepted")
	}
	if _, err := NewTable("t", fn, nil, nil); err == nil {
		t.Error("nil store accepted")
	}
}

func TestCallMissThenHit(t *testing.T) {
	store := kvs.NewStore()
	reg := metrics.NewRegistry()
	calls := 0
	tbl, err := NewTable("sq", expensive(&calls), store, reg)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{2, 3}

	out, missCost, hit, err := tbl.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first call reported a hit")
	}
	if out[0] != 4 || out[1] != 9 {
		t.Errorf("result = %v", out)
	}
	if calls != 1 {
		t.Errorf("function called %d times", calls)
	}

	out, hitCost, hit, err := tbl.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second call missed")
	}
	if out[0] != 4 || out[1] != 9 {
		t.Errorf("cached result = %v", out)
	}
	if calls != 1 {
		t.Errorf("function recomputed (%d calls)", calls)
	}
	// The trade: a hit is orders of magnitude cheaper than the miss.
	if hitCost.LatencyPS*100 > missCost.LatencyPS {
		t.Errorf("hit %v not far below miss %v", hitCost, missCost)
	}
	if got := tbl.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", got)
	}
}

func TestCallDistinctInputs(t *testing.T) {
	store := kvs.NewStore()
	calls := 0
	tbl, err := NewTable("sq", expensive(&calls), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, _, err := tbl.Call([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 5 {
		t.Errorf("distinct inputs computed %d times, want 5", calls)
	}
}

func TestTablesNamespaced(t *testing.T) {
	store := kvs.NewStore()
	c1, c2 := 0, 0
	t1, err := NewTable("a", expensive(&c1), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewTable("b", expensive(&c2), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{7}
	if _, _, _, err := t1.Call(in); err != nil {
		t.Fatal(err)
	}
	_, _, hit, err := t2.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("table b hit on table a's entry")
	}
}

func TestMemoSurvivesCheckpointRestore(t *testing.T) {
	// The Section II.A point: persistence makes memoization durable. A
	// "restart" (restore from checkpoint) keeps the warm cache.
	store := kvs.NewStore()
	calls := 0
	tbl, err := NewTable("sq", expensive(&calls), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{5}
	if _, _, _, err := tbl.Call(in); err != nil {
		t.Fatal(err)
	}
	snap := store.Checkpoint()

	// Crash: lose post-checkpoint state, then restore.
	if err := store.Restore(snap); err != nil {
		t.Fatal(err)
	}
	_, _, hit, err := tbl.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("memo table cold after restore")
	}
	if calls != 1 {
		t.Errorf("recomputed after restore (%d calls)", calls)
	}
}

func TestCallPropagatesErrors(t *testing.T) {
	store := kvs.NewStore()
	tbl, err := NewTable("f", func(in []float64) ([]float64, energy.Cost, error) {
		return nil, energy.Zero, fmt.Errorf("boom")
	}, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tbl.Call([]float64{1}); err == nil {
		t.Error("function error swallowed")
	}
}

func TestHitRateWithoutRegistry(t *testing.T) {
	store := kvs.NewStore()
	tbl, err := NewTable("f", expensive(new(int)), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.HitRate() != 0 {
		t.Error("hit rate without registry should be 0")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := decode([]byte{1, 2, 3}); err == nil {
		t.Error("corrupt value accepted")
	}
}
