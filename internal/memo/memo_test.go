package memo

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cimrev/internal/energy"
	"cimrev/internal/kvs"
	"cimrev/internal/metrics"
)

// expensive is a test function with a visible call counter and a large
// modeled cost.
func expensive(calls *int) Func {
	return func(in []float64) ([]float64, energy.Cost, error) {
		*calls++
		out := make([]float64, len(in))
		for i, v := range in {
			out[i] = v * v
		}
		return out, energy.Cost{LatencyPS: 1_000_000_000, EnergyPJ: 1e6}, nil
	}
}

func TestNewTableValidation(t *testing.T) {
	store := kvs.NewStore()
	fn := expensive(new(int))
	if _, err := NewTable("", fn, store, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewTable("t", nil, store, nil); err == nil {
		t.Error("nil fn accepted")
	}
	if _, err := NewTable("t", fn, nil, nil); err == nil {
		t.Error("nil store accepted")
	}
}

func TestCallMissThenHit(t *testing.T) {
	store := kvs.NewStore()
	reg := metrics.NewRegistry()
	calls := 0
	tbl, err := NewTable("sq", expensive(&calls), store, reg)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{2, 3}

	out, missCost, hit, err := tbl.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first call reported a hit")
	}
	if out[0] != 4 || out[1] != 9 {
		t.Errorf("result = %v", out)
	}
	if calls != 1 {
		t.Errorf("function called %d times", calls)
	}

	out, hitCost, hit, err := tbl.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second call missed")
	}
	if out[0] != 4 || out[1] != 9 {
		t.Errorf("cached result = %v", out)
	}
	if calls != 1 {
		t.Errorf("function recomputed (%d calls)", calls)
	}
	// The trade: a hit is orders of magnitude cheaper than the miss.
	if hitCost.LatencyPS*100 > missCost.LatencyPS {
		t.Errorf("hit %v not far below miss %v", hitCost, missCost)
	}
	if got := tbl.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", got)
	}
}

func TestCallDistinctInputs(t *testing.T) {
	store := kvs.NewStore()
	calls := 0
	tbl, err := NewTable("sq", expensive(&calls), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, _, err := tbl.Call([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 5 {
		t.Errorf("distinct inputs computed %d times, want 5", calls)
	}
}

func TestTablesNamespaced(t *testing.T) {
	store := kvs.NewStore()
	c1, c2 := 0, 0
	t1, err := NewTable("a", expensive(&c1), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewTable("b", expensive(&c2), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{7}
	if _, _, _, err := t1.Call(in); err != nil {
		t.Fatal(err)
	}
	_, _, hit, err := t2.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("table b hit on table a's entry")
	}
}

func TestMemoSurvivesCheckpointRestore(t *testing.T) {
	// The Section II.A point: persistence makes memoization durable. A
	// "restart" (restore from checkpoint) keeps the warm cache.
	store := kvs.NewStore()
	calls := 0
	tbl, err := NewTable("sq", expensive(&calls), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{5}
	if _, _, _, err := tbl.Call(in); err != nil {
		t.Fatal(err)
	}
	snap := store.Checkpoint()

	// Crash: lose post-checkpoint state, then restore.
	if err := store.Restore(snap); err != nil {
		t.Fatal(err)
	}
	_, _, hit, err := tbl.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("memo table cold after restore")
	}
	if calls != 1 {
		t.Errorf("recomputed after restore (%d calls)", calls)
	}
}

func TestCallPropagatesErrors(t *testing.T) {
	store := kvs.NewStore()
	tbl, err := NewTable("f", func(in []float64) ([]float64, energy.Cost, error) {
		return nil, energy.Zero, fmt.Errorf("boom")
	}, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tbl.Call([]float64{1}); err == nil {
		t.Error("function error swallowed")
	}
}

func TestHitRateWithoutRegistry(t *testing.T) {
	store := kvs.NewStore()
	tbl, err := NewTable("f", expensive(new(int)), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.HitRate() != 0 {
		t.Error("hit rate without registry should be 0")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := decode([]byte{1, 2, 3}); err == nil {
		t.Error("corrupt value accepted")
	}
}

// slowFunc counts invocations atomically and blocks until release is
// closed, so a test can pile concurrent callers onto one in-flight compute.
func slowFunc(calls *atomic.Int64, release <-chan struct{}) Func {
	return func(in []float64) ([]float64, energy.Cost, error) {
		calls.Add(1)
		if release != nil {
			<-release
		}
		out := make([]float64, len(in))
		for i, v := range in {
			out[i] = v * v
		}
		return out, energy.Cost{LatencyPS: 1_000_000_000, EnergyPJ: 1e6}, nil
	}
}

// TestCallSingleFlight: N concurrent Calls with identical input must
// compute fn exactly once; the followers block on the leader and share its
// result, counting as hits (plus memo.shared), so memo.misses is 1 and the
// compute cost is charged exactly once.
func TestCallSingleFlight(t *testing.T) {
	t.Parallel()
	store := kvs.NewStore()
	reg := metrics.NewRegistry()
	var calls atomic.Int64
	release := make(chan struct{})
	tbl, err := NewTable("sf", slowFunc(&calls, release), store, reg)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 32
	in := []float64{3, 4}
	var wg sync.WaitGroup
	var hits, misses, fullCost atomic.Int64
	outs := make([][]float64, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out, cost, hit, err := tbl.Call(in)
			outs[c], errs[c] = out, err
			if hit {
				hits.Add(1)
			} else {
				misses.Add(1)
			}
			if cost.LatencyPS >= 1_000_000_000 {
				fullCost.Add(1)
			}
		}(c)
	}
	// Let the callers pile up on the in-flight computation, then release.
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn invoked %d times, want 1 (single-flight)", got)
	}
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if len(outs[c]) != 2 || outs[c][0] != 9 || outs[c][1] != 16 {
			t.Fatalf("caller %d output = %v, want [9 16]", c, outs[c])
		}
	}
	if misses.Load() != 1 || hits.Load() != callers-1 {
		t.Errorf("hit/miss split = %d/%d, want %d/1", hits.Load(), misses.Load(), callers-1)
	}
	if fullCost.Load() != 1 {
		t.Errorf("%d callers paid the compute cost, want exactly 1", fullCost.Load())
	}
	s := reg.Snapshot()
	if s.Counters["memo.misses"] != 1 {
		t.Errorf("memo.misses = %d, want 1", s.Counters["memo.misses"])
	}
	if s.Counters["memo.hits"] != callers-1 {
		t.Errorf("memo.hits = %d, want %d", s.Counters["memo.hits"], callers-1)
	}
	if s.Counters["memo.shared"] != callers-1 {
		t.Errorf("memo.shared = %d, want %d", s.Counters["memo.shared"], callers-1)
	}
}

// TestCallSingleFlightDistinctKeys: single-flight must key on the input;
// concurrent Calls with different inputs all compute.
func TestCallSingleFlightDistinctKeys(t *testing.T) {
	t.Parallel()
	store := kvs.NewStore()
	var calls atomic.Int64
	tbl, err := NewTable("sfk", slowFunc(&calls, nil), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if _, _, _, err := tbl.Call([]float64{float64(k)}); err != nil {
				t.Error(err)
			}
		}(k)
	}
	wg.Wait()
	if got := calls.Load(); got != keys {
		t.Errorf("fn invoked %d times, want %d (one per key)", got, keys)
	}
}

// TestCallSingleFlightErrorPropagates: a leader error reaches every
// follower, caches nothing, and a subsequent Call retries.
func TestCallSingleFlightErrorPropagates(t *testing.T) {
	t.Parallel()
	store := kvs.NewStore()
	var calls atomic.Int64
	release := make(chan struct{})
	boom := fmt.Errorf("transient failure")
	fn := func(in []float64) ([]float64, energy.Cost, error) {
		if calls.Add(1) == 1 {
			<-release
			return nil, energy.Zero, boom
		}
		return []float64{42}, energy.Zero, nil
	}
	tbl, err := NewTable("sfe", fn, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	var errCount atomic.Int64
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, _, err := tbl.Call([]float64{7}); err != nil {
				errCount.Add(1)
			}
		}()
	}
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := errCount.Load(); got != callers {
		t.Errorf("%d callers saw the leader error, want all %d", got, callers)
	}
	// Nothing cached; the retry recomputes and succeeds.
	out, _, hit, err := tbl.Call([]float64{7})
	if err != nil || hit || len(out) != 1 || out[0] != 42 {
		t.Errorf("retry = (%v, hit=%v, err=%v), want fresh [42]", out, hit, err)
	}
}

// TestCallSingleFlightFollowerOwnsResult: followers must receive private
// copies — mutating one caller's result must not leak into another's.
func TestCallSingleFlightFollowerOwnsResult(t *testing.T) {
	t.Parallel()
	store := kvs.NewStore()
	var calls atomic.Int64
	release := make(chan struct{})
	tbl, err := NewTable("sfo", slowFunc(&calls, release), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	outs := make([][]float64, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out, _, _, err := tbl.Call([]float64{5})
			if err != nil {
				t.Error(err)
				return
			}
			out[0] = float64(-c) // caller scribbles on its result
			outs[c] = out
		}(c)
	}
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()
	seen := map[float64]bool{}
	for c := 0; c < callers; c++ {
		if seen[outs[c][0]] {
			t.Fatalf("two callers share a result slice: value %g seen twice", outs[c][0])
		}
		seen[outs[c][0]] = true
	}
	// And the cached value is unscathed.
	out, _, hit, err := tbl.Call([]float64{5})
	if err != nil || !hit || out[0] != 25 {
		t.Errorf("cached value = (%v, hit=%v, err=%v), want hit [25]", out, hit, err)
	}
}
