// Package memo implements the space-for-compute trade Section II.A says
// persistent memory revitalizes: "The persistence of memory is shifting
// the temporal and energy scalability of techniques that trade space and
// compute, such as memoization."
//
// A Table caches function results in persistent in-memory storage (backed
// by the kvs substrate, so it survives checkpoints and restarts). The cost
// model makes the trade explicit: a hit costs one lookup; a miss costs the
// computation plus a store. Because the cache is non-volatile, its value
// compounds across restarts — unlike a DRAM cache that restarts cold.
package memo

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"cimrev/internal/energy"
	"cimrev/internal/kvs"
	"cimrev/internal/metrics"
)

// Lookup/store costs: persistent-memory row accesses.
const (
	lookupLatencyPS = 50_000 // 50 ns NVM read
	lookupEnergyPJ  = 5.0
	storeLatencyPS  = 300_000 // 300 ns NVM write
	storeEnergyPJ   = 50.0
)

// Func is a memoizable vector function with an explicit compute cost.
type Func func(in []float64) ([]float64, energy.Cost, error)

// Table memoizes one function over a persistent store.
//
// Concurrent Calls with identical inputs are single-flighted: the first
// caller (the leader) computes fn once while the others block on the
// in-flight computation and share its result. Without this, N concurrent
// misses on one key would all recompute fn — paying the compute cost N
// times and counting N misses — before racing to store identical values.
type Table struct {
	name  string
	fn    Func
	store *kvs.Store

	// Interned metric handles, resolved once at construction: the call
	// path touches only their lock-free atomics, never a registry lookup.
	// All nil when the table was built without a registry.
	hits, misses, shared *metrics.Counter

	mu       sync.Mutex
	inflight map[string]*flight
}

// flight is one in-progress computation that followers can wait on.
type flight struct {
	done chan struct{} // closed when out/err are final
	out  []float64     // leader's private copy; followers copy again
	err  error
}

// NewTable wraps fn with a memo table in store. name namespaces the keys so
// several tables can share one store. reg may be nil.
func NewTable(name string, fn Func, store *kvs.Store, reg *metrics.Registry) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("memo: empty table name")
	}
	if fn == nil {
		return nil, fmt.Errorf("memo: nil function")
	}
	if store == nil {
		return nil, fmt.Errorf("memo: nil store")
	}
	t := &Table{name: name, fn: fn, store: store, inflight: make(map[string]*flight)}
	if reg != nil {
		t.hits = reg.Counter("memo.hits")
		t.misses = reg.Counter("memo.misses")
		t.shared = reg.Counter("memo.shared")
	}
	return t, nil
}

func (t *Table) key(in []float64) string {
	buf := make([]byte, 8*len(in))
	for i, v := range in {
		binary.BigEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return t.name + "/" + string(buf)
}

func encode(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

func decode(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("memo: corrupt cached value (%d bytes)", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// Call evaluates the function through the memo table, returning the result,
// the cost actually paid, and whether it was a cache hit.
//
// Concurrent Calls on the same key are deduplicated: exactly one caller
// computes fn (counting one memo.miss and paying lookup+compute+store);
// the rest block until it finishes, share the result, and are charged a
// lookup cost like any hit (the compute energy is physically spent once).
// Followers count toward memo.hits and additionally toward memo.shared.
// A leader error propagates to every waiter and caches nothing, so a later
// Call retries the computation.
func (t *Table) Call(in []float64) ([]float64, energy.Cost, bool, error) {
	key := t.key(in)
	if out, cost, ok, err := t.lookup(key); ok || err != nil {
		return out, cost, ok, err
	}

	t.mu.Lock()
	if f, ok := t.inflight[key]; ok {
		// Follower: someone is already computing this key.
		t.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, energy.Zero, false, f.err
		}
		if t.hits != nil {
			t.hits.Inc()
			t.shared.Inc()
		}
		out := append([]float64(nil), f.out...)
		return out, energy.Cost{LatencyPS: lookupLatencyPS, EnergyPJ: lookupEnergyPJ}, true, nil
	}
	f := &flight{done: make(chan struct{})}
	t.inflight[key] = f
	t.mu.Unlock()

	// Leader. Whatever happens, publish the outcome and retire the flight.
	out, cost, hit, err := t.compute(key, in)
	if err == nil {
		// Private copy: the leader's caller owns `out` and may mutate it
		// while followers are still copying from f.out.
		f.out = append([]float64(nil), out...)
	}
	f.err = err
	t.mu.Lock()
	delete(t.inflight, key)
	t.mu.Unlock()
	close(f.done)
	if err != nil {
		return nil, energy.Zero, false, err
	}
	return out, cost, hit, nil
}

// lookup consults the persistent store; ok reports a hit.
func (t *Table) lookup(key string) ([]float64, energy.Cost, bool, error) {
	data, ok := t.store.Get(key)
	if !ok {
		return nil, energy.Zero, false, nil
	}
	out, err := decode(data)
	if err != nil {
		return nil, energy.Zero, false, err
	}
	if t.hits != nil {
		t.hits.Inc()
	}
	return out, energy.Cost{LatencyPS: lookupLatencyPS, EnergyPJ: lookupEnergyPJ}, true, nil
}

// compute runs fn and stores the result, charging the full miss cost:
// failed lookup + computation + persistent store write. It re-checks the
// store first (hit reports that case), closing the window where a previous
// leader finished between this caller's missed lookup and its flight
// registration.
func (t *Table) compute(key string, in []float64) ([]float64, energy.Cost, bool, error) {
	if out, cost, ok, err := t.lookup(key); ok || err != nil {
		return out, cost, ok, err
	}
	out, computeCost, err := t.fn(in)
	if err != nil {
		return nil, energy.Zero, false, err
	}
	if err := t.store.Put(key, encode(out)); err != nil {
		return nil, energy.Zero, false, err
	}
	if t.misses != nil {
		t.misses.Inc()
	}
	cost := energy.Cost{LatencyPS: lookupLatencyPS, EnergyPJ: lookupEnergyPJ}.
		Seq(computeCost, energy.Cost{LatencyPS: storeLatencyPS, EnergyPJ: storeEnergyPJ})
	return out, cost, false, nil
}

// HitRate returns hits / (hits + misses) from the table's interned
// counter handles, or 0 when built without a registry.
func (t *Table) HitRate() float64 {
	if t.hits == nil {
		return 0
	}
	h, m := t.hits.Value(), t.misses.Value()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
