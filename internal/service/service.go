// Package service implements Section V.D of the paper (serviceability):
// "This motivates the need for graceful aging and self-healing at multiple
// levels of CIM components. Understanding how individual devices age can
// enable switching them out of active configurations preventing failures
// from even happening."
//
// A Monitor watches unit wear (crossbar write counts against the device
// endurance model) and predicts remaining lifetime; a Healer closes the
// loop by proactively failing worn units over to spares *before* they die,
// using the fault package's redirection machinery.
package service

import (
	"fmt"
	"sort"

	"cimrev/internal/cim"
	"cimrev/internal/fault"
	"cimrev/internal/memristor"
	"cimrev/internal/metrics"
	"cimrev/internal/packet"
)

// HealthReport describes one unit's aging state.
type HealthReport struct {
	Addr packet.Address
	// Writes is the unit's lifetime cell-programming count.
	Writes int64
	// WearFraction is Writes relative to per-cell endurance x cell count
	// (1.0 means the average cell has hit its endurance limit).
	WearFraction float64
	// RemainingWrites estimates programming operations left before the
	// wear threshold.
	RemainingWrites int64
	// AtRisk marks units past the monitor's threshold.
	AtRisk bool
}

// Monitor tracks fabric unit aging.
type Monitor struct {
	fabric *cim.Fabric
	params memristor.DeviceParams
	// Threshold is the wear fraction past which a unit is at risk.
	Threshold float64
	reg       *metrics.Registry
}

// NewMonitor wraps a fabric with the given device technology and risk
// threshold (fraction of endurance, in (0, 1]).
func NewMonitor(fabric *cim.Fabric, params memristor.DeviceParams, threshold float64, reg *metrics.Registry) (*Monitor, error) {
	if fabric == nil {
		return nil, fmt.Errorf("service: nil fabric")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("service: threshold %g outside (0,1]", threshold)
	}
	return &Monitor{fabric: fabric, params: params, Threshold: threshold, reg: reg}, nil
}

// Inspect reports one unit's health. Wear is averaged over the unit's
// programmed cells; non-crossbar units report zero wear.
func (m *Monitor) Inspect(addr packet.Address) (HealthReport, error) {
	u, err := m.fabric.Unit(addr)
	if err != nil {
		return HealthReport{}, err
	}
	rep := HealthReport{Addr: addr, Writes: u.Writes()}
	rows, cols := u.CrossbarShape()
	cells := int64(rows) * int64(cols)
	if cells == 0 {
		return rep, nil
	}
	budget := float64(cells) * float64(m.params.Endurance)
	rep.WearFraction = float64(rep.Writes) / budget
	remaining := int64(budget*m.Threshold) - rep.Writes
	if remaining < 0 {
		remaining = 0
	}
	rep.RemainingWrites = remaining
	rep.AtRisk = rep.WearFraction >= m.Threshold
	return rep, nil
}

// Survey inspects every unit, sorted by descending wear.
func (m *Monitor) Survey() ([]HealthReport, error) {
	units := m.fabric.Units()
	out := make([]HealthReport, 0, len(units))
	for _, u := range units {
		if u.Failed() {
			continue
		}
		rep, err := m.Inspect(u.Addr)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WearFraction != out[j].WearFraction {
			return out[i].WearFraction > out[j].WearFraction
		}
		return lessAddr(out[i].Addr, out[j].Addr)
	})
	if m.reg != nil {
		m.reg.Gauge("service.atrisk").Set(float64(countAtRisk(out)))
	}
	return out, nil
}

func countAtRisk(reps []HealthReport) int {
	n := 0
	for _, r := range reps {
		if r.AtRisk {
			n++
		}
	}
	return n
}

func lessAddr(a, b packet.Address) bool {
	if a.Tile != b.Tile {
		return a.Tile < b.Tile
	}
	return a.Unit < b.Unit
}

// Healer closes the self-healing loop: at-risk units are proactively
// switched out to spares before they fail.
type Healer struct {
	monitor *Monitor
	guard   *fault.Guard
	reg     *metrics.Registry
}

// NewHealer combines a monitor with a fault guard whose spares it will
// consume.
func NewHealer(monitor *Monitor, guard *fault.Guard, reg *metrics.Registry) (*Healer, error) {
	if monitor == nil || guard == nil {
		return nil, fmt.Errorf("service: nil monitor or guard")
	}
	return &Healer{monitor: monitor, guard: guard, reg: reg}, nil
}

// Heal surveys the fabric and retires every at-risk unit that has a
// registered spare, returning the retired addresses. Units at risk but
// without spares are left in place (and remain visible in the survey) —
// that is the signal to dispatch a field engineer, the paper's "from
// device/management layer to support agents" escalation.
func (h *Healer) Heal() ([]packet.Address, error) {
	reports, err := h.monitor.Survey()
	if err != nil {
		return nil, err
	}
	var retired []packet.Address
	for _, rep := range reports {
		if !rep.AtRisk {
			continue
		}
		if _, ok := h.guard.Spare(rep.Addr); !ok {
			continue
		}
		recovered, err := h.guard.Fail(rep.Addr)
		if err != nil {
			return retired, fmt.Errorf("service: retire %v: %w", rep.Addr, err)
		}
		if !recovered {
			return retired, fmt.Errorf("service: retire %v: spare vanished", rep.Addr)
		}
		retired = append(retired, rep.Addr)
		if h.reg != nil {
			h.reg.Counter("service.retired").Inc()
		}
	}
	return retired, nil
}
