package service

import (
	"testing"

	"cimrev/internal/cim"
	"cimrev/internal/fault"
	"cimrev/internal/isa"
	"cimrev/internal/memristor"
	"cimrev/internal/metrics"
	"cimrev/internal/packet"
)

func addr(tile, unit uint16) packet.Address { return packet.Address{Tile: tile, Unit: unit} }

// wornFabric builds a fabric with one heavily reprogrammed crossbar unit,
// a fresh crossbar unit, and a spare.
func wornFabric(t *testing.T, reprogramCount int) (*cim.Fabric, packet.Address, packet.Address, packet.Address) {
	t.Helper()
	cfg := cim.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 8, 8
	fabric, err := cim.NewFabric(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	worn, fresh, spare := addr(0, 0), addr(1, 0), addr(0, 1)
	for _, a := range []packet.Address{worn, fresh, spare} {
		if _, err := fabric.AddUnit(a, cim.KindCrossbar, 1); err != nil {
			t.Fatal(err)
		}
	}
	w := [][]float64{{1, 0}, {0, 1}}
	if err := fabric.Configure(worn, isa.FuncMVM, w); err != nil {
		t.Fatal(err)
	}
	if err := fabric.Configure(fresh, isa.FuncMVM, w); err != nil {
		t.Fatal(err)
	}
	if err := fabric.Configure(spare, isa.FuncMVM, w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reprogramCount; i++ {
		if _, err := fabric.Reprogram(worn, w); err != nil {
			t.Fatal(err)
		}
	}
	return fabric, worn, fresh, spare
}

// lowEndurance returns device params whose endurance is tiny so a few
// reprograms push a unit past the threshold.
func lowEndurance() memristor.DeviceParams {
	p := memristor.DefaultParams()
	p.Endurance = 10
	return p
}

func TestMonitorValidation(t *testing.T) {
	fabric, _, _, _ := wornFabric(t, 0)
	if _, err := NewMonitor(nil, lowEndurance(), 0.5, nil); err == nil {
		t.Error("nil fabric accepted")
	}
	bad := lowEndurance()
	bad.Levels = 0
	if _, err := NewMonitor(fabric, bad, 0.5, nil); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := NewMonitor(fabric, lowEndurance(), 0, nil); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewMonitor(fabric, lowEndurance(), 1.5, nil); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

func TestMonitorInspect(t *testing.T) {
	fabric, worn, fresh, _ := wornFabric(t, 30)
	mon, err := NewMonitor(fabric, lowEndurance(), 0.8, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	wr, err := mon.Inspect(worn)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := mon.Inspect(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Writes <= fr.Writes {
		t.Errorf("worn writes %d not above fresh %d", wr.Writes, fr.Writes)
	}
	if !wr.AtRisk {
		t.Errorf("worn unit not flagged (wear %.2f)", wr.WearFraction)
	}
	if fr.AtRisk {
		t.Errorf("fresh unit flagged (wear %.2f)", fr.WearFraction)
	}
	if wr.RemainingWrites != 0 {
		t.Errorf("worn remaining = %d, want 0", wr.RemainingWrites)
	}
	if fr.RemainingWrites <= 0 {
		t.Error("fresh unit has no remaining budget")
	}
	if _, err := mon.Inspect(addr(9, 9)); err == nil {
		t.Error("missing unit inspected")
	}
}

func TestMonitorInspectNonCrossbar(t *testing.T) {
	fabric, err := cim.NewFabric(cim.DefaultConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := addr(0, 0)
	if _, err := fabric.AddUnit(a, cim.KindCompute, 1); err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(fabric, lowEndurance(), 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mon.Inspect(a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WearFraction != 0 || rep.AtRisk {
		t.Errorf("digital unit reported wear: %+v", rep)
	}
}

func TestSurveySortedByWear(t *testing.T) {
	fabric, worn, _, _ := wornFabric(t, 30)
	mon, err := NewMonitor(fabric, lowEndurance(), 0.8, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	reps, err := mon.Survey()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("survey covered %d units, want 3", len(reps))
	}
	if reps[0].Addr != worn {
		t.Errorf("hottest unit = %v, want %v", reps[0].Addr, worn)
	}
	for i := 1; i < len(reps); i++ {
		if reps[i].WearFraction > reps[i-1].WearFraction {
			t.Error("survey not sorted by wear")
		}
	}
}

func TestHealerRetiresWornUnit(t *testing.T) {
	fabric, worn, _, spare := wornFabric(t, 30)
	reg := metrics.NewRegistry()
	mon, err := NewMonitor(fabric, lowEndurance(), 0.8, reg)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := fault.NewGuard(fabric, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.AddSpare(worn, spare); err != nil {
		t.Fatal(err)
	}
	healer, err := NewHealer(mon, guard, reg)
	if err != nil {
		t.Fatal(err)
	}
	retired, err := healer.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) != 1 || retired[0] != worn {
		t.Fatalf("retired %v, want [%v]", retired, worn)
	}
	u, err := fabric.Unit(worn)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Failed() {
		t.Error("worn unit still active")
	}
	// Second pass: nothing left to retire.
	retired, err = healer.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) != 0 {
		t.Errorf("second heal retired %v", retired)
	}
	if reg.Snapshot().Counters["service.retired"] != 1 {
		t.Error("retired counter wrong")
	}
}

func TestHealerLeavesAtRiskWithoutSpare(t *testing.T) {
	fabric, worn, _, _ := wornFabric(t, 30)
	mon, err := NewMonitor(fabric, lowEndurance(), 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := fault.NewGuard(fabric, nil)
	if err != nil {
		t.Fatal(err)
	}
	healer, err := NewHealer(mon, guard, nil)
	if err != nil {
		t.Fatal(err)
	}
	retired, err := healer.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) != 0 {
		t.Errorf("healed without a spare: %v", retired)
	}
	u, err := fabric.Unit(worn)
	if err != nil {
		t.Fatal(err)
	}
	if u.Failed() {
		t.Error("unit retired despite no spare")
	}
}

func TestHealerValidation(t *testing.T) {
	if _, err := NewHealer(nil, nil, nil); err == nil {
		t.Error("nil components accepted")
	}
}
