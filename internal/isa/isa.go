// Package isa defines the CIM instruction set the paper's programming
// models compile to (Section III.B: "Through the instruction set,
// applications can program the CIM crossbars to implement a target neural
// network"; Section III.D: languages "map onto the control and processing
// instruction sets for CIM").
//
// A Program is a sequence of instructions that configures units, loads
// weights, wires the dataflow graph, and streams data. Programs have both a
// human-readable assembly form (Assemble/Disassemble) and a compact binary
// form (Encode/Decode) so they can ride inside packets for the
// self-programmable dataflow model.
package isa

import (
	"fmt"
	"math"

	"cimrev/internal/packet"
)

// Opcode enumerates CIM instructions.
type Opcode uint8

const (
	// OpConfigure assigns a function to a unit.
	OpConfigure Opcode = iota + 1
	// OpLoadWeights programs a unit's crossbar with a weight matrix.
	OpLoadWeights
	// OpConnect adds a dataflow edge from one unit's output to another's
	// input.
	OpConnect
	// OpStream injects data into a unit.
	OpStream
	// OpBarrier waits for the pipeline to drain.
	OpBarrier
	// OpHalt ends the program.
	OpHalt
)

// String returns the assembly mnemonic.
func (o Opcode) String() string {
	switch o {
	case OpConfigure:
		return "configure"
	case OpLoadWeights:
		return "loadweights"
	case OpConnect:
		return "connect"
	case OpStream:
		return "stream"
	case OpBarrier:
		return "barrier"
	case OpHalt:
		return "halt"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Function enumerates the operations a configured unit can perform.
type Function uint8

const (
	// FuncForward passes inputs through unchanged (routing/fan-out).
	FuncForward Function = iota + 1
	// FuncMVM performs crossbar matrix-vector multiplication.
	FuncMVM
	// FuncReLU applies max(0, x) elementwise.
	FuncReLU
	// FuncSigmoid applies 1/(1+e^-x) elementwise.
	FuncSigmoid
	// FuncAccumulate sums successive inputs elementwise.
	FuncAccumulate
	// FuncMaxPool emits the running elementwise maximum.
	FuncMaxPool
	// FuncTanh applies tanh(x) elementwise.
	FuncTanh
	// FuncSoftmax normalizes the vector into a probability distribution.
	FuncSoftmax
)

// String returns the function mnemonic.
func (f Function) String() string {
	switch f {
	case FuncForward:
		return "forward"
	case FuncMVM:
		return "mvm"
	case FuncReLU:
		return "relu"
	case FuncSigmoid:
		return "sigmoid"
	case FuncAccumulate:
		return "accumulate"
	case FuncMaxPool:
		return "maxpool"
	case FuncTanh:
		return "tanh"
	case FuncSoftmax:
		return "softmax"
	default:
		return fmt.Sprintf("func(%d)", uint8(f))
	}
}

// ParseFunction maps a mnemonic back to a Function.
func ParseFunction(s string) (Function, error) {
	switch s {
	case "forward":
		return FuncForward, nil
	case "mvm":
		return FuncMVM, nil
	case "relu":
		return FuncReLU, nil
	case "sigmoid":
		return FuncSigmoid, nil
	case "accumulate":
		return FuncAccumulate, nil
	case "maxpool":
		return FuncMaxPool, nil
	case "tanh":
		return FuncTanh, nil
	case "softmax":
		return FuncSoftmax, nil
	default:
		return 0, fmt.Errorf("isa: unknown function %q", s)
	}
}

// Instruction is one CIM instruction. Field use depends on Op:
//
//	OpConfigure:   Unit, Fn
//	OpLoadWeights: Unit, Rows, Cols, Data (row-major, Rows*Cols values)
//	OpConnect:     Unit (source), Unit2 (destination)
//	OpStream:      Unit, Data
//	OpBarrier:     no fields
//	OpHalt:        no fields
type Instruction struct {
	Op    Opcode
	Unit  packet.Address
	Unit2 packet.Address
	Fn    Function
	Rows  int
	Cols  int
	Data  []float64
}

// Validate reports whether the instruction is well-formed.
func (in Instruction) Validate() error {
	switch in.Op {
	case OpConfigure:
		if in.Fn < FuncForward || in.Fn > FuncSoftmax {
			return fmt.Errorf("isa: configure with invalid function %d", in.Fn)
		}
	case OpLoadWeights:
		if in.Rows <= 0 || in.Cols <= 0 {
			return fmt.Errorf("isa: loadweights with non-positive shape %dx%d", in.Rows, in.Cols)
		}
		if len(in.Data) != in.Rows*in.Cols {
			return fmt.Errorf("isa: loadweights data length %d != %dx%d", len(in.Data), in.Rows, in.Cols)
		}
		for _, v := range in.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("isa: loadweights with non-finite value")
			}
		}
	case OpConnect:
		if in.Unit == in.Unit2 {
			return fmt.Errorf("isa: connect unit %v to itself", in.Unit)
		}
	case OpStream:
		if len(in.Data) == 0 {
			return fmt.Errorf("isa: stream with empty data")
		}
	case OpBarrier, OpHalt:
		// No operands.
	default:
		return fmt.Errorf("isa: unknown opcode %d", in.Op)
	}
	return nil
}

// Program is a sequence of instructions.
type Program []Instruction

// Validate checks every instruction and that a terminating halt exists.
func (p Program) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("isa: empty program")
	}
	for i, in := range p {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("isa: instruction %d: %w", i, err)
		}
	}
	if p[len(p)-1].Op != OpHalt {
		return fmt.Errorf("isa: program must end with halt")
	}
	return nil
}
