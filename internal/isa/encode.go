package isa

import (
	"encoding/binary"
	"fmt"
	"math"

	"cimrev/internal/packet"
)

// Binary program format, designed to travel inside packet Code fields:
//
//	magic   uint16  0xC1A0
//	count   uint16  instruction count
//	then per instruction:
//	  op     uint8
//	  unit   3x uint16
//	  unit2  3x uint16
//	  fn     uint8
//	  rows   uint16
//	  cols   uint16
//	  nData  uint32
//	  data   nData x float64
const programMagic = 0xC1A0

// Encode serializes the program to its binary form after validating it.
func (p Program) Encode() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p) > math.MaxUint16 {
		return nil, fmt.Errorf("isa: program too long (%d instructions)", len(p))
	}
	buf := make([]byte, 0, 64*len(p))
	buf = binary.BigEndian.AppendUint16(buf, programMagic)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p)))
	for i, in := range p {
		if len(in.Data) > math.MaxUint32 {
			return nil, fmt.Errorf("isa: instruction %d data too large", i)
		}
		if in.Rows > math.MaxUint16 || in.Cols > math.MaxUint16 {
			return nil, fmt.Errorf("isa: instruction %d shape too large (%dx%d)", i, in.Rows, in.Cols)
		}
		buf = append(buf, byte(in.Op))
		buf = appendAddr(buf, in.Unit)
		buf = appendAddr(buf, in.Unit2)
		buf = append(buf, byte(in.Fn))
		buf = binary.BigEndian.AppendUint16(buf, uint16(in.Rows))
		buf = binary.BigEndian.AppendUint16(buf, uint16(in.Cols))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(in.Data)))
		for _, v := range in.Data {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf, nil
}

func appendAddr(buf []byte, a packet.Address) []byte {
	buf = binary.BigEndian.AppendUint16(buf, a.Board)
	buf = binary.BigEndian.AppendUint16(buf, a.Tile)
	buf = binary.BigEndian.AppendUint16(buf, a.Unit)
	return buf
}

// Decode parses a binary program and validates it.
func Decode(data []byte) (Program, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("isa: truncated program header")
	}
	if binary.BigEndian.Uint16(data) != programMagic {
		return nil, fmt.Errorf("isa: bad magic %#x", binary.BigEndian.Uint16(data))
	}
	count := int(binary.BigEndian.Uint16(data[2:]))
	off := 4
	p := make(Program, 0, count)
	const fixed = 1 + 6 + 6 + 1 + 2 + 2 + 4
	for i := 0; i < count; i++ {
		if len(data)-off < fixed {
			return nil, fmt.Errorf("isa: truncated instruction %d", i)
		}
		var in Instruction
		in.Op = Opcode(data[off])
		off++
		in.Unit, off = readAddr(data, off)
		in.Unit2, off = readAddr(data, off)
		in.Fn = Function(data[off])
		off++
		in.Rows = int(binary.BigEndian.Uint16(data[off:]))
		in.Cols = int(binary.BigEndian.Uint16(data[off+2:]))
		nData := int(binary.BigEndian.Uint32(data[off+4:]))
		off += 8
		if len(data)-off < 8*nData {
			return nil, fmt.Errorf("isa: truncated data in instruction %d", i)
		}
		if nData > 0 {
			in.Data = make([]float64, nData)
			for j := range in.Data {
				in.Data[j] = math.Float64frombits(binary.BigEndian.Uint64(data[off:]))
				off += 8
			}
		}
		p = append(p, in)
	}
	if off != len(data) {
		return nil, fmt.Errorf("isa: %d trailing bytes", len(data)-off)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func readAddr(data []byte, off int) (packet.Address, int) {
	return packet.Address{
		Board: binary.BigEndian.Uint16(data[off:]),
		Tile:  binary.BigEndian.Uint16(data[off+2:]),
		Unit:  binary.BigEndian.Uint16(data[off+4:]),
	}, off + 6
}
