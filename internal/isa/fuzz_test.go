package isa

import (
	"bytes"
	"testing"

	"cimrev/internal/packet"
)

// FuzzDecode hardens the binary program decoder against program-carrying
// packets from untrusted sources: no panics, and every accepted program is
// valid and re-encodes canonically.
func FuzzDecode(f *testing.F) {
	prog := Program{
		{Op: OpLoadWeights, Unit: packet.Address{Tile: 1}, Rows: 1, Cols: 2, Data: []float64{1, 2}},
		{Op: OpConfigure, Unit: packet.Address{Tile: 1}, Fn: FuncMVM},
		{Op: OpHalt},
	}
	bin, err := prog.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bin)
	f.Add([]byte{0xC1, 0xA0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Decode returned invalid program: %v", err)
		}
		re, err := p.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip not canonical")
		}
	})
}

// FuzzAssemble hardens the assembler against arbitrary source text.
func FuzzAssemble(f *testing.F) {
	f.Add("configure 0/0/0 relu\nhalt\n")
	f.Add("loadweights 0/0/0 2 2 1,2,3,4\nconfigure 0/0/0 mvm\nhalt\n")
	f.Add("# comment only\n")
	f.Add("stream 0/0/0 1e308,-1e308\nhalt\n")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		// Anything that assembles must disassemble and re-assemble to the
		// same program.
		again, err := Assemble(p.Disassemble())
		if err != nil {
			t.Fatalf("disassembly does not re-assemble: %v", err)
		}
		if len(again) != len(p) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(p))
		}
	})
}
