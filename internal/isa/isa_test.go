package isa

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"cimrev/internal/packet"
)

func sampleProgram() Program {
	return Program{
		{Op: OpConfigure, Unit: packet.Address{Tile: 1, Unit: 1}, Fn: FuncMVM},
		{Op: OpLoadWeights, Unit: packet.Address{Tile: 1, Unit: 1}, Rows: 2, Cols: 2, Data: []float64{1, 0.5, -0.5, 1}},
		{Op: OpConfigure, Unit: packet.Address{Tile: 1, Unit: 2}, Fn: FuncReLU},
		{Op: OpConnect, Unit: packet.Address{Tile: 1, Unit: 1}, Unit2: packet.Address{Tile: 1, Unit: 2}},
		{Op: OpStream, Unit: packet.Address{Tile: 1, Unit: 1}, Data: []float64{0.25, -0.75}},
		{Op: OpBarrier},
		{Op: OpHalt},
	}
}

func TestProgramValidate(t *testing.T) {
	if err := sampleProgram().Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	if err := (Program{}).Validate(); err == nil {
		t.Error("empty program accepted")
	}
	noHalt := Program{{Op: OpBarrier}}
	if err := noHalt.Validate(); err == nil {
		t.Error("program without halt accepted")
	}
}

func TestInstructionValidate(t *testing.T) {
	tests := []struct {
		name string
		in   Instruction
		ok   bool
	}{
		{"configure ok", Instruction{Op: OpConfigure, Fn: FuncMVM}, true},
		{"configure bad fn", Instruction{Op: OpConfigure, Fn: Function(99)}, false},
		{"configure zero fn", Instruction{Op: OpConfigure}, false},
		{"loadweights ok", Instruction{Op: OpLoadWeights, Rows: 1, Cols: 2, Data: []float64{1, 2}}, true},
		{"loadweights shape mismatch", Instruction{Op: OpLoadWeights, Rows: 2, Cols: 2, Data: []float64{1}}, false},
		{"loadweights zero rows", Instruction{Op: OpLoadWeights, Rows: 0, Cols: 1, Data: nil}, false},
		{"loadweights nan", Instruction{Op: OpLoadWeights, Rows: 1, Cols: 1, Data: []float64{math.NaN()}}, false},
		{"connect ok", Instruction{Op: OpConnect, Unit: packet.Address{Unit: 1}, Unit2: packet.Address{Unit: 2}}, true},
		{"connect self", Instruction{Op: OpConnect, Unit: packet.Address{Unit: 1}, Unit2: packet.Address{Unit: 1}}, false},
		{"stream ok", Instruction{Op: OpStream, Data: []float64{1}}, true},
		{"stream empty", Instruction{Op: OpStream}, false},
		{"barrier", Instruction{Op: OpBarrier}, true},
		{"halt", Instruction{Op: OpHalt}, true},
		{"unknown op", Instruction{Op: Opcode(99)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.in.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleProgram()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Decode([]byte{0, 0, 0, 1}); err == nil {
		t.Error("bad magic accepted")
	}
	data, err := sampleProgram().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data[:len(data)-1]); err == nil {
		t.Error("truncated program accepted")
	}
	if _, err := Decode(append(data, 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	bad := Program{{Op: OpStream}} // empty data, no halt
	if _, err := bad.Encode(); err == nil {
		t.Error("invalid program encoded")
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	p := sampleProgram()
	asm := p.Disassemble()
	got, err := Assemble(asm)
	if err != nil {
		t.Fatalf("Assemble(Disassemble(p)): %v\nsource:\n%s", err, asm)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("asm round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestAssembleComments(t *testing.T) {
	src := `
# configure the first stage
configure 0/1/1 mvm   # crossbar unit

halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Errorf("program length = %d, want 2", len(p))
	}
	if p[0].Fn != FuncMVM {
		t.Errorf("fn = %v, want mvm", p[0].Fn)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown mnemonic", "jump 0/0/0\nhalt"},
		{"bad address", "configure 0-0-0 mvm\nhalt"},
		{"bad address parts", "configure 0/0 mvm\nhalt"},
		{"bad function", "configure 0/0/0 teleport\nhalt"},
		{"configure arity", "configure 0/0/0\nhalt"},
		{"loadweights arity", "loadweights 0/0/0 2 2\nhalt"},
		{"loadweights bad rows", "loadweights 0/0/0 x 2 1,2\nhalt"},
		{"loadweights bad value", "loadweights 0/0/0 1 2 1,abc\nhalt"},
		{"loadweights shape", "loadweights 0/0/0 2 2 1,2\nhalt"},
		{"connect arity", "connect 0/0/0\nhalt"},
		{"connect self", "connect 0/0/0 0/0/0\nhalt"},
		{"stream arity", "stream 0/0/0\nhalt"},
		{"no halt", "barrier"},
		{"empty", "   \n# only comments\n"},
		{"address overflow", "configure 99999/0/0 mvm\nhalt"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Assemble(tt.src); err == nil {
				t.Errorf("Assemble accepted bad source:\n%s", tt.src)
			}
		})
	}
}

func TestOpcodeStrings(t *testing.T) {
	ops := map[Opcode]string{
		OpConfigure: "configure", OpLoadWeights: "loadweights", OpConnect: "connect",
		OpStream: "stream", OpBarrier: "barrier", OpHalt: "halt", Opcode(77): "op(77)",
	}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("Opcode(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestFunctionParseStringRoundTrip(t *testing.T) {
	for fn := FuncForward; fn <= FuncMaxPool; fn++ {
		got, err := ParseFunction(fn.String())
		if err != nil {
			t.Errorf("ParseFunction(%q): %v", fn.String(), err)
			continue
		}
		if got != fn {
			t.Errorf("ParseFunction(%q) = %v, want %v", fn.String(), got, fn)
		}
	}
	if _, err := ParseFunction("bogus"); err == nil {
		t.Error("ParseFunction accepted bogus name")
	}
	if s := Function(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown function string = %q", s)
	}
}

// Property: Encode/Decode round-trips random valid programs.
func TestEncodeDecodeProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(8)
			p := make(Program, 0, n+1)
			for i := 0; i < n; i++ {
				switch r.Intn(5) {
				case 0:
					p = append(p, Instruction{Op: OpConfigure,
						Unit: randAddr(r), Fn: Function(1 + r.Intn(6))})
				case 1:
					rows, cols := 1+r.Intn(3), 1+r.Intn(3)
					data := make([]float64, rows*cols)
					for j := range data {
						data[j] = r.NormFloat64()
					}
					p = append(p, Instruction{Op: OpLoadWeights, Unit: randAddr(r),
						Rows: rows, Cols: cols, Data: data})
				case 2:
					a, b := randAddr(r), randAddr(r)
					if a == b {
						b.Unit++
					}
					p = append(p, Instruction{Op: OpConnect, Unit: a, Unit2: b})
				case 3:
					data := make([]float64, 1+r.Intn(5))
					for j := range data {
						data[j] = r.NormFloat64()
					}
					p = append(p, Instruction{Op: OpStream, Unit: randAddr(r), Data: data})
				default:
					p = append(p, Instruction{Op: OpBarrier})
				}
			}
			p = append(p, Instruction{Op: OpHalt})
			vals[0] = reflect.ValueOf(p)
		},
	}
	f := func(p Program) bool {
		data, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, got)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randAddr(r *rand.Rand) packet.Address {
	return packet.Address{
		Board: uint16(r.Intn(4)),
		Tile:  uint16(r.Intn(8)),
		Unit:  uint16(r.Intn(16)),
	}
}

// Property: assembly round-trips random valid programs.
func TestAssembleRoundTripProperty(t *testing.T) {
	p := sampleProgram()
	for i := 0; i < 3; i++ { // idempotence across repeated round trips
		asm := p.Disassemble()
		got, err := Assemble(asm)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("round %d mismatch", i)
		}
		p = got
	}
}
