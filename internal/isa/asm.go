package isa

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"cimrev/internal/packet"
)

// Assembly grammar, one instruction per line ('#' starts a comment):
//
//	configure <b/t/u> <function>
//	loadweights <b/t/u> <rows> <cols> <v0,v1,...>
//	connect <b/t/u> <b/t/u>
//	stream <b/t/u> <v0,v1,...>
//	barrier
//	halt

// Assemble parses assembly text into a validated Program.
func Assemble(src string) (Program, error) {
	var p Program
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		in, err := assembleLine(fields)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo, err)
		}
		p = append(p, in)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("isa: read source: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func assembleLine(fields []string) (Instruction, error) {
	var in Instruction
	switch fields[0] {
	case "configure":
		if len(fields) != 3 {
			return in, fmt.Errorf("configure wants 2 operands, got %d", len(fields)-1)
		}
		addr, err := parseAddr(fields[1])
		if err != nil {
			return in, err
		}
		fn, err := ParseFunction(fields[2])
		if err != nil {
			return in, err
		}
		in = Instruction{Op: OpConfigure, Unit: addr, Fn: fn}
	case "loadweights":
		if len(fields) != 5 {
			return in, fmt.Errorf("loadweights wants 4 operands, got %d", len(fields)-1)
		}
		addr, err := parseAddr(fields[1])
		if err != nil {
			return in, err
		}
		rows, err := strconv.Atoi(fields[2])
		if err != nil {
			return in, fmt.Errorf("rows: %w", err)
		}
		cols, err := strconv.Atoi(fields[3])
		if err != nil {
			return in, fmt.Errorf("cols: %w", err)
		}
		data, err := parseFloats(fields[4])
		if err != nil {
			return in, err
		}
		in = Instruction{Op: OpLoadWeights, Unit: addr, Rows: rows, Cols: cols, Data: data}
	case "connect":
		if len(fields) != 3 {
			return in, fmt.Errorf("connect wants 2 operands, got %d", len(fields)-1)
		}
		src, err := parseAddr(fields[1])
		if err != nil {
			return in, err
		}
		dst, err := parseAddr(fields[2])
		if err != nil {
			return in, err
		}
		in = Instruction{Op: OpConnect, Unit: src, Unit2: dst}
	case "stream":
		if len(fields) != 3 {
			return in, fmt.Errorf("stream wants 2 operands, got %d", len(fields)-1)
		}
		addr, err := parseAddr(fields[1])
		if err != nil {
			return in, err
		}
		data, err := parseFloats(fields[2])
		if err != nil {
			return in, err
		}
		in = Instruction{Op: OpStream, Unit: addr, Data: data}
	case "barrier":
		in = Instruction{Op: OpBarrier}
	case "halt":
		in = Instruction{Op: OpHalt}
	default:
		return in, fmt.Errorf("unknown mnemonic %q", fields[0])
	}
	return in, in.Validate()
}

func parseAddr(s string) (packet.Address, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return packet.Address{}, fmt.Errorf("address %q must be board/tile/unit", s)
	}
	vals := make([]uint16, 3)
	for i, part := range parts {
		v, err := strconv.ParseUint(part, 10, 16)
		if err != nil {
			return packet.Address{}, fmt.Errorf("address %q: %w", s, err)
		}
		vals[i] = uint16(v)
	}
	return packet.Address{Board: vals[0], Tile: vals[1], Unit: vals[2]}, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Disassemble renders the program in assembly form; Assemble(Disassemble(p))
// reproduces p.
func (p Program) Disassemble() string {
	var b strings.Builder
	for _, in := range p {
		switch in.Op {
		case OpConfigure:
			fmt.Fprintf(&b, "configure %s %s\n", in.Unit, in.Fn)
		case OpLoadWeights:
			fmt.Fprintf(&b, "loadweights %s %d %d %s\n", in.Unit, in.Rows, in.Cols, formatFloats(in.Data))
		case OpConnect:
			fmt.Fprintf(&b, "connect %s %s\n", in.Unit, in.Unit2)
		case OpStream:
			fmt.Fprintf(&b, "stream %s %s\n", in.Unit, formatFloats(in.Data))
		case OpBarrier:
			b.WriteString("barrier\n")
		case OpHalt:
			b.WriteString("halt\n")
		default:
			fmt.Fprintf(&b, "# unknown op %d\n", in.Op)
		}
	}
	return b.String()
}

func formatFloats(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}
