package compiler

import (
	"math"
	"math/rand"
	"testing"

	"cimrev/internal/cim"
	"cimrev/internal/energy"
	"cimrev/internal/isa"
	"cimrev/internal/nn"
)

func testFabricConfig() cim.Config {
	cfg := cim.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 32, 32
	return cfg
}

func smallMLP(t *testing.T) *nn.Network {
	t.Helper()
	net, err := nn.NewMLP("test-mlp", []int{8, 16, 4}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestCompilePlacements(t *testing.T) {
	net := smallMLP(t)
	plan, err := Compile(net, testFabricConfig())
	if err != nil {
		t.Fatal(err)
	}
	// MLP 8-16-4: dense, relu, dense, softmax = 4 placements.
	if len(plan.Placements) != 4 {
		t.Fatalf("placements = %d, want 4", len(plan.Placements))
	}
	if plan.CrossbarUnits() != 2 {
		t.Errorf("crossbar units = %d, want 2", plan.CrossbarUnits())
	}
	if plan.Placements[0].Kind != cim.KindCrossbar || plan.Placements[0].Fn != isa.FuncMVM {
		t.Errorf("first placement = %v/%v, want crossbar/mvm", plan.Placements[0].Kind, plan.Placements[0].Fn)
	}
	if plan.Placements[1].Fn != isa.FuncReLU {
		t.Errorf("second placement fn = %v, want relu", plan.Placements[1].Fn)
	}
	if plan.Placements[3].Fn != isa.FuncSoftmax {
		t.Errorf("last placement fn = %v, want softmax", plan.Placements[3].Fn)
	}
	if plan.InputAddr != plan.Placements[0].Addr {
		t.Error("input address mismatch")
	}
	if plan.OutputAddr != plan.Placements[3].Addr {
		t.Error("output address mismatch")
	}
	// Consecutive layers on consecutive tiles (locality).
	for i := 1; i < len(plan.Placements); i++ {
		prev, cur := plan.Placements[i-1].Addr.Tile, plan.Placements[i].Addr.Tile
		if int(cur) != (int(prev)+1)%(4*4) {
			t.Errorf("stage %d tile %d does not follow %d", i, cur, prev)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, testFabricConfig()); err == nil {
		t.Error("nil network accepted")
	}
	badCfg := testFabricConfig()
	badCfg.MeshW = 0
	if _, err := Compile(smallMLP(t), badCfg); err == nil {
		t.Error("bad fabric config accepted")
	}

	// CNN layers are rejected (DPE orchestrates them instead).
	cnn, err := nn.NewLeNetStyle("cnn", 8, 16, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(cnn, testFabricConfig()); err == nil {
		t.Error("CNN accepted by static pipeline compiler")
	}
}

func TestApplyAndRunMatchesSoftware(t *testing.T) {
	net := smallMLP(t)
	cfg := testFabricConfig()
	plan, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	led := energy.NewLedger()
	fabric, err := cim.NewFabric(cfg, led, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(plan, fabric); err != nil {
		t.Fatal(err)
	}

	in := make([]float64, 8)
	for i := range in {
		in[i] = math.Sin(float64(i) + 0.5)
	}
	if err := fabric.Stream(plan.InputAddr, in); err != nil {
		t.Fatal(err)
	}
	out, err := fabric.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := out[plan.OutputAddr]
	if len(got) != 1 {
		t.Fatalf("fabric results = %d, want 1", len(got))
	}

	want, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	// Analog quantization moves probabilities slightly; classification and
	// coarse values must agree.
	argmax := func(v []float64) int {
		best := 0
		for i := range v {
			if v[i] > v[best] {
				best = i
			}
		}
		return best
	}
	if argmax(got[0]) != argmax(want) {
		t.Errorf("fabric class %d != software class %d (%v vs %v)",
			argmax(got[0]), argmax(want), got[0], want)
	}
	for i := range want {
		if math.Abs(got[0][i]-want[i]) > 0.15 {
			t.Errorf("prob[%d] = %g, want ~%g", i, got[0][i], want[i])
		}
	}
	if led.Category("program").LatencyPS == 0 {
		t.Error("no programming cost charged")
	}
}

func TestApplyErrors(t *testing.T) {
	if err := Apply(nil, nil); err == nil {
		t.Error("nil plan accepted")
	}
	net := smallMLP(t)
	cfg := testFabricConfig()
	plan, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Applying twice collides on unit addresses.
	fabric, err := cim.NewFabric(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(plan, fabric); err != nil {
		t.Fatal(err)
	}
	if err := Apply(plan, fabric); err == nil {
		t.Error("double apply accepted")
	}
}

func TestPlanProgramRoundTrip(t *testing.T) {
	net := smallMLP(t)
	cfg := testFabricConfig()
	plan, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := plan.Program()
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("generated program invalid: %v", err)
	}
	// The program drives a fresh fabric to the same behaviour as Apply.
	fabric, err := cim.NewFabric(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range plan.Placements {
		micro := 1
		if pl.Kind == cim.KindCrossbar {
			micro = 4
		}
		if _, err := fabric.AddUnit(pl.Addr, pl.Kind, micro); err != nil {
			t.Fatal(err)
		}
	}
	if err := fabric.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 8)
	for i := range in {
		in[i] = float64(i) / 8
	}
	if err := fabric.Stream(plan.InputAddr, in); err != nil {
		t.Fatal(err)
	}
	out, err := fabric.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[plan.OutputAddr]) != 1 {
		t.Errorf("program-driven fabric produced %d results", len(out[plan.OutputAddr]))
	}
	// Binary round trip survives.
	code, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := isa.Decode(code); err != nil {
		t.Errorf("compiled program fails binary round trip: %v", err)
	}
}

func TestPlanProgramEmptyPlan(t *testing.T) {
	p := &Plan{}
	if _, err := p.Program(); err == nil {
		t.Error("empty plan serialized")
	}
}
