// Package compiler maps neural networks onto CIM fabrics — the software
// layer Section III.D calls for: "Compilers will further need to understand
// the architecture across micro-units and across tiles: data locality and
// how data is streamed across micro-units and across tiles; how graphs are
// built and mapped to physical units."
//
// The compiler lowers an nn.Network to a placement of units on a board
// mesh, assigning dense layers to crossbar units and activations to digital
// compute units, placing consecutive layers on mesh-adjacent tiles so
// stream traffic stays local. A Plan can be applied directly to a fabric or
// serialized to an ISA program (for tooling and program-carrying packets).
package compiler

import (
	"fmt"

	"cimrev/internal/cim"
	"cimrev/internal/isa"
	"cimrev/internal/nn"
	"cimrev/internal/packet"
)

// Placement records where one layer landed.
type Placement struct {
	// LayerIndex is the layer's position in the network.
	LayerIndex int
	// LayerName names the layer.
	LayerName string
	// Addr is the assigned unit address.
	Addr packet.Address
	// Kind is the unit hardware class.
	Kind cim.UnitKind
	// Fn is the configured ISA function.
	Fn isa.Function
	// Weights is the in x out matrix for MVM placements (nil otherwise).
	Weights [][]float64
}

// Plan is a compiled network: an ordered pipeline of placements.
type Plan struct {
	// NetworkName labels the source network.
	NetworkName string
	// Placements are in pipeline order.
	Placements []Placement
	// InputAddr receives inference inputs.
	InputAddr packet.Address
	// OutputAddr is the final pipeline stage (the sink where results
	// appear).
	OutputAddr packet.Address
}

// CrossbarUnits returns how many crossbar units the plan uses.
func (p *Plan) CrossbarUnits() int {
	var n int
	for _, pl := range p.Placements {
		if pl.Kind == cim.KindCrossbar {
			n++
		}
	}
	return n
}

// Compile lowers net onto a board described by cfg. Supported layers:
// Dense (crossbar MVM) and ActivationLayer (digital). Convolutional
// networks are executed by the DPE engine's layer orchestrator instead of
// being flattened to a static pipeline; Compile rejects them.
func Compile(net *nn.Network, cfg cim.Config) (*Plan, error) {
	if net == nil || len(net.Layers) == 0 {
		return nil, fmt.Errorf("compiler: empty network")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tiles := cfg.MeshW * cfg.MeshH
	plan := &Plan{NetworkName: net.Name}
	unitOnTile := make(map[int]uint16, tiles)
	for i, layer := range net.Layers {
		// Consecutive layers land on consecutive tiles (wrapping), so a
		// pipeline stage's successor is one mesh hop away row-major.
		tile := i % tiles
		unit := unitOnTile[tile]
		unitOnTile[tile] = unit + 1
		addr := packet.Address{Board: cfg.Board, Tile: uint16(tile), Unit: unit}

		var pl Placement
		switch l := layer.(type) {
		case *nn.Dense:
			pl = Placement{
				LayerIndex: i, LayerName: l.Name(), Addr: addr,
				Kind: cim.KindCrossbar, Fn: isa.FuncMVM, Weights: l.WeightMatrix(),
			}
		case *nn.ActivationLayer:
			fn, err := activationFunc(l.Kind())
			if err != nil {
				return nil, fmt.Errorf("compiler: layer %d: %w", i, err)
			}
			pl = Placement{
				LayerIndex: i, LayerName: l.Name(), Addr: addr,
				Kind: cim.KindCompute, Fn: fn,
			}
		default:
			return nil, fmt.Errorf("compiler: layer %d (%s) is not supported in a static pipeline; use the DPE engine", i, layer.Name())
		}
		plan.Placements = append(plan.Placements, pl)
	}
	plan.InputAddr = plan.Placements[0].Addr
	plan.OutputAddr = plan.Placements[len(plan.Placements)-1].Addr
	return plan, nil
}

func activationFunc(a nn.Activation) (isa.Function, error) {
	switch a {
	case nn.ActReLU:
		return isa.FuncReLU, nil
	case nn.ActSigmoid:
		return isa.FuncSigmoid, nil
	case nn.ActTanh:
		return isa.FuncTanh, nil
	case nn.ActSoftmax:
		return isa.FuncSoftmax, nil
	default:
		return 0, fmt.Errorf("compiler: unknown activation %v", a)
	}
}

// Apply instantiates the plan on a fabric: creates units, programs
// crossbars, and wires the pipeline.
func Apply(plan *Plan, fabric *cim.Fabric) error {
	if plan == nil || len(plan.Placements) == 0 {
		return fmt.Errorf("compiler: empty plan")
	}
	for _, pl := range plan.Placements {
		microUnits := 1
		if pl.Kind == cim.KindCrossbar {
			microUnits = 4
		}
		if _, err := fabric.AddUnit(pl.Addr, pl.Kind, microUnits); err != nil {
			return fmt.Errorf("compiler: place %s: %w", pl.LayerName, err)
		}
		if err := fabric.Configure(pl.Addr, pl.Fn, pl.Weights); err != nil {
			return fmt.Errorf("compiler: configure %s: %w", pl.LayerName, err)
		}
	}
	for i := 1; i < len(plan.Placements); i++ {
		src := plan.Placements[i-1].Addr
		dst := plan.Placements[i].Addr
		if err := fabric.Connect(src, dst); err != nil {
			return fmt.Errorf("compiler: connect stage %d: %w", i, err)
		}
	}
	return nil
}

// Program serializes the plan to an ISA program (weights inline), suitable
// for cimasm tooling or program-carrying packets.
func (p *Plan) Program() (isa.Program, error) {
	if len(p.Placements) == 0 {
		return nil, fmt.Errorf("compiler: empty plan")
	}
	var prog isa.Program
	for _, pl := range p.Placements {
		if pl.Fn == isa.FuncMVM {
			rows := len(pl.Weights)
			if rows == 0 {
				return nil, fmt.Errorf("compiler: MVM placement %s without weights", pl.LayerName)
			}
			cols := len(pl.Weights[0])
			data := make([]float64, 0, rows*cols)
			for _, row := range pl.Weights {
				data = append(data, row...)
			}
			prog = append(prog, isa.Instruction{
				Op: isa.OpLoadWeights, Unit: pl.Addr, Rows: rows, Cols: cols, Data: data,
			})
		}
		prog = append(prog, isa.Instruction{Op: isa.OpConfigure, Unit: pl.Addr, Fn: pl.Fn})
	}
	for i := 1; i < len(p.Placements); i++ {
		prog = append(prog, isa.Instruction{
			Op:    isa.OpConnect,
			Unit:  p.Placements[i-1].Addr,
			Unit2: p.Placements[i].Addr,
		})
	}
	prog = append(prog, isa.Instruction{Op: isa.OpHalt})
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}
