// Package associative implements the third architecture family in the
// paper's Section III.A taxonomy: "associative processors known as content
// addressable memory combined with nonvolatile memory, such as TCAM
// [53][54] and Associative Processors [55][56][57]".
//
// A TCAM matches a search key against every stored ternary word (0, 1,
// don't-care) in a single array cycle; an AssociativeProcessor extends it
// with parallel masked writes, enabling SIMD-style computation where the
// data lives — including bit-serial arithmetic over all rows at once.
package associative

import (
	"fmt"

	"cimrev/internal/energy"
)

// Search-cycle costs: one ternary match across the whole array is a single
// wordline/matchline cycle (resistive TCAMs match in a few ns).
const (
	matchCycleLatencyPS = 3_000 // 3 ns
	matchCellEnergyPJ   = 0.002
	writeCellEnergyPJ   = 0.5
	writeCycleLatencyPS = 10_000 // 10 ns
)

// TCAM is a ternary content-addressable memory of fixed-width rows. Each
// bit position stores 0, 1, or X (don't-care). Not safe for concurrent
// use.
type TCAM struct {
	rows  int
	width int // bits per row, <= 64
	// value and care are per-row bit masks: a stored bit matches the key
	// bit when care is 0 (X) or value agrees.
	value []uint64
	care  []uint64
	used  []bool
	led   *energy.Ledger
}

// NewTCAM returns an empty TCAM with the given geometry. Width is capped
// at 64 bits per row.
func NewTCAM(rows, width int, led *energy.Ledger) (*TCAM, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("associative: rows must be positive, got %d", rows)
	}
	if width <= 0 || width > 64 {
		return nil, fmt.Errorf("associative: width must be in [1,64], got %d", width)
	}
	return &TCAM{
		rows:  rows,
		width: width,
		value: make([]uint64, rows),
		care:  make([]uint64, rows),
		used:  make([]bool, rows),
		led:   led,
	}, nil
}

// Rows returns the row count.
func (t *TCAM) Rows() int { return t.rows }

// Width returns the row width in bits.
func (t *TCAM) Width() int { return t.width }

func (t *TCAM) widthMask() uint64 {
	if t.width == 64 {
		return ^uint64(0)
	}
	return (1 << t.width) - 1
}

func (t *TCAM) checkRow(row int) error {
	if row < 0 || row >= t.rows {
		return fmt.Errorf("associative: row %d outside [0,%d)", row, t.rows)
	}
	return nil
}

func (t *TCAM) charge(category string, c energy.Cost) {
	if t.led != nil {
		t.led.Charge(category, c)
	}
}

// Store writes a ternary word: bits where care is 0 are don't-care.
func (t *TCAM) Store(row int, value, care uint64) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	mask := t.widthMask()
	t.value[row] = value & care & mask
	t.care[row] = care & mask
	t.used[row] = true
	t.charge("tcam-store", energy.Cost{
		LatencyPS: writeCycleLatencyPS,
		EnergyPJ:  float64(t.width) * writeCellEnergyPJ,
	})
	return nil
}

// Erase invalidates a row.
func (t *TCAM) Erase(row int) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	t.used[row] = false
	t.charge("tcam-store", energy.Cost{
		LatencyPS: writeCycleLatencyPS,
		EnergyPJ:  float64(t.width) * writeCellEnergyPJ,
	})
	return nil
}

// Match returns every used row whose ternary word matches the key, in one
// parallel search cycle. keyMask selects which key bits participate
// (bits outside keyMask match anything — a ternary *search*).
func (t *TCAM) Match(key, keyMask uint64) ([]int, energy.Cost) {
	mask := t.widthMask()
	key &= mask
	keyMask &= mask
	var hits []int
	for r := 0; r < t.rows; r++ {
		if !t.used[r] {
			continue
		}
		compare := t.care[r] & keyMask
		if (t.value[r]^key)&compare == 0 {
			hits = append(hits, r)
		}
	}
	cost := energy.Cost{
		LatencyPS: matchCycleLatencyPS,
		EnergyPJ:  float64(t.rows*t.width) * matchCellEnergyPJ,
	}
	t.charge("tcam-match", cost)
	return hits, cost
}

// LongestPrefixMatch performs the classic TCAM routing lookup: among rows
// matching the key, return the one with the most cared (non-X) bits.
// Returns -1 when nothing matches.
func (t *TCAM) LongestPrefixMatch(key uint64) (int, energy.Cost) {
	hits, cost := t.Match(key, t.widthMask())
	best, bestBits := -1, -1
	for _, r := range hits {
		bits := popcount(t.care[r])
		if bits > bestBits {
			best, bestBits = r, bits
		}
	}
	return best, cost
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
