package associative

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cimrev/internal/energy"
)

func TestTCAMValidation(t *testing.T) {
	if _, err := NewTCAM(0, 8, nil); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewTCAM(4, 0, nil); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewTCAM(4, 65, nil); err == nil {
		t.Error("width > 64 accepted")
	}
	tc, err := NewTCAM(4, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Rows() != 4 || tc.Width() != 64 {
		t.Error("geometry wrong")
	}
	if err := tc.Store(9, 0, 0); err == nil {
		t.Error("out-of-range store accepted")
	}
	if err := tc.Erase(-1); err == nil {
		t.Error("out-of-range erase accepted")
	}
}

func TestTCAMExactMatch(t *testing.T) {
	led := energy.NewLedger()
	tc, err := NewTCAM(8, 16, led)
	if err != nil {
		t.Fatal(err)
	}
	full := uint64(0xFFFF)
	if err := tc.Store(0, 0xABCD, full); err != nil {
		t.Fatal(err)
	}
	if err := tc.Store(3, 0x1234, full); err != nil {
		t.Fatal(err)
	}
	hits, cost := tc.Match(0xABCD, full)
	if !reflect.DeepEqual(hits, []int{0}) {
		t.Errorf("hits = %v, want [0]", hits)
	}
	if cost.LatencyPS != matchCycleLatencyPS {
		t.Errorf("match latency = %d, want one cycle", cost.LatencyPS)
	}
	hits, _ = tc.Match(0x9999, full)
	if hits != nil {
		t.Errorf("spurious hits %v", hits)
	}
	if led.Category("tcam-match").EnergyPJ == 0 {
		t.Error("no match energy charged")
	}
}

func TestTCAMTernaryDontCare(t *testing.T) {
	tc, err := NewTCAM(4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: 1010XXXX — matches any low nibble.
	if err := tc.Store(0, 0xA0, 0xF0); err != nil {
		t.Fatal(err)
	}
	for _, key := range []uint64{0xA0, 0xA5, 0xAF} {
		hits, _ := tc.Match(key, 0xFF)
		if !reflect.DeepEqual(hits, []int{0}) {
			t.Errorf("key %#x: hits = %v, want [0]", key, hits)
		}
	}
	if hits, _ := tc.Match(0xB0, 0xFF); hits != nil {
		t.Errorf("key B0 should not match: %v", hits)
	}
	// Search-side mask: ignore the high nibble entirely.
	if err := tc.Store(1, 0x3C, 0xFF); err != nil {
		t.Fatal(err)
	}
	hits, _ := tc.Match(0x0C, 0x0F)
	if !reflect.DeepEqual(hits, []int{0, 1}) {
		t.Errorf("masked search hits = %v, want [0 1]", hits)
	}
}

func TestTCAMEraseAndReuse(t *testing.T) {
	tc, err := NewTCAM(2, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Store(0, 0x11, 0xFF); err != nil {
		t.Fatal(err)
	}
	if err := tc.Erase(0); err != nil {
		t.Fatal(err)
	}
	if hits, _ := tc.Match(0x11, 0xFF); hits != nil {
		t.Errorf("erased row matched: %v", hits)
	}
}

func TestTCAMLongestPrefixMatch(t *testing.T) {
	// Classic route table: /4, /6, /8 prefixes over 8-bit "addresses".
	tc, err := NewTCAM(4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Store(0, 0xA0, 0xF0); err != nil { // 1010XXXX
		t.Fatal(err)
	}
	if err := tc.Store(1, 0xA8, 0xFC); err != nil { // 101010XX
		t.Fatal(err)
	}
	if err := tc.Store(2, 0xAA, 0xFF); err != nil { // 10101010
		t.Fatal(err)
	}
	cases := []struct {
		key  uint64
		want int
	}{
		{0xAA, 2}, // exact
		{0xAB, 1}, // /6
		{0xA1, 0}, // /4
		{0x51, -1},
	}
	for _, c := range cases {
		got, _ := tc.LongestPrefixMatch(c.key)
		if got != c.want {
			t.Errorf("LPM(%#x) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestProcessorCompareTaggedWrite(t *testing.T) {
	led := energy.NewLedger()
	p, err := NewProcessor(8, 16, led)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if err := p.Write(r, uint64(r)); err != nil {
			t.Fatal(err)
		}
	}
	// Tag rows with low bit set (odd values), then set bit 8 on them.
	n := p.Compare(1, 1)
	if n != 4 {
		t.Errorf("Compare tagged %d rows, want 4", n)
	}
	written := p.TaggedWrite(1<<8, 1<<8)
	if written != 4 {
		t.Errorf("TaggedWrite touched %d rows, want 4", written)
	}
	v, err := p.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3|1<<8 {
		t.Errorf("row 3 = %#x", v)
	}
	v, _ = p.Read(2)
	if v != 2 {
		t.Errorf("untagged row modified: %#x", v)
	}
	if led.Category("ap-compare").EnergyPJ == 0 {
		t.Error("no compare energy charged")
	}
}

func TestProcessorValidation(t *testing.T) {
	if _, err := NewProcessor(0, 8, nil); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewProcessor(4, 70, nil); err == nil {
		t.Error("width > 64 accepted")
	}
	p, err := NewProcessor(2, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(5, 0); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, err := p.Read(-1); err == nil {
		t.Error("out-of-range read accepted")
	}
}

// Property: AddConstant matches scalar addition (mod 2^width) on every row.
func TestProcessorAddConstantProperty(t *testing.T) {
	f := func(vals []uint16, k uint16) bool {
		if len(vals) == 0 {
			return true
		}
		p, err := NewProcessor(len(vals), 16, nil)
		if err != nil {
			return false
		}
		for r, v := range vals {
			if err := p.Write(r, uint64(v)); err != nil {
				return false
			}
		}
		p.AddConstant(uint64(k))
		for r, v := range vals {
			got, err := p.Read(r)
			if err != nil {
				return false
			}
			if got != uint64(v+k) { // uint16 wraps like the 16-bit AP
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProcessorAddCostRowIndependent(t *testing.T) {
	// The AP's defining property: adding to 1000 rows costs the same
	// latency as adding to 10.
	small, err := NewProcessor(10, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewProcessor(1000, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := small.AddConstant(5)
	cb := big.AddConstant(5)
	if cs.LatencyPS != cb.LatencyPS {
		t.Errorf("latency depends on rows: %d vs %d", cs.LatencyPS, cb.LatencyPS)
	}
	if cb.EnergyPJ <= cs.EnergyPJ {
		t.Error("energy should grow with rows")
	}
}

func TestProcessorMax(t *testing.T) {
	p, err := NewProcessor(5, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := []uint64{17, 9000, 3, 8999, 42}
	for r, v := range vals {
		if err := p.Write(r, v); err != nil {
			t.Fatal(err)
		}
	}
	got, cost := p.Max()
	if got != 9000 {
		t.Errorf("Max = %d, want 9000", got)
	}
	if cost.LatencyPS != 16*matchCycleLatencyPS {
		t.Errorf("Max latency = %d, want width cycles", cost.LatencyPS)
	}
}

// Property: Max matches the scalar maximum.
func TestProcessorMaxProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Values: func(vals []reflect.Value, r *rand.Rand) {
		n := 1 + r.Intn(30)
		vs := make([]uint16, n)
		for i := range vs {
			vs[i] = uint16(r.Uint32())
		}
		vals[0] = reflect.ValueOf(vs)
	}}
	f := func(vs []uint16) bool {
		p, err := NewProcessor(len(vs), 16, nil)
		if err != nil {
			return false
		}
		var want uint64
		for r, v := range vs {
			if err := p.Write(r, uint64(v)); err != nil {
				return false
			}
			if uint64(v) > want {
				want = uint64(v)
			}
		}
		got, _ := p.Max()
		return got == want
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
