package associative

import (
	"fmt"

	"cimrev/internal/energy"
)

// Processor is an associative processor: a CAM array extended with
// parallel masked writes, computing "where the data is" by sweeping
// compare-and-write passes over all rows simultaneously. Arithmetic is
// bit-serial but row-parallel: adding a constant to a million rows costs
// the same cycles as adding it to one.
type Processor struct {
	rows  int
	width int
	data  []uint64
	tags  []bool // per-row tag register set by Compare
	led   *energy.Ledger
}

// NewProcessor returns a zeroed associative processor.
func NewProcessor(rows, width int, led *energy.Ledger) (*Processor, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("associative: rows must be positive, got %d", rows)
	}
	if width <= 0 || width > 64 {
		return nil, fmt.Errorf("associative: width must be in [1,64], got %d", width)
	}
	return &Processor{
		rows:  rows,
		width: width,
		data:  make([]uint64, rows),
		tags:  make([]bool, rows),
		led:   led,
	}, nil
}

// Rows returns the row count.
func (p *Processor) Rows() int { return p.rows }

func (p *Processor) widthMask() uint64 {
	if p.width == 64 {
		return ^uint64(0)
	}
	return (1 << p.width) - 1
}

func (p *Processor) charge(category string, latencyPS int64, energyPJ float64) {
	if p.led != nil {
		p.led.Charge(category, energy.Cost{LatencyPS: latencyPS, EnergyPJ: energyPJ})
	}
}

// Write stores a word in one row.
func (p *Processor) Write(row int, value uint64) error {
	if row < 0 || row >= p.rows {
		return fmt.Errorf("associative: row %d outside [0,%d)", row, p.rows)
	}
	p.data[row] = value & p.widthMask()
	p.charge("ap-write", writeCycleLatencyPS, float64(p.width)*writeCellEnergyPJ)
	return nil
}

// Read returns one row's word.
func (p *Processor) Read(row int) (uint64, error) {
	if row < 0 || row >= p.rows {
		return 0, fmt.Errorf("associative: row %d outside [0,%d)", row, p.rows)
	}
	return p.data[row], nil
}

// Compare tags every row whose masked bits equal pattern — one parallel
// cycle regardless of row count.
func (p *Processor) Compare(pattern, mask uint64) int {
	mask &= p.widthMask()
	pattern &= mask
	n := 0
	for r := range p.data {
		p.tags[r] = p.data[r]&mask == pattern
		if p.tags[r] {
			n++
		}
	}
	p.charge("ap-compare", matchCycleLatencyPS, float64(p.rows*p.width)*matchCellEnergyPJ)
	return n
}

// TaggedWrite writes value into the masked bits of every tagged row — the
// second half of the AP compare/write primitive.
func (p *Processor) TaggedWrite(value, mask uint64) int {
	mask &= p.widthMask()
	value &= mask
	n := 0
	for r := range p.data {
		if p.tags[r] {
			p.data[r] = (p.data[r] &^ mask) | value
			n++
		}
	}
	p.charge("ap-write", writeCycleLatencyPS, float64(n)*float64(popcount(mask))*writeCellEnergyPJ)
	return n
}

// AddConstant adds k to every row simultaneously using bit-serial
// compare/write passes: for each bit position, rows are partitioned by
// (data bit, carry) and rewritten per the full-adder truth table. The
// carry rides in a dedicated tag pass per bit, so the whole operation
// costs O(width) cycles for any number of rows — the associative
// processor's defining trade.
func (p *Processor) AddConstant(k uint64) energy.Cost {
	mask := p.widthMask()
	k &= mask
	carry := make([]bool, p.rows)
	cycles := 0
	for bit := 0; bit < p.width; bit++ {
		kb := k&(1<<bit) != 0
		bitMask := uint64(1) << bit
		// Four compare/write passes cover the (data, carry) truth table;
		// this software model applies them in one sweep while charging
		// the four-cycle cost.
		for r := range p.data {
			db := p.data[r]&bitMask != 0
			sum := db != kb != carry[r]
			carry[r] = (db && kb) || (db && carry[r]) || (kb && carry[r])
			if sum {
				p.data[r] |= bitMask
			} else {
				p.data[r] &^= bitMask
			}
		}
		cycles += 4
	}
	cost := energy.Cost{
		LatencyPS: int64(cycles) * (matchCycleLatencyPS + writeCycleLatencyPS),
		EnergyPJ:  float64(cycles) * float64(p.rows) * (matchCellEnergyPJ + writeCellEnergyPJ),
	}
	if p.led != nil {
		p.led.Charge("ap-add", cost)
	}
	return cost
}

// Max returns the maximum stored value via bit-serial elimination: from the
// MSB down, if any surviving row has the bit set, rows without it are
// eliminated. O(width) cycles, row-count independent.
func (p *Processor) Max() (uint64, energy.Cost) {
	alive := make([]bool, p.rows)
	for r := range alive {
		alive[r] = true
	}
	var result uint64
	for bit := p.width - 1; bit >= 0; bit-- {
		bitMask := uint64(1) << bit
		any := false
		for r := range p.data {
			if alive[r] && p.data[r]&bitMask != 0 {
				any = true
				break
			}
		}
		if any {
			result |= bitMask
			for r := range p.data {
				if alive[r] && p.data[r]&bitMask == 0 {
					alive[r] = false
				}
			}
		}
	}
	cost := energy.Cost{
		LatencyPS: int64(p.width) * matchCycleLatencyPS,
		EnergyPJ:  float64(p.width) * float64(p.rows) * matchCellEnergyPJ,
	}
	if p.led != nil {
		p.led.Charge("ap-max", cost)
	}
	return result, cost
}
