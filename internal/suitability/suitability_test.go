package suitability

import (
	"testing"

	"cimrev/internal/workloads"
)

func TestTable2MatchesPaper(t *testing.T) {
	results, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 14 {
		t.Fatalf("Table2 produced %d rows, want 14", len(results))
	}
	for _, r := range results {
		if !r.Agrees() {
			t.Errorf("%-28s measured %v (speedup %.2fx) but paper says %v",
				r.Class, r.Measured, r.Speedup, r.Paper)
		}
	}
}

func TestHighClassesAlsoWinOnEnergy(t *testing.T) {
	results, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Measured == RatingHigh && r.EnergyX < 1 {
			t.Errorf("%v rated high but costs more energy (%.2fx)", r.Class, r.EnergyX)
		}
	}
}

func TestScoreScaleInvariantRatings(t *testing.T) {
	// Ratings should be stable across a 10x scale range: the model is
	// ratio-driven, not magnitude-driven.
	for _, c := range workloads.Classes() {
		small, err := Score(c, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		large, err := Score(c, 5.0)
		if err != nil {
			t.Fatal(err)
		}
		if small.Measured != large.Measured {
			t.Errorf("%v rating unstable across scale: %v vs %v", c, small.Measured, large.Measured)
		}
	}
}

func TestScoreValidation(t *testing.T) {
	if _, err := Score(workloads.KVS, 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Score(workloads.Class(99), 1); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestCostModelsPositive(t *testing.T) {
	for _, c := range workloads.Classes() {
		k, err := c.Kernel(1)
		if err != nil {
			t.Fatal(err)
		}
		vn, err := VNCost(k)
		if err != nil {
			t.Fatal(err)
		}
		cim, err := CIMCost(k)
		if err != nil {
			t.Fatal(err)
		}
		if vn.LatencyPS <= 0 || vn.EnergyPJ <= 0 {
			t.Errorf("%v: degenerate VN cost %v", c, vn)
		}
		if cim.LatencyPS <= 0 || cim.EnergyPJ <= 0 {
			t.Errorf("%v: degenerate CIM cost %v", c, cim)
		}
	}
}

func TestCostValidation(t *testing.T) {
	bad := workloads.Kernel{Flops: -1}
	if _, err := VNCost(bad); err == nil {
		t.Error("invalid kernel accepted by VNCost")
	}
	if _, err := CIMCost(bad); err == nil {
		t.Error("invalid kernel accepted by CIMCost")
	}
}

func TestRatingStrings(t *testing.T) {
	if RatingLow.String() != "low" || RatingMedium.String() != "medium" || RatingHigh.String() != "high" {
		t.Error("rating strings wrong")
	}
}

func TestMVMFracDrivesBenefit(t *testing.T) {
	// Sensitivity: raising MVMFrac on an otherwise identical kernel must
	// not slow CIM down.
	k, err := workloads.Scientific.Kernel(1)
	if err != nil {
		t.Fatal(err)
	}
	low := k
	low.MVMFrac = 0.1
	high := k
	high.MVMFrac = 0.9
	cl, err := CIMCost(low)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := CIMCost(high)
	if err != nil {
		t.Fatal(err)
	}
	if ch.LatencyPS >= cl.LatencyPS {
		t.Errorf("higher MVMFrac did not speed up CIM: %d vs %d", ch.LatencyPS, cl.LatencyPS)
	}
}

func TestCommunicationHurtsCIM(t *testing.T) {
	k, err := workloads.GraphProblems.Kernel(1)
	if err != nil {
		t.Fatal(err)
	}
	quiet := k
	quiet.Rounds = 10
	chatty := k
	chatty.Rounds = 1e7
	cq, err := CIMCost(quiet)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := CIMCost(chatty)
	if err != nil {
		t.Fatal(err)
	}
	if cc.LatencyPS <= cq.LatencyPS {
		t.Error("communication rounds did not slow CIM")
	}
}
