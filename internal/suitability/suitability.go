// Package suitability turns the paper's qualitative Table 2 into measured
// quantities: it runs each application-class kernel through a Von Neumann
// cost model and a CIM cost model, computes latency and energy ratios, and
// thresholds them back into the paper's low/medium/high CIM-benefit scale.
package suitability

import (
	"fmt"

	"cimrev/internal/energy"
	"cimrev/internal/workloads"
)

// The CIM-side model constants (board scale, per-op energies) live in
// internal/energy next to the CPU/GPU figures they are compared against —
// energy.CIMPeakOps and friends — so suitability scoring and the hybrid
// dispatcher's static routing prior price the fabric identically.

// Rating is the CIM-benefit verdict.
type Rating int

const (
	// RatingLow means CIM offers under 1.5x.
	RatingLow Rating = iota + 1
	// RatingMedium means 1.5-5x.
	RatingMedium
	// RatingHigh means 5x or better.
	RatingHigh
)

// String names the rating as Table 2 prints it.
func (r Rating) String() string {
	switch r {
	case RatingLow:
		return "low"
	case RatingMedium:
		return "medium"
	case RatingHigh:
		return "high"
	default:
		return fmt.Sprintf("rating(%d)", int(r))
	}
}

// Thresholds for mapping the speedup to a rating, exported so runtime
// consumers (the hybrid dispatcher's crossover sweep) report the same
// low/medium/high boundaries the offline Table 2 scoring uses.
const (
	// MediumThreshold is the speedup above which CIM benefit is "medium".
	MediumThreshold = 1.5
	// HighThreshold is the speedup above which CIM benefit is "high".
	HighThreshold = 5.0
)

// RatingFor maps a VN/CIM latency speedup onto the Table 2 scale.
func RatingFor(speedup float64) Rating {
	switch {
	case speedup >= HighThreshold:
		return RatingHigh
	case speedup >= MediumThreshold:
		return RatingMedium
	default:
		return RatingLow
	}
}

// Result is one scored class.
type Result struct {
	Class    workloads.Class
	VN       energy.Cost
	CIM      energy.Cost
	Speedup  float64 // VN latency / CIM latency
	EnergyX  float64 // VN energy / CIM energy
	Measured Rating
	Paper    workloads.Level
}

// Agrees reports whether the measured rating matches the paper's cell.
func (r Result) Agrees() bool {
	return int(r.Measured) == int(r.Paper)
}

// VNCost prices the kernel on the Von Neumann baseline (roofline CPU).
func VNCost(k workloads.Kernel) (energy.Cost, error) {
	if err := k.Validate(); err != nil {
		return energy.Zero, err
	}
	computeS := k.Flops / energy.CPUPeakFlops
	memoryS := k.DataBytes / energy.CPUMemBandwidth
	runS := computeS
	if memoryS > runS {
		runS = memoryS
	}
	latency := energy.PicosecondsFromSeconds(runS)
	dynamic := k.Flops*energy.CPUFlopEnergyPJ + k.DataBytes*energy.DRAMAccessEnergyPJPerByte
	static := energy.CPUStaticPowerW * runS * 1e12
	return energy.Cost{LatencyPS: latency, EnergyPJ: dynamic + static}, nil
}

// CIMCost prices the kernel on the CIM fabric model: the mappable fraction
// runs in-array at massive parallel rate, the remainder on digital
// micro-units, streaming covers only non-stationary data, and each
// dataflow round serializes on the mesh.
func CIMCost(k workloads.Kernel) (energy.Cost, error) {
	if err := k.Validate(); err != nil {
		return energy.Zero, err
	}
	mvmOps := k.Flops * k.MVMFrac
	ctrlOps := k.Flops - mvmOps
	streamBytes := k.DataBytes * (1 - k.StationaryFrac)

	mvmS := mvmOps / (energy.CIMPeakOps * k.Parallelism)
	ctrlS := ctrlOps / energy.CIMControlFlops
	streamS := streamBytes / energy.CIMMeshBandwidth
	roundS := k.Rounds * energy.CIMRoundLatencyS
	runS := mvmS + ctrlS + streamS + roundS

	latency := energy.PicosecondsFromSeconds(runS)
	dynamic := mvmOps*energy.CIMMVMOpEnergyPJ + ctrlOps*energy.CIMControlOpEnergyPJ +
		streamBytes*energy.CIMStreamEnergyPJPerByte
	static := energy.CIMStaticPowerW * runS * 1e12
	return energy.Cost{LatencyPS: latency, EnergyPJ: dynamic + static}, nil
}

// Score runs both models on one class at the given scale.
func Score(c workloads.Class, scale float64) (Result, error) {
	k, err := c.Kernel(scale)
	if err != nil {
		return Result{}, err
	}
	vn, err := VNCost(k)
	if err != nil {
		return Result{}, err
	}
	cim, err := CIMCost(k)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Class: c,
		VN:    vn,
		CIM:   cim,
		Paper: c.Traits().PaperCIM,
	}
	if cim.LatencyPS > 0 {
		res.Speedup = float64(vn.LatencyPS) / float64(cim.LatencyPS)
	}
	if cim.EnergyPJ > 0 {
		res.EnergyX = vn.EnergyPJ / cim.EnergyPJ
	}
	res.Measured = RatingFor(res.Speedup)
	return res, nil
}

// Table2 scores every class at the reference scale, in table order.
func Table2() ([]Result, error) {
	classes := workloads.Classes()
	out := make([]Result, 0, len(classes))
	for _, c := range classes {
		r, err := Score(c, 1.0)
		if err != nil {
			return nil, fmt.Errorf("suitability: %v: %w", c, err)
		}
		out = append(out, r)
	}
	return out, nil
}
