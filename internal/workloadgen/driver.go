package workloadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cimrev/internal/metrics"
)

// Request is one unit of offered load handed to a SubmitFunc.
type Request struct {
	// Seq is the request's global sequence number — the noise key for
	// keyed submission (fleet.SubmitSeq) and the arrival index in the
	// schedule.
	Seq uint64
	// Class is the request's traffic class (SingleClass when the drive
	// has no mix).
	Class Class
	// Scheduled is the request's intended fire time as an offset from
	// the start of the run (0 in closed-loop mode, where there is no
	// schedule).
	Scheduled time.Duration
	// Lateness is how far behind schedule the request actually fired —
	// scheduler slip, not service time. An open-loop driver that cannot
	// keep its own schedule is overloaded before the backend even
	// answers; lateness makes that visible separately from latency.
	Lateness time.Duration
}

// Outcome classifies one submission attempt.
type Outcome int

const (
	// OK: the request was served.
	OK Outcome = iota
	// Shed: the backend refused the request for capacity (backpressure,
	// limiter). Closed-loop drives back off and retry — a closed-loop
	// client has nothing else to do; open-loop drives count it and move
	// on — the schedule does not wait for the backend to recover.
	Shed
	// Drop: the request was refused for a non-capacity reason (health,
	// deadline, brownout) and must not be retried.
	Drop
	// Fatal: the run is broken; the drive stops issuing and reports the
	// submission's error.
	Fatal
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Shed:
		return "shed"
	case Drop:
		return "drop"
	case Fatal:
		return "fatal"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// SubmitFunc submits one request to the backend and classifies the
// result. The error is reported only for Fatal outcomes. SubmitFunc must
// be safe for concurrent calls.
type SubmitFunc func(Request) (Outcome, error)

// DriveConfig configures one load-generation run.
type DriveConfig struct {
	// Arrivals selects open-loop mode: requests fire on the process's
	// schedule whether or not the backend keeps up. Nil selects
	// closed-loop mode: Clients workers each issue their next request
	// the moment the previous one returns.
	Arrivals Arrivals
	// Mix assigns request classes; nil gives every request SingleClass.
	Mix Picker
	// Requests is the total number of requests to issue (>= 1).
	Requests int
	// Clients is the closed-loop concurrency (>= 1 when Arrivals is
	// nil; ignored in open-loop mode, where concurrency is however many
	// requests are in flight at once — that is the point).
	Clients int
	// RetryBackoff is the closed-loop pause before retrying a Shed
	// request. Default 50us.
	RetryBackoff time.Duration
}

// validate fails fast on degenerate parameters.
func (c DriveConfig) validate() error {
	switch {
	case c.Requests < 1:
		return fmt.Errorf("workloadgen: drive needs requests >= 1, got %d", c.Requests)
	case c.Arrivals == nil && c.Clients < 1:
		return fmt.Errorf("workloadgen: closed-loop drive needs clients >= 1, got %d", c.Clients)
	}
	return nil
}

// Report is what one drive measured.
type Report struct {
	// Requests is the offered request count; OKs completed, Sheds were
	// refused for capacity (and, open loop, never retried), Drops were
	// refused for health/deadline reasons, Retries counts closed-loop
	// re-submissions after a Shed.
	Requests int
	OKs      int64
	Sheds    int64
	Drops    int64
	Retries  int64
	// Wall is issue-to-drain wall time of the whole run.
	Wall time.Duration
	// OfferedRPS is the schedule's nominal rate (open loop; 0 closed —
	// a closed loop has no offered rate, which is exactly its blind
	// spot). AchievedRPS is OKs divided by Wall.
	OfferedRPS  float64
	AchievedRPS float64
	// Latency is the client-observed service latency of OK requests —
	// submit to answer, queueing included.
	Latency metrics.HistogramSnapshot
	// Lateness is the open-loop schedule slip of every fired request.
	// Growing lateness means the scheduler itself cannot keep up
	// (extreme overload); zero in closed-loop mode.
	Lateness metrics.HistogramSnapshot
	// PeakInFlight is the maximum number of concurrently outstanding
	// requests observed — the open-loop queue-growth witness.
	PeakInFlight int64
}

// Drive issues cfg.Requests requests at submit and returns the
// measurements. The schedule (arrival times and classes) is a pure
// function of the process and mix seeds; only the wall-clock outcomes
// depend on the host.
func Drive(cfg DriveConfig, submit SubmitFunc) (Report, error) {
	if err := cfg.validate(); err != nil {
		return Report{}, err
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Microsecond
	}
	d := &driver{cfg: cfg, submit: submit, latency: metrics.NewHistogram(), lateness: metrics.NewHistogram()}
	start := time.Now()
	if cfg.Arrivals != nil {
		d.runOpen(start)
	} else {
		d.runClosed()
	}
	wall := time.Since(start)

	rep := Report{
		Requests:     cfg.Requests,
		OKs:          d.oks.Load(),
		Sheds:        d.sheds.Load(),
		Drops:        d.drops.Load(),
		Retries:      d.retries.Load(),
		Wall:         wall,
		Latency:      d.latency.Snapshot(),
		Lateness:     d.lateness.Snapshot(),
		PeakInFlight: d.peak.Load(),
	}
	if cfg.Arrivals != nil {
		rep.OfferedRPS = cfg.Arrivals.Rate()
	}
	if wall > 0 {
		rep.AchievedRPS = float64(rep.OKs) / wall.Seconds()
	}
	if err, ok := d.firstErr.Load().(error); ok && err != nil {
		return rep, err
	}
	return rep, nil
}

// driver carries one drive's shared state.
type driver struct {
	cfg    DriveConfig
	submit SubmitFunc

	oks, sheds, drops, retries atomic.Int64
	inflight, peak             atomic.Int64
	firstErr                   atomic.Value
	latency, lateness          *metrics.Histogram
}

// request builds the Request for sequence seq.
func (d *driver) request(seq uint64, scheduled, lateness time.Duration) Request {
	class := singleClass
	if d.cfg.Mix != nil {
		class = d.cfg.Mix.Pick(seq)
	}
	return Request{Seq: seq, Class: class, Scheduled: scheduled, Lateness: lateness}
}

// fire submits one request, classifies the outcome, and records latency.
// It returns true when the closed loop should retry the same request.
func (d *driver) fire(req Request) (retry bool) {
	n := d.inflight.Add(1)
	for {
		p := d.peak.Load()
		if n <= p || d.peak.CompareAndSwap(p, n) {
			break
		}
	}
	defer d.inflight.Add(-1)

	t0 := time.Now()
	out, err := d.submit(req)
	switch out {
	case OK:
		d.latency.Observe(float64(time.Since(t0).Nanoseconds()))
		d.oks.Add(1)
	case Shed:
		d.sheds.Add(1)
		// Open loop never retries: the schedule has moved on and a
		// retry would be a new (unscheduled) arrival.
		return d.cfg.Arrivals == nil
	case Drop:
		d.drops.Add(1)
	case Fatal:
		if err == nil {
			err = fmt.Errorf("workloadgen: submit reported a fatal outcome without an error")
		}
		d.firstErr.CompareAndSwap(nil, err)
	}
	return false
}

// runOpen fires the absolute schedule: arrival i at start + Times[i],
// catch-up semantics when the host oversleeps. Gaps below the host's
// sleep granularity are handled by the absolute schedule — oversleeping
// one arrival makes the following ones fire immediately until the
// schedule is caught up, so the offered rate holds even when single gaps
// cannot be slept accurately.
func (d *driver) runOpen(start time.Time) {
	var wg sync.WaitGroup
	next := start
	var elapsed time.Duration
	for seq := 0; seq < d.cfg.Requests; seq++ {
		if _, broken := d.firstErr.Load().(error); broken {
			break
		}
		gap := d.cfg.Arrivals.Gap(uint64(seq))
		elapsed += gap
		next = next.Add(gap)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		lateness := time.Since(start) - elapsed
		if lateness < 0 {
			lateness = 0
		}
		d.lateness.Observe(float64(lateness.Nanoseconds()))
		req := d.request(uint64(seq), elapsed, lateness)
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.fire(req)
		}()
	}
	wg.Wait()
}

// runClosed runs the classic closed loop: Clients workers, each issuing
// its next request the moment the previous one completes, retrying Shed
// requests after the backoff.
func (d *driver) runClosed() {
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < d.cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq := next.Add(1) - 1
				if seq >= int64(d.cfg.Requests) {
					return
				}
				if _, broken := d.firstErr.Load().(error); broken {
					return
				}
				req := d.request(uint64(seq), 0, 0)
				for d.fire(req) {
					d.retries.Add(1)
					time.Sleep(d.cfg.RetryBackoff)
				}
			}
		}()
	}
	wg.Wait()
}
