package workloadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Trace is a recorded arrival schedule: absolute arrival offsets plus the
// request class of each arrival. Traces serialize to JSON, round-trip
// bit-identically, and replay through TraceReplay — record a schedule
// once (from a synthetic process or, in principle, production logs) and
// every replay fires the same train.
type Trace struct {
	// Source names the process the trace was recorded from.
	Source string `json:"source"`
	// RateRPS is the nominal rate of the recorded process.
	RateRPS float64 `json:"rate_rps"`
	// TimesNS are the absolute arrival offsets from schedule start, in
	// nanoseconds, nondecreasing.
	TimesNS []int64 `json:"times_ns"`
	// Classes holds the class name of each arrival; empty means every
	// arrival is the implicit single class. When present it must be the
	// same length as TimesNS.
	Classes []string `json:"classes,omitempty"`
}

// Record materializes n arrivals of the process (and, when pick is
// non-nil, their classes) into a trace. The recorded schedule is the
// exact schedule an open-loop drive of (a, pick, n) fires.
func Record(a Arrivals, pick Picker, n int) (*Trace, error) {
	if a == nil || n < 1 {
		return nil, fmt.Errorf("workloadgen: recording needs a process and n >= 1")
	}
	times := Times(a, n)
	t := &Trace{Source: a.Name(), RateRPS: a.Rate(), TimesNS: make([]int64, n)}
	for i, d := range times {
		t.TimesNS[i] = int64(d)
	}
	if pick != nil {
		t.Classes = make([]string, n)
		for i := range t.Classes {
			t.Classes[i] = pick.Pick(uint64(i)).Name
		}
	}
	return t, nil
}

// Validate reports whether the trace is well-formed.
func (t *Trace) Validate() error {
	if len(t.TimesNS) == 0 {
		return fmt.Errorf("workloadgen: trace has no arrivals")
	}
	prev := int64(0)
	for i, ts := range t.TimesNS {
		if ts < prev {
			return fmt.Errorf("workloadgen: trace times decrease at arrival %d (%d < %d)", i, ts, prev)
		}
		prev = ts
	}
	if len(t.Classes) != 0 && len(t.Classes) != len(t.TimesNS) {
		return fmt.Errorf("workloadgen: trace has %d classes for %d arrivals", len(t.Classes), len(t.TimesNS))
	}
	return nil
}

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadTrace deserializes and validates a trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("workloadgen: decode trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Replay returns the trace as an arrival process. Replays past the
// recorded window cycle: arrival n+i fires one period after arrival i,
// where the period is the recorded span padded by one mean gap (so the
// wrap gap is never zero).
func (t *Trace) Replay() (*TraceReplay, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := len(t.TimesNS)
	span := t.TimesNS[n-1]
	var meanGap int64
	if n > 1 {
		meanGap = span / int64(n-1)
	}
	if meanGap <= 0 {
		meanGap = int64(time.Millisecond)
	}
	rate := t.RateRPS
	if rate <= 0 {
		rate = float64(n) / (float64(span+meanGap) * 1e-9)
	}
	return &TraceReplay{trace: t, period: span + meanGap, rate: rate}, nil
}

// TraceReplay replays a trace as an Arrivals process, cycling past the
// recorded window. Immutable after construction; safe for concurrent
// use.
type TraceReplay struct {
	trace  *Trace
	period int64
	rate   float64
}

// Name implements Arrivals.
func (r *TraceReplay) Name() string { return "trace" }

// Rate implements Arrivals: the recorded process's nominal rate, or the
// empirical rate of the recorded window when the trace does not carry
// one.
func (r *TraceReplay) Rate() float64 { return r.rate }

// Len returns the number of recorded arrivals (one replay cycle).
func (r *TraceReplay) Len() int { return len(r.trace.TimesNS) }

// at returns the absolute offset of arrival i, cycling past the recorded
// window.
func (r *TraceReplay) at(i uint64) int64 {
	n := uint64(len(r.trace.TimesNS))
	return int64(i/n)*r.period + r.trace.TimesNS[i%n]
}

// Gap implements Arrivals: the difference of consecutive recorded
// offsets.
func (r *TraceReplay) Gap(i uint64) time.Duration {
	if i == 0 {
		return time.Duration(r.trace.TimesNS[0])
	}
	return time.Duration(r.at(i) - r.at(i-1))
}

// ClassNames reports whether the trace carries per-arrival classes.
func (r *TraceReplay) ClassNames() bool { return len(r.trace.Classes) > 0 }

// Picker resolves the trace's recorded class names against the mix that
// defines them, returning a Picker that replays the recorded class
// sequence (cycling like the schedule). A trace without classes replays
// the implicit single class and needs no mix.
func (r *TraceReplay) Picker(m Mix) (Picker, error) {
	if !r.ClassNames() {
		return nil, fmt.Errorf("workloadgen: trace records no classes")
	}
	classes := make([]Class, len(r.trace.Classes))
	for i, name := range r.trace.Classes {
		c, err := m.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("workloadgen: trace arrival %d: %w", i, err)
		}
		classes[i] = c
	}
	return traceClasses{classes: classes, mix: m}, nil
}

// traceClasses replays a recorded class sequence.
type traceClasses struct {
	classes []Class
	mix     Mix
}

// Pick implements Picker, cycling past the recorded window.
func (t traceClasses) Pick(i uint64) Class { return t.classes[i%uint64(len(t.classes))] }

// Classes implements Picker: the distinct classes of the resolving mix.
func (t traceClasses) Classes() []Class { return t.mix.Classes() }
