package workloadgen

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDriveClosedLoop: every sequence number arrives exactly once, the
// report counts add up, and lateness stays empty (a closed loop has no
// schedule to slip).
func TestDriveClosedLoop(t *testing.T) {
	const n = 500
	var mu sync.Mutex
	seen := make(map[uint64]int, n)
	rep, err := Drive(DriveConfig{Requests: n, Clients: 8}, func(r Request) (Outcome, error) {
		mu.Lock()
		seen[r.Seq]++
		mu.Unlock()
		if r.Class.Name != "default" {
			t.Errorf("mix-less drive class %q, want default", r.Class.Name)
		}
		if r.Lateness != 0 || r.Scheduled != 0 {
			t.Errorf("closed-loop request carries schedule fields: %+v", r)
		}
		return OK, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct seqs, want %d", len(seen), n)
	}
	for seq, k := range seen {
		if k != 1 {
			t.Fatalf("seq %d submitted %d times", seq, k)
		}
	}
	if rep.OKs != n || rep.Sheds != 0 || rep.Drops != 0 {
		t.Errorf("report %+v, want %d OKs and nothing else", rep, n)
	}
	if rep.Lateness.Count != 0 {
		t.Errorf("closed loop observed %d lateness samples", rep.Lateness.Count)
	}
	if rep.Latency.Count != n {
		t.Errorf("latency count %d, want %d", rep.Latency.Count, n)
	}
	if rep.OfferedRPS != 0 {
		t.Errorf("closed loop reports offered rate %g", rep.OfferedRPS)
	}
}

// TestDriveClosedLoopRetriesShed: a closed-loop client retries a Shed
// request until it lands; the retry count and the final OK are both
// reported.
func TestDriveClosedLoopRetriesShed(t *testing.T) {
	var calls atomic.Int64
	rep, err := Drive(DriveConfig{Requests: 1, Clients: 1, RetryBackoff: time.Microsecond},
		func(r Request) (Outcome, error) {
			if calls.Add(1) <= 3 {
				return Shed, nil
			}
			return OK, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OKs != 1 || rep.Sheds != 3 || rep.Retries != 3 {
		t.Errorf("report OKs=%d Sheds=%d Retries=%d, want 1/3/3", rep.OKs, rep.Sheds, rep.Retries)
	}
}

// TestDriveOpenLoopNeverRetries: the open-loop driver counts a Shed and
// moves on — the schedule does not wait — and Drops are never retried in
// either mode.
func TestDriveOpenLoopNeverRetries(t *testing.T) {
	a, err := NewPoisson(81, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	var calls atomic.Int64
	rep, err := Drive(DriveConfig{Arrivals: a, Requests: n}, func(r Request) (Outcome, error) {
		switch calls.Add(1) % 3 {
		case 0:
			return Shed, nil
		case 1:
			return Drop, nil
		default:
			return OK, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != n {
		t.Fatalf("submit called %d times, want exactly %d (no retries)", got, n)
	}
	if rep.OKs+rep.Sheds+rep.Drops != n {
		t.Errorf("outcomes %d+%d+%d do not cover %d requests", rep.OKs, rep.Sheds, rep.Drops, n)
	}
	if rep.Retries != 0 {
		t.Errorf("open loop retried %d times", rep.Retries)
	}
	if rep.Lateness.Count != n {
		t.Errorf("lateness count %d, want one sample per fired request", rep.Lateness.Count)
	}
	if rep.OfferedRPS != 50_000 {
		t.Errorf("offered rate %g, want 50000", rep.OfferedRPS)
	}
}

// TestDriveOpenLoopDoesNotSelfThrottle: with a backend that stalls every
// request far longer than the mean gap, the open-loop driver still fires
// the whole schedule on time — requests pile up in flight instead of
// slowing the arrival train (the anti-coordinated-omission property),
// and PeakInFlight records the pile-up.
func TestDriveOpenLoopDoesNotSelfThrottle(t *testing.T) {
	const n, rate = 200, 20_000 // 10ms of schedule
	a, err := NewPoisson(82, rate)
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	release := make(chan struct{})
	rep, err := Drive(DriveConfig{Arrivals: a, Requests: n}, func(r Request) (Outcome, error) {
		if fired.Add(1) == n {
			close(release) // last scheduled request has fired; let them all finish
		}
		<-release
		return OK, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OKs != n {
		t.Fatalf("OKs = %d, want %d", rep.OKs, n)
	}
	// All n requests were in flight at once only because the driver kept
	// firing on schedule while the backend stalled.
	if rep.PeakInFlight != n {
		t.Errorf("peak in-flight %d, want %d (driver must not self-throttle)", rep.PeakInFlight, n)
	}
}

// TestDriveFatalStops: a Fatal outcome aborts the run, reports the
// submission's error, and stops issuing new requests.
func TestDriveFatalStops(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Drive(DriveConfig{Requests: 1000, Clients: 4}, func(r Request) (Outcome, error) {
		calls.Add(1)
		return Fatal, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got := calls.Load(); got > 100 {
		t.Errorf("fatal outcome did not stop the drive: %d calls", got)
	}
}

// TestDriveMixClasses: the drive hands each request the class the mix
// picks for its sequence number.
func TestDriveMixClasses(t *testing.T) {
	mix := DefaultMix(9)
	const n = 256
	var mu sync.Mutex
	got := make(map[uint64]string, n)
	_, err := Drive(DriveConfig{Requests: n, Clients: 4, Mix: mix}, func(r Request) (Outcome, error) {
		mu.Lock()
		got[r.Seq] = r.Class.Name
		mu.Unlock()
		return OK, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < n; seq++ {
		if got[seq] != mix.Pick(seq).Name {
			t.Fatalf("seq %d class %q, want %q", seq, got[seq], mix.Pick(seq).Name)
		}
	}
}

// TestDriveConfigValidation: degenerate drives are rejected.
func TestDriveConfigValidation(t *testing.T) {
	ok := func(Request) (Outcome, error) { return OK, nil }
	if _, err := Drive(DriveConfig{Requests: 0, Clients: 1}, ok); err == nil {
		t.Error("requests 0 accepted")
	}
	if _, err := Drive(DriveConfig{Requests: 1, Clients: 0}, ok); err == nil {
		t.Error("closed loop with 0 clients accepted")
	}
}
