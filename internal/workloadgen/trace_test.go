package workloadgen

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestTraceRecordReplayRoundTrip: record -> JSON -> read -> replay
// reproduces the original schedule and class sequence exactly, bit for
// bit — the trace is a complete, portable description of the offered
// load.
func TestTraceRecordReplayRoundTrip(t *testing.T) {
	p, err := NewPoisson(71, 5000)
	if err != nil {
		t.Fatal(err)
	}
	mix := DefaultMix(71)
	const n = 2048
	tr, err := Record(p, mix, n)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Source != "poisson" || back.RateRPS != 5000 {
		t.Errorf("metadata round-trip: source %q rate %g", back.Source, back.RateRPS)
	}

	rep, err := back.Replay()
	if err != nil {
		t.Fatal(err)
	}
	// The replayed schedule is the recorded schedule: absolute times
	// (prefix sums of replayed gaps) equal the recorded offsets exactly.
	var at time.Duration
	for i := 0; i < n; i++ {
		at += rep.Gap(uint64(i))
		if int64(at) != tr.TimesNS[i] {
			t.Fatalf("replayed time %d = %v, recorded %v", i, at, time.Duration(tr.TimesNS[i]))
		}
	}
	// And the recorded class sequence resolves and replays exactly.
	pick, err := rep.Picker(mix)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if got, want := pick.Pick(i).Name, mix.Pick(i).Name; got != want {
			t.Fatalf("replayed class %d = %q, recorded %q", i, got, want)
		}
	}
}

// TestTraceReplayCycles: past the recorded window the schedule repeats
// with a constant period and never produces a negative gap; the class
// sequence cycles too.
func TestTraceReplayCycles(t *testing.T) {
	p, err := NewPoisson(72, 1000)
	if err != nil {
		t.Fatal(err)
	}
	mix := DefaultMix(72)
	const n = 64
	tr, err := Record(p, mix, n)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Replay()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5*n; i++ {
		if g := rep.Gap(i); g < 0 {
			t.Fatalf("gap %d = %v, want >= 0", i, g)
		}
	}
	pick, err := rep.Picker(mix)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if pick.Pick(i).Name != pick.Pick(i+2*n).Name {
			t.Fatalf("class sequence does not cycle at %d", i)
		}
	}
	if rep.Rate() != 1000 {
		t.Errorf("replay rate %g, want recorded nominal 1000", rep.Rate())
	}
}

// TestTraceValidation: malformed traces are rejected on read and replay.
func TestTraceValidation(t *testing.T) {
	for name, tr := range map[string]*Trace{
		"empty":          {Source: "poisson"},
		"decreasing":     {TimesNS: []int64{5, 3}},
		"class mismatch": {TimesNS: []int64{1, 2}, Classes: []string{"a"}},
	} {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate passed", name)
		}
		if _, err := tr.Replay(); err == nil {
			t.Errorf("%s: Replay passed", name)
		}
	}
	if _, err := ReadTrace(strings.NewReader(`{"times_ns":[9,1]}`)); err == nil {
		t.Error("ReadTrace accepted decreasing times")
	}
	if _, err := ReadTrace(strings.NewReader(`not json`)); err == nil {
		t.Error("ReadTrace accepted garbage")
	}
	// Unknown class names fail at Picker resolution, not silently.
	tr := &Trace{TimesNS: []int64{1, 2}, Classes: []string{"nn-b1", "nope"}}
	rep, err := tr.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Picker(DefaultMix(1)); err == nil {
		t.Error("Picker resolved an unknown class name")
	}
}

// TestMixDeterminismAndWeights: Pick(i) is a pure function of (seed, i),
// differs across seeds, and the long-run class shares track the weights.
func TestMixDeterminismAndWeights(t *testing.T) {
	m1, m2, m3 := DefaultMix(5), DefaultMix(5), DefaultMix(6)
	const n = 20000
	counts := map[string]int{}
	diverged := false
	for i := uint64(0); i < n; i++ {
		c := m1.Pick(i)
		if c != m2.Pick(i) {
			t.Fatalf("same-seed mixes diverge at %d", i)
		}
		if c != m3.Pick(i) {
			diverged = true
		}
		counts[c.Name]++
	}
	if !diverged {
		t.Error("different seeds produced the same class sequence")
	}
	for _, c := range m1.Classes() {
		got := float64(counts[c.Name]) / n
		want := c.Weight // DefaultMix weights sum to 1
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("class %s share %.3f, want %.2f +/- 0.03", c.Name, got, want)
		}
	}
}

// TestMixValidation: bad classes and duplicate names are rejected.
func TestMixValidation(t *testing.T) {
	good := Class{Name: "a", Batch: 1, Scale: 1, Weight: 1}
	if _, err := NewMix(1); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := NewMix(1, good, good); err == nil {
		t.Error("duplicate class name accepted")
	}
	for _, bad := range []Class{
		{Batch: 1, Scale: 1, Weight: 1},
		{Name: "b", Batch: 0, Scale: 1, Weight: 1},
		{Name: "b", Batch: 1, Scale: 0, Weight: 1},
		{Name: "b", Batch: 1, Scale: 1, Weight: 0},
	} {
		if _, err := NewMix(1, bad); err == nil {
			t.Errorf("invalid class accepted: %+v", bad)
		}
	}
	if _, err := DefaultMix(1).ByName("missing"); err == nil {
		t.Error("ByName resolved a missing class")
	}
}
