// Package workloadgen generates deterministic request traffic for the
// serving stack: arrival schedules, request-class mixes, and the drivers
// that fire them at a backend.
//
// # Why open loop
//
// A closed-loop load generator (cimserve's client goroutines,
// experiments.FleetSweep) cannot overload anything: a slow server slows
// its own clients down, so the offered rate sags exactly when the system
// is in trouble — coordinated omission by construction. Real traffic does
// not wait. The open-loop driver fires requests on a precomputed schedule
// whether or not the fleet keeps up, which is what makes queueing
// collapse, load shedding, and the capacity knee observable at all
// (docs/CAPACITY.md).
//
// # Determinism contract
//
// Every arrival process is keyed by the counter-based noise source
// (internal/noise): gap i is a pure function of (seed, i), never of draw
// order, wall time, or goroutine interleaving. A schedule is therefore
// bit-identical across runs and at any -parallel width, and a recorded
// trace replays exactly. The same property keys the class mix: the class
// of request i is a pure function of (seed, i).
//
// The processes:
//
//   - Poisson: exponential i.i.d. gaps — the memoryless baseline. This is
//     the process formerly at internal/chaos.Arrivals, promoted verbatim
//     (same draws, bit-identical gaps).
//   - MMPP: a two-state Markov-modulated Poisson process — a base regime
//     and a burst regime whose rate is Burst times higher, switching on
//     epoch boundaries. Bursty traffic with tunable burst fraction and
//     residence time.
//   - Diurnal: a sinusoidal rate envelope over the arrival index —
//     peak/trough traffic with the cycle-average rate normalized to the
//     nominal rate.
//   - Trace: replay of a recorded schedule (timestamps + request
//     classes), cycling past the recorded window.
//
// MMPP and Diurnal modulate over the arrival *index*, not wall time: the
// regime of arrival i depends on i alone. For an open-loop schedule the
// two views coincide up to the rate scaling (the schedule is fixed before
// the run and never reacts to the backend), and index-phase keeps Gap a
// pure O(epoch)-walk function of (seed, i).
package workloadgen

import (
	"fmt"
	"math"
	"time"

	"cimrev/internal/noise"
)

// Arrivals is a deterministic arrival process: a schedule of request
// inter-arrival gaps that is a pure function of the process parameters
// and the arrival index. Implementations are immutable values, safe for
// concurrent use from any number of goroutines.
type Arrivals interface {
	// Name identifies the process kind ("poisson", "mmpp", ...).
	Name() string
	// Rate is the nominal mean arrival rate in requests per second. For
	// modulated processes it is the long-run average across regimes.
	Rate() float64
	// Gap returns the inter-arrival gap preceding arrival i: arrival i
	// fires Gap(i) after arrival i-1 (Gap(0) is the delay before the
	// first arrival). Gaps are independent of evaluation order and
	// identical across runs.
	Gap(i uint64) time.Duration
}

// Times materializes the absolute schedule: Times(a, n)[i] is the offset
// of arrival i from the start of the run (the prefix sum of gaps). One
// sequential pass — the canonical way to turn a process into a
// fire-at-absolute-time schedule or a recorded trace.
func Times(a Arrivals, n int) []time.Duration {
	out := make([]time.Duration, n)
	var t time.Duration
	for i := 0; i < n; i++ {
		t += a.Gap(uint64(i))
		out[i] = t
	}
	return out
}

// Poisson is a deterministic open-loop Poisson arrival process: i.i.d.
// exponential gaps keyed by (seed, i). The zero value is invalid;
// construct with NewPoisson.
type Poisson struct {
	src    noise.Source
	meanNS float64
	rps    float64
}

// NewPoisson returns a Poisson process averaging rps arrivals per second,
// keyed by seed. The gap sequence is bit-identical to the historical
// chaos.Arrivals implementation for the same (seed, rps).
func NewPoisson(seed int64, rps float64) (Poisson, error) {
	if rps <= 0 || math.IsInf(rps, 0) || math.IsNaN(rps) {
		return Poisson{}, fmt.Errorf("workloadgen: poisson rate must be a positive finite rps, got %g", rps)
	}
	return Poisson{src: noise.NewSource(seed), meanNS: 1e9 / rps, rps: rps}, nil
}

// Name implements Arrivals.
func (p Poisson) Name() string { return "poisson" }

// Rate implements Arrivals.
func (p Poisson) Rate() float64 { return p.rps }

// Gap returns the exponential gap preceding arrival i, drawn from the
// counter stream for i.
func (p Poisson) Gap(i uint64) time.Duration {
	// Float64 is uniform in (0,1), never 0, so the log is finite.
	u := p.src.Float64(i)
	return time.Duration(-p.meanNS * math.Log(u))
}

// MMPPConfig parameterizes the two-state Markov-modulated Poisson
// process. The zero value is invalid; fill Seed and Rate and leave the
// rest zero for the documented defaults.
type MMPPConfig struct {
	// Seed keys every draw (gap draws and regime transitions).
	Seed int64
	// Rate is the long-run mean arrival rate (requests per second)
	// across both regimes.
	Rate float64
	// Burst is the burst-regime rate as a multiple of the base-regime
	// rate (> 1). Default 8.
	Burst float64
	// BurstFrac is the stationary fraction of epochs spent in the burst
	// regime, in (0, 1). Default 0.2.
	BurstFrac float64
	// MeanBurstEpochs is the mean burst residence time in epochs (>= 1):
	// the chain leaves the burst state with probability
	// 1/MeanBurstEpochs per epoch. Default 4.
	MeanBurstEpochs float64
	// Epoch is the number of arrivals per regime epoch (>= 1): the chain
	// is sampled once per Epoch arrivals. Default 32.
	Epoch int
}

// withDefaults fills zero fields with the documented defaults.
func (c MMPPConfig) withDefaults() MMPPConfig {
	if c.Burst == 0 {
		c.Burst = 8
	}
	if c.BurstFrac == 0 {
		c.BurstFrac = 0.2
	}
	if c.MeanBurstEpochs == 0 {
		c.MeanBurstEpochs = 4
	}
	if c.Epoch == 0 {
		c.Epoch = 32
	}
	return c
}

// MMPP is the two-state Markov-modulated Poisson process: epochs of
// Epoch arrivals each draw their gaps at the base rate or the burst rate
// according to a two-state Markov chain over epochs. The regime of epoch
// k is a pure function of (seed, k): it is recomputed by walking the
// chain from epoch 0, so Gap(i) costs O(i/Epoch) chain steps — cheap for
// the schedule lengths the drivers use, and entirely stateless.
type MMPP struct {
	cfg      MMPPConfig
	gaps     noise.Source // one exponential draw per arrival
	chain    noise.Source // one transition draw per epoch
	baseNS   float64      // mean gap in the base regime
	burstNS  float64      // mean gap in the burst regime
	pEnter   float64      // P(base -> burst) per epoch
	pLeave   float64      // P(burst -> base) per epoch
	burstLen uint64       // arrivals per epoch
}

// NewMMPP validates the config and returns the process. The base and
// burst rates are solved so the long-run mean rate equals cfg.Rate:
// with stationary burst fraction f and multiplier B, the base rate is
// Rate*((1-f) + f/B) and the burst rate B times that.
func NewMMPP(cfg MMPPConfig) (MMPP, error) {
	cfg = cfg.withDefaults()
	switch {
	case cfg.Rate <= 0 || math.IsInf(cfg.Rate, 0) || math.IsNaN(cfg.Rate):
		return MMPP{}, fmt.Errorf("workloadgen: mmpp rate must be a positive finite rps, got %g", cfg.Rate)
	case cfg.Burst <= 1:
		return MMPP{}, fmt.Errorf("workloadgen: mmpp burst multiplier must be > 1, got %g", cfg.Burst)
	case cfg.BurstFrac <= 0 || cfg.BurstFrac >= 1:
		return MMPP{}, fmt.Errorf("workloadgen: mmpp burst fraction must be in (0,1), got %g", cfg.BurstFrac)
	case cfg.MeanBurstEpochs < 1:
		return MMPP{}, fmt.Errorf("workloadgen: mmpp mean burst residence must be >= 1 epoch, got %g", cfg.MeanBurstEpochs)
	case cfg.Epoch < 1:
		return MMPP{}, fmt.Errorf("workloadgen: mmpp epoch must be >= 1 arrival, got %d", cfg.Epoch)
	}
	pLeave := 1 / cfg.MeanBurstEpochs
	pEnter := cfg.BurstFrac * pLeave / (1 - cfg.BurstFrac)
	if pEnter > 1 {
		return MMPP{}, fmt.Errorf("workloadgen: mmpp burst fraction %g unreachable with mean residence %g epochs (entry probability %g > 1)",
			cfg.BurstFrac, cfg.MeanBurstEpochs, pEnter)
	}
	baseRate := cfg.Rate * ((1 - cfg.BurstFrac) + cfg.BurstFrac/cfg.Burst)
	root := noise.NewSource(cfg.Seed)
	return MMPP{
		cfg:      cfg,
		gaps:     root.Derive(0),
		chain:    root.Derive(1),
		baseNS:   1e9 / baseRate,
		burstNS:  1e9 / (baseRate * cfg.Burst),
		pEnter:   pEnter,
		pLeave:   pLeave,
		burstLen: uint64(cfg.Epoch),
	}, nil
}

// Name implements Arrivals.
func (m MMPP) Name() string { return "mmpp" }

// Rate implements Arrivals.
func (m MMPP) Rate() float64 { return m.cfg.Rate }

// Bursting reports whether arrival i falls in a burst epoch.
func (m MMPP) Bursting(i uint64) bool { return m.state(i / m.burstLen) }

// state walks the regime chain from epoch 0 to epoch k. Every epoch
// consumes exactly one transition draw whichever state it is in, so the
// walk is a pure function of (seed, k).
func (m MMPP) state(k uint64) bool {
	burst := false
	for j := uint64(1); j <= k; j++ {
		u := m.chain.Float64(j)
		if burst {
			burst = u >= m.pLeave
		} else {
			burst = u < m.pEnter
		}
	}
	return burst
}

// Gap returns the gap preceding arrival i: exponential at the regime rate
// of i's epoch.
func (m MMPP) Gap(i uint64) time.Duration {
	mean := m.baseNS
	if m.Bursting(i) {
		mean = m.burstNS
	}
	u := m.gaps.Float64(i)
	return time.Duration(-mean * math.Log(u))
}

// DiurnalConfig parameterizes the sinusoidal rate envelope. The zero
// value is invalid; fill Seed and Rate and leave the rest zero for the
// documented defaults.
type DiurnalConfig struct {
	// Seed keys the gap draws.
	Seed int64
	// Rate is the cycle-average arrival rate in requests per second.
	Rate float64
	// Amplitude is the peak swing as a fraction of the mean rate, in
	// [0, 1): the instantaneous rate runs between Rate*(1-A) and
	// Rate*(1+A) (up to the cycle-average normalization). Default 0.5.
	Amplitude float64
	// Cycle is the period of the envelope in arrivals (>= 2). Default
	// 1024.
	Cycle int
}

// withDefaults fills zero fields with the documented defaults.
func (c DiurnalConfig) withDefaults() DiurnalConfig {
	if c.Amplitude == 0 {
		c.Amplitude = 0.5
	}
	if c.Cycle == 0 {
		c.Cycle = 1024
	}
	return c
}

// Diurnal is a Poisson process whose rate follows a sinusoidal envelope
// over the arrival index with period Cycle: a compressed day of traffic
// with a peak and a trough. The envelope is normalized so the expected
// time to serve one full cycle is exactly Cycle/Rate — the cycle-average
// offered rate is the nominal rate, whatever the amplitude.
type Diurnal struct {
	cfg  DiurnalConfig
	src  noise.Source
	norm float64 // cycle mean of 1/envelope, the Jensen correction
}

// NewDiurnal validates the config and returns the process.
func NewDiurnal(cfg DiurnalConfig) (Diurnal, error) {
	cfg = cfg.withDefaults()
	switch {
	case cfg.Rate <= 0 || math.IsInf(cfg.Rate, 0) || math.IsNaN(cfg.Rate):
		return Diurnal{}, fmt.Errorf("workloadgen: diurnal rate must be a positive finite rps, got %g", cfg.Rate)
	case cfg.Amplitude < 0 || cfg.Amplitude >= 1:
		return Diurnal{}, fmt.Errorf("workloadgen: diurnal amplitude must be in [0,1), got %g", cfg.Amplitude)
	case cfg.Cycle < 2:
		return Diurnal{}, fmt.Errorf("workloadgen: diurnal cycle must be >= 2 arrivals, got %d", cfg.Cycle)
	}
	// E[cycle time] = sum over the cycle of 1/(Rate*h*env_j) where
	// h = mean(1/env): the h factor cancels the sum to Cycle/Rate exactly.
	var sum float64
	for j := 0; j < cfg.Cycle; j++ {
		sum += 1 / envelope(cfg.Amplitude, j, cfg.Cycle)
	}
	return Diurnal{cfg: cfg, src: noise.NewSource(cfg.Seed), norm: sum / float64(cfg.Cycle)}, nil
}

// envelope is the sinusoid 1 + A*sin(2*pi*phase), strictly positive for
// A < 1.
func envelope(a float64, j, cycle int) float64 {
	return 1 + a*math.Sin(2*math.Pi*float64(j)/float64(cycle))
}

// Name implements Arrivals.
func (d Diurnal) Name() string { return "diurnal" }

// Rate implements Arrivals.
func (d Diurnal) Rate() float64 { return d.cfg.Rate }

// RateAt returns the instantaneous rate at arrival i — the envelope
// value the gap draw for i uses.
func (d Diurnal) RateAt(i uint64) float64 {
	j := int(i % uint64(d.cfg.Cycle))
	return d.cfg.Rate * d.norm * envelope(d.cfg.Amplitude, j, d.cfg.Cycle)
}

// Gap returns the gap preceding arrival i: exponential at the envelope
// rate for i's phase.
func (d Diurnal) Gap(i uint64) time.Duration {
	u := d.src.Float64(i)
	return time.Duration(-1e9 / d.RateAt(i) * math.Log(u))
}
