package workloadgen

import (
	"fmt"

	"cimrev/internal/noise"
	"cimrev/internal/workloads"
)

// Class is one request class in a traffic mix: what a request of this
// class asks the serving tier to do. Classes combine a paper workload
// class (internal/workloads, Appendix A taxonomy) with the two serving
// dimensions the capacity planner cares about — model size and
// client-side batching.
type Class struct {
	// Name labels the class in traces, bench lines, and reports.
	Name string
	// Workload is the paper's application class the request represents.
	Workload workloads.Class
	// Batch is the client-side fan-out: a batch-k request submits k
	// inputs and completes when all k answers are back (>= 1).
	Batch int
	// Scale is the model-size scale factor relative to the deployment's
	// reference network (> 0); drivers use it to pick input payloads.
	Scale float64
	// Weight is the class's relative frequency in the mix (> 0).
	Weight float64
}

// Validate reports whether the class is well-formed.
func (c Class) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("workloadgen: class needs a name")
	case c.Batch < 1:
		return fmt.Errorf("workloadgen: class %q batch must be >= 1, got %d", c.Name, c.Batch)
	case c.Scale <= 0:
		return fmt.Errorf("workloadgen: class %q scale must be > 0, got %g", c.Name, c.Scale)
	case c.Weight <= 0:
		return fmt.Errorf("workloadgen: class %q weight must be > 0, got %g", c.Name, c.Weight)
	}
	return nil
}

// Picker assigns a request class to every arrival index. Pick(i) is a
// pure function of (picker state, i) — bit-identical across runs and
// evaluation orders, like Arrivals.Gap.
type Picker interface {
	Pick(i uint64) Class
	// Classes lists the distinct classes the picker can return, in a
	// stable order.
	Classes() []Class
}

// Mix is a weighted request-class mix keyed by the counter-based noise
// source: the class of request i is a pure function of (seed, i). The
// zero value is invalid; construct with NewMix.
type Mix struct {
	src     noise.Source
	classes []Class
	cum     []float64 // cumulative weights
	total   float64
}

// NewMix validates the classes and returns a mix keyed by seed. Class
// names must be unique — traces record classes by name and must resolve
// them unambiguously on replay.
func NewMix(seed int64, classes ...Class) (Mix, error) {
	if len(classes) == 0 {
		return Mix{}, fmt.Errorf("workloadgen: mix needs at least one class")
	}
	seen := make(map[string]bool, len(classes))
	cum := make([]float64, len(classes))
	total := 0.0
	for i, c := range classes {
		if err := c.Validate(); err != nil {
			return Mix{}, err
		}
		if seen[c.Name] {
			return Mix{}, fmt.Errorf("workloadgen: duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
		total += c.Weight
		cum[i] = total
	}
	cs := make([]Class, len(classes))
	copy(cs, classes)
	return Mix{src: noise.NewSource(seed).Derive(2), classes: cs, cum: cum, total: total}, nil
}

// Pick returns the class of request i: a weighted draw from the counter
// stream for i.
func (m Mix) Pick(i uint64) Class {
	u := m.src.Float64(i) * m.total
	for j, c := range m.cum {
		if u < c {
			return m.classes[j]
		}
	}
	return m.classes[len(m.classes)-1]
}

// Classes returns the mix's classes in declaration order.
func (m Mix) Classes() []Class {
	out := make([]Class, len(m.classes))
	copy(out, m.classes)
	return out
}

// ByName resolves a class name recorded in a trace back to its class.
func (m Mix) ByName(name string) (Class, error) {
	for _, c := range m.classes {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("workloadgen: mix has no class %q", name)
}

// DefaultMix is the reference serving mix the capacity docs describe:
// mostly interactive batch-1 inference at the reference model size, a
// slice of bulk batch-8 inference, and a slice of analytic scans.
func DefaultMix(seed int64) Mix {
	m, err := NewMix(seed,
		Class{Name: "nn-b1", Workload: workloads.NeuralNetworks, Batch: 1, Scale: 1, Weight: 0.70},
		Class{Name: "nn-b8", Workload: workloads.NeuralNetworks, Batch: 8, Scale: 1, Weight: 0.20},
		Class{Name: "analytics-b1", Workload: workloads.DBAnalytics, Batch: 1, Scale: 1, Weight: 0.10},
	)
	if err != nil {
		// The classes above are compile-time constants; a failure is a
		// programming error, not an input error.
		panic(err)
	}
	return m
}

// singleClass is the implicit class of a mix-less drive: batch-1
// reference-size inference.
var singleClass = Class{Name: "default", Workload: workloads.NeuralNetworks, Batch: 1, Scale: 1, Weight: 1}

// SingleClass returns the implicit batch-1 class used when a driver runs
// without a mix.
func SingleClass() Class { return singleClass }
