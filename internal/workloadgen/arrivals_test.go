package workloadgen

import (
	"math"
	"testing"
	"time"

	"cimrev/internal/parallel"
)

// processes under test, one per arrival-process kind. Trace replay is
// covered by its own determinism test (it needs a recorded trace).
func testProcesses(t *testing.T) []Arrivals {
	t.Helper()
	p, err := NewPoisson(11, 8000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMMPP(MMPPConfig{Seed: 11, Rate: 8000})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDiurnal(DiurnalConfig{Seed: 11, Rate: 8000})
	if err != nil {
		t.Fatal(err)
	}
	return []Arrivals{p, m, d}
}

// TestArrivalsDeterminismAcrossWidths: the schedule of every process is a
// pure function of (seed, index) — evaluating the gaps through the
// worker pool at widths 1, 4, and 16 (any goroutine, any order) yields
// the bit-identical schedule the sequential walk yields.
func TestArrivalsDeterminismAcrossWidths(t *testing.T) {
	const n = 4096
	for _, a := range testProcesses(t) {
		serial := make([]time.Duration, n)
		for i := range serial {
			serial[i] = a.Gap(uint64(i))
		}
		for _, width := range []int{1, 4, 16} {
			got := make([]time.Duration, n)
			parallel.ForWidth(width, n, func(i int) { got[i] = a.Gap(uint64(i)) })
			for i := range got {
				if got[i] != serial[i] {
					t.Fatalf("%s: width %d gap %d = %v, serial %v", a.Name(), width, i, got[i], serial[i])
				}
			}
		}
	}
}

// TestArrivalsSameSeedSameSchedule: two identically-configured processes
// agree gap for gap; a different seed diverges immediately.
func TestArrivalsSameSeedSameSchedule(t *testing.T) {
	build := func(seed int64) []Arrivals {
		p, _ := NewPoisson(seed, 8000)
		m, _ := NewMMPP(MMPPConfig{Seed: seed, Rate: 8000})
		d, _ := NewDiurnal(DiurnalConfig{Seed: seed, Rate: 8000})
		return []Arrivals{p, m, d}
	}
	a1, a2, b := build(5), build(5), build(6)
	for k := range a1 {
		diverged := false
		for i := uint64(0); i < 2048; i++ {
			if a1[k].Gap(i) != a2[k].Gap(i) {
				t.Fatalf("%s: same seed diverges at gap %d", a1[k].Name(), i)
			}
			if a1[k].Gap(i) != b[k].Gap(i) {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: different seeds produced the same 2048-gap schedule", a1[k].Name())
		}
	}
}

// TestArrivalsMeanRate: over a long window the empirical rate of every
// process sits within tolerance of the nominal rate — the normalization
// math (MMPP regime solve, diurnal Jensen correction) is right.
func TestArrivalsMeanRate(t *testing.T) {
	const n = 60000
	for _, a := range testProcesses(t) {
		var sum time.Duration
		for i := uint64(0); i < n; i++ {
			g := a.Gap(i)
			// Sub-nanosecond draws truncate to 0 — simultaneous arrivals
			// are legal; negative gaps are not.
			if g < 0 {
				t.Fatalf("%s: gap %d = %v, want >= 0", a.Name(), i, g)
			}
			sum += g
		}
		got := n / sum.Seconds()
		want := a.Rate()
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s: empirical rate %.0f rps, want within 10%% of %.0f", a.Name(), got, want)
		}
	}
}

// TestMMPPBurstStructure: the regime chain actually modulates — both
// regimes occur, the burst fraction is in the configured ballpark, and
// burst-epoch gaps are shorter on average than base-epoch gaps.
func TestMMPPBurstStructure(t *testing.T) {
	m, err := NewMMPP(MMPPConfig{Seed: 21, Rate: 10000})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	var burstGaps, baseGaps time.Duration
	var burstN, baseN int
	for i := uint64(0); i < n; i++ {
		if m.Bursting(i) {
			burstGaps += m.Gap(i)
			burstN++
		} else {
			baseGaps += m.Gap(i)
			baseN++
		}
	}
	if burstN == 0 || baseN == 0 {
		t.Fatalf("degenerate chain: %d burst arrivals, %d base arrivals", burstN, baseN)
	}
	burstMean := float64(burstGaps) / float64(burstN)
	baseMean := float64(baseGaps) / float64(baseN)
	// Nominal ratio is the burst multiplier (8); the sampled ratio wobbles.
	if ratio := baseMean / burstMean; ratio < 4 {
		t.Errorf("burst gaps only %.1fx shorter than base gaps, want >= 4x for multiplier 8", ratio)
	}
	// Epochs are defined over arrival index, so the burst share of
	// *arrivals* tracks the stationary epoch fraction (0.2 by default);
	// the burst share of *time* is smaller, which is what makes the mean
	// rate come out right.
	frac := float64(burstN) / n
	if frac < 0.1 || frac > 0.35 {
		t.Errorf("burst arrival fraction %.2f outside [0.1, 0.35] around stationary 0.2", frac)
	}
}

// TestDiurnalEnvelope: the instantaneous rate peaks a quarter-cycle in
// and troughs at three quarters, and the configured amplitude separates
// them.
func TestDiurnalEnvelope(t *testing.T) {
	d, err := NewDiurnal(DiurnalConfig{Seed: 31, Rate: 1000, Amplitude: 0.5, Cycle: 1000})
	if err != nil {
		t.Fatal(err)
	}
	peak, trough := d.RateAt(250), d.RateAt(750)
	if peak <= trough {
		t.Fatalf("peak rate %.0f <= trough rate %.0f", peak, trough)
	}
	if ratio := peak / trough; ratio < 2.5 {
		t.Errorf("peak/trough ratio %.2f, want ~3 for amplitude 0.5", ratio)
	}
}

// TestArrivalsConfigValidation: degenerate parameters are rejected at
// construction, mirroring the crossbar ADCBits=0 convention.
func TestArrivalsConfigValidation(t *testing.T) {
	if _, err := NewPoisson(1, 0); err == nil {
		t.Error("NewPoisson(rate 0) did not fail")
	}
	if _, err := NewPoisson(1, math.Inf(1)); err == nil {
		t.Error("NewPoisson(rate +Inf) did not fail")
	}
	bad := []MMPPConfig{
		{Seed: 1, Rate: 0},
		{Seed: 1, Rate: 100, Burst: 0.5},
		{Seed: 1, Rate: 100, BurstFrac: 1.5},
		{Seed: 1, Rate: 100, MeanBurstEpochs: 0.1},
		{Seed: 1, Rate: 100, Epoch: -1},
		{Seed: 1, Rate: 100, BurstFrac: 0.9, MeanBurstEpochs: 1}, // pEnter > 1
	}
	for i, cfg := range bad {
		if _, err := NewMMPP(cfg); err == nil {
			t.Errorf("NewMMPP case %d did not fail: %+v", i, cfg)
		}
	}
	badD := []DiurnalConfig{
		{Seed: 1, Rate: 0},
		{Seed: 1, Rate: 100, Amplitude: 1},
		{Seed: 1, Rate: 100, Amplitude: -0.1},
		{Seed: 1, Rate: 100, Cycle: 1},
	}
	for i, cfg := range badD {
		if _, err := NewDiurnal(cfg); err == nil {
			t.Errorf("NewDiurnal case %d did not fail: %+v", i, cfg)
		}
	}
}

// TestTimesPrefixSum: Times is the prefix sum of gaps.
func TestTimesPrefixSum(t *testing.T) {
	p, err := NewPoisson(41, 1000)
	if err != nil {
		t.Fatal(err)
	}
	times := Times(p, 100)
	var sum time.Duration
	for i, ts := range times {
		sum += p.Gap(uint64(i))
		if ts != sum {
			t.Fatalf("Times[%d] = %v, want prefix sum %v", i, ts, sum)
		}
	}
}
