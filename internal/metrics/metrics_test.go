package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(-5)
	if got := c.Value(); got != 10 {
		t.Errorf("Value after negative Add = %d, want 10 (monotone)", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 10_000 {
		t.Errorf("Value = %d, want 10000", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(2.5)
	if got := g.Value(); got != 4.0 {
		t.Errorf("Value = %g, want 4.0", got)
	}
	g.Add(-5)
	if got := g.Value(); got != -1.0 {
		t.Errorf("Value = %g, want -1.0", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 5000 {
		t.Errorf("Value = %g, want 5000", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1, 2, 3, 4, 10} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := h.Mean(); got != 4 {
		t.Errorf("Mean = %g, want 4", got)
	}
	if got := h.Min(); got != 1 {
		t.Errorf("Min = %g, want 1", got)
	}
	if got := h.Max(); got != 10 {
		t.Errorf("Max = %g, want 10", got)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	// The 0.5 quantile of 1..1000 is ~500; bucket upper edge gives ≤1024 and
	// ≥256 (log2 buckets).
	q := h.Quantile(0.5)
	if q < 256 || q > 1024 {
		t.Errorf("Quantile(0.5) = %g, want within [256,1024]", q)
	}
	// Out-of-range q is clamped rather than panicking.
	if got := h.Quantile(-1); got < 1 {
		t.Errorf("Quantile(-1) = %g, want >= 1", got)
	}
	if got := h.Quantile(2); got < q {
		t.Errorf("Quantile(2) = %g, want >= median", got)
	}
}

// Property: quantile is monotone non-decreasing in q and bounded by
// [lowest bucket edge, max].
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewHistogram()
		for _, r := range raw {
			h.Observe(float64(r))
		}
		if h.Count() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many goroutines
// and checks that no observation is lost: the lock-free CAS/atomic design
// must account for every Observe in count, sum, and the bucket totals.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines, perG = 64, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(float64(1 + (g+j)%1024))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketTotal int64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != goroutines*perG {
		t.Errorf("bucket total = %d, want %d", bucketTotal, goroutines*perG)
	}
	if s.Min != 1 {
		t.Errorf("Min = %g, want 1", s.Min)
	}
	if s.Max != 1024 {
		t.Errorf("Max = %g, want 1024", s.Max)
	}
	// Every value was an integer in [1,1024], so the sum is exact in
	// float64 and order-independent.
	var want float64
	for g := 0; g < goroutines; g++ {
		for j := 0; j < perG; j++ {
			want += float64(1 + (g+j)%1024)
		}
	}
	if s.Sum != want {
		t.Errorf("Sum = %g, want %g", s.Sum, want)
	}
}

// TestHistogramBucketBoundaries pins the log2 bucket edges: bucket i holds
// [2^(i-1), 2^i), bucket 0 holds everything below 1, and Quantile reports
// the upper edge of the covering bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram()
	// One observation exactly on each power-of-two edge 1,2,4,...,256.
	for i := 0; i <= 8; i++ {
		h.Observe(math.Pow(2, float64(i)))
	}
	s := h.Snapshot()
	for i := 0; i <= 8; i++ {
		// 2^i is the *inclusive lower* edge of bucket i+1.
		if got := s.Buckets[i+1]; got != 1 {
			t.Errorf("bucket %d = %d, want 1 (value %g)", i+1, got, math.Pow(2, float64(i)))
		}
	}
	if got := s.Buckets[0]; got != 0 {
		t.Errorf("bucket 0 = %d, want 0", got)
	}
	// Values just under an edge stay in the lower bucket.
	h2 := NewHistogram()
	h2.Observe(math.Nextafter(2, 0)) // 1.999... -> bucket 1
	s2 := h2.Snapshot()
	if s2.Buckets[1] != 1 {
		t.Errorf("1.999... in bucket 1? counts=%v", s2.Buckets[:3])
	}
	// Quantile returns upper edges, clamped to the observed range; a
	// single observation reports itself exactly (min == max fast path).
	h3 := NewHistogram()
	h3.Observe(3) // bucket 2: [2,4)
	if got := h3.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) of {3} = %g, want 3 (single observation)", got)
	}
	h4 := NewHistogram()
	h4.Observe(3)
	h4.Observe(3.5) // same bucket [2,4): edge 4 clamps to max 3.5
	if got := h4.Quantile(0.99); got != 3.5 {
		t.Errorf("Quantile(0.99) of {3,3.5} = %g, want clamp to max 3.5", got)
	}
	if got := BucketUpperEdge(0); got != 1 {
		t.Errorf("BucketUpperEdge(0) = %g, want 1", got)
	}
}

func TestHistogramSnapshotIndependent(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	s := h.Snapshot()
	h.Observe(500)
	if s.Count != 1 || s.Max != 5 {
		t.Errorf("snapshot mutated by later observes: %+v", s)
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("snapshot Quantile(1) = %g, want 5 (single observation)", got)
	}
	if h.Count() != 2 {
		t.Errorf("live count = %d, want 2", h.Count())
	}
}

func TestBucketFor(t *testing.T) {
	tests := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 1}, {1.9, 1}, {2, 2}, {3.9, 2}, {4, 3}, {1e300, 63},
	}
	for _, tt := range tests {
		if got := bucketFor(tt.v); got != tt.want {
			t.Errorf("bucketFor(%g) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestRate(t *testing.T) {
	var r Rate
	// 1000 bytes over 1 microsecond = 1e9 bytes/s.
	r.Record(1000, 1_000_000)
	if got := r.PerSecond(); math.Abs(got-1e9) > 1 {
		t.Errorf("PerSecond = %g, want 1e9", got)
	}
}

func TestRateEmpty(t *testing.T) {
	var r Rate
	if got := r.PerSecond(); got != 0 {
		t.Errorf("empty rate = %g, want 0", got)
	}
}

func TestRegistryCreatesOnFirstUse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits")
	c1.Inc()
	c2 := r.Counter("hits")
	if c1 != c2 {
		t.Error("Counter must return the same instance for the same name")
	}
	if got := c2.Value(); got != 1 {
		t.Errorf("Value = %d, want 1", got)
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge identity")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram identity")
	}
	if r.Rate("r") != r.Rate("r") {
		t.Error("Rate identity")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkts").Add(7)
	r.Gauge("load").Set(0.5)
	r.Histogram("lat").Observe(10)
	r.Histogram("lat").Observe(20)
	r.Rate("bw").Record(100, 1_000_000_000_000) // 100 units over 1s

	s := r.Snapshot()
	if s.Counters["pkts"] != 7 {
		t.Errorf("snapshot counter = %d, want 7", s.Counters["pkts"])
	}
	if s.Gauges["load"] != 0.5 {
		t.Errorf("snapshot gauge = %g, want 0.5", s.Gauges["load"])
	}
	if got := s.Histograms["lat"].Mean(); got != 15 {
		t.Errorf("snapshot hist mean = %g, want 15", got)
	}
	if math.Abs(s.Rates["bw"]-100) > 1e-9 {
		t.Errorf("snapshot rate = %g, want 100", s.Rates["bw"])
	}
}

func TestSnapshotStringStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	s := r.Snapshot().String()
	if !strings.Contains(s, "counter a = 1") || !strings.Contains(s, "counter b = 1") {
		t.Errorf("snapshot string missing counters:\n%s", s)
	}
	if strings.Index(s, "counter a") > strings.Index(s, "counter b") {
		t.Errorf("snapshot string not sorted:\n%s", s)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter("shared").Inc()
			r.Histogram("h").Observe(1)
			_ = r.Snapshot()
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 32 {
		t.Errorf("shared counter = %d, want 32", got)
	}
}

// Property: counter value equals the sum of non-negative deltas regardless
// of interleaving with ignored negatives.
func TestCounterSumProperty(t *testing.T) {
	f := func(deltas []int16) bool {
		var c Counter
		var want int64
		for _, d := range deltas {
			c.Add(int64(d))
			if d >= 0 {
				want += int64(d)
			}
		}
		return c.Value() == want
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(vals []reflect.Value, r *rand.Rand) {
		n := r.Intn(50)
		ds := make([]int16, n)
		for i := range ds {
			ds[i] = int16(r.Intn(2000) - 500)
		}
		vals[0] = reflect.ValueOf(ds)
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
