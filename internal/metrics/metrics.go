// Package metrics implements the load-information substrate from Section
// IV.C of the paper: "Load information management is required before any
// action is undertaken. It assumes measuring latencies and bandwidth of each
// stream, as well as usage of individual and aggregate resources."
//
// It provides counters, gauges, log-bucketed histograms, and windowed rates,
// collected in a Registry that resource managers snapshot to drive load
// balancing, pinning, and closed-loop SLA control.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative; negative deltas are ignored so
// the counter stays monotone.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed number of log-spaced (power-of-two) buckets.
const histBuckets = 64

// Histogram records observations into fixed logarithmic buckets (powers of
// two) and supports quantile estimation. Construct with NewHistogram.
//
// Histogram is lock-free: Observe touches only atomic bucket counters and
// CAS-updated scalar cells, so the request hot path in internal/serve can
// record per-request latency from many goroutines without contending on a
// mutex. Readers (Quantile, Mean, Snapshot, ...) load the atomics without
// stopping writers; a read concurrent with writes sees some consistent
// recent history plus possibly a subset of in-flight observations, which is
// the usual monitoring-system contract.
type Histogram struct {
	buckets [histBuckets]atomic.Int64 // buckets[i] counts values in [2^(i-1), 2^i)
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	minBits atomic.Uint64 // float64 bits of the running min (+Inf when empty)
	maxBits atomic.Uint64 // float64 bits of the running max (-Inf when empty)
}

// NewHistogram returns an empty histogram covering values up to 2^62.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. Non-positive values land in bucket 0.
// Observe is lock-free and safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketFor(v)].Add(1)
	casAddFloat(&h.sumBits, v)
	casMinFloat(&h.minBits, v)
	casMaxFloat(&h.maxBits, v)
	h.count.Add(1)
}

// casAddFloat atomically adds delta to the float64 stored as bits in cell.
func casAddFloat(cell *atomic.Uint64, delta float64) {
	for {
		old := cell.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if cell.CompareAndSwap(old, next) {
			return
		}
	}
}

// casMinFloat atomically lowers the float64 stored in cell to v if v is
// smaller.
func casMinFloat(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if cell.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// casMaxFloat atomically raises the float64 stored in cell to v if v is
// larger.
func casMaxFloat(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if cell.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func bucketFor(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Log2(v)) + 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketUpperEdge returns the exclusive upper edge of bucket i: values in
// bucket i satisfy BucketUpperEdge(i-1) <= v < BucketUpperEdge(i), with
// bucket 0 holding everything below 1.
func BucketUpperEdge(i int) float64 {
	if i <= 0 {
		return 1
	}
	return math.Pow(2, float64(i))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 { return h.Snapshot().Mean() }

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 { return h.Snapshot().Min }

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 { return h.Snapshot().Max }

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1)
// using bucket upper edges. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistogramSnapshot is a point-in-time copy of a histogram's state, cheap
// to take and safe to hold while the live histogram keeps absorbing
// observations. All quantile math happens on snapshots so that concurrent
// Observes cannot move the distribution mid-walk.
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Min     float64 // 0 when Count == 0
	Max     float64 // 0 when Count == 0
	Buckets [histBuckets]int64
}

// Snapshot copies the current bucket counts and scalar cells. Concurrent
// with writers the copy is approximate (an in-flight Observe may appear in
// the buckets but not yet in Count, or vice versa); quiescent it is exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
		Min:   math.Float64frombits(h.minBits.Load()),
		Max:   math.Float64frombits(h.maxBits.Load()),
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1)
// using bucket upper edges. Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Quantile over the bucket copy, not Count: concurrent snapshots can
	// catch count ahead of the bucket increments, and the walk must use a
	// self-consistent total.
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			return BucketUpperEdge(i)
		}
	}
	return s.Max
}

// Rate tracks a quantity accumulated over simulated time, reporting units
// per second of virtual time. It exists because the simulators have no wall
// clock: callers explicitly advance time.
type Rate struct {
	mu       sync.Mutex
	totalQty float64
	totalPS  int64
}

// Record adds qty transferred over elapsedPS picoseconds of virtual time.
func (r *Rate) Record(qty float64, elapsedPS int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.totalQty += qty
	r.totalPS += elapsedPS
}

// PerSecond returns the average rate in units per virtual second.
func (r *Rate) PerSecond() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.totalPS == 0 {
		return 0
	}
	return r.totalQty / (float64(r.totalPS) * 1e-12)
}

// Registry is a named collection of metrics. All accessors create the metric
// on first use. Registry is safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	rates      map[string]*Rate
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		rates:      make(map[string]*Rate),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Rate returns the named rate, creating it if needed.
func (r *Registry) Rate(name string) *Rate {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.rates[name]
	if !ok {
		rt = &Rate{}
		r.rates[name] = rt
	}
	return rt
}

// Snapshot is a point-in-time copy of scalar metric values.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Means    map[string]float64 // histogram means
	Rates    map[string]float64 // units per virtual second
	// Histograms carries the full per-histogram snapshot (buckets,
	// min/max, quantiles) for consumers that need more than the mean —
	// the serving benchmark reports p50/p95/p99 from here.
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies all current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	rates := make(map[string]*Rate, len(r.rates))
	for k, v := range r.rates {
		rates[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Means:      make(map[string]float64, len(hists)),
		Rates:      make(map[string]float64, len(rates)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		hs := v.Snapshot()
		s.Means[k] = hs.Mean()
		s.Histograms[k] = hs
	}
	for k, v := range rates {
		s.Rates[k] = v.PerSecond()
	}
	return s
}

// String renders the snapshot sorted by metric name for stable output.
func (s Snapshot) String() string {
	var b strings.Builder
	writeSorted := func(prefix string, m map[string]float64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %s = %g\n", prefix, k, m[k])
		}
	}
	ckeys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	for _, k := range ckeys {
		fmt.Fprintf(&b, "counter %s = %d\n", k, s.Counters[k])
	}
	writeSorted("gauge", s.Gauges)
	writeSorted("hist-mean", s.Means)
	writeSorted("rate", s.Rates)
	return b.String()
}
