// Package metrics implements the load-information substrate from Section
// IV.C of the paper: "Load information management is required before any
// action is undertaken. It assumes measuring latencies and bandwidth of each
// stream, as well as usage of individual and aggregate resources."
//
// It provides counters, gauges, log-bucketed histograms, and windowed rates,
// collected in a Registry that resource managers snapshot to drive load
// balancing, pinning, and closed-loop SLA control.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative; negative deltas are ignored so
// the counter stays monotone.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed number of log-spaced (power-of-two) buckets.
const histBuckets = 64

// Histogram records observations into fixed logarithmic buckets (powers of
// two) and supports quantile estimation. Construct with NewHistogram.
//
// Histogram is lock-free: Observe touches only atomic bucket counters and
// CAS-updated scalar cells, so the request hot path in internal/serve can
// record per-request latency from many goroutines without contending on a
// mutex. Readers (Quantile, Mean, Snapshot, ...) load the atomics without
// stopping writers; a read concurrent with writes sees some consistent
// recent history plus possibly a subset of in-flight observations, which is
// the usual monitoring-system contract.
type Histogram struct {
	buckets [histBuckets]atomic.Int64 // buckets[i] counts values in [2^(i-1), 2^i)
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	minBits atomic.Uint64 // float64 bits of the running min (+Inf when empty)
	maxBits atomic.Uint64 // float64 bits of the running max (-Inf when empty)
}

// NewHistogram returns an empty histogram covering values up to 2^62.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. Non-positive values land in bucket 0.
// Observe is lock-free and safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketFor(v)].Add(1)
	casAddFloat(&h.sumBits, v)
	casMinFloat(&h.minBits, v)
	casMaxFloat(&h.maxBits, v)
	h.count.Add(1)
}

// casAddFloat atomically adds delta to the float64 stored as bits in cell.
func casAddFloat(cell *atomic.Uint64, delta float64) {
	for {
		old := cell.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if cell.CompareAndSwap(old, next) {
			return
		}
	}
}

// casMinFloat atomically lowers the float64 stored in cell to v if v is
// smaller.
func casMinFloat(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if cell.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// casMaxFloat atomically raises the float64 stored in cell to v if v is
// larger.
func casMaxFloat(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if cell.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func bucketFor(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Log2(v)) + 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketUpperEdge returns the exclusive upper edge of bucket i: values in
// bucket i satisfy BucketUpperEdge(i-1) <= v < BucketUpperEdge(i), with
// bucket 0 holding everything below 1.
func BucketUpperEdge(i int) float64 {
	if i <= 0 {
		return 1
	}
	return math.Pow(2, float64(i))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 { return h.Snapshot().Mean() }

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 { return h.Snapshot().Min }

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 { return h.Snapshot().Max }

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1)
// using bucket upper edges. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistogramSnapshot is a point-in-time copy of a histogram's state, cheap
// to take and safe to hold while the live histogram keeps absorbing
// observations. All quantile math happens on snapshots so that concurrent
// Observes cannot move the distribution mid-walk.
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Min     float64 // 0 when Count == 0
	Max     float64 // 0 when Count == 0
	Buckets [histBuckets]int64
}

// Snapshot copies the current bucket counts and scalar cells. Concurrent
// with writers the copy is approximate (an in-flight Observe may appear in
// the buckets but not yet in Count, or vice versa); quiescent it is exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
		Min:   math.Float64frombits(h.minBits.Load()),
		Max:   math.Float64frombits(h.maxBits.Load()),
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1)
// using bucket upper edges, clamped into [Min, Max] so the log₂ bucket
// granularity can never report a quantile outside the observed range.
// Degenerate distributions short-circuit: an empty snapshot returns 0, and
// a single observation (or any all-equal stream, where Min == Max) returns
// that value exactly for every q instead of interpolating empty buckets.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if s.Min == s.Max {
		return s.Min
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Quantile over the bucket copy, not Count: concurrent snapshots can
	// catch count ahead of the bucket increments, and the walk must use a
	// self-consistent total.
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			// The last bucket is the overflow bucket — it holds everything
			// from 2^62 up, so its nominal edge can sit below the largest
			// observation. Max is the only honest upper bound there.
			if i == histBuckets-1 {
				return s.Max
			}
			return s.clamp(BucketUpperEdge(i))
		}
	}
	return s.Max
}

// clamp bounds a bucket-edge estimate into the observed [Min, Max] range.
func (s HistogramSnapshot) clamp(v float64) float64 {
	if v < s.Min {
		return s.Min
	}
	if v > s.Max {
		return s.Max
	}
	return v
}

// Rate tracks a quantity accumulated over simulated time, reporting units
// per second of virtual time. It exists because the simulators have no wall
// clock: callers explicitly advance time.
type Rate struct {
	mu       sync.Mutex
	totalQty float64
	totalPS  int64
}

// Record adds qty transferred over elapsedPS picoseconds of virtual time.
func (r *Rate) Record(qty float64, elapsedPS int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.totalQty += qty
	r.totalPS += elapsedPS
}

// PerSecond returns the average rate in units per virtual second.
func (r *Rate) PerSecond() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.totalPS == 0 {
		return 0
	}
	return r.totalQty / (float64(r.totalPS) * 1e-12)
}

// Kind identifies the metric type a name is interned as. A Registry holds
// one namespace across all kinds: the first accessor to use a name fixes
// its kind, and re-requesting the same name as a different kind panics —
// a silent counter/gauge split under one name is a telemetry bug, not a
// recoverable condition.
type Kind uint8

// Metric kinds, in Snapshot/exposition order.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
	KindRate
)

// String names the kind for error messages and exposition.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindRate:
		return "rate"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// entry is one interned metric: its fixed kind plus the live instrument.
type entry struct {
	kind Kind
	m    any
}

// Registry is a single named namespace of metrics. Accessors intern: the
// first call for a name creates the instrument, later calls return the
// same handle, and a name can only ever hold one kind (conflicts panic).
//
// Handles are the intended hot-path interface: call Counter/Gauge/
// Histogram/Rate once at setup, hold the typed handle, and touch only its
// lock-free atomics per event. The registry mutex guards interning and
// Snapshot only — never a recorded observation.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]entry)}
}

// intern returns the instrument registered under name, creating it with
// mk on first use. It panics if name is already interned as another kind.
func (r *Registry) intern(name string, k Kind, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("metrics: %q already registered as %s, requested as %s", name, e.kind, k))
		}
		return e.m
	}
	m := mk()
	r.metrics[name] = entry{kind: k, m: m}
	return m
}

// Counter returns the named counter handle, interning it on first use.
// Panics if name is already registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	return r.intern(name, KindCounter, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the named gauge handle, interning it on first use.
// Panics if name is already registered as a different kind.
func (r *Registry) Gauge(name string) *Gauge {
	return r.intern(name, KindGauge, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the named histogram handle, interning it on first use.
// Panics if name is already registered as a different kind.
func (r *Registry) Histogram(name string) *Histogram {
	return r.intern(name, KindHistogram, func() any { return NewHistogram() }).(*Histogram)
}

// Rate returns the named rate handle, interning it on first use.
// Panics if name is already registered as a different kind.
func (r *Registry) Rate(name string) *Rate {
	return r.intern(name, KindRate, func() any { return &Rate{} }).(*Rate)
}

// Snapshot is a point-in-time copy of every metric in the registry. The
// name set is read in one pass under the registry lock, so a snapshot is
// self-consistent: every interned metric appears in exactly one map, and
// a metric interned mid-snapshot is either fully present or fully absent
// — never half-read. Histogram snapshots carry the full bucket state
// (min/max/quantiles); the mean is a method on HistogramSnapshot, not a
// separate parallel map that could drift from it.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Rates    map[string]float64 // units per virtual second
	// Histograms carries the full per-histogram snapshot (buckets,
	// min/max, quantiles) — the serving benchmark reports p50/p95/p99
	// from here and means via HistogramSnapshot.Mean.
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies all current values in one pass under the registry lock.
// Individual instruments are still written lock-free while the snapshot
// runs; each value read is that instrument's usual monitoring-consistency
// read.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Rates:      make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, e := range r.metrics {
		switch e.kind {
		case KindCounter:
			s.Counters[name] = e.m.(*Counter).Value()
		case KindGauge:
			s.Gauges[name] = e.m.(*Gauge).Value()
		case KindHistogram:
			s.Histograms[name] = e.m.(*Histogram).Snapshot()
		case KindRate:
			s.Rates[name] = e.m.(*Rate).PerSecond()
		}
	}
	return s
}

// String renders the snapshot sorted by metric name for stable output.
func (s Snapshot) String() string {
	var b strings.Builder
	writeSorted := func(prefix string, m map[string]float64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %s = %g\n", prefix, k, m[k])
		}
	}
	ckeys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	for _, k := range ckeys {
		fmt.Fprintf(&b, "counter %s = %d\n", k, s.Counters[k])
	}
	writeSorted("gauge", s.Gauges)
	hkeys := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "hist %s = count %d mean %g p99 %g\n", k, h.Count, h.Mean(), h.Quantile(0.99))
	}
	writeSorted("rate", s.Rates)
	return b.String()
}
