// Package metrics implements the load-information substrate from Section
// IV.C of the paper: "Load information management is required before any
// action is undertaken. It assumes measuring latencies and bandwidth of each
// stream, as well as usage of individual and aggregate resources."
//
// It provides counters, gauges, log-bucketed histograms, and windowed rates,
// collected in a Registry that resource managers snapshot to drive load
// balancing, pinning, and closed-loop SLA control.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative; negative deltas are ignored so
// the counter stays monotone.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram records observations into logarithmic buckets (powers of two)
// and supports quantile estimation. Construct with NewHistogram.
type Histogram struct {
	mu      sync.Mutex
	buckets []int64 // buckets[i] counts values in [2^(i-1), 2^i)
	count   int64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram returns an empty histogram covering values up to 2^62.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]int64, 64), min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one value. Non-positive values land in bucket 0.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketFor(v)]++
}

func bucketFor(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Log2(v)) + 1
	if b >= 64 {
		b = 63
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1)
// using bucket upper edges. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 1
			}
			return math.Pow(2, float64(i)) // upper edge of bucket i
		}
	}
	return h.max
}

// Rate tracks a quantity accumulated over simulated time, reporting units
// per second of virtual time. It exists because the simulators have no wall
// clock: callers explicitly advance time.
type Rate struct {
	mu       sync.Mutex
	totalQty float64
	totalPS  int64
}

// Record adds qty transferred over elapsedPS picoseconds of virtual time.
func (r *Rate) Record(qty float64, elapsedPS int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.totalQty += qty
	r.totalPS += elapsedPS
}

// PerSecond returns the average rate in units per virtual second.
func (r *Rate) PerSecond() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.totalPS == 0 {
		return 0
	}
	return r.totalQty / (float64(r.totalPS) * 1e-12)
}

// Registry is a named collection of metrics. All accessors create the metric
// on first use. Registry is safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	rates      map[string]*Rate
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		rates:      make(map[string]*Rate),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Rate returns the named rate, creating it if needed.
func (r *Registry) Rate(name string) *Rate {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.rates[name]
	if !ok {
		rt = &Rate{}
		r.rates[name] = rt
	}
	return rt
}

// Snapshot is a point-in-time copy of scalar metric values.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Means    map[string]float64 // histogram means
	Rates    map[string]float64 // units per virtual second
}

// Snapshot copies all current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	rates := make(map[string]*Rate, len(r.rates))
	for k, v := range r.rates {
		rates[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters: make(map[string]int64, len(counters)),
		Gauges:   make(map[string]float64, len(gauges)),
		Means:    make(map[string]float64, len(hists)),
		Rates:    make(map[string]float64, len(rates)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Means[k] = v.Mean()
	}
	for k, v := range rates {
		s.Rates[k] = v.PerSecond()
	}
	return s
}

// String renders the snapshot sorted by metric name for stable output.
func (s Snapshot) String() string {
	var b strings.Builder
	writeSorted := func(prefix string, m map[string]float64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %s = %g\n", prefix, k, m[k])
		}
	}
	ckeys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	for _, k := range ckeys {
		fmt.Fprintf(&b, "counter %s = %d\n", k, s.Counters[k])
	}
	writeSorted("gauge", s.Gauges)
	writeSorted("hist-mean", s.Means)
	writeSorted("rate", s.Rates)
	return b.String()
}
