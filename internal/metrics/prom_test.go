package metrics

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"serve.requests", "serve_requests"},
		{"xbar.mvm-total", "xbar_mvm_total"},
		{"plain", "plain"},
		{"9lives", "_9lives"},
		{"a:b_c", "a:b_c"},
	}
	for _, tt := range tests {
		if got := PromName(tt.in); got != tt.want {
			t.Errorf("PromName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests").Add(12)
	r.Gauge("serve.probe_accuracy").Set(0.97)
	r.Rate("link.bw").Record(100, 1e12)
	h := r.Histogram("serve.latency_ns")
	h.Observe(100)
	h.Observe(100)

	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE serve_requests counter\nserve_requests 12\n",
		"# TYPE serve_probe_accuracy gauge\nserve_probe_accuracy 0.97\n",
		"# TYPE link_bw_per_second gauge\nlink_bw_per_second 100\n",
		"# TYPE serve_latency_ns summary\n",
		`serve_latency_ns{quantile="0.5"} 100`,
		`serve_latency_ns{quantile="0.99"} 100`,
		"serve_latency_ns_sum 200\n",
		"serve_latency_ns_count 2\n",
		"serve_latency_ns_min 100\n",
		"serve_latency_ns_max 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two renders of the same snapshot are identical.
	var b2 strings.Builder
	if err := r.Snapshot().WriteProm(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("WriteProm output not deterministic")
	}
}

// TestWritePromLabeled: an instance label set attaches to every series —
// the fleet's per-engine exposition — with sorted keys, escaped values,
// and quantile labels merged rather than replaced.
func TestWritePromLabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests").Add(3)
	r.Gauge("fleet.engines").Set(4)
	r.Histogram("serve.latency_ns").Observe(50)

	var b strings.Builder
	err := r.Snapshot().WritePromLabeled(&b, map[string]string{"engine": "2", "zone": `a"b`})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"serve_requests{engine=\"2\",zone=\"a\\\"b\"} 3\n",
		"fleet_engines{engine=\"2\",zone=\"a\\\"b\"} 4\n",
		`serve_latency_ns{engine="2",quantile="0.5",zone="a\"b"} 50`,
		"serve_latency_ns_count{engine=\"2\",zone=\"a\\\"b\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled exposition missing %q:\n%s", want, out)
		}
	}

	// Nil labels degrade to the unlabeled form.
	var plain, nilLabeled strings.Builder
	if err := r.Snapshot().WriteProm(&plain); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WritePromLabeled(&nilLabeled, nil); err != nil {
		t.Fatal(err)
	}
	if plain.String() != nilLabeled.String() {
		t.Error("WritePromLabeled(nil) differs from WriteProm")
	}
	if got := PromLabel(nil); got != "" {
		t.Errorf("PromLabel(nil) = %q, want empty", got)
	}
}
