// Prometheus text-format exposition for metric snapshots. This backs the
// cimserve -listen /metrics endpoint: WriteProm renders a Snapshot, so
// scrapes never hold the registry lock longer than one Snapshot() pass and
// never block the lock-free recording path.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promQuantiles are the summary quantiles exposed per histogram.
var promQuantiles = []float64{0.5, 0.95, 0.99}

// PromName sanitizes a registry metric name into a Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_' (dots in the dotted
// registry names included), and a leading digit is prefixed with '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromLabel renders a label set as a Prometheus label block ("{k=\"v\"}"),
// keys sorted, values escaped per the exposition format. Empty or nil maps
// render as the empty string (no braces).
func PromLabel(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	ks := make([]string, 0, len(labels))
	for k := range labels {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range ks {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(labels[k])
		fmt.Fprintf(&b, `%s="%s"`, PromName(k), v)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels folds extra labels into a rendered label block, used for the
// histogram quantile series (quantile plus any instance labels).
func mergeLabels(labels map[string]string, k, v string) string {
	m := make(map[string]string, len(labels)+1)
	for lk, lv := range labels {
		m[lk] = lv
	}
	m[k] = v
	return PromLabel(m)
}

// WriteProm renders the snapshot in the Prometheus text exposition format
// (version 0.0.4), sorted by metric name for stable scrapes:
//
//   - counters as TYPE counter
//   - gauges and rates as TYPE gauge (rates get a _per_second suffix —
//     they are averages over *simulated* time, not scrape-window deltas)
//   - histograms as TYPE summary with p50/p95/p99 quantile series plus
//     _sum, _count, _min, and _max
func (s Snapshot) WriteProm(w io.Writer) error {
	return s.WritePromLabeled(w, nil)
}

// WritePromLabeled is WriteProm with an instance label set attached to
// every series. This is how cimserve exposes a fleet on one /metrics
// endpoint: each engine's private registry renders with
// {engine="<id>"}, so per-engine series share metric names without
// colliding — the Prometheus-native multi-instance idiom. A nil or empty
// label map renders identically to WriteProm.
func (s Snapshot) WritePromLabeled(w io.Writer, labels map[string]string) error {
	lb := PromLabel(labels)
	names := func(n int) []string { return make([]string, 0, n) }

	ks := names(len(s.Counters))
	for k := range s.Counters {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		n := PromName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", n, n, lb, s.Counters[k]); err != nil {
			return err
		}
	}

	ks = names(len(s.Gauges))
	for k := range s.Gauges {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		n := PromName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %g\n", n, n, lb, s.Gauges[k]); err != nil {
			return err
		}
	}

	ks = names(len(s.Rates))
	for k := range s.Rates {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		n := PromName(k) + "_per_second"
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %g\n", n, n, lb, s.Rates[k]); err != nil {
			return err
		}
	}

	ks = names(len(s.Histograms))
	for k := range s.Histograms {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		n := PromName(k)
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, q := range promQuantiles {
			ql := mergeLabels(labels, "quantile", fmt.Sprintf("%g", q))
			if _, err := fmt.Fprintf(w, "%s%s %g\n", n, ql, h.Quantile(q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n%s_min%s %g\n%s_max%s %g\n",
			n, lb, h.Sum, n, lb, h.Count, n, lb, h.Min, n, lb, h.Max); err != nil {
			return err
		}
	}
	return nil
}
