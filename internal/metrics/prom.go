// Prometheus text-format exposition for metric snapshots. This backs the
// cimserve -listen /metrics endpoint: WriteProm renders a Snapshot, so
// scrapes never hold the registry lock longer than one Snapshot() pass and
// never block the lock-free recording path.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promQuantiles are the summary quantiles exposed per histogram.
var promQuantiles = []float64{0.5, 0.95, 0.99}

// PromName sanitizes a registry metric name into a Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_' (dots in the dotted
// registry names included), and a leading digit is prefixed with '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in the Prometheus text exposition format
// (version 0.0.4), sorted by metric name for stable scrapes:
//
//   - counters as TYPE counter
//   - gauges and rates as TYPE gauge (rates get a _per_second suffix —
//     they are averages over *simulated* time, not scrape-window deltas)
//   - histograms as TYPE summary with p50/p95/p99 quantile series plus
//     _sum, _count, _min, and _max
func (s Snapshot) WriteProm(w io.Writer) error {
	names := func(n int) []string { return make([]string, 0, n) }

	ks := names(len(s.Counters))
	for k := range s.Counters {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		n := PromName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k]); err != nil {
			return err
		}
	}

	ks = names(len(s.Gauges))
	for k := range s.Gauges {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		n := PromName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, s.Gauges[k]); err != nil {
			return err
		}
	}

	ks = names(len(s.Rates))
	for k := range s.Rates {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		n := PromName(k) + "_per_second"
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, s.Rates[k]); err != nil {
			return err
		}
	}

	ks = names(len(s.Histograms))
	for k := range s.Histograms {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		n := PromName(k)
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, q := range promQuantiles {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", n, fmt.Sprintf("%g", q), h.Quantile(q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n%s_min %g\n%s_max %g\n",
			n, h.Sum, n, h.Count, n, h.Min, n, h.Max); err != nil {
			return err
		}
	}
	return nil
}
