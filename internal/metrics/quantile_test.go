package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestQuantileEdgeCases pins the degenerate-distribution contract: empty
// histograms report 0, single observations (and all-equal streams) report
// the observed value exactly for every quantile, and bucket-edge estimates
// clamp into [Min, Max] instead of interpolating empty log2 buckets.
func TestQuantileEdgeCases(t *testing.T) {
	qs := []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1}
	tests := []struct {
		name string
		obs  []float64
		// want maps quantile -> expected value; nil means "same for all qs"
		wantAll float64
		want    map[float64]float64
	}{
		{name: "empty", obs: nil, wantAll: 0},
		{name: "single", obs: []float64{7.3}, wantAll: 7.3},
		{name: "single_subunit", obs: []float64{0.25}, wantAll: 0.25},
		{name: "single_zero", obs: []float64{0}, wantAll: 0},
		{name: "all_equal", obs: []float64{42, 42, 42, 42}, wantAll: 42},
		{
			name: "two_distinct_same_bucket",
			obs:  []float64{3, 3.5}, // both in [2,4): edge 4 clamps to max 3.5
			want: map[float64]float64{0: 3.5, 0.5: 3.5, 1: 3.5},
		},
		{
			name: "clamp_low",
			obs:  []float64{1.5, 100}, // q=0 walks to bucket [1,2): edge 2 >= min already
			want: map[float64]float64{0.5: 2, 1: 100},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := NewHistogram()
			for _, v := range tt.obs {
				h.Observe(v)
			}
			s := h.Snapshot()
			if tt.want == nil {
				for _, q := range qs {
					if got := s.Quantile(q); got != tt.wantAll {
						t.Errorf("Quantile(%g) = %g, want %g", q, got, tt.wantAll)
					}
				}
				// Min == p50 == Max for degenerate distributions.
				if s.Count > 0 && (s.Quantile(0.5) != s.Min || s.Quantile(0.5) != s.Max) {
					t.Errorf("degenerate: min %g p50 %g max %g must be equal", s.Min, s.Quantile(0.5), s.Max)
				}
				return
			}
			for q, want := range tt.want {
				if got := s.Quantile(q); got != want {
					t.Errorf("Quantile(%g) = %g, want %g", q, got, want)
				}
			}
		})
	}
}

// TestQuantileWithinObservedRange is the general clamp property: for any
// non-empty histogram, every quantile lies in [Min, Max].
func TestQuantileWithinObservedRange(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(10 + 3*float64(i%7)) // values in [10, 28]
	}
	s := h.Snapshot()
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := s.Quantile(q)
		if got < s.Min || got > s.Max {
			t.Errorf("Quantile(%g) = %g outside [%g, %g]", q, got, s.Min, s.Max)
		}
	}
}

// TestRegistryKindConflictPanics pins the single-namespace contract: a
// name interned as one kind cannot be re-requested as another.
func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("Gauge on a counter name must panic")
		}
		msg, ok := rec.(string)
		if !ok || !strings.Contains(msg, "already registered as counter") {
			t.Errorf("panic = %v, want kind-conflict message", rec)
		}
	}()
	r.Gauge("x")
}

// TestSnapshotSelfConsistent checks the one-pass snapshot shape: every
// interned metric lands in exactly one map.
func TestSnapshotSelfConsistent(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(1.25)
	r.Histogram("h").Observe(8)
	r.Rate("r").Record(10, 1e12)
	s := r.Snapshot()
	if len(s.Counters) != 1 || len(s.Gauges) != 1 || len(s.Histograms) != 1 || len(s.Rates) != 1 {
		t.Fatalf("snapshot shape = %d/%d/%d/%d, want 1 each",
			len(s.Counters), len(s.Gauges), len(s.Histograms), len(s.Rates))
	}
	if s.Counters["c"] != 2 || s.Gauges["g"] != 1.25 {
		t.Errorf("snapshot values wrong: %+v", s)
	}
	if hs := s.Histograms["h"]; hs.Count != 1 || hs.Mean() != 8 {
		t.Errorf("histogram snapshot = %+v", s.Histograms["h"])
	}
	if math.Abs(s.Rates["r"]-10) > 1e-9 {
		t.Errorf("rate = %g, want 10", s.Rates["r"])
	}
}

// TestQuantileOverflowBucket pins the FuzzHistogramQuantile find: values
// beyond 2^62 all land in the last (overflow) bucket, whose nominal 2^63
// edge can sit far below the largest observation. Quantiles resolving
// there must report Max — the only honest upper bound — so a tail
// estimate can never undercut an observed value.
func TestQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram()
	h.Observe(1.5e-76) // bucket 0
	h.Observe(6.4e116) // overflow bucket: way past the 2^63 nominal edge
	for _, q := range []float64{0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 6.4e116 {
			t.Errorf("Quantile(%g) = %g, want the overflow bucket's Max 6.4e116", q, got)
		}
	}
	// Values inside the penultimate bucket still interpolate normally.
	h2 := NewHistogram()
	h2.Observe(2)
	h2.Observe(1000)
	if got := h2.Quantile(1); got != 1000 {
		t.Errorf("in-range Quantile(1) = %g, want clamp to Max 1000", got)
	}
}
