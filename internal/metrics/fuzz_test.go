package metrics

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// FuzzHistogramQuantile feeds arbitrary observation sets into the
// lock-free histogram and checks the quantile estimator's contract — the
// one the hedge delay (internal/fleet) and every latency SLO read
// through (docs/RESILIENCE.md):
//
//   - monotone: q1 <= q2 implies Quantile(q1) <= Quantile(q2), with
//     out-of-range q clamped to the [0, 1] endpoints;
//   - bounded: every estimate lies inside the observed [Min, Max];
//   - self-consistent: Quantile(q) is an upper bound — at least
//     ceil(q*count) of the recorded observations are <= the estimate.
//
// The input bytes decode as raw float64 bit patterns; NaN and ±Inf are
// skipped (Observe's domain is finite values), everything else — huge,
// tiny, negative, zero — is fair game for the log2 bucket walk.
func FuzzHistogramQuantile(f *testing.F) {
	seed := func(vals ...float64) []byte {
		var b []byte
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add(seed())
	f.Add(seed(7.3))
	f.Add(seed(42, 42, 42, 42))
	f.Add(seed(3, 3.5))
	f.Add(seed(-5, -1))
	f.Add(seed(0, 0.25, 1.5, 100, 1e18))
	f.Add([]byte{1, 2, 3}) // trailing partial chunk is ignored

	qs := []float64{-3, 0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1, 7}
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxObs = 4096
		h := NewHistogram()
		var obs []float64
		for len(data) >= 8 && len(obs) < maxObs {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
			obs = append(obs, v)
		}
		snap := h.Snapshot()
		if snap.Count != int64(len(obs)) {
			t.Fatalf("Count = %d after %d observations", snap.Count, len(obs))
		}
		if len(obs) == 0 {
			for _, q := range qs {
				if got := snap.Quantile(q); got != 0 {
					t.Fatalf("empty histogram Quantile(%g) = %g, want 0", q, got)
				}
			}
			return
		}

		sorted := append([]float64(nil), obs...)
		sort.Float64s(sorted)
		if snap.Min != sorted[0] || snap.Max != sorted[len(sorted)-1] {
			t.Fatalf("Min/Max = %g/%g, want %g/%g",
				snap.Min, snap.Max, sorted[0], sorted[len(sorted)-1])
		}

		prev := math.Inf(-1)
		for _, q := range qs {
			got := snap.Quantile(q)
			if got < prev {
				t.Fatalf("quantiles not monotone: Quantile(%g) = %g < previous %g (obs %v)",
					q, got, prev, obs)
			}
			prev = got
			if got < snap.Min || got > snap.Max {
				t.Fatalf("Quantile(%g) = %g outside [%g, %g] (obs %v)",
					q, got, snap.Min, snap.Max, obs)
			}
			// Upper-bound self-consistency: the estimate must cover at
			// least ceil(q*count) observations.
			qc := q
			if qc < 0 {
				qc = 0
			}
			if qc > 1 {
				qc = 1
			}
			target := int(math.Ceil(qc * float64(len(obs))))
			if target == 0 {
				target = 1
			}
			covered := sort.SearchFloat64s(sorted, got)
			for covered < len(sorted) && sorted[covered] == got {
				covered++
			}
			if covered < target {
				t.Fatalf("Quantile(%g) = %g covers %d/%d observations, want >= %d (obs %v)",
					q, got, covered, len(obs), target, obs)
			}
		}
		// Out-of-range q clamps to the endpoints exactly.
		if snap.Quantile(-3) != snap.Quantile(0) || snap.Quantile(7) != snap.Quantile(1) {
			t.Fatalf("out-of-range q not clamped: Q(-3)=%g Q(0)=%g Q(7)=%g Q(1)=%g",
				snap.Quantile(-3), snap.Quantile(0), snap.Quantile(7), snap.Quantile(1))
		}
	})
}
