package faultinject

import (
	"math"
	"sync"
	"testing"
)

func TestValidate(t *testing.T) {
	good := []Model{
		{},
		{StuckLowRate: 0.01, StuckHighRate: 0.01, WriteFailRate: 0.5, Seed: 7},
		{DriftRate: 0.1, DriftMax: 0.05},
		{StuckLowRate: 1},
	}
	for i, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("model %d: unexpected error: %v", i, err)
		}
	}
	bad := []Model{
		{StuckLowRate: -0.1},
		{StuckHighRate: 1.5},
		{WriteFailRate: math.NaN()},
		{StuckLowRate: 0.7, StuckHighRate: 0.7}, // classes overlap certainty
		{DriftRate: 0.1},                        // DriftMax missing
		{DriftRate: 0.1, DriftMax: 1},
		{DriftRate: 0.1, DriftMax: math.NaN()},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d (%+v): expected error", i, m)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Model{}).Enabled() {
		t.Fatal("zero model must be disabled")
	}
	if (Model{Seed: 99}).Enabled() {
		t.Fatal("seed alone must not enable the model")
	}
	for _, m := range []Model{
		{StuckLowRate: 0.001},
		{StuckHighRate: 0.001},
		{DriftRate: 0.001, DriftMax: 0.1},
		{WriteFailRate: 0.001},
	} {
		if !m.Enabled() {
			t.Errorf("model %+v must be enabled", m)
		}
	}
}

// TestCellDeterminism pins the positional-determinism contract: the fault
// class of a cell depends only on (source, position), never on query order
// or goroutine, and distinct positions fault independently.
func TestCellDeterminism(t *testing.T) {
	m := Model{StuckLowRate: 0.1, StuckHighRate: 0.1, DriftRate: 0.1, DriftMax: 0.2, Seed: 42}
	src := m.Root()
	const n = 4096
	want := make([]Fault, n)
	for i := range want {
		want[i] = m.Cell(src, uint64(i))
	}
	// Re-query in reverse order and from concurrent goroutines.
	for i := n - 1; i >= 0; i-- {
		if got := m.Cell(src, uint64(i)); got != want[i] {
			t.Fatalf("pos %d: reverse query %v != %v", i, got, want[i])
		}
	}
	var wg sync.WaitGroup
	errs := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				if m.Cell(src, uint64(i)) != want[i] {
					errs[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	for w, e := range errs {
		if e != 0 {
			t.Fatalf("worker %d saw %d mismatches", w, e)
		}
	}
}

// TestCellRates checks the fault classifier hits its configured rates to
// within sampling error, and that distinct seeds fault different cells.
func TestCellRates(t *testing.T) {
	m := Model{StuckLowRate: 0.05, StuckHighRate: 0.03, DriftRate: 0.02, DriftMax: 0.1, Seed: 7}
	src := m.Root()
	const n = 200_000
	counts := map[Fault]int{}
	for i := 0; i < n; i++ {
		counts[m.Cell(src, uint64(i))]++
	}
	check := func(f Fault, rate float64) {
		got := float64(counts[f]) / n
		if math.Abs(got-rate) > 0.005 {
			t.Errorf("%v: rate %.4f, want ~%.4f", f, got, rate)
		}
	}
	check(StuckLow, 0.05)
	check(StuckHigh, 0.03)
	check(Drifter, 0.02)

	m2 := m
	m2.Seed = 8
	src2 := m2.Root()
	same := 0
	for i := 0; i < 10_000; i++ {
		if m.Cell(src, uint64(i)) == StuckLow && m2.Cell(src2, uint64(i)) == StuckLow {
			same++
		}
	}
	// Independent 5% rates coincide at ~0.25%; 10k draws ⇒ ~25 ± a few.
	if same > 100 {
		t.Errorf("seeds 7 and 8 share %d stuck-low cells of 10000: sources not independent", same)
	}
}

func TestDriftBounds(t *testing.T) {
	m := Model{DriftRate: 1, DriftMax: 0.25, Seed: 3}
	src := m.Root()
	for i := uint64(0); i < 10_000; i++ {
		loss := m.DriftLoss(src, i)
		if loss <= 0 || loss > 0.25 {
			t.Fatalf("pos %d: drift loss %g outside (0, 0.25]", i, loss)
		}
	}
	if f := m.DriftFactor(src, 5, 0); f != 1 {
		t.Fatalf("epoch 0 drift factor = %g, want 1", f)
	}
	f1, f3 := m.DriftFactor(src, 5, 1), m.DriftFactor(src, 5, 3)
	if !(f3 < f1 && f1 < 1) {
		t.Fatalf("drift must compound: f1=%g f3=%g", f1, f3)
	}
	want := math.Pow(f1, 3)
	if math.Abs(f3-want) > 1e-12 {
		t.Fatalf("drift factor not exponential in epochs: f3=%g want %g", f3, want)
	}
}

// TestPulseFails pins per-pulse independence: retries within an epoch and
// reprograms across epochs draw fresh, while the same (epoch, pulse) always
// reproduces.
func TestPulseFails(t *testing.T) {
	m := Model{WriteFailRate: 0.5, Seed: 11}
	src := m.Root()
	const pos = 17
	a := m.PulseFails(src, pos, 0, 0)
	for i := 0; i < 100; i++ {
		if m.PulseFails(src, pos, 0, 0) != a {
			t.Fatal("same (pos, epoch, pulse) must reproduce")
		}
	}
	// At 50% failure, 64 draws across pulses and epochs must not all agree.
	varies := false
	for p := uint64(0); p < 32 && !varies; p++ {
		varies = m.PulseFails(src, pos, 0, p) != a || m.PulseFails(src, pos, p+1, 0) != a
	}
	if !varies {
		t.Fatal("pulse failures must vary across pulses and epochs")
	}
	if (Model{}).PulseFails(src, pos, 0, 0) {
		t.Fatal("zero WriteFailRate must never fail")
	}
}

func TestReportAddHealthyString(t *testing.T) {
	var r Report
	if !r.Healthy() {
		t.Fatal("zero report must be healthy")
	}
	r.Add(Report{StuckCells: 2, DriftCells: 1, RetryPulses: 5, Verifies: 9, RemappedCols: 1, SparesUsed: 2, BadSpares: 1, LostCols: 0})
	r.Add(Report{StuckCells: 1, LostCols: 3})
	if r.StuckCells != 3 || r.RetryPulses != 5 || r.SparesUsed != 2 || r.LostCols != 3 {
		t.Fatalf("bad fold: %+v", r)
	}
	if r.Healthy() {
		t.Fatal("lost columns must mark the report unhealthy")
	}
	if s := r.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestFaultString(t *testing.T) {
	for f, want := range map[Fault]string{None: "none", StuckLow: "stuck-low", StuckHigh: "stuck-high", Drifter: "drifter"} {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), want)
		}
	}
	if Fault(99).String() == "" {
		t.Error("unknown fault must still format")
	}
}
