// Package faultinject is the deterministic device-fault model behind the
// paper's Section V.A fault-tolerance claims and the Section VI scaling
// caveats: memristive cells get stuck, drift with endurance, and fail
// transiently under the write asymmetry — and a credible CIM fabric has to
// *measure* how much of that it survives, not assert it.
//
// The model is counter-based, like internal/noise: every fault decision is
// a pure function of (fault source, physical cell position, program epoch,
// pulse index), never of evaluation order. That is what keeps fault sweeps
// bit-identical at any -parallel width — a tile derives one child source
// per crossbar block, a crossbar keys every draw by cell position, and no
// goroutine schedule can change which cells are stuck.
//
// Three fault classes are modeled, following the taxonomy of the co-design
// survey (PAPERS.md) and Eva-CiM:
//
//   - Stuck-at faults: a cell is permanently pinned at GMin (stuck-low,
//     forming/reset failures) or GMax (stuck-high, shorted filaments).
//     Permanent and position-keyed: the same cell is stuck in every
//     program epoch, so repair must route around it (spare remapping).
//   - Endurance drift: a cell loses a fixed fraction of its programmed
//     conductance per program epoch (retention/endurance aging). Drift
//     happens *after* program-and-verify settles — the write verifies
//     clean, then the level relaxes — so it degrades accuracy without
//     triggering remap, exactly the slow aging Section V.D wants detected
//     by health scans rather than write verification.
//   - Transient write failures: an individual program pulse fails to move
//     the cell with probability WriteFailRate. These are the recoverable
//     class: program-and-verify retries with escalating pulse trains
//     (charging real write energy and latency per pulse) almost always
//     settle the cell; only pathological rates exhaust the retry budget.
//
// The consumers are internal/crossbar (program-and-verify + spare-column
// remapping), internal/dpe (HealthCheck/Repair between batches), and
// internal/serve (the health-aware circuit breaker). See docs/FAULTS.md.
package faultinject

import (
	"fmt"
	"math"

	"cimrev/internal/noise"
)

// Fault classifies the permanent fault at one physical cell.
type Fault uint8

const (
	// None: the cell programs normally (transient pulse failures aside).
	None Fault = iota
	// StuckLow: the cell is pinned at its minimum conductance level.
	StuckLow
	// StuckHigh: the cell is pinned at its maximum conductance level.
	StuckHigh
	// Drifter: the cell verifies clean but loses conductance each epoch.
	Drifter
)

// String returns the fault class name.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case StuckLow:
		return "stuck-low"
	case StuckHigh:
		return "stuck-high"
	case Drifter:
		return "drifter"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Substream indices under a crossbar's fault source: permanent-fault
// classification, drift magnitudes, and per-pulse transient failures each
// draw from their own derived child so the three decision kinds are
// statistically independent at every cell.
const (
	subStuck uint64 = iota
	subDrift
	subWrite
)

// maxPulsesPerCell bounds the per-cell pulse counter used to key transient
// write-failure draws: pulse p of program epoch e draws at index
// e*maxPulsesPerCell + p. A verify loop with escalating trains of
// 1,2,4,8,16,32 pulses uses at most 63, so 64 leaves headroom.
const maxPulsesPerCell = 64

// Model is a device-fault configuration. The zero value disables fault
// injection entirely — every consumer's zero-fault path is bit-identical
// to a build without this package.
type Model struct {
	// StuckLowRate and StuckHighRate are per-physical-cell probabilities
	// of a permanent stuck-at fault at GMin / GMax respectively.
	StuckLowRate  float64
	StuckHighRate float64
	// DriftRate is the per-cell probability of endurance-driven drift;
	// DriftMax bounds the per-epoch fractional conductance loss of a
	// drifting cell (each drifter's loss is drawn uniformly in
	// (0, DriftMax]).
	DriftRate float64
	DriftMax  float64
	// WriteFailRate is the per-pulse probability that a program pulse
	// fails to move the cell (the transient class program-and-verify
	// exists to absorb).
	WriteFailRate float64
	// Seed keys the fault source tree. Engines derive one child per
	// stage, tiles one grandchild per block, so distinct arrays fault
	// independently while the whole sweep reproduces from one seed.
	Seed int64
}

// Enabled reports whether any fault class has a nonzero rate.
func (m Model) Enabled() bool {
	return m.StuckLowRate > 0 || m.StuckHighRate > 0 || m.DriftRate > 0 || m.WriteFailRate > 0
}

// Validate reports whether the model is usable: every rate is a
// probability, the stuck classes don't overlap past certainty, and drift
// magnitude is a fraction.
func (m Model) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"StuckLowRate", m.StuckLowRate},
		{"StuckHighRate", m.StuckHighRate},
		{"DriftRate", m.DriftRate},
		{"WriteFailRate", m.WriteFailRate},
	} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultinject: %s must be in [0,1], got %g", p.name, p.v)
		}
	}
	if s := m.StuckLowRate + m.StuckHighRate + m.DriftRate; s > 1 {
		return fmt.Errorf("faultinject: stuck/drift rates sum to %g > 1", s)
	}
	if m.DriftRate > 0 && (math.IsNaN(m.DriftMax) || m.DriftMax <= 0 || m.DriftMax >= 1) {
		return fmt.Errorf("faultinject: DriftMax must be in (0,1) when DriftRate > 0, got %g", m.DriftMax)
	}
	return nil
}

// Root returns the root fault source for the model's seed. Derive children
// per stage / per block from it; cell-level draws then key off position.
func (m Model) Root() noise.Source { return noise.NewSource(m.Seed) }

// Cell returns the permanent fault class of the physical cell at pos under
// source src. The draw is position-keyed: the same (src, pos) is stuck (or
// not) in every program epoch, at any evaluation order.
func (m Model) Cell(src noise.Source, pos uint64) Fault {
	if m.StuckLowRate == 0 && m.StuckHighRate == 0 && m.DriftRate == 0 {
		return None
	}
	u := src.Derive(subStuck).Float64(pos)
	switch {
	case u < m.StuckLowRate:
		return StuckLow
	case u < m.StuckLowRate+m.StuckHighRate:
		return StuckHigh
	case u < m.StuckLowRate+m.StuckHighRate+m.DriftRate:
		return Drifter
	}
	return None
}

// DriftLoss returns the per-epoch fractional conductance loss of the
// drifting cell at pos: uniform in (0, DriftMax], position-keyed. Callers
// only consult it for cells Cell classified as Drifter.
func (m Model) DriftLoss(src noise.Source, pos uint64) float64 {
	return src.Derive(subDrift).Float64(pos) * m.DriftMax
}

// DriftFactor returns the cumulative conductance retention of a drifting
// cell after `epochs` program epochs: (1-loss)^epochs.
func (m Model) DriftFactor(src noise.Source, pos uint64, epochs uint64) float64 {
	if epochs == 0 {
		return 1
	}
	return math.Pow(1-m.DriftLoss(src, pos), float64(epochs))
}

// PulseFails reports whether program pulse `pulse` (0-based within the
// cell's program epoch) of epoch `epoch` at cell pos fails to move the
// device. Keyed by (src, pos, epoch, pulse): a retry in the same epoch
// draws fresh, a reprogram in a later epoch re-rolls everything, and no
// draw depends on scheduling. pulse must be < 64 per epoch (the verify
// loop's escalating trains stay well under).
func (m Model) PulseFails(src noise.Source, pos, epoch, pulse uint64) bool {
	if m.WriteFailRate == 0 {
		return false
	}
	return src.Derive(subWrite).Derive(pos).Float64(epoch*maxPulsesPerCell+pulse) < m.WriteFailRate
}

// Report aggregates what fault handling observed and did during a program
// pass: the measured blast radius of the configured fault rates. Crossbars
// fill one per Program; tiles and engines fold them upward in fixed block
// and stage order, so totals are deterministic at any pool width.
type Report struct {
	// StuckCells counts permanent stuck-at faults encountered in columns
	// that were actually programmed (primaries and consumed spares).
	StuckCells int
	// DriftCells counts drifting cells in programmed columns.
	DriftCells int
	// RetryPulses counts program pulses beyond the first per cell: the
	// extra write work program-and-verify charged to the cost ledger.
	RetryPulses int64
	// Verifies counts verify read-backs (one per pulse train).
	Verifies int64
	// RemappedCols counts logical columns the built-in self-test moved
	// onto spare physical columns.
	RemappedCols int
	// SparesUsed counts spare physical columns consumed (including bad
	// spares that were themselves skipped over).
	SparesUsed int
	// BadSpares counts spares that failed their own self-test and were
	// discarded during remapping.
	BadSpares int
	// LostCols counts logical columns left holding corrupted data because
	// the spare budget ran out: the non-silent degradation signal.
	LostCols int
}

// Add folds o into r.
func (r *Report) Add(o Report) {
	r.StuckCells += o.StuckCells
	r.DriftCells += o.DriftCells
	r.RetryPulses += o.RetryPulses
	r.Verifies += o.Verifies
	r.RemappedCols += o.RemappedCols
	r.SparesUsed += o.SparesUsed
	r.BadSpares += o.BadSpares
	r.LostCols += o.LostCols
}

// Healthy reports whether every logical column holds verified data: no
// column was lost to spare exhaustion.
func (r Report) Healthy() bool { return r.LostCols == 0 }

// String formats the report compactly for logs and experiment tables.
func (r Report) String() string {
	return fmt.Sprintf("stuck=%d drift=%d retries=%d remapped=%d spares=%d bad_spares=%d lost=%d",
		r.StuckCells, r.DriftCells, r.RetryPulses, r.RemappedCols, r.SparesUsed, r.BadSpares, r.LostCols)
}
