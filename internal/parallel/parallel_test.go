package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// resetWidth restores the default width after a test that changes it.
func resetWidth(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { SetWidth(0) })
}

func TestWidthDefaultsToGOMAXPROCS(t *testing.T) {
	resetWidth(t)
	SetWidth(0)
	if got, want := Width(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Width() = %d, want GOMAXPROCS %d", got, want)
	}
	SetWidth(7)
	if got := Width(); got != 7 {
		t.Fatalf("Width() = %d after SetWidth(7)", got)
	}
	SetWidth(-3)
	if got, want := Width(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Width() = %d after reset, want %d", got, want)
	}
}

func TestSequentialMode(t *testing.T) {
	resetWidth(t)
	SetWidth(1)
	if !Sequential() {
		t.Fatal("Sequential() = false at width 1")
	}
	// Sequential mode must execute inline and in ascending index order:
	// appending to a plain slice is race-free only if it does.
	var order []int
	For(100, func(i int) { order = append(order, i) })
	if len(order) != 100 {
		t.Fatalf("len(order) = %d, want 100", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want ascending in-order execution", i, v)
		}
	}
}

func TestForCoversAllIndicesAtEveryWidth(t *testing.T) {
	resetWidth(t)
	for _, w := range []int{1, 2, 4, 16, 64} {
		SetWidth(w)
		const n = 1000
		var hits [n]atomic.Int32
		For(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("width %d: index %d executed %d times", w, i, got)
			}
		}
	}
}

func TestForWidthOverride(t *testing.T) {
	resetWidth(t)
	SetWidth(16)
	var calls int
	// Explicit width 1 must run inline even though the global width is 16.
	ForWidth(1, 50, func(i int) { calls++ })
	if calls != 50 {
		t.Fatalf("calls = %d, want 50", calls)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	resetWidth(t)
	ran := false
	For(0, func(int) { ran = true })
	For(-5, func(int) { ran = true })
	if ran {
		t.Fatal("For ran work for n <= 0")
	}
}

func TestMapOrdering(t *testing.T) {
	resetWidth(t)
	for _, w := range []int{1, 4, 16} {
		SetWidth(w)
		got := Map(257, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("width %d: Map[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	resetWidth(t)
	for _, w := range []int{1, 4, 16} {
		SetWidth(w)
		err := ForErr(100, func(i int) error {
			if i == 37 || i == 80 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom at 37" {
			t.Fatalf("width %d: ForErr = %v, want boom at 37", w, err)
		}
	}
}

func TestForErrNilOnSuccess(t *testing.T) {
	resetWidth(t)
	SetWidth(8)
	if err := ForErr(64, func(int) error { return nil }); err != nil {
		t.Fatalf("ForErr = %v, want nil", err)
	}
}

func TestMapErr(t *testing.T) {
	resetWidth(t)
	SetWidth(4)
	out, err := MapErr(10, func(i int) (string, error) {
		return fmt.Sprintf("v%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if want := fmt.Sprintf("v%d", i); v != want {
			t.Fatalf("MapErr[%d] = %q, want %q", i, v, want)
		}
	}
	sentinel := errors.New("nope")
	if _, err := MapErr(10, func(i int) (int, error) {
		if i >= 5 {
			return 0, sentinel
		}
		return i, nil
	}); !errors.Is(err, sentinel) {
		t.Fatalf("MapErr error = %v, want sentinel", err)
	}
}

func TestForPanicPropagates(t *testing.T) {
	resetWidth(t)
	for _, w := range []int{1, 8} {
		SetWidth(w)
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("width %d: panic did not propagate", w)
				}
			}()
			For(32, func(i int) {
				if i == 9 {
					panic("kaboom")
				}
			})
		}()
	}
}

func TestDeterministicFloatReduction(t *testing.T) {
	resetWidth(t)
	// The central contract: compute in parallel, reduce by index. The
	// reduced float sum must be bit-identical across widths.
	sumAt := func(w int) float64 {
		SetWidth(w)
		vals := Map(501, func(i int) float64 { return 1.0 / float64(i+3) })
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	}
	ref := sumAt(1)
	for _, w := range []int{4, 16} {
		if got := sumAt(w); got != ref {
			t.Fatalf("width %d sum %v != width 1 sum %v", w, got, ref)
		}
	}
}
