// Package parallel is the simulator's shared worker-pool layer: bounded
// goroutine fan-out with deterministic result ordering for the hot paths in
// internal/crossbar (tiled MVM blocks), internal/dpe (batch inference,
// layer programming), and internal/experiments (sweep points). The
// serving pipeline (internal/serve) rides the same pool: every
// micro-batch it flushes fans out through dpe.Engine.InferBatch, so one
// width knob governs both offline sweeps and online serving.
//
// The hardware this repository simulates is massively spatially parallel —
// thousands of crossbar tiles compute matrix-vector products at once — so
// the natural simulation strategy is embarrassingly parallel too: every
// tile, batch item, and sweep point is an independent unit of work. This
// package turns that independence into wall-clock speedup without touching
// the *simulated* cost accounting, which stays in deterministic virtual
// time (see internal/energy).
//
// # Determinism
//
// Every helper assigns work by index and stores results by index. Callers
// reduce (sum energies, max latencies, concatenate rows) over the result
// slice in index order after the fan-out completes, so floating-point
// reductions happen in exactly the order the serial code used. A run at
// width 16 is therefore bit-identical to a run at width 1 — the equivalence
// tests in crossbar, dpe, and experiments assert this at widths 1/4/16.
//
// # Sequential mode
//
// SetWidth(1) selects sequential mode: work runs inline on the calling
// goroutine, in index order, with no goroutines spawned. Reproducibility
// tests pin it as the reference, and it is handy when profiling
// single-thread hot spots. No simulation path requires it anymore: analog
// read noise is counter-based (internal/noise draws are pure functions of
// position, not draw order), so even noise studies fan out at any width
// and stay bit-identical to sequential mode.
//
// # Width
//
// The pool width defaults to GOMAXPROCS and is process-global, set once at
// startup (cmd/cimbench -parallel N) or per-test via SetWidth. Width is
// the maximum number of concurrently executing units of work per For/Map
// call; nested fan-outs (an experiment sweep whose points run batched
// inference over tiled crossbars) may multiply momentarily, which is
// harmless for CPU-bound simulation work at these scales.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// width holds the configured pool width; 0 means "use GOMAXPROCS".
var width atomic.Int32

// Width returns the current worker-pool width. It defaults to
// runtime.GOMAXPROCS(0) and is always at least 1.
func Width() int {
	if w := int(width.Load()); w > 0 {
		return w
	}
	if n := runtime.GOMAXPROCS(0); n > 0 {
		return n
	}
	return 1
}

// SetWidth sets the global worker-pool width. n == 1 selects sequential
// mode (work runs inline, in order, on the calling goroutine); n <= 0
// resets to the GOMAXPROCS default.
func SetWidth(n int) {
	if n <= 0 {
		width.Store(0)
		return
	}
	width.Store(int32(n))
}

// Sequential reports whether the pool is in sequential mode (width 1).
func Sequential() bool { return Width() == 1 }

// For runs fn(i) for every i in [0, n), fanning out across at most
// Width() goroutines, and returns when all calls have completed. Indices
// are claimed in ascending order. fn must either be safe for concurrent
// invocation or the caller must be in sequential mode. A panic in any fn
// is re-raised on the calling goroutine after the remaining workers drain.
func For(n int, fn func(i int)) {
	ForWidth(Width(), n, fn)
}

// ForWidth is For with an explicit width override, independent of the
// global setting. width <= 1 or n <= 1 runs inline and in order.
func ForWidth(width, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if width > n {
		width = n
	}
	if width <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64 // next index to claim
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked bool
		panicVal any
	)
	work := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if !panicked {
					panicked, panicVal = true, r
					// Poison the counter so idle workers stop claiming.
					next.Store(int64(n))
				}
				panicMu.Unlock()
			}
		}()
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			fn(int(i))
		}
	}
	wg.Add(width)
	for w := 0; w < width; w++ {
		go work()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}

// ForErr runs fn(i) for every i in [0, n) across the pool and returns the
// error with the lowest index, or nil if every call succeeded. Once an
// error is observed, workers stop claiming new indices; because indices
// are claimed in ascending order, any in-flight lower index still
// completes, so the returned error is deterministic. (The serial path
// stops at the first error; the parallel path may execute a few extra
// higher-index calls before halting — side effects past the failing index
// are therefore best-effort, exactly as with hardware running ahead of a
// fault.)
func ForErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if Sequential() || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	For(n, func(i int) {
		if failed.Load() {
			return
		}
		if err := fn(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) across the pool and returns the
// results in index order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr runs fn(i) for every i in [0, n) across the pool, collecting
// results in index order. On error it returns nil and the lowest-index
// error (see ForErr for the determinism argument).
func MapErr[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForErr(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
