package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Training support. Section III.B notes that CIM's "inherent colocation of
// memory and computation enables additional flexibility in how computation
// is configured. This enables more opportunities for training" — the
// deployment story is train (here, in software or on embedded control
// cores), then program the result into crossbars. This file implements
// SGD backpropagation for MLP-shaped networks (alternating Dense and
// activation layers ending in softmax).

// mlpShape validates that the network is trainable by this implementation
// and returns its dense layers and hidden activations.
func mlpShape(net *Network) ([]*Dense, []*ActivationLayer, error) {
	if net == nil || len(net.Layers) == 0 {
		return nil, nil, fmt.Errorf("nn: empty network")
	}
	if len(net.Layers)%2 != 0 {
		return nil, nil, fmt.Errorf("nn: trainable MLP must alternate dense/activation")
	}
	var denses []*Dense
	var acts []*ActivationLayer
	for i := 0; i < len(net.Layers); i += 2 {
		d, ok := net.Layers[i].(*Dense)
		if !ok {
			return nil, nil, fmt.Errorf("nn: layer %d is %s, want dense", i, net.Layers[i].Name())
		}
		a, ok := net.Layers[i+1].(*ActivationLayer)
		if !ok {
			return nil, nil, fmt.Errorf("nn: layer %d is %s, want activation", i+1, net.Layers[i+1].Name())
		}
		switch {
		case i+2 == len(net.Layers) && a.Kind() != ActSoftmax:
			return nil, nil, fmt.Errorf("nn: output activation must be softmax, got %s", a.Name())
		case i+2 < len(net.Layers) && a.Kind() != ActReLU && a.Kind() != ActTanh && a.Kind() != ActSigmoid:
			return nil, nil, fmt.Errorf("nn: hidden activation %s not supported", a.Name())
		}
		denses = append(denses, d)
		acts = append(acts, a)
	}
	return denses, acts, nil
}

func actDerivative(kind Activation, preAct, postAct float64) float64 {
	switch kind {
	case ActReLU:
		if preAct > 0 {
			return 1
		}
		return 0
	case ActSigmoid:
		return postAct * (1 - postAct)
	case ActTanh:
		return 1 - postAct*postAct
	default:
		return 1
	}
}

// TrainStep runs one SGD step on a single example with cross-entropy loss,
// returning the loss before the update.
func TrainStep(net *Network, input []float64, label int, lr float64) (float64, error) {
	denses, acts, err := mlpShape(net)
	if err != nil {
		return 0, err
	}
	if len(input) != net.InSize() {
		return 0, fmt.Errorf("nn: input length %d != %d", len(input), net.InSize())
	}
	if label < 0 || label >= net.OutSize() {
		return 0, fmt.Errorf("nn: label %d outside [0,%d)", label, net.OutSize())
	}
	if lr <= 0 {
		return 0, fmt.Errorf("nn: learning rate must be positive, got %g", lr)
	}

	// Forward, retaining pre- and post-activation values per stage.
	L := len(denses)
	ins := make([][]float64, L)  // input to dense l
	pre := make([][]float64, L)  // dense output (pre-activation)
	post := make([][]float64, L) // activation output
	cur := input
	for l := 0; l < L; l++ {
		ins[l] = cur
		z, err := denses[l].Forward(cur)
		if err != nil {
			return 0, err
		}
		pre[l] = z
		a, err := acts[l].Forward(z)
		if err != nil {
			return 0, err
		}
		post[l] = a
		cur = a
	}

	probs := post[L-1]
	loss := -math.Log(math.Max(probs[label], 1e-12))

	// Backward: softmax + cross-entropy gives delta = p - onehot.
	delta := append([]float64(nil), probs...)
	delta[label] -= 1
	for l := L - 1; l >= 0; l-- {
		if l < L-1 {
			for j := range delta {
				delta[j] *= actDerivative(acts[l].Kind(), pre[l][j], post[l][j])
			}
		}
		d := denses[l]
		// Gradient w.r.t. the previous activation, before touching W.
		var prevDelta []float64
		if l > 0 {
			prevDelta = make([]float64, d.in)
			for i := 0; i < d.in; i++ {
				var s float64
				for o := 0; o < d.out; o++ {
					s += d.W[o][i] * delta[o]
				}
				prevDelta[i] = s
			}
		}
		// SGD update.
		for o := 0; o < d.out; o++ {
			g := delta[o]
			row := d.W[o]
			for i, x := range ins[l] {
				row[i] -= lr * g * x
			}
			d.B[o] -= lr * g
		}
		delta = prevDelta
	}
	return loss, nil
}

// Train runs epochs of SGD over the dataset in a deterministic shuffled
// order, returning the mean loss of the final epoch.
func Train(net *Network, inputs [][]float64, labels []int, epochs int, lr float64, rng *rand.Rand) (float64, error) {
	if len(inputs) == 0 || len(inputs) != len(labels) {
		return 0, fmt.Errorf("nn: dataset size mismatch (%d inputs, %d labels)", len(inputs), len(labels))
	}
	if epochs <= 0 {
		return 0, fmt.Errorf("nn: epochs must be positive, got %d", epochs)
	}
	if rng == nil {
		return 0, fmt.Errorf("nn: nil rng")
	}
	order := make([]int, len(inputs))
	for i := range order {
		order[i] = i
	}
	var meanLoss float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		for _, idx := range order {
			loss, err := TrainStep(net, inputs[idx], labels[idx], lr)
			if err != nil {
				return 0, fmt.Errorf("nn: example %d: %w", idx, err)
			}
			sum += loss
		}
		meanLoss = sum / float64(len(order))
	}
	return meanLoss, nil
}

// Accuracy returns the fraction of examples the network classifies
// correctly.
func Accuracy(net *Network, inputs [][]float64, labels []int) (float64, error) {
	if len(inputs) == 0 || len(inputs) != len(labels) {
		return 0, fmt.Errorf("nn: dataset size mismatch")
	}
	correct := 0
	for i, in := range inputs {
		cls, err := net.Classify(in)
		if err != nil {
			return 0, err
		}
		if cls == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(inputs)), nil
}

// MakeBlobs generates a synthetic classification dataset: `classes`
// Gaussian blobs in `dim` dimensions with the given spread around
// unit-sphere centers.
func MakeBlobs(n, classes, dim int, spread float64, rng *rand.Rand) ([][]float64, []int, error) {
	if n <= 0 || classes < 2 || dim <= 0 {
		return nil, nil, fmt.Errorf("nn: invalid blob parameters (n=%d classes=%d dim=%d)", n, classes, dim)
	}
	if spread <= 0 {
		return nil, nil, fmt.Errorf("nn: spread must be positive, got %g", spread)
	}
	if rng == nil {
		return nil, nil, fmt.Errorf("nn: nil rng")
	}
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		var norm float64
		for d := range centers[c] {
			centers[c][d] = rng.NormFloat64()
			norm += centers[c][d] * centers[c][d]
		}
		norm = math.Sqrt(norm)
		for d := range centers[c] {
			centers[c][d] /= norm
		}
	}
	inputs := make([][]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		inputs[i] = make([]float64, dim)
		for d := range inputs[i] {
			inputs[i][d] = centers[c][d] + rng.NormFloat64()*spread
		}
	}
	return inputs, labels, nil
}
