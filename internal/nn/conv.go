package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Conv2D is a 2D convolution over an H x W x C input with F kernels of
// Kh x Kw x C, stride S, and zero padding P. Input and output are flattened
// row-major (y, x, channel). Conv layers are what ISAAC accelerates; the
// DPE compiler lowers them to matrix-vector products via im2col.
type Conv2D struct {
	H, W, C   int
	F, Kh, Kw int
	Stride    int
	Pad       int
	// K[f][kh][kw][c]
	K [][][][]float64
	B []float64
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns a conv layer with He-uniform kernels drawn from rng.
func NewConv2D(h, w, c, f, kh, kw, stride, pad int, rng *rand.Rand) (*Conv2D, error) {
	switch {
	case h <= 0 || w <= 0 || c <= 0:
		return nil, fmt.Errorf("nn: conv input dims must be positive, got %dx%dx%d", h, w, c)
	case f <= 0 || kh <= 0 || kw <= 0:
		return nil, fmt.Errorf("nn: conv kernel dims must be positive, got %d of %dx%d", f, kh, kw)
	case stride <= 0:
		return nil, fmt.Errorf("nn: conv stride must be positive, got %d", stride)
	case pad < 0:
		return nil, fmt.Errorf("nn: conv pad must be non-negative, got %d", pad)
	case rng == nil:
		return nil, fmt.Errorf("nn: conv needs an rng for initialization")
	}
	l := &Conv2D{H: h, W: w, C: c, F: f, Kh: kh, Kw: kw, Stride: stride, Pad: pad}
	if l.OutH() <= 0 || l.OutW() <= 0 {
		return nil, fmt.Errorf("nn: conv output would be empty (%dx%d)", l.OutH(), l.OutW())
	}
	limit := math.Sqrt(6.0 / float64(kh*kw*c))
	l.K = make([][][][]float64, f)
	for fi := range l.K {
		l.K[fi] = make([][][]float64, kh)
		for y := range l.K[fi] {
			l.K[fi][y] = make([][]float64, kw)
			for x := range l.K[fi][y] {
				l.K[fi][y][x] = make([]float64, c)
				for ci := range l.K[fi][y][x] {
					l.K[fi][y][x][ci] = (rng.Float64()*2 - 1) * limit
				}
			}
		}
	}
	l.B = make([]float64, f)
	return l, nil
}

// OutH returns the output height.
func (l *Conv2D) OutH() int { return (l.H+2*l.Pad-l.Kh)/l.Stride + 1 }

// OutW returns the output width.
func (l *Conv2D) OutW() int { return (l.W+2*l.Pad-l.Kw)/l.Stride + 1 }

// Name implements Layer.
func (l *Conv2D) Name() string {
	return fmt.Sprintf("conv-%dx%dx%d-%df%dx%d", l.H, l.W, l.C, l.F, l.Kh, l.Kw)
}

// InSize implements Layer.
func (l *Conv2D) InSize() int { return l.H * l.W * l.C }

// OutSize implements Layer.
func (l *Conv2D) OutSize() int { return l.OutH() * l.OutW() * l.F }

// Flops implements Layer.
func (l *Conv2D) Flops() float64 {
	return 2 * float64(l.OutH()*l.OutW()) * float64(l.F) * float64(l.Kh*l.Kw*l.C)
}

// Params implements Layer.
func (l *Conv2D) Params() int { return l.F*l.Kh*l.Kw*l.C + l.F }

func (l *Conv2D) at(in []float64, y, x, c int) float64 {
	y -= l.Pad
	x -= l.Pad
	if y < 0 || y >= l.H || x < 0 || x >= l.W {
		return 0
	}
	return in[(y*l.W+x)*l.C+c]
}

// Forward implements Layer.
func (l *Conv2D) Forward(in []float64) ([]float64, error) {
	if len(in) != l.InSize() {
		return nil, fmt.Errorf("nn: conv input %d != %d", len(in), l.InSize())
	}
	oh, ow := l.OutH(), l.OutW()
	out := make([]float64, oh*ow*l.F)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for f := 0; f < l.F; f++ {
				sum := l.B[f]
				for ky := 0; ky < l.Kh; ky++ {
					for kx := 0; kx < l.Kw; kx++ {
						for c := 0; c < l.C; c++ {
							sum += l.K[f][ky][kx][c] * l.at(in, oy*l.Stride+ky, ox*l.Stride+kx, c)
						}
					}
				}
				out[(oy*ow+ox)*l.F+f] = sum
			}
		}
	}
	return out, nil
}

// Im2ColMatrix lowers the kernels to a (Kh*Kw*C) x F matrix so a crossbar
// can compute all F filters for one patch in a single MVM.
func (l *Conv2D) Im2ColMatrix() [][]float64 {
	rows := l.Kh * l.Kw * l.C
	m := make([][]float64, rows)
	for r := range m {
		m[r] = make([]float64, l.F)
	}
	for f := 0; f < l.F; f++ {
		for ky := 0; ky < l.Kh; ky++ {
			for kx := 0; kx < l.Kw; kx++ {
				for c := 0; c < l.C; c++ {
					r := (ky*l.Kw+kx)*l.C + c
					m[r][f] = l.K[f][ky][kx][c]
				}
			}
		}
	}
	return m
}

// Patch extracts the im2col input patch for output position (oy, ox).
func (l *Conv2D) Patch(in []float64, oy, ox int) ([]float64, error) {
	if len(in) != l.InSize() {
		return nil, fmt.Errorf("nn: conv input %d != %d", len(in), l.InSize())
	}
	if oy < 0 || oy >= l.OutH() || ox < 0 || ox >= l.OutW() {
		return nil, fmt.Errorf("nn: patch (%d,%d) outside %dx%d", oy, ox, l.OutH(), l.OutW())
	}
	patch := make([]float64, l.Kh*l.Kw*l.C)
	for ky := 0; ky < l.Kh; ky++ {
		for kx := 0; kx < l.Kw; kx++ {
			for c := 0; c < l.C; c++ {
				patch[(ky*l.Kw+kx)*l.C+c] = l.at(in, oy*l.Stride+ky, ox*l.Stride+kx, c)
			}
		}
	}
	return patch, nil
}

// MaxPool2D downsamples an H x W x C input with non-overlapping PxP windows.
type MaxPool2D struct {
	H, W, C int
	P       int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a pooling layer. H and W must divide evenly by p.
func NewMaxPool2D(h, w, c, p int) (*MaxPool2D, error) {
	if h <= 0 || w <= 0 || c <= 0 || p <= 0 {
		return nil, fmt.Errorf("nn: pool dims must be positive")
	}
	if h%p != 0 || w%p != 0 {
		return nil, fmt.Errorf("nn: pool %d must divide %dx%d", p, h, w)
	}
	return &MaxPool2D{H: h, W: w, C: c, P: p}, nil
}

// Name implements Layer.
func (l *MaxPool2D) Name() string { return fmt.Sprintf("maxpool-%d", l.P) }

// InSize implements Layer.
func (l *MaxPool2D) InSize() int { return l.H * l.W * l.C }

// OutSize implements Layer.
func (l *MaxPool2D) OutSize() int { return (l.H / l.P) * (l.W / l.P) * l.C }

// Flops implements Layer.
func (l *MaxPool2D) Flops() float64 { return float64(l.InSize()) }

// Params implements Layer.
func (l *MaxPool2D) Params() int { return 0 }

// Forward implements Layer.
func (l *MaxPool2D) Forward(in []float64) ([]float64, error) {
	if len(in) != l.InSize() {
		return nil, fmt.Errorf("nn: pool input %d != %d", len(in), l.InSize())
	}
	oh, ow := l.H/l.P, l.W/l.P
	out := make([]float64, oh*ow*l.C)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < l.C; c++ {
				best := math.Inf(-1)
				for py := 0; py < l.P; py++ {
					for px := 0; px < l.P; px++ {
						v := in[((oy*l.P+py)*l.W+(ox*l.P+px))*l.C+c]
						if v > best {
							best = v
						}
					}
				}
				out[(oy*ow+ox)*l.C+c] = best
			}
		}
	}
	return out, nil
}
