package nn

import (
	"fmt"
	"math/rand"
)

// Network is a feed-forward stack of layers with shape checking.
type Network struct {
	Name   string
	Layers []Layer
}

// NewNetwork validates that adjacent layer shapes line up.
func NewNetwork(name string, layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: network %q has no layers", name)
	}
	for i := 1; i < len(layers); i++ {
		if layers[i-1].OutSize() != layers[i].InSize() {
			return nil, fmt.Errorf("nn: network %q: layer %d out %d != layer %d in %d",
				name, i-1, layers[i-1].OutSize(), i, layers[i].InSize())
		}
	}
	return &Network{Name: name, Layers: layers}, nil
}

// InSize returns the network input length.
func (n *Network) InSize() int { return n.Layers[0].InSize() }

// OutSize returns the network output length.
func (n *Network) OutSize() int { return n.Layers[len(n.Layers)-1].OutSize() }

// Flops returns the total arithmetic per inference.
func (n *Network) Flops() float64 {
	var f float64
	for _, l := range n.Layers {
		f += l.Flops()
	}
	return f
}

// Params returns the total parameter count.
func (n *Network) Params() int {
	var p int
	for _, l := range n.Layers {
		p += l.Params()
	}
	return p
}

// WeightBytes returns parameter storage at elemBytes per parameter — the
// traffic a Von Neumann machine must stream when the model is not resident.
func (n *Network) WeightBytes(elemBytes int) float64 {
	return float64(n.Params()) * float64(elemBytes)
}

// Forward runs one inference through every layer.
func (n *Network) Forward(in []float64) ([]float64, error) {
	v := in
	for i, l := range n.Layers {
		out, err := l.Forward(v)
		if err != nil {
			return nil, fmt.Errorf("nn: network %q layer %d (%s): %w", n.Name, i, l.Name(), err)
		}
		v = out
	}
	return v, nil
}

// Classify returns the argmax of Forward.
func (n *Network) Classify(in []float64) (int, error) {
	out, err := n.Forward(in)
	if err != nil {
		return 0, err
	}
	best := 0
	for i, v := range out {
		if v > out[best] {
			best = i
		}
	}
	return best, nil
}

// NewMLP builds a dense network with ReLU between hidden layers and softmax
// at the output: sizes[0] inputs through sizes[len-1] outputs.
func NewMLP(name string, sizes []int, rng *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least 2 sizes, got %d", len(sizes))
	}
	var layers []Layer
	for i := 1; i < len(sizes); i++ {
		d, err := NewDense(sizes[i-1], sizes[i], rng)
		if err != nil {
			return nil, err
		}
		layers = append(layers, d)
		if i < len(sizes)-1 {
			a, err := NewActivation(ActReLU, sizes[i])
			if err != nil {
				return nil, err
			}
			layers = append(layers, a)
		} else {
			a, err := NewActivation(ActSoftmax, sizes[i])
			if err != nil {
				return nil, err
			}
			layers = append(layers, a)
		}
	}
	return NewNetwork(name, layers...)
}

// NewLeNetStyle builds a small CNN for sq x sq x 1 inputs: conv(8 filters,
// 3x3) -> relu -> maxpool(2) -> dense(hidden) -> relu -> dense(classes) ->
// softmax. The edge-inference example and the DPE CNN benchmarks use it.
func NewLeNetStyle(name string, sq, hidden, classes int, rng *rand.Rand) (*Network, error) {
	conv, err := NewConv2D(sq, sq, 1, 8, 3, 3, 1, 1, rng)
	if err != nil {
		return nil, err
	}
	reluC, err := NewActivation(ActReLU, conv.OutSize())
	if err != nil {
		return nil, err
	}
	pool, err := NewMaxPool2D(conv.OutH(), conv.OutW(), conv.F, 2)
	if err != nil {
		return nil, err
	}
	d1, err := NewDense(pool.OutSize(), hidden, rng)
	if err != nil {
		return nil, err
	}
	relu1, err := NewActivation(ActReLU, hidden)
	if err != nil {
		return nil, err
	}
	d2, err := NewDense(hidden, classes, rng)
	if err != nil {
		return nil, err
	}
	sm, err := NewActivation(ActSoftmax, classes)
	if err != nil {
		return nil, err
	}
	return NewNetwork(name, conv, reluC, pool, d1, relu1, d2, sm)
}
