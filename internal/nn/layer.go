// Package nn provides the neural-network substrate for the paper's headline
// application class (Section II.C: "Neural networks ... are a natural fit
// for the dataflow nature of CIM"; Section VI evaluates the Dot Product
// Engine on "neural network class of applications").
//
// Layers are pure math with explicit shapes and published FLOP/parameter
// counts, so the same network can execute on the analog DPE fabric, on the
// Von Neumann baselines, or directly in software as the accuracy reference.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one network stage.
type Layer interface {
	// Name identifies the layer kind for reports.
	Name() string
	// InSize and OutSize are the flattened input/output vector lengths.
	InSize() int
	OutSize() int
	// Forward computes the layer output.
	Forward(in []float64) ([]float64, error)
	// Flops is the arithmetic cost of one Forward.
	Flops() float64
	// Params is the trainable parameter count.
	Params() int
}

// Activation kinds.
type Activation int

const (
	// ActReLU is max(0, x).
	ActReLU Activation = iota + 1
	// ActSigmoid is the logistic function.
	ActSigmoid
	// ActTanh is the hyperbolic tangent.
	ActTanh
	// ActSoftmax normalizes to a probability distribution.
	ActSoftmax
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case ActReLU:
		return "relu"
	case ActSigmoid:
		return "sigmoid"
	case ActTanh:
		return "tanh"
	case ActSoftmax:
		return "softmax"
	default:
		return fmt.Sprintf("act(%d)", int(a))
	}
}

// ActivationLayer applies a nonlinearity elementwise (softmax across the
// vector).
type ActivationLayer struct {
	kind Activation
	size int
}

var _ Layer = (*ActivationLayer)(nil)

// NewActivation returns an activation layer of the given size.
func NewActivation(kind Activation, size int) (*ActivationLayer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("nn: activation size must be positive, got %d", size)
	}
	switch kind {
	case ActReLU, ActSigmoid, ActTanh, ActSoftmax:
	default:
		return nil, fmt.Errorf("nn: unknown activation %d", kind)
	}
	return &ActivationLayer{kind: kind, size: size}, nil
}

// Kind returns the activation kind.
func (l *ActivationLayer) Kind() Activation { return l.kind }

// Name implements Layer.
func (l *ActivationLayer) Name() string { return l.kind.String() }

// InSize implements Layer.
func (l *ActivationLayer) InSize() int { return l.size }

// OutSize implements Layer.
func (l *ActivationLayer) OutSize() int { return l.size }

// Flops implements Layer.
func (l *ActivationLayer) Flops() float64 { return float64(l.size) }

// Params implements Layer.
func (l *ActivationLayer) Params() int { return 0 }

// Forward implements Layer.
func (l *ActivationLayer) Forward(in []float64) ([]float64, error) {
	if len(in) != l.size {
		return nil, fmt.Errorf("nn: %s input %d != %d", l.Name(), len(in), l.size)
	}
	out := make([]float64, len(in))
	switch l.kind {
	case ActReLU:
		for i, v := range in {
			if v > 0 {
				out[i] = v
			}
		}
	case ActSigmoid:
		for i, v := range in {
			out[i] = 1 / (1 + math.Exp(-v))
		}
	case ActTanh:
		for i, v := range in {
			out[i] = math.Tanh(v)
		}
	case ActSoftmax:
		maxV := math.Inf(-1)
		for _, v := range in {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range in {
			out[i] = math.Exp(v - maxV)
			sum += out[i]
		}
		for i := range out {
			out[i] /= sum
		}
	}
	return out, nil
}

// Dense is a fully connected layer: out = W·in + b.
type Dense struct {
	in, out int
	// W[o][i] is row-major by output neuron; this is the matrix the DPE
	// compiler transposes onto crossbars.
	W [][]float64
	B []float64
}

var _ Layer = (*Dense)(nil)

// NewDense returns a dense layer with Xavier-uniform weights drawn from rng.
func NewDense(in, out int, rng *rand.Rand) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: dense dims must be positive, got %dx%d", in, out)
	}
	if rng == nil {
		return nil, fmt.Errorf("nn: dense needs an rng for initialization")
	}
	d := &Dense{in: in, out: out, B: make([]float64, out)}
	limit := math.Sqrt(6.0 / float64(in+out))
	d.W = make([][]float64, out)
	for o := range d.W {
		d.W[o] = make([]float64, in)
		for i := range d.W[o] {
			d.W[o][i] = (rng.Float64()*2 - 1) * limit
		}
	}
	return d, nil
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense-%dx%d", d.in, d.out) }

// InSize implements Layer.
func (d *Dense) InSize() int { return d.in }

// OutSize implements Layer.
func (d *Dense) OutSize() int { return d.out }

// Flops implements Layer.
func (d *Dense) Flops() float64 { return 2 * float64(d.in) * float64(d.out) }

// Params implements Layer.
func (d *Dense) Params() int { return d.in*d.out + d.out }

// Forward implements Layer.
func (d *Dense) Forward(in []float64) ([]float64, error) {
	if len(in) != d.in {
		return nil, fmt.Errorf("nn: dense input %d != %d", len(in), d.in)
	}
	out := make([]float64, d.out)
	for o := 0; o < d.out; o++ {
		sum := d.B[o]
		row := d.W[o]
		for i, v := range in {
			sum += row[i] * v
		}
		out[o] = sum
	}
	return out, nil
}

// WeightMatrix returns the in x out matrix (transposed from W) suitable for
// crossbar programming, where inputs drive rows and outputs read columns.
func (d *Dense) WeightMatrix() [][]float64 {
	m := make([][]float64, d.in)
	for i := range m {
		m[i] = make([]float64, d.out)
		for o := 0; o < d.out; o++ {
			m[i][o] = d.W[o][i]
		}
	}
	return m
}
