package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestMakeBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs, labels, err := MakeBlobs(100, 4, 8, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != 100 || len(labels) != 100 {
		t.Fatalf("sizes = %d, %d", len(inputs), len(labels))
	}
	counts := make([]int, 4)
	for i, in := range inputs {
		if len(in) != 8 {
			t.Fatalf("input %d dim = %d", i, len(in))
		}
		if labels[i] < 0 || labels[i] >= 4 {
			t.Fatalf("label %d = %d", i, labels[i])
		}
		counts[labels[i]]++
	}
	for c, n := range counts {
		if n != 25 {
			t.Errorf("class %d has %d examples, want 25", c, n)
		}
	}
}

func TestMakeBlobsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n, classes, dim int
		spread          float64
		useRng          bool
	}{
		{0, 2, 4, 0.1, true},
		{10, 1, 4, 0.1, true},
		{10, 2, 0, 0.1, true},
		{10, 2, 4, 0, true},
		{10, 2, 4, 0.1, false},
	}
	for i, c := range cases {
		r := rng
		if !c.useRng {
			r = nil
		}
		if _, _, err := MakeBlobs(c.n, c.classes, c.dim, c.spread, r); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestTrainStepReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, err := NewMLP("t", []int{4, 8, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.5, -0.5, 0.25, 1}
	first, err := TrainStep(net, in, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 30; i++ {
		last, err = TrainStep(net, in, 1, 0.1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Errorf("loss did not fall: %g -> %g", first, last)
	}
}

func TestTrainStepValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, err := NewMLP("t", []int{4, 8, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 4)
	if _, err := TrainStep(net, []float64{1}, 0, 0.1); err == nil {
		t.Error("bad input length accepted")
	}
	if _, err := TrainStep(net, in, 5, 0.1); err == nil {
		t.Error("bad label accepted")
	}
	if _, err := TrainStep(net, in, 0, 0); err == nil {
		t.Error("zero lr accepted")
	}

	// Non-MLP shapes are rejected.
	conv, err := NewLeNetStyle("cnn", 8, 16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainStep(conv, make([]float64, 64), 0, 0.1); err == nil {
		t.Error("CNN accepted by MLP trainer")
	}
}

func TestTrainLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const dim, classes = 8, 3
	// One distribution, split into train and held-out halves (MakeBlobs
	// draws fresh centers per call, so the split must share one call).
	allIn, allLab, err := MakeBlobs(360, classes, dim, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	inputs, labels := allIn[:240], allLab[:240]
	testIn, testLab := allIn[240:], allLab[240:]

	net, err := NewMLP("blobs", []int{dim, 16, classes}, rng)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Accuracy(net, inputs, labels)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := Train(net, inputs, labels, 20, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Accuracy(net, inputs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if after < 0.95 {
		t.Errorf("training accuracy = %.2f (was %.2f, loss %.3f), want >= 0.95", after, before, loss)
	}
	if after <= before {
		t.Errorf("training did not improve accuracy: %.2f -> %.2f", before, after)
	}

	gen, err := Accuracy(net, testIn, testLab)
	if err != nil {
		t.Fatal(err)
	}
	if gen < 0.9 {
		t.Errorf("held-out accuracy = %.2f, want >= 0.9", gen)
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, err := NewMLP("t", []int{2, 4, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ins := [][]float64{{1, 2}}
	if _, err := Train(net, nil, nil, 1, 0.1, rng); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Train(net, ins, []int{0, 1}, 1, 0.1, rng); err == nil {
		t.Error("mismatched labels accepted")
	}
	if _, err := Train(net, ins, []int{0}, 0, 0.1, rng); err == nil {
		t.Error("zero epochs accepted")
	}
	if _, err := Train(net, ins, []int{0}, 1, 0.1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestAccuracyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, err := NewMLP("t", []int{2, 4, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Accuracy(net, nil, nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Accuracy(net, [][]float64{{1}}, []int{0}); err == nil {
		t.Error("bad input accepted")
	}
}

func TestGradientNumerically(t *testing.T) {
	// The analytic gradient of one weight must match a central finite
	// difference of the loss.
	rng := rand.New(rand.NewSource(9))
	build := func() *Network {
		net, err := NewMLP("g", []int{3, 5, 2}, rand.New(rand.NewSource(123)))
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	in := []float64{0.3, -0.7, 0.9}
	const label = 1
	const eps = 1e-5
	_ = rng

	loss := func(net *Network) float64 {
		out, err := net.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		return -math.Log(math.Max(out[label], 1e-12))
	}

	// Numeric gradient for W[0][2][1] (second dense layer = Layers[2]).
	netPlus := build()
	d1 := netPlus.Layers[2].(*Dense)
	d1.W[0][1] += eps
	lPlus := loss(netPlus)

	netMinus := build()
	d2 := netMinus.Layers[2].(*Dense)
	d2.W[0][1] -= eps
	lMinus := loss(netMinus)
	numGrad := (lPlus - lMinus) / (2 * eps)

	// Analytic gradient: run one TrainStep with lr and read the delta.
	netStep := build()
	before := netStep.Layers[2].(*Dense).W[0][1]
	const lr = 1e-3
	if _, err := TrainStep(netStep, in, label, lr); err != nil {
		t.Fatal(err)
	}
	after := netStep.Layers[2].(*Dense).W[0][1]
	analyticGrad := (before - after) / lr

	if math.Abs(numGrad-analyticGrad) > 1e-4*(1+math.Abs(numGrad)) {
		t.Errorf("gradient mismatch: numeric %g vs analytic %g", numGrad, analyticGrad)
	}
}
