package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestActivationValidation(t *testing.T) {
	if _, err := NewActivation(ActReLU, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewActivation(Activation(99), 4); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestActivationForward(t *testing.T) {
	in := []float64{-1, 0, 2}

	relu, err := NewActivation(ActReLU, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := relu.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("relu[%d] = %g, want %g", i, got[i], want[i])
		}
	}

	sig, err := NewActivation(ActSigmoid, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err = sig.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[1]-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %g", got[1])
	}

	tanh, err := NewActivation(ActTanh, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err = tanh.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[2]-math.Tanh(2)) > 1e-12 {
		t.Errorf("tanh(2) = %g", got[2])
	}
}

func TestSoftmaxProperties(t *testing.T) {
	sm, err := NewActivation(ActSoftmax, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d float64) bool {
		in := []float64{
			math.Mod(a, 20), math.Mod(b, 20), math.Mod(c, 20), math.Mod(d, 20),
		}
		out, err := sm.Forward(in)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range out {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxOverflowSafe(t *testing.T) {
	sm, err := NewActivation(ActSoftmax, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sm.Forward([]float64{1000, 999})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Errorf("softmax overflowed: %v", out)
	}
	if out[0] <= out[1] {
		t.Error("softmax ordering lost")
	}
}

func TestActivationShapeError(t *testing.T) {
	relu, err := NewActivation(ActReLU, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := relu.Forward([]float64{1}); err == nil {
		t.Error("wrong input length accepted")
	}
}

func TestDenseForward(t *testing.T) {
	d := &Dense{in: 2, out: 2,
		W: [][]float64{{1, 2}, {3, 4}},
		B: []float64{10, 20},
	}
	got, err := d.Forward([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 13 || got[1] != 27 {
		t.Errorf("dense = %v, want [13 27]", got)
	}
	if _, err := d.Forward([]float64{1}); err == nil {
		t.Error("wrong input length accepted")
	}
}

func TestDenseInitDeterministic(t *testing.T) {
	d1, err := NewDense(4, 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDense(4, 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for o := range d1.W {
		for i := range d1.W[o] {
			if d1.W[o][i] != d2.W[o][i] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
	if _, err := NewDense(0, 1, rng()); err == nil {
		t.Error("zero input dim accepted")
	}
	if _, err := NewDense(1, 1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestDenseWeightMatrixTranspose(t *testing.T) {
	d := &Dense{in: 2, out: 3,
		W: [][]float64{{1, 2}, {3, 4}, {5, 6}},
		B: make([]float64, 3),
	}
	m := d.WeightMatrix()
	if len(m) != 2 || len(m[0]) != 3 {
		t.Fatalf("WeightMatrix shape = %dx%d, want 2x3", len(m), len(m[0]))
	}
	// m[i][o] == W[o][i]
	if m[0][0] != 1 || m[1][0] != 2 || m[0][2] != 5 {
		t.Errorf("transpose wrong: %v", m)
	}
}

func TestDenseMetadata(t *testing.T) {
	d, err := NewDense(10, 5, rng())
	if err != nil {
		t.Fatal(err)
	}
	if d.Flops() != 100 {
		t.Errorf("Flops = %g, want 100", d.Flops())
	}
	if d.Params() != 55 {
		t.Errorf("Params = %d, want 55", d.Params())
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A centered 1-hot 3x3 kernel with pad 1 reproduces the input.
	l, err := NewConv2D(4, 4, 1, 1, 3, 3, 1, 1, rng())
	if err != nil {
		t.Fatal(err)
	}
	for ky := 0; ky < 3; ky++ {
		for kx := 0; kx < 3; kx++ {
			l.K[0][ky][kx][0] = 0
		}
	}
	l.K[0][1][1][0] = 1
	in := make([]float64, 16)
	for i := range in {
		in[i] = float64(i)
	}
	out, err := l.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 16 {
		t.Fatalf("out size = %d, want 16", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("out[%d] = %g, want %g", i, out[i], in[i])
		}
	}
}

func TestConv2DShapes(t *testing.T) {
	l, err := NewConv2D(8, 8, 3, 16, 3, 3, 1, 0, rng())
	if err != nil {
		t.Fatal(err)
	}
	if l.OutH() != 6 || l.OutW() != 6 {
		t.Errorf("out dims = %dx%d, want 6x6", l.OutH(), l.OutW())
	}
	if l.OutSize() != 6*6*16 {
		t.Errorf("OutSize = %d", l.OutSize())
	}
	if l.Params() != 16*3*3*3+16 {
		t.Errorf("Params = %d", l.Params())
	}
	if _, err := NewConv2D(2, 2, 1, 1, 5, 5, 1, 0, rng()); err == nil {
		t.Error("kernel larger than input accepted")
	}
	if _, err := NewConv2D(4, 4, 1, 1, 3, 3, 0, 0, rng()); err == nil {
		t.Error("zero stride accepted")
	}
}

func TestConv2DIm2ColMatchesForward(t *testing.T) {
	l, err := NewConv2D(5, 5, 2, 4, 3, 3, 1, 1, rng())
	if err != nil {
		t.Fatal(err)
	}
	r := rng()
	in := make([]float64, l.InSize())
	for i := range in {
		in[i] = r.NormFloat64()
	}
	want, err := l.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	m := l.Im2ColMatrix()
	for oy := 0; oy < l.OutH(); oy++ {
		for ox := 0; ox < l.OutW(); ox++ {
			patch, err := l.Patch(in, oy, ox)
			if err != nil {
				t.Fatal(err)
			}
			for f := 0; f < l.F; f++ {
				sum := l.B[f]
				for r := range patch {
					sum += patch[r] * m[r][f]
				}
				got := want[(oy*l.OutW()+ox)*l.F+f]
				if math.Abs(sum-got) > 1e-9 {
					t.Fatalf("im2col (%d,%d,f%d) = %g, direct = %g", oy, ox, f, sum, got)
				}
			}
		}
	}
}

func TestConv2DPatchBounds(t *testing.T) {
	l, err := NewConv2D(4, 4, 1, 1, 3, 3, 1, 0, rng())
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, l.InSize())
	if _, err := l.Patch(in, -1, 0); err == nil {
		t.Error("negative patch row accepted")
	}
	if _, err := l.Patch(in, 0, 9); err == nil {
		t.Error("out-of-range patch col accepted")
	}
	if _, err := l.Patch([]float64{1}, 0, 0); err == nil {
		t.Error("wrong input size accepted")
	}
}

func TestMaxPool2D(t *testing.T) {
	l, err := NewMaxPool2D(4, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	out, err := l.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 8, 14, 16}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("pool[%d] = %g, want %g", i, out[i], want[i])
		}
	}
	if _, err := NewMaxPool2D(5, 4, 1, 2); err == nil {
		t.Error("non-dividing pool accepted")
	}
}

func TestNetworkShapeValidation(t *testing.T) {
	d1, err := NewDense(4, 8, rng())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDense(9, 2, rng()) // mismatched
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNetwork("bad", d1, d2); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := NewNetwork("empty"); err == nil {
		t.Error("empty network accepted")
	}
}

func TestMLPForwardAndMetadata(t *testing.T) {
	net, err := NewMLP("mlp", []int{8, 16, 4}, rng())
	if err != nil {
		t.Fatal(err)
	}
	if net.InSize() != 8 || net.OutSize() != 4 {
		t.Errorf("shapes = %d->%d", net.InSize(), net.OutSize())
	}
	wantParams := (8*16 + 16) + (16*4 + 4)
	if net.Params() != wantParams {
		t.Errorf("Params = %d, want %d", net.Params(), wantParams)
	}
	if net.WeightBytes(4) != float64(wantParams*4) {
		t.Errorf("WeightBytes = %g", net.WeightBytes(4))
	}

	in := make([]float64, 8)
	for i := range in {
		in[i] = float64(i) / 8
	}
	out, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax output sums to %g", sum)
	}
	cls, err := net.Classify(in)
	if err != nil {
		t.Fatal(err)
	}
	if cls < 0 || cls >= 4 {
		t.Errorf("class = %d", cls)
	}
}

func TestLeNetStyleForward(t *testing.T) {
	net, err := NewLeNetStyle("lenet", 8, 32, 10, rng())
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 64)
	for i := range in {
		in[i] = math.Sin(float64(i))
	}
	out, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Errorf("out size = %d, want 10", len(out))
	}
	if net.Flops() <= 0 || net.Params() <= 0 {
		t.Error("metadata not positive")
	}
}

func TestMLPValidation(t *testing.T) {
	if _, err := NewMLP("x", []int{4}, rng()); err == nil {
		t.Error("single-size MLP accepted")
	}
}
