package hybrid

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"cimrev/internal/dpe"
	"cimrev/internal/metrics"
	"cimrev/internal/nn"
	"cimrev/internal/obs"
	"cimrev/internal/parallel"
	"cimrev/internal/serve"
	"cimrev/internal/vonneumann"
)

// dispatchInputs builds a deterministic batch of random inputs.
func dispatchInputs(t *testing.T, n, size int, seed int64) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ins := make([][]float64, n)
	for i := range ins {
		in := make([]float64, size)
		for j := range in {
			in[j] = rng.Float64()*2 - 1
		}
		ins[i] = in
	}
	return ins
}

// dispatchFixture builds a reference engine, a dispatched engine+twin pair
// over the same network, and the dispatcher in the given mode.
func dispatchFixture(t *testing.T, mode Mode, net *nn.Network, reg *metrics.Registry) (*dpe.Engine, *Dispatcher) {
	t.Helper()
	cfg := dpe.DefaultConfig()
	ref, err := dpe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Load(net); err != nil {
		t.Fatal(err)
	}
	eng, err := dpe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(net); err != nil {
		t.Fatal(err)
	}
	twin, err := vonneumann.NewBackend(vonneumann.CPU(), vonneumann.DefaultHierarchy(), cfg.Crossbar, net)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithMode(mode)}
	if reg != nil {
		opts = append(opts, WithRegistry(reg))
	}
	disp, err := New(eng, twin, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ref, disp
}

// requireSame compares dispatched outputs against the CIM reference with
// == — routing must be invisible in the outputs, not just close.
func requireSame(t *testing.T, want, got [][]float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d outputs", label, len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s: item %d: %d vs %d elements", label, i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("%s: item %d elem %d: cim %v != dispatched %v", label, i, j, want[i][j], got[i][j])
			}
		}
	}
}

// TestDispatchRouteInvariance pins the tentpole's user-visible contract:
// auto dispatch returns outputs bit-identical to a CIM-only engine for
// deterministic traffic, at worker-pool widths 1, 4, and 16, across a
// flush sequence long and varied enough that both backends actually serve
// (the calibrator prefers one side per bucket but probes the other).
func TestDispatchRouteInvariance(t *testing.T) {
	net, err := nn.NewMLP("route-mlp", []int{64, 48, 10}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, 16} {
		parallel.SetWidth(w)
		t.Cleanup(func() { parallel.SetWidth(0) })
		ref, disp := dispatchFixture(t, ModeAuto, net, nil)
		for flush := 0; flush < 40; flush++ {
			n := 1 + flush%7
			ins := dispatchInputs(t, n, 64, int64(100*w+flush))
			want, _, err := ref.InferBatch(ins)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := disp.InferBatch(ins)
			if err != nil {
				t.Fatal(err)
			}
			requireSame(t, want, got, "auto dispatch")
		}
		cim, vn, pinned := disp.Counts()
		if cim == 0 || vn == 0 {
			t.Errorf("width %d: both backends should have served (cim %d, vn %d)", w, cim, vn)
		}
		if pinned != 0 {
			t.Errorf("width %d: unkeyed traffic pinned (%d)", w, pinned)
		}
	}
}

// TestDispatchKeyedPinned pins the auto-mode noise rule: keyed traffic
// goes to CIM with its keys intact (outputs match the reference keyed
// call) and is counted as pinned, never routed to the twin.
func TestDispatchKeyedPinned(t *testing.T) {
	net, err := nn.NewMLP("keyed-mlp", []int{40, 20, 10}, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	ref, disp := dispatchFixture(t, ModeAuto, net, reg)
	ins := dispatchInputs(t, 6, 40, 23)
	seqs := []uint64{5, 900, 1, 77, 31337, 0}
	want, _, err := ref.InferBatchKeyed(seqs, ins)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := disp.InferBatchKeyedCtx(obs.Ctx{}, seqs, ins)
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, want, got, "keyed")
	cim, vn, pinned := disp.Counts()
	if pinned != 6 || vn != 0 || cim != 0 {
		t.Errorf("keyed counters: cim %d, vn %d, pinned %d; want 0, 0, 6", cim, vn, pinned)
	}
	if got := reg.Snapshot().Counters["dispatch.pinned_noisy"]; got != 6 {
		t.Errorf("registry dispatch.pinned_noisy = %d, want 6", got)
	}
}

// TestDispatchForcedModes pins the forced policies: cim and vn modes route
// everything (keyed included) to their backend with identical outputs, vn
// mode without a twin is rejected at construction, and a twin-less auto
// dispatcher pins all traffic to CIM.
func TestDispatchForcedModes(t *testing.T) {
	net, err := nn.NewMLP("forced-mlp", []int{32, 16, 8}, rand.New(rand.NewSource(24)))
	if err != nil {
		t.Fatal(err)
	}
	ins := dispatchInputs(t, 5, 32, 25)
	seqs := []uint64{3, 1, 4, 1, 5}

	refC, dispC := dispatchFixture(t, ModeCIM, net, nil)
	want, _, err := refC.InferBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := dispC.InferBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, want, got, "forced cim")
	if cim, vn, pinned := dispC.Counts(); cim != 5 || vn != 0 || pinned != 0 {
		t.Errorf("cim mode counters: %d, %d, %d; want 5, 0, 0", cim, vn, pinned)
	}

	refV, dispV := dispatchFixture(t, ModeVN, net, nil)
	want, _, err = refV.InferBatchKeyed(seqs, ins)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = dispV.InferBatchKeyedCtx(obs.Ctx{}, seqs, ins)
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, want, got, "forced vn keyed")
	if cim, vn, pinned := dispV.Counts(); cim != 0 || vn != 5 || pinned != 0 {
		t.Errorf("vn mode counters: %d, %d, %d; want 0, 5, 0", cim, vn, pinned)
	}

	eng, err := dpe.New(dpe.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(net); err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, nil, WithMode(ModeVN)); err == nil {
		t.Error("ModeVN without a twin accepted")
	}
	if _, err := New(nil, nil); err == nil {
		t.Error("nil CIM backend accepted")
	}
	twinless, err := New(eng, nil, WithMode(ModeAuto))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := twinless.InferBatch(ins); err != nil {
		t.Fatal(err)
	}
	if cim, vn, pinned := twinless.Counts(); cim != 0 || vn != 0 || pinned != 5 {
		t.Errorf("twin-less auto counters: %d, %d, %d; want 0, 0, 5", cim, vn, pinned)
	}
	if _, _, ok := twinless.Estimates(4); ok {
		t.Error("twin-less dispatcher reported estimates")
	}
}

// TestDispatchThroughServer pins the serve integration: a Dispatcher slots
// in as the Server's backend, and every response equals the reference
// engine's single-item output regardless of how the server batched it or
// which backend served the flush.
func TestDispatchThroughServer(t *testing.T) {
	net, err := nn.NewMLP("serve-mlp", []int{48, 24, 10}, rand.New(rand.NewSource(26)))
	if err != nil {
		t.Fatal(err)
	}
	ref, disp := dispatchFixture(t, ModeAuto, net, nil)
	srv, err := serve.New(disp, serve.WithBatch(8, time.Millisecond), serve.WithQueueBound(64))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ins := dispatchInputs(t, 24, 48, 27)
	for _, in := range ins {
		got, _, err := srv.Submit(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ref.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		requireSame(t, [][]float64{want}, [][]float64{got}, "served")
	}
}

// TestDispatchReprogram pins the coordinated weight swap: after
// Dispatcher.Reprogram both the crossbar pair and the twin serve the new
// network (outputs still bit-identical to a reference engine programmed
// with it), and a CIM backend without reprogram support is refused.
func TestDispatchReprogram(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	netA, err := nn.NewMLP("swap-a", []int{40, 24, 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	netB, err := nn.NewMLP("swap-b", []int{40, 24, 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dpe.DefaultConfig()
	pair, _, err := serve.NewShadowPair(cfg, netA)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := vonneumann.NewBackend(vonneumann.CPU(), vonneumann.DefaultHierarchy(), cfg.Crossbar, netA)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := New(pair, twin, WithMode(ModeAuto))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := disp.Reprogram(netB); err != nil {
		t.Fatal(err)
	}

	ref, err := dpe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Load(netB); err != nil {
		t.Fatal(err)
	}
	ins := dispatchInputs(t, 8, 40, 29)
	want, _, err := ref.InferBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	for flush := 0; flush < 20; flush++ {
		got, _, err := disp.InferBatch(ins)
		if err != nil {
			t.Fatal(err)
		}
		requireSame(t, want, got, "post-reprogram")
	}
	if _, vn, _ := disp.Counts(); vn == 0 {
		t.Error("twin never served after reprogram")
	}

	eng, err := dpe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Load(netA); err != nil {
		t.Fatal(err)
	}
	bare, err := New(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bare.Reprogram(netB); err == nil {
		t.Error("Reprogram accepted on a backend without reprogram support")
	}
}

// TestCalibratorDeterminism pins the calibration loop: identical flush
// sequences produce identical routing decisions, the probe cadence routes
// against the preference exactly once per probeEvery flushes, and enough
// contrary observations flip a bucket's preference.
func TestCalibratorDeterminism(t *testing.T) {
	mk := func() *calibrator {
		return newCalibrator(4,
			func(n int) float64 { return 100 }, // CIM prior: cheap
			func(n int) float64 { return 200 }, // VN prior: dear
		)
	}
	a, b := mk(), mk()
	var seqA, seqB []bool
	for i := 0; i < 32; i++ {
		n := 1 + i%3
		dA, dB := a.choose(n), b.choose(n)
		seqA = append(seqA, dA)
		seqB = append(seqB, dB)
		a.observe(n, dA, int64(n)*150)
		b.observe(n, dB, int64(n)*150)
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, seqA[i], seqB[i])
		}
	}

	c := mk()
	var vnRouted int
	for i := 0; i < 16; i++ {
		if c.choose(2) {
			vnRouted++
		}
	}
	if vnRouted != 4 {
		t.Errorf("probe cadence: %d VN routes in 16 flushes at probeEvery=4, want 4", vnRouted)
	}

	// VN turns out far cheaper than its prior: the EWMA must flip the
	// bucket preference once probes have fed it enough evidence.
	flip := mk()
	flipped := false
	for i := 0; i < 64; i++ {
		vn := flip.choose(2)
		if vn {
			flip.observe(2, true, 2*10) // 10 ps/item, far under CIM's 100
		} else {
			flip.observe(2, false, 2*100)
		}
		if cim, vnEst := flip.estimates(2); vnEst < cim {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Error("calibrator never learned the cheaper backend")
	}

	if bucketOf(1) == bucketOf(2) || bucketOf(2) != bucketOf(3) || bucketOf(7) == bucketOf(8) {
		t.Error("log2 bucket boundaries wrong")
	}
}
