package hybrid

import (
	"fmt"
	"sync/atomic"

	"cimrev/internal/energy"
	"cimrev/internal/metrics"
	"cimrev/internal/nn"
	"cimrev/internal/obs"
	"cimrev/internal/vonneumann"
)

// Mode selects the dispatch policy.
type Mode int

const (
	// ModeCIM routes every flush to the crossbar backend — the pre-hybrid
	// behavior, and the default.
	ModeCIM Mode = iota
	// ModeVN routes every flush to the Von Neumann twin. It requires a
	// twin, which in turn requires a deterministic (noise-free) config.
	ModeVN
	// ModeAuto routes each flush by the cost model: keyed (noisy-intent)
	// traffic and all traffic on twin-less (noisy or faulty) deployments
	// pin to CIM; the rest follows the calibrated crossover.
	ModeAuto
)

// String names the mode as the -dispatch flag spells it.
func (m Mode) String() string {
	switch m {
	case ModeCIM:
		return "cim"
	case ModeVN:
		return "vn"
	case ModeAuto:
		return "auto"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a -dispatch flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "cim":
		return ModeCIM, nil
	case "vn":
		return ModeVN, nil
	case "auto":
		return ModeAuto, nil
	default:
		return 0, fmt.Errorf("hybrid: unknown dispatch mode %q (want cim, vn, or auto)", s)
	}
}

// CIMBackend is the crossbar side of the dispatcher: the batch-inference
// surface shared by dpe.Engine, serve.ShadowPair, and serve.Breaker.
type CIMBackend interface {
	InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error)
	InferBatchCtx(pc obs.Ctx, inputs [][]float64) ([][]float64, energy.Cost, error)
	InferBatchKeyedCtx(pc obs.Ctx, seqs []uint64, inputs [][]float64) ([][]float64, energy.Cost, error)
}

// Reprogrammer is the weight-update surface of serve.ShadowPair and
// serve.Breaker. A CIMBackend that also implements it gets dispatcher-
// coordinated reprograms: Dispatcher.Reprogram suspends Von Neumann
// routing, swaps the crossbar side, reloads the twin, and resumes.
type Reprogrammer interface {
	Reprogram(net *nn.Network) (visible, hidden energy.Cost, err error)
}

// Dispatcher routes inference flushes between a crossbar backend and its
// executing Von Neumann twin. Because the twin is bit-exact on
// deterministic configs (vonneumann.Backend's contract), routing is
// invisible in the outputs — only the simulated cost changes — so the
// dispatcher is free to chase the cheaper backend per flush.
//
// Routing rules, in order:
//
//   - Forced modes (cim, vn) always use their backend, except that vn
//     falls back to CIM while a reprogram is in flight (the twin is
//     mid-swap and must not serve stale weights).
//   - Keyed traffic in auto mode pins to CIM: request keys declare
//     noise intent, and fleet determinism depends on the engine's keyed
//     noise derivation even when the current config draws nothing.
//   - Twin-less dispatchers (noisy or faulty deployments have no digital
//     twin) pin everything to CIM in auto mode.
//   - Everything else follows the calibrator: a static crossover model
//     seeded from the shared CIM board constants and the twin's exact
//     roofline prior, refined per batch-size class by an EWMA over
//     observed flush costs.
//
// A Dispatcher is a serve.Backend (plus the ctx and keyed extensions), so
// it slots between a Breaker and a serve.Server unchanged.
type Dispatcher struct {
	cim  CIMBackend
	vn   *vonneumann.Backend
	rep  Reprogrammer
	mode Mode
	cal  *calibrator

	// suspended parks Von Neumann routing while a reprogram swaps both
	// backends; flushes fall back to CIM (the pair serves throughout).
	suspended atomic.Bool

	cntCIM    *metrics.Counter
	cntVN     *metrics.Counter
	cntPinned *metrics.Counter
}

// config collects dispatcher options.
type dispatcherConfig struct {
	mode       Mode
	reg        *metrics.Registry
	probeEvery int
}

// Option configures a Dispatcher.
type Option func(*dispatcherConfig)

// WithMode sets the dispatch policy (default ModeCIM).
func WithMode(m Mode) Option { return func(c *dispatcherConfig) { c.mode = m } }

// WithRegistry records dispatch.cim, dispatch.vn, and dispatch.pinned_noisy
// request counters into reg — pass the serving registry so routing shows
// up next to the serve.* series on /metrics.
func WithRegistry(reg *metrics.Registry) Option { return func(c *dispatcherConfig) { c.reg = reg } }

// WithProbeEvery sets how often auto mode routes against its preference
// to refresh the other backend's estimate (default every 16th flush per
// batch-size class).
func WithProbeEvery(n int) Option { return func(c *dispatcherConfig) { c.probeEvery = n } }

// New builds a dispatcher over a crossbar backend and an optional Von
// Neumann twin. A nil twin is legal except in ModeVN: it means the
// deployment has no digital twin (noisy or faulty config), and auto mode
// pins all its traffic to CIM. If cim also implements Reprogrammer,
// Dispatcher.Reprogram coordinates weight swaps across both backends.
func New(cim CIMBackend, vn *vonneumann.Backend, opts ...Option) (*Dispatcher, error) {
	if cim == nil {
		return nil, fmt.Errorf("hybrid: nil CIM backend")
	}
	cfg := dispatcherConfig{mode: ModeCIM, probeEvery: defaultProbeEvery}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.mode == ModeVN && vn == nil {
		return nil, fmt.Errorf("hybrid: mode vn requires a Von Neumann twin (deterministic config)")
	}
	if cfg.reg == nil {
		cfg.reg = metrics.NewRegistry()
	}
	d := &Dispatcher{
		cim:       cim,
		vn:        vn,
		mode:      cfg.mode,
		cntCIM:    cfg.reg.Counter("dispatch.cim"),
		cntVN:     cfg.reg.Counter("dispatch.vn"),
		cntPinned: cfg.reg.Counter("dispatch.pinned_noisy"),
	}
	d.rep, _ = cim.(Reprogrammer)
	if vn != nil {
		d.cal = newCalibrator(cfg.probeEvery, cimSeed(vn.Network()), func(n int) float64 {
			return float64(vn.PredictBatchCost(n).LatencyPS) / float64(n)
		})
	}
	return d, nil
}

// Mode returns the dispatch policy.
func (d *Dispatcher) Mode() Mode { return d.mode }

// Counts returns the routed-request totals: CIM-routed, VN-routed, and
// CIM-pinned (keyed or twin-less traffic in auto mode).
func (d *Dispatcher) Counts() (cim, vn, pinned int64) {
	return d.cntCIM.Value(), d.cntVN.Value(), d.cntPinned.Value()
}

// InferBatch routes one unkeyed flush.
func (d *Dispatcher) InferBatch(inputs [][]float64) ([][]float64, energy.Cost, error) {
	return d.InferBatchCtx(obs.Ctx{}, inputs)
}

// InferBatchCtx routes one unkeyed flush under a trace span context.
func (d *Dispatcher) InferBatchCtx(pc obs.Ctx, inputs [][]float64) ([][]float64, energy.Cost, error) {
	n := int64(len(inputs))
	useVN := false
	switch d.mode {
	case ModeVN:
		useVN = !d.suspended.Load()
	case ModeAuto:
		if d.vn == nil {
			d.cntPinned.Add(n)
			return d.cim.InferBatchCtx(pc, inputs)
		}
		useVN = !d.suspended.Load() && d.cal.choose(len(inputs))
	}
	if useVN {
		d.cntVN.Add(n)
		outs, cost, err := d.vn.InferBatchCtx(pc, inputs)
		if err == nil {
			d.observe(len(inputs), true, cost)
		}
		return outs, cost, err
	}
	d.cntCIM.Add(n)
	outs, cost, err := d.cim.InferBatchCtx(pc, inputs)
	if err == nil {
		d.observe(len(inputs), false, cost)
	}
	return outs, cost, err
}

// InferBatchKeyedCtx routes one keyed flush. Auto mode pins keyed traffic
// to CIM (the keys declare noise intent); forced vn mode serves it from
// the twin keyless, which is exact because a twin only exists for
// deterministic configs, where keys consume no noise draws.
func (d *Dispatcher) InferBatchKeyedCtx(pc obs.Ctx, seqs []uint64, inputs [][]float64) ([][]float64, energy.Cost, error) {
	n := int64(len(inputs))
	if d.mode == ModeVN && !d.suspended.Load() {
		d.cntVN.Add(n)
		outs, cost, err := d.vn.InferBatchCtx(pc, inputs)
		if err == nil {
			d.observe(len(inputs), true, cost)
		}
		return outs, cost, err
	}
	if d.mode == ModeAuto {
		d.cntPinned.Add(n)
	} else {
		d.cntCIM.Add(n)
	}
	outs, cost, err := d.cim.InferBatchKeyedCtx(pc, seqs, inputs)
	if err == nil && d.mode != ModeAuto {
		d.observe(len(inputs), false, cost)
	}
	return outs, cost, err
}

// observe feeds a successful flush into the calibrator, if there is one.
func (d *Dispatcher) observe(n int, vn bool, cost energy.Cost) {
	if d.cal != nil {
		d.cal.observe(n, vn, cost.LatencyPS)
	}
}

// Estimates reports the calibrator's current per-item latency estimates
// (in picoseconds) for batch size n, or ok=false on twin-less dispatchers.
func (d *Dispatcher) Estimates(n int) (cimPS, vnPS float64, ok bool) {
	if d.cal == nil {
		return 0, 0, false
	}
	cimPS, vnPS = d.cal.estimates(n)
	return cimPS, vnPS, true
}

// Reprogram swaps weights on both backends atomically with respect to
// routing: Von Neumann routing is suspended (flushes fall back to the CIM
// side, which the underlying pair keeps serving mid-swap), the wrapped
// Reprogrammer performs the crossbar swap, and on success the twin is
// requantized from the same network before routing resumes. A twin reload
// failure is returned after the crossbar swap has already happened — the
// caller's view is the same as a Breaker reprogram failure mid-retry.
func (d *Dispatcher) Reprogram(net *nn.Network) (visible, hidden energy.Cost, err error) {
	if d.rep == nil {
		return energy.Zero, energy.Zero, fmt.Errorf("hybrid: CIM backend does not support Reprogram")
	}
	d.suspended.Store(true)
	defer d.suspended.Store(false)
	visible, hidden, err = d.rep.Reprogram(net)
	if err != nil {
		return visible, hidden, err
	}
	if d.vn != nil {
		if rerr := d.vn.Reload(net); rerr != nil {
			return visible, hidden, fmt.Errorf("hybrid: twin reload after reprogram: %w", rerr)
		}
	}
	return visible, hidden, nil
}
