package hybrid

import (
	"math"
	"math/rand"
	"testing"

	"cimrev/internal/crossbar"
	"cimrev/internal/dataflow"
	"cimrev/internal/energy"
	"cimrev/internal/packet"
	"cimrev/internal/vonneumann"
)

func TestControlNodeFuncValidation(t *testing.T) {
	cpu := vonneumann.CPU()
	if _, err := ControlNodeFunc(cpu, 0, func(v []float64) []float64 { return v }); err == nil {
		t.Error("zero flops accepted")
	}
	if _, err := ControlNodeFunc(cpu, 1, nil); err == nil {
		t.Error("nil transform accepted")
	}
	if _, err := ControlNodeFunc(vonneumann.Machine{}, 1, func(v []float64) []float64 { return v }); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestControlNodeFuncInDataflow(t *testing.T) {
	// A Von Neumann control core inside a CIM dataflow graph (Section
	// III.F "Von Neumann within CIM").
	fn, err := ControlNodeFunc(vonneumann.CPU(), 10, func(v []float64) []float64 {
		out := make([]float64, len(v))
		for i, x := range v {
			out[i] = x * 2
		}
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	g := dataflow.NewGraph()
	id, err := g.AddNode("control", packet.Address{Unit: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	led := energy.NewLedger()
	e, err := dataflow.NewEngine(g, led)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(id, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := out[id]
	if len(res) != 1 || res[0][1] != 4 {
		t.Errorf("control node output = %v", res)
	}
	if led.Category("compute").EnergyPJ == 0 {
		t.Error("control core charged no energy")
	}
}

func newAccel(t *testing.T) *AcceleratedMemory {
	t.Helper()
	xcfg := crossbar.DefaultConfig()
	xcfg.Functional = true
	a, err := NewAcceleratedMemory(vonneumann.DefaultHierarchy(), xcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAcceleratedMemoryPlainAccess(t *testing.T) {
	a := newAccel(t)
	level, cost := a.Access(0)
	if level != vonneumann.LevelDRAM || cost.LatencyPS == 0 {
		t.Errorf("cold access = %v, %v", level, cost)
	}
	level, _ = a.Access(0)
	if level != vonneumann.LevelL1 {
		t.Errorf("warm access = %v", level)
	}
}

func TestGEMVOffloadedMatchesHost(t *testing.T) {
	a := newAccel(t)
	rng := rand.New(rand.NewSource(2))
	const n = 96
	w := make([][]float64, n)
	for r := range w {
		w[r] = make([]float64, n)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	if _, err := a.InstallMatrix(w); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	yOff, _, err := a.GEMVOffloaded(x)
	if err != nil {
		t.Fatal(err)
	}
	yHost, _, err := a.GEMVHost(x)
	if err != nil {
		t.Fatal(err)
	}
	for c := range yHost {
		if math.Abs(yOff[c]-yHost[c]) > 0.05*float64(n) {
			t.Errorf("col %d: offloaded %g vs host %g", c, yOff[c], yHost[c])
		}
	}
}

func TestOffloadBeatsHostOnLatency(t *testing.T) {
	// The point of CIM-within-VN: in-memory MVM avoids streaming the
	// matrix through the cache hierarchy.
	a := newAccel(t)
	rng := rand.New(rand.NewSource(3))
	const n = 256
	w := make([][]float64, n)
	for r := range w {
		w[r] = make([]float64, n)
		for c := range w[r] {
			w[r][c] = rng.Float64()
		}
	}
	if _, err := a.InstallMatrix(w); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	_, offCost, err := a.GEMVOffloaded(x)
	if err != nil {
		t.Fatal(err)
	}
	_, hostCost, err := a.GEMVHost(x)
	if err != nil {
		t.Fatal(err)
	}
	if offCost.LatencyPS >= hostCost.LatencyPS {
		t.Errorf("offload %d ps not below host %d ps", offCost.LatencyPS, hostCost.LatencyPS)
	}
}

func TestGEMVBeforeInstall(t *testing.T) {
	a := newAccel(t)
	if _, _, err := a.GEMVOffloaded([]float64{1}); err == nil {
		t.Error("offload without matrix accepted")
	}
	if _, _, err := a.GEMVHost([]float64{1}); err == nil {
		t.Error("host GEMV without matrix accepted")
	}
}

func TestGEMVHostInputValidation(t *testing.T) {
	a := newAccel(t)
	if _, err := a.InstallMatrix([][]float64{{1, 0}, {0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.GEMVHost([]float64{1}); err == nil {
		t.Error("wrong input length accepted")
	}
}
