// Package hybrid implements Section III.F of the paper, the two
// interaction models between Von Neumann and CIM systems:
//
//   - "Von Neumann within CIM model allows for Von Neumann components
//     executing within CIM, for example, in support of control functions,
//     or performing more general operations": ControlNodeFunc wraps a
//     roofline machine as a dataflow node, so a fabric can host small
//     general-purpose cores among its crossbar units.
//
//   - "CIM within Von Neumann model can result by using CIM as Von Neumann
//     system memory, enabling built-in memory acceleration on an otherwise
//     traditional Von Neumann architecture": AcceleratedMemory serves
//     ordinary loads through a cache hierarchy but answers matrix-vector
//     requests from an embedded crossbar, in place.
package hybrid

import (
	"fmt"
	"sync/atomic"

	"cimrev/internal/crossbar"
	"cimrev/internal/dataflow"
	"cimrev/internal/energy"
	"cimrev/internal/noise"
	"cimrev/internal/vonneumann"
)

// ControlNodeFunc wraps a Von Neumann machine as a dataflow node: transform
// runs on the embedded core and its cost is priced by the roofline model at
// flopsPerElement arithmetic per vector element.
func ControlNodeFunc(m vonneumann.Machine, flopsPerElement float64, transform func([]float64) []float64) (dataflow.NodeFunc, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if flopsPerElement <= 0 {
		return nil, fmt.Errorf("hybrid: flopsPerElement must be positive, got %g", flopsPerElement)
	}
	if transform == nil {
		return nil, fmt.Errorf("hybrid: nil transform")
	}
	return func(_ *dataflow.State, in []float64) ([]float64, energy.Cost, error) {
		out := transform(append([]float64(nil), in...))
		k := vonneumann.Kernel{
			Name:  "control",
			Flops: flopsPerElement * float64(len(in)),
			Bytes: 16 * float64(len(in)), // in + out through the core's memory
		}
		cost, err := m.Run(k)
		if err != nil {
			return nil, energy.Zero, err
		}
		return out, cost, nil
	}, nil
}

// AcceleratedMemory is a Von Neumann memory system with an embedded
// crossbar: plain accesses go through the cache hierarchy; GEMV requests
// compute in the memory itself.
type AcceleratedMemory struct {
	hier *vonneumann.Hierarchy
	cpu  vonneumann.Machine
	tile *crossbar.Tile
	// src roots the accelerator's counter-based noise tree; seq numbers
	// offloaded GEMVs so each analog read has its own derived stream.
	src noise.Source
	seq atomic.Uint64

	weights [][]float64
}

// NewAcceleratedMemory builds the hybrid memory. The crossbar config
// governs the in-memory accelerator.
func NewAcceleratedMemory(hcfg vonneumann.HierarchyConfig, xcfg crossbar.Config, seed int64) (*AcceleratedMemory, error) {
	hier, err := vonneumann.NewHierarchy(hcfg)
	if err != nil {
		return nil, err
	}
	tile, err := crossbar.NewTile(xcfg)
	if err != nil {
		return nil, err
	}
	return &AcceleratedMemory{
		hier: hier,
		cpu:  vonneumann.CPU(),
		tile: tile,
		src:  noise.NewSource(seed),
	}, nil
}

// Access performs one ordinary load through the cache hierarchy.
func (a *AcceleratedMemory) Access(addr uint64) (vonneumann.Level, energy.Cost) {
	return a.hier.Access(addr)
}

// InstallMatrix programs the matrix into the in-memory accelerator (and
// keeps a host copy for the host-side comparison path).
func (a *AcceleratedMemory) InstallMatrix(w [][]float64) (energy.Cost, error) {
	cost, err := a.tile.Program(w)
	if err != nil {
		return energy.Zero, err
	}
	a.weights = make([][]float64, len(w))
	for i, row := range w {
		a.weights[i] = append([]float64(nil), row...)
	}
	return cost, nil
}

// GEMVOffloaded answers y = W·x inside the memory: the host only pays to
// send x and receive y over the memory interface; the product happens in
// the arrays.
func (a *AcceleratedMemory) GEMVOffloaded(x []float64) ([]float64, energy.Cost, error) {
	if a.weights == nil {
		return nil, energy.Zero, fmt.Errorf("hybrid: no matrix installed")
	}
	y, cost, err := a.tile.MVM(x, a.src.Derive(a.seq.Add(1)-1))
	if err != nil {
		return nil, energy.Zero, err
	}
	// Command + operand transfer across the memory bus.
	busBytes := 8 * float64(len(x)+len(y))
	cost = cost.Seq(energy.Cost{
		LatencyPS: energy.PicosecondsFromSeconds(busBytes / energy.CPUMemBandwidth),
		EnergyPJ:  busBytes * energy.DRAMAccessEnergyPJPerByte,
	})
	return y, cost, nil
}

// GEMVHost computes y = W·x on the host CPU, charging one cache-hierarchy
// access per weight element touched plus the roofline arithmetic.
func (a *AcceleratedMemory) GEMVHost(x []float64) ([]float64, energy.Cost, error) {
	if a.weights == nil {
		return nil, energy.Zero, fmt.Errorf("hybrid: no matrix installed")
	}
	rows := len(a.weights)
	if len(x) != rows {
		return nil, energy.Zero, fmt.Errorf("hybrid: input length %d != rows %d", len(x), rows)
	}
	cols := len(a.weights[0])
	y := make([]float64, cols)
	total := energy.Zero
	const elemBytes = 8
	base := uint64(1 << 30) // weight array's address region
	line := uint64(a.hier.LineSize())
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			y[c] += a.weights[r][c] * x[r]
			addr := base + uint64(r*cols+c)*elemBytes
			// One hierarchy access per cache line touched.
			if addr%line < elemBytes {
				_, cost := a.hier.Access(addr)
				total = total.Seq(cost)
			}
		}
	}
	k := vonneumann.Kernel{Name: "gemv-host", Flops: 2 * float64(rows) * float64(cols)}
	arith, err := a.cpu.Run(k)
	if err != nil {
		return nil, energy.Zero, err
	}
	return y, total.Seq(arith), nil
}
