package hybrid

import (
	"math/bits"
	"sync"

	"cimrev/internal/energy"
	"cimrev/internal/nn"
)

const (
	// calibratorAlpha is the EWMA smoothing factor for observed per-item
	// latencies: heavy enough that a few flushes overturn a wrong prior,
	// light enough that one outlier flush does not flip routing.
	calibratorAlpha = 0.25
	// defaultProbeEvery is how often a bucket routes against its current
	// preference to keep the other backend's estimate fresh.
	defaultProbeEvery = 16
)

// ewma is an exponentially weighted moving average of per-item latency in
// picoseconds. Until the first observation it reports its seed verbatim.
type ewma struct {
	v float64
	n int64
}

func (e *ewma) observe(x float64) {
	if e.n == 0 {
		e.v = x
	} else {
		e.v += calibratorAlpha * (x - e.v)
	}
	e.n++
}

// bucketState tracks both backends' per-item latency estimates for one
// batch-size class, plus the flush count that drives probing.
type bucketState struct {
	cim, vn ewma
	flushes int64
}

// calibrator refines the static crossover model online. Flushes are
// classed by batch size into log2 buckets (1, 2-3, 4-7, 8-15, ...): the
// crossover between backends is a function of how much batching amortizes
// the crossbar's fixed read cycles, so estimates must not be smeared
// across batch sizes. Each bucket seeds from the static model — the CIM
// board constants for the crossbar side, the twin's exact roofline
// PredictBatchCost for the Von Neumann side — and every observed flush
// folds its measured per-item latency into the chosen backend's EWMA.
//
// Decisions are deterministic given the flush sequence: the preferred
// backend is the one with the lower estimate, and every probeEvery-th
// flush in a bucket routes to the other backend so a stale estimate
// cannot pin routing forever.
type calibrator struct {
	mu         sync.Mutex
	probeEvery int64
	seedCIM    func(n int) float64
	seedVN     func(n int) float64
	buckets    map[int]*bucketState
}

func newCalibrator(probeEvery int, seedCIM, seedVN func(n int) float64) *calibrator {
	if probeEvery <= 0 {
		probeEvery = defaultProbeEvery
	}
	return &calibrator{
		probeEvery: int64(probeEvery),
		seedCIM:    seedCIM,
		seedVN:     seedVN,
		buckets:    make(map[int]*bucketState),
	}
}

// bucketOf classes a batch size: bits.Len gives the log2 bucket.
func bucketOf(n int) int { return bits.Len(uint(n)) }

// bucket returns the state for batch size n, seeding it on first use with
// the static model evaluated at n (the first size seen in the class).
func (c *calibrator) bucket(n int) *bucketState {
	k := bucketOf(n)
	b, ok := c.buckets[k]
	if !ok {
		b = &bucketState{}
		b.cim.v = c.seedCIM(n)
		b.vn.v = c.seedVN(n)
		c.buckets[k] = b
	}
	return b
}

// choose routes one flush of n items: true means the Von Neumann backend.
func (c *calibrator) choose(n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.bucket(n)
	b.flushes++
	preferVN := b.vn.v < b.cim.v
	if b.flushes%c.probeEvery == 0 {
		return !preferVN
	}
	return preferVN
}

// observe folds a measured flush into the chosen backend's estimate.
func (c *calibrator) observe(n int, vn bool, latencyPS int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.bucket(n)
	perItem := float64(latencyPS) / float64(n)
	if vn {
		b.vn.observe(perItem)
	} else {
		b.cim.observe(perItem)
	}
}

// estimates reports the current per-item latency estimates for batch size
// n without counting a flush — the sweep's view into the learned model.
func (c *calibrator) estimates(n int) (cimPS, vnPS float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.bucket(n)
	return b.cim.v, b.vn.v
}

// cimSeed builds the static per-item CIM prior from the shared board
// constants (the same energy.CIM* block the suitability calculator uses):
// compute at peak MVM throughput, operand streaming over the mesh, and the
// per-stage round latency amortized across the batch — the pipelining
// dpe.Engine actually performs.
func cimSeed(net *nn.Network) func(n int) float64 {
	flops := net.Flops()
	stages := float64(len(net.Layers))
	bytes := 16 * float64(net.InSize()+net.OutSize())
	return func(n int) float64 {
		s := flops/energy.CIMPeakOps + bytes/energy.CIMMeshBandwidth +
			stages*energy.CIMRoundLatencyS/float64(n)
		return float64(energy.PicosecondsFromSeconds(s))
	}
}
