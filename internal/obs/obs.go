// Package obs is the observability substrate for the simulators: a
// span-based tracer that records both wall-clock time and *simulated*
// time/energy per operation.
//
// The paper's Section VI claims (DPE latency/bandwidth/power 10–10⁶× over
// CPUs/GPUs) are order-of-magnitude aggregates. Eva-CiM (PAPERS.md) argues
// that CiM evaluation is only credible with system-level, per-component
// energy/latency attribution — you have to see *where* the simulated
// nanojoules and nanoseconds go, per micro-unit → unit → tile → fabric
// stage. This package provides that view without perturbing the thing it
// measures:
//
//   - Every span carries the energy.Cost the traced operation returned, so
//     attribution is exact: the simulated cost algebra is the source of
//     truth, not a sampling profiler.
//   - Tracing is threaded through the stack as an explicit obs.Ctx value
//     (crossbar MVM/Program, dpe InferBatch/Load/Repair, serve flushes and
//     shadow swaps, experiment sweeps). A zero Ctx means "not tracing" and
//     every operation on it is a nil-check no-op — the hot MVM path pays a
//     couple of predictable branches and zero allocations when tracing is
//     off (see BenchmarkCrossbarMVMTracingOff and docs/OBSERVABILITY.md
//     for the overhead budget).
//   - The enable flag is atomic, so a long-lived Tracer can be toggled
//     while the serving pipeline runs; completed-span records come from a
//     sync.Pool, so repeated trace sessions reuse their buffers.
//
// Exporters live in export.go: Chrome trace_event JSON (loadable in
// chrome://tracing or Perfetto, `cimbench -trace out.json`) and an
// aggregated per-stage cost-attribution table (`cimbench -attr`).
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"cimrev/internal/energy"
)

// DefaultSpanLimit bounds how many completed spans a Tracer retains. Past
// the limit, spans are dropped (counted, never silently) so a forgotten
// enabled tracer cannot grow without bound under production load.
const DefaultSpanLimit = 1 << 21

// Note is one numeric annotation on a span (batch size, pulse count, ...).
// Annotations are numeric on purpose: they land in the Chrome trace args
// and in attribution without any formatting on the record path.
type Note struct {
	Key string
	Val float64
}

// span is the mutable in-flight record; it cycles through the tracer's
// pool. The exported value type is Span.
type span struct {
	id, parent uint64
	name       string
	startNS    int64
	endNS      int64
	cost       energy.Cost
	notes      []Note
}

// Span is one completed, immutable trace record.
type Span struct {
	// ID is unique within the tracer; Parent is the enclosing span's ID,
	// 0 for root spans.
	ID, Parent uint64
	// Name identifies the operation, dotted by layer: "xbar.mvm",
	// "dpe.infer_batch", "serve.flush". The prefix before the first dot is
	// the category exporters group by.
	Name string
	// StartNS / EndNS are wall-clock nanoseconds since the tracer epoch.
	StartNS, EndNS int64
	// Cost is the simulated cost the traced operation reported — inclusive
	// of child spans, exactly as the cost algebra composed it.
	Cost energy.Cost
	// Notes are numeric annotations (batch size, retry pulses, ...).
	Notes []Note
}

// WallDur returns the span's wall-clock duration.
func (s Span) WallDur() time.Duration { return time.Duration(s.EndNS - s.StartNS) }

// Category returns the span name's layer prefix ("xbar" for "xbar.mvm").
func (s Span) Category() string {
	for i := 0; i < len(s.Name); i++ {
		if s.Name[i] == '.' {
			return s.Name[:i]
		}
	}
	return s.Name
}

// Note returns the named annotation and whether it exists.
func (s Span) Note(key string) (float64, bool) {
	for _, n := range s.Notes {
		if n.Key == key {
			return n.Val, true
		}
	}
	return 0, false
}

// Tracer collects spans. The zero value and nil are both valid "tracing
// off" tracers: every method is nil-safe, and Root on a disabled tracer
// returns the zero Ctx, which turns the whole downstream span tree into
// no-ops. Construct with New (enabled) and toggle with Enable/Disable.
//
// Recording is safe for concurrent use: the parallel worker pool retires
// spans from many goroutines.
type Tracer struct {
	on      atomic.Bool
	epoch   time.Time
	ids     atomic.Uint64
	limit   int
	dropped atomic.Int64

	pool sync.Pool // *span — completed-span records recycle through here

	mu   sync.Mutex
	done []Span // completed spans in retirement (End) order
}

// New returns an enabled tracer with the default span limit.
func New() *Tracer {
	t := &Tracer{epoch: time.Now(), limit: DefaultSpanLimit}
	t.on.Store(true)
	return t
}

// SetLimit caps retained completed spans (minimum 1). Call before tracing.
func (t *Tracer) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	t.limit = n
}

// Enable turns recording on.
func (t *Tracer) Enable() { t.on.Store(true) }

// Disable turns recording off. In-flight spans still retire (their parents
// are already committed to the tree); new Root calls become no-ops.
func (t *Tracer) Disable() { t.on.Store(false) }

// Enabled reports whether the tracer records. Nil-safe: a nil tracer is
// permanently disabled — this is the fast path the hot kernels branch on.
func (t *Tracer) Enabled() bool { return t != nil && t.on.Load() }

// Root opens a top-level span. On a nil or disabled tracer it returns the
// zero Ctx and allocates nothing.
func (t *Tracer) Root(name string) Ctx {
	if !t.Enabled() {
		return Ctx{}
	}
	return Ctx{t: t, sp: t.begin(0, name)}
}

// begin acquires a pooled span record and stamps its start.
func (t *Tracer) begin(parent uint64, name string) *span {
	sp, _ := t.pool.Get().(*span)
	if sp == nil {
		sp = &span{}
	}
	sp.id = t.ids.Add(1)
	sp.parent = parent
	sp.name = name
	sp.startNS = int64(time.Since(t.epoch))
	sp.endNS = 0
	sp.cost = energy.Zero
	sp.notes = sp.notes[:0]
	return sp
}

// retire commits a finished span to the done list (or drops it past the
// limit) and recycles the record.
func (t *Tracer) retire(sp *span, cost energy.Cost) {
	sp.endNS = int64(time.Since(t.epoch))
	sp.cost = cost
	t.mu.Lock()
	if len(t.done) >= t.limit {
		t.mu.Unlock()
		t.dropped.Add(1)
		t.pool.Put(sp)
		return
	}
	t.done = append(t.done, Span{
		ID:      sp.id,
		Parent:  sp.parent,
		Name:    sp.name,
		StartNS: sp.startNS,
		EndNS:   sp.endNS,
		Cost:    cost,
		Notes:   append([]Note(nil), sp.notes...),
	})
	t.mu.Unlock()
	t.pool.Put(sp)
}

// Len returns the number of retained completed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done)
}

// Dropped returns how many spans the limit discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Snapshot copies the completed spans in retirement order. Children End
// before their parents, so a child always precedes its parent here; root
// spans of a serial driver appear in call order.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.done...)
}

// Reset discards all completed spans and the drop count. The span records
// were already recycled at retirement; Reset just releases the done list.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done = t.done[:0]
	t.mu.Unlock()
	t.dropped.Store(0)
}

// Ctx is a handle on one open span, threaded by value through the stack.
// The zero Ctx is "not tracing": Child returns another zero Ctx, End and
// Annotate are no-ops, and nothing allocates — this is what makes tracing
// near-free when disabled without if-guards at every call site.
type Ctx struct {
	t  *Tracer
	sp *span
}

// Active reports whether the context records into a tracer.
func (c Ctx) Active() bool { return c.sp != nil }

// Child opens a nested span. On a zero Ctx it returns the zero Ctx.
func (c Ctx) Child(name string) Ctx {
	if c.sp == nil {
		return Ctx{}
	}
	return Ctx{t: c.t, sp: c.t.begin(c.sp.id, name)}
}

// Annotate attaches a numeric note to the span. No-op on a zero Ctx.
func (c Ctx) Annotate(key string, v float64) {
	if c.sp == nil {
		return
	}
	c.sp.notes = append(c.sp.notes, Note{Key: key, Val: v})
}

// End closes the span, attributing the simulated cost the operation
// reported. Every Begin/Child must be paired with exactly one End; End on
// a zero Ctx is a no-op. After End the Ctx must not be reused.
func (c Ctx) End(cost energy.Cost) {
	if c.sp == nil {
		return
	}
	c.t.retire(c.sp, cost)
}

// SumRoots left-folds the costs of root spans (Parent == 0) in retirement
// order with energy.Cost.Seq — the same fold a serial driver applies to
// the per-operation costs it measures. For a trace whose roots are the
// driver's sequential operations, SumRoots is therefore bit-identical to
// the untraced run's total cost (tests and `cimbench -trace` pin this).
func SumRoots(spans []Span) energy.Cost {
	total := energy.Zero
	for _, s := range spans {
		if s.Parent == 0 {
			total = total.Seq(s.Cost)
		}
	}
	return total
}
