package obs_test

import (
	"fmt"

	"cimrev/internal/energy"
	"cimrev/internal/obs"
)

// ExampleTracer shows the span lifecycle: a root span per request, child
// spans per pipeline stage, each ended with its simulated cost. SumRoots
// totals simulated time over root spans only, so nesting never
// double-counts.
func ExampleTracer() {
	tr := obs.New()
	tr.Enable()

	root := tr.Root("serve.request")
	infer := root.Child("dpe.infer")
	infer.End(energy.Cost{LatencyPS: 100_000, EnergyPJ: 12})
	root.End(energy.Cost{LatencyPS: 102_000, EnergyPJ: 12.5})

	spans := tr.Snapshot()
	fmt.Println("spans recorded:", len(spans))
	fmt.Printf("simulated time: %d ps\n", obs.SumRoots(spans).LatencyPS)
	// Output:
	// spans recorded: 2
	// simulated time: 102000 ps
}
