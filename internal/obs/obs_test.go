package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"cimrev/internal/energy"
)

func cost(ps int64, pj float64) energy.Cost { return energy.Cost{LatencyPS: ps, EnergyPJ: pj} }

// TestZeroCtxNoOps: the zero Ctx (tracing off) must absorb the whole span
// protocol without recording or allocating.
func TestZeroCtxNoOps(t *testing.T) {
	var c Ctx
	if c.Active() {
		t.Fatal("zero Ctx reports active")
	}
	child := c.Child("x")
	if child.Active() {
		t.Fatal("child of zero Ctx reports active")
	}
	child.Annotate("k", 1)
	child.End(cost(1, 1))
	c.End(cost(1, 1))

	allocs := testing.AllocsPerRun(100, func() {
		sp := c.Child("hot")
		sp.Annotate("k", 1)
		sp.End(energy.Zero)
	})
	if allocs != 0 {
		t.Fatalf("zero-Ctx span protocol allocates %.1f per op, want 0", allocs)
	}
}

// TestNilTracerDisabled: nil and disabled tracers return zero Ctx roots.
func TestNilTracerDisabled(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	if nilT.Root("x").Active() {
		t.Fatal("nil tracer produced an active root")
	}
	if nilT.Len() != 0 || nilT.Dropped() != 0 || nilT.Snapshot() != nil {
		t.Fatal("nil tracer has state")
	}
	nilT.Reset() // must not panic

	tr := New()
	tr.Disable()
	if tr.Root("x").Active() {
		t.Fatal("disabled tracer produced an active root")
	}
	tr.Enable()
	if !tr.Root("x").Active() {
		t.Fatal("re-enabled tracer produced a zero root")
	}
}

// TestSpanTreeWellFormed builds a known tree and checks the structural
// invariants every exporter relies on: unique IDs, parents exist (or 0),
// children retire before parents, and child wall intervals nest inside
// their parent's.
func TestSpanTreeWellFormed(t *testing.T) {
	tr := New()
	root := tr.Root("run.root")
	a := root.Child("dpe.a")
	a1 := a.Child("xbar.a1")
	a1.Annotate("rows", 64)
	a1.End(cost(10, 1))
	a2 := a.Child("xbar.a2")
	a2.End(cost(20, 2))
	a.End(cost(30, 3))
	b := root.Child("dpe.b")
	b.End(cost(40, 4))
	root.End(cost(70, 7))

	spans := tr.Snapshot()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	byID := make(map[uint64]Span, len(spans))
	pos := make(map[uint64]int, len(spans))
	for i, s := range spans {
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		byID[s.ID] = s
		pos[s.ID] = i
	}
	for _, s := range spans {
		if s.StartNS > s.EndNS {
			t.Errorf("span %q starts after it ends", s.Name)
		}
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %q has unknown parent %d", s.Name, s.Parent)
		}
		if pos[s.ID] >= pos[s.Parent] {
			t.Errorf("child %q retired after parent %q", s.Name, p.Name)
		}
		if s.StartNS < p.StartNS || s.EndNS > p.EndNS {
			t.Errorf("child %q [%d,%d] not nested in parent %q [%d,%d]",
				s.Name, s.StartNS, s.EndNS, p.Name, p.StartNS, p.EndNS)
		}
	}

	// Category and annotations survive the snapshot.
	var a1s Span
	for _, s := range spans {
		if s.Name == "xbar.a1" {
			a1s = s
		}
	}
	if a1s.Category() != "xbar" {
		t.Errorf("category %q, want xbar", a1s.Category())
	}
	if v, ok := a1s.Note("rows"); !ok || v != 64 {
		t.Errorf("note rows = %v, %v", v, ok)
	}
	if _, ok := a1s.Note("missing"); ok {
		t.Error("missing note found")
	}
}

// TestSumRoots: the root fold is the serial Seq fold, ignoring children.
func TestSumRoots(t *testing.T) {
	tr := New()
	for i := 0; i < 3; i++ {
		r := tr.Root("op")
		c := r.Child("inner")
		c.End(cost(999, 999)) // child costs must not double count
		r.End(cost(int64(10*(i+1)), float64(i+1)))
	}
	got := SumRoots(tr.Snapshot())
	want := cost(10, 1).Seq(cost(20, 2)).Seq(cost(30, 3))
	if got != want {
		t.Fatalf("SumRoots = %+v, want %+v", got, want)
	}
	if SumRoots(nil) != energy.Zero {
		t.Fatal("SumRoots(nil) != Zero")
	}
}

// TestSpanLimitDrops: past the limit spans are dropped and counted.
func TestSpanLimitDrops(t *testing.T) {
	tr := New()
	tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		tr.Root("op").End(energy.Zero)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// TestConcurrentRecording: spans retired from many goroutines all land,
// with unique IDs (run under -race in the Makefile race target).
func TestConcurrentRecording(t *testing.T) {
	tr := New()
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r := tr.Root("op")
				c := r.Child("inner")
				c.End(cost(1, 1))
				r.End(cost(2, 2))
			}
		}()
	}
	wg.Wait()
	spans := tr.Snapshot()
	if len(spans) != goroutines*perG*2 {
		t.Fatalf("got %d spans, want %d", len(spans), goroutines*perG*2)
	}
	seen := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestAssignLanes: within a lane, spans must nest or be disjoint.
func TestAssignLanes(t *testing.T) {
	mk := func(id, parent uint64, start, end int64) Span {
		return Span{ID: id, Parent: parent, Name: "s", StartNS: start, EndNS: end}
	}
	spans := []Span{
		mk(1, 0, 0, 100),  // parent
		mk(2, 1, 10, 40),  // nested child
		mk(3, 1, 50, 90),  // nested child, disjoint from 2
		mk(4, 0, 20, 120), // overlaps 1 without nesting -> own lane
		mk(5, 0, 130, 150),
	}
	lanes := AssignLanes(spans)
	if len(lanes) != len(spans) {
		t.Fatalf("lanes len %d", len(lanes))
	}
	// Pairwise check the invariant inside each lane.
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if lanes[i] != lanes[j] {
				continue
			}
			a, b := spans[i], spans[j]
			disjoint := a.EndNS <= b.StartNS || b.EndNS <= a.StartNS
			nested := (a.StartNS >= b.StartNS && a.EndNS <= b.EndNS) ||
				(b.StartNS >= a.StartNS && b.EndNS <= a.EndNS)
			if !disjoint && !nested {
				t.Errorf("lane %d holds overlapping non-nested spans %d and %d", lanes[i], a.ID, b.ID)
			}
		}
	}
	// The overlapping root must not share a lane with span 1.
	if lanes[3] == lanes[0] {
		t.Error("overlapping roots share a lane")
	}
}

// TestWriteChromeTrace: the export is valid JSON with one X event per
// span, wall microseconds on the timeline and simulated cost in args.
func TestWriteChromeTrace(t *testing.T) {
	tr := New()
	r := tr.Root("serve.flush")
	c := r.Child("dpe.infer_batch")
	c.Annotate("batch", 8)
	c.End(cost(2000, 5))
	r.End(cost(3000, 6))

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string             `json:"name"`
			Cat  string             `json:"cat"`
			Ph   string             `json:"ph"`
			TS   float64            `json:"ts"`
			Dur  float64            `json:"dur"`
			Args map[string]float64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur < 0 {
			t.Errorf("event %q negative duration", ev.Name)
		}
	}
	byName := map[string]map[string]float64{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name] = ev.Args
	}
	if byName["dpe.infer_batch"]["sim_ps"] != 2000 || byName["dpe.infer_batch"]["energy_pj"] != 5 {
		t.Errorf("child args = %v", byName["dpe.infer_batch"])
	}
	if byName["dpe.infer_batch"]["batch"] != 8 {
		t.Errorf("annotation lost: %v", byName["dpe.infer_batch"])
	}
}

// TestAttribution: totals are inclusive, self subtracts children (clamped
// at zero), rows sort by self energy descending.
func TestAttribution(t *testing.T) {
	tr := New()
	r := tr.Root("root")
	a := r.Child("leaf.a")
	a.End(cost(100, 10))
	b := r.Child("leaf.b")
	b.End(cost(50, 5))
	r.End(cost(150, 18)) // self: 0 ps (150-150), 3 pJ (18-15)
	// A parallel parent whose children's latency sum exceeds its own
	// critical path: self sim must clamp at 0, not go negative.
	p := tr.Root("par")
	c1 := p.Child("leaf.a")
	c1.End(cost(80, 2))
	c2 := p.Child("leaf.a")
	c2.End(cost(90, 2))
	p.End(cost(90, 4)) // par latency; child sum 170 > 90

	rows := Attribution(tr.Snapshot())
	byName := map[string]AttrRow{}
	for _, row := range rows {
		byName[row.Name] = row
	}
	la := byName["leaf.a"]
	if la.Count != 3 || la.EnergyPJ != 14 || la.SimPS != 270 {
		t.Errorf("leaf.a = %+v", la)
	}
	if la.SelfEnergyPJ != 14 || la.SelfSimPS != 270 {
		t.Errorf("leaf.a self = %+v (leaves own their full cost)", la)
	}
	rt := byName["root"]
	if rt.SelfEnergyPJ != 3 || rt.SelfSimPS != 0 {
		t.Errorf("root self = (%g pJ, %d ps), want (3, 0)", rt.SelfEnergyPJ, rt.SelfSimPS)
	}
	pr := byName["par"]
	if pr.SelfSimPS != 0 {
		t.Errorf("par self sim = %d, want 0 (clamped)", pr.SelfSimPS)
	}
	if pr.SelfEnergyPJ != 0 {
		t.Errorf("par self energy = %g, want 0 (4 - 4)", pr.SelfEnergyPJ)
	}
	// Sorted by self energy descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].SelfEnergyPJ > rows[i-1].SelfEnergyPJ {
			t.Fatalf("rows not sorted by self energy: %v before %v", rows[i-1].Name, rows[i].Name)
		}
	}

	out := FormatAttribution(rows, 2)
	if !strings.Contains(out, "leaf.a") {
		t.Error("top row missing from formatted table")
	}
	if !strings.Contains(out, "more span kinds") {
		t.Error("truncation line missing")
	}
}
