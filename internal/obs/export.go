// Exporters: Chrome trace_event JSON and the per-stage cost-attribution
// table. Both operate on Span snapshots, never on the live tracer, so an
// export can never stall the recording path.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"cimrev/internal/energy"
)

// chromeEvent is one trace_event in the Chrome/Perfetto JSON format. We
// emit "X" (complete) events: ts/dur in microseconds of wall time, with
// the simulated cost and annotations in args.
type chromeEvent struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat"`
	Ph   string             `json:"ph"`
	PID  int                `json:"pid"`
	TID  int                `json:"tid"`
	TS   float64            `json:"ts"`
	Dur  float64            `json:"dur"`
	Args map[string]float64 `json:"args,omitempty"`
}

// chromeDoc is the top-level trace file shape.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// AssignLanes maps spans to virtual thread lanes such that within each
// lane, spans either nest or are disjoint — the invariant Chrome's flame
// view needs to render "X" events correctly. Spans from the worker pool
// overlap in wall time, so they cannot all share one lane; greedy
// first-fit packing keeps the lane count near the true concurrency.
// Returns lane index per span (aligned with the input slice).
func AssignLanes(spans []Span) []int {
	idx := make([]int, len(spans))
	for i := range idx {
		idx[i] = i
	}
	// Earliest start first; longer span first on ties so a parent whose
	// child shares its start lands below the child in the same lane.
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := spans[idx[a]], spans[idx[b]]
		if sa.StartNS != sb.StartNS {
			return sa.StartNS < sb.StartNS
		}
		return sa.EndNS > sb.EndNS
	})

	lanes := make([]int, len(spans))
	// Each lane is a stack of currently-open end times.
	var open [][]int64
	for _, i := range idx {
		s := spans[i]
		placed := -1
		for l := range open {
			// Retire intervals that ended before this span starts.
			st := open[l]
			for len(st) > 0 && st[len(st)-1] <= s.StartNS {
				st = st[:len(st)-1]
			}
			open[l] = st
			if len(st) == 0 || s.EndNS <= st[len(st)-1] {
				placed = l
				break
			}
		}
		if placed < 0 {
			open = append(open, nil)
			placed = len(open) - 1
		}
		open[placed] = append(open[placed], s.EndNS)
		lanes[i] = placed
	}
	return lanes
}

// WriteChromeTrace renders spans as Chrome trace_event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev. Wall time drives the
// timeline; each event's args carry the simulated cost (sim_ps,
// energy_pj) plus any span annotations.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	lanes := AssignLanes(spans)
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ns"}
	for i, s := range spans {
		args := map[string]float64{
			"sim_ps":    float64(s.Cost.LatencyPS),
			"energy_pj": s.Cost.EnergyPJ,
		}
		for _, n := range s.Notes {
			args[n.Key] = n.Val
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  s.Category(),
			Ph:   "X",
			PID:  1,
			TID:  lanes[i],
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.EndNS-s.StartNS) / 1e3,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// AttrRow is one line of the cost-attribution table: every span with the
// same name aggregated. Total columns are inclusive of child spans; Self
// columns subtract the children, so summing Self across all rows
// approximates each root's total without double counting.
type AttrRow struct {
	Name  string
	Count int64
	// WallNS is total inclusive wall-clock time.
	WallNS int64
	// SimPS / EnergyPJ are total inclusive simulated cost.
	SimPS    int64
	EnergyPJ float64
	// SelfSimPS / SelfEnergyPJ exclude the cost attributed to child spans
	// (clamped at zero: parallel children can legitimately exceed a
	// parent's critical-path latency).
	SelfSimPS    int64
	SelfEnergyPJ float64
}

// Attribution aggregates spans by name into attribution rows, sorted by
// self energy (then self sim time) descending — the top consumers first.
func Attribution(spans []Span) []AttrRow {
	// Child cost fold per parent ID, for self-cost computation.
	childPS := make(map[uint64]int64, len(spans))
	childPJ := make(map[uint64]float64, len(spans))
	for _, s := range spans {
		if s.Parent != 0 {
			childPS[s.Parent] += s.Cost.LatencyPS
			childPJ[s.Parent] += s.Cost.EnergyPJ
		}
	}
	rows := make(map[string]*AttrRow)
	for _, s := range spans {
		r := rows[s.Name]
		if r == nil {
			r = &AttrRow{Name: s.Name}
			rows[s.Name] = r
		}
		r.Count++
		r.WallNS += s.EndNS - s.StartNS
		r.SimPS += s.Cost.LatencyPS
		r.EnergyPJ += s.Cost.EnergyPJ
		selfPS := s.Cost.LatencyPS - childPS[s.ID]
		if selfPS < 0 {
			selfPS = 0
		}
		selfPJ := s.Cost.EnergyPJ - childPJ[s.ID]
		if selfPJ < 0 {
			selfPJ = 0
		}
		r.SelfSimPS += selfPS
		r.SelfEnergyPJ += selfPJ
	}
	out := make([]AttrRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].SelfEnergyPJ != out[b].SelfEnergyPJ {
			return out[a].SelfEnergyPJ > out[b].SelfEnergyPJ
		}
		if out[a].SelfSimPS != out[b].SelfSimPS {
			return out[a].SelfSimPS > out[b].SelfSimPS
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// FormatAttribution renders the top-N attribution rows as a fixed-width
// table (all rows when topN <= 0).
func FormatAttribution(rows []AttrRow, topN int) string {
	if topN <= 0 || topN > len(rows) {
		topN = len(rows)
	}
	var totalPJ float64
	for _, r := range rows {
		totalPJ += r.SelfEnergyPJ
	}
	var b strings.Builder
	b.WriteString("Cost attribution (self = exclusive of child spans)\n")
	b.WriteString(fmt.Sprintf("%-24s %8s %12s %12s %7s %12s %12s\n",
		"span", "count", "self energy", "self sim", "en%", "total energy", "total sim"))
	for _, r := range rows[:topN] {
		pct := 0.0
		if totalPJ > 0 {
			pct = 100 * r.SelfEnergyPJ / totalPJ
		}
		b.WriteString(fmt.Sprintf("%-24s %8d %12s %12s %6.1f%% %12s %12s\n",
			r.Name, r.Count,
			energy.FormatEnergy(r.SelfEnergyPJ), energy.FormatLatency(r.SelfSimPS), pct,
			energy.FormatEnergy(r.EnergyPJ), energy.FormatLatency(r.SimPS)))
	}
	if topN < len(rows) {
		b.WriteString(fmt.Sprintf("... %d more span kinds\n", len(rows)-topN))
	}
	return b.String()
}
