package resource

import (
	"math"
	"testing"

	"cimrev/internal/metrics"
	"cimrev/internal/packet"
)

func addr(tile uint16) packet.Address { return packet.Address{Tile: tile} }

func pool(t *testing.T, n int, capacity float64) *Balancer {
	t.Helper()
	units := make([]packet.Address, n)
	for i := range units {
		units[i] = addr(uint16(i))
	}
	b, err := NewBalancer(units, capacity, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBalancerValidation(t *testing.T) {
	if _, err := NewBalancer(nil, 1, nil); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewBalancer([]packet.Address{addr(0)}, 0, nil); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewBalancer([]packet.Address{addr(0), addr(0)}, 1, nil); err == nil {
		t.Error("duplicate unit accepted")
	}
}

func TestAssignLeastLoaded(t *testing.T) {
	b := pool(t, 2, 100)
	u1, err := b.Assign(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := b.Assign(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if u1 == u2 {
		t.Error("second stream not spread to the idle unit")
	}
	// Third goes to the cooler unit (the one holding 10).
	u3, err := b.Assign(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if u3 != u2 {
		t.Errorf("third stream on %v, want %v", u3, u2)
	}
}

func TestAssignErrors(t *testing.T) {
	b := pool(t, 1, 100)
	if _, err := b.Assign(1, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := b.Assign(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Assign(1, 10); err == nil {
		t.Error("duplicate stream accepted")
	}
}

func TestPinAndRebalance(t *testing.T) {
	b := pool(t, 2, 100)
	if _, err := b.Assign(1, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Assign(2, 50); err != nil {
		t.Fatal(err)
	}
	// Pin both to unit 0 to create imbalance.
	if err := b.Pin(1, addr(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Pin(2, addr(0)); err != nil {
		t.Fatal(err)
	}
	if b.Imbalance() < 1.9 {
		t.Fatalf("expected heavy imbalance, got %g", b.Imbalance())
	}
	// Pinned streams never move.
	if moves := b.Rebalance(); moves != 0 {
		t.Errorf("rebalance moved %d pinned streams", moves)
	}
	// Unpin one: rebalance fixes it.
	if err := b.Unpin(2); err != nil {
		t.Fatal(err)
	}
	if moves := b.Rebalance(); moves != 1 {
		t.Errorf("rebalance moves = %d, want 1", moves)
	}
	if got := b.Imbalance(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("imbalance after rebalance = %g, want 1.0", got)
	}
}

func TestPinErrors(t *testing.T) {
	b := pool(t, 2, 100)
	if err := b.Pin(9, addr(0)); err == nil {
		t.Error("pin of missing stream accepted")
	}
	if _, err := b.Assign(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := b.Pin(1, addr(9)); err == nil {
		t.Error("pin to missing unit accepted")
	}
	if err := b.Unpin(9); err == nil {
		t.Error("unpin of missing stream accepted")
	}
}

func TestRelease(t *testing.T) {
	b := pool(t, 1, 100)
	if _, err := b.Assign(1, 40); err != nil {
		t.Fatal(err)
	}
	if err := b.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := b.Release(1); err == nil {
		t.Error("double release accepted")
	}
	if u := b.MeanUtilization(); u != 0 {
		t.Errorf("utilization after release = %g, want 0", u)
	}
}

func TestLoadsSorted(t *testing.T) {
	b := pool(t, 3, 100)
	if _, err := b.Assign(1, 90); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Assign(2, 30); err != nil {
		t.Fatal(err)
	}
	loads := b.Loads()
	if len(loads) != 3 {
		t.Fatalf("Loads = %d entries", len(loads))
	}
	if loads[0].Assigned != 90 || loads[1].Assigned != 30 || loads[2].Assigned != 0 {
		t.Errorf("loads not sorted by utilization: %+v", loads)
	}
	if loads[0].Utilization() != 0.9 {
		t.Errorf("utilization = %g, want 0.9", loads[0].Utilization())
	}
}

func TestStreamLookup(t *testing.T) {
	b := pool(t, 1, 100)
	if _, err := b.Assign(5, 10); err != nil {
		t.Fatal(err)
	}
	s, err := b.Stream(5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rate != 10 || s.Pinned {
		t.Errorf("stream = %+v", s)
	}
	if _, err := b.Stream(6); err == nil {
		t.Error("missing stream lookup succeeded")
	}
}

func TestRemoveUnitDrains(t *testing.T) {
	b := pool(t, 2, 100)
	u, err := b.Assign(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveUnit(u); err != nil {
		t.Fatal(err)
	}
	s, err := b.Stream(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Unit == u {
		t.Error("stream still on removed unit")
	}
	if err := b.RemoveUnit(addr(9)); err == nil {
		t.Error("remove of missing unit accepted")
	}
}

func TestRemoveUnitBlockedByPin(t *testing.T) {
	b := pool(t, 2, 100)
	u, err := b.Assign(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Pin(1, u); err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveUnit(u); err == nil {
		t.Error("removed unit hosting pinned stream")
	}
}

func TestManyStreamsBalanceEvenly(t *testing.T) {
	b := pool(t, 4, 1000)
	for i := uint32(0); i < 100; i++ {
		if _, err := b.Assign(i, float64(1+i%7)); err != nil {
			t.Fatal(err)
		}
	}
	b.Rebalance()
	if imb := b.Imbalance(); imb > 1.2 {
		t.Errorf("imbalance after rebalance = %g, want <= 1.2", imb)
	}
}

func TestSLAControllerScaleOutAndIn(t *testing.T) {
	b := pool(t, 2, 100)
	spares := []packet.Address{addr(10), addr(11)}
	ctrl, err := NewSLAController(b, spares, 100, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Load both units past the band.
	if _, err := b.Assign(1, 90); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Assign(2, 90); err != nil {
		t.Fatal(err)
	}
	net, err := ctrl.Settle(10)
	if err != nil {
		t.Fatal(err)
	}
	if net < 1 {
		t.Errorf("controller did not scale out (net %d)", net)
	}
	if b.MeanUtilization() > 0.8 {
		t.Errorf("utilization still above band: %g", b.MeanUtilization())
	}
	before := ctrl.ActiveSpares()
	if before == 0 {
		t.Fatal("no spares deployed")
	}
	// Drop the load: the controller returns spares.
	if err := b.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := b.Release(2); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Settle(10); err != nil {
		t.Fatal(err)
	}
	if ctrl.ActiveSpares() >= before {
		t.Errorf("controller did not scale in (%d spares still active)", ctrl.ActiveSpares())
	}
}

func TestSLAControllerValidation(t *testing.T) {
	b := pool(t, 1, 100)
	if _, err := NewSLAController(nil, nil, 100, 0.2, 0.8); err == nil {
		t.Error("nil balancer accepted")
	}
	if _, err := NewSLAController(b, nil, 0, 0.2, 0.8); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewSLAController(b, nil, 100, 0.8, 0.2); err == nil {
		t.Error("inverted band accepted")
	}
	if _, err := NewSLAController(b, nil, 100, -0.1, 0.8); err == nil {
		t.Error("negative low accepted")
	}
	if _, err := NewSLAController(b, nil, 100, 0.2, 1.5); err == nil {
		t.Error("high > 1 accepted")
	}
}

func TestSLAControllerNoSpares(t *testing.T) {
	b := pool(t, 1, 100)
	ctrl, err := NewSLAController(b, nil, 100, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Assign(1, 95); err != nil {
		t.Fatal(err)
	}
	act, err := ctrl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if act != 0 {
		t.Errorf("scaled out with no spares: %d", act)
	}
	if ctrl.SparesLeft() != 0 {
		t.Errorf("SparesLeft = %d", ctrl.SparesLeft())
	}
}
