// Package resource implements Section IV.C of the paper: "Traditional load
// balancing techniques, such as distributing, pinning, and measuring loads
// also apply to CIM."
//
//   - Load information management: per-unit utilization tracked from
//     assigned stream rates ("measuring latencies and bandwidth of each
//     stream, as well as usage of individual and aggregate resources").
//   - Load balancing: streams assigned to, and rebalanced across,
//     under-utilized units; pinning holds a stream on a specific unit.
//   - Closed loops: an SLA controller that grows or shrinks the active
//     unit pool to hold utilization inside a target band.
package resource

import (
	"fmt"
	"sort"

	"cimrev/internal/metrics"
	"cimrev/internal/packet"
)

// Stream is a unit of assignable load.
type Stream struct {
	// ID identifies the stream.
	ID uint32
	// Rate is the stream's demand in work units per second.
	Rate float64
	// Unit is the current assignment.
	Unit packet.Address
	// Pinned streams are never moved by Rebalance.
	Pinned bool
}

// UnitLoad reports one unit's load state.
type UnitLoad struct {
	Addr packet.Address
	// Capacity is the unit's work units per second.
	Capacity float64
	// Assigned is the sum of assigned stream rates.
	Assigned float64
}

// Utilization returns Assigned/Capacity.
func (u UnitLoad) Utilization() float64 {
	if u.Capacity == 0 {
		return 0
	}
	return u.Assigned / u.Capacity
}

// Balancer distributes streams over a pool of units.
type Balancer struct {
	units   map[packet.Address]*UnitLoad
	streams map[uint32]*Stream
	reg     *metrics.Registry
}

// NewBalancer creates a balancer over the given units, each with the given
// capacity. reg may be nil.
func NewBalancer(units []packet.Address, capacity float64, reg *metrics.Registry) (*Balancer, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("resource: need at least one unit")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("resource: capacity must be positive, got %g", capacity)
	}
	b := &Balancer{
		units:   make(map[packet.Address]*UnitLoad, len(units)),
		streams: make(map[uint32]*Stream),
		reg:     reg,
	}
	for _, a := range units {
		if _, dup := b.units[a]; dup {
			return nil, fmt.Errorf("resource: duplicate unit %v", a)
		}
		b.units[a] = &UnitLoad{Addr: a, Capacity: capacity}
	}
	return b, nil
}

// AddUnit grows the pool (the closed-loop scale-out action).
func (b *Balancer) AddUnit(addr packet.Address, capacity float64) error {
	if capacity <= 0 {
		return fmt.Errorf("resource: capacity must be positive, got %g", capacity)
	}
	if _, dup := b.units[addr]; dup {
		return fmt.Errorf("resource: unit %v already in pool", addr)
	}
	b.units[addr] = &UnitLoad{Addr: addr, Capacity: capacity}
	return nil
}

// RemoveUnit drains and removes a unit, reassigning its unpinned streams.
// It fails if any pinned stream lives there.
func (b *Balancer) RemoveUnit(addr packet.Address) error {
	u, ok := b.units[addr]
	if !ok {
		return fmt.Errorf("resource: no unit %v", addr)
	}
	var moving []*Stream
	for _, s := range b.streams {
		if s.Unit == addr {
			if s.Pinned {
				return fmt.Errorf("resource: unit %v hosts pinned stream %d", addr, s.ID)
			}
			moving = append(moving, s)
		}
	}
	sort.Slice(moving, func(i, j int) bool { return moving[i].ID < moving[j].ID })
	delete(b.units, addr)
	_ = u
	for _, s := range moving {
		target, err := b.leastLoaded()
		if err != nil {
			return fmt.Errorf("resource: drain %v: %w", addr, err)
		}
		b.move(s, target)
	}
	return nil
}

// Assign places a new stream on the least-loaded unit.
func (b *Balancer) Assign(id uint32, rate float64) (packet.Address, error) {
	if rate <= 0 {
		return packet.Address{}, fmt.Errorf("resource: rate must be positive, got %g", rate)
	}
	if _, dup := b.streams[id]; dup {
		return packet.Address{}, fmt.Errorf("resource: stream %d already assigned", id)
	}
	target, err := b.leastLoaded()
	if err != nil {
		return packet.Address{}, err
	}
	s := &Stream{ID: id, Rate: rate, Unit: target.Addr}
	b.streams[id] = s
	target.Assigned += rate
	if b.reg != nil {
		b.reg.Counter("resource.assigned").Inc()
	}
	return target.Addr, nil
}

// Pin fixes a stream on a specific unit ("some of the streams may need to
// be pinned to given CIM modules").
func (b *Balancer) Pin(id uint32, addr packet.Address) error {
	s, ok := b.streams[id]
	if !ok {
		return fmt.Errorf("resource: no stream %d", id)
	}
	target, ok := b.units[addr]
	if !ok {
		return fmt.Errorf("resource: no unit %v", addr)
	}
	if s.Unit != addr {
		b.move(s, target)
	}
	s.Pinned = true
	return nil
}

// Unpin releases a pinned stream for rebalancing.
func (b *Balancer) Unpin(id uint32) error {
	s, ok := b.streams[id]
	if !ok {
		return fmt.Errorf("resource: no stream %d", id)
	}
	s.Pinned = false
	return nil
}

// Release removes a stream from the pool.
func (b *Balancer) Release(id uint32) error {
	s, ok := b.streams[id]
	if !ok {
		return fmt.Errorf("resource: no stream %d", id)
	}
	if u, ok := b.units[s.Unit]; ok {
		u.Assigned -= s.Rate
	}
	delete(b.streams, id)
	return nil
}

// Stream returns a copy of the stream's state.
func (b *Balancer) Stream(id uint32) (Stream, error) {
	s, ok := b.streams[id]
	if !ok {
		return Stream{}, fmt.Errorf("resource: no stream %d", id)
	}
	return *s, nil
}

// Loads returns per-unit load sorted by descending utilization.
func (b *Balancer) Loads() []UnitLoad {
	out := make([]UnitLoad, 0, len(b.units))
	for _, u := range b.units {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utilization() != out[j].Utilization() {
			return out[i].Utilization() > out[j].Utilization()
		}
		return less(out[i].Addr, out[j].Addr)
	})
	return out
}

// MeanUtilization returns aggregate assigned rate over aggregate capacity.
func (b *Balancer) MeanUtilization() float64 {
	var assigned, capacity float64
	for _, u := range b.units {
		assigned += u.Assigned
		capacity += u.Capacity
	}
	if capacity == 0 {
		return 0
	}
	return assigned / capacity
}

// Imbalance returns max utilization over mean utilization (1.0 = perfectly
// balanced); 0 when idle.
func (b *Balancer) Imbalance() float64 {
	mean := b.MeanUtilization()
	if mean == 0 {
		return 0
	}
	var maxU float64
	for _, u := range b.units {
		if ut := u.Utilization(); ut > maxU {
			maxU = ut
		}
	}
	return maxU / mean
}

// Rebalance greedily moves unpinned streams from the hottest unit to the
// coolest until the imbalance stops improving. It returns the number of
// moves ("redirecting streams to underutilized CIM components").
func (b *Balancer) Rebalance() int {
	moves := 0
	for iter := 0; iter < 10*len(b.streams)+10; iter++ {
		hot, cold := b.extremes()
		if hot == nil || cold == nil || hot == cold {
			return moves
		}
		gap := hot.Utilization() - cold.Utilization()
		if gap <= 1e-9 {
			return moves
		}
		// Best unpinned stream on hot whose move narrows the gap.
		var best *Stream
		for _, s := range b.streams {
			if s.Unit != hot.Addr || s.Pinned {
				continue
			}
			// Moving rate r changes the gap by 2r/capacity-ish; pick the
			// largest stream that does not overshoot.
			newHot := (hot.Assigned - s.Rate) / hot.Capacity
			newCold := (cold.Assigned + s.Rate) / cold.Capacity
			if newCold > newHot+gap {
				continue // would overshoot into worse imbalance
			}
			if best == nil || s.Rate > best.Rate || (s.Rate == best.Rate && s.ID < best.ID) {
				best = s
			}
		}
		if best == nil {
			return moves
		}
		before := b.Imbalance()
		b.move(best, cold)
		if b.Imbalance() >= before {
			// Undo a non-improving move and stop.
			b.move(best, hot)
			return moves
		}
		moves++
		if b.reg != nil {
			b.reg.Counter("resource.moves").Inc()
		}
	}
	return moves
}

func (b *Balancer) move(s *Stream, to *UnitLoad) {
	if from, ok := b.units[s.Unit]; ok {
		from.Assigned -= s.Rate
	}
	to.Assigned += s.Rate
	s.Unit = to.Addr
}

func (b *Balancer) leastLoaded() (*UnitLoad, error) {
	var best *UnitLoad
	for _, u := range b.units {
		if best == nil || u.Utilization() < best.Utilization() ||
			(u.Utilization() == best.Utilization() && less(u.Addr, best.Addr)) {
			best = u
		}
	}
	if best == nil {
		return nil, fmt.Errorf("resource: pool is empty")
	}
	return best, nil
}

func (b *Balancer) extremes() (hot, cold *UnitLoad) {
	for _, u := range b.units {
		if hot == nil || u.Utilization() > hot.Utilization() ||
			(u.Utilization() == hot.Utilization() && less(u.Addr, hot.Addr)) {
			hot = u
		}
		if cold == nil || u.Utilization() < cold.Utilization() ||
			(u.Utilization() == cold.Utilization() && less(u.Addr, cold.Addr)) {
			cold = u
		}
	}
	return hot, cold
}

func less(a, b packet.Address) bool {
	if a.Board != b.Board {
		return a.Board < b.Board
	}
	if a.Tile != b.Tile {
		return a.Tile < b.Tile
	}
	return a.Unit < b.Unit
}
