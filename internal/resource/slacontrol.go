package resource

import (
	"fmt"

	"cimrev/internal/packet"
)

// SLAController is the closed loop of Section IV.C ("performance of certain
// parts of the CIM modules may influence others, which can be used to
// manage performance according to given SLA agreements"): it watches the
// balancer's mean utilization and grows or shrinks the active pool from a
// reserve of spare units to hold utilization inside [Low, High].
type SLAController struct {
	balancer *Balancer
	spares   []packet.Address
	inUse    []packet.Address
	capacity float64

	// Low and High bound the target utilization band.
	Low, High float64
}

// NewSLAController wraps a balancer with a reserve of spare units.
func NewSLAController(b *Balancer, spares []packet.Address, capacity, low, high float64) (*SLAController, error) {
	if b == nil {
		return nil, fmt.Errorf("resource: nil balancer")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("resource: capacity must be positive, got %g", capacity)
	}
	if low < 0 || high <= low || high > 1 {
		return nil, fmt.Errorf("resource: band [%g,%g] invalid", low, high)
	}
	return &SLAController{
		balancer: b,
		spares:   append([]packet.Address(nil), spares...),
		capacity: capacity,
		Low:      low,
		High:     high,
	}, nil
}

// SparesLeft returns how many spare units remain in reserve.
func (c *SLAController) SparesLeft() int { return len(c.spares) }

// ActiveSpares returns how many reserve units are currently deployed.
func (c *SLAController) ActiveSpares() int { return len(c.inUse) }

// Step runs one control iteration: scale out if utilization exceeds High,
// scale in (returning a spare to reserve) if below Low with spares
// deployed. It returns +1, -1, or 0 for the action taken.
func (c *SLAController) Step() (int, error) {
	u := c.balancer.MeanUtilization()
	switch {
	case u > c.High && len(c.spares) > 0:
		spare := c.spares[len(c.spares)-1]
		if err := c.balancer.AddUnit(spare, c.capacity); err != nil {
			return 0, fmt.Errorf("resource: scale out: %w", err)
		}
		c.spares = c.spares[:len(c.spares)-1]
		c.inUse = append(c.inUse, spare)
		c.balancer.Rebalance()
		return 1, nil
	case u < c.Low && len(c.inUse) > 0:
		spare := c.inUse[len(c.inUse)-1]
		if err := c.balancer.RemoveUnit(spare); err != nil {
			// A pinned stream blocks the drain; hold steady.
			return 0, nil
		}
		c.inUse = c.inUse[:len(c.inUse)-1]
		c.spares = append(c.spares, spare)
		c.balancer.Rebalance()
		return -1, nil
	default:
		return 0, nil
	}
}

// Settle runs Step until it holds steady or maxIters passes, returning the
// net scaling actions.
func (c *SLAController) Settle(maxIters int) (int, error) {
	net := 0
	for i := 0; i < maxIters; i++ {
		act, err := c.Step()
		if err != nil {
			return net, err
		}
		if act == 0 {
			return net, nil
		}
		net += act
	}
	return net, nil
}
