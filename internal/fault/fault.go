// Package fault implements Section V.A of the paper:
//
//   - Fault detection "can use extra bits on data": packets carry a CRC
//     checksum verified at component boundaries.
//   - Fault containment: detected-bad data is dropped at the boundary so it
//     cannot spread ("prevent ... silent data corruption").
//   - Fault prevention "through redundancy of information and components":
//     spare units shadow primaries.
//   - Fault recovery "by failing over to redundant components": streams
//     redirect to the spare, and "data can be held in preceding components
//     until computation is completed or in case of failure redirected".
package fault

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"cimrev/internal/cim"
	"cimrev/internal/metrics"
	"cimrev/internal/packet"
)

// Checksum computes the CRC-32 "extra bits" protecting a payload.
func Checksum(payload []float64) uint32 {
	buf := make([]byte, 8*len(payload))
	for i, v := range payload {
		binary.BigEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return crc32.ChecksumIEEE(buf)
}

// Seal appends the checksum to the payload as a trailing guard value so it
// travels with the data through the fabric.
func Seal(payload []float64) []float64 {
	out := make([]float64, len(payload)+1)
	copy(out, payload)
	out[len(payload)] = float64(Checksum(payload))
	return out
}

// Open verifies and strips the trailing checksum. It returns the original
// payload, or an error if the data was corrupted in flight. The guard
// value itself is validated before conversion: a corrupted trailer that is
// NaN, infinite, negative, fractional, or beyond uint32 range is reported
// as corruption explicitly instead of being collapsed by a float-to-int
// conversion (which would turn distinct corruptions into aliased guards
// and, for NaN/Inf, platform-dependent values).
func Open(sealed []float64) ([]float64, error) {
	if len(sealed) < 1 {
		return nil, fmt.Errorf("fault: sealed payload too short")
	}
	payload := sealed[:len(sealed)-1]
	g := sealed[len(sealed)-1]
	switch {
	case math.IsNaN(g):
		return nil, fmt.Errorf("fault: guard value is NaN")
	case math.IsInf(g, 0):
		return nil, fmt.Errorf("fault: guard value is %g", g)
	case g != math.Trunc(g):
		return nil, fmt.Errorf("fault: guard value %g is not an integer", g)
	case g < 0 || g > math.MaxUint32:
		return nil, fmt.Errorf("fault: guard value %g outside uint32 range", g)
	}
	want := uint32(g)
	if got := Checksum(payload); got != want {
		return nil, fmt.Errorf("fault: checksum mismatch (got %#x, want %#x)", got, want)
	}
	return append([]float64(nil), payload...), nil
}

// FlipBit corrupts one bit of element idx in place — the fault-injection
// primitive used by tests and the failure-injection experiments.
func FlipBit(payload []float64, idx int, bit uint) error {
	if idx < 0 || idx >= len(payload) {
		return fmt.Errorf("fault: index %d outside payload of %d", idx, len(payload))
	}
	if bit > 63 {
		return fmt.Errorf("fault: bit %d outside [0,63]", bit)
	}
	payload[idx] = math.Float64frombits(math.Float64bits(payload[idx]) ^ (1 << bit))
	return nil
}

// Guard manages redundancy and recovery for a fabric.
type Guard struct {
	fabric *cim.Fabric
	reg    *metrics.Registry

	// spares maps primary unit -> spare unit.
	spares map[packet.Address]packet.Address
	// held retains injected streams for replay ("data can be held in
	// preceding components"), keyed by entry unit.
	held map[packet.Address][][]float64
}

// NewGuard wraps a fabric. reg may be nil.
func NewGuard(fabric *cim.Fabric, reg *metrics.Registry) (*Guard, error) {
	if fabric == nil {
		return nil, fmt.Errorf("fault: nil fabric")
	}
	return &Guard{
		fabric: fabric,
		reg:    reg,
		spares: make(map[packet.Address]packet.Address),
		held:   make(map[packet.Address][][]float64),
	}, nil
}

// AddSpare registers spare as the redundant replacement for primary. Both
// units must exist; the caller is responsible for configuring the spare
// identically (same function, same weights).
func (g *Guard) AddSpare(primary, spare packet.Address) error {
	if primary == spare {
		return fmt.Errorf("fault: unit %v cannot spare itself", primary)
	}
	if _, err := g.fabric.Unit(primary); err != nil {
		return err
	}
	su, err := g.fabric.Unit(spare)
	if err != nil {
		return err
	}
	if su.Failed() {
		return fmt.Errorf("fault: spare %v is already failed", spare)
	}
	if _, dup := g.spares[primary]; dup {
		return fmt.Errorf("fault: unit %v already has a spare", primary)
	}
	g.spares[primary] = spare
	return nil
}

// Spare returns the registered spare for primary.
func (g *Guard) Spare(primary packet.Address) (packet.Address, bool) {
	s, ok := g.spares[primary]
	return s, ok
}

// Fail injects a unit failure and recovers: the primary is disabled
// (containment), and if a spare exists the primary's edges are rewired to
// it (stream redirection). It reports whether recovery happened.
func (g *Guard) Fail(primary packet.Address) (recovered bool, err error) {
	preds, err := g.fabric.Predecessors(primary)
	if err != nil {
		return false, err
	}
	succs, err := g.fabric.Successors(primary)
	if err != nil {
		return false, err
	}
	if err := g.fabric.DisableUnit(primary); err != nil {
		return false, err
	}
	if g.reg != nil {
		g.reg.Counter("fault.injected").Inc()
	}

	spare, ok := g.spares[primary]
	if !ok {
		return false, nil
	}
	delete(g.spares, primary)
	for _, p := range preds {
		if err := g.fabric.Connect(p, spare); err != nil {
			return false, fmt.Errorf("fault: rewire %v->%v: %w", p, spare, err)
		}
	}
	for _, s := range succs {
		if s == spare {
			continue
		}
		if err := g.fabric.Connect(spare, s); err != nil {
			return false, fmt.Errorf("fault: rewire %v->%v: %w", spare, s, err)
		}
	}
	if g.reg != nil {
		g.reg.Counter("fault.recovered").Inc()
	}
	return true, nil
}

// StreamHeld injects data while retaining a copy for replay.
func (g *Guard) StreamHeld(addr packet.Address, data []float64) error {
	if err := g.fabric.Stream(addr, data); err != nil {
		return err
	}
	g.held[addr] = append(g.held[addr], append([]float64(nil), data...))
	return nil
}

// Replay re-injects every held stream for addr (after a failover) and
// reports how many were replayed.
func (g *Guard) Replay(addr packet.Address) (int, error) {
	streams := g.held[addr]
	for i, data := range streams {
		if err := g.fabric.Stream(addr, data); err != nil {
			return i, fmt.Errorf("fault: replay %d: %w", i, err)
		}
	}
	if g.reg != nil {
		g.reg.Counter("fault.replays").Add(int64(len(streams)))
	}
	return len(streams), nil
}

// Ack discards held streams for addr once downstream results are confirmed
// ("until computation is completed").
func (g *Guard) Ack(addr packet.Address) {
	delete(g.held, addr)
}

// HeldCount returns how many streams are retained for addr.
func (g *Guard) HeldCount(addr packet.Address) int { return len(g.held[addr]) }
