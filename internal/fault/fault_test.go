package fault

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cimrev/internal/cim"
	"cimrev/internal/isa"
	"cimrev/internal/metrics"
	"cimrev/internal/packet"
)

func addr(tile, unit uint16) packet.Address { return packet.Address{Tile: tile, Unit: unit} }

func TestChecksumSealOpen(t *testing.T) {
	payload := []float64{1.5, -2.25, 3.75}
	sealed := Seal(payload)
	if len(sealed) != 4 {
		t.Fatalf("sealed length = %d, want 4", len(sealed))
	}
	got, err := Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Errorf("payload[%d] = %g, want %g", i, got[i], payload[i])
		}
	}
}

func TestOpenDetectsCorruption(t *testing.T) {
	payload := []float64{1, 2, 3}
	sealed := Seal(payload)
	if err := FlipBit(sealed, 1, 17); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(sealed); err == nil {
		t.Error("corrupted payload passed checksum")
	}
}

func TestOpenDetectsChecksumCorruption(t *testing.T) {
	sealed := Seal([]float64{1, 2})
	sealed[len(sealed)-1]++
	if _, err := Open(sealed); err == nil {
		t.Error("corrupted checksum accepted")
	}
	if _, err := Open(nil); err == nil {
		t.Error("empty sealed payload accepted")
	}
}

// TestOpenRejectsMalformedGuards pins the guard-value validation: a
// trailer that cannot be a CRC-32 — NaN, ±Inf, fractional, negative, or
// past uint32 — is reported as corruption explicitly rather than silently
// collapsed by the float-to-uint32 conversion.
func TestOpenRejectsMalformedGuards(t *testing.T) {
	payload := []float64{4, 5, 6}
	for _, bad := range []float64{
		math.NaN(),
		math.Inf(1),
		math.Inf(-1),
		1.5,
		-1,
		float64(math.MaxUint32) + 1,
		1e300,
	} {
		sealed := Seal(payload)
		sealed[len(sealed)-1] = bad
		if _, err := Open(sealed); err == nil {
			t.Errorf("guard %g accepted", bad)
		}
	}
	// Boundary guards that ARE representable must still reach the checksum
	// comparison (and fail there, not in validation).
	for _, edge := range []float64{0, math.MaxUint32} {
		sealed := Seal(payload)
		sealed[len(sealed)-1] = edge
		_, err := Open(sealed)
		if err == nil {
			t.Errorf("wrong guard %g accepted", edge)
		} else if !strings.Contains(err.Error(), "mismatch") {
			t.Errorf("guard %g rejected before checksum comparison: %v", edge, err)
		}
	}
}

// Property: any single bit flip in any data element is detected.
func TestSingleBitFlipAlwaysDetected(t *testing.T) {
	f := func(vals []float64, idxRaw, bitRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		sealed := Seal(vals)
		idx := int(idxRaw) % len(vals)
		bit := uint(bitRaw) % 64
		if err := FlipBit(sealed, idx, bit); err != nil {
			return false
		}
		// A flip that lands on a NaN payload bit pattern may produce the
		// same bits only if the flip is a no-op, which FlipBit never is.
		_, err := Open(sealed)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFlipBitErrors(t *testing.T) {
	p := []float64{1}
	if err := FlipBit(p, 1, 0); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := FlipBit(p, 0, 64); err == nil {
		t.Error("out-of-range bit accepted")
	}
	if err := FlipBit(p, -1, 0); err == nil {
		t.Error("negative index accepted")
	}
}

// pipeline builds src(forward) -> mid(relu) -> sink(accumulate) with a
// configured spare for mid.
func pipeline(t *testing.T) (*cim.Fabric, *Guard, packet.Address, packet.Address, packet.Address, packet.Address) {
	t.Helper()
	cfg := cim.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 16, 16
	fabric, err := cim.NewFabric(cfg, nil, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	src, mid, spare, sink := addr(0, 0), addr(1, 0), addr(1, 1), addr(2, 0)
	for _, a := range []packet.Address{src, mid, spare, sink} {
		if _, err := fabric.AddUnit(a, cim.KindCompute, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]packet.Address{{src, mid}, {mid, sink}} {
		if err := fabric.Connect(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fabric.Configure(mid, isa.FuncReLU, nil); err != nil {
		t.Fatal(err)
	}
	if err := fabric.Configure(spare, isa.FuncReLU, nil); err != nil {
		t.Fatal(err)
	}
	if err := fabric.Configure(sink, isa.FuncAccumulate, nil); err != nil {
		t.Fatal(err)
	}
	guard, err := NewGuard(fabric, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.AddSpare(mid, spare); err != nil {
		t.Fatal(err)
	}
	return fabric, guard, src, mid, spare, sink
}

func TestGuardValidation(t *testing.T) {
	if _, err := NewGuard(nil, nil); err == nil {
		t.Error("nil fabric accepted")
	}
	_, guard, _, mid, spare, _ := pipeline(t)
	if err := guard.AddSpare(mid, spare); err == nil {
		t.Error("duplicate spare accepted")
	}
	if err := guard.AddSpare(mid, mid); err == nil {
		t.Error("self-spare accepted")
	}
	if err := guard.AddSpare(addr(9, 9), spare); err == nil {
		t.Error("missing primary accepted")
	}
	if err := guard.AddSpare(spare, addr(9, 9)); err == nil {
		t.Error("missing spare accepted")
	}
	if got, ok := guard.Spare(mid); !ok || got != spare {
		t.Errorf("Spare = %v, %v", got, ok)
	}
}

func TestFailWithoutSpareContains(t *testing.T) {
	fabric, guard, src, _, spare, sink := pipeline(t)
	// Fail the spare itself (no spare-of-spare): containment only.
	recovered, err := guard.Fail(spare)
	if err != nil {
		t.Fatal(err)
	}
	if recovered {
		t.Error("recovery reported without a spare")
	}
	// Pipeline through mid still works.
	if err := fabric.Stream(src, []float64{1}); err != nil {
		t.Fatal(err)
	}
	out, err := fabric.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[sink]) != 1 {
		t.Error("healthy path broken by unrelated failure")
	}
}

func TestFailoverRedirectsStream(t *testing.T) {
	fabric, guard, src, mid, spare, sink := pipeline(t)

	recovered, err := guard.Fail(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Fatal("failover did not happen despite spare")
	}
	// The stream now flows src -> spare -> sink.
	if err := fabric.Stream(src, []float64{-3, 4}); err != nil {
		t.Fatal(err)
	}
	out, err := fabric.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := out[sink]
	if len(res) != 1 {
		t.Fatalf("sink results = %d, want 1 (redirected)", len(res))
	}
	if res[0][0] != 0 || res[0][1] != 4 {
		t.Errorf("redirected output = %v, want [0 4] (spare ReLU)", res[0])
	}
	_ = spare
}

func TestFailTwiceRejected(t *testing.T) {
	_, guard, _, mid, _, _ := pipeline(t)
	if _, err := guard.Fail(mid); err != nil {
		t.Fatal(err)
	}
	if _, err := guard.Fail(mid); err == nil {
		t.Error("double failure accepted")
	}
}

func TestFailoverSavesInFlightToken(t *testing.T) {
	// A token still upstream of the failure is saved by the rewiring: it
	// flows through the spare without replay.
	fabric, guard, src, mid, _, sink := pipeline(t)
	if err := guard.StreamHeld(src, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if _, err := guard.Fail(mid); err != nil {
		t.Fatal(err)
	}
	out, err := fabric.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[sink]) != 1 {
		t.Error("upstream token should survive via the spare")
	}
}

func TestHeldReplayAfterUnrecoveredFailure(t *testing.T) {
	// No spare registered: the token dies at the containment boundary.
	// The held copy replays once the operator patches the path around the
	// failed unit.
	fabric, err := cim.NewFabric(cim.DefaultConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	src, mid, spare, sink := addr(0, 0), addr(1, 0), addr(1, 1), addr(2, 0)
	for _, a := range []packet.Address{src, mid, spare, sink} {
		if _, err := fabric.AddUnit(a, cim.KindCompute, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]packet.Address{{src, mid}, {mid, sink}} {
		if err := fabric.Connect(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	guard, err := NewGuard(fabric, nil)
	if err != nil {
		t.Fatal(err)
	}

	if err := guard.StreamHeld(src, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if guard.HeldCount(src) != 1 {
		t.Fatalf("HeldCount = %d, want 1", guard.HeldCount(src))
	}
	if recovered, err := guard.Fail(mid); err != nil || recovered {
		t.Fatalf("Fail = %v, %v; want contained without recovery", recovered, err)
	}
	out, err := fabric.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[sink]) != 0 {
		t.Fatal("token crossed the containment boundary")
	}

	// Manual repair: route around the dead unit, then replay held data.
	if err := fabric.Connect(src, spare); err != nil {
		t.Fatal(err)
	}
	if err := fabric.Connect(spare, sink); err != nil {
		t.Fatal(err)
	}
	n, err := guard.Replay(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d, want 1", n)
	}
	out, err = fabric.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[sink]) != 1 {
		t.Error("replayed stream did not reach the sink")
	}
	guard.Ack(src)
	if guard.HeldCount(src) != 0 {
		t.Error("Ack did not clear held streams")
	}
}

func TestReplayNothingHeld(t *testing.T) {
	_, guard, src, _, _, _ := pipeline(t)
	n, err := guard.Replay(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("replayed %d from empty hold", n)
	}
}
