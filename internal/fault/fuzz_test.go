package fault

import (
	"encoding/binary"
	"math"
	"testing"
)

// bytesToPayload reinterprets fuzz bytes as a float64 payload so the fuzzer
// can explore NaN/Inf/subnormal bit patterns, not just round numbers.
func bytesToPayload(data []byte) []float64 {
	payload := make([]float64, len(data)/8)
	for i := range payload {
		payload[i] = math.Float64frombits(binary.BigEndian.Uint64(data[8*i:]))
	}
	return payload
}

// FuzzSealOpen hardens the checksum round trip: for any payload, Seal then
// Open must succeed and return the exact bits that went in; and Open must
// never panic on an arbitrary sealed slice, however malformed its guard.
func FuzzSealOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	f.Add([]byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1, 0x40, 0x09, 0x21, 0xfb, 0x54, 0x44, 0x2d, 0x18})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload := bytesToPayload(data)

		// Round trip: Seal/Open is lossless for every payload, NaNs and
		// infinities included (the checksum runs over raw bits).
		got, err := Open(Seal(payload))
		if err != nil {
			t.Fatalf("Open(Seal(payload)): %v", err)
		}
		if len(got) != len(payload) {
			t.Fatalf("round trip length %d != %d", len(got), len(payload))
		}
		for i := range payload {
			if math.Float64bits(got[i]) != math.Float64bits(payload[i]) {
				t.Fatalf("element %d: %x != %x", i,
					math.Float64bits(got[i]), math.Float64bits(payload[i]))
			}
		}

		// Adversarial open: the raw payload treated as a sealed slice must
		// either fail cleanly or yield a payload that re-seals to the same
		// guard. No panics, no NaN/Inf guard slipping through.
		if opened, err := Open(payload); err == nil {
			g := payload[len(payload)-1]
			if g != math.Trunc(g) || math.IsNaN(g) || math.IsInf(g, 0) || g < 0 || g > math.MaxUint32 {
				t.Fatalf("Open accepted malformed guard %g", g)
			}
			if uint32(g) != Checksum(opened) {
				t.Fatalf("Open accepted guard %g but checksum is %#x", g, Checksum(opened))
			}
		}
	})
}

// FuzzFlipBit hardens the corruption primitive: any (idx, bit) either
// errors (out of range) or flips exactly one bit, in which case flipping
// again restores the original and Open detects the single flip.
func FuzzFlipBit(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 0, uint(0))
	f.Add([]byte{}, -1, uint(63))
	f.Add(make([]byte, 24), 2, uint(64))

	f.Fuzz(func(t *testing.T, data []byte, idx int, bit uint) {
		payload := bytesToPayload(data)
		sealed := Seal(payload)
		orig := append([]float64(nil), sealed...)

		err := FlipBit(sealed, idx, bit)
		outOfRange := idx < 0 || idx >= len(sealed) || bit > 63
		if outOfRange {
			if err == nil {
				t.Fatalf("FlipBit(%d, %d) on len %d: no error", idx, bit, len(sealed))
			}
			for i := range sealed {
				if math.Float64bits(sealed[i]) != math.Float64bits(orig[i]) {
					t.Fatal("failed FlipBit mutated the payload")
				}
			}
			return
		}
		if err != nil {
			t.Fatalf("in-range FlipBit(%d, %d): %v", idx, bit, err)
		}
		if _, err := Open(sealed); err == nil {
			t.Fatal("single bit flip not detected")
		}
		// Double flip restores the original bits exactly.
		if err := FlipBit(sealed, idx, bit); err != nil {
			t.Fatalf("second FlipBit: %v", err)
		}
		for i := range sealed {
			if math.Float64bits(sealed[i]) != math.Float64bits(orig[i]) {
				t.Fatalf("double flip did not restore element %d", i)
			}
		}
		if _, err := Open(sealed); err != nil {
			t.Fatalf("restored payload failed Open: %v", err)
		}
	})
}
