// Package packet defines the unit of communication in the CIM model. The
// paper grounds both its programming models (Section III.B: routing "could
// be expressed explicitly as a part of the incoming packet", and
// self-programmable dataflow "carrying code as a part of the packets") and
// its security story (Section IV.A: "packets in flight can be encrypted and
// networking key protection model can be readily applied") in packets, so
// the packet format carries data, explicit routes, and embedded programs,
// and marshals to bytes for encryption and wire-cost accounting.
package packet

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Type discriminates what a packet carries.
type Type uint8

const (
	// TypeData carries a payload of values for a dataflow stream.
	TypeData Type = iota + 1
	// TypeConfig carries a fabric configuration command.
	TypeConfig
	// TypeProgram carries executable code (self-programmable dataflow).
	TypeProgram
	// TypeControl carries control-plane messages (credits, faults, acks).
	TypeControl
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeConfig:
		return "config"
	case TypeProgram:
		return "program"
	case TypeControl:
		return "control"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Address locates a CIM component hierarchically: a board in the system, a
// tile on the board, a unit in the tile (Fig 5's micro-unit → unit → tile
// organization).
type Address struct {
	Board uint16
	Tile  uint16
	Unit  uint16
}

// String renders the address as board/tile/unit.
func (a Address) String() string {
	return fmt.Sprintf("%d/%d/%d", a.Board, a.Tile, a.Unit)
}

// StreamID identifies one dataflow stream end to end.
type StreamID uint32

// Packet is one message in flight through the CIM fabric.
type Packet struct {
	Src, Dst Address
	Stream   StreamID
	Seq      uint64
	Type     Type

	// Payload holds the stream values for TypeData packets.
	Payload []float64

	// Code holds an embedded program for TypeProgram packets
	// (self-programmable dataflow, Section III.B).
	Code []byte

	// Route optionally pins the exact path (dynamic dataflow with
	// explicit routing). Empty means the fabric routes implicitly.
	Route []Address
}

// headerBytes is the fixed wire overhead of a packet.
const headerBytes = 6 + 6 + 4 + 8 + 1 + 2 + 2 + 2 // src+dst+stream+seq+type+3 lengths

// SizeBytes returns the packet's wire size: fixed header, 8 bytes per
// payload value, embedded code, and 6 bytes per explicit hop.
func (p *Packet) SizeBytes() int {
	return headerBytes + 8*len(p.Payload) + len(p.Code) + 6*len(p.Route)
}

// Marshal encodes the packet into a self-describing byte string.
func (p *Packet) Marshal() ([]byte, error) {
	if len(p.Payload) > math.MaxUint16 {
		return nil, fmt.Errorf("packet: payload too large (%d values)", len(p.Payload))
	}
	if len(p.Code) > math.MaxUint16 {
		return nil, fmt.Errorf("packet: code too large (%d bytes)", len(p.Code))
	}
	if len(p.Route) > math.MaxUint16 {
		return nil, fmt.Errorf("packet: route too long (%d hops)", len(p.Route))
	}
	buf := make([]byte, 0, p.SizeBytes())
	buf = appendAddress(buf, p.Src)
	buf = appendAddress(buf, p.Dst)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Stream))
	buf = binary.BigEndian.AppendUint64(buf, p.Seq)
	buf = append(buf, byte(p.Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Payload)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Code)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Route)))
	for _, v := range p.Payload {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = append(buf, p.Code...)
	for _, hop := range p.Route {
		buf = appendAddress(buf, hop)
	}
	return buf, nil
}

func appendAddress(buf []byte, a Address) []byte {
	buf = binary.BigEndian.AppendUint16(buf, a.Board)
	buf = binary.BigEndian.AppendUint16(buf, a.Tile)
	buf = binary.BigEndian.AppendUint16(buf, a.Unit)
	return buf
}

// Unmarshal decodes a packet previously encoded with Marshal.
func Unmarshal(data []byte) (*Packet, error) {
	if len(data) < headerBytes {
		return nil, fmt.Errorf("packet: truncated header (%d bytes)", len(data))
	}
	var p Packet
	off := 0
	readAddr := func() Address {
		a := Address{
			Board: binary.BigEndian.Uint16(data[off:]),
			Tile:  binary.BigEndian.Uint16(data[off+2:]),
			Unit:  binary.BigEndian.Uint16(data[off+4:]),
		}
		off += 6
		return a
	}
	p.Src = readAddr()
	p.Dst = readAddr()
	p.Stream = StreamID(binary.BigEndian.Uint32(data[off:]))
	off += 4
	p.Seq = binary.BigEndian.Uint64(data[off:])
	off += 8
	p.Type = Type(data[off])
	off++
	nPayload := int(binary.BigEndian.Uint16(data[off:]))
	nCode := int(binary.BigEndian.Uint16(data[off+2:]))
	nRoute := int(binary.BigEndian.Uint16(data[off+4:]))
	off += 6

	need := off + 8*nPayload + nCode + 6*nRoute
	if len(data) != need {
		return nil, fmt.Errorf("packet: length %d != expected %d", len(data), need)
	}
	if nPayload > 0 {
		p.Payload = make([]float64, nPayload)
		for i := range p.Payload {
			p.Payload[i] = math.Float64frombits(binary.BigEndian.Uint64(data[off:]))
			off += 8
		}
	}
	if nCode > 0 {
		p.Code = make([]byte, nCode)
		copy(p.Code, data[off:off+nCode])
		off += nCode
	}
	if nRoute > 0 {
		p.Route = make([]Address, nRoute)
		for i := range p.Route {
			p.Route[i] = readAddr()
		}
	}
	return &p, nil
}

// Clone returns a deep copy so that redirected or replayed packets (fault
// recovery holds packets "in preceding components until computation is
// completed", Section V.A) never alias live buffers.
func (p *Packet) Clone() *Packet {
	c := *p
	if p.Payload != nil {
		c.Payload = append([]float64(nil), p.Payload...)
	}
	if p.Code != nil {
		c.Code = append([]byte(nil), p.Code...)
	}
	if p.Route != nil {
		c.Route = append([]Address(nil), p.Route...)
	}
	return &c
}
