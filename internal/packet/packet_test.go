package packet

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Src:     Address{Board: 1, Tile: 2, Unit: 3},
		Dst:     Address{Board: 4, Tile: 5, Unit: 6},
		Stream:  77,
		Seq:     123456789,
		Type:    TypeData,
		Payload: []float64{1.5, -2.25, math.Pi},
		Code:    []byte{0xDE, 0xAD},
		Route:   []Address{{Board: 9, Tile: 8, Unit: 7}},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := samplePacket()
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestMarshalRoundTripEmpty(t *testing.T) {
	p := &Packet{Type: TypeControl}
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != headerBytes {
		t.Errorf("empty packet size = %d, want %d", len(data), headerBytes)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch: got %+v want %+v", got, p)
	}
}

func TestSizeBytesMatchesMarshal(t *testing.T) {
	p := samplePacket()
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if p.SizeBytes() != len(data) {
		t.Errorf("SizeBytes = %d, Marshal produced %d", p.SizeBytes(), len(data))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := Unmarshal(make([]byte, headerBytes-1)); err == nil {
		t.Error("short input should fail")
	}
	p := samplePacket()
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data[:len(data)-1]); err == nil {
		t.Error("truncated body should fail")
	}
	if _, err := Unmarshal(append(data, 0)); err == nil {
		t.Error("trailing garbage should fail")
	}
}

func TestMarshalSizeLimits(t *testing.T) {
	p := &Packet{Code: make([]byte, math.MaxUint16+1)}
	if _, err := p.Marshal(); err == nil {
		t.Error("oversized code should fail")
	}
	p2 := &Packet{Payload: make([]float64, math.MaxUint16+1)}
	if _, err := p2.Marshal(); err == nil {
		t.Error("oversized payload should fail")
	}
}

func TestClone(t *testing.T) {
	p := samplePacket()
	c := p.Clone()
	if !reflect.DeepEqual(p, c) {
		t.Fatal("clone differs from original")
	}
	c.Payload[0] = 99
	c.Code[0] = 1
	c.Route[0].Board = 0
	if p.Payload[0] == 99 || p.Code[0] == 1 || p.Route[0].Board == 0 {
		t.Error("clone shares backing arrays with original")
	}
}

func TestCloneNilSlices(t *testing.T) {
	p := &Packet{Type: TypeData}
	c := p.Clone()
	if c.Payload != nil || c.Code != nil || c.Route != nil {
		t.Error("clone invented non-nil slices")
	}
}

func TestTypeString(t *testing.T) {
	tests := []struct {
		typ  Type
		want string
	}{
		{TypeData, "data"},
		{TypeConfig, "config"},
		{TypeProgram, "program"},
		{TypeControl, "control"},
		{Type(200), "type(200)"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("Type(%d).String() = %q, want %q", tt.typ, got, tt.want)
		}
	}
}

func TestAddressString(t *testing.T) {
	a := Address{Board: 1, Tile: 2, Unit: 3}
	if got := a.String(); !strings.Contains(got, "1/2/3") {
		t.Errorf("Address.String() = %q", got)
	}
}

// Property: Marshal/Unmarshal is lossless for arbitrary packets.
func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			p := &Packet{
				Src:    Address{Board: uint16(r.Uint32()), Tile: uint16(r.Uint32()), Unit: uint16(r.Uint32())},
				Dst:    Address{Board: uint16(r.Uint32()), Tile: uint16(r.Uint32()), Unit: uint16(r.Uint32())},
				Stream: StreamID(r.Uint32()),
				Seq:    r.Uint64(),
				Type:   Type(1 + r.Intn(4)),
			}
			if n := r.Intn(20); n > 0 {
				p.Payload = make([]float64, n)
				for i := range p.Payload {
					p.Payload[i] = r.NormFloat64()
				}
			}
			if n := r.Intn(20); n > 0 {
				p.Code = make([]byte, n)
				r.Read(p.Code)
			}
			if n := r.Intn(5); n > 0 {
				p.Route = make([]Address, n)
				for i := range p.Route {
					p.Route[i] = Address{Board: uint16(r.Uint32()), Tile: uint16(r.Uint32()), Unit: uint16(r.Uint32())}
				}
			}
			vals[0] = reflect.ValueOf(p)
		},
	}
	f := func(p *Packet) bool {
		data, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, got) && len(data) == p.SizeBytes()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
