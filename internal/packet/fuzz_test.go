package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the wire decoder: arbitrary bytes must never panic,
// and anything that decodes must re-encode to the same bytes (canonical
// form round trip).
func FuzzUnmarshal(f *testing.F) {
	seed := &Packet{
		Src:     Address{Board: 1, Tile: 2, Unit: 3},
		Dst:     Address{Tile: 5},
		Stream:  9,
		Seq:     77,
		Type:    TypeData,
		Payload: []float64{1.5, -2},
		Code:    []byte{0xC1, 0xA0},
		Route:   []Address{{Tile: 7}},
	}
	data, err := seed.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte{})
	f.Add(make([]byte, headerBytes))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := p.Marshal()
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
