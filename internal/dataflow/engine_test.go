package dataflow

import (
	"strings"
	"testing"

	"cimrev/internal/energy"
	"cimrev/internal/isa"
	"cimrev/internal/packet"
)

// buildPipeline creates src -> relu -> sink(accumulate).
func buildPipeline(t *testing.T) (*Graph, NodeID, NodeID, NodeID) {
	t.Helper()
	g := NewGraph()
	src := mustNode(t, g, "src", addr(1), Forward())
	relu := mustNode(t, g, "relu", addr(2), ReLU())
	sink := mustNode(t, g, "sink", addr(3), Accumulate())
	if err := g.Connect(src, relu); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(relu, sink); err != nil {
		t.Fatal(err)
	}
	return g, src, relu, sink
}

func TestEngineStaticDataflow(t *testing.T) {
	g, src, _, sink := buildPipeline(t)
	led := energy.NewLedger()
	e, err := NewEngine(g, led)
	if err != nil {
		t.Fatal(err)
	}

	if err := e.Inject(src, []float64{1, -2, 3}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	results := out[sink]
	if len(results) != 1 {
		t.Fatalf("sink received %d results, want 1", len(results))
	}
	want := []float64{1, 0, 3} // ReLU clipped -2
	for i := range want {
		if results[0][i] != want[i] {
			t.Errorf("out[%d] = %g, want %g", i, results[0][i], want[i])
		}
	}
	if led.Category("compute").EnergyPJ == 0 {
		t.Error("no compute energy charged")
	}
	if led.Category("network").EnergyPJ == 0 {
		t.Error("no network energy charged")
	}
}

func TestEngineRepeatedExecution(t *testing.T) {
	// Static dataflow executes "over and over again" (Section III.B):
	// same graph, many inputs.
	g, src, _, sink := buildPipeline(t)
	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := e.Inject(src, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[sink]) != 5 {
		t.Errorf("sink results = %d, want 5", len(out[sink]))
	}
	// Accumulate state persisted across tokens: final sum is 0+1+2+3+4.
	last := out[sink][4]
	if last[0] != 10 {
		t.Errorf("accumulated = %g, want 10", last[0])
	}
	// Outputs reset between runs.
	out2, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 0 {
		t.Errorf("second Run returned stale outputs: %v", out2)
	}
}

func TestEngineFanOut(t *testing.T) {
	g := NewGraph()
	src := mustNode(t, g, "src", addr(1), Forward())
	a := mustNode(t, g, "a", addr(2), Forward())
	b := mustNode(t, g, "b", addr(3), Forward())
	if err := g.Connect(src, a); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(src, b); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(src, []float64{7}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[a]) != 1 || len(out[b]) != 1 {
		t.Errorf("fan-out results: a=%d b=%d, want 1 each", len(out[a]), len(out[b]))
	}
}

func TestEngineDynamicRouterImplicit(t *testing.T) {
	// Router sends positive-sum payloads to pos, others to neg — routing as
	// "a function of the state in CIM and the input data".
	g := NewGraph()
	var posID, negID NodeID
	router := func(_ *State, p *packet.Packet) []NodeID {
		var sum float64
		for _, v := range p.Payload {
			sum += v
		}
		if sum > 0 {
			return []NodeID{posID}
		}
		return []NodeID{negID}
	}
	src := mustNode(t, g, "classifier", addr(1), Forward())
	posID = mustNode(t, g, "pos", addr(2), Forward())
	negID = mustNode(t, g, "neg", addr(3), Forward())
	n, _ := g.Node(src)
	n.Router = router

	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(src, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(src, []float64{-5}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[posID]) != 1 || len(out[negID]) != 1 {
		t.Errorf("router split: pos=%d neg=%d, want 1 each", len(out[posID]), len(out[negID]))
	}
}

func TestEngineDynamicRouteExplicit(t *testing.T) {
	// The packet pins its own path, skipping static successors entirely.
	g := NewGraph()
	src := mustNode(t, g, "src", addr(1), Forward())
	skip := mustNode(t, g, "skip", addr(2), Forward())
	tgt := mustNode(t, g, "target", addr(3), Forward())
	if err := g.Connect(src, skip); err != nil {
		t.Fatal(err)
	}

	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &packet.Packet{
		Dst:     addr(1),
		Type:    packet.TypeData,
		Payload: []float64{42},
		Route:   []packet.Address{addr(3)},
	}
	if err := e.InjectPacket(p); err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[tgt]) != 1 {
		t.Errorf("explicit route missed target: %v", out)
	}
	if len(out[skip]) != 0 {
		t.Error("explicit route leaked to static successor")
	}
}

func TestEngineSelfProgramming(t *testing.T) {
	// A program packet reconfigures a forward node into relu and streams
	// data through it — self-programmable dataflow.
	g := NewGraph()
	id := mustNode(t, g, "unit", addr(1), Forward())

	prog := isa.Program{
		{Op: isa.OpConfigure, Unit: addr(1), Fn: isa.FuncReLU},
		{Op: isa.OpStream, Unit: addr(1), Data: []float64{-3, 4}},
		{Op: isa.OpHalt},
	}
	code, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}

	led := energy.NewLedger()
	e, err := NewEngine(g, led)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InjectPacket(&packet.Packet{Dst: addr(1), Type: packet.TypeProgram, Code: code}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := out[id]
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	if res[0][0] != 0 || res[0][1] != 4 {
		t.Errorf("reprogrammed node output = %v, want [0 4]", res[0])
	}
	if led.Category("reconfigure").EnergyPJ == 0 {
		t.Error("no reconfiguration cost charged")
	}
}

func TestEngineSelfProgrammingConnect(t *testing.T) {
	g := NewGraph()
	a := mustNode(t, g, "a", addr(1), Forward())
	b := mustNode(t, g, "b", addr(2), Forward())
	_ = a

	prog := isa.Program{
		{Op: isa.OpConnect, Unit: addr(1), Unit2: addr(2)},
		{Op: isa.OpStream, Unit: addr(1), Data: []float64{1}},
		{Op: isa.OpHalt},
	}
	code, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InjectPacket(&packet.Packet{Dst: addr(1), Type: packet.TypeProgram, Code: code}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[b]) != 1 {
		t.Errorf("data did not flow over program-created edge: %v", out)
	}
}

func TestEngineProgramErrors(t *testing.T) {
	g := NewGraph()
	mustNode(t, g, "a", addr(1), Forward())
	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt code fails the run.
	if err := e.InjectPacket(&packet.Packet{Dst: addr(1), Type: packet.TypeProgram, Code: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Error("corrupt program accepted")
	}

	// Program referencing a missing unit fails.
	prog := isa.Program{
		{Op: isa.OpConfigure, Unit: addr(9), Fn: isa.FuncReLU},
		{Op: isa.OpHalt},
	}
	code, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InjectPacket(&packet.Packet{Dst: addr(1), Type: packet.TypeProgram, Code: code}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Error("program with missing unit accepted")
	}

	// MVM needs fabric hardware; the default factory must reject it.
	prog = isa.Program{
		{Op: isa.OpConfigure, Unit: addr(1), Fn: isa.FuncMVM},
		{Op: isa.OpHalt},
	}
	code, err = prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InjectPacket(&packet.Packet{Dst: addr(1), Type: packet.TypeProgram, Code: code}); err != nil {
		t.Fatal(err)
	}
	_, err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "fabric") {
		t.Errorf("MVM via default factory = %v, want fabric error", err)
	}
}

func TestEngineCycleGuard(t *testing.T) {
	g := NewGraph()
	a := mustNode(t, g, "a", addr(1), Forward())
	b := mustNode(t, g, "b", addr(2), Forward())
	if err := g.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(b, a); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, nil, WithMaxSteps(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(a, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Error("unbounded cycle should hit the step guard")
	}
}

func TestEngineDroppedTokenForRemovedNode(t *testing.T) {
	g, src, relu, sink := buildPipeline(t)
	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(src, []float64{1}); err != nil {
		t.Fatal(err)
	}
	// Remove the middle node while the token is queued at src: the
	// forwarded token is dropped at the missing node (containment), not an
	// engine error. Note RemoveNode also unlinks src->relu, so the output
	// lands at src itself (now a sink).
	if err := g.RemoveNode(relu); err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[sink]) != 0 {
		t.Error("token traversed a removed node")
	}
}

func TestEngineInjectErrors(t *testing.T) {
	g := NewGraph()
	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(0, []float64{1}); err == nil {
		t.Error("inject into empty graph succeeded")
	}
	if err := e.InjectPacket(&packet.Packet{Dst: addr(7)}); err == nil {
		t.Error("inject packet for unknown address succeeded")
	}
	if _, err := NewEngine(nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestEngineCustomEdgeCoster(t *testing.T) {
	g, src, _, _ := buildPipeline(t)
	led := energy.NewLedger()
	called := 0
	e, err := NewEngine(g, led, WithEdgeCoster(func(from, to NodeID, nbytes int) energy.Cost {
		called++
		return energy.Cost{LatencyPS: 1, EnergyPJ: 100}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(src, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if called != 2 { // src->relu, relu->sink
		t.Errorf("edge coster called %d times, want 2", called)
	}
	if led.Category("network").EnergyPJ != 200 {
		t.Errorf("network energy = %g, want 200", led.Category("network").EnergyPJ)
	}
}

func TestJoinFiringRule(t *testing.T) {
	// a and b feed a join that fires only when both inputs arrived.
	g := NewGraph()
	a := mustNode(t, g, "a", addr(1), Forward())
	b := mustNode(t, g, "b", addr(2), Forward())
	j := mustNode(t, g, "join", addr(3), Join(2))
	for _, src := range []NodeID{a, b} {
		if err := g.Connect(src, j); err != nil {
			t.Fatal(err)
		}
	}
	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Only one operand present: the join must not fire.
	if err := e.Inject(a, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[j]) != 0 {
		t.Fatalf("join fired with one input: %v", out[j])
	}

	// Second operand arrives: one firing with both payloads concatenated.
	if err := e.Inject(b, []float64{3}); err != nil {
		t.Fatal(err)
	}
	out, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := out[j]
	if len(res) != 1 {
		t.Fatalf("join firings = %d, want 1", len(res))
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if res[0][i] != want[i] {
			t.Errorf("joined[%d] = %g, want %g", i, res[0][i], want[i])
		}
	}

	// The join resets: the next pair fires again.
	if err := e.Inject(a, []float64{9}); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(b, []float64{8}); err != nil {
		t.Fatal(err)
	}
	out, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[j]) != 1 || out[j][0][0] != 9 || out[j][0][1] != 8 {
		t.Errorf("second firing = %v", out[j])
	}
}

func TestJoinDegenerate(t *testing.T) {
	g := NewGraph()
	j := mustNode(t, g, "join1", addr(1), Join(1))
	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(j, []float64{4}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[j]) != 1 || out[j][0][0] != 4 {
		t.Errorf("Join(1) = %v, want pass-through", out[j])
	}
}

// Property: execution is deterministic — the same graph and injection
// sequence produce identical outputs and identical ledger totals.
func TestEngineDeterminism(t *testing.T) {
	build := func() (*Graph, NodeID, NodeID) {
		g := NewGraph()
		src := mustNode(t, g, "src", addr(1), Forward())
		h1 := mustNode(t, g, "h1", addr(2), ReLU())
		h2 := mustNode(t, g, "h2", addr(3), Sigmoid())
		sink := mustNode(t, g, "sink", addr(4), Accumulate())
		for _, e := range [][2]NodeID{{src, h1}, {src, h2}, {h1, sink}, {h2, sink}} {
			if err := g.Connect(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		return g, src, sink
	}
	run := func() ([][]float64, energy.Cost) {
		g, src, sink := build()
		led := energy.NewLedger()
		e, err := NewEngine(g, led)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := e.Inject(src, []float64{float64(i) - 4.5, float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		out, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out[sink], led.Total()
	}
	out1, cost1 := run()
	out2, cost2 := run()
	if cost1 != cost2 {
		t.Errorf("costs differ: %v vs %v", cost1, cost2)
	}
	if len(out1) != len(out2) {
		t.Fatalf("output counts differ: %d vs %d", len(out1), len(out2))
	}
	for i := range out1 {
		for j := range out1[i] {
			if out1[i][j] != out2[i][j] {
				t.Fatalf("outputs diverge at %d/%d", i, j)
			}
		}
	}
}

func TestMakespanParallelBranchesOverlap(t *testing.T) {
	// src fans out to two branches that converge on distinct sinks; the
	// branches overlap in virtual time, so the makespan is far below the
	// ledger's summed busy time.
	g := NewGraph()
	src := mustNode(t, g, "src", addr(1), Forward())
	l := mustNode(t, g, "left", addr(2), Sigmoid())
	r := mustNode(t, g, "right", addr(3), Sigmoid())
	if err := g.Connect(src, l); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(src, r); err != nil {
		t.Fatal(err)
	}
	led := energy.NewLedger()
	e, err := NewEngine(g, led)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]float64, 64)
	if err := e.Inject(src, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	makespan := e.Makespan()
	if makespan <= 0 {
		t.Fatal("zero makespan")
	}
	serialized := led.Total().LatencyPS
	if makespan >= serialized {
		t.Errorf("makespan %d not below serialized busy time %d", makespan, serialized)
	}
}

func TestMakespanPipelining(t *testing.T) {
	// Many tokens through a 3-stage pipeline: stages overlap across
	// tokens, so makespan ~ fill + (n-1) x stage, well under n x depth.
	build := func() (*Engine, NodeID) {
		g := NewGraph()
		a := mustNode(t, g, "a", addr(1), Sigmoid())
		b := mustNode(t, g, "b", addr(2), Sigmoid())
		c := mustNode(t, g, "c", addr(3), Sigmoid())
		if err := g.Connect(a, b); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect(b, c); err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e, a
	}

	e1, src1 := build()
	if err := e1.Inject(src1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	single := e1.Makespan()

	const n = 10
	e2, src2 := build()
	for i := 0; i < n; i++ {
		if err := e2.Inject(src2, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	batch := e2.Makespan()
	if batch >= int64(n)*single {
		t.Errorf("batch makespan %d not below serial %d (no pipelining)", batch, int64(n)*single)
	}
	if batch <= single {
		t.Errorf("batch makespan %d impossibly at or below single %d", batch, single)
	}
}

func TestMakespanResetsBetweenRuns(t *testing.T) {
	g, src, _, _ := buildPipeline(t)
	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(src, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	first := e.Makespan()
	if err := e.Inject(src, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Makespan() != first {
		t.Errorf("identical runs have different makespans: %d vs %d", first, e.Makespan())
	}
}
