package dataflow

import (
	"fmt"

	"cimrev/internal/energy"
	"cimrev/internal/isa"
	"cimrev/internal/packet"
)

// EdgeCoster prices the transfer of nbytes along the edge from -> to. The
// CIM fabric plugs its interconnect model in here; the default charges a
// flat on-tile hop.
type EdgeCoster func(from, to NodeID, nbytes int) energy.Cost

func defaultEdgeCost(_, _ NodeID, nbytes int) energy.Cost {
	return energy.Cost{
		LatencyPS: energy.RouterHopLatencyPS,
		EnergyPJ:  float64(nbytes) * energy.LinkEnergyPJPerByte,
	}
}

// FuncFactory materializes a NodeFunc for an isa.Function during
// self-programming. The engine owns no crossbar hardware, so MVM and other
// hardware-backed functions must come from the embedding layer.
type FuncFactory func(fn isa.Function, weights [][]float64) (NodeFunc, error)

// DefaultFuncFactory supports the digital functions; it rejects FuncMVM
// because MVM needs crossbar hardware from the embedding fabric.
func DefaultFuncFactory(fn isa.Function, _ [][]float64) (NodeFunc, error) {
	switch fn {
	case isa.FuncForward:
		return Forward(), nil
	case isa.FuncReLU:
		return ReLU(), nil
	case isa.FuncSigmoid:
		return Sigmoid(), nil
	case isa.FuncAccumulate:
		return Accumulate(), nil
	case isa.FuncMaxPool:
		return MaxPool(), nil
	case isa.FuncTanh:
		return Tanh(), nil
	case isa.FuncSoftmax:
		return Softmax(), nil
	default:
		return nil, fmt.Errorf("dataflow: function %v not available without fabric hardware", fn)
	}
}

// Engine executes tokens through a Graph in deterministic FIFO order,
// charging computation and communication costs to a ledger.
type Engine struct {
	graph   *Graph
	ledger  *energy.Ledger
	edge    EdgeCoster
	factory FuncFactory

	queue    []token
	maxSteps int
	seq      uint64

	outputs map[NodeID][][]float64

	// Virtual-time tracking: nodes are resources that serialize their own
	// work while distinct nodes overlap, so a Run's completion time (the
	// makespan) reflects real pipeline and fan-out parallelism rather
	// than the sum of all work.
	busyUntil map[NodeID]int64
	makespan  int64
}

type token struct {
	node NodeID
	pkt  *packet.Packet
	// readyAt is the virtual time the token becomes available at its node.
	readyAt int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithEdgeCoster replaces the default edge cost model.
func WithEdgeCoster(ec EdgeCoster) Option {
	return func(e *Engine) { e.edge = ec }
}

// WithFuncFactory replaces the default self-programming function factory.
func WithFuncFactory(f FuncFactory) Option {
	return func(e *Engine) { e.factory = f }
}

// WithMaxSteps bounds token deliveries per Run; graphs with feedback loops
// need this to terminate. The default is 1,000,000.
func WithMaxSteps(n int) Option {
	return func(e *Engine) { e.maxSteps = n }
}

// NewEngine returns an engine over the graph, charging costs to ledger
// (which may be nil to disable accounting).
func NewEngine(g *Graph, ledger *energy.Ledger, opts ...Option) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("dataflow: nil graph")
	}
	e := &Engine{
		graph:     g,
		ledger:    ledger,
		edge:      defaultEdgeCost,
		factory:   DefaultFuncFactory,
		maxSteps:  1_000_000,
		outputs:   make(map[NodeID][][]float64),
		busyUntil: make(map[NodeID]int64),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *Graph { return e.graph }

// Inject queues a data token for the node.
func (e *Engine) Inject(node NodeID, payload []float64) error {
	n, err := e.graph.Node(node)
	if err != nil {
		return err
	}
	e.seq++
	p := &packet.Packet{
		Dst:     n.Addr,
		Seq:     e.seq,
		Type:    packet.TypeData,
		Payload: append([]float64(nil), payload...),
	}
	e.queue = append(e.queue, token{node: node, pkt: p})
	return nil
}

// InjectPacket queues an arbitrary packet for the node whose address matches
// the packet destination. Program packets will reconfigure the graph when
// delivered (self-programmable dataflow).
func (e *Engine) InjectPacket(p *packet.Packet) error {
	n, err := e.graph.NodeByAddr(p.Dst)
	if err != nil {
		return err
	}
	e.queue = append(e.queue, token{node: n.ID, pkt: p.Clone()})
	return nil
}

// Pending returns the number of queued tokens.
func (e *Engine) Pending() int { return len(e.queue) }

// Makespan returns the completion time (in picoseconds of virtual time) of
// the most recent Run: the moment the last token retired, accounting for
// node-level parallelism. Contrast with the ledger's latency, which sums
// busy time across all nodes.
func (e *Engine) Makespan() int64 { return e.makespan }

// Run delivers tokens until the queue drains, returning per-sink outputs
// accumulated since the last Run. It fails if maxSteps deliveries occur
// without draining (livelock guard for cyclic graphs).
func (e *Engine) Run() (map[NodeID][][]float64, error) {
	steps := 0
	e.makespan = 0
	for k := range e.busyUntil {
		delete(e.busyUntil, k)
	}
	for len(e.queue) > 0 {
		if steps >= e.maxSteps {
			return nil, fmt.Errorf("dataflow: exceeded %d steps with %d tokens pending", e.maxSteps, len(e.queue))
		}
		steps++
		// Deliver the earliest-ready token (FIFO among ties) so node
		// busy-time accounting sees arrivals in virtual-time order.
		best := 0
		for i := 1; i < len(e.queue); i++ {
			if e.queue[i].readyAt < e.queue[best].readyAt {
				best = i
			}
		}
		tok := e.queue[best]
		e.queue = append(e.queue[:best], e.queue[best+1:]...)
		if err := e.deliver(tok); err != nil {
			return nil, err
		}
	}
	out := e.outputs
	e.outputs = make(map[NodeID][][]float64)
	return out, nil
}

func (e *Engine) deliver(tok token) error {
	n, err := e.graph.Node(tok.node)
	if err != nil {
		// The node disappeared (fault containment / reconfiguration)
		// while the token was in flight; the token is dropped, which is
		// exactly the paper's containment semantics.
		return nil
	}

	switch tok.pkt.Type {
	case packet.TypeProgram:
		return e.applyProgram(tok.pkt.Code)
	case packet.TypeData:
		return e.applyData(n, tok)
	case packet.TypeControl, packet.TypeConfig:
		// Control packets carry no dataflow semantics at this layer.
		return nil
	default:
		return fmt.Errorf("dataflow: unknown packet type %v", tok.pkt.Type)
	}
}

func (e *Engine) applyData(n *Node, tok token) error {
	p := tok.pkt
	out, cost, err := n.Fn(&n.state, p.Payload)
	if err != nil {
		return fmt.Errorf("dataflow: node %q (%d): %w", n.Name, n.ID, err)
	}
	if e.ledger != nil {
		e.ledger.Charge("compute", cost)
	}
	// Virtual time: the node starts when both the token and the node are
	// ready, and is busy for the computation's latency.
	start := tok.readyAt
	if b := e.busyUntil[n.ID]; b > start {
		start = b
	}
	end := start + cost.LatencyPS
	e.busyUntil[n.ID] = end
	if end > e.makespan {
		e.makespan = end
	}
	if out == nil {
		// A nil output means the node did not fire (e.g. a Join still
		// waiting for its remaining inputs): nothing propagates.
		return nil
	}

	// Resolve destinations: explicit route beats router beats static edges.
	var dests []NodeID
	switch {
	case len(p.Route) > 0:
		next := p.Route[0]
		nn, err := e.graph.NodeByAddr(next)
		if err != nil {
			return fmt.Errorf("dataflow: explicit route hop %v: %w", next, err)
		}
		dests = []NodeID{nn.ID}
	case n.Router != nil:
		dests = n.Router(&n.state, p)
	}
	if dests == nil {
		dests = n.succs
	}

	if len(dests) == 0 {
		e.outputs[n.ID] = append(e.outputs[n.ID], out)
		return nil
	}

	nbytes := 8 * len(out)
	for _, d := range dests {
		dn, err := e.graph.Node(d)
		if err != nil {
			return fmt.Errorf("dataflow: node %d routes to missing node %d", n.ID, d)
		}
		edgeCost := e.edge(n.ID, d, nbytes)
		if e.ledger != nil {
			e.ledger.Charge("network", edgeCost)
		}
		e.seq++
		np := &packet.Packet{
			Src:     n.Addr,
			Dst:     dn.Addr,
			Stream:  p.Stream,
			Seq:     e.seq,
			Type:    packet.TypeData,
			Payload: append([]float64(nil), out...),
		}
		if len(p.Route) > 0 {
			np.Route = append([]packet.Address(nil), p.Route[1:]...)
		}
		e.queue = append(e.queue, token{node: d, pkt: np, readyAt: end + edgeCost.LatencyPS})
	}
	return nil
}

// applyProgram executes an embedded isa.Program against the graph — the
// self-programmable dataflow model. Supported instructions: configure
// (swap a node's function), loadweights (reconfigure via the factory),
// connect, stream, barrier, halt.
func (e *Engine) applyProgram(code []byte) error {
	prog, err := isa.Decode(code)
	if err != nil {
		return fmt.Errorf("dataflow: decode program packet: %w", err)
	}
	// loadweights preceding a configure supplies that configure's weights.
	var pendingWeights [][]float64
	var pendingAddr packet.Address
	for i, in := range prog {
		switch in.Op {
		case isa.OpLoadWeights:
			w := make([][]float64, in.Rows)
			for r := 0; r < in.Rows; r++ {
				w[r] = append([]float64(nil), in.Data[r*in.Cols:(r+1)*in.Cols]...)
			}
			pendingWeights, pendingAddr = w, in.Unit
		case isa.OpConfigure:
			n, err := e.graph.NodeByAddr(in.Unit)
			if err != nil {
				return fmt.Errorf("dataflow: program instr %d: %w", i, err)
			}
			var weights [][]float64
			if pendingWeights != nil && pendingAddr == in.Unit {
				weights = pendingWeights
				pendingWeights = nil
			}
			fn, err := e.factory(in.Fn, weights)
			if err != nil {
				return fmt.Errorf("dataflow: program instr %d: %w", i, err)
			}
			n.Fn = fn
			n.state = State{}
			if e.ledger != nil {
				e.ledger.Charge("reconfigure", energy.Cost{
					LatencyPS: energy.EDRAMAccessLatencyPS,
					EnergyPJ:  1,
				})
			}
		case isa.OpConnect:
			src, err := e.graph.NodeByAddr(in.Unit)
			if err != nil {
				return fmt.Errorf("dataflow: program instr %d: %w", i, err)
			}
			dst, err := e.graph.NodeByAddr(in.Unit2)
			if err != nil {
				return fmt.Errorf("dataflow: program instr %d: %w", i, err)
			}
			if err := e.graph.Connect(src.ID, dst.ID); err != nil {
				return fmt.Errorf("dataflow: program instr %d: %w", i, err)
			}
		case isa.OpStream:
			n, err := e.graph.NodeByAddr(in.Unit)
			if err != nil {
				return fmt.Errorf("dataflow: program instr %d: %w", i, err)
			}
			if err := e.Inject(n.ID, in.Data); err != nil {
				return err
			}
		case isa.OpBarrier, isa.OpHalt:
			// Barriers are implicit in the engine's run-to-drain loop.
		}
	}
	return nil
}
