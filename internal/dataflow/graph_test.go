package dataflow

import (
	"math"
	"testing"

	"cimrev/internal/energy"
	"cimrev/internal/isa"
	"cimrev/internal/packet"
)

func addr(u uint16) packet.Address { return packet.Address{Unit: u} }

func mustNode(t *testing.T, g *Graph, name string, a packet.Address, fn NodeFunc) NodeID {
	t.Helper()
	id, err := g.AddNode(name, a, fn)
	if err != nil {
		t.Fatalf("AddNode(%s): %v", name, err)
	}
	return id
}

func TestGraphAddAndLookup(t *testing.T) {
	g := NewGraph()
	id := mustNode(t, g, "a", addr(1), Forward())
	n, err := g.Node(id)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "a" {
		t.Errorf("name = %q, want a", n.Name)
	}
	byAddr, err := g.NodeByAddr(addr(1))
	if err != nil {
		t.Fatal(err)
	}
	if byAddr.ID != id {
		t.Errorf("NodeByAddr id = %d, want %d", byAddr.ID, id)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
}

func TestGraphAddNodeErrors(t *testing.T) {
	g := NewGraph()
	if _, err := g.AddNode("x", addr(1), nil); err == nil {
		t.Error("nil function accepted")
	}
	mustNode(t, g, "a", addr(1), Forward())
	if _, err := g.AddNode("b", addr(1), Forward()); err == nil {
		t.Error("duplicate address accepted")
	}
	if _, err := g.Node(99); err == nil {
		t.Error("missing node lookup succeeded")
	}
	if _, err := g.NodeByAddr(addr(9)); err == nil {
		t.Error("missing address lookup succeeded")
	}
}

func TestGraphConnectDisconnect(t *testing.T) {
	g := NewGraph()
	a := mustNode(t, g, "a", addr(1), Forward())
	b := mustNode(t, g, "b", addr(2), Forward())

	if err := g.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(a, b); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.Connect(a, a); err == nil {
		t.Error("self-edge accepted")
	}
	if err := g.Connect(a, 99); err == nil {
		t.Error("edge to missing node accepted")
	}
	if err := g.Connect(99, a); err == nil {
		t.Error("edge from missing node accepted")
	}

	n, _ := g.Node(a)
	if got := n.Successors(); len(got) != 1 || got[0] != b {
		t.Errorf("Successors = %v, want [%d]", got, b)
	}

	if err := g.Disconnect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.Disconnect(a, b); err == nil {
		t.Error("double disconnect succeeded")
	}
	if err := g.Disconnect(99, b); err == nil {
		t.Error("disconnect from missing node succeeded")
	}
}

func TestGraphRemoveNode(t *testing.T) {
	g := NewGraph()
	a := mustNode(t, g, "a", addr(1), Forward())
	b := mustNode(t, g, "b", addr(2), Forward())
	c := mustNode(t, g, "c", addr(3), Forward())
	if err := g.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(c, b); err != nil {
		t.Fatal(err)
	}

	if err := g.RemoveNode(b); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveNode(b); err == nil {
		t.Error("double remove succeeded")
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2", g.Len())
	}
	na, _ := g.Node(a)
	if len(na.Successors()) != 0 {
		t.Error("dangling edge a->b survived RemoveNode")
	}
	// Address is free for reuse.
	if _, err := g.AddNode("b2", addr(2), Forward()); err != nil {
		t.Errorf("address reuse after removal failed: %v", err)
	}
}

func TestGraphSinks(t *testing.T) {
	g := NewGraph()
	a := mustNode(t, g, "a", addr(1), Forward())
	b := mustNode(t, g, "b", addr(2), Forward())
	c := mustNode(t, g, "c", addr(3), Forward())
	if err := g.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	sinks := g.Sinks()
	if len(sinks) != 2 || sinks[0] != b || sinks[1] != c {
		t.Errorf("Sinks = %v, want [%d %d]", sinks, b, c)
	}
}

func TestBuiltinFunctions(t *testing.T) {
	var s State
	tests := []struct {
		name string
		fn   NodeFunc
		in   []float64
		want []float64
	}{
		{"forward", Forward(), []float64{1, -2, 3}, []float64{1, -2, 3}},
		{"relu", ReLU(), []float64{1, -2, 0}, []float64{1, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, cost, err := tt.fn(&s, tt.in)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tt.want {
				if got[i] != tt.want[i] {
					t.Errorf("out[%d] = %g, want %g", i, got[i], tt.want[i])
				}
			}
			if cost.LatencyPS <= 0 {
				t.Error("zero-latency compute")
			}
		})
	}
}

func TestSigmoid(t *testing.T) {
	var s State
	got, _, err := Sigmoid()(&s, []float64{0, 100, -100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %g, want 0.5", got[0])
	}
	if got[1] < 0.999 || got[2] > 0.001 {
		t.Errorf("sigmoid saturation wrong: %v", got)
	}
}

func TestAccumulateState(t *testing.T) {
	fn := Accumulate()
	var s State
	if _, _, err := fn(&s, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	got, _, err := fn(&s, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 11 || got[1] != 22 {
		t.Errorf("accumulate = %v, want [11 22]", got)
	}
	// Growing input reuses existing prefix state.
	got, _, err = fn(&s, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 12 || got[1] != 23 || got[2] != 1 {
		t.Errorf("grown accumulate = %v, want [12 23 1]", got)
	}
}

func TestMaxPoolState(t *testing.T) {
	fn := MaxPool()
	var s State
	if _, _, err := fn(&s, []float64{1, 5}); err != nil {
		t.Fatal(err)
	}
	got, _, err := fn(&s, []float64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 5 {
		t.Errorf("maxpool = %v, want [3 5]", got)
	}
	// Negative values on fresh elements still work (init is -inf).
	got, _, err = fn(&s, []float64{-1, -1, -7})
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != -7 {
		t.Errorf("maxpool fresh negative = %g, want -7", got[2])
	}
}

func TestStateVecIsCopy(t *testing.T) {
	g := NewGraph()
	id := mustNode(t, g, "acc", addr(1), Accumulate())
	e, err := NewEngine(g, energy.NewLedger())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(id, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	n, _ := g.Node(id)
	v := n.StateVec()
	v[0] = 999
	if n.StateVec()[0] == 999 {
		t.Error("StateVec leaked internal state")
	}
}

func TestGraphEdgesAndPredecessors(t *testing.T) {
	g := NewGraph()
	a := mustNode(t, g, "a", addr(1), Forward())
	b := mustNode(t, g, "b", addr(2), Forward())
	c := mustNode(t, g, "c", addr(3), Forward())
	if err := g.Connect(a, c); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(b, c); err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges = %v", edges)
	}
	if edges[0] != (Edge{From: a, To: c}) || edges[1] != (Edge{From: b, To: c}) {
		t.Errorf("edges unordered: %v", edges)
	}
	preds := g.Predecessors(c)
	if len(preds) != 2 || preds[0] != a || preds[1] != b {
		t.Errorf("Predecessors(c) = %v", preds)
	}
	if got := g.Predecessors(a); len(got) != 0 {
		t.Errorf("Predecessors(a) = %v", got)
	}
}

func TestTanhAndSoftmaxBuiltins(t *testing.T) {
	var s State
	out, _, err := Tanh()(&s, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || math.Abs(out[1]-math.Tanh(2)) > 1e-12 {
		t.Errorf("tanh = %v", out)
	}
	out, cost, err := Softmax()(&s, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("uniform softmax = %v", out)
			break
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %g", sum)
	}
	if cost.LatencyPS <= 0 {
		t.Error("zero softmax cost")
	}
}

func TestDefaultFuncFactoryCoversAll(t *testing.T) {
	for _, fn := range []isa.Function{
		isa.FuncForward, isa.FuncReLU, isa.FuncSigmoid,
		isa.FuncAccumulate, isa.FuncMaxPool, isa.FuncTanh, isa.FuncSoftmax,
	} {
		nf, err := DefaultFuncFactory(fn, nil)
		if err != nil {
			t.Errorf("factory(%v): %v", fn, err)
			continue
		}
		var s State
		if _, _, err := nf(&s, []float64{1, -1}); err != nil {
			t.Errorf("factory(%v) func failed: %v", fn, err)
		}
	}
	if _, err := DefaultFuncFactory(isa.FuncMVM, nil); err == nil {
		t.Error("MVM from default factory accepted")
	}
}

func TestEngineAccessors(t *testing.T) {
	g := NewGraph()
	id := mustNode(t, g, "a", addr(1), Forward())
	e, err := NewEngine(g, nil, WithFuncFactory(DefaultFuncFactory))
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph() != g {
		t.Error("Graph accessor wrong")
	}
	if e.Pending() != 0 {
		t.Error("fresh engine has pending tokens")
	}
	if err := e.Inject(id, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Error("tokens left after Run")
	}
}

func TestEngineControlPacketIgnored(t *testing.T) {
	g := NewGraph()
	id := mustNode(t, g, "a", addr(1), Forward())
	e, err := NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InjectPacket(&packet.Packet{Dst: addr(1), Type: packet.TypeControl}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[id]) != 0 {
		t.Error("control packet produced dataflow output")
	}
}
