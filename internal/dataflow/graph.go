// Package dataflow implements the execution substrate of the CIM model. The
// paper grounds CIM in "dataflow-like architectures, where data is
// continuously input into [a] device which is able to both store some data
// and computation" (Section I), and defines three programming models
// (Section III.B) that this package implements:
//
//   - Static dataflow: a graph configured once and executed over and over.
//   - Dynamic dataflow: per-packet routing, explicit (the packet carries its
//     route) or implicit (a router function of node state and input).
//   - Self-programmable dataflow: program-carrying packets reconfigure the
//     graph in flight.
package dataflow

import (
	"fmt"
	"math"
	"sort"

	"cimrev/internal/energy"
	"cimrev/internal/packet"
)

// NodeID identifies a node within a graph.
type NodeID int

// State is the persistent per-node storage — the "data" component of the
// paper's micro-unit (control, data, processing). Stateful functions such as
// accumulation keep their running values here.
type State struct {
	// Vec is the node's persistent vector state.
	Vec []float64
}

// NodeFunc is a node's processing component: it consumes an input vector,
// may read and update the node's persistent state, and produces an output
// vector plus the cost of the computation.
type NodeFunc func(s *State, in []float64) ([]float64, energy.Cost, error)

// Router decides where a node forwards its output, given the node's state
// and the incoming packet — the implicit form of dynamic dataflow ("a
// function of the state in CIM and the input data"). Returning nil falls
// back to the node's static successors.
type Router func(s *State, p *packet.Packet) []NodeID

// Node is one vertex in the dataflow graph.
type Node struct {
	ID     NodeID
	Name   string
	Addr   packet.Address
	Fn     NodeFunc
	Router Router

	state State
	succs []NodeID
}

// Successors returns a copy of the node's static successor list.
func (n *Node) Successors() []NodeID {
	return append([]NodeID(nil), n.succs...)
}

// StateVec returns a copy of the node's persistent state vector.
func (n *Node) StateVec() []float64 {
	return append([]float64(nil), n.state.Vec...)
}

// Graph is a mutable dataflow graph. Mutability is the point: dynamic and
// self-programmable dataflow reconfigure it between (or during) runs.
// Graph is not safe for concurrent mutation; the Engine serializes access.
type Graph struct {
	nodes  map[NodeID]*Node
	byAddr map[packet.Address]NodeID
	nextID NodeID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes:  make(map[NodeID]*Node),
		byAddr: make(map[packet.Address]NodeID),
	}
}

// AddNode adds a node with the given name, fabric address, and function,
// returning its ID. The address must be unique within the graph.
func (g *Graph) AddNode(name string, addr packet.Address, fn NodeFunc) (NodeID, error) {
	if fn == nil {
		return 0, fmt.Errorf("dataflow: node %q needs a function", name)
	}
	if _, dup := g.byAddr[addr]; dup {
		return 0, fmt.Errorf("dataflow: address %v already in use", addr)
	}
	id := g.nextID
	g.nextID++
	g.nodes[id] = &Node{ID: id, Name: name, Addr: addr, Fn: fn}
	g.byAddr[addr] = id
	return id, nil
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (*Node, error) {
	n, ok := g.nodes[id]
	if !ok {
		return nil, fmt.Errorf("dataflow: no node %d", id)
	}
	return n, nil
}

// NodeByAddr resolves a fabric address to a node.
func (g *Graph) NodeByAddr(addr packet.Address) (*Node, error) {
	id, ok := g.byAddr[addr]
	if !ok {
		return nil, fmt.Errorf("dataflow: no node at %v", addr)
	}
	return g.nodes[id], nil
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// NodeIDs returns all node IDs in ascending order.
func (g *Graph) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Connect adds the edge from -> to. Duplicate edges are rejected.
func (g *Graph) Connect(from, to NodeID) error {
	src, ok := g.nodes[from]
	if !ok {
		return fmt.Errorf("dataflow: no node %d", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("dataflow: no node %d", to)
	}
	if from == to {
		return fmt.Errorf("dataflow: self-edge on node %d", from)
	}
	for _, s := range src.succs {
		if s == to {
			return fmt.Errorf("dataflow: edge %d->%d already exists", from, to)
		}
	}
	src.succs = append(src.succs, to)
	return nil
}

// Disconnect removes the edge from -> to if present.
func (g *Graph) Disconnect(from, to NodeID) error {
	src, ok := g.nodes[from]
	if !ok {
		return fmt.Errorf("dataflow: no node %d", from)
	}
	for i, s := range src.succs {
		if s == to {
			src.succs = append(src.succs[:i], src.succs[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("dataflow: no edge %d->%d", from, to)
}

// RemoveNode deletes a node and every edge touching it — the fault
// containment primitive ("boundaries of each component ... can be shut
// down", Section V.A).
func (g *Graph) RemoveNode(id NodeID) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("dataflow: no node %d", id)
	}
	delete(g.nodes, id)
	delete(g.byAddr, n.Addr)
	for _, other := range g.nodes {
		kept := other.succs[:0]
		for _, s := range other.succs {
			if s != id {
				kept = append(kept, s)
			}
		}
		other.succs = kept
	}
	return nil
}

// Edge is one directed connection.
type Edge struct {
	From, To NodeID
}

// Edges returns every edge, ordered by (From, To).
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, id := range g.NodeIDs() {
		n := g.nodes[id]
		succs := append([]NodeID(nil), n.succs...)
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, s := range succs {
			out = append(out, Edge{From: id, To: s})
		}
	}
	return out
}

// Predecessors returns the IDs of nodes with an edge into id, ascending.
func (g *Graph) Predecessors(id NodeID) []NodeID {
	var out []NodeID
	for _, nid := range g.NodeIDs() {
		for _, s := range g.nodes[nid].succs {
			if s == id {
				out = append(out, nid)
				break
			}
		}
	}
	return out
}

// Sinks returns nodes with no successors, in ID order.
func (g *Graph) Sinks() []NodeID {
	var out []NodeID
	for _, id := range g.NodeIDs() {
		if len(g.nodes[id].succs) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// --- Built-in node functions ---

// Forward passes input through unchanged at negligible cost.
func Forward() NodeFunc {
	return func(_ *State, in []float64) ([]float64, energy.Cost, error) {
		out := append([]float64(nil), in...)
		return out, energy.Cost{LatencyPS: energy.EDRAMAccessLatencyPS, EnergyPJ: float64(8*len(in)) * energy.EDRAMAccessEnergyPJPerByte}, nil
	}
}

// ReLU applies max(0,x) elementwise.
func ReLU() NodeFunc {
	return elementwise(func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return x
	})
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid() NodeFunc {
	return elementwise(func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// Tanh applies the hyperbolic tangent elementwise.
func Tanh() NodeFunc {
	return elementwise(math.Tanh)
}

// Softmax normalizes the vector into a probability distribution.
func Softmax() NodeFunc {
	return func(_ *State, in []float64) ([]float64, energy.Cost, error) {
		out := make([]float64, len(in))
		maxV := math.Inf(-1)
		for _, v := range in {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range in {
			out[i] = math.Exp(v - maxV)
			sum += out[i]
		}
		if sum > 0 {
			for i := range out {
				out[i] /= sum
			}
		}
		// Three digital passes over the vector.
		return out, energy.Cost{
			LatencyPS: 3 * energy.EDRAMAccessLatencyPS,
			EnergyPJ:  3 * float64(len(in)) * energy.ShiftAddEnergyPJ,
		}, nil
	}
}

func elementwise(f func(float64) float64) NodeFunc {
	return func(_ *State, in []float64) ([]float64, energy.Cost, error) {
		out := make([]float64, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		// One digital ALU pass over the vector.
		return out, energy.Cost{
			LatencyPS: energy.EDRAMAccessLatencyPS,
			EnergyPJ:  float64(len(in)) * energy.ShiftAddEnergyPJ,
		}, nil
	}
}

// Accumulate sums successive inputs elementwise into node state and emits
// the running sum.
func Accumulate() NodeFunc {
	return func(s *State, in []float64) ([]float64, energy.Cost, error) {
		if len(s.Vec) < len(in) {
			grown := make([]float64, len(in))
			copy(grown, s.Vec)
			s.Vec = grown
		}
		for i, v := range in {
			s.Vec[i] += v
		}
		out := append([]float64(nil), s.Vec[:len(in)]...)
		return out, energy.Cost{
			LatencyPS: energy.EDRAMAccessLatencyPS,
			EnergyPJ:  float64(len(in)) * energy.ShiftAddEnergyPJ,
		}, nil
	}
}

// Join implements the classic dataflow firing rule for multi-input nodes:
// it buffers incoming tokens and fires only when k tokens have arrived,
// emitting their concatenation (in arrival order) and resetting. Until the
// k-th token, it emits nothing — downstream nodes see no partial firings.
func Join(k int) NodeFunc {
	return func(s *State, in []float64) ([]float64, energy.Cost, error) {
		if k <= 1 {
			out := append([]float64(nil), in...)
			return out, energy.Cost{LatencyPS: energy.EDRAMAccessLatencyPS}, nil
		}
		// State layout: Vec[0] is the arrival count, the rest the buffer.
		if len(s.Vec) == 0 {
			s.Vec = []float64{0}
		}
		s.Vec = append(s.Vec, in...)
		s.Vec[0]++
		cost := energy.Cost{
			LatencyPS: energy.EDRAMAccessLatencyPS,
			EnergyPJ:  float64(8*len(in)) * energy.EDRAMAccessEnergyPJPerByte,
		}
		if int(s.Vec[0]) < k {
			return nil, cost, nil
		}
		out := append([]float64(nil), s.Vec[1:]...)
		s.Vec = []float64{0}
		return out, cost, nil
	}
}

// MaxPool emits the running elementwise maximum of everything seen.
func MaxPool() NodeFunc {
	return func(s *State, in []float64) ([]float64, energy.Cost, error) {
		if len(s.Vec) < len(in) {
			grown := make([]float64, len(in))
			copy(grown, s.Vec)
			for i := len(s.Vec); i < len(in); i++ {
				grown[i] = math.Inf(-1)
			}
			s.Vec = grown
		}
		for i, v := range in {
			if v > s.Vec[i] {
				s.Vec[i] = v
			}
		}
		out := append([]float64(nil), s.Vec[:len(in)]...)
		return out, energy.Cost{
			LatencyPS: energy.EDRAMAccessLatencyPS,
			EnergyPJ:  float64(len(in)) * energy.ShiftAddEnergyPJ,
		}, nil
	}
}
