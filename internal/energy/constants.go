package energy

// Device- and architecture-level cost constants shared by the simulators.
//
// The constants are anchored in the public literature the paper builds on:
// the ISAAC accelerator (Shafiee et al., ISCA'16) for crossbar, ADC, DAC and
// eDRAM figures; Horowitz's ISSCC'14 "computing's energy problem" numbers
// for CPU arithmetic and DRAM access energy; and vendor datasheet-scale
// figures for CPU/GPU peaks. Absolute values need only be order-of-magnitude
// faithful — every experiment in this repo reports ratios, and the ratio
// structure (who wins, by roughly what factor) is what the paper claims.
const (
	// --- Memristor crossbar (ISAAC-scale 128x128 array) ---

	// CrossbarReadLatencyPS is the latency of one analog row activation
	// cycle (one input bit applied across the array): 100ns per ISAAC's
	// crossbar read.
	CrossbarReadLatencyPS = 100_000 // 100 ns

	// CrossbarCellReadEnergyPJ is the energy of one cell participating in
	// an analog MVM cycle.
	CrossbarCellReadEnergyPJ = 0.0012

	// CrossbarWriteLatencyPS is the latency of programming one memristor
	// cell (SET/RESET with verify). Writes are ~1000x slower than reads;
	// this asymmetry is the Section VI scaling challenge.
	CrossbarWriteLatencyPS = 100_000_000 // 100 us

	// CrossbarWriteEnergyPJ is the programming energy per cell.
	CrossbarWriteEnergyPJ = 15.0

	// --- Converters ---

	// ADCConversionLatencyPS is one conversion of an 8-bit 1.28 GS/s SAR
	// ADC as used by ISAAC.
	ADCConversionLatencyPS = 781 // ~1/1.28GHz

	// ADCConversionEnergyPJ is the per-sample energy at 8-bit resolution.
	// Energy scales ~2^bits; callers adjust for other resolutions.
	ADCConversionEnergyPJ = 1.56

	// DACDriveEnergyPJ is the energy to drive one row with a 1-bit DAC
	// pulse.
	DACDriveEnergyPJ = 0.05

	// --- On-die buffers and logic ---

	// EDRAMAccessEnergyPJPerByte is the eDRAM tile buffer access energy.
	EDRAMAccessEnergyPJPerByte = 0.19

	// EDRAMAccessLatencyPS is one eDRAM buffer access.
	EDRAMAccessLatencyPS = 2_000 // 2 ns

	// SAHoldEnergyPJ is the sample-and-hold energy per column.
	SAHoldEnergyPJ = 0.001

	// ShiftAddEnergyPJ is the digital shift-and-add merge energy per
	// output element per bit-slice.
	ShiftAddEnergyPJ = 0.02

	// --- CPU (server-class, ~14nm era) ---

	// CPUFlopEnergyPJ is the energy of one double-precision FLOP including
	// instruction overheads (fetch/decode/register file), per Horowitz.
	CPUFlopEnergyPJ = 20.0

	// CPUPeakFlops is the peak FLOP/s of the modeled socket.
	CPUPeakFlops = 500e9 // 0.5 TFLOP/s

	// CPUMemBandwidth is sustained DRAM bandwidth in bytes/s.
	CPUMemBandwidth = 50e9 // 50 GB/s

	// DRAMAccessEnergyPJPerByte is DRAM access energy (~20 pJ/bit incl.
	// I/O, so ~10-20 pJ/byte at the interface; we charge 10).
	DRAMAccessEnergyPJPerByte = 10.0

	// DRAMAccessLatencyPS is one uncached DRAM access.
	DRAMAccessLatencyPS = 80_000 // 80 ns

	// CPUStaticPowerW is socket static/uncore power in watts.
	CPUStaticPowerW = 40.0

	// --- Caches ---

	// L1AccessLatencyPS, L1AccessEnergyPJPerByte: L1 hit costs.
	L1AccessLatencyPS       = 1_200 // ~4 cycles @3.3GHz
	L1AccessEnergyPJPerByte = 0.1

	// L2AccessLatencyPS, L2AccessEnergyPJPerByte: L2 hit costs.
	L2AccessLatencyPS       = 4_000
	L2AccessEnergyPJPerByte = 0.3

	// LLCAccessLatencyPS, LLCAccessEnergyPJPerByte: LLC hit costs.
	LLCAccessLatencyPS       = 12_000
	LLCAccessEnergyPJPerByte = 1.0

	// --- GPU (HBM-era accelerator) ---

	// GPUFlopEnergyPJ is single-precision MAC energy on a streaming
	// multiprocessor, cheaper than CPU thanks to SIMT amortization.
	GPUFlopEnergyPJ = 5.0

	// GPUPeakFlops is the peak FLOP/s of the modeled device.
	GPUPeakFlops = 10e12 // 10 TFLOP/s

	// GPUMemBandwidth is HBM bandwidth in bytes/s.
	GPUMemBandwidth = 900e9 // 900 GB/s

	// HBMAccessEnergyPJPerByte is HBM access energy (~4 pJ/bit → 32
	// pJ/byte is the DDR number; HBM is ~7 pJ/byte).
	HBMAccessEnergyPJPerByte = 7.0

	// GPUStaticPowerW is device static power in watts.
	GPUStaticPowerW = 50.0

	// GPUKernelLaunchLatencyPS is the fixed host-side launch overhead per
	// kernel.
	GPUKernelLaunchLatencyPS = 5_000_000 // 5 us

	// --- CIM board (suitability model scale) ---
	//
	// Board-level aggregates for the workload-suitability model (Table 2)
	// and the hybrid dispatcher's static routing prior: a board of ~1000
	// ISAAC-scale crossbars plus embedded digital micro-units. These are
	// the single source of truth — internal/suitability and
	// internal/hybrid both price the CIM side from here, exactly as the
	// Von Neumann side prices from the CPU/GPU constants above.

	// CIMPeakOps is the aggregate in-array op rate: ~1200 crossbars x
	// 16384 MACs / 100 ns.
	CIMPeakOps = 2e14

	// CIMControlFlops is the aggregate digital micro-unit rate for work
	// that does not map in-array.
	CIMControlFlops = 1e11

	// CIMMeshBandwidth is the aggregate fabric streaming bandwidth.
	CIMMeshBandwidth = 1e11

	// CIMRoundLatencyS is one cross-unit dataflow synchronization.
	CIMRoundLatencyS = 50e-9

	// CIMMVMOpEnergyPJ is in-array energy per MAC (crossbar + converters).
	CIMMVMOpEnergyPJ = 0.1

	// CIMControlOpEnergyPJ is digital micro-unit energy per op.
	CIMControlOpEnergyPJ = 5.0

	// CIMStreamEnergyPJPerByte is fabric streaming energy.
	CIMStreamEnergyPJPerByte = 2.0

	// CIMStaticPowerW is board static power.
	CIMStaticPowerW = 5.0

	// --- Interconnect ---

	// LinkEnergyPJPerByte is on-board electrical link energy.
	LinkEnergyPJPerByte = 2.0

	// PhotonicEnergyPJPerByte is the photonic link energy, independent of
	// distance (Section II.A: "communications from centimeters to
	// kilometers at the same energy per bit").
	PhotonicEnergyPJPerByte = 1.0

	// SpeedOfLightMPerS is used for photonic time-of-flight.
	SpeedOfLightMPerS = 2.0e8 // in fiber

	// RouterHopLatencyPS is per-switch traversal latency.
	RouterHopLatencyPS = 5_000 // 5 ns

	// RouterHopEnergyPJPerByte is per-switch traversal energy.
	RouterHopEnergyPJPerByte = 0.5
)
