// Package energy provides the latency and energy cost accounting used by
// every simulator in this repository.
//
// All simulations are deterministic and virtual-time based: nothing in this
// module reads wall clocks. Latency is tracked in picoseconds and energy in
// picojoules so that device-level events (sub-nanosecond, sub-picojoule) and
// system-level events (milliseconds, joules) fit in the same arithmetic
// without losing precision.
package energy

import (
	"fmt"
	"math"
)

// Cost is the fundamental accounting record: how long an operation took on
// the critical path and how much energy it consumed. Costs compose two ways:
// serially (latencies add) and in parallel (latencies max, energies always
// add).
type Cost struct {
	// LatencyPS is critical-path latency in picoseconds.
	LatencyPS int64
	// EnergyPJ is consumed energy in picojoules.
	EnergyPJ float64
}

// Zero is the identity cost for both serial and parallel composition.
var Zero = Cost{}

// Seq returns the serial composition of c followed by others: latencies and
// energies both sum.
func (c Cost) Seq(others ...Cost) Cost {
	out := c
	for _, o := range others {
		out.LatencyPS += o.LatencyPS
		out.EnergyPJ += o.EnergyPJ
	}
	return out
}

// Par returns the parallel composition of c with others: the latency is the
// maximum over all branches (they overlap in time) while energies sum.
func (c Cost) Par(others ...Cost) Cost {
	out := c
	for _, o := range others {
		if o.LatencyPS > out.LatencyPS {
			out.LatencyPS = o.LatencyPS
		}
		out.EnergyPJ += o.EnergyPJ
	}
	return out
}

// Scale returns the cost of repeating the operation n times serially.
func (c Cost) Scale(n int64) Cost {
	return Cost{LatencyPS: c.LatencyPS * n, EnergyPJ: c.EnergyPJ * float64(n)}
}

// Latency returns the latency in seconds.
func (c Cost) Latency() float64 { return float64(c.LatencyPS) * 1e-12 }

// Energy returns the energy in joules.
func (c Cost) Energy() float64 { return c.EnergyPJ * 1e-12 }

// Power returns the average power in watts over the cost's latency. A
// zero-latency cost has undefined power; Power reports 0 for it.
func (c Cost) Power() float64 {
	if c.LatencyPS == 0 {
		return 0
	}
	return c.Energy() / c.Latency()
}

// String renders the cost with human-scale units.
func (c Cost) String() string {
	return fmt.Sprintf("%s / %s", FormatLatency(c.LatencyPS), FormatEnergy(c.EnergyPJ))
}

// FormatLatency renders picoseconds using the most natural SI prefix.
func FormatLatency(ps int64) string {
	v := float64(ps)
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.3gs", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.3gms", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gus", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gns", v/1e3)
	default:
		return fmt.Sprintf("%gps", v)
	}
}

// FormatEnergy renders picojoules using the most natural SI prefix.
func FormatEnergy(pj float64) string {
	switch {
	case pj >= 1e12:
		return fmt.Sprintf("%.3gJ", pj/1e12)
	case pj >= 1e9:
		return fmt.Sprintf("%.3gmJ", pj/1e9)
	case pj >= 1e6:
		return fmt.Sprintf("%.3guJ", pj/1e6)
	case pj >= 1e3:
		return fmt.Sprintf("%.3gnJ", pj/1e3)
	default:
		return fmt.Sprintf("%.3gpJ", pj)
	}
}

// PicosecondsFromSeconds converts seconds into picoseconds, saturating at
// MaxInt64 rather than overflowing for absurdly long durations.
func PicosecondsFromSeconds(s float64) int64 {
	ps := s * 1e12
	if ps >= math.MaxInt64 {
		return math.MaxInt64
	}
	if ps <= 0 {
		return 0
	}
	return int64(ps)
}
