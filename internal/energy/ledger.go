package energy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Ledger accumulates costs by named category while tracking the overall
// critical path. A Ledger is safe for concurrent use; simulators running
// parallel components charge the same ledger from multiple goroutines.
//
// The zero value is NOT ready to use; construct with NewLedger.
type Ledger struct {
	mu       sync.Mutex
	byCat    map[string]Cost
	critical int64 // critical-path latency, advanced explicitly
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{byCat: make(map[string]Cost)}
}

// Charge records cost against category. Charge extends the critical path
// serially; use ChargeParallel when the caller knows the work overlapped
// with already-charged work.
func (l *Ledger) Charge(category string, c Cost) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byCat[category] = l.byCat[category].Seq(c)
	l.critical += c.LatencyPS
}

// ChargeParallel records the energy of cost against category and extends the
// critical path only if the cost's latency exceeds the remaining slack.
// Parallel charges model work overlapping everything charged so far in the
// current epoch; callers that need precise overlap semantics should compose
// Costs with Par before charging.
func (l *Ledger) ChargeParallel(category string, c Cost) {
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := l.byCat[category]
	l.byCat[category] = Cost{
		LatencyPS: prev.LatencyPS + c.LatencyPS,
		EnergyPJ:  prev.EnergyPJ + c.EnergyPJ,
	}
	if c.LatencyPS > l.critical {
		l.critical = c.LatencyPS
	}
}

// Total returns the summed cost across all categories with the ledger's
// critical-path latency (not the sum of category latencies).
func (l *Ledger) Total() Cost {
	l.mu.Lock()
	defer l.mu.Unlock()
	var e float64
	for _, c := range l.byCat {
		e += c.EnergyPJ
	}
	return Cost{LatencyPS: l.critical, EnergyPJ: e}
}

// Category returns the accumulated cost for one category.
func (l *Ledger) Category(name string) Cost {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.byCat[name]
}

// Categories returns the category names in sorted order.
func (l *Ledger) Categories() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.byCat))
	for k := range l.byCat {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Reset clears all accumulated costs.
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byCat = make(map[string]Cost)
	l.critical = 0
}

// Report renders a multi-line per-category breakdown followed by the total.
func (l *Ledger) Report() string {
	var b strings.Builder
	for _, name := range l.Categories() {
		c := l.Category(name)
		fmt.Fprintf(&b, "%-24s %s\n", name, c)
	}
	fmt.Fprintf(&b, "%-24s %s\n", "TOTAL", l.Total())
	return b.String()
}
