package energy

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCostSeq(t *testing.T) {
	a := Cost{LatencyPS: 10, EnergyPJ: 1.5}
	b := Cost{LatencyPS: 20, EnergyPJ: 2.5}
	got := a.Seq(b)
	want := Cost{LatencyPS: 30, EnergyPJ: 4.0}
	if got != want {
		t.Errorf("Seq = %+v, want %+v", got, want)
	}
}

func TestCostSeqMultiple(t *testing.T) {
	a := Cost{LatencyPS: 1, EnergyPJ: 1}
	got := a.Seq(a, a, a)
	if got.LatencyPS != 4 || got.EnergyPJ != 4 {
		t.Errorf("Seq x4 = %+v, want {4 4}", got)
	}
}

func TestCostPar(t *testing.T) {
	a := Cost{LatencyPS: 10, EnergyPJ: 1}
	b := Cost{LatencyPS: 25, EnergyPJ: 2}
	c := Cost{LatencyPS: 5, EnergyPJ: 3}
	got := a.Par(b, c)
	if got.LatencyPS != 25 {
		t.Errorf("Par latency = %d, want 25 (max)", got.LatencyPS)
	}
	if got.EnergyPJ != 6 {
		t.Errorf("Par energy = %g, want 6 (sum)", got.EnergyPJ)
	}
}

func TestCostScale(t *testing.T) {
	c := Cost{LatencyPS: 3, EnergyPJ: 0.5}
	got := c.Scale(4)
	if got.LatencyPS != 12 || got.EnergyPJ != 2 {
		t.Errorf("Scale(4) = %+v, want {12 2}", got)
	}
}

func TestCostScaleZero(t *testing.T) {
	c := Cost{LatencyPS: 3, EnergyPJ: 0.5}
	if got := c.Scale(0); got != Zero {
		t.Errorf("Scale(0) = %+v, want zero", got)
	}
}

func TestCostPower(t *testing.T) {
	// 1 nJ over 1 ns is 1 W.
	c := Cost{LatencyPS: 1_000, EnergyPJ: 1_000}
	if got := c.Power(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Power = %g, want 1.0 W", got)
	}
}

func TestCostPowerZeroLatency(t *testing.T) {
	c := Cost{LatencyPS: 0, EnergyPJ: 5}
	if got := c.Power(); got != 0 {
		t.Errorf("Power with zero latency = %g, want 0", got)
	}
}

func TestCostUnits(t *testing.T) {
	c := Cost{LatencyPS: 2_000_000, EnergyPJ: 3_000}
	if got := c.Latency(); math.Abs(got-2e-6) > 1e-18 {
		t.Errorf("Latency = %g, want 2e-6 s", got)
	}
	if got := c.Energy(); math.Abs(got-3e-9) > 1e-21 {
		t.Errorf("Energy = %g, want 3e-9 J", got)
	}
}

func TestFormatLatency(t *testing.T) {
	tests := []struct {
		ps   int64
		want string
	}{
		{500, "500ps"},
		{1_500, "1.5ns"},
		{2_500_000, "2.5us"},
		{3_000_000_000, "3ms"},
		{4_000_000_000_000, "4s"},
	}
	for _, tt := range tests {
		if got := FormatLatency(tt.ps); got != tt.want {
			t.Errorf("FormatLatency(%d) = %q, want %q", tt.ps, got, tt.want)
		}
	}
}

func TestFormatEnergy(t *testing.T) {
	tests := []struct {
		pj   float64
		want string
	}{
		{0.5, "0.5pJ"},
		{1_500, "1.5nJ"},
		{2_500_000, "2.5uJ"},
		{3_000_000_000, "3mJ"},
		{4_000_000_000_000, "4J"},
	}
	for _, tt := range tests {
		if got := FormatEnergy(tt.pj); got != tt.want {
			t.Errorf("FormatEnergy(%g) = %q, want %q", tt.pj, got, tt.want)
		}
	}
}

func TestPicosecondsFromSeconds(t *testing.T) {
	if got := PicosecondsFromSeconds(1e-9); got != 1000 {
		t.Errorf("1ns = %d ps, want 1000", got)
	}
	if got := PicosecondsFromSeconds(-1); got != 0 {
		t.Errorf("negative seconds = %d, want 0 (clamped)", got)
	}
	if got := PicosecondsFromSeconds(1e20); got != math.MaxInt64 {
		t.Errorf("huge seconds = %d, want MaxInt64 (saturated)", got)
	}
}

// Property: Seq is associative and Zero is its identity.
func TestCostSeqProperties(t *testing.T) {
	assoc := func(a, b, c Cost) bool {
		return a.Seq(b).Seq(c) == a.Seq(b.Seq(c))
	}
	if err := quick.Check(assoc, quickCfg()); err != nil {
		t.Errorf("Seq not associative: %v", err)
	}
	ident := func(a Cost) bool {
		return a.Seq(Zero) == a && Zero.Seq(a) == a
	}
	if err := quick.Check(ident, quickCfg()); err != nil {
		t.Errorf("Zero not Seq identity: %v", err)
	}
}

// Property: Par is commutative in latency and energy, and Par latency is
// never below either operand's latency.
func TestCostParProperties(t *testing.T) {
	comm := func(a, b Cost) bool {
		x, y := a.Par(b), b.Par(a)
		return x.LatencyPS == y.LatencyPS && math.Abs(x.EnergyPJ-y.EnergyPJ) < 1e-6
	}
	if err := quick.Check(comm, quickCfg()); err != nil {
		t.Errorf("Par not commutative: %v", err)
	}
	dominates := func(a, b Cost) bool {
		p := a.Par(b)
		return p.LatencyPS >= a.LatencyPS && p.LatencyPS >= b.LatencyPS
	}
	if err := quick.Check(dominates, quickCfg()); err != nil {
		t.Errorf("Par latency below operand: %v", err)
	}
}

// quickCfg bounds generated costs so energy sums stay finite and exactly
// comparable (small integers avoid float rounding in associativity checks).
func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(Cost{
					LatencyPS: r.Int63n(1 << 30),
					EnergyPJ:  float64(r.Int63n(1 << 20)),
				})
			}
		},
	}
}

func TestLedgerChargeAndTotal(t *testing.T) {
	l := NewLedger()
	l.Charge("compute", Cost{LatencyPS: 10, EnergyPJ: 1})
	l.Charge("memory", Cost{LatencyPS: 5, EnergyPJ: 2})
	total := l.Total()
	if total.LatencyPS != 15 {
		t.Errorf("critical path = %d, want 15", total.LatencyPS)
	}
	if total.EnergyPJ != 3 {
		t.Errorf("total energy = %g, want 3", total.EnergyPJ)
	}
	if got := l.Category("compute"); got.EnergyPJ != 1 {
		t.Errorf("compute category = %+v", got)
	}
}

func TestLedgerChargeParallel(t *testing.T) {
	l := NewLedger()
	l.Charge("a", Cost{LatencyPS: 10, EnergyPJ: 1})
	// Parallel work shorter than the current critical path must not extend it.
	l.ChargeParallel("b", Cost{LatencyPS: 5, EnergyPJ: 2})
	if got := l.Total().LatencyPS; got != 10 {
		t.Errorf("critical path = %d, want 10", got)
	}
	// Parallel work longer than it must replace it.
	l.ChargeParallel("c", Cost{LatencyPS: 50, EnergyPJ: 1})
	if got := l.Total().LatencyPS; got != 50 {
		t.Errorf("critical path = %d, want 50", got)
	}
	if got := l.Total().EnergyPJ; got != 4 {
		t.Errorf("energy = %g, want 4", got)
	}
}

func TestLedgerReset(t *testing.T) {
	l := NewLedger()
	l.Charge("x", Cost{LatencyPS: 10, EnergyPJ: 1})
	l.Reset()
	if got := l.Total(); got != Zero {
		t.Errorf("after Reset Total = %+v, want zero", got)
	}
	if cats := l.Categories(); len(cats) != 0 {
		t.Errorf("after Reset Categories = %v, want empty", cats)
	}
}

func TestLedgerCategoriesSorted(t *testing.T) {
	l := NewLedger()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		l.Charge(name, Cost{LatencyPS: 1})
	}
	got := l.Categories()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Categories = %v, want %v", got, want)
		}
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Charge("shared", Cost{LatencyPS: 1, EnergyPJ: 1})
		}()
	}
	wg.Wait()
	if got := l.Category("shared"); got.LatencyPS != n || got.EnergyPJ != n {
		t.Errorf("concurrent charges = %+v, want {%d %d}", got, n, n)
	}
}

func TestLedgerReport(t *testing.T) {
	l := NewLedger()
	l.Charge("compute", Cost{LatencyPS: 1_000, EnergyPJ: 10})
	rep := l.Report()
	if !strings.Contains(rep, "compute") || !strings.Contains(rep, "TOTAL") {
		t.Errorf("Report missing sections:\n%s", rep)
	}
}
