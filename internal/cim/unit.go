// Package cim implements the paper's core architecture model (Section III,
// Figs 3-5): "A CIM micro-unit consists of control, data, and processing
// components (logic/arithmetic). Multiple CIM micro-units build a CIM unit
// when they are connected in a predefined configuration. They can be
// organized in tiles, and multiple tiles can be further scaled up."
//
// A Fabric is one board: a mesh-interconnected set of tiles, each holding
// addressable units. Units are heterogeneous ("every CIM unit can be
// different"): digital compute units, crossbar MVM units, and control units.
// The fabric executes dataflow programs loaded through the ISA, charging
// every computation and packet movement to an energy ledger.
package cim

import (
	"fmt"

	"cimrev/internal/crossbar"
	"cimrev/internal/isa"
	"cimrev/internal/packet"
)

// UnitKind classifies a unit's hardware.
type UnitKind int

const (
	// KindCompute is a digital unit (activations, accumulation, routing).
	KindCompute UnitKind = iota + 1
	// KindCrossbar is a memristive crossbar MVM unit.
	KindCrossbar
	// KindControl is a small Von Neumann core embedded in the fabric
	// ("Von Neumann within CIM", Section III.F).
	KindControl
)

// String names the kind.
func (k UnitKind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindCrossbar:
		return "crossbar"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Unit is one addressable CIM unit.
type Unit struct {
	// Addr locates the unit (board/tile/unit).
	Addr packet.Address
	// Kind is the unit's hardware class.
	Kind UnitKind
	// MicroUnits is how many micro-units compose this unit; it scales the
	// unit's parallel width (one micro-unit handles one vector lane
	// grouping in the cost model).
	MicroUnits int

	// fn is the currently configured function.
	fn isa.Function
	// tile is the crossbar hardware for KindCrossbar units.
	tile *crossbar.Tile

	failed bool
	mvms   int64
}

// Function returns the configured ISA function (zero if unconfigured).
func (u *Unit) Function() isa.Function { return u.fn }

// Failed reports whether the unit has been fault-disabled.
func (u *Unit) Failed() bool { return u.failed }

// MVMs returns how many matrix-vector products the unit has executed.
func (u *Unit) MVMs() int64 { return u.mvms }

// Writes returns the unit's crossbar cell-programming count; zero for
// non-crossbar units. This is the wear signal the serviceability model
// (Section V.D) watches.
func (u *Unit) Writes() int64 {
	if u.tile == nil {
		return 0
	}
	return u.tile.Writes()
}

// CrossbarShape returns the programmed matrix dimensions of a crossbar
// unit, or (0, 0) for other kinds.
func (u *Unit) CrossbarShape() (rows, cols int) {
	if u.tile == nil {
		return 0, 0
	}
	return u.tile.Shape()
}
