package cim

import (
	"math"
	"testing"

	"cimrev/internal/dataflow"
	"cimrev/internal/energy"
	"cimrev/internal/isa"
	"cimrev/internal/metrics"
	"cimrev/internal/packet"
)

func addr(tile, unit uint16) packet.Address { return packet.Address{Tile: tile, Unit: unit} }

func newFabric(t *testing.T) (*Fabric, *energy.Ledger) {
	t.Helper()
	led := energy.NewLedger()
	cfg := DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 16, 16
	f, err := NewFabric(cfg, led, metrics.NewRegistry())
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	return f, led
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	cfg.MeshW = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero mesh width accepted")
	}
	cfg = DefaultConfig()
	cfg.LinkBandwidth = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	cfg = DefaultConfig()
	cfg.MaxSteps = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero max steps accepted")
	}
	cfg = DefaultConfig()
	cfg.Crossbar.Rows = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad crossbar config accepted")
	}
}

func TestAddUnitValidation(t *testing.T) {
	f, _ := newFabric(t)
	if _, err := f.AddUnit(addr(0, 0), KindCompute, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddUnit(addr(0, 0), KindCompute, 1); err == nil {
		t.Error("duplicate unit accepted")
	}
	if _, err := f.AddUnit(addr(99, 0), KindCompute, 1); err == nil {
		t.Error("tile outside mesh accepted")
	}
	if _, err := f.AddUnit(addr(0, 1), KindCompute, 0); err == nil {
		t.Error("zero micro-units accepted")
	}
	if _, err := f.AddUnit(addr(0, 2), UnitKind(9), 1); err == nil {
		t.Error("unknown kind accepted")
	}
	other := packet.Address{Board: 3, Tile: 0, Unit: 5}
	if _, err := f.AddUnit(other, KindCompute, 1); err == nil {
		t.Error("wrong board accepted")
	}
	if _, err := f.Unit(addr(9, 9)); err == nil {
		t.Error("missing unit lookup succeeded")
	}
}

func TestUnitsSorted(t *testing.T) {
	f, _ := newFabric(t)
	for _, a := range []packet.Address{addr(2, 0), addr(0, 1), addr(0, 0)} {
		if _, err := f.AddUnit(a, KindCompute, 1); err != nil {
			t.Fatal(err)
		}
	}
	us := f.Units()
	if len(us) != 3 {
		t.Fatalf("Units = %d, want 3", len(us))
	}
	if us[0].Addr != addr(0, 0) || us[1].Addr != addr(0, 1) || us[2].Addr != addr(2, 0) {
		t.Errorf("units out of order: %v %v %v", us[0].Addr, us[1].Addr, us[2].Addr)
	}
}

func TestFabricMVMPipeline(t *testing.T) {
	f, led := newFabric(t)
	if _, err := f.AddUnit(addr(0, 0), KindCrossbar, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddUnit(addr(1, 0), KindCompute, 1); err != nil {
		t.Fatal(err)
	}

	w := [][]float64{{1, 0}, {0, 1}, {0.5, -0.5}} // 3 inputs -> 2 outputs
	if err := f.Configure(addr(0, 0), isa.FuncMVM, w); err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(addr(1, 0), isa.FuncReLU, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect(addr(0, 0), addr(1, 0)); err != nil {
		t.Fatal(err)
	}

	if err := f.Stream(addr(0, 0), []float64{1, -1, 0.5}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := out[addr(1, 0)]
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	// Ideal: [1*1 + 0*-1 + 0.5*0.5, 0 - 1 - 0.25] = [1.25, -1.25];
	// ReLU -> [1.25, 0]. Allow crossbar quantization slack.
	if math.Abs(res[0][0]-1.25) > 0.15 {
		t.Errorf("out[0] = %g, want ~1.25", res[0][0])
	}
	if res[0][1] != 0 {
		t.Errorf("out[1] = %g, want 0 (ReLU clamp)", res[0][1])
	}

	if led.Category("program").LatencyPS == 0 {
		t.Error("no programming cost charged")
	}
	if led.Category("compute").EnergyPJ == 0 {
		t.Error("no compute cost charged")
	}
	if led.Category("network").EnergyPJ == 0 {
		t.Error("no network cost charged")
	}

	u, err := f.Unit(addr(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if u.MVMs() != 1 {
		t.Errorf("MVMs = %d, want 1", u.MVMs())
	}
	if u.Writes() == 0 {
		t.Error("crossbar writes not tracked")
	}
	if r, c := u.CrossbarShape(); r != 3 || c != 2 {
		t.Errorf("CrossbarShape = %dx%d, want 3x2", r, c)
	}
}

func TestConfigureErrors(t *testing.T) {
	f, _ := newFabric(t)
	if _, err := f.AddUnit(addr(0, 0), KindCompute, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(addr(9, 9), isa.FuncReLU, nil); err == nil {
		t.Error("configure of missing unit accepted")
	}
	if err := f.Configure(addr(0, 0), isa.FuncMVM, [][]float64{{1}}); err == nil {
		t.Error("MVM on compute unit accepted")
	}
	if _, err := f.AddUnit(addr(0, 1), KindCrossbar, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(addr(0, 1), isa.FuncMVM, nil); err == nil {
		t.Error("MVM without weights accepted")
	}
}

func TestReprogramWriteAsymmetry(t *testing.T) {
	f, _ := newFabric(t)
	if _, err := f.AddUnit(addr(0, 0), KindCrossbar, 1); err != nil {
		t.Fatal(err)
	}
	w := [][]float64{{1, 0}, {0, 1}}
	if err := f.Configure(addr(0, 0), isa.FuncMVM, w); err != nil {
		t.Fatal(err)
	}
	cost, err := f.Reprogram(addr(0, 0), w)
	if err != nil {
		t.Fatal(err)
	}
	if cost.LatencyPS < energy.CrossbarWriteLatencyPS {
		t.Errorf("reprogram latency %d below one write", cost.LatencyPS)
	}
	// Reprogramming a non-crossbar unit fails.
	if _, err := f.AddUnit(addr(0, 1), KindCompute, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Reprogram(addr(0, 1), w); err == nil {
		t.Error("reprogram of compute unit accepted")
	}
}

func TestLoadProgramStaticDataflow(t *testing.T) {
	f, _ := newFabric(t)
	for _, a := range []packet.Address{addr(0, 0), addr(1, 0)} {
		kind := KindCrossbar
		if a.Tile == 1 {
			kind = KindCompute
		}
		if _, err := f.AddUnit(a, kind, 1); err != nil {
			t.Fatal(err)
		}
	}
	prog := isa.Program{
		{Op: isa.OpLoadWeights, Unit: addr(0, 0), Rows: 2, Cols: 2, Data: []float64{1, 0, 0, 1}},
		{Op: isa.OpConfigure, Unit: addr(0, 0), Fn: isa.FuncMVM},
		{Op: isa.OpConfigure, Unit: addr(1, 0), Fn: isa.FuncSigmoid},
		{Op: isa.OpConnect, Unit: addr(0, 0), Unit2: addr(1, 0)},
		{Op: isa.OpStream, Unit: addr(0, 0), Data: []float64{1, -1}},
		{Op: isa.OpHalt},
	}
	if err := f.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := out[addr(1, 0)]
	if len(res) != 1 || len(res[0]) != 2 {
		t.Fatalf("unexpected results %v", res)
	}
	// sigmoid(~1) ~ 0.73, sigmoid(~-1) ~ 0.27
	if math.Abs(res[0][0]-0.73) > 0.05 || math.Abs(res[0][1]-0.27) > 0.05 {
		t.Errorf("sigmoid outputs = %v, want ~[0.73 0.27]", res[0])
	}
}

func TestLoadProgramErrors(t *testing.T) {
	f, _ := newFabric(t)
	if err := f.LoadProgram(isa.Program{}); err == nil {
		t.Error("empty program accepted")
	}
	prog := isa.Program{
		{Op: isa.OpConfigure, Unit: addr(5, 5), Fn: isa.FuncReLU},
		{Op: isa.OpHalt},
	}
	if err := f.LoadProgram(prog); err == nil {
		t.Error("program for missing unit accepted")
	}
}

func TestSelfProgrammingWithCrossbarHardware(t *testing.T) {
	// A program packet configures an MVM unit: the fabric's func factory
	// must provision real crossbar hardware (dataflow alone cannot).
	f, _ := newFabric(t)
	if _, err := f.AddUnit(addr(0, 0), KindCrossbar, 1); err != nil {
		t.Fatal(err)
	}
	prog := isa.Program{
		{Op: isa.OpLoadWeights, Unit: addr(0, 0), Rows: 2, Cols: 1, Data: []float64{1, 1}},
		{Op: isa.OpConfigure, Unit: addr(0, 0), Fn: isa.FuncMVM},
		{Op: isa.OpStream, Unit: addr(0, 0), Data: []float64{0.5, 0.25}},
		{Op: isa.OpHalt},
	}
	code, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InjectPacket(&packet.Packet{Dst: addr(0, 0), Type: packet.TypeProgram, Code: code}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := out[addr(0, 0)]
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
	if math.Abs(res[0][0]-0.75) > 0.1 {
		t.Errorf("self-programmed MVM = %g, want ~0.75", res[0][0])
	}
}

func TestDisableUnitContainment(t *testing.T) {
	f, _ := newFabric(t)
	for i := uint16(0); i < 3; i++ {
		if _, err := f.AddUnit(addr(i, 0), KindCompute, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Connect(addr(0, 0), addr(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect(addr(1, 0), addr(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.DisableUnit(addr(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.DisableUnit(addr(1, 0)); err == nil {
		t.Error("double disable accepted")
	}
	u, err := f.Unit(addr(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !u.Failed() {
		t.Error("unit not marked failed")
	}
	// Stream into the failed unit is rejected; stream through it is
	// contained (no output at the far side).
	if err := f.Stream(addr(1, 0), []float64{1}); err == nil {
		t.Error("stream into failed unit accepted")
	}
	if err := f.Stream(addr(0, 0), []float64{1}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[addr(2, 0)]) != 0 {
		t.Error("data crossed a failed unit")
	}
}

func TestDynamicRouterOnFabric(t *testing.T) {
	f, _ := newFabric(t)
	for i := uint16(0); i < 3; i++ {
		if _, err := f.AddUnit(addr(i, 0), KindCompute, 1); err != nil {
			t.Fatal(err)
		}
	}
	hot, err := f.NodeID(addr(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := f.NodeID(addr(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	err = f.SetRouter(addr(0, 0), func(_ *dataflow.State, p *packet.Packet) []dataflow.NodeID {
		if p.Payload[0] > 0 {
			return []dataflow.NodeID{hot}
		}
		return []dataflow.NodeID{cold}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Stream(addr(0, 0), []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Stream(addr(0, 0), []float64{-1}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out[addr(1, 0)]) != 1 || len(out[addr(2, 0)]) != 1 {
		t.Errorf("dynamic routing split wrong: %v", out)
	}
}

func TestEdgeCostDistanceSensitivity(t *testing.T) {
	// Transfers between distant tiles must cost more latency than
	// same-tile transfers.
	f, led := newFabric(t)
	if _, err := f.AddUnit(addr(0, 0), KindCompute, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddUnit(addr(15, 0), KindCompute, 1); err != nil { // far corner of 4x4
		t.Fatal(err)
	}
	if err := f.Connect(addr(0, 0), addr(15, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.Stream(addr(0, 0), []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	farNet := led.Category("network").LatencyPS

	led.Reset()
	f2, led2 := newFabric(t)
	if _, err := f2.AddUnit(addr(0, 0), KindCompute, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.AddUnit(addr(0, 1), KindCompute, 1); err != nil {
		t.Fatal(err)
	}
	if err := f2.Connect(addr(0, 0), addr(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := f2.Stream(addr(0, 0), []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Run(); err != nil {
		t.Fatal(err)
	}
	nearNet := led2.Category("network").LatencyPS
	if farNet <= nearNet {
		t.Errorf("far transfer %d ps should exceed same-tile %d ps", farNet, nearNet)
	}
}

func TestFabricMakespan(t *testing.T) {
	// Two independent pipelines on distinct units overlap: fabric makespan
	// stays near one pipeline's latency, not the sum.
	f, _ := newFabric(t)
	for tile := uint16(0); tile < 4; tile++ {
		if _, err := f.AddUnit(addr(tile, 0), KindCompute, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Connect(addr(0, 0), addr(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect(addr(2, 0), addr(3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.Stream(addr(0, 0), []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	single := f.Makespan()
	if single <= 0 {
		t.Fatal("zero makespan")
	}

	if err := f.Stream(addr(0, 0), []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Stream(addr(2, 0), []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	both := f.Makespan()
	if both >= 2*single {
		t.Errorf("independent pipelines serialized: %d vs 2x%d", both, single)
	}
}

func TestFabricTopologyIntrospection(t *testing.T) {
	f, led := newFabric(t)
	a, b, c := addr(0, 0), addr(1, 0), addr(2, 0)
	for _, u := range []packet.Address{a, b, c} {
		if _, err := f.AddUnit(u, KindCompute, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect(b, c); err != nil {
		t.Fatal(err)
	}

	edges := f.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges = %v", edges)
	}
	if edges[0].From != a || edges[0].To != b {
		t.Errorf("first edge = %v", edges[0])
	}

	preds, err := f.Predecessors(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 || preds[0] != a {
		t.Errorf("Predecessors(b) = %v", preds)
	}
	succs, err := f.Successors(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(succs) != 1 || succs[0] != c {
		t.Errorf("Successors(b) = %v", succs)
	}
	if _, err := f.Predecessors(addr(9, 9)); err == nil {
		t.Error("predecessors of missing unit succeeded")
	}
	if _, err := f.Successors(addr(9, 9)); err == nil {
		t.Error("successors of missing unit succeeded")
	}

	if err := f.Disconnect(a, b); err != nil {
		t.Fatal(err)
	}
	if len(f.Edges()) != 1 {
		t.Error("Disconnect did not remove the edge")
	}
	if err := f.Disconnect(a, b); err == nil {
		t.Error("double disconnect accepted")
	}
	if err := f.Disconnect(addr(9, 9), b); err == nil {
		t.Error("disconnect from missing unit accepted")
	}
	if err := f.Connect(addr(9, 9), b); err == nil {
		t.Error("connect from missing unit accepted")
	}
	if err := f.Connect(a, addr(9, 9)); err == nil {
		t.Error("connect to missing unit accepted")
	}

	// Accessors.
	if f.Config().MeshW != 4 {
		t.Error("Config accessor wrong")
	}
	if f.Mesh() == nil {
		t.Error("Mesh accessor nil")
	}
	if f.Ledger() != led {
		t.Error("Ledger accessor wrong")
	}
}

func TestUnitKindStringsAndAccessors(t *testing.T) {
	for k, want := range map[UnitKind]string{
		KindCompute: "compute", KindCrossbar: "crossbar", KindControl: "control",
	} {
		if got := k.String(); got != want {
			t.Errorf("UnitKind(%d) = %q, want %q", k, got, want)
		}
	}
	if got := UnitKind(42).String(); got != "kind(42)" {
		t.Errorf("unknown kind = %q", got)
	}

	f, _ := newFabric(t)
	u, err := f.AddUnit(addr(0, 0), KindCompute, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u.Function() != isa.FuncForward {
		t.Errorf("fresh unit function = %v, want forward", u.Function())
	}
	if u.Writes() != 0 {
		t.Error("digital unit has writes")
	}
	if r, c := u.CrossbarShape(); r != 0 || c != 0 {
		t.Error("digital unit has crossbar shape")
	}
	if err := f.Configure(addr(0, 0), isa.FuncSigmoid, nil); err != nil {
		t.Fatal(err)
	}
	if u.Function() != isa.FuncSigmoid {
		t.Errorf("configured function = %v", u.Function())
	}
}

func TestSelfProgrammingMVMWithoutWeights(t *testing.T) {
	// The fabric func factory rejects an MVM configure that never received
	// loadweights.
	f, _ := newFabric(t)
	if _, err := f.AddUnit(addr(0, 0), KindCrossbar, 1); err != nil {
		t.Fatal(err)
	}
	prog := isa.Program{
		{Op: isa.OpConfigure, Unit: addr(0, 0), Fn: isa.FuncMVM},
		{Op: isa.OpHalt},
	}
	code, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InjectPacket(&packet.Packet{Dst: addr(0, 0), Type: packet.TypeProgram, Code: code}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil {
		t.Error("MVM without weights accepted via program packet")
	}
}
