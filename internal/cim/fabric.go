package cim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"cimrev/internal/crossbar"
	"cimrev/internal/dataflow"
	"cimrev/internal/energy"
	"cimrev/internal/interconnect"
	"cimrev/internal/isa"
	"cimrev/internal/metrics"
	"cimrev/internal/noise"
	"cimrev/internal/packet"
)

// Config sizes a fabric.
type Config struct {
	// Board is this fabric's board number in a multi-board system.
	Board uint16
	// MeshW, MeshH are the tile-interconnect mesh dimensions; tiles are
	// numbered row-major across the mesh.
	MeshW, MeshH int
	// LinkBandwidth is the mesh link bandwidth in bytes/s.
	LinkBandwidth float64
	// Crossbar configures the arrays inside KindCrossbar units.
	Crossbar crossbar.Config
	// Seed drives all analog noise in the fabric.
	Seed int64
	// MaxSteps bounds dataflow deliveries per Run (cyclic graph guard).
	MaxSteps int
}

// DefaultConfig returns a 4x4-tile board with 25 GB/s links and ISAAC-scale
// crossbars.
func DefaultConfig() Config {
	return Config{
		MeshW:         4,
		MeshH:         4,
		LinkBandwidth: 25e9,
		Crossbar:      crossbar.DefaultConfig(),
		Seed:          1,
		MaxSteps:      1_000_000,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MeshW <= 0 || c.MeshH <= 0 {
		return fmt.Errorf("cim: mesh dims must be positive, got %dx%d", c.MeshW, c.MeshH)
	}
	if c.LinkBandwidth <= 0 {
		return fmt.Errorf("cim: link bandwidth must be positive, got %g", c.LinkBandwidth)
	}
	if c.MaxSteps <= 0 {
		return fmt.Errorf("cim: MaxSteps must be positive, got %d", c.MaxSteps)
	}
	return c.Crossbar.Validate()
}

// Fabric is one CIM board.
type Fabric struct {
	cfg    Config
	graph  *dataflow.Graph
	engine *dataflow.Engine
	mesh   *interconnect.Mesh
	ledger *energy.Ledger
	reg    *metrics.Registry
	// src roots the board's counter-based noise tree; mvmSeq numbers the
	// board's MVMs so each analog read gets its own derived stream. The
	// counter is atomic so concurrent dataflow execution stays race-free,
	// and draws depend only on (seed, MVM number), not goroutine schedule.
	src    noise.Source
	mvmSeq atomic.Uint64

	units  map[packet.Address]*Unit
	byNode map[dataflow.NodeID]packet.Address
}

// NewFabric builds an empty fabric charging to ledger (nil disables
// accounting) and reporting to reg (nil disables metrics).
func NewFabric(cfg Config, ledger *energy.Ledger, reg *metrics.Registry) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mesh, err := interconnect.NewMesh(cfg.MeshW, cfg.MeshH, cfg.LinkBandwidth, reg)
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		cfg:    cfg,
		graph:  dataflow.NewGraph(),
		mesh:   mesh,
		ledger: ledger,
		reg:    reg,
		src:    noise.NewSource(cfg.Seed),
		units:  make(map[packet.Address]*Unit),
		byNode: make(map[dataflow.NodeID]packet.Address),
	}
	engine, err := dataflow.NewEngine(f.graph, ledger,
		dataflow.WithEdgeCoster(f.edgeCost),
		dataflow.WithFuncFactory(f.funcFactory),
		dataflow.WithMaxSteps(cfg.MaxSteps),
	)
	if err != nil {
		return nil, err
	}
	f.engine = engine
	return f, nil
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Mesh exposes the board interconnect (for QoS reservations and load
// reporting).
func (f *Fabric) Mesh() *interconnect.Mesh { return f.mesh }

// Ledger returns the fabric's cost ledger (may be nil).
func (f *Fabric) Ledger() *energy.Ledger { return f.ledger }

// coordOf maps a tile number to its mesh switch.
func (f *Fabric) coordOf(addr packet.Address) interconnect.Coord {
	t := int(addr.Tile)
	return interconnect.Coord{X: t % f.cfg.MeshW, Y: t / f.cfg.MeshW}
}

// edgeCost prices a dataflow edge using the board mesh.
func (f *Fabric) edgeCost(from, to dataflow.NodeID, nbytes int) energy.Cost {
	src, okS := f.byNode[from]
	dst, okD := f.byNode[to]
	if !okS || !okD {
		return energy.Zero
	}
	cost, err := f.mesh.Transfer(uint32(src.Tile)<<16|uint32(src.Unit),
		f.coordOf(src), f.coordOf(dst), nbytes, interconnect.BestEffort)
	if err != nil {
		return energy.Zero
	}
	return cost
}

// AddUnit creates a unit at addr. The tile number must fit the mesh and the
// board must match the fabric's.
func (f *Fabric) AddUnit(addr packet.Address, kind UnitKind, microUnits int) (*Unit, error) {
	if addr.Board != f.cfg.Board {
		return nil, fmt.Errorf("cim: address %v is for board %d, fabric is board %d", addr, addr.Board, f.cfg.Board)
	}
	if int(addr.Tile) >= f.cfg.MeshW*f.cfg.MeshH {
		return nil, fmt.Errorf("cim: tile %d outside %dx%d mesh", addr.Tile, f.cfg.MeshW, f.cfg.MeshH)
	}
	if microUnits <= 0 {
		return nil, fmt.Errorf("cim: unit needs at least one micro-unit, got %d", microUnits)
	}
	if _, dup := f.units[addr]; dup {
		return nil, fmt.Errorf("cim: unit %v already exists", addr)
	}
	switch kind {
	case KindCompute, KindCrossbar, KindControl:
	default:
		return nil, fmt.Errorf("cim: unknown unit kind %d", kind)
	}
	name := fmt.Sprintf("%s@%v", kind, addr)
	id, err := f.graph.AddNode(name, addr, dataflow.Forward())
	if err != nil {
		return nil, err
	}
	u := &Unit{Addr: addr, Kind: kind, MicroUnits: microUnits, fn: isa.FuncForward}
	f.units[addr] = u
	f.byNode[id] = addr
	if f.reg != nil {
		f.reg.Counter("fabric.units").Inc()
	}
	return u, nil
}

// Unit returns the unit at addr.
func (f *Fabric) Unit(addr packet.Address) (*Unit, error) {
	u, ok := f.units[addr]
	if !ok {
		return nil, fmt.Errorf("cim: no unit at %v", addr)
	}
	return u, nil
}

// Units returns all units sorted by address for stable iteration.
func (f *Fabric) Units() []*Unit {
	out := make([]*Unit, 0, len(f.units))
	for _, u := range f.units {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Addr, out[j].Addr
		if a.Tile != b.Tile {
			return a.Tile < b.Tile
		}
		return a.Unit < b.Unit
	})
	return out
}

// funcFactory builds node functions, backing FuncMVM with real crossbar
// hardware (the capability dataflow.DefaultFuncFactory lacks).
func (f *Fabric) funcFactory(fn isa.Function, weights [][]float64) (dataflow.NodeFunc, error) {
	if fn != isa.FuncMVM {
		return dataflow.DefaultFuncFactory(fn, weights)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("cim: MVM configuration requires weights")
	}
	tile, err := crossbar.NewTile(f.cfg.Crossbar)
	if err != nil {
		return nil, err
	}
	cost, err := tile.Program(weights)
	if err != nil {
		return nil, err
	}
	if f.ledger != nil {
		f.ledger.Charge("program", cost)
	}
	return f.mvmFunc(tile, nil), nil
}

// mvmFunc wraps a crossbar tile as a dataflow node function. unit may be
// nil when the tile is not attached to a tracked unit.
func (f *Fabric) mvmFunc(tile *crossbar.Tile, unit *Unit) dataflow.NodeFunc {
	return func(_ *dataflow.State, in []float64) ([]float64, energy.Cost, error) {
		out, cost, err := tile.MVM(in, f.src.Derive(f.mvmSeq.Add(1)-1))
		if err != nil {
			return nil, energy.Zero, err
		}
		if unit != nil {
			unit.mvms++
		}
		if f.reg != nil {
			f.reg.Counter("fabric.mvms").Inc()
		}
		return out, cost, nil
	}
}

// Configure assigns a function to a unit, programming crossbar hardware for
// FuncMVM (weights is the in x out matrix). Non-crossbar units reject MVM.
func (f *Fabric) Configure(addr packet.Address, fn isa.Function, weights [][]float64) error {
	u, err := f.Unit(addr)
	if err != nil {
		return err
	}
	if u.failed {
		return fmt.Errorf("cim: unit %v is failed", addr)
	}
	node, err := f.graph.NodeByAddr(addr)
	if err != nil {
		return err
	}
	if fn == isa.FuncMVM {
		if u.Kind != KindCrossbar {
			return fmt.Errorf("cim: unit %v kind %v cannot host MVM", addr, u.Kind)
		}
		if len(weights) == 0 {
			return fmt.Errorf("cim: MVM on %v requires weights", addr)
		}
		tile, err := crossbar.NewTile(f.cfg.Crossbar)
		if err != nil {
			return err
		}
		cost, err := tile.Program(weights)
		if err != nil {
			return err
		}
		if f.ledger != nil {
			f.ledger.Charge("program", cost)
		}
		u.tile = tile
		node.Fn = f.mvmFunc(tile, u)
	} else {
		nf, err := dataflow.DefaultFuncFactory(fn, weights)
		if err != nil {
			return err
		}
		node.Fn = nf
	}
	u.fn = fn
	return nil
}

// Reprogram loads new weights into an already-configured MVM unit, charging
// the (slow, Section VI) write cost. It is the primitive behind
// write-asymmetry experiments.
func (f *Fabric) Reprogram(addr packet.Address, weights [][]float64) (energy.Cost, error) {
	u, err := f.Unit(addr)
	if err != nil {
		return energy.Zero, err
	}
	if u.tile == nil {
		return energy.Zero, fmt.Errorf("cim: unit %v has no crossbar to reprogram", addr)
	}
	cost, err := u.tile.Program(weights)
	if err != nil {
		return energy.Zero, err
	}
	if f.ledger != nil {
		f.ledger.Charge("program", cost)
	}
	return cost, nil
}

// Connect wires unit src's output to unit dst's input.
func (f *Fabric) Connect(src, dst packet.Address) error {
	a, err := f.graph.NodeByAddr(src)
	if err != nil {
		return err
	}
	b, err := f.graph.NodeByAddr(dst)
	if err != nil {
		return err
	}
	return f.graph.Connect(a.ID, b.ID)
}

// Disconnect removes the edge src -> dst.
func (f *Fabric) Disconnect(src, dst packet.Address) error {
	a, err := f.graph.NodeByAddr(src)
	if err != nil {
		return err
	}
	b, err := f.graph.NodeByAddr(dst)
	if err != nil {
		return err
	}
	return f.graph.Disconnect(a.ID, b.ID)
}

// SetRouter installs a dynamic-dataflow router on a unit.
func (f *Fabric) SetRouter(addr packet.Address, r dataflow.Router) error {
	node, err := f.graph.NodeByAddr(addr)
	if err != nil {
		return err
	}
	node.Router = r
	return nil
}

// NodeID resolves a unit address to its dataflow node (for routers).
func (f *Fabric) NodeID(addr packet.Address) (dataflow.NodeID, error) {
	node, err := f.graph.NodeByAddr(addr)
	if err != nil {
		return 0, err
	}
	return node.ID, nil
}

// Edge is one directed connection between units.
type Edge struct {
	From, To packet.Address
}

// Edges returns the fabric's dataflow edges as address pairs.
func (f *Fabric) Edges() []Edge {
	raw := f.graph.Edges()
	out := make([]Edge, 0, len(raw))
	for _, e := range raw {
		from, okF := f.byNode[e.From]
		to, okT := f.byNode[e.To]
		if okF && okT {
			out = append(out, Edge{From: from, To: to})
		}
	}
	return out
}

// Predecessors returns the units with an edge into addr.
func (f *Fabric) Predecessors(addr packet.Address) ([]packet.Address, error) {
	node, err := f.graph.NodeByAddr(addr)
	if err != nil {
		return nil, err
	}
	ids := f.graph.Predecessors(node.ID)
	out := make([]packet.Address, 0, len(ids))
	for _, id := range ids {
		if a, ok := f.byNode[id]; ok {
			out = append(out, a)
		}
	}
	return out, nil
}

// Successors returns the units addr feeds into.
func (f *Fabric) Successors(addr packet.Address) ([]packet.Address, error) {
	node, err := f.graph.NodeByAddr(addr)
	if err != nil {
		return nil, err
	}
	out := make([]packet.Address, 0, len(node.Successors()))
	for _, id := range node.Successors() {
		if a, ok := f.byNode[id]; ok {
			out = append(out, a)
		}
	}
	return out, nil
}

// DisableUnit fault-disables a unit: its node leaves the graph so in-flight
// tokens addressed to it are dropped at the containment boundary
// (Section V.A).
func (f *Fabric) DisableUnit(addr packet.Address) error {
	u, err := f.Unit(addr)
	if err != nil {
		return err
	}
	if u.failed {
		return fmt.Errorf("cim: unit %v already failed", addr)
	}
	node, err := f.graph.NodeByAddr(addr)
	if err != nil {
		return err
	}
	if err := f.graph.RemoveNode(node.ID); err != nil {
		return err
	}
	delete(f.byNode, node.ID)
	u.failed = true
	if f.reg != nil {
		f.reg.Counter("fabric.failures").Inc()
	}
	return nil
}

// LoadProgram applies a full ISA program: configure/loadweights pairs,
// connections, and initial streams. This is the static-dataflow
// configuration path.
func (f *Fabric) LoadProgram(prog isa.Program) error {
	if err := prog.Validate(); err != nil {
		return err
	}
	var pendingWeights [][]float64
	var pendingAddr packet.Address
	for i, in := range prog {
		switch in.Op {
		case isa.OpLoadWeights:
			w := make([][]float64, in.Rows)
			for r := 0; r < in.Rows; r++ {
				w[r] = append([]float64(nil), in.Data[r*in.Cols:(r+1)*in.Cols]...)
			}
			pendingWeights, pendingAddr = w, in.Unit
		case isa.OpConfigure:
			var weights [][]float64
			if pendingWeights != nil && pendingAddr == in.Unit {
				weights = pendingWeights
				pendingWeights = nil
			}
			if err := f.Configure(in.Unit, in.Fn, weights); err != nil {
				return fmt.Errorf("cim: program instr %d: %w", i, err)
			}
		case isa.OpConnect:
			if err := f.Connect(in.Unit, in.Unit2); err != nil {
				return fmt.Errorf("cim: program instr %d: %w", i, err)
			}
		case isa.OpStream:
			if err := f.Stream(in.Unit, in.Data); err != nil {
				return fmt.Errorf("cim: program instr %d: %w", i, err)
			}
		case isa.OpBarrier, isa.OpHalt:
		}
	}
	return nil
}

// Stream injects data into a unit.
func (f *Fabric) Stream(addr packet.Address, data []float64) error {
	node, err := f.graph.NodeByAddr(addr)
	if err != nil {
		return err
	}
	if f.reg != nil {
		f.reg.Counter("fabric.streams").Inc()
	}
	return f.engine.Inject(node.ID, data)
}

// InjectPacket delivers an arbitrary packet (program packets drive the
// self-programmable dataflow model with fabric-backed MVM support).
func (f *Fabric) InjectPacket(p *packet.Packet) error {
	return f.engine.InjectPacket(p)
}

// Makespan returns the completion time (virtual picoseconds) of the most
// recent Run, accounting for unit-level parallelism — the fabric-level
// latency metric, as opposed to the ledger's aggregate busy time.
func (f *Fabric) Makespan() int64 { return f.engine.Makespan() }

// Run drains the dataflow queue, returning outputs keyed by unit address.
func (f *Fabric) Run() (map[packet.Address][][]float64, error) {
	raw, err := f.engine.Run()
	if err != nil {
		return nil, err
	}
	out := make(map[packet.Address][][]float64, len(raw))
	for id, results := range raw {
		addr, ok := f.byNode[id]
		if !ok {
			continue
		}
		out[addr] = results
	}
	return out, nil
}
