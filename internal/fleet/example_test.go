package fleet_test

import (
	"context"
	"fmt"
	"math/rand"

	"cimrev/internal/dpe"
	"cimrev/internal/fleet"
	"cimrev/internal/nn"
)

// ExampleRouter shows how routing policies order engines for a request:
// round-robin rotates by the request's fleet sequence number, and the
// same sequence number always produces the same preference order — a
// replayed trace routes identically.
func ExampleRouter() {
	net, err := nn.NewMLP("example", []int{16, 8}, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	cfg := dpe.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 64, 64

	f, _, err := fleet.New(cfg, net,
		fleet.WithEngines(3),
		fleet.WithPolicy(fleet.RoundRobin()),
	)
	if err != nil {
		panic(err)
	}
	defer f.Close()

	engines := f.Engines()
	for seq := uint64(0); seq < 4; seq++ {
		order, _ := f.Router().Route(engines, seq)
		ids := make([]int, len(order))
		for i, e := range order {
			ids[i] = e.ID()
		}
		fmt.Printf("request %d tries engines %v\n", seq, ids)
	}
	// Output:
	// request 0 tries engines [0 1 2]
	// request 1 tries engines [1 2 0]
	// request 2 tries engines [2 0 1]
	// request 3 tries engines [0 1 2]
}

// ExampleFleet_SubmitSeq shows the determinism contract: a request keyed
// with the same sequence number returns bit-identical output from a
// 1-engine and a 3-engine fleet — placement never changes results.
func ExampleFleet_SubmitSeq() {
	net, err := nn.NewMLP("example", []int{16, 8}, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	cfg := dpe.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 64, 64
	cfg.Crossbar.ReadNoise = 0.02 // analog read noise, counter-keyed

	in := make([]float64, 16)
	for i := range in {
		in[i] = float64(i) / 16
	}

	var outs [2][]float64
	for i, engines := range []int{1, 3} {
		f, _, err := fleet.New(cfg, net, fleet.WithEngines(engines))
		if err != nil {
			panic(err)
		}
		out, _, err := f.SubmitSeq(context.Background(), 42, in)
		if err != nil {
			panic(err)
		}
		outs[i] = out
		f.Close()
	}
	identical := true
	for j := range outs[0] {
		if outs[0][j] != outs[1][j] {
			identical = false
		}
	}
	fmt.Println("1-engine and 3-engine outputs bit-identical:", identical)
	// Output:
	// 1-engine and 3-engine outputs bit-identical: true
}
