// Package fleet is the cluster-scale serving layer: N independent DPE
// engines — each a serve.ShadowPair behind its own micro-batcher, bounded
// ingress queue, circuit breaker, and metrics namespace — routed by a
// pluggable request Router. It is the answer to the paper's Section VI
// scaling story at the serving tier: one board's write asymmetry hides
// behind its own shadow engine (internal/serve), and the *fleet* hides
// whole-board reprogramming behind the remaining boards via a rolling
// scheduler that updates one standby at a time with zero fleet downtime
// (rolling.go).
//
// # Topology
//
//	client ─ Submit ─▶ Fleet ─ Router(policy) ─▶ Engine i
//	                                             ├─ serve.Server   (queue + micro-batcher)
//	                                             ├─ serve.Breaker  (health gate)
//	                                             └─ serve.ShadowPair ─ dpe.Engine ×2
//
// Every engine replicates the same network (same dpe.Config, same noise
// seed), so any engine can serve any request. Routing policies (router.go)
// choose among the healthy, non-draining engines: round-robin, least-loaded
// (live ingress-queue depth), weighted, and wear-aware (route away from
// engines whose fault reports show consumed spares or lost columns —
// reading dpe HealthCheck and the internal/faultinject wear accounting).
// A refused engine (full queue, tripped breaker, mid-drain close) fails
// over to the next engine in policy order; only when every routable engine
// refuses does the fleet surface an error, typed to distinguish capacity
// (serve.ErrOverloaded) from health (serve.ErrUnhealthy).
//
// # Determinism
//
// The fleet preserves the simulator's bit-identity contract at any fan-out:
// every request carries its own noise sequence number (its global arrival
// index, or a caller-chosen key via SubmitSeq) down through
// serve.Server.SubmitKeyed to dpe.Engine.InferBatchKeyed, where analog read
// noise is a pure function of (Config.Seed, key, stage, position). Which
// engine serves a request, how the batcher groups it, and the worker-pool
// width are therefore all invisible in the output: a 4-engine fleet run is
// bit-identical, request by request, to a 1-engine run under any routing
// policy. Device-fault injection is the deliberate exception — each engine
// derives its own fault seed (boards have their own physical defects), so
// faulty fleets agree only where damage allows. See docs/CLUSTER.md.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cimrev/internal/chaos"
	"cimrev/internal/dpe"
	"cimrev/internal/energy"
	"cimrev/internal/metrics"
	"cimrev/internal/nn"
	"cimrev/internal/obs"
	"cimrev/internal/serve"
)

// ErrNoEngines is returned by Submit when the fleet has no members (all
// have left). Distinct from the all-unhealthy case, which wraps
// serve.ErrUnhealthy, and the all-overloaded case, which wraps
// serve.ErrOverloaded.
var ErrNoEngines = errors.New("fleet: no engines")

// Engine is one fleet member: a shadow pair behind its own breaker and
// micro-batching server, with a private metrics registry so per-engine
// series never collide (cimserve exposes each registry with an engine
// label on /metrics).
type Engine struct {
	id     int
	weight int
	pair   *serve.ShadowPair
	brk    *serve.Breaker
	srv    *serve.Server
	reg    *metrics.Registry
	// lim is the engine's AIMD concurrency limiter, nil unless the fleet
	// was built WithOverloadControl (limiter.go).
	lim *aimdLimiter

	// draining flips when Leave removes the engine from the routing set,
	// just before its server closes: the router skips draining engines and
	// in-flight requests finish normally.
	draining atomic.Bool
	// routed counts requests this engine accepted (routing statistics; the
	// engine's own registry has the authoritative serve.* counters).
	routed atomic.Int64
	// inflight counts requests currently inside this engine's pipeline
	// (queued or executing). The ingress queue alone is a poor load signal
	// — the dispatcher drains it into open batches almost immediately — so
	// the least-loaded policy reads queued + in-flight.
	inflight atomic.Int64
}

// ID returns the engine's fleet-unique identifier (stable across
// join/leave churn; never reused).
func (e *Engine) ID() int { return e.id }

// Weight returns the engine's routing weight (≥ 1; used by the weighted
// policy, ignored by the others).
func (e *Engine) Weight() int { return e.weight }

// QueueDepth returns the engine's current ingress-queue depth.
func (e *Engine) QueueDepth() int { return e.srv.QueueDepth() }

// InFlight returns how many fleet requests are currently inside the
// engine's pipeline (queued or executing).
func (e *Engine) InFlight() int64 { return e.inflight.Load() }

// Load returns the engine's outstanding-work signal — ingress-queue depth
// plus in-flight requests — which the least-loaded policy minimizes.
func (e *Engine) Load() int64 { return int64(e.srv.QueueDepth()) + e.inflight.Load() }

// Tripped reports whether the engine's circuit breaker is open.
func (e *Engine) Tripped() bool { return e.brk.Tripped() }

// Limit returns the engine's current AIMD concurrency limit, 0 when
// overload control is disabled (cimserve surfaces this on /healthz).
func (e *Engine) Limit() int64 {
	if e.lim == nil {
		return 0
	}
	return e.lim.Limit()
}

// Draining reports whether the engine is leaving the fleet.
func (e *Engine) Draining() bool { return e.draining.Load() }

// Wear returns the live engine's lifetime cell-write count (the wear-aware
// policy's tiebreak signal), read under the pair's gate.
func (e *Engine) Wear() int64 { return e.pair.Wear() }

// Health scans the engine's live DPE (the wear-aware policy's primary
// signal: consumed spares and lost columns).
func (e *Engine) Health() dpe.Health { return e.pair.Health() }

// Routed returns how many requests the router placed on this engine.
func (e *Engine) Routed() int64 { return e.routed.Load() }

// SimTimePS returns the engine's accumulated simulated serving time.
func (e *Engine) SimTimePS() int64 { return e.srv.SimTimePS() }

// Registry returns the engine's private metrics registry (serve.* series).
func (e *Engine) Registry() *metrics.Registry { return e.reg }

// Pair returns the engine's shadow pair (statistics only).
func (e *Engine) Pair() *serve.ShadowPair { return e.pair }

// Breaker returns the engine's circuit breaker (statistics / Reset only).
func (e *Engine) Breaker() *serve.Breaker { return e.brk }

// Config configures a Fleet. Construct with Default() (or zero options to
// New) and refine with functional options.
type Config struct {
	// Engines is the initial fleet size. Must be ≥ 1.
	Engines int
	// Weights are the initial engines' routing weights, by position.
	// Empty means every engine weighs 1; otherwise the length must equal
	// Engines and every weight must be ≥ 1. Engines joined later weigh 1.
	Weights []int
	// Router picks engines per request. Nil selects round-robin.
	Router *Router
	// Tracer records fleet-layer spans (rolling reprograms) and is
	// threaded into every engine's serving pipeline.
	Tracer *obs.Tracer
	// ServeOptions are applied to every engine's Breaker and Server
	// (batching, queue bound, retry, probe). Per-engine plumbing — the
	// private registry, the tracer, and a per-engine jitter seed — is
	// appended after them and cannot be overridden.
	ServeOptions []serve.Option
	// WrapBackend, when non-nil, wraps each engine's breaker before it is
	// handed to the micro-batching server — the hybrid dispatcher's
	// insertion point. It receives the engine id, the breaker as a
	// serve.Backend, and the engine's private registry (so wrapper
	// counters land next to that engine's serve.* series). Returning nil
	// or b leaves the engine unwrapped. Note that every fleet request is
	// keyed (its noise sequence number), which an auto-mode hybrid
	// dispatcher pins to the crossbar side — rolling reprograms go through
	// the breaker underneath the wrapper without making a digital twin's
	// weights observable mid-swap.
	WrapBackend func(id int, b serve.Backend, reg *metrics.Registry) serve.Backend
	// Hedge enables hedged requests (hedge.go) when non-nil.
	Hedge *HedgeConfig
	// Overload enables the AIMD concurrency limiter and priority brownout
	// (limiter.go) when non-nil.
	Overload *OverloadConfig
	// Chaos, when non-nil and active, wraps every engine's backend with
	// the deterministic fault injector (internal/chaos) — outermost, above
	// WrapBackend, so injected stalls and crashes perturb whatever stack
	// the engine actually runs. A nil or inert injector adds nothing: the
	// wrap is the identity.
	Chaos *chaos.Injector
}

// Default returns a single-engine, round-robin fleet configuration.
func Default() Config { return Config{Engines: 1} }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Engines < 1:
		return fmt.Errorf("fleet: Engines must be >= 1, got %d", c.Engines)
	case len(c.Weights) != 0 && len(c.Weights) != c.Engines:
		return fmt.Errorf("fleet: %d weights for %d engines", len(c.Weights), c.Engines)
	}
	for i, w := range c.Weights {
		if w < 1 {
			return fmt.Errorf("fleet: weight %d for engine %d must be >= 1", w, i)
		}
	}
	return nil
}

// Option mutates a Config during construction.
type Option func(*Config)

// WithEngines sets the initial fleet size.
func WithEngines(n int) Option { return func(c *Config) { c.Engines = n } }

// WithWeights sets the initial engines' routing weights by position.
func WithWeights(ws ...int) Option { return func(c *Config) { c.Weights = ws } }

// WithRouter installs a router (see NewRouter and the policy constructors).
func WithRouter(r *Router) Option { return func(c *Config) { c.Router = r } }

// WithPolicy is shorthand for WithRouter(NewRouter(p)).
func WithPolicy(p Policy) Option { return func(c *Config) { c.Router = NewRouter(p) } }

// WithTracer records fleet and per-engine serving spans into tr.
func WithTracer(tr *obs.Tracer) Option { return func(c *Config) { c.Tracer = tr } }

// WithServeOptions forwards opts to every engine's serve.New/NewBreaker.
func WithServeOptions(opts ...serve.Option) Option {
	return func(c *Config) { c.ServeOptions = append(c.ServeOptions, opts...) }
}

// WithWrapBackend installs a per-engine backend wrapper (Config.WrapBackend).
func WithWrapBackend(fn func(id int, b serve.Backend, reg *metrics.Registry) serve.Backend) Option {
	return func(c *Config) { c.WrapBackend = fn }
}

// WithHedge enables hedged requests with cfg (zero fields take the
// documented defaults — p95 delay, 5% budget).
func WithHedge(cfg HedgeConfig) Option {
	return func(c *Config) { h := cfg; c.Hedge = &h }
}

// WithOverloadControl enables the per-engine AIMD concurrency limiter and
// fleet-wide priority brownout with cfg (zero fields take the documented
// defaults).
func WithOverloadControl(cfg OverloadConfig) Option {
	return func(c *Config) { o := cfg; c.Overload = &o }
}

// WithChaos wires the deterministic fault injector into every engine
// (Config.Chaos). A nil or inert injector is free.
func WithChaos(inj *chaos.Injector) Option {
	return func(c *Config) { c.Chaos = inj }
}

// fleetMetrics holds the fleet's interned metric handles.
type fleetMetrics struct {
	requests    *metrics.Counter
	failovers   *metrics.Counter
	unrouteable *metrics.Counter
	joins       *metrics.Counter
	leaves      *metrics.Counter
	rollings    *metrics.Counter
	engines     *metrics.Gauge
	latencyNS   *metrics.Histogram

	// Resilience counters (docs/RESILIENCE.md): hedge issue/win/deny,
	// limiter refusals, and brownout sheds.
	hedged         *metrics.Counter
	hedgeWon       *metrics.Counter
	hedgeDenied    *metrics.Counter
	limiterRefused *metrics.Counter
	brownoutShed   *metrics.Counter
}

func newFleetMetrics(reg *metrics.Registry) fleetMetrics {
	return fleetMetrics{
		requests:    reg.Counter("fleet.requests"),
		failovers:   reg.Counter("fleet.failovers"),
		unrouteable: reg.Counter("fleet.unrouteable"),
		joins:       reg.Counter("fleet.joins"),
		leaves:      reg.Counter("fleet.leaves"),
		rollings:    reg.Counter("fleet.rolling_reprograms"),
		engines:     reg.Gauge("fleet.engines"),
		latencyNS:   reg.Histogram("fleet.latency_ns"),

		hedged:         reg.Counter("fleet.hedged"),
		hedgeWon:       reg.Counter("fleet.hedge_won"),
		hedgeDenied:    reg.Counter("fleet.hedge_denied"),
		limiterRefused: reg.Counter("fleet.limiter_refused"),
		brownoutShed:   reg.Counter("fleet.brownout_shed"),
	}
}

// Fleet is a routed set of DPE serving engines. Construct with New; the
// zero value is not usable. Submit/SubmitSeq are safe for concurrent use,
// as are Join, Leave, and RollingReprogram.
type Fleet struct {
	dcfg   dpe.Config
	cfg    Config
	router *Router
	reg    *metrics.Registry
	met    fleetMetrics
	tracer *obs.Tracer

	// mu guards the engine set and the current network (what joiners
	// program). Submit holds it shared just long enough to snapshot the
	// engine slice; membership changes hold it exclusively.
	mu      sync.RWMutex
	engines []*Engine
	nextID  int
	net     *nn.Network

	// seq numbers requests fleet-globally: request k's analog noise draws
	// from the counter stream for k, on whichever engine serves it.
	seq atomic.Uint64

	// hedge and over are the resilience controllers, nil when disabled.
	hedge *hedger
	over  *brownout
	chaos *chaos.Injector

	// rollMu serializes rolling reprograms (one standby programs at a
	// time, fleet-wide — the multi-board write-bandwidth budget).
	rollMu   sync.Mutex
	statusMu sync.Mutex
	status   RollingStatus
}

// New builds a fleet of cfg-configured engines, programs net into every
// live engine, and returns the initial programming cost (engines program
// in parallel: latency is the slowest engine, energy sums). All engines
// share dcfg — including its noise Seed, which is what makes any engine's
// keyed output interchangeable — except that fault injection, when
// enabled, derives a per-engine seed (dcfg.Faults.Seed + engine ID): each
// board carries its own physical defects.
func New(dcfg dpe.Config, net *nn.Network, opts ...Option) (*Fleet, energy.Cost, error) {
	cfg := Default()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, energy.Zero, err
	}
	router := cfg.Router
	if router == nil {
		router = NewRouter(RoundRobin())
	}
	reg := metrics.NewRegistry()
	f := &Fleet{
		dcfg:   dcfg,
		cfg:    cfg,
		router: router,
		reg:    reg,
		met:    newFleetMetrics(reg),
		tracer: cfg.Tracer,
		net:    net,
		chaos:  cfg.Chaos,
	}
	if cfg.Hedge != nil {
		f.hedge = newHedger(*cfg.Hedge, f.met.latencyNS)
	}
	if cfg.Overload != nil {
		f.over = newBrownout(cfg.Overload.withDefaults())
	}
	total := energy.Zero
	for i := 0; i < cfg.Engines; i++ {
		w := 1
		if len(cfg.Weights) > 0 {
			w = cfg.Weights[i]
		}
		e, cost, err := f.newEngine(i, w, net)
		if err != nil {
			f.Close()
			return nil, energy.Zero, err
		}
		f.engines = append(f.engines, e)
		total = total.Par(cost)
	}
	f.nextID = cfg.Engines
	f.met.engines.Set(float64(cfg.Engines))
	return f, total, nil
}

// newEngine builds one fleet member and programs net into it. Engine id's
// fault model (when enabled) seeds at base+id; its breaker jitter seeds at
// dcfg.Seed+id so synchronized retries decorrelate across the fleet.
func (f *Fleet) newEngine(id, weight int, net *nn.Network) (*Engine, energy.Cost, error) {
	ecfg := f.dcfg
	if ecfg.Faults.Enabled() {
		ecfg.Faults.Seed += int64(id)
	}
	pair, cost, err := serve.NewShadowPair(ecfg, net)
	if err != nil {
		return nil, energy.Zero, fmt.Errorf("fleet: engine %d: %w", id, err)
	}
	reg := metrics.NewRegistry()
	sopts := make([]serve.Option, 0, len(f.cfg.ServeOptions)+3)
	sopts = append(sopts, serve.WithSeed(f.dcfg.Seed+int64(id)))
	sopts = append(sopts, f.cfg.ServeOptions...)
	sopts = append(sopts, serve.WithRegistry(reg), serve.WithTracer(f.tracer))
	brk, err := serve.NewBreaker(pair, sopts...)
	if err != nil {
		return nil, energy.Zero, fmt.Errorf("fleet: engine %d: %w", id, err)
	}
	var be serve.Backend = brk
	if f.cfg.WrapBackend != nil {
		if w := f.cfg.WrapBackend(id, brk, reg); w != nil {
			be = w
		}
	}
	// Chaos wraps outermost so injected stalls and crashes hit whatever
	// stack the engine really runs; an inert injector returns be itself.
	be = f.chaos.Wrap(id, be)
	srv, err := serve.New(be, sopts...)
	if err != nil {
		return nil, energy.Zero, fmt.Errorf("fleet: engine %d: %w", id, err)
	}
	e := &Engine{id: id, weight: weight, pair: pair, brk: brk, srv: srv, reg: reg}
	if f.cfg.Overload != nil {
		e.lim = newAIMDLimiter(f.cfg.Overload.withDefaults())
	}
	return e, cost, nil
}

// Registry returns the fleet-level metrics registry (fleet.* series;
// per-engine serve.* series live in each Engine's own registry).
func (f *Fleet) Registry() *metrics.Registry { return f.reg }

// Router returns the fleet's router.
func (f *Fleet) Router() *Router { return f.router }

// Chaos returns the fleet's chaos injector (nil when none was wired);
// cimserve's /healthz reports its active scenario.
func (f *Fleet) Chaos() *chaos.Injector { return f.chaos }

// Hedging reports whether hedged requests are enabled.
func (f *Fleet) Hedging() bool { return f.hedge != nil }

// BrownoutActive reports whether the fleet is currently shedding
// low-priority traffic (false when overload control is disabled).
func (f *Fleet) BrownoutActive() bool { return f.over != nil && f.over.active() }

// Engines returns a snapshot of the current members in join order.
func (f *Fleet) Engines() []*Engine {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Engine, len(f.engines))
	copy(out, f.engines)
	return out
}

// Size returns the current member count.
func (f *Fleet) Size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.engines)
}

// SimTimePS returns the fleet's simulated serving time: the maximum over
// engines, because boards serve concurrently in simulated time just as
// they do on the bench. Closed-loop simulated throughput is
// requests / (SimTimePS · 1e-12).
func (f *Fleet) SimTimePS() int64 {
	var max int64
	for _, e := range f.Engines() {
		if ps := e.SimTimePS(); ps > max {
			max = ps
		}
	}
	return max
}

// Infer submits one inference with a background context; see Submit.
func (f *Fleet) Infer(in []float64) ([]float64, energy.Cost, error) {
	return f.Submit(context.Background(), in)
}

// Submit routes one inference, stamping it with the next fleet-global
// sequence number (its noise key). Under concurrent submission the
// arrival order — and therefore which request gets which key — is
// scheduling-dependent; callers that need run-to-run reproducible noisy
// outputs assign their own keys via SubmitSeq.
func (f *Fleet) Submit(ctx context.Context, in []float64) ([]float64, energy.Cost, error) {
	return f.SubmitSeq(ctx, f.seq.Add(1)-1, in)
}

// SubmitSeq routes one inference with a caller-owned noise key: the output
// is a pure function of (engine config seed, seq, input), bit-identical
// whether the fleet has 1 engine or 40, under every routing policy, at any
// -parallel width. The router orders routable engines by policy; an engine
// that refuses (queue full, concurrency limit hit, breaker tripped,
// draining) fails over to the next. When every routable engine refuses,
// the returned error wraps serve.ErrOverloaded if any refusal was capacity
// and serve.ErrUnhealthy only when health shed every attempt; a fleet
// whose every member is tripped fails fast with serve.ErrUnhealthy, and an
// empty fleet with ErrNoEngines.
//
// SubmitSeq requests are PriorityHigh; deferrable work submits through
// SubmitSeqPri with PriorityLow and accepts brownout shedding.
func (f *Fleet) SubmitSeq(ctx context.Context, seq uint64, in []float64) ([]float64, energy.Cost, error) {
	return f.SubmitSeqPri(ctx, seq, in, PriorityHigh)
}

// SubmitSeqPri is SubmitSeq with an explicit priority class. Under
// sustained overload (limiter.go) PriorityLow requests are shed at the
// door with an error wrapping serve.ErrOverloaded — brownout: background
// traffic pays first so interactive traffic keeps its latency. With
// hedging enabled (WithHedge), a request that outlives the fleet's
// adaptive p95 delay is re-issued on a second engine and the first
// response wins — bit-identical by the keyed-noise contract, so the race
// has no observable outcome beyond latency.
func (f *Fleet) SubmitSeqPri(ctx context.Context, seq uint64, in []float64, pri Priority) ([]float64, energy.Cost, error) {
	start := time.Now()
	f.met.requests.Inc()
	if f.over != nil && pri == PriorityLow && f.over.active() {
		f.met.brownoutShed.Inc()
		return nil, energy.Zero, fmt.Errorf("fleet: brownout shed (low priority): %w", serve.ErrOverloaded)
	}
	engines := f.Engines()
	if len(engines) == 0 {
		f.met.unrouteable.Inc()
		return nil, energy.Zero, ErrNoEngines
	}
	if f.over != nil {
		f.over.observe(engines)
	}
	order, tripped := f.router.Route(engines, seq)
	if len(order) == 0 {
		f.met.unrouteable.Inc()
		if tripped > 0 {
			return nil, energy.Zero, fmt.Errorf("fleet: all %d engines unhealthy: %w", len(engines), serve.ErrUnhealthy)
		}
		return nil, energy.Zero, fmt.Errorf("fleet: all engines draining: %w", ErrNoEngines)
	}
	var (
		out  []float64
		cost energy.Cost
		err  error
	)
	if f.hedge != nil && len(order) > 1 {
		out, cost, err = f.submitHedged(ctx, order, seq, in)
	} else {
		out, cost, err = f.tryOrder(ctx, order, seq, in)
	}
	if err == nil {
		f.met.latencyNS.Observe(float64(time.Since(start).Nanoseconds()))
		return out, cost, nil
	}
	if errors.Is(err, errExhausted) {
		f.met.unrouteable.Inc()
	}
	return nil, energy.Zero, err
}

// errExhausted marks a tryOrder failure where every routable engine
// refused (as opposed to a request-owned failure like cancellation). It
// always travels wrapped alongside the public capacity/health sentinel.
var errExhausted = errors.New("fleet: routable engines exhausted")

// tryOrder attempts the engines in order with typed failover: capacity
// refusals (full queue, AIMD limit, closing server) and health sheds move
// to the next engine; request-owned failures (cancellation, deadline,
// hard errors) return immediately. The exhaustion error wraps both
// errExhausted and the dominant public sentinel.
func (f *Fleet) tryOrder(ctx context.Context, order []*Engine, seq uint64, in []float64) ([]float64, energy.Cost, error) {
	sawCapacity := false
	tried := 0
	for _, e := range order {
		inflight := e.inflight.Load()
		if e.lim != nil && !e.lim.admits(inflight) {
			// The limiter refuses before the engine's queue absorbs the
			// request: queueing delay stays bounded by the converged
			// limit, not the static queue bound.
			f.met.limiterRefused.Inc()
			sawCapacity = true
			continue
		}
		if tried > 0 {
			f.met.failovers.Inc()
		}
		tried++
		e.inflight.Add(1)
		out, cost, err := e.srv.SubmitKeyed(ctx, seq, in)
		e.inflight.Add(-1)
		switch {
		case err == nil:
			if e.lim != nil {
				e.lim.onSuccess()
			}
			e.routed.Add(1)
			return out, cost, nil
		case errors.Is(err, serve.ErrOverloaded):
			if e.lim != nil {
				e.lim.onOverload()
			}
			sawCapacity = true
		case errors.Is(err, serve.ErrClosed):
			sawCapacity = true
		case errors.Is(err, serve.ErrUnhealthy):
			// Tripped (or chaos-crashed) between the routing scan and the
			// submit; try the next engine.
		default:
			// Canceled contexts, blown deadlines, and hard errors are the
			// request's own problem, not a routing problem.
			return nil, energy.Zero, err
		}
	}
	if sawCapacity {
		return nil, energy.Zero, fmt.Errorf("fleet: all %d routable engines refused (%w): %w", len(order), errExhausted, serve.ErrOverloaded)
	}
	return nil, energy.Zero, fmt.Errorf("fleet: all %d routable engines shed (%w): %w", len(order), errExhausted, serve.ErrUnhealthy)
}

// Join adds one engine (weight 1) programmed with the fleet's current
// network, returning it and its programming cost. The slow memristor
// writes happen before the engine enters the routing set, so joining never
// stalls serving — the new engine takes traffic only once fully
// programmed and healthy.
func (f *Fleet) Join() (*Engine, energy.Cost, error) {
	f.mu.Lock()
	id := f.nextID
	f.nextID++
	net := f.net
	f.mu.Unlock()

	e, cost, err := f.newEngine(id, 1, net)
	if err != nil {
		return nil, energy.Zero, err
	}
	f.mu.Lock()
	f.engines = append(f.engines, e)
	n := len(f.engines)
	f.mu.Unlock()
	f.met.joins.Inc()
	f.met.engines.Set(float64(n))
	return e, cost, nil
}

// Leave removes engine id with a graceful drain: the engine exits the
// routing set immediately (no new requests land on it), then its server
// closes, which serves everything already queued to completion. Requests
// that race the close observe serve.ErrClosed and fail over to another
// engine inside Submit — a drain never fails a request.
func (f *Fleet) Leave(id int) error {
	f.mu.Lock()
	idx := -1
	for i, e := range f.engines {
		if e.id == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		f.mu.Unlock()
		return fmt.Errorf("fleet: no engine %d", id)
	}
	e := f.engines[idx]
	f.engines = append(f.engines[:idx], f.engines[idx+1:]...)
	n := len(f.engines)
	f.mu.Unlock()

	e.draining.Store(true)
	e.srv.Close()
	f.met.leaves.Inc()
	f.met.engines.Set(float64(n))
	return nil
}

// Close drains and removes every engine. Close is idempotent.
func (f *Fleet) Close() {
	f.mu.Lock()
	engines := f.engines
	f.engines = nil
	f.mu.Unlock()
	for _, e := range engines {
		e.draining.Store(true)
		e.srv.Close()
	}
	f.met.engines.Set(0)
}
