// Hedged requests: the "Tail at Scale" defense, made safe by determinism.
//
// A request that has waited longer than the fleet's tracked p95 latency is
// probably stuck behind a straggler (slow engine, stall, GC-of-the-analog
// world). Instead of waiting it out, the fleet re-issues the *same keyed
// request* to a different engine and takes whichever response lands first.
// Two properties make this trivially correct here where it is subtle in
// most systems:
//
//   - Keyed noise (docs/CLUSTER.md): the output is a pure function of
//     (seed, seq, input), so the hedge's answer is bit-identical to the
//     primary's — there is no "which reply do we trust" problem, and no
//     side effects to deduplicate.
//   - The loser is canceled, not abandoned: its context is torn down, so
//     a still-queued duplicate is shed before it reaches a crossbar and a
//     mid-batch one has its result discarded.
//
// The delay adapts: it tracks a configurable quantile (default p95) of the
// fleet's observed request latency, so only the slowest ~5% of requests
// ever hedge, and a token budget (default 5% of request volume) caps the
// extra load even when the latency distribution collapses. See
// docs/RESILIENCE.md for why p95-delay hedging needs the straggler's
// traffic share below the hedge quantile — and why the straggler sweep
// pairs hedging with the least-loaded policy.
package fleet

import (
	"context"
	"sync/atomic"
	"time"

	"cimrev/internal/energy"
	"cimrev/internal/metrics"
)

// HedgeConfig tunes hedged requests. The zero value is refined to the
// defaults by WithHedge.
type HedgeConfig struct {
	// Quantile of the fleet latency distribution used as the hedge delay
	// (0 → 0.95): a request older than this is assumed stuck.
	Quantile float64
	// MinDelay / MaxDelay clamp the adaptive delay (0 → 200µs / 20ms).
	// The floor keeps a cold, fast fleet from hedging everything; the cap
	// keeps hedges firing when a straggler has dragged p95 itself into
	// the stall time.
	MinDelay, MaxDelay time.Duration
	// Budget is the hedge rate cap as a fraction of submitted requests
	// (0 → 0.05): hedge tokens accrue at Budget per request and each
	// hedge spends one. Denied hedges count in fleet.hedge_denied.
	Budget float64
	// Burst bounds banked tokens (0 → 64): a long quiet period cannot
	// bank an unbounded hedge storm.
	Burst int
}

// withDefaults fills zero fields with the canonical defaults.
func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.Quantile == 0 {
		c.Quantile = 0.95
	}
	if c.MinDelay == 0 {
		c.MinDelay = 200 * time.Microsecond
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 20 * time.Millisecond
	}
	if c.Budget == 0 {
		c.Budget = 0.05
	}
	if c.Burst == 0 {
		c.Burst = 64
	}
	return c
}

// hedger holds the live hedging state: the adaptive delay and the token
// budget, both lock-free.
type hedger struct {
	cfg HedgeConfig
	// latency is the fleet.latency_ns histogram the delay tracks.
	latency *metrics.Histogram
	// delayNS is the cached adaptive delay, recomputed from the histogram
	// every delayEvery requests (a 64-bucket scan is too much per request).
	delayNS atomic.Int64
	tick    atomic.Uint64
	// credits is the token bucket in millitokens (1000 = one hedge).
	credits atomic.Int64
}

// delayEvery is the delay-refresh cadence in requests.
const delayEvery = 64

// hedgeToken is one hedge in millitokens.
const hedgeToken = 1000

func newHedger(cfg HedgeConfig, latency *metrics.Histogram) *hedger {
	h := &hedger{cfg: cfg.withDefaults(), latency: latency}
	h.delayNS.Store(int64(h.cfg.MaxDelay))
	// The bucket starts full: a straggler in the first requests of a fresh
	// fleet is exactly when hedging pays, and the burst bound caps the cost.
	h.credits.Store(int64(h.cfg.Burst) * hedgeToken)
	return h
}

// delay returns the current hedge delay, refreshing the cached quantile
// on the refresh cadence. With no latency history yet it stays at
// MaxDelay — hedge conservatively until there is a distribution to track.
func (h *hedger) delay() time.Duration {
	if h.tick.Add(1)%delayEvery == 0 {
		if snap := h.latency.Snapshot(); snap.Count > 0 {
			d := time.Duration(snap.Quantile(h.cfg.Quantile))
			if d < h.cfg.MinDelay {
				d = h.cfg.MinDelay
			}
			if d > h.cfg.MaxDelay {
				d = h.cfg.MaxDelay
			}
			h.delayNS.Store(int64(d))
		}
	}
	return time.Duration(h.delayNS.Load())
}

// earn accrues hedge budget for one submitted request, clamped to the
// burst bound. The clamp races benignly: a concurrent earn can overshoot
// by a few tokens before the store lands, never unboundedly.
func (h *hedger) earn() {
	if v := h.credits.Add(int64(h.cfg.Budget * hedgeToken)); v > int64(h.cfg.Burst)*hedgeToken {
		h.credits.Store(int64(h.cfg.Burst) * hedgeToken)
	}
}

// spend takes one hedge token, reporting whether the budget allowed it.
func (h *hedger) spend() bool {
	if h.credits.Add(-hedgeToken) < 0 {
		h.credits.Add(hedgeToken)
		return false
	}
	return true
}

// attemptResult carries one submission attempt's outcome between the
// hedging goroutines and the arbiter.
type attemptResult struct {
	out  []float64
	cost energy.Cost
	err  error
}

// submitHedged runs the primary attempt with a hedge armed behind the
// adaptive delay. The first success wins and the loser's context is
// canceled (a queued duplicate is shed, a mid-batch one discarded —
// bounded waste either way). If one side fails hard, the other's outcome
// is awaited rather than discarded, so a hedge also doubles as fast
// failover insurance: a keyed request is lost only when *both* lanes fail.
func (f *Fleet) submitHedged(ctx context.Context, order []*Engine, seq uint64, in []float64) ([]float64, energy.Cost, error) {
	h := f.hedge
	h.earn()

	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	prim := make(chan attemptResult, 1)
	go func() {
		out, cost, err := f.tryOrder(pctx, order, seq, in)
		prim <- attemptResult{out, cost, err}
	}()

	timer := time.NewTimer(h.delay())
	defer timer.Stop()

	var hch chan attemptResult // nil until the hedge launches
	var hcancel context.CancelFunc
	defer func() {
		if hcancel != nil {
			hcancel()
		}
	}()

	for {
		select {
		case r := <-prim:
			if r.err == nil || hch == nil {
				return r.out, r.cost, r.err
			}
			// Primary failed with a hedge in flight: the hedge is now the
			// request's only hope — wait for it.
			if hr := <-hch; hr.err == nil {
				f.met.hedgeWon.Inc()
				return hr.out, hr.cost, nil
			}
			return r.out, r.cost, r.err
		case hr := <-hch:
			if hr.err == nil {
				pcancel()
				f.met.hedgeWon.Inc()
				return hr.out, hr.cost, nil
			}
			// Hedge lost its race with a failure; the primary decides.
			r := <-prim
			return r.out, r.cost, r.err
		case <-timer.C:
			if !h.spend() {
				f.met.hedgeDenied.Inc()
				continue // budget exhausted; ride the primary out
			}
			f.met.hedged.Inc()
			// The hedge prefers engines the primary tried last: order[0]
			// is almost certainly where the primary is stuck.
			hedgeOrder := make([]*Engine, 0, len(order))
			hedgeOrder = append(hedgeOrder, order[1:]...)
			hedgeOrder = append(hedgeOrder, order[0])
			hctx, cancel := context.WithCancel(ctx)
			hcancel = cancel
			hch = make(chan attemptResult, 1)
			go func() {
				out, cost, err := f.tryOrder(hctx, hedgeOrder, seq, in)
				hch <- attemptResult{out, cost, err}
			}()
		}
	}
}
