// Adaptive overload control: AIMD concurrency limits + priority brownout.
//
// The static ingress queue bound (serve.Config.QueueBound) is a blunt
// defense: it caps *memory*, not *latency* — a 4096-deep queue in front of
// a struggling engine is 4096 requests' worth of queueing delay before the
// first rejection. Two adaptive mechanisms replace it as the only line:
//
//   - Per-engine AIMD concurrency limiter (the TCP congestion-control
//     shape): each engine carries a concurrency limit; a request only
//     lands on an engine whose in-pipeline count is below its limit.
//     Every window of successes grows the limit by one (additive
//     increase); an ErrOverloaded refusal halves it (multiplicative
//     decrease). The limit converges to each engine's actual service
//     capacity, so queueing delay stays bounded even when the static
//     queue bound is generous — and a straggling engine's limit collapses,
//     diverting traffic before its queue fills.
//
//   - Brownout shedding by priority class: under sustained overload
//     (aggregate fleet load above aggregate limit for OnStreak
//     consecutive samples) the fleet stops accepting PriorityLow
//     requests outright — batch/background traffic browns out so
//     interactive traffic keeps its latency. The shed error wraps
//     serve.ErrOverloaded, so callers see the familiar capacity type.
//
// Both mechanisms are lock-free on the submit path; the brownout sampler
// runs every sampleEvery requests. See docs/RESILIENCE.md for the state
// machine.
package fleet

import (
	"sync/atomic"
)

// Priority classes for brownout shedding. The zero value is PriorityHigh:
// existing callers (Submit, SubmitSeq) are interactive by default, and
// only callers that explicitly mark work PriorityLow opt into brownout.
type Priority int

const (
	// PriorityHigh is interactive traffic: never brownout-shed.
	PriorityHigh Priority = iota
	// PriorityLow is deferrable traffic (batch scoring, backfills): shed
	// first under sustained overload.
	PriorityLow
)

// OverloadConfig tunes the AIMD limiter and brownout controller. The zero
// value is refined to the defaults by WithOverloadControl.
type OverloadConfig struct {
	// InitialLimit is each engine's starting concurrency limit (0 → 32).
	InitialLimit int
	// MinLimit / MaxLimit clamp the limit (0 → 1 / 4096). The floor keeps
	// a collapsed engine probing for recovery.
	MinLimit, MaxLimit int
	// OnStreak is how many consecutive overloaded samples switch brownout
	// on (0 → 3); OffStreak, how many healthy samples switch it off
	// (0 → 6; slower off than on, so brownout does not flap).
	OnStreak, OffStreak int
	// SampleEvery is the brownout sampling cadence in requests (0 → 32).
	SampleEvery int
}

// withDefaults fills zero fields with the canonical defaults.
func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.InitialLimit == 0 {
		c.InitialLimit = 32
	}
	if c.MinLimit == 0 {
		c.MinLimit = 1
	}
	if c.MaxLimit == 0 {
		c.MaxLimit = 4096
	}
	if c.OnStreak == 0 {
		c.OnStreak = 3
	}
	if c.OffStreak == 0 {
		c.OffStreak = 6
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 32
	}
	return c
}

// aimdLimiter is one engine's adaptive concurrency limit. All state is
// atomic; acquire is advisory (checked against the engine's in-flight
// count just before submit), which is the right strictness for a limiter
// whose job is convergence, not mutual exclusion.
type aimdLimiter struct {
	limit     atomic.Int64
	successes atomic.Int64
	min, max  int64
}

func newAIMDLimiter(cfg OverloadConfig) *aimdLimiter {
	l := &aimdLimiter{min: int64(cfg.MinLimit), max: int64(cfg.MaxLimit)}
	l.limit.Store(int64(cfg.InitialLimit))
	return l
}

// Limit returns the current concurrency limit.
func (l *aimdLimiter) Limit() int64 { return l.limit.Load() }

// admits reports whether an engine at the given in-flight count may take
// one more request.
func (l *aimdLimiter) admits(inflight int64) bool { return inflight < l.limit.Load() }

// onSuccess credits one completed request; a full limit's worth of
// successes raises the limit by one (additive increase).
func (l *aimdLimiter) onSuccess() {
	lim := l.limit.Load()
	if l.successes.Add(1) < lim {
		return
	}
	l.successes.Store(0)
	if lim < l.max {
		l.limit.CompareAndSwap(lim, lim+1)
	}
}

// onOverload halves the limit (multiplicative decrease), flooring at min.
func (l *aimdLimiter) onOverload() {
	for {
		lim := l.limit.Load()
		next := lim / 2
		if next < l.min {
			next = l.min
		}
		if next == lim || l.limit.CompareAndSwap(lim, next) {
			return
		}
	}
}

// brownout is the fleet-wide overload detector. It compares aggregate
// outstanding work against the aggregate concurrency limit on a sampling
// cadence and flips the shedding flag on sustained excess.
type brownout struct {
	cfg       OverloadConfig
	tick      atomic.Uint64
	onStreak  atomic.Int64
	offStreak atomic.Int64
	shedding  atomic.Bool
}

func newBrownout(cfg OverloadConfig) *brownout { return &brownout{cfg: cfg} }

// active reports whether low-priority traffic is currently shed.
func (b *brownout) active() bool { return b.shedding.Load() }

// observe runs the sampler every SampleEvery requests: overloaded when the
// fleet's outstanding work exceeds its aggregate concurrency limit (work
// is queueing beyond what the limiters will admit).
func (b *brownout) observe(engines []*Engine) {
	if b.tick.Add(1)%uint64(b.cfg.SampleEvery) != 0 {
		return
	}
	var load, limit int64
	for _, e := range engines {
		load += e.Load()
		if e.lim != nil {
			limit += e.lim.Limit()
		}
	}
	b.update(load, limit)
}

// update feeds one (load, limit) sample into the streak state machine.
// Streak counters debounce both transitions: OnStreak consecutive
// overloaded samples switch shedding on, OffStreak healthy ones switch it
// off.
func (b *brownout) update(load, limit int64) {
	if load > limit {
		b.offStreak.Store(0)
		if b.onStreak.Add(1) >= int64(b.cfg.OnStreak) {
			b.shedding.Store(true)
		}
		return
	}
	b.onStreak.Store(0)
	if b.offStreak.Add(1) >= int64(b.cfg.OffStreak) {
		b.shedding.Store(false)
	}
}
