package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cimrev/internal/chaos"
	"cimrev/internal/metrics"
	"cimrev/internal/parallel"
	"cimrev/internal/serve"
)

// stragglerInjector builds an injector that slows engine 0 by delay on
// every batch — the canonical hedging target.
func stragglerInjector(delay time.Duration) *chaos.Injector {
	return chaos.New(chaos.Plan{
		Name: "straggler", Seed: 1, SlowEngine: 0, SlowDelay: delay,
		CrashEngine: -1,
	})
}

// TestHedgeBitIdentity is the hedging determinism contract: a hedged fleet
// racing a chaos straggler produces outputs bit-identical to an unhedged
// single-engine keyed submission, at client widths 1 and 8. Whichever lane
// wins the race, the keyed-noise contract makes its answer the only
// possible answer.
func TestHedgeBitIdentity(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	const n = 32
	net := testMLP(t, 3, 32, 24, 10)
	inputs := testInputs(n, 32, 7)

	// Unhedged reference: one engine, no chaos, serial keyed submission.
	parallel.SetWidth(1)
	ref, _, err := New(testConfig(), net, WithEngines(1))
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, n)
	for i := 0; i < n; i++ {
		out, _, err := ref.SubmitSeq(context.Background(), uint64(i), inputs[i])
		if err != nil {
			t.Fatalf("reference request %d: %v", i, err)
		}
		want[i] = out
	}
	ref.Close()

	for _, width := range []int{1, 8} {
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			parallel.SetWidth(width)
			// Aggressive hedging (tiny delay, fat budget) against a slowed
			// engine 0, so hedges actually fire and win.
			f, _, err := New(testConfig(), net,
				WithEngines(3),
				WithPolicy(RoundRobin()),
				WithChaos(stragglerInjector(2*time.Millisecond)),
				WithHedge(HedgeConfig{MinDelay: 100 * time.Microsecond, MaxDelay: 500 * time.Microsecond, Budget: 1, Burst: n}),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()

			got := make([][]float64, n)
			sem := make(chan struct{}, width)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					out, _, err := f.SubmitSeq(context.Background(), uint64(i), inputs[i])
					if err != nil {
						t.Errorf("request %d: %v", i, err)
						return
					}
					got[i] = out
				}(i)
			}
			wg.Wait()
			for i := range want {
				if !sliceEq(got[i], want[i]) {
					t.Fatalf("request %d: hedged output differs from unhedged reference\n got %v\nwant %v",
						i, got[i], want[i])
				}
			}
			if hedged := f.Registry().Counter("fleet.hedged").Value(); hedged == 0 {
				t.Error("no hedges fired; the straggler race was not exercised")
			}
		})
	}
}

// TestHedgeWinsAgainstStraggler: with engine 0 stalled well past the hedge
// delay, hedges must both fire and win, and no request may fail.
func TestHedgeWinsAgainstStraggler(t *testing.T) {
	net := testMLP(t, 3, 24, 12)
	f, _, err := New(testConfig(), net,
		WithEngines(3),
		WithPolicy(RoundRobin()),
		WithChaos(stragglerInjector(5*time.Millisecond)),
		WithHedge(HedgeConfig{MinDelay: 100 * time.Microsecond, MaxDelay: 300 * time.Microsecond, Budget: 1, Burst: 64}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	in := testInputs(1, 24, 9)[0]
	for seq := uint64(0); seq < 24; seq++ {
		if _, _, err := f.SubmitSeq(context.Background(), seq, in); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
	}
	reg := f.Registry()
	hedged := reg.Counter("fleet.hedged").Value()
	won := reg.Counter("fleet.hedge_won").Value()
	if hedged == 0 {
		t.Fatal("fleet.hedged = 0, want hedges against a 5ms straggler with a 300µs delay cap")
	}
	if won == 0 {
		t.Errorf("fleet.hedge_won = 0 with %d hedges fired; hedge never beat the straggler", hedged)
	}
	if won > hedged {
		t.Errorf("fleet.hedge_won %d > fleet.hedged %d", won, hedged)
	}
}

// TestHedgeBudget: the token bucket caps hedge volume at roughly
// Budget × requests + Burst, and denials are counted.
func TestHedgeBudget(t *testing.T) {
	h := newHedger(HedgeConfig{Budget: 0.05, Burst: 2}, nil)
	// Drain the initial burst.
	spent := 0
	for h.spend() {
		spent++
	}
	if spent != 2 {
		t.Fatalf("initial burst allowed %d hedges, want 2", spent)
	}
	// 5% budget: 20 requests earn exactly one hedge.
	for i := 0; i < 19; i++ {
		h.earn()
		if h.spend() {
			t.Fatalf("hedge allowed after only %d requests at 5%% budget", i+1)
		}
	}
	h.earn()
	if !h.spend() {
		t.Error("hedge denied after 20 requests at 5% budget")
	}
}

// TestHedgerDelayClamps: the adaptive delay tracks the latency histogram's
// quantile but never leaves [MinDelay, MaxDelay], and stays at MaxDelay
// while there is no history.
func TestHedgerDelayClamps(t *testing.T) {
	reg := newFleetMetrics(metrics.NewRegistry())
	h := newHedger(HedgeConfig{MinDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}, reg.latencyNS)
	if got := h.delay(); got != 8*time.Millisecond {
		t.Fatalf("empty-history delay = %v, want MaxDelay", got)
	}
	// Saturate the histogram with tiny latencies: the delay must clamp up
	// to MinDelay, not chase the 100ns p95.
	for i := 0; i < 1000; i++ {
		reg.latencyNS.Observe(100)
	}
	for i := 0; i < 2*delayEvery; i++ {
		h.delay()
	}
	if got := h.delay(); got != time.Millisecond {
		t.Errorf("fast-fleet delay = %v, want MinDelay clamp", got)
	}
	// Now huge latencies: the delay must clamp down to MaxDelay.
	for i := 0; i < 100000; i++ {
		reg.latencyNS.Observe(5e9)
	}
	for i := 0; i < 2*delayEvery; i++ {
		h.delay()
	}
	if got := h.delay(); got != 8*time.Millisecond {
		t.Errorf("slow-fleet delay = %v, want MaxDelay clamp", got)
	}
}

// TestAIMDLimiter pins the control law: a full limit's worth of successes
// adds one; an overload halves; both respect the clamps.
func TestAIMDLimiter(t *testing.T) {
	l := newAIMDLimiter(OverloadConfig{InitialLimit: 8, MinLimit: 2, MaxLimit: 10}.withDefaults())
	if got := l.Limit(); got != 8 {
		t.Fatalf("initial limit = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		l.onSuccess()
	}
	if got := l.Limit(); got != 9 {
		t.Errorf("limit after one success window = %d, want 9 (additive increase)", got)
	}
	l.onOverload()
	if got := l.Limit(); got != 4 {
		t.Errorf("limit after overload = %d, want 4 (multiplicative decrease)", got)
	}
	l.onOverload()
	l.onOverload()
	if got := l.Limit(); got != 2 {
		t.Errorf("limit after repeated overload = %d, want MinLimit 2", got)
	}
	for i := 0; i < 1000; i++ {
		l.onSuccess()
	}
	if got := l.Limit(); got != 10 {
		t.Errorf("limit after sustained success = %d, want MaxLimit 10", got)
	}
	if !l.admits(9) || l.admits(10) {
		t.Errorf("admits(9)=%v admits(10)=%v at limit 10, want true/false", l.admits(9), l.admits(10))
	}
}

// TestBrownoutStateMachine pins the debounced transitions: OnStreak
// consecutive overloaded samples switch shedding on, OffStreak healthy
// samples switch it off, and interleaved samples reset the streaks.
func TestBrownoutStateMachine(t *testing.T) {
	b := newBrownout(OverloadConfig{OnStreak: 3, OffStreak: 2}.withDefaults())
	over := func() { b.update(100, 10) }
	calm := func() { b.update(1, 10) }

	over()
	over()
	if b.active() {
		t.Fatal("brownout after 2/3 overloaded samples")
	}
	calm() // resets the on-streak
	over()
	over()
	if b.active() {
		t.Fatal("brownout despite streak reset")
	}
	over()
	if !b.active() {
		t.Fatal("no brownout after 3 consecutive overloaded samples")
	}
	calm()
	if !b.active() {
		t.Fatal("brownout cleared after 1/2 healthy samples")
	}
	calm()
	if b.active() {
		t.Fatal("brownout not cleared after OffStreak healthy samples")
	}
}

// TestBrownoutShedsLowPriorityOnly: with shedding forced on, PriorityLow
// submissions are refused at the door with a capacity-typed error while
// PriorityHigh traffic still serves.
func TestBrownoutShedsLowPriorityOnly(t *testing.T) {
	net := testMLP(t, 3, 16, 8)
	f, _, err := New(testConfig(), net, WithEngines(2), WithOverloadControl(OverloadConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in := testInputs(1, 16, 9)[0]

	f.over.shedding.Store(true)
	_, _, err = f.SubmitSeqPri(context.Background(), 1, in, PriorityLow)
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("brownout shed err = %v, want ErrOverloaded", err)
	}
	if got := f.Registry().Counter("fleet.brownout_shed").Value(); got != 1 {
		t.Errorf("fleet.brownout_shed = %d, want 1", got)
	}
	if _, _, err := f.SubmitSeqPri(context.Background(), 2, in, PriorityHigh); err != nil {
		t.Fatalf("high-priority request during brownout: %v", err)
	}
	if !f.BrownoutActive() {
		t.Error("BrownoutActive() = false while shedding")
	}

	f.over.shedding.Store(false)
	if _, _, err := f.SubmitSeqPri(context.Background(), 3, in, PriorityLow); err != nil {
		t.Fatalf("low-priority request after brownout lifted: %v", err)
	}
}

// TestLimiterRefusesOverLimit: engines whose in-flight count sits at the
// AIMD limit are skipped as capacity refusals; when every engine is over
// limit the fleet types the failure ErrOverloaded, and traffic resumes
// when the load drains.
func TestLimiterRefusesOverLimit(t *testing.T) {
	net := testMLP(t, 3, 16, 8)
	f, _, err := New(testConfig(), net, WithEngines(2),
		WithOverloadControl(OverloadConfig{InitialLimit: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in := testInputs(1, 16, 9)[0]

	for _, e := range f.Engines() {
		if e.Limit() != 4 {
			t.Fatalf("engine %d limit = %d, want 4", e.ID(), e.Limit())
		}
		e.inflight.Store(4) // simulate a saturated pipeline
	}
	_, _, err = f.SubmitSeq(context.Background(), 1, in)
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("over-limit submit err = %v, want ErrOverloaded", err)
	}
	if got := f.Registry().Counter("fleet.limiter_refused").Value(); got != 2 {
		t.Errorf("fleet.limiter_refused = %d, want 2 (both engines)", got)
	}
	for _, e := range f.Engines() {
		e.inflight.Store(0)
	}
	if _, _, err := f.SubmitSeq(context.Background(), 2, in); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestChaosCrashFailsOver: an engine in its chaos dark window sheds typed
// (serve.ErrUnhealthy under the hood) and the fleet fails every affected
// keyed request over to a healthy engine — zero lost requests, outputs
// still bit-identical to a fault-free single engine.
func TestChaosCrashFailsOver(t *testing.T) {
	const n = 40
	net := testMLP(t, 3, 24, 12)
	inputs := testInputs(n, 24, 5)

	ref, _, err := New(testConfig(), net, WithEngines(1))
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, n)
	for i := 0; i < n; i++ {
		out, _, err := ref.SubmitSeq(context.Background(), uint64(i), inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	ref.Close()

	// Engine 0 is dark from its very first batch; round-robin still offers
	// it first for a third of the requests.
	inj := chaos.New(chaos.Plan{Name: "crash", Seed: 2, SlowEngine: -1, CrashEngine: 0, CrashStart: 0, CrashEnd: 1 << 30})
	f, _, err := New(testConfig(), net, WithEngines(3), WithChaos(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < n; i++ {
		out, _, err := f.SubmitSeq(context.Background(), uint64(i), inputs[i])
		if err != nil {
			t.Fatalf("request %d lost to chaos crash: %v", i, err)
		}
		if !sliceEq(out, want[i]) {
			t.Fatalf("request %d: output differs from fault-free reference after failover", i)
		}
	}
	if f.Engines()[0].Routed() != 0 {
		t.Error("dark engine credited with routed requests")
	}
	if got := f.Registry().Counter("fleet.failovers").Value(); got == 0 {
		t.Error("fleet.failovers = 0; crash window never exercised failover")
	}
}

// TestLeaveJoinRacingRollingWithHedges is the churn worst case, pinned
// under `make race`: hedged keyed traffic in flight while a rolling
// reprogram walks the fleet AND engines leave and join mid-roll. No
// request may fail, and the keyed outputs must stay bit-identical to the
// pre-roll network's single-engine oracle for requests served before the
// roll's weights land (both networks are checked; every output must match
// one of them — which weights serve a racing request is deliberately
// unspecified, the *identity* of the answer per network is not).
func TestLeaveJoinRacingRollingWithHedges(t *testing.T) {
	netA := testMLP(t, 3, 24, 16, 8)
	netB := testMLP(t, 4, 24, 16, 8)
	f, _, err := New(testConfig(), netA,
		WithEngines(3),
		WithPolicy(LeastLoaded()),
		WithChaos(stragglerInjector(500*time.Microsecond)),
		WithHedge(HedgeConfig{MinDelay: 200 * time.Microsecond, MaxDelay: time.Millisecond, Budget: 0.5, Burst: 32}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Per-network oracles for the bit-identity check.
	oracleA, _, err := New(testConfig(), netA, WithEngines(1))
	if err != nil {
		t.Fatal(err)
	}
	defer oracleA.Close()
	oracleB, _, err := New(testConfig(), netB, WithEngines(1))
	if err != nil {
		t.Fatal(err)
	}
	defer oracleB.Close()

	inputs := testInputs(8, 24, 5)
	var stop atomic.Bool
	var seqCtr atomic.Uint64
	var reqs, fails atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				seq := seqCtr.Add(1)
				in := inputs[seq%uint64(len(inputs))]
				out, _, err := f.SubmitSeq(context.Background(), seq, in)
				reqs.Add(1)
				if err != nil {
					fails.Add(1)
					t.Errorf("worker %d seq %d: %v", w, seq, err)
					return
				}
				wantA, _, err := oracleA.SubmitSeq(context.Background(), seq, in)
				if err != nil {
					t.Errorf("oracle A seq %d: %v", seq, err)
					return
				}
				if sliceEq(out, wantA) {
					continue
				}
				wantB, _, err := oracleB.SubmitSeq(context.Background(), seq, in)
				if err != nil {
					t.Errorf("oracle B seq %d: %v", seq, err)
					return
				}
				if !sliceEq(out, wantB) {
					fails.Add(1)
					t.Errorf("seq %d: output matches neither netA nor netB oracle", seq)
					return
				}
			}
		}(w)
	}

	// The race: roll to netB while an engine leaves and another joins.
	var churn sync.WaitGroup
	churn.Add(2)
	go func() {
		defer churn.Done()
		rep := f.RollingReprogram(netB)
		if err := rep.Err(); err != nil {
			t.Errorf("rolling reprogram: %v", err)
		}
	}()
	go func() {
		defer churn.Done()
		time.Sleep(2 * time.Millisecond)
		if err := f.Leave(2); err != nil {
			t.Errorf("leave: %v", err)
		}
		if _, _, err := f.Join(); err != nil {
			t.Errorf("join: %v", err)
		}
	}()
	churn.Wait()
	time.Sleep(5 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if fails.Load() != 0 {
		t.Fatalf("%d/%d requests failed during hedged churn + roll", fails.Load(), reqs.Load())
	}
	if reqs.Load() == 0 {
		t.Fatal("no traffic flowed during the race")
	}
}
