// Request routing: pluggable policies over the engine set.
//
// Routing has a determinism obligation the usual load balancer does not:
// because every request carries its own noise key (fleet.go), *any*
// placement yields bit-identical outputs — so policies are free to chase
// load, weights, or wear without ever being consulted about correctness.
// What policies must still be is reproducible in themselves: given the
// same engine snapshot and the same request sequence number they return
// the same preference order, so a replayed trace routes identically. All
// built-in policies are stateless pure functions of (snapshot, seq) for
// exactly this reason.
package fleet

import (
	"fmt"
	"sort"
	"strings"
)

// Policy orders routable engines by preference for one request.
//
// Order receives the routable engine snapshot (non-draining, breaker
// closed; never empty) and the request's fleet sequence number, and
// returns the engines in try-first order. Implementations must not mutate
// candidates and should be pure functions of their arguments (plus
// whatever live signals — queue depth, wear — they poll), so that a
// replayed request stream routes the same way.
type Policy interface {
	// Name returns the policy's CLI name (cimserve -policy).
	Name() string
	// Order returns candidates sorted into try-first order.
	Order(candidates []*Engine, seq uint64) []*Engine
}

// Router applies a Policy to the fleet's live engine set, filtering out
// engines that cannot take traffic (draining or tripped) before the
// policy sees them. A Router is stateless and safe for concurrent use as
// long as its Policy is.
type Router struct {
	policy Policy
}

// NewRouter wraps policy; a nil policy selects round-robin.
func NewRouter(policy Policy) *Router {
	if policy == nil {
		policy = RoundRobin()
	}
	return &Router{policy: policy}
}

// Policy returns the router's policy.
func (r *Router) Policy() Policy { return r.policy }

// Route filters engines down to the routable set (not draining, breaker
// closed) and returns it in the policy's preference order, along with how
// many engines were excluded for a tripped breaker — the signal the fleet
// uses to type its all-refused error (health vs capacity).
func (r *Router) Route(engines []*Engine, seq uint64) (order []*Engine, tripped int) {
	routable := make([]*Engine, 0, len(engines))
	for _, e := range engines {
		switch {
		case e.Draining():
		case e.Tripped():
			tripped++
		default:
			routable = append(routable, e)
		}
	}
	if len(routable) == 0 {
		return nil, tripped
	}
	return r.policy.Order(routable, seq), tripped
}

// ParsePolicy maps a CLI name to a policy: "round-robin" (alias "rr"),
// "least-loaded" (alias "ll"), "weighted", "wear-aware" (alias "wear").
func ParsePolicy(name string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "round-robin", "roundrobin", "rr":
		return RoundRobin(), nil
	case "least-loaded", "leastloaded", "ll":
		return LeastLoaded(), nil
	case "weighted":
		return Weighted(), nil
	case "wear-aware", "wearaware", "wear":
		return WearAware(), nil
	default:
		return nil, fmt.Errorf("fleet: unknown policy %q (want round-robin, least-loaded, weighted, wear-aware)", name)
	}
}

// PolicyNames lists the canonical policy names (cimbench -exp fleet sweeps
// all of them).
func PolicyNames() []string {
	return []string{"round-robin", "least-loaded", "weighted", "wear-aware"}
}

// RoundRobin returns the policy that rotates through engines by request
// sequence number: request seq tries engine seq mod n first, then the
// rest in ring order. With a dense request stream this spreads load
// uniformly regardless of per-engine speed.
func RoundRobin() Policy { return roundRobin{} }

type roundRobin struct{}

func (roundRobin) Name() string { return "round-robin" }

func (roundRobin) Order(candidates []*Engine, seq uint64) []*Engine {
	n := len(candidates)
	out := make([]*Engine, 0, n)
	start := int(seq % uint64(n))
	for i := 0; i < n; i++ {
		out = append(out, candidates[(start+i)%n])
	}
	return out
}

// LeastLoaded returns the policy that prefers the engine with the least
// outstanding work — ingress-queue depth plus in-flight requests —
// breaking ties by rotating on the sequence number so tied engines share
// traffic instead of all landing on the lowest ID. A slow or momentarily
// busy engine accumulates load and stops attracting traffic until it
// drains.
func LeastLoaded() Policy { return leastLoaded{} }

type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Order(candidates []*Engine, seq uint64) []*Engine {
	// Rotate first so equal-load engines tie-break round-robin, then
	// stable-sort by load: the rotation only reorders within load classes.
	out := roundRobin{}.Order(candidates, seq)
	load := make(map[int]int64, len(out))
	for _, e := range out {
		load[e.id] = e.Load()
	}
	sort.SliceStable(out, func(i, j int) bool {
		return load[out[i].id] < load[out[j].id]
	})
	return out
}

// Weighted returns the policy that spreads requests proportionally to
// engine weight: over any window of totalWeight consecutive sequence
// numbers, an engine of weight w is first choice exactly w times.
// Remaining engines follow in ring order, so failover stays local.
func Weighted() Policy { return weighted{} }

type weighted struct{}

func (weighted) Name() string { return "weighted" }

func (weighted) Order(candidates []*Engine, seq uint64) []*Engine {
	n := len(candidates)
	total := 0
	for _, e := range candidates {
		total += e.weight
	}
	// Walk the weight wheel: slot seq%total lands inside some engine's
	// weight band; that engine leads.
	slot := int(seq % uint64(total))
	start := 0
	for i, e := range candidates {
		if slot < e.weight {
			start = i
			break
		}
		slot -= e.weight
	}
	out := make([]*Engine, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, candidates[(start+i)%n])
	}
	return out
}

// WearAware returns the policy that routes away from damaged engines. Each
// engine scores by its live fault report — lost columns dominate (the
// engine is serving corrupted columns), then consumed spares (one failure
// from loss), then lifetime cell writes (endurance headroom) — and lower
// scores lead. When every engine scores identically (the common fault-free
// case, where inference performs no writes and no wear signal exists), the
// policy falls back to least-loaded ordering rather than pinning all
// traffic on the lowest engine ID.
func WearAware() Policy { return wearAware{} }

type wearAware struct{}

func (wearAware) Name() string { return "wear-aware" }

// Wear-score weights: a lost column is catastrophic relative to a used
// spare, which in turn dominates raw write wear. Writes are divided down
// so programming-sized counts (~1e5 cells/tile) cannot add up to one
// spare's worth of score.
const (
	wearLostCol   = int64(1) << 40
	wearSpareUsed = int64(1) << 20
	wearWriteDiv  = 1 << 10
)

func (wearAware) Order(candidates []*Engine, seq uint64) []*Engine {
	score := make(map[int]int64, len(candidates))
	allEqual := true
	for i, e := range candidates {
		h := e.Health().Total
		s := int64(h.LostCols)*wearLostCol +
			int64(h.SparesUsed)*wearSpareUsed +
			e.Wear()/wearWriteDiv
		score[e.id] = s
		if i > 0 && s != score[candidates[0].id] {
			allEqual = false
		}
	}
	if allEqual {
		// No wear differential (typically: faults disabled, so no signal
		// at all) — degrade gracefully to the load signal.
		return leastLoaded{}.Order(candidates, seq)
	}
	out := roundRobin{}.Order(candidates, seq)
	load := make(map[int]int64, len(out))
	for _, e := range out {
		load[e.id] = e.Load()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if score[out[i].id] != score[out[j].id] {
			return score[out[i].id] < score[out[j].id]
		}
		return load[out[i].id] < load[out[j].id]
	})
	return out
}
