// Rolling shadow reprogram: fleet-wide weight updates with zero downtime.
//
// A single engine already hides reprogramming behind its shadow pair
// (internal/serve): the standby programs at full write cost while the live
// engine serves, and an atomic swap makes the update visible. The fleet
// generalizes that to N boards with one extra constraint — only one
// engine's standby programs at a time. Serially rolling the update keeps
// the fleet's aggregate write bandwidth (and simulated power draw) bounded
// at one board's worth, and means at every instant N engines are serving
// on *some* consistent weight version; requests racing the roll may be
// answered by either version, exactly as with a single shadow swap.
//
// State machine per engine (see docs/CLUSTER.md for the fleet view):
//
//	idle ──▶ programming standby ──▶ [repair] ──▶ probe ──▶ swap ──▶ idle
//	                │                    │           │
//	                └────────────────────┴───────────┴──▶ breaker trips,
//	                     engine sheds, roll continues with the next engine
//
// Promotion is health-gated twice: the shadow pair refuses to swap in a
// standby that stays unhealthy after repair, and the breaker's post-swap
// probe trips on accuracy regression. A failed engine is left tripped
// (visible on /healthz, skipped by the router) rather than failing the
// roll: the rest of the fleet still converges to the new weights.
package fleet

import (
	"fmt"
	"time"

	"cimrev/internal/energy"
	"cimrev/internal/nn"
)

// EngineReprogram is one engine's outcome within a rolling reprogram.
type EngineReprogram struct {
	// ID is the engine's fleet ID.
	ID int
	// Visible is the cost on the serving critical path (one buffer swap).
	Visible energy.Cost
	// Hidden is the full programming cost paid behind serving, including
	// failed attempts and repair passes.
	Hidden energy.Cost
	// Err is the engine's failure, nil on success. A failed engine's
	// breaker is left tripped.
	Err error
}

// RollingReport aggregates a rolling reprogram across the fleet.
type RollingReport struct {
	// Attempted / Succeeded / Failed count engines. Skipped engines
	// (drained mid-roll) are not attempted.
	Attempted, Succeeded, Failed int
	// Visible and Hidden fold the per-engine costs sequentially — the roll
	// is serial by design, so latencies sum.
	Visible, Hidden energy.Cost
	// PerEngine holds each attempted engine's outcome in roll order.
	PerEngine []EngineReprogram
}

// Err returns nil when every attempted engine succeeded, and otherwise an
// error naming the failed engines (wrapping the first failure).
func (r *RollingReport) Err() error {
	if r.Failed == 0 {
		return nil
	}
	var first error
	ids := make([]int, 0, r.Failed)
	for _, pe := range r.PerEngine {
		if pe.Err != nil {
			ids = append(ids, pe.ID)
			if first == nil {
				first = pe.Err
			}
		}
	}
	return fmt.Errorf("fleet: rolling reprogram failed on %d/%d engines %v: %w",
		r.Failed, r.Attempted, ids, first)
}

// RollingStatus is the observable state of the rolling scheduler, exposed
// on cimserve's /healthz.
type RollingStatus struct {
	// Active reports whether a roll is in progress.
	Active bool `json:"active"`
	// EngineID is the engine currently reprogramming (valid while Active).
	EngineID int `json:"engine_id"`
	// Done and Failed count engines completed so far; Total is the roll's
	// engine count.
	Done   int `json:"done"`
	Failed int `json:"failed"`
	Total  int `json:"total"`
}

// RollingStatus returns the current scheduler state.
func (f *Fleet) RollingStatus() RollingStatus {
	f.statusMu.Lock()
	defer f.statusMu.Unlock()
	return f.status
}

func (f *Fleet) setStatus(s RollingStatus) {
	f.statusMu.Lock()
	f.status = s
	f.statusMu.Unlock()
}

// RollingReprogram updates the whole fleet to net with zero downtime: each
// engine in turn programs its standby behind serving and swaps, one engine
// at a time, health-gated exactly as Breaker.Reprogram (retry + backoff,
// repair-before-swap, post-swap probe). The fleet serves throughout — the
// router keeps routing to every engine not currently tripped, and the
// engine being reprogrammed keeps serving its old weights until its swap.
//
// Engines joined after the roll starts program the new network on join and
// are not rolled; engines that leave mid-roll are skipped. A failed engine
// is left tripped and routed around; the roll continues. Rolls are
// serialized fleet-wide: a second RollingReprogram blocks until the first
// finishes. The per-engine outcomes, including the visible/hidden cost
// split, are in the returned report (check report.Err()).
//
// With a tracer configured, the roll is one "fleet.rolling_reprogram" root
// span annotated with engine counts; each engine's attempt appears as its
// own "serve.reprogram" root (the breaker owns that span).
func (f *Fleet) RollingReprogram(net *nn.Network) *RollingReport {
	f.rollMu.Lock()
	defer f.rollMu.Unlock()

	// Future joiners program net; the roll snapshot covers current members.
	f.mu.Lock()
	f.net = net
	engines := make([]*Engine, len(f.engines))
	copy(engines, f.engines)
	f.mu.Unlock()

	f.met.rollings.Inc()
	sp := f.tracer.Root("fleet.rolling_reprogram")
	rep := &RollingReport{Visible: energy.Zero, Hidden: energy.Zero}
	total := len(engines)
	for _, e := range engines {
		if e.Draining() {
			continue
		}
		f.setStatus(RollingStatus{
			Active: true, EngineID: e.id,
			Done: rep.Attempted, Failed: rep.Failed, Total: total,
		})
		// Chaos reprogram hang: the standby stalls before programming —
		// the roll (and the rollMu it holds) is pinned while the rest of
		// the fleet keeps serving, which is exactly the window the
		// crash-during-rolling-reprogram scenario stresses.
		if d := f.chaos.ReprogramDelay(e.id); d > 0 {
			time.Sleep(d)
		}
		v, h, err := e.brk.Reprogram(net)
		pe := EngineReprogram{ID: e.id, Visible: v, Hidden: h, Err: err}
		rep.PerEngine = append(rep.PerEngine, pe)
		rep.Attempted++
		rep.Visible = rep.Visible.Seq(v)
		rep.Hidden = rep.Hidden.Seq(h)
		if err != nil {
			rep.Failed++
		} else {
			rep.Succeeded++
		}
	}
	f.setStatus(RollingStatus{Done: rep.Attempted, Failed: rep.Failed, Total: total})
	if sp.Active() {
		sp.Annotate("engines", float64(rep.Attempted))
		sp.Annotate("failed", float64(rep.Failed))
	}
	sp.End(rep.Visible)
	return rep
}
