package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cimrev/internal/dpe"
	"cimrev/internal/faultinject"
	"cimrev/internal/nn"
	"cimrev/internal/parallel"
	"cimrev/internal/serve"
)

// testConfig is a small noisy DPE so determinism tests exercise the keyed
// noise path, not just the deterministic matrix math.
func testConfig() dpe.Config {
	cfg := dpe.DefaultConfig()
	cfg.Crossbar.Rows, cfg.Crossbar.Cols = 64, 64
	cfg.Crossbar.ReadNoise = 0.02
	return cfg
}

func testMLP(t *testing.T, seed int64, sizes ...int) *nn.Network {
	t.Helper()
	net, err := nn.NewMLP("fleet-test", sizes, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testInputs(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]float64, n)
	for i := range inputs {
		inputs[i] = make([]float64, dim)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*2 - 1
		}
	}
	return inputs
}

func sliceEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{Engines: 0},
		{Engines: -2},
		{Engines: 2, Weights: []int{1}},
		{Engines: 2, Weights: []int{1, 0}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d (%+v) accepted", i, cfg)
		}
	}
	net := testMLP(t, 3, 16, 8)
	if _, _, err := New(testConfig(), net, WithEngines(0)); err == nil {
		t.Error("New accepted zero engines")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
	}
	for alias, want := range map[string]string{
		"rr": "round-robin", "ll": "least-loaded", "wear": "wear-aware", "RoundRobin": "round-robin",
	} {
		p, err := ParsePolicy(alias)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", alias, err)
		}
		if p.Name() != want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", alias, p.Name(), want)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestFleetDeterminism is the cluster determinism contract: per-request
// outputs are bit-identical between a 1-engine and a 4-engine fleet, under
// every routing policy, at worker-pool widths 1 and 8, with analog read
// noise enabled. The noise key is the request's sequence number, so
// placement, batch composition, and parallelism are all invisible.
func TestFleetDeterminism(t *testing.T) {
	t.Cleanup(func() { parallel.SetWidth(0) })
	const n = 48
	net := testMLP(t, 3, 32, 24, 10)
	inputs := testInputs(n, 32, 7)

	// Reference: single engine, requests submitted one at a time in order.
	parallel.SetWidth(1)
	ref, _, err := New(testConfig(), net, WithEngines(1))
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, n)
	for i := 0; i < n; i++ {
		out, _, err := ref.SubmitSeq(context.Background(), uint64(i), inputs[i])
		if err != nil {
			t.Fatalf("reference request %d: %v", i, err)
		}
		want[i] = out
	}
	ref.Close()

	for _, policyName := range PolicyNames() {
		for _, width := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/width=%d", policyName, width), func(t *testing.T) {
				parallel.SetWidth(width)
				policy, err := ParsePolicy(policyName)
				if err != nil {
					t.Fatal(err)
				}
				opts := []Option{WithEngines(4), WithPolicy(policy)}
				if policyName == "weighted" {
					opts = append(opts, WithWeights(1, 2, 3, 2))
				}
				f, _, err := New(testConfig(), net, opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()

				got := make([][]float64, n)
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						out, _, err := f.SubmitSeq(context.Background(), uint64(i), inputs[i])
						if err != nil {
							t.Errorf("request %d: %v", i, err)
							return
						}
						got[i] = out
					}(i)
				}
				wg.Wait()
				for i := range want {
					if !sliceEq(got[i], want[i]) {
						t.Fatalf("request %d: 4-engine output differs from 1-engine reference\n got %v\nwant %v",
							i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestFleetErrorTyping pins the fleet-wide error distinction: every
// breaker tripped wraps serve.ErrUnhealthy, every server refusing on
// capacity wraps serve.ErrOverloaded, and an empty fleet is ErrNoEngines.
func TestFleetErrorTyping(t *testing.T) {
	net := testMLP(t, 3, 16, 8)
	in := testInputs(1, 16, 9)[0]

	// Build a probe guaranteed to fail: labels deliberately off by one
	// from the live engines' argmax, floor at 1.0.
	scout, _, err := New(testConfig(), net, WithEngines(1))
	if err != nil {
		t.Fatal(err)
	}
	probeIns := testInputs(4, 16, 11)
	wrongLabels := make([]int, len(probeIns))
	for i, pin := range probeIns {
		out, _, err := scout.SubmitSeq(context.Background(), uint64(1000+i), pin)
		if err != nil {
			t.Fatal(err)
		}
		am := 0
		for j := range out {
			if out[j] > out[am] {
				am = j
			}
		}
		wrongLabels[i] = (am + 1) % len(out)
	}
	scout.Close()

	t.Run("all-unhealthy", func(t *testing.T) {
		f, _, err := New(testConfig(), net, WithEngines(2),
			WithServeOptions(serve.WithProbe(1.0, probeIns, wrongLabels)))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rep := f.RollingReprogram(net)
		if rep.Failed != 2 || rep.Err() == nil {
			t.Fatalf("rolling reprogram with failing probe: failed=%d err=%v", rep.Failed, rep.Err())
		}
		for _, e := range f.Engines() {
			if !e.Tripped() {
				t.Fatalf("engine %d not tripped after failed probe", e.ID())
			}
		}
		_, _, err = f.Submit(context.Background(), in)
		if !errors.Is(err, serve.ErrUnhealthy) {
			t.Errorf("all-tripped fleet: err = %v, want ErrUnhealthy", err)
		}
		if errors.Is(err, serve.ErrOverloaded) {
			t.Errorf("all-tripped fleet error should not be ErrOverloaded: %v", err)
		}
		if got := f.Registry().Counter("fleet.unrouteable").Value(); got == 0 {
			t.Error("fleet.unrouteable not counted")
		}
	})

	t.Run("failover-around-tripped", func(t *testing.T) {
		f, _, err := New(testConfig(), net, WithEngines(2),
			WithServeOptions(serve.WithProbe(1.0, probeIns, wrongLabels)))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		// Trip only engine 0; engine 1 stays healthy.
		engines := f.Engines()
		if _, _, err := engines[0].Breaker().Reprogram(net); err == nil {
			t.Fatal("expected probe failure")
		}
		if !engines[0].Tripped() || engines[1].Tripped() {
			t.Fatalf("want exactly engine 0 tripped: %v %v", engines[0].Tripped(), engines[1].Tripped())
		}
		// Round-robin would lead with engine 0 for even seqs; the router
		// must filter it out and serve from engine 1 regardless.
		for seq := uint64(0); seq < 4; seq++ {
			if _, _, err := f.SubmitSeq(context.Background(), seq, in); err != nil {
				t.Fatalf("seq %d: %v (want failover to healthy engine)", seq, err)
			}
		}
		if got := engines[1].Routed(); got != 4 {
			t.Errorf("healthy engine served %d requests, want 4", got)
		}
	})

	t.Run("all-capacity", func(t *testing.T) {
		f, _, err := New(testConfig(), net, WithEngines(2))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		// Close the servers out-of-band (no draining flag): the router
		// still offers both engines, both refuse with ErrClosed, and the
		// fleet must type the refusal as capacity, not health.
		for _, e := range f.Engines() {
			e.srv.Close()
		}
		_, _, err = f.Submit(context.Background(), in)
		if !errors.Is(err, serve.ErrOverloaded) {
			t.Errorf("all-closed fleet: err = %v, want ErrOverloaded", err)
		}
		if errors.Is(err, serve.ErrUnhealthy) {
			t.Errorf("all-closed fleet error should not be ErrUnhealthy: %v", err)
		}
	})

	t.Run("no-engines", func(t *testing.T) {
		f, _, err := New(testConfig(), net, WithEngines(1))
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		_, _, err = f.Submit(context.Background(), in)
		if !errors.Is(err, ErrNoEngines) {
			t.Errorf("empty fleet: err = %v, want ErrNoEngines", err)
		}
	})

	t.Run("canceled-context-not-failed-over", func(t *testing.T) {
		f, _, err := New(testConfig(), net, WithEngines(2))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, _, err = f.Submit(ctx, in)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled submit: err = %v, want context.Canceled", err)
		}
		if got := f.Registry().Counter("fleet.failovers").Value(); got != 0 {
			t.Errorf("canceled request failed over %d times, want 0", got)
		}
	})
}

// TestJoinLeaveDuringTraffic: membership churn under concurrent load. A
// graceful drain must never fail a request — racing submits fail over.
func TestJoinLeaveDuringTraffic(t *testing.T) {
	net := testMLP(t, 3, 24, 12)
	f, _, err := New(testConfig(), net, WithEngines(2), WithPolicy(LeastLoaded()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	inputs := testInputs(16, 24, 5)
	var stop atomic.Bool
	var reqs, fails atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				_, _, err := f.Submit(context.Background(), inputs[(w+i)%len(inputs)])
				reqs.Add(1)
				if err != nil {
					fails.Add(1)
					t.Errorf("worker %d request %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}

	// Churn: join a third engine, drain an original, drain the joiner.
	e3, cost, err := f.Join()
	if err != nil {
		t.Fatal(err)
	}
	if cost.LatencyPS <= 0 {
		t.Errorf("join programming cost %v, want positive", cost)
	}
	time.Sleep(20 * time.Millisecond)
	if err := f.Leave(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := f.Leave(e3.ID()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if fails.Load() != 0 {
		t.Fatalf("%d/%d requests failed during churn", fails.Load(), reqs.Load())
	}
	if got := f.Size(); got != 1 {
		t.Errorf("fleet size after churn = %d, want 1", got)
	}
	if err := f.Leave(99); err == nil {
		t.Error("Leave(99) on absent engine succeeded")
	}
	if got := f.Registry().Counter("fleet.joins").Value(); got != 1 {
		t.Errorf("fleet.joins = %d, want 1", got)
	}
	if got := f.Registry().Counter("fleet.leaves").Value(); got != 2 {
		t.Errorf("fleet.leaves = %d, want 2", got)
	}
}

// TestRollingReprogramZeroDowntime: the fleet serves continuously while
// every engine reprograms, one at a time; afterwards every engine is on
// the new weights and keyed outputs match a fresh fleet built from them.
func TestRollingReprogramZeroDowntime(t *testing.T) {
	netA := testMLP(t, 3, 24, 16, 8)
	netB := testMLP(t, 4, 24, 16, 8)
	f, _, err := New(testConfig(), netA, WithEngines(3))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	inputs := testInputs(8, 24, 5)
	var stop atomic.Bool
	var reqs, fails atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, _, err := f.Submit(context.Background(), inputs[(w+i)%len(inputs)]); err != nil {
					fails.Add(1)
					t.Errorf("worker %d request %d: %v", w, i, err)
					return
				}
				reqs.Add(1)
			}
		}(w)
	}

	time.Sleep(10 * time.Millisecond)
	rep := f.RollingReprogram(netB)
	time.Sleep(10 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if err := rep.Err(); err != nil {
		t.Fatalf("rolling reprogram: %v", err)
	}
	if rep.Attempted != 3 || rep.Succeeded != 3 {
		t.Fatalf("rolling report attempted=%d succeeded=%d, want 3/3", rep.Attempted, rep.Succeeded)
	}
	if rep.Hidden.LatencyPS <= 0 || rep.Hidden.EnergyPJ <= 0 {
		t.Errorf("rolling hidden cost %v, want positive", rep.Hidden)
	}
	if rep.Visible.LatencyPS >= rep.Hidden.LatencyPS {
		t.Errorf("visible latency %d not hidden behind serving (hidden %d)",
			rep.Visible.LatencyPS, rep.Hidden.LatencyPS)
	}
	if fails.Load() != 0 {
		t.Fatalf("%d/%d requests failed during rolling reprogram", fails.Load(), reqs.Load())
	}
	st := f.RollingStatus()
	if st.Active || st.Done != 3 || st.Failed != 0 {
		t.Errorf("post-roll status %+v", st)
	}
	for _, e := range f.Engines() {
		if got := e.Pair().Swaps(); got != 1 {
			t.Errorf("engine %d swaps = %d, want 1", e.ID(), got)
		}
	}

	// Every engine now serves netB: keyed outputs must match a fresh
	// single-engine fleet programmed with netB directly.
	fresh, _, err := New(testConfig(), netB, WithEngines(1))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	for i, in := range inputs {
		seq := uint64(1 << 20)
		want, _, err := fresh.SubmitSeq(context.Background(), seq+uint64(i), in)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range f.Engines() {
			got, _, err := e.srv.SubmitKeyed(context.Background(), seq+uint64(i), in)
			if err != nil {
				t.Fatalf("engine %d: %v", e.ID(), err)
			}
			if !sliceEq(got, want) {
				t.Fatalf("engine %d input %d: post-roll output differs from fresh netB engine", e.ID(), i)
			}
		}
	}
}

// TestRoundRobinOrder pins the rotation: request seq leads with engine
// seq mod n and wraps in ring order.
func TestRoundRobinOrder(t *testing.T) {
	net := testMLP(t, 3, 16, 8)
	f, _, err := New(testConfig(), net, WithEngines(3))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	engines := f.Engines()
	order, tripped := f.Router().Route(engines, 4)
	if tripped != 0 {
		t.Fatalf("tripped = %d, want 0", tripped)
	}
	wantIDs := []int{1, 2, 0} // 4 mod 3 = 1
	for i, e := range order {
		if e.ID() != wantIDs[i] {
			t.Fatalf("round-robin order[%d] = engine %d, want %d", i, e.ID(), wantIDs[i])
		}
	}
}

// TestWeightedSpread: over a full weight wheel, each engine leads
// proportionally to its weight.
func TestWeightedSpread(t *testing.T) {
	net := testMLP(t, 3, 16, 8)
	f, _, err := New(testConfig(), net, WithEngines(3), WithPolicy(Weighted()), WithWeights(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	engines := f.Engines()
	leads := map[int]int{}
	for seq := uint64(0); seq < 6; seq++ { // one full wheel (total weight 6)
		order, _ := f.Router().Route(engines, seq)
		leads[order[0].ID()]++
	}
	want := map[int]int{0: 1, 1: 2, 2: 3}
	for id, n := range want {
		if leads[id] != n {
			t.Errorf("engine %d led %d/6 requests, want %d (weight)", id, leads[id], n)
		}
	}
}

// TestWearAwareFallback: with fault injection disabled there is no wear
// differential — the policy must fall back to least-loaded ordering, not
// pin all traffic on the lowest engine ID.
func TestWearAwareFallback(t *testing.T) {
	net := testMLP(t, 3, 16, 8)
	f, _, err := New(testConfig(), net, WithEngines(3), WithPolicy(WearAware()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	engines := f.Engines()
	wear0 := engines[0].Wear()
	for _, e := range engines {
		if e.Wear() != wear0 {
			t.Fatalf("fault-free engines should wear identically: %d vs %d", e.Wear(), wear0)
		}
	}
	got := WearAware().Order(engines, 0)[0]
	want := LeastLoaded().Order(engines, 0)[0]
	if got.ID() != want.ID() {
		t.Errorf("wear-aware lead = engine %d, least-loaded fallback = engine %d", got.ID(), want.ID())
	}
	// Requests must still spread across queue state, not hammer engine 0
	// exclusively by ID; with idle queues the tiebreak is ID order, so the
	// check is simply that routing succeeds and is deterministic.
	o1, _ := f.Router().Route(engines, 1)
	o2, _ := f.Router().Route(engines, 1)
	for i := range o1 {
		if o1[i].ID() != o2[i].ID() {
			t.Fatal("wear-aware fallback ordering not deterministic")
		}
	}
}

// TestWearAwareDifferential: with per-engine fault seeds, engines damage
// differently; the policy must lead with the least-damaged engine.
func TestWearAwareDifferential(t *testing.T) {
	cfg := testConfig()
	cfg.Crossbar.ReadNoise = 0
	cfg.Faults = faultinject.Model{StuckLowRate: 0.03, StuckHighRate: 0.03, Seed: 11}
	net := testMLP(t, 3, 32, 24, 10)
	f, _, err := New(cfg, net, WithEngines(4), WithPolicy(WearAware()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	engines := f.Engines()

	score := func(e *Engine) int64 {
		h := e.Health().Total
		return int64(h.LostCols)*wearLostCol + int64(h.SparesUsed)*wearSpareUsed + e.Wear()/wearWriteDiv
	}
	distinct := map[int64]bool{}
	for _, e := range engines {
		distinct[score(e)] = true
	}
	if len(distinct) < 2 {
		t.Skip("fault seeds produced identical damage; differential not exercised at this rate")
	}
	order, _ := f.Router().Route(engines, 0)
	for i := 1; i < len(order); i++ {
		if score(order[i-1]) > score(order[i]) {
			t.Fatalf("wear-aware order not ascending by damage: engine %d (score %d) before engine %d (score %d)",
				order[i-1].ID(), score(order[i-1]), order[i].ID(), score(order[i]))
		}
	}
}

// TestFleetSimTime: fleet simulated time is the max over engines, and the
// fleet-level metrics see every request.
func TestFleetMetricsAndSimTime(t *testing.T) {
	net := testMLP(t, 3, 16, 8)
	f, _, err := New(testConfig(), net, WithEngines(2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in := testInputs(1, 16, 9)[0]
	const n = 10
	for i := 0; i < n; i++ {
		if _, _, err := f.Infer(in); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Registry().Counter("fleet.requests").Value(); got != n {
		t.Errorf("fleet.requests = %d, want %d", got, n)
	}
	if h := f.Registry().Histogram("fleet.latency_ns"); h.Count() != n {
		t.Errorf("fleet.latency_ns count = %d, want %d", h.Count(), n)
	}
	var maxPS int64
	var total int64
	for _, e := range f.Engines() {
		if ps := e.SimTimePS(); ps > maxPS {
			maxPS = ps
		}
		total += e.Routed()
	}
	if f.SimTimePS() != maxPS {
		t.Errorf("fleet SimTimePS = %d, want max over engines %d", f.SimTimePS(), maxPS)
	}
	if maxPS <= 0 {
		t.Error("no simulated serving time accumulated")
	}
	if total != n {
		t.Errorf("routed totals sum to %d, want %d", total, n)
	}
}
